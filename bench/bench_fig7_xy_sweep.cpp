// Figure 7: the (X, Y) multiplier-parameter sweep — four heatmaps
// (edge cut, max per-part cut, vertex balance, edge balance) averaged
// over representative graphs.
//
// Expected shape (paper §V-D): low (X,Y) gives the best cut but wild
// imbalance swings; values above ~1.5 hurt cut; X > Y preferred; the
// default (X=1.0, Y=0.25) sits on the quality/balance threshold.
#include "bench/bench_common.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"

using namespace xtra;

namespace {

struct SweepCell {
  double cut = 0.0;
  double maxcut = 0.0;
  double vimb = 0.0;
  double eimb = 0.0;
  int runs = 0;
};

void print_heatmap(const char* title, const std::vector<double>& xs,
                   const std::vector<double>& ys,
                   const std::vector<SweepCell>& cells,
                   double SweepCell::*field) {
  std::printf("\n%s (rows: Y, cols: X)\n        ", title);
  for (const double x : xs) std::printf("X=%-6.2f", x);
  std::printf("\n");
  for (std::size_t yi = 0; yi < ys.size(); ++yi) {
    std::printf("Y=%-5.2f ", ys[yi]);
    for (std::size_t xi = 0; xi < xs.size(); ++xi)
      std::printf("%-8.3f", cells[yi * xs.size() + xi].*field);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const double scale = gen::env_scale() * 0.5;
  const std::vector<double> xs = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
  const std::vector<double> ys = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
  const char* graphs[] = {"lj", "uk-2002", "rmat_14", "nlpkkt_s"};
  const part_t nparts = 8;
  const int nranks = 4;

  std::printf("Fig 7: (X, Y) sweep on %d ranks, %d parts, 4 graph classes\n",
              nranks, nparts);
  std::vector<SweepCell> cells(xs.size() * ys.size());
  for (const char* name : graphs) {
    const graph::EdgeList el = gen::make_suite_graph(name, scale);
    for (std::size_t yi = 0; yi < ys.size(); ++yi) {
      for (std::size_t xi = 0; xi < xs.size(); ++xi) {
        core::Params params;
        params.nparts = nparts;
        params.mult_x = xs[xi];
        params.mult_y = ys[yi];
        const bench::RunResult r = bench::run_xtrapulp(el, nranks, params);
        SweepCell& c = cells[yi * xs.size() + xi];
        c.cut += r.quality.edge_cut_ratio;
        c.maxcut += r.quality.scaled_max_cut;
        c.vimb += r.quality.vertex_imbalance;
        c.eimb += r.quality.edge_imbalance;
        ++c.runs;
      }
    }
  }
  for (SweepCell& c : cells) {
    c.cut /= c.runs;
    c.maxcut /= c.runs;
    c.vimb /= c.runs;
    c.eimb /= c.runs;
  }
  print_heatmap("edge cut ratio (lower better)", xs, ys, cells,
                &SweepCell::cut);
  print_heatmap("scaled max cut (lower better)", xs, ys, cells,
                &SweepCell::maxcut);
  print_heatmap("vertex imbalance (1.0 ideal, <=1.1 feasible)", xs, ys,
                cells, &SweepCell::vimb);
  print_heatmap("edge imbalance (1.0 ideal)", xs, ys, cells,
                &SweepCell::eimb);
  return 0;
}
