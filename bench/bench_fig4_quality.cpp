// Figure 4: partition quality vs number of parts for six graphs,
// comparing XtraPuLP / PuLP / multilevel (ParMETIS stand-in).
//
// Expected shape (paper): nlpkkt-class meshes keep low cut ratios as
// parts grow; social/rmat cut ratios climb toward 1.0; the three
// partitioners stay within a modest band of each other on small-world
// inputs, with multilevel unable to run the largest instances.
#include "bench/bench_common.hpp"
#include "baseline/partitioners.hpp"
#include "gen/suite.hpp"

using namespace xtra;

int main() {
  const double scale = gen::env_scale() * 0.5;  // 108 runs: keep modest
  const char* graphs[] = {"lj",        "orkut",   "friendster",
                          "wdc12-pay", "rmat_14", "nlpkkt_s"};
  const part_t part_counts[] = {2, 4, 8, 16, 32, 64};

  std::printf("Fig 4: edge cut ratio / scaled max cut vs #parts\n");
  bench::Table table({{"graph", 13},
                      {"parts", 7},
                      {"xp-cut", 9},
                      {"pulp-cut", 10},
                      {"ml-cut", 9},
                      {"xp-maxcut", 11},
                      {"pulp-maxcut", 13},
                      {"ml-maxcut", 11}});
  for (const char* name : graphs) {
    const graph::EdgeList el = gen::make_suite_graph(name, scale);
    const baseline::SerialGraph g = baseline::build_serial_graph(el);
    for (const part_t p : part_counts) {
      core::Params params;
      params.nparts = p;
      const bench::RunResult xp = bench::run_xtrapulp(el, 2, params);
      const auto pulp_q = metrics::evaluate(
          el, baseline::pulp_partition(g, p), p);
      const auto ml_q = metrics::evaluate(
          el, baseline::multilevel_partition(g, p), p);
      table.cell(name);
      table.cell(static_cast<count_t>(p));
      table.cell(xp.quality.edge_cut_ratio);
      table.cell(pulp_q.edge_cut_ratio);
      table.cell(ml_q.edge_cut_ratio);
      table.cell(xp.quality.scaled_max_cut);
      table.cell(pulp_q.scaled_max_cut);
      table.cell(ml_q.scaled_max_cut);
    }
  }

  // The paper's aggregate "performance ratios" (§V-B): geometric mean
  // of each partitioner's cut over the best cut per test.
  bench::section("performance ratios (geometric mean of cut / best cut)");
  std::vector<double> rx, rp, rm;
  for (const char* name : graphs) {
    const graph::EdgeList el = gen::make_suite_graph(name, scale);
    const baseline::SerialGraph g = baseline::build_serial_graph(el);
    for (const part_t p : {4, 16, 64}) {
      core::Params params;
      params.nparts = p;
      const double cx =
          std::max(bench::run_xtrapulp(el, 2, params).quality.edge_cut_ratio,
                   1e-9);
      const double cp = std::max(
          metrics::evaluate(el, baseline::pulp_partition(g, p), p)
              .edge_cut_ratio,
          1e-9);
      const double cm = std::max(
          metrics::evaluate(el, baseline::multilevel_partition(g, p), p)
              .edge_cut_ratio,
          1e-9);
      const double best = std::min({cx, cp, cm});
      rx.push_back(cx / best);
      rp.push_back(cp / best);
      rm.push_back(cm / best);
    }
  }
  std::printf("XtraPuLP %.2f   PuLP %.2f   Multilevel %.2f   (lower=better; "
              "paper: 1.37 / 1.33 / 1.18)\n",
              metrics::geometric_mean(rx), metrics::geometric_mean(rp),
              metrics::geometric_mean(rm));
  return 0;
}
