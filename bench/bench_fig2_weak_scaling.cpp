// Figure 2: weak scaling on RMAT / RandER / RandHD.
//
// Paper: vertices per node fixed at ~2^22, 8..2048 nodes, davg in
// {16,32,64}, parts = nodes. Here: vertices per rank fixed, 1..8
// ranks, davg in {16,32}, parts = ranks. Expected shape: RandHD
// flattest (near-constant time), RMAT steepest and most
// degree-sensitive (hub-induced imbalance under the 1D distribution).
#include "bench/bench_common.hpp"
#include "gen/generators.hpp"

using namespace xtra;

int main() {
  const double scale = gen::env_scale();
  const auto verts_per_rank = static_cast<xtra::gid_t>(24'000 * scale);

  std::printf("Fig 2: weak scaling, %llu vertices/rank, parts = ranks\n",
              static_cast<unsigned long long>(verts_per_rank));

  bench::Table table({{"graph", 9},
                      {"davg", 6},
                      {"ranks", 7},
                      {"n", 10},
                      {"time(s)", 10},
                      {"cut", 8}});
  for (const char* name : {"RMAT", "RandER", "RandHD"}) {
    for (const count_t davg : {16, 32}) {
      for (const int nranks : {1, 2, 4, 8}) {
        const xtra::gid_t n = verts_per_rank * static_cast<xtra::gid_t>(nranks);
        graph::EdgeList el;
        if (std::string(name) == "RMAT") {
          int sc = 0;
          while ((xtra::gid_t(1) << (sc + 1)) <= n) ++sc;
          el = gen::rmat(sc, davg, 11);
        } else if (std::string(name) == "RandER") {
          el = gen::erdos_renyi(n, davg, 11);
        } else {
          el = gen::rand_hd(n, davg, 11);
        }
        core::Params params;
        params.nparts = static_cast<part_t>(std::max(nranks, 2));
        const bench::RunResult r = bench::run_xtrapulp(el, nranks, params);
        table.cell(name);
        table.cell(davg);
        table.cell(static_cast<count_t>(nranks));
        table.cell(static_cast<count_t>(el.n));
        table.cell(r.seconds);
        table.cell(r.quality.edge_cut_ratio);
      }
    }
  }
  return 0;
}
