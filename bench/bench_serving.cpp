// Latency-SLO serving bench: the open-loop load generator driving
// serve::Scheduler over the partitioned graph, reporting tail latency
// in VIRTUAL seconds (serve/clock.hpp — wall clock never touches a
// latency number, so every figure here is bit-deterministic for a
// given seed + config).
//
// Rows (per rank count 2 and 8):
//   serve_mix            slot_budget 8 — batched multi-source packing
//   serve_mix_perquery   slot_budget 1 — the per-source twin; the CI
//                        contract pins serve_mix strictly below it on
//                        collectives per query (packing exists to
//                        amortize per-superstep collectives) at equal
//                        payload bytes (packing changes WHEN records
//                        travel, never WHAT travels)
//   serve_mix_onesided   budget 8 over the one-sided backend — must
//                        reproduce serve_mix's latencies EXACTLY
//   serve_mix_t8         budget 8 at 8 intra-rank threads — ditto
//
// The SERVE_STATS_JSON block is gated by check_comm_baseline.py
// (--serving-bench): baseline tolerance on p99/bytes/collectives plus
// the absolute contracts above, mirroring COMM_STATS_JSON.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "serve/loadgen.hpp"
#include "serve/scheduler.hpp"

namespace xtra {
namespace {

struct ServeRow {
  std::string bench;
  int nranks = 0;
  count_t slot_budget = 0;
  serve::ServeStats stats;
  count_t collectives = 0;  ///< per rank (uniform across ranks)
  count_t wire_bytes = 0;   ///< world payload bytes
};

std::vector<ServeRow>& rows() {
  static std::vector<ServeRow> r;
  return r;
}

serve::LoadGenConfig trace_config() {
  serve::LoadGenConfig lg;
  lg.num_queries = 64;
  lg.rate_qps = 8.0;
  lg.seed = 7;
  lg.khop_depth = 3;
  lg.ppr_depth = 4;
  return lg;
}

void run_config(const std::string& name, int nranks,
                const serve::ServeConfig& cfg) {
  ServeRow row;
  row.bench = name;
  row.nranks = nranks;
  row.slot_budget = cfg.slot_budget;
  const graph::EdgeList el = gen::erdos_renyi(8'000, 8, 3);
  sim::run_world(
      nranks,
      [&](sim::Comm& comm) {
        const graph::VertexDist dist =
            graph::VertexDist::random(el.n, nranks, 17);
        const graph::DistGraph g = build_dist_graph(comm, el, dist);
        const std::vector<serve::Query> queries =
            serve::LoadGen::generate(trace_config(), g.n_global());
        comm.barrier();
        const count_t coll0 = comm.stats().collectives;
        const count_t bytes0 = comm.stats().bytes_sent;
        serve::Scheduler sched(cfg);
        sched.run(comm, g, queries);
        const count_t coll = comm.stats().collectives - coll0;
        const count_t bytes =
            comm.allreduce_sum(comm.stats().bytes_sent - bytes0);
        if (comm.rank() == 0) {
          row.stats = sched.stats();
          row.collectives = coll;
          row.wire_bytes = bytes;
        }
      },
      /*ranks_per_node=*/2);
  rows().push_back(row);
}

void sweep(int nranks) {
  serve::ServeConfig cfg;
  cfg.slot_budget = 8;
  run_config("serve_mix", nranks, cfg);

  serve::ServeConfig perquery = cfg;
  perquery.slot_budget = 1;
  run_config("serve_mix_perquery", nranks, perquery);

  serve::ServeConfig onesided = cfg;
  onesided.engine.backend = comm::Backend::kOneSided;
  run_config("serve_mix_onesided", nranks, onesided);

  serve::ServeConfig threaded = cfg;
  threaded.engine.num_threads = 8;
  run_config("serve_mix_t8", nranks, threaded);
}

void print_rows() {
  bench::section("online query serving (virtual-clock latency)");
  bench::Table table({{"bench", 22},
                      {"ranks", 7},
                      {"slots", 7},
                      {"p50ms", 10},
                      {"p95ms", 10},
                      {"p99ms", 10},
                      {"qps", 9},
                      {"occup", 8},
                      {"ss/q", 8}});
  for (const ServeRow& r : rows()) {
    table.cell(r.bench);
    table.cell(static_cast<count_t>(r.nranks));
    table.cell(r.slot_budget);
    table.cell(r.stats.p50_latency * 1e3, "%.3f");
    table.cell(r.stats.p95_latency * 1e3, "%.3f");
    table.cell(r.stats.p99_latency * 1e3, "%.3f");
    table.cell(r.stats.queries_per_sec, "%.2f");
    table.cell(r.stats.slot_occupancy, "%.3f");
    table.cell(r.stats.supersteps_per_query, "%.2f");
  }

  std::printf("\nSERVE_STATS_JSON [\n");
  for (std::size_t i = 0; i < rows().size(); ++i) {
    const ServeRow& r = rows()[i];
    const double nq = static_cast<double>(r.stats.num_queries);
    std::printf(
        "  {\"bench\": \"%s\", \"nranks\": %d, \"slot_budget\": %lld, "
        "\"num_queries\": %lld, \"p50_ms\": %.6f, \"p95_ms\": %.6f, "
        "\"p99_ms\": %.6f, \"queries_per_sec\": %.4f, "
        "\"slot_occupancy\": %.4f, \"supersteps_per_query\": %.3f, "
        "\"collectives_per_query\": %.3f, \"bytes_per_query\": %.1f, "
        "\"virtual_seconds\": %.6f}%s\n",
        r.bench.c_str(), r.nranks, static_cast<long long>(r.slot_budget),
        static_cast<long long>(r.stats.num_queries),
        r.stats.p50_latency * 1e3, r.stats.p95_latency * 1e3,
        r.stats.p99_latency * 1e3, r.stats.queries_per_sec,
        r.stats.slot_occupancy, r.stats.supersteps_per_query,
        static_cast<double>(r.collectives) / nq,
        static_cast<double>(r.wire_bytes) / nq, r.stats.virtual_seconds,
        i + 1 < rows().size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace
}  // namespace xtra

int main() {
  for (const int nranks : {2, 8}) xtra::sweep(nranks);
  xtra::print_rows();
  return 0;
}
