// Figure 5: WDC12 partition quality vs rank count (256 parts in the
// paper; 32 here), plus the block/random reference points quoted in
// §V-B: "edge cut ratio ... 0.16 for vertex block partitioning and
// almost 1.0 for random", with block's low cut costing edge imbalance
// 1.85. Expected shape: XtraPuLP cut stays far below random, roughly
// stable across rank counts; max-cut ratio drifts up with rank count
// (the mult throttling effect the paper discusses); edge imbalance
// stays near 1.1.
#include "bench/bench_common.hpp"
#include "baseline/partitioners.hpp"
#include "gen/generators.hpp"

using namespace xtra;

int main() {
  const double scale = gen::env_scale();
  const auto n = static_cast<xtra::gid_t>(120'000 * scale);
  const part_t nparts = 32;
  const graph::EdgeList el = graph::symmetrized(gen::webcrawl(n, 24, 5));

  std::printf("Fig 5: WDC12-class quality vs rank count, %d parts\n", nparts);
  bench::Table table({{"ranks", 7},
                      {"cut", 9},
                      {"maxcut", 9},
                      {"edge-imb", 10},
                      {"vert-imb", 10}});
  for (const int nranks : {2, 4, 8}) {
    core::Params params;
    params.nparts = nparts;
    const bench::RunResult r = bench::run_xtrapulp(el, nranks, params);
    table.cell(static_cast<count_t>(nranks));
    table.cell(r.quality.edge_cut_ratio);
    table.cell(r.quality.scaled_max_cut);
    table.cell(r.quality.edge_imbalance);
    table.cell(r.quality.vertex_imbalance);
  }

  bench::section("reference layouts (paper quotes block ~0.16 cut but 1.85 "
                 "edge imbalance; random ~1.0 cut)");
  const baseline::SerialGraph g = baseline::build_serial_graph(el);
  const auto qb = metrics::evaluate(
      el, baseline::vertex_block_partition(el.n, nparts), nparts);
  const auto qr = metrics::evaluate(
      el, baseline::random_partition(el.n, nparts, 3), nparts);
  (void)g;
  bench::Table ref({{"layout", 12}, {"cut", 9}, {"edge-imb", 10}});
  ref.cell(std::string("VertBlock"));
  ref.cell(qb.edge_cut_ratio);
  ref.cell(qb.edge_imbalance);
  ref.cell(std::string("Random"));
  ref.cell(qr.edge_cut_ratio);
  ref.cell(qr.edge_imbalance);
  return 0;
}
