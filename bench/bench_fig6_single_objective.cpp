// Figure 6: single-objective / single-constraint comparison against
// the KaHIP-style SCLP partitioner (Meyerhenke et al. [24]).
//
// The paper disables XtraPuLP's edge-balancing stage for a fair
// single-objective comparison; we do the same (Params::edge_phases =
// false). Expected shape: SCLP gets the best cut, multilevel close,
// LP methods slightly behind (paper ratios 1.05 / 1.23 / 1.51 / 1.61
// for KaHIP / ParMETIS / PuLP / XtraPuLP) — while XtraPuLP/PuLP are
// far faster than SCLP (paper time ratios 26.5 for Meyerhenke et al.).
#include "bench/bench_common.hpp"
#include "baseline/partitioners.hpp"
#include "gen/suite.hpp"

using namespace xtra;

int main() {
  const double scale = gen::env_scale();
  const char* graphs[] = {"lj", "rmat_14", "uk-2002"};
  const part_t part_counts[] = {2, 8, 32, 64};

  std::printf("Fig 6: single-objective comparison (3%% imbalance)\n");
  bench::Table table({{"graph", 10},
                      {"parts", 7},
                      {"xp-cut", 9},
                      {"pulp-cut", 10},
                      {"ml-cut", 9},
                      {"sclp-cut", 10},
                      {"xp-t", 8},
                      {"pulp-t", 8},
                      {"ml-t", 8},
                      {"sclp-t", 8}});
  std::vector<double> rx, rp, rm, rs, tx, tp, tm, ts;
  for (const char* name : graphs) {
    const graph::EdgeList el = gen::make_suite_graph(name, scale);
    const baseline::SerialGraph g = baseline::build_serial_graph(el);
    for (const part_t p : part_counts) {
      core::Params params;
      params.nparts = p;
      params.vert_imbalance = 0.03;
      params.edge_phases = false;  // single objective, single constraint
      const bench::RunResult xp = bench::run_xtrapulp(el, 2, params);

      baseline::BaselineOptions opts;
      opts.imbalance = 0.03;
      const auto t_pulp = bench::run_serial_partitioner(
          el, p, [&] { return baseline::pulp_partition(g, p, opts); });
      const auto t_ml = bench::run_serial_partitioner(
          el, p, [&] { return baseline::multilevel_partition(g, p, opts); });
      const auto t_sclp = bench::run_serial_partitioner(
          el, p, [&] { return baseline::sclp_partition(g, p, opts); });

      table.cell(name);
      table.cell(static_cast<count_t>(p));
      table.cell(xp.quality.edge_cut_ratio);
      table.cell(t_pulp.quality.edge_cut_ratio);
      table.cell(t_ml.quality.edge_cut_ratio);
      table.cell(t_sclp.quality.edge_cut_ratio);
      table.cell(xp.seconds, "%.2f");
      table.cell(t_pulp.seconds, "%.2f");
      table.cell(t_ml.seconds, "%.2f");
      table.cell(t_sclp.seconds, "%.2f");

      const double best =
          std::max(std::min({xp.quality.edge_cut_ratio,
                             t_pulp.quality.edge_cut_ratio,
                             t_ml.quality.edge_cut_ratio,
                             t_sclp.quality.edge_cut_ratio}),
                   1e-9);
      rx.push_back(std::max(xp.quality.edge_cut_ratio, 1e-9) / best);
      rp.push_back(std::max(t_pulp.quality.edge_cut_ratio, 1e-9) / best);
      rm.push_back(std::max(t_ml.quality.edge_cut_ratio, 1e-9) / best);
      rs.push_back(std::max(t_sclp.quality.edge_cut_ratio, 1e-9) / best);
      const double tbest = std::min(
          {xp.seconds, t_pulp.seconds, t_ml.seconds, t_sclp.seconds});
      tx.push_back(xp.seconds / tbest);
      tp.push_back(t_pulp.seconds / tbest);
      tm.push_back(t_ml.seconds / tbest);
      ts.push_back(t_sclp.seconds / tbest);
    }
  }
  bench::section("performance ratios (cut | time); paper: KaHIP 1.05|26.5, "
                 "ParMETIS 1.23|11.8, PuLP 1.51|1.27, XtraPuLP 1.61|1.73");
  std::printf("XtraPuLP %.2f|%.2f  PuLP %.2f|%.2f  ML %.2f|%.2f  SCLP "
              "%.2f|%.2f\n",
              metrics::geometric_mean(rx), metrics::geometric_mean(tx),
              metrics::geometric_mean(rp), metrics::geometric_mean(tp),
              metrics::geometric_mean(rm), metrics::geometric_mean(tm),
              metrics::geometric_mean(rs), metrics::geometric_mean(ts));
  return 0;
}
