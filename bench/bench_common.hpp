// Shared helpers for the per-table / per-figure benchmark harnesses.
//
// Every bench prints the rows/series of one paper table or figure.
// Absolute numbers differ from the paper (simulated-MPI substrate on
// one core; see DESIGN.md §2) — the *shape* (who wins, by what factor,
// where crossovers fall) is the reproduction target. EXPERIMENTS.md
// records paper-vs-measured per experiment.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/xtrapulp.hpp"
#include "gen/suite.hpp"
#include "graph/dist_graph.hpp"
#include "metrics/quality.hpp"
#include "mpisim/comm.hpp"
#include "util/timer.hpp"

namespace xtra::bench {

/// Outcome of one distributed partitioning run, reduced to rank 0.
struct RunResult {
  std::vector<part_t> global_parts;
  double seconds = 0.0;       ///< max over ranks (the paper's metric)
  double init_seconds = 0.0;
  count_t comm_bytes = 0;     ///< summed over ranks
  /// Max per-rank share of adjacency work, relative to perfect balance
  /// (1.0 = ideal). On this single-core substrate wall-clock cannot
  /// show parallel speedup, so the scaling figures report this work
  /// distribution: the quantity that actually halves per rank doubling
  /// on real hardware.
  double work_balance = 1.0;
  metrics::QualityReport quality;
};

/// Run XtraPuLP on `nranks` simulated ranks and collect global results.
inline RunResult run_xtrapulp(const graph::EdgeList& el, int nranks,
                              const core::Params& params,
                              bool random_dist = true) {
  RunResult out;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const graph::VertexDist dist =
        random_dist ? graph::VertexDist::random(el.n, nranks, 17)
                    : graph::VertexDist::block(el.n, nranks);
    const graph::DistGraph g = graph::build_dist_graph(comm, el, dist);
    comm.barrier();
    const core::PartitionResult r = core::partition(comm, g, params);
    const double max_t = -comm.allreduce_min(-r.total_seconds);
    const count_t bytes = comm.allreduce_sum(r.comm_bytes);
    const count_t max_work = comm.allreduce_max(g.m_local());
    const count_t total_work = comm.allreduce_sum(g.m_local());
    const auto q = metrics::evaluate_dist(comm, g, r.parts, params.nparts);
    const auto global = core::gather_global_parts(comm, g, r.parts);
    if (comm.rank() == 0) {
      out.global_parts = global;
      out.seconds = max_t;
      out.init_seconds = r.init_seconds;
      out.comm_bytes = bytes;
      out.work_balance = total_work > 0
                             ? static_cast<double>(max_work) *
                                   comm.size() /
                                   static_cast<double>(total_work)
                             : 1.0;
      out.quality = q;
    }
  });
  return out;
}

/// Time a callable returning a part vector; evaluate quality serially.
template <typename F>
RunResult run_serial_partitioner(const graph::EdgeList& el, part_t nparts,
                                 F&& partition_fn) {
  RunResult out;
  Timer t;
  out.global_parts = partition_fn();
  out.seconds = t.seconds();
  out.quality = metrics::evaluate(el, out.global_parts, nparts);
  return out;
}

/// Fixed-width table printing (the benches' only output medium).
class Table {
 public:
  explicit Table(std::vector<std::pair<std::string, int>> columns)
      : columns_(std::move(columns)) {
    for (const auto& [name, width] : columns_)
      std::printf("%-*s", width, name.c_str());
    std::printf("\n");
    int total = 0;
    for (const auto& [name, width] : columns_) total += width;
    for (int i = 0; i < total; ++i) std::printf("-");
    std::printf("\n");
  }

  void cell(const std::string& value) {
    std::printf("%-*s", columns_[at_].second, value.c_str());
    at_ = (at_ + 1) % columns_.size();
    if (at_ == 0) std::printf("\n");
  }
  void cell(double value, const char* fmt = "%.3f") {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), fmt, value);
    cell(std::string(buffer));
  }
  void cell(count_t value) { cell(std::to_string(value)); }

 private:
  std::vector<std::pair<std::string, int>> columns_;
  std::size_t at_ = 0;
};

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Human-readable byte count.
inline std::string fmt_bytes(count_t bytes) {
  char buffer[64];
  if (bytes >= (count_t(1) << 20))
    std::snprintf(buffer, sizeof(buffer), "%.1fMB",
                  static_cast<double>(bytes) / (1 << 20));
  else
    std::snprintf(buffer, sizeof(buffer), "%.1fKB",
                  static_cast<double>(bytes) / (1 << 10));
  return buffer;
}

}  // namespace xtra::bench
