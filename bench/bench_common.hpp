// Shared helpers for the per-table / per-figure benchmark harnesses.
//
// Every bench prints the rows/series of one paper table or figure.
// Absolute numbers differ from the paper (simulated-MPI substrate on
// one core; see DESIGN.md §2) — the *shape* (who wins, by what factor,
// where crossovers fall) is the reproduction target. EXPERIMENTS.md
// records paper-vs-measured per experiment.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/xtrapulp.hpp"
#include "gen/suite.hpp"
#include "graph/dist_graph.hpp"
#include "metrics/quality.hpp"
#include "mpisim/comm.hpp"
#include "util/timer.hpp"

namespace xtra::bench {

/// Outcome of one distributed partitioning run, reduced to rank 0.
struct RunResult {
  std::vector<part_t> global_parts;
  double seconds = 0.0;       ///< max over ranks (the paper's metric)
  double init_seconds = 0.0;
  count_t comm_bytes = 0;     ///< summed over ranks
  /// Max per-rank share of adjacency work, relative to perfect balance
  /// (1.0 = ideal). On this single-core substrate wall-clock cannot
  /// show parallel speedup, so the scaling figures report this work
  /// distribution: the quantity that actually halves per rank doubling
  /// on real hardware.
  double work_balance = 1.0;
  /// Max per-rank adjacency bytes resident in memory during the run:
  /// the full CSR arrays in-core, or the segment-cache frame pool when
  /// an out-of-core budget was set — the number that decides whether a
  /// paper-scale graph fits the node.
  count_t resident_bytes = 0;
  /// Segment-cache ledger (world totals; zero for in-core runs).
  double seg_hit_rate = 0.0;
  double seg_stall_seconds = 0.0;
  metrics::QualityReport quality;
};

/// Per-rank adjacency working set in bytes — what enable_out_of_core
/// would move into the backing.
inline count_t adjacency_bytes(const graph::DistGraph& g) {
  count_t entries = g.m_local();
  if (g.directed())
    for (lid_t v = 0; v < g.n_local(); ++v) entries += g.in_degree(v);
  return entries * static_cast<count_t>(sizeof(lid_t));
}

/// Run XtraPuLP on `nranks` simulated ranks and collect global results.
/// ooc_budget_frac > 0 runs the partitioner with the adjacency behind
/// the segment cache at that fraction of the per-rank working set
/// (1.0 = every segment fits; the "infinite budget" row).
inline RunResult run_xtrapulp(const graph::EdgeList& el, int nranks,
                              const core::Params& params,
                              bool random_dist = true,
                              double ooc_budget_frac = 0.0) {
  RunResult out;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const graph::VertexDist dist =
        random_dist ? graph::VertexDist::random(el.n, nranks, 17)
                    : graph::VertexDist::block(el.n, nranks);
    graph::DistGraph g = graph::build_dist_graph(comm, el, dist);
    const count_t working = adjacency_bytes(g);
    count_t resident = working;
    if (ooc_budget_frac > 0.0) {
      graph::SegCacheOptions opt;
      opt.budget_bytes = static_cast<count_t>(
          static_cast<double>(working) * ooc_budget_frac);
      g.enable_out_of_core(comm, opt);
      resident = g.segcache()->num_frames() *
                 g.segcache()->entries_per_segment() *
                 static_cast<count_t>(sizeof(lid_t));
    }
    comm.barrier();
    const core::PartitionResult r = core::partition(comm, g, params);
    const graph::SegCacheStats seg = g.segcache_stats();
    if (g.out_of_core()) g.disable_out_of_core(comm);
    const double max_t = -comm.allreduce_min(-r.total_seconds);
    const count_t bytes = comm.allreduce_sum(r.comm_bytes);
    const count_t max_work = comm.allreduce_max(g.m_local());
    const count_t total_work = comm.allreduce_sum(g.m_local());
    const count_t max_resident = comm.allreduce_max(resident);
    std::vector<count_t> seg_tot{seg.seg_hits, seg.seg_misses};
    comm.allreduce_sum(seg_tot);
    const double stall = comm.allreduce_sum(seg.seg_stall_seconds);
    const auto q = metrics::evaluate_dist(comm, g, r.parts, params.nparts);
    const auto global = core::gather_global_parts(comm, g, r.parts);
    if (comm.rank() == 0) {
      out.global_parts = global;
      out.seconds = max_t;
      out.init_seconds = r.init_seconds;
      out.comm_bytes = bytes;
      out.work_balance = total_work > 0
                             ? static_cast<double>(max_work) *
                                   comm.size() /
                                   static_cast<double>(total_work)
                             : 1.0;
      out.resident_bytes = max_resident;
      const count_t touches = seg_tot[0] + seg_tot[1];
      out.seg_hit_rate =
          touches > 0 ? static_cast<double>(seg_tot[0]) /
                            static_cast<double>(touches)
                      : 0.0;
      out.seg_stall_seconds = stall;
      out.quality = q;
    }
  });
  return out;
}

/// Time a callable returning a part vector; evaluate quality serially.
template <typename F>
RunResult run_serial_partitioner(const graph::EdgeList& el, part_t nparts,
                                 F&& partition_fn) {
  RunResult out;
  Timer t;
  out.global_parts = partition_fn();
  out.seconds = t.seconds();
  out.quality = metrics::evaluate(el, out.global_parts, nparts);
  return out;
}

/// Fixed-width table printing (the benches' only output medium).
class Table {
 public:
  explicit Table(std::vector<std::pair<std::string, int>> columns)
      : columns_(std::move(columns)) {
    for (const auto& [name, width] : columns_)
      std::printf("%-*s", width, name.c_str());
    std::printf("\n");
    int total = 0;
    for (const auto& [name, width] : columns_) total += width;
    for (int i = 0; i < total; ++i) std::printf("-");
    std::printf("\n");
  }

  void cell(const std::string& value) {
    std::printf("%-*s", columns_[at_].second, value.c_str());
    at_ = (at_ + 1) % columns_.size();
    if (at_ == 0) std::printf("\n");
  }
  void cell(double value, const char* fmt = "%.3f") {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), fmt, value);
    cell(std::string(buffer));
  }
  void cell(count_t value) { cell(std::to_string(value)); }

 private:
  std::vector<std::pair<std::string, int>> columns_;
  std::size_t at_ = 0;
};

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Human-readable byte count.
inline std::string fmt_bytes(count_t bytes) {
  char buffer[64];
  if (bytes >= (count_t(1) << 20))
    std::snprintf(buffer, sizeof(buffer), "%.1fMB",
                  static_cast<double>(bytes) / (1 << 20));
  else
    std::snprintf(buffer, sizeof(buffer), "%.1fKB",
                  static_cast<double>(bytes) / (1 << 10));
  return buffer;
}

}  // namespace xtra::bench
