// Figure 8: end-to-end analytics on the WDC12-class graph under four
// partitioning strategies (EdgeBlock, Random, VertBlock, XtraPuLP).
//
// The paper runs HC/KC/LP/PR/SCC/WCC on 256 Blue Waters nodes and
// reports ~30% end-to-end reduction with XtraPuLP partitions
// (including the partitioning time itself), with the big wins on
// communication-bound analytics (PR, LP). Per the paper, XtraPuLP here
// initializes from vertex-block partitioning and runs its balancing
// stages. Expected shape: XtraPuLP total (incl. partitioning) <
// EdgeBlock/Random totals; comm volume orders XtraPuLP < VertBlock <
// EdgeBlock < Random.
//
// All eight workloads (the paper's six plus the engine-native SSSP
// and triangle count) run through the unified vertex-program engine:
// one engine::Config built from core::Params carries every transport
// knob (shard policy, chunk size, pipeline depth, coalescing cadence,
// intra-rank threads) into every kernel — XTRA_PIPELINE_DEPTH /
// XTRA_SHARD_HIER / XTRA_COALESCE_EVERY / XTRA_THREADS select them
// without recompiling.
#include <cstdlib>
#include <memory>

#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "analytics/programs.hpp"
#include "baseline/partitioners.hpp"
#include "bench/bench_common.hpp"
#include "engine/engine.hpp"
#include "gen/generators.hpp"

using namespace xtra;

namespace {

constexpr int kAnalyticCount = 8;

struct StrategyRun {
  std::string name;
  double partition_seconds = 0.0;
  double analytic_seconds[kAnalyticCount] = {};
  count_t analytic_bytes[kAnalyticCount] = {};
};

constexpr const char* kAnalytics[kAnalyticCount] = {
    "HC", "KC", "LP", "PR", "SCC", "WCC", "SSSP", "TC"};

}  // namespace

int main() {
  const double scale = gen::env_scale();
  const auto n = static_cast<xtra::gid_t>(60'000 * scale);
  const int nranks = 8;
  // Analytics knobs ride core::Params -> engine::Config: every kernel
  // inherits the pipeline depth, shard policy, and coalescing cadence
  // uniformly. Defaults keep the runs bit-comparable with earlier
  // figures. The same Params seeds the XtraPuLP strategy below.
  core::Params apar;
  if (const char* pd = std::getenv("XTRA_PIPELINE_DEPTH"))
    apar.pipeline_depth = std::atoi(pd);
  if (const char* sh = std::getenv("XTRA_SHARD_HIER"))
    if (std::atoi(sh) != 0)
      apar.shard_policy = comm::ShardPolicy::kHierarchical;
  if (const char* ce = std::getenv("XTRA_COALESCE_EVERY"))
    apar.coalesce_every = std::atoi(ce);
  // The "+X" of MPI+X: intra-rank worker threads. Results and wire
  // traffic are thread-count-invariant by contract (DESIGN.md §6).
  if (const char* t = std::getenv("XTRA_THREADS"))
    apar.num_threads = std::atoi(t);
  const engine::Config cfg = engine::Config::from_params(apar);
  const graph::EdgeList directed = gen::webcrawl(n, 20, 7);
  const graph::EdgeList el = graph::symmetrized(directed);
  const baseline::SerialGraph sg = baseline::build_serial_graph(el);

  std::printf("Fig 8: analytics on WDC12-class graph (n=%llu, m=%lld) with "

              "%d ranks\n",
              static_cast<unsigned long long>(el.n),
              static_cast<long long>(el.edge_count()), nranks);

  std::vector<StrategyRun> runs;
  for (const std::string strategy :
       {"EdgeBlock", "Random", "VertBlock", "XtraPuLP"}) {
    StrategyRun run;
    run.name = strategy;

    // Owner map per strategy (parts == ranks for analytics placement).
    std::vector<part_t> parts;
    if (strategy == "EdgeBlock") {
      parts = baseline::edge_block_partition(sg, nranks);
    } else if (strategy == "Random") {
      parts = baseline::random_partition(el.n, nranks, 3);
    } else if (strategy == "VertBlock") {
      parts = baseline::vertex_block_partition(el.n, nranks);
    } else {
      // Paper §V-E: initialize with vertex-block, then run the
      // balancing stages.
      core::Params params = apar;
      params.nparts = nranks;
      params.init = core::InitStrategy::kBlock;
      const bench::RunResult r =
          bench::run_xtrapulp(el, nranks, params, /*random_dist=*/false);
      parts = r.global_parts;
      run.partition_seconds = r.seconds;
    }

    auto owners = std::make_shared<std::vector<int>>(parts.begin(),
                                                     parts.end());
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto dist =
          graph::VertexDist::explicit_map(el.n, nranks, owners);
      // Undirected graph for most analytics; directed for SCC.
      const auto g = graph::build_dist_graph(comm, el, dist);
      const auto gd = graph::build_dist_graph(comm, directed, dist);
      comm.barrier();

      // The dense kernels run directly through engine::run so the one
      // Config reaches every kernel (the legacy wrappers only accept
      // their historical knob subsets).
      const auto& as_info = analytics::detail::to_run_info;
      analytics::RunInfo infos[kAnalyticCount];
      infos[0] = analytics::harmonic_centrality(comm, g, 8, 5, cfg).info;
      {
        analytics::KCoreProgram kc;
        engine::Config c = cfg;
        c.max_supersteps = 15;
        infos[1] = as_info(engine::run(comm, g, kc, c));
      }
      {
        analytics::CommLpProgram lp;
        engine::Config c = cfg;
        c.max_supersteps = 10;
        infos[2] = as_info(engine::run(comm, g, lp, c));
      }
      {
        analytics::PageRankProgram pr;
        engine::Config c = cfg;
        c.max_supersteps = 20;
        // PageRank ships fresh fractional contributions every
        // superstep; the coalesced changed-value refresh only applies
        // to change-converging programs.
        c.coalesce_every = 0;
        infos[3] = as_info(engine::run(comm, g, pr, c));
      }
      infos[4] = analytics::largest_scc(comm, gd, cfg).info;
      {
        analytics::WccProgram wcc;
        infos[5] = as_info(engine::run(comm, g, wcc, cfg));
      }
      infos[6] = analytics::sssp(comm, g, /*root=*/0, /*delta=*/8,
                                 /*max_weight=*/16, /*weight_seed=*/1, cfg)
                     .info;
      infos[7] =
          analytics::triangle_count(comm, g, /*sample_cap=*/64, 1, cfg)
              .info;
      for (int a = 0; a < kAnalyticCount; ++a) {
        const double t = -comm.allreduce_min(-infos[a].seconds);
        const count_t b = comm.allreduce_sum(infos[a].comm_bytes);
        if (comm.rank() == 0) {
          run.analytic_seconds[a] = t;
          run.analytic_bytes[a] = b;
        }
      }
    });
    runs.push_back(run);
  }

  bench::Table table({{"strategy", 12},
                      {"part(s)", 9},
                      {"HC", 7},
                      {"KC", 7},
                      {"LP", 7},
                      {"PR", 7},
                      {"SCC", 7},
                      {"WCC", 7},
                      {"SSSP", 7},
                      {"TC", 7},
                      {"analytics", 11},
                      {"total", 8},
                      {"comm", 10}});
  for (const StrategyRun& run : runs) {
    table.cell(run.name);
    table.cell(run.partition_seconds, "%.2f");
    double analytics_total = 0.0;
    count_t bytes = 0;
    for (int a = 0; a < kAnalyticCount; ++a) {
      table.cell(run.analytic_seconds[a], "%.2f");
      analytics_total += run.analytic_seconds[a];
      bytes += run.analytic_bytes[a];
    }
    table.cell(analytics_total, "%.2f");
    table.cell(run.partition_seconds + analytics_total, "%.2f");
    table.cell(bench::fmt_bytes(bytes));
  }
  std::printf(
      "\n'total' includes partitioning time, as in the paper's end-to-end\n"
      "comparison. On this one-core substrate computation dominates, so\n"
      "analytic times differ by less than the comm column; on the paper's\n"
      "cluster communication dominates and the comm-volume ordering above\n"
      "(XtraPuLP < blocks < random) is what becomes the ~30%% end-to-end\n"
      "win. Partitioning time here is also ~nranks x a real cluster's\n"
      "(all ranks share the core).\n");
  return 0;
}
