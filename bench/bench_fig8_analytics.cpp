// Figure 8: end-to-end analytics on the WDC12-class graph under four
// partitioning strategies (EdgeBlock, Random, VertBlock, XtraPuLP).
//
// The paper runs HC/KC/LP/PR/SCC/WCC on 256 Blue Waters nodes and
// reports ~30% end-to-end reduction with XtraPuLP partitions
// (including the partitioning time itself), with the big wins on
// communication-bound analytics (PR, LP). Per the paper, XtraPuLP here
// initializes from vertex-block partitioning and runs its balancing
// stages. Expected shape: XtraPuLP total (incl. partitioning) <
// EdgeBlock/Random totals; comm volume orders XtraPuLP < VertBlock <
// EdgeBlock < Random.
#include <cstdlib>
#include <memory>

#include "analytics/analytics.hpp"
#include "baseline/partitioners.hpp"
#include "bench/bench_common.hpp"
#include "gen/generators.hpp"

using namespace xtra;

namespace {

struct StrategyRun {
  std::string name;
  double partition_seconds = 0.0;
  double analytic_seconds[6] = {0, 0, 0, 0, 0, 0};
  count_t analytic_bytes[6] = {0, 0, 0, 0, 0, 0};
};

constexpr const char* kAnalytics[6] = {"HC", "KC", "LP", "PR", "SCC", "WCC"};

}  // namespace

int main() {
  const double scale = gen::env_scale();
  const auto n = static_cast<xtra::gid_t>(60'000 * scale);
  const int nranks = 8;
  // Analytics knobs ride core::Params: XTRA_PIPELINE_DEPTH selects the
  // cross-superstep ghost pipeline for the stale-tolerant kernels (KC,
  // PR); the default 0 keeps the runs bit-comparable with earlier
  // figures. The same Params seeds the XtraPuLP strategy below.
  core::Params apar;
  if (const char* pd = std::getenv("XTRA_PIPELINE_DEPTH"))
    apar.pipeline_depth = std::atoi(pd);
  const graph::EdgeList directed = gen::webcrawl(n, 20, 7);
  const graph::EdgeList el = graph::symmetrized(directed);
  const baseline::SerialGraph sg = baseline::build_serial_graph(el);

  std::printf("Fig 8: analytics on WDC12-class graph (n=%llu, m=%lld) with "
              
              "%d ranks\n",
              static_cast<unsigned long long>(el.n),
              static_cast<long long>(el.edge_count()), nranks);

  std::vector<StrategyRun> runs;
  for (const std::string strategy :
       {"EdgeBlock", "Random", "VertBlock", "XtraPuLP"}) {
    StrategyRun run;
    run.name = strategy;

    // Owner map per strategy (parts == ranks for analytics placement).
    std::vector<part_t> parts;
    if (strategy == "EdgeBlock") {
      parts = baseline::edge_block_partition(sg, nranks);
    } else if (strategy == "Random") {
      parts = baseline::random_partition(el.n, nranks, 3);
    } else if (strategy == "VertBlock") {
      parts = baseline::vertex_block_partition(el.n, nranks);
    } else {
      // Paper §V-E: initialize with vertex-block, then run the
      // balancing stages.
      core::Params params = apar;
      params.nparts = nranks;
      params.init = core::InitStrategy::kBlock;
      const bench::RunResult r =
          bench::run_xtrapulp(el, nranks, params, /*random_dist=*/false);
      parts = r.global_parts;
      run.partition_seconds = r.seconds;
    }

    auto owners = std::make_shared<std::vector<int>>(parts.begin(),
                                                     parts.end());
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto dist =
          graph::VertexDist::explicit_map(el.n, nranks, owners);
      // Undirected graph for most analytics; directed for SCC.
      const auto g = graph::build_dist_graph(comm, el, dist);
      const auto gd = graph::build_dist_graph(comm, directed, dist);
      comm.barrier();

      analytics::RunInfo infos[6];
      infos[0] = analytics::harmonic_centrality(comm, g, 8, 5).info;
      infos[1] = analytics::kcore_approx(comm, g, 15, apar.pipeline_depth)
                     .info;
      infos[2] = analytics::label_propagation(comm, g, 10).info;
      infos[3] =
          analytics::pagerank(comm, g, 20, 0.85, apar.pipeline_depth).info;
      infos[4] = analytics::largest_scc(comm, gd).info;
      infos[5] = analytics::weakly_connected_components(comm, g).info;
      for (int a = 0; a < 6; ++a) {
        const double t = -comm.allreduce_min(-infos[a].seconds);
        const count_t b = comm.allreduce_sum(infos[a].comm_bytes);
        if (comm.rank() == 0) {
          run.analytic_seconds[a] = t;
          run.analytic_bytes[a] = b;
        }
      }
    });
    runs.push_back(run);
  }

  bench::Table table({{"strategy", 12},
                      {"part(s)", 9},
                      {"HC", 7},
                      {"KC", 7},
                      {"LP", 7},
                      {"PR", 7},
                      {"SCC", 7},
                      {"WCC", 7},
                      {"analytics", 11},
                      {"total", 8},
                      {"comm", 10}});
  for (const StrategyRun& run : runs) {
    table.cell(run.name);
    table.cell(run.partition_seconds, "%.2f");
    double analytics_total = 0.0;
    count_t bytes = 0;
    for (int a = 0; a < 6; ++a) {
      table.cell(run.analytic_seconds[a], "%.2f");
      analytics_total += run.analytic_seconds[a];
      bytes += run.analytic_bytes[a];
    }
    table.cell(analytics_total, "%.2f");
    table.cell(run.partition_seconds + analytics_total, "%.2f");
    table.cell(bench::fmt_bytes(bytes));
  }
  std::printf(
      "\n'total' includes partitioning time, as in the paper's end-to-end\n"
      "comparison. On this one-core substrate computation dominates, so\n"
      "analytic times differ by less than the comm column; on the paper's\n"
      "cluster communication dominates and the comm-volume ordering above\n"
      "(XtraPuLP < blocks < random) is what becomes the ~30%% end-to-end\n"
      "win. Partitioning time here is also ~nranks x a real cluster's\n"
      "(all ranks share the core).\n");
  return 0;
}
