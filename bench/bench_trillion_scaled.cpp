// §V-A2 "Trillion Edge Runs", scaled.
//
// Paper: 2^34-vertex, 2^40-edge RandER/RandHD partitioned in 380s/357s
// on 8192 nodes; the largest feasible RMAT was 2^39 edges (608s).
// Here: the largest instances this substrate holds, with throughput
// (edges/second/rank) reported so the paper-scale extrapolation is
// explicit. Expected shape: RandHD <= RandER < RMAT in time; RMAT is
// the class that caps out first (hub-induced memory + compute skew).
#include "bench/bench_common.hpp"
#include "gen/generators.hpp"

using namespace xtra;

int main() {
  const double scale = gen::env_scale();
  const auto n = static_cast<xtra::gid_t>(400'000 * scale);
  const count_t davg = 16;
  const int nranks = 8;

  std::printf(
      "Trillion-edge runs (scaled): n=%llu, davg=%lld, %d ranks, 64 parts\n",
      static_cast<unsigned long long>(n), static_cast<long long>(davg),
      nranks);

  bench::Table table({{"graph", 9},
                      {"edges", 12},
                      {"time(s)", 10},
                      {"Medges/s", 11},
                      {"resB/e", 9},
                      {"cut", 8},
                      {"vimb", 8}});
  struct Entry {
    const char* name;
    graph::EdgeList el;
  };
  int rmat_scale = 0;
  while ((xtra::gid_t(1) << (rmat_scale + 1)) <= n) ++rmat_scale;
  const std::vector<Entry> graphs = {
      {"RandER", gen::erdos_renyi(n, davg, 29)},
      {"RandHD", gen::rand_hd(n, davg, 29)},
      // Paper: the largest RMAT had *half* the edges of the others.
      {"RMAT", gen::rmat(rmat_scale, davg / 2, 29)},
  };
  double best_meps = 0.0;
  for (const auto& [name, el] : graphs) {
    core::Params params;
    params.nparts = 64;
    const bench::RunResult r = bench::run_xtrapulp(el, nranks, params);
    const double meps =
        static_cast<double>(el.edge_count()) / r.seconds / 1e6;
    best_meps = std::max(best_meps, meps);
    table.cell(name);
    table.cell(el.edge_count());
    table.cell(r.seconds);
    table.cell(meps, "%.2f");
    table.cell(static_cast<double>(r.resident_bytes) * nranks /
                   static_cast<double>(el.edge_count()),
               "%.1f");
    table.cell(r.quality.edge_cut_ratio);
    table.cell(r.quality.vertex_imbalance);
  }

  // Out-of-core rows: the same RandER instance partitioned with the
  // adjacency behind the segment cache at a fraction of the per-rank
  // working set. resB/e is the frame pool, not the CSR — the memory
  // the paper's 2^40-edge runs would actually need per rank. hit%
  // shows how far the superstep-driven prefetch keeps the smaller
  // pools from thrashing.
  bench::section("out-of-core (RandER, budget as fraction of working set)");
  bench::Table ooc({{"budget", 9},
                    {"time(s)", 10},
                    {"Medges/s", 11},
                    {"resB/e", 9},
                    {"hit%", 8},
                    {"stall(s)", 10}});
  const graph::EdgeList& ooc_el = graphs[0].el;
  const struct {
    const char* label;
    double frac;
  } budgets[] = {{"1/4", 0.25}, {"1/2", 0.5}, {"inf", 1.0}};
  for (const auto& [label, frac] : budgets) {
    core::Params params;
    params.nparts = 64;
    const bench::RunResult r =
        bench::run_xtrapulp(ooc_el, nranks, params, true, frac);
    ooc.cell(label);
    ooc.cell(r.seconds);
    ooc.cell(static_cast<double>(ooc_el.edge_count()) / r.seconds / 1e6,
             "%.2f");
    ooc.cell(static_cast<double>(r.resident_bytes) * nranks /
                 static_cast<double>(ooc_el.edge_count()),
             "%.1f");
    ooc.cell(100.0 * r.seg_hit_rate, "%.1f");
    ooc.cell(r.seg_stall_seconds, "%.2f");
  }
  std::printf(
      "\nExtrapolation: at %.1f Medges/s on %d simulated ranks, 2^40 edges\n"
      "needs %.0fx this substrate's throughput — the paper reaches it with\n"
      "8192 nodes x 16 cores (~16000x the parallelism used here).\n",
      best_meps, nranks,
      static_cast<double>(count_t(1) << 40) / (best_meps * 1e6) / 380.0);
  return 0;
}
