// §V-A2 "Trillion Edge Runs", scaled.
//
// Paper: 2^34-vertex, 2^40-edge RandER/RandHD partitioned in 380s/357s
// on 8192 nodes; the largest feasible RMAT was 2^39 edges (608s).
// Here: the largest instances this substrate holds, with throughput
// (edges/second/rank) reported so the paper-scale extrapolation is
// explicit. Expected shape: RandHD <= RandER < RMAT in time; RMAT is
// the class that caps out first (hub-induced memory + compute skew).
#include "bench/bench_common.hpp"
#include "gen/generators.hpp"

using namespace xtra;

int main() {
  const double scale = gen::env_scale();
  const auto n = static_cast<xtra::gid_t>(400'000 * scale);
  const count_t davg = 16;
  const int nranks = 8;

  std::printf(
      "Trillion-edge runs (scaled): n=%llu, davg=%lld, %d ranks, 64 parts\n",
      static_cast<unsigned long long>(n), static_cast<long long>(davg),
      nranks);

  bench::Table table({{"graph", 9},
                      {"edges", 12},
                      {"time(s)", 10},
                      {"Medges/s", 11},
                      {"cut", 8},
                      {"vimb", 8}});
  struct Entry {
    const char* name;
    graph::EdgeList el;
  };
  int rmat_scale = 0;
  while ((xtra::gid_t(1) << (rmat_scale + 1)) <= n) ++rmat_scale;
  const std::vector<Entry> graphs = {
      {"RandER", gen::erdos_renyi(n, davg, 29)},
      {"RandHD", gen::rand_hd(n, davg, 29)},
      // Paper: the largest RMAT had *half* the edges of the others.
      {"RMAT", gen::rmat(rmat_scale, davg / 2, 29)},
  };
  double best_meps = 0.0;
  for (const auto& [name, el] : graphs) {
    core::Params params;
    params.nparts = 64;
    const bench::RunResult r = bench::run_xtrapulp(el, nranks, params);
    const double meps =
        static_cast<double>(el.edge_count()) / r.seconds / 1e6;
    best_meps = std::max(best_meps, meps);
    table.cell(name);
    table.cell(el.edge_count());
    table.cell(r.seconds);
    table.cell(meps, "%.2f");
    table.cell(r.quality.edge_cut_ratio);
    table.cell(r.quality.vertex_imbalance);
  }
  std::printf(
      "\nExtrapolation: at %.1f Medges/s on %d simulated ranks, 2^40 edges\n"
      "needs %.0fx this substrate's throughput — the paper reaches it with\n"
      "8192 nodes x 16 cores (~16000x the parallelism used here).\n",
      best_meps, nranks,
      static_cast<double>(count_t(1) << 40) / (best_meps * 1e6) / 380.0);
  return 0;
}
