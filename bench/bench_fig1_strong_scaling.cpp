// Figure 1: strong scaling on the four large graph classes.
//
// Paper: WDC12 / RMAT / RandER / RandHD at 3.56B vertices, 128B edges,
// 256..2048 Blue Waters nodes, 256 parts. Here: the same four classes
// at a scaled size, 1..8 simulated ranks, 32 parts. Expected shape:
// all classes scale; WDC12 (webcrawl) scales worst (structure-induced
// imbalance), synthetic classes better; RandHD is the cheapest overall
// because its initial block-ish locality minimizes exchange volume.
#include "bench/bench_common.hpp"
#include "gen/generators.hpp"

using namespace xtra;

int main() {
  const double scale = gen::env_scale();
  const auto n = static_cast<xtra::gid_t>(120'000 * scale);
  const count_t davg = 16;
  const part_t nparts = 32;

  std::printf(
      "Fig 1: strong scaling, computing %d parts (n=%llu, davg=%lld)\n",
      nparts, static_cast<unsigned long long>(n),
      static_cast<long long>(davg));

  struct Entry {
    const char* name;
    graph::EdgeList el;
  };
  const std::vector<Entry> graphs = {
      {"WDC12", graph::symmetrized(gen::webcrawl(n, davg, 3))},
      {"RMAT", gen::rmat(17, davg, 3)},
      {"RandER", gen::erdos_renyi(n, davg, 3)},
      {"RandHD", gen::rand_hd(n, davg, 3)},
  };

  bench::Table table({{"graph", 10},
                      {"ranks", 7},
                      {"time(s)", 10},
                      {"work-imb", 10},
                      {"comm", 10},
                      {"cut", 8}});
  for (const auto& [name, el] : graphs) {
    for (const int nranks : {1, 2, 4, 8}) {
      core::Params params;
      params.nparts = nparts;
      const bench::RunResult r = bench::run_xtrapulp(el, nranks, params);
      table.cell(name);
      table.cell(static_cast<count_t>(nranks));
      table.cell(r.seconds);
      table.cell(r.work_balance, "%.2f");
      table.cell(bench::fmt_bytes(r.comm_bytes));
      table.cell(r.quality.edge_cut_ratio);
    }
  }
  std::printf(
      "\nNote: one physical core underlies all simulated ranks, so wall\n"
      "time cannot drop with rank count here; 'work-imb' is the max\n"
      "per-rank share of adjacency work relative to perfect balance --\n"
      "the quantity whose near-1.0 flatness makes the paper's strong\n"
      "scaling possible (RMAT's hub skew shows up directly).\n");
  return 0;
}
