// Table I: test-graph statistics (n, m, davg, dmax, approx diameter).
//
// Regenerates the paper's graph-property table for the scaled suite,
// using the paper's estimator (iterated BFS) for the diameter column.
#include "bench/bench_common.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "graph/stats.hpp"

using namespace xtra;

int main() {
  const double scale = gen::env_scale();
  std::printf("Table I: graph statistics (scale=%.2f, see DESIGN.md)\n",
              scale);
  bench::Table table({{"graph", 16},
                      {"class", 8},
                      {"n", 10},
                      {"m", 12},
                      {"davg", 8},
                      {"dmax", 8},
                      {"~D", 6}});
  for (const auto& entry : gen::suite()) {
    const graph::EdgeList el = gen::make_suite_graph(entry.name, scale);
    sim::run_world(2, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, comm.size()));
      // Mesh-class diameters are huge; cap BFS rounds there.
      const int rounds = entry.cls == gen::GraphClass::kMesh ? 4 : 10;
      const graph::GraphStats s = graph::compute_stats(comm, g, rounds);
      if (comm.rank() == 0) {
        table.cell(entry.name);
        table.cell(gen::to_string(entry.cls));
        table.cell(static_cast<count_t>(s.n));
        table.cell(s.m);
        table.cell(s.avg_degree, "%.1f");
        table.cell(s.max_degree);
        table.cell(s.approx_diameter);
      }
    });
  }
  // Also list the synthetic scaling-graph classes of Table I's tail.
  bench::section("scaling graph classes (used by Fig 1/2 benches)");
  std::printf(
      "RMAT / RandER / RandHD generators available at any (scale, davg);\n"
      "see bench_fig1_strong_scaling and bench_fig2_weak_scaling.\n");
  return 0;
}
