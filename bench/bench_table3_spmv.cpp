// Table III: 100 SpMVs under 1D and 2D layouts x {Block, Random,
// Multilevel(PM), XtraPuLP} maps.
//
// Expected shape (paper): 2D layouts beat 1D on irregular graphs;
// partition-informed maps beat Block/Random; "2D XtraPuLP over 1D
// Rand" speedups of 1.5x-3.7x on irregular graphs (geometric mean
// 2.77x at 256 ranks); regular meshes benefit from 1D-Block more than
// from 2D (their block halo is already tiny).
#include <memory>

#include "baseline/partitioners.hpp"
#include "bench/bench_common.hpp"
#include "gen/suite.hpp"
#include "spmv/spmv.hpp"

using namespace xtra;

namespace {

std::vector<part_t> xtrapulp_parts(const graph::EdgeList& el, int nparts) {
  core::Params params;
  params.nparts = static_cast<part_t>(nparts);
  return bench::run_xtrapulp(el, 4, params).global_parts;
}

}  // namespace

int main() {
  const double scale = gen::env_scale();
  const int iters = 100;
  const char* graphs[] = {"lj", "orkut", "friendster", "wdc12-pay",
                          "rmat_14", "nlpkkt_s"};

  std::printf("Table III: time and comm volume for %d SpMVs\n", iters);
  bench::Table table({{"graph", 12},
                      {"ranks", 7},
                      {"layout", 8},
                      {"map", 11},
                      {"time(s)", 10},
                      {"comm", 11},
                      {"imports", 10}});
  std::vector<double> speedups;  // 2D-XtraPuLP over 1D-Rand, irregular
  std::vector<double> time_ratios;
  for (const char* name : graphs) {
    const graph::EdgeList el = gen::make_suite_graph(name, scale * 0.5);
    const baseline::SerialGraph sg = baseline::build_serial_graph(el);
    for (const int nranks : {4, 16}) {
      struct Map {
        const char* name;
        std::vector<part_t> parts;
      };
      baseline::BaselineOptions opts;
      const std::vector<Map> maps = {
          {"Block", baseline::vertex_block_partition(el.n, nranks)},
          {"Rand", baseline::random_partition(el.n, nranks, 7)},
          {"PM", baseline::multilevel_partition(
                     sg, static_cast<part_t>(nranks), opts)},
          {"XtraPuLP", xtrapulp_parts(el, nranks)},
      };
      double t_1d_rand = 0.0, t_2d_xp = 0.0;
      count_t b_1d_rand = 0, b_2d_xp = 0;
      for (const spmv::Layout layout :
           {spmv::Layout::kOneD, spmv::Layout::kTwoD}) {
        for (const Map& map : maps) {
          double seconds = 0.0;
          count_t bytes = 0, imports = 0;
          sim::run_world(nranks, [&](sim::Comm& comm) {
            spmv::DistSpmv mv(comm, el, spmv::owners_from_parts(map.parts),
                              layout);
            comm.barrier();
            const spmv::SpmvStats stats = mv.run(comm, iters);
            const double t = -comm.allreduce_min(-stats.seconds);
            const count_t b = comm.allreduce_sum(stats.comm_bytes);
            const count_t im = comm.allreduce_sum(stats.x_imports);
            if (comm.rank() == 0) {
              seconds = t;
              bytes = b;
              imports = im;
            }
          });
          table.cell(name);
          table.cell(static_cast<count_t>(nranks));
          table.cell(layout == spmv::Layout::kOneD ? "1D" : "2D");
          table.cell(map.name);
          table.cell(seconds);
          table.cell(bench::fmt_bytes(bytes));
          table.cell(imports);
          if (layout == spmv::Layout::kOneD &&
              std::string(map.name) == "Rand") {
            t_1d_rand = seconds;
            b_1d_rand = bytes;
          }
          if (layout == spmv::Layout::kTwoD &&
              std::string(map.name) == "XtraPuLP") {
            t_2d_xp = seconds;
            b_2d_xp = bytes;
          }
        }
      }
      if (std::string(name) != "nlpkkt_s" && b_2d_xp > 0) {
        speedups.push_back(static_cast<double>(b_1d_rand) /
                           static_cast<double>(b_2d_xp));
        time_ratios.push_back(t_1d_rand / std::max(t_2d_xp, 1e-9));
      }
    }
  }
  std::printf(
      "\n2D-XtraPuLP over 1D-Rand on irregular graphs (geometric mean):\n"
      "  communication volume reduced %.2fx (paper's 2.77x time speedup is\n"
      "  comm-bound, so volume is the transferable quantity; raw wall-time\n"
      "  ratio on this one-core substrate: %.2fx, where comm is ~free and\n"
      "  the 2D fold's extra local pass costs instead of saving).\n",
      metrics::geometric_mean(speedups), metrics::geometric_mean(time_ratios));
  return 0;
}
