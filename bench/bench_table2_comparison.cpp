// Table II: XtraPuLP vs PuLP vs ParMETIS(-like multilevel), 16 parts.
//
// Paper: 16-node XtraPuLP vs 1-node PuLP vs 16-node ParMETIS on the
// full suite. ParMETIS fails (OOM) on the larger irregular graphs —
// modeled here with a memory envelope on the multilevel baseline.
// Expected shape: LP methods beat multilevel on social/web/rmat
// classes; multilevel wins on regular meshes; XtraPuLP(multi-rank)
// beats single-stream PuLP wall-clock on large graphs.
#include "bench/bench_common.hpp"
#include "baseline/partitioners.hpp"
#include "gen/suite.hpp"

using namespace xtra;

int main() {
  const double scale = gen::env_scale();
  const part_t nparts = 16;
  const int nranks = 4;

  std::printf("Table II: 16-part comparison (scale=%.2f, XtraPuLP on %d "
              "simulated ranks)\n",
              scale, nranks);

  // The multilevel baseline gathers the global graph per task; cap its
  // memory envelope so the largest irregular instances fail like
  // ParMETIS does in the paper (empty cells).
  const auto ml_limit = static_cast<count_t>(1'200'000 * scale);

  bench::Table table({{"graph", 16},
                      {"class", 8},
                      {"XtraPuLP(s)", 13},
                      {"PuLP(s)", 10},
                      {"ML(s)", 10},
                      {"vs PuLP", 9},
                      {"xp-cut", 9},
                      {"pulp-cut", 10},
                      {"ml-cut", 8}});
  for (const auto& entry : gen::suite()) {
    const graph::EdgeList el = gen::make_suite_graph(entry.name, scale);
    const baseline::SerialGraph g = baseline::build_serial_graph(el);

    core::Params params;
    params.nparts = nparts;
    const bench::RunResult xp = bench::run_xtrapulp(el, nranks, params);
    const bench::RunResult pulp = bench::run_serial_partitioner(
        el, nparts, [&] { return baseline::pulp_partition(g, nparts); });

    bool ml_ok = true;
    bench::RunResult ml;
    try {
      ml = bench::run_serial_partitioner(el, nparts, [&] {
        return baseline::multilevel_partition(g, nparts, {}, ml_limit);
      });
    } catch (const std::length_error&) {
      ml_ok = false;  // the paper's empty cells
    }

    table.cell(entry.name);
    table.cell(gen::to_string(entry.cls));
    table.cell(xp.seconds);
    table.cell(pulp.seconds);
    if (ml_ok)
      table.cell(ml.seconds);
    else
      table.cell(std::string("--"));
    table.cell(pulp.seconds / xp.seconds, "%.2fx");
    table.cell(xp.quality.edge_cut_ratio);
    table.cell(pulp.quality.edge_cut_ratio);
    if (ml_ok)
      table.cell(ml.quality.edge_cut_ratio);
    else
      table.cell(std::string("--"));
  }
  std::printf(
      "\n'--' = multilevel exceeded its memory envelope (models the\n"
      "ParMETIS out-of-memory cells of Table II).\n");
  return 0;
}
