// Microbenchmarks (google-benchmark) for the communication kernels the
// partitioner spends its time in: Alltoallv, ExchangeUpdates, halo
// refresh, and the per-iteration Allreduce. These are the routines
// §III calls "highly optimized communication routines"; the micro
// numbers make regressions in the runtime substrate visible.
#include <benchmark/benchmark.h>

#include "core/exchange.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "graph/halo.hpp"
#include "mpisim/comm.hpp"

using namespace xtra;

namespace {

void BM_Alltoallv(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const auto payload = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                  static_cast<count_t>(payload));
      std::vector<std::uint64_t> send(payload *
                                      static_cast<std::size_t>(nranks));
      benchmark::DoNotOptimize(comm.alltoallv(send, counts));
    });
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * nranks * nranks *
      static_cast<std::int64_t>(payload) * 8);
}
BENCHMARK(BM_Alltoallv)->Args({4, 1000})->Args({8, 1000})->Args({4, 100000});

void BM_Allreduce(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const auto len = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      std::vector<count_t> v(len, 1);
      comm.allreduce_sum(v);
      benchmark::DoNotOptimize(v.data());
    });
  }
}
BENCHMARK(BM_Allreduce)->Args({4, 256})->Args({8, 256})->Args({8, 65536});

void BM_ExchangeUpdates(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const graph::EdgeList el = gen::erdos_renyi(20'000, 16, 3);
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      std::vector<part_t> parts(g.n_total(), 0);
      std::vector<lid_t> queue(g.n_local());
      for (lid_t v = 0; v < g.n_local(); ++v) {
        parts[v] = static_cast<part_t>(v % 8);
        queue[v] = v;
      }
      core::exchange_updates(comm, g, parts, queue);
    });
  }
}
BENCHMARK(BM_ExchangeUpdates)->Arg(2)->Arg(4)->Arg(8);

void BM_HaloExchange(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const graph::EdgeList el = gen::erdos_renyi(20'000, 16, 3);
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      const graph::HaloPlan halo(comm, g);
      std::vector<double> vals(g.n_total(), 1.0);
      for (int i = 0; i < 10; ++i) halo.exchange(comm, vals);
    });
  }
}
BENCHMARK(BM_HaloExchange)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
