// Microbenchmarks (google-benchmark) for the communication kernels the
// partitioner spends its time in: Alltoallv, ExchangeUpdates, halo
// refresh, and the per-iteration Allreduce. These are the routines
// §III calls "highly optimized communication routines"; the micro
// numbers make regressions in the runtime substrate visible.
//
// The bounded-exchange benchmarks sweep max_send_bytes across the
// label-propagation exchange path and report per-iteration wire bytes
// and collective counts from the aggregated CommStats; a final
// COMM_STATS_JSON block emits the same numbers machine-readably
// (plus the start/finish overlap accounting) so future PRs can track
// comm-volume regressions — bench/check_comm_baseline.py diffs it
// against bench/baselines/comm_stats.json in CI.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "analytics/analytics.hpp"
#include "analytics/programs.hpp"
#include "comm/coalescing.hpp"
#include "core/exchange.hpp"
#include "core/xtrapulp.hpp"
#include "engine/engine.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "graph/halo.hpp"
#include "mpisim/comm.hpp"
#include "util/timer.hpp"

using namespace xtra;

namespace {

/// One comm-volume measurement, keyed for the JSON report.
struct CommRow {
  std::string bench;
  int nranks = 0;
  count_t max_send_bytes = 0;
  double bytes_per_iter = 0.0;        ///< wire bytes, summed over ranks
  double collectives_per_iter = 0.0;  ///< collective invocations (world)
  double phases_per_iter = 0.0;       ///< alltoallv rounds per exchange
  // Topology ledger (world-summed engine stats): where the payload
  // bytes landed relative to the node grouping, and how many
  // point-to-point segments crossed nodes — the metric the
  // hierarchical exchange exists to shrink.
  double inter_node_bytes_per_iter = 0.0;
  double intra_node_bytes_per_iter = 0.0;
  double inter_node_msgs_per_iter = 0.0;
  count_t coalesced_flushes = 0;  ///< CoalescingExchanger flushes (total)
  // Overlap accounting (rank 0's engine; timings are informational,
  // the baseline check compares only bytes and collectives).
  double overlapped_frac = 0.0;     ///< start/finish-driven exchanges
  double start_seconds = 0.0;       ///< time inside start() halves
  double finish_seconds = 0.0;      ///< time inside finish() halves
  count_t max_inflight_bytes = 0;   ///< peak payload held in flight
  // Incremental-drain / cross-superstep pipeline ledger (rank 0's
  // engine): exchanges consumed phase by phase, refreshes carried
  // across a superstep boundary, and the deepest carry seen.
  count_t drained_incrementally = 0;
  count_t pipeline_carried = 0;
  count_t max_pipeline_depth = 0;
  // Alpha-beta modeled wire time NOT hidden behind compute
  // (world-summed; see mpisim CommStats::exposed_seconds). The depth
  // contract gates on this: a deeper pipeline must expose strictly
  // less of the same traffic. Excluded from the baseline tolerance
  // compare — it carries wall-clock overlap credit.
  double exposed_wire_seconds_per_iter = 0.0;
  // One-sided (pull-mode) wire volume, world-summed. Zero on two-sided
  // rows; on *_onesided rows the bytes ride gets instead of alltoallv
  // payloads and must not exceed the two-sided twin's bytes_per_iter.
  double one_sided_bytes_per_iter = 0.0;
  // Out-of-core segment-cache ledger (world-summed, whole run). Zero on
  // in-core rows. The baseline gate tracks seg_fetch_bytes, and the
  // prefetch contract requires every *_nopf twin to stall strictly
  // longer than its prefetch-on row.
  count_t seg_hits = 0;
  count_t seg_misses = 0;
  count_t seg_evictions = 0;
  count_t seg_prefetch_hits = 0;
  count_t seg_fetch_bytes = 0;
  double seg_stall_seconds = 0.0;
};

/// Fill the world-level wire columns every row reports.
void note_world(CommRow& row, const sim::CommStats& world, double iters) {
  row.bytes_per_iter = static_cast<double>(world.bytes_sent) / iters;
  row.collectives_per_iter = static_cast<double>(world.collectives) / iters;
  row.exposed_wire_seconds_per_iter = world.exposed_seconds / iters;
  row.one_sided_bytes_per_iter =
      static_cast<double>(world.one_sided_bytes) / iters;
}

/// Fill a row's overlap fields from one engine's aggregated stats.
void note_overlap(CommRow& row, const xtra::comm::ExchangeStats& s) {
  row.phases_per_iter = static_cast<double>(s.phases) /
                        static_cast<double>(s.exchanges);
  row.overlapped_frac = static_cast<double>(s.overlapped) /
                        static_cast<double>(s.exchanges);
  row.start_seconds = s.start_seconds;
  row.finish_seconds = s.finish_seconds;
  row.max_inflight_bytes = s.max_inflight_bytes;
  row.drained_incrementally = s.drained_incrementally;
  row.pipeline_carried = s.pipeline_carried;
  row.max_pipeline_depth = s.max_pipeline_depth;
}

/// World-sum one engine's topology ledger into a row. Collective —
/// every rank must call it (only rank 0 writes the row).
void note_topology(CommRow& row, sim::Comm& comm,
                   const xtra::comm::ExchangeStats& s, int iters) {
  std::vector<count_t> v{s.inter_node_bytes, s.intra_node_bytes,
                         s.inter_node_msgs, s.coalesced_flushes};
  comm.allreduce_sum(v);
  if (comm.rank() == 0) {
    row.inter_node_bytes_per_iter = static_cast<double>(v[0]) / iters;
    row.intra_node_bytes_per_iter = static_cast<double>(v[1]) / iters;
    row.inter_node_msgs_per_iter = static_cast<double>(v[2]) / iters;
    row.coalesced_flushes = v[3];
  }
}

std::map<std::string, CommRow>& comm_rows() {
  static std::map<std::string, CommRow> rows;
  return rows;
}

void record_row(const CommRow& row) {
  comm_rows()[row.bench + "/" + std::to_string(row.nranks) + "/" +
              std::to_string(row.max_send_bytes)] = row;
}

void BM_Alltoallv(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const auto payload = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                  static_cast<count_t>(payload));
      std::vector<std::uint64_t> send(payload *
                                      static_cast<std::size_t>(nranks));
      benchmark::DoNotOptimize(comm.alltoallv(send, counts));
    });
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * nranks * nranks *
      static_cast<std::int64_t>(payload) * 8);
}
BENCHMARK(BM_Alltoallv)->Args({4, 1000})->Args({8, 1000})->Args({4, 100000});

void BM_Allreduce(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const auto len = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      std::vector<count_t> v(len, 1);
      comm.allreduce_sum(v);
      benchmark::DoNotOptimize(v.data());
    });
  }
}
BENCHMARK(BM_Allreduce)->Args({4, 256})->Args({8, 256})->Args({8, 65536});

/// The label-propagation exchange path with a persistent
/// UpdateExchanger, swept over max_send_bytes (0 = unbounded). Each
/// world runs kIters update supersteps over a reused engine — the
/// steady state the partitioner's balance/refine iterations live in.
void BM_ExchangeUpdatesBounded(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const auto bound = static_cast<count_t>(state.range(1));
  constexpr int kIters = 8;
  const graph::EdgeList el = gen::erdos_renyi(20'000, 16, 3);
  CommRow row{"exchange_updates", nranks, bound, 0, 0, 0};
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      core::UpdateExchanger exchanger(bound);
      std::vector<part_t> parts(g.n_total(), 0);
      std::vector<lid_t> queue(g.n_local());
      for (lid_t v = 0; v < g.n_local(); ++v) queue[v] = v;
      comm.barrier();
      comm.reset_stats();
      for (int it = 0; it < kIters; ++it) {
        // Every owned vertex changes label each superstep: the densest
        // traffic the balance phase can generate.
        for (lid_t v = 0; v < g.n_local(); ++v)
          parts[v] = static_cast<part_t>((v + static_cast<lid_t>(it)) % 8);
        exchanger.run(comm, g, parts, queue);
      }
      const sim::CommStats world = comm.world_stats();
      note_topology(row, comm, exchanger.stats(), kIters);
      if (comm.rank() == 0) {
        note_world(row, world, kIters);
        note_overlap(row, exchanger.stats());
      }
    });
  }
  state.counters["bytes/iter"] = row.bytes_per_iter;
  state.counters["colls/iter"] = row.collectives_per_iter;
  state.counters["phases/exch"] = row.phases_per_iter;
  record_row(row);
}
BENCHMARK(BM_ExchangeUpdatesBounded)
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({4, 1 << 12})
    ->Args({4, 1 << 16})
    ->Args({4, 1 << 20})
    ->Args({8, 0})
    ->Args({8, 1 << 16})
    ->Args({16, 0})
    ->Args({16, 1 << 16});

void BM_HaloExchangeBounded(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const auto bound = static_cast<count_t>(state.range(1));
  const bool onesided = state.range(2) != 0;
  constexpr int kIters = 10;
  const graph::EdgeList el = gen::erdos_renyi(20'000, 16, 3);
  CommRow row{onesided ? "halo_exchange_onesided" : "halo_exchange",
              nranks, bound, 0, 0, 0};
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      graph::HaloPlan halo(comm, g, comm::ShardPolicy::kFlat,
                           onesided ? comm::Backend::kOneSided
                                    : comm::Backend::kTwoSided);
      halo.set_max_send_bytes(bound);
      // Meter only the replayed exchanges, not the one-time (and
      // always unbounded) registration the constructor performed.
      halo.reset_stats();
      std::vector<double> vals(g.n_total(), 1.0);
      comm.barrier();
      comm.reset_stats();
      for (int i = 0; i < kIters; ++i) halo.exchange(comm, vals);
      const sim::CommStats world = comm.world_stats();
      note_topology(row, comm, halo.stats(), kIters);
      if (comm.rank() == 0) {
        note_world(row, world, kIters);
        note_overlap(row, halo.stats());
      }
    });
  }
  state.counters["bytes/iter"] = row.bytes_per_iter;
  state.counters["colls/iter"] = row.collectives_per_iter;
  state.counters["phases/exch"] = row.phases_per_iter;
  record_row(row);
}
BENCHMARK(BM_HaloExchangeBounded)
    ->Args({2, 0, 0})
    ->Args({4, 0, 0})
    ->Args({4, 1 << 14, 0})
    ->Args({8, 0, 0})
    ->Args({16, 0, 0})
    // Pull-mode twins: same refresh shipped via one-sided windows. The
    // check script requires bytes/iter not to exceed the push rows'.
    ->Args({4, 0, 1})
    ->Args({8, 0, 1});

/// The overlapped ghost-refresh pipeline (prefetch_next / local update
/// of the interior / finish_prefetch) against the same workload as
/// BM_HaloExchangeBounded: wire bytes and collectives must match the
/// blocking rows exactly — the overlap is free — while the interior
/// update runs during the in-flight exchange.
void BM_HaloPrefetchOverlap(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const auto bound = static_cast<count_t>(state.range(1));
  constexpr int kIters = 10;
  const graph::EdgeList el = gen::erdos_renyi(20'000, 16, 3);
  CommRow row{"halo_prefetch", nranks, bound, 0, 0, 0};
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      graph::HaloPlan halo(comm, g);
      halo.set_max_send_bytes(bound);
      halo.reset_stats();
      std::vector<double> vals(g.n_total(), 1.0);
      comm.barrier();
      comm.reset_stats();
      for (int i = 0; i < kIters; ++i)
        halo.overlapped_superstep(comm, vals,
                                  [&](lid_t v) { vals[v] += 1.0; });
      const sim::CommStats world = comm.world_stats();
      note_topology(row, comm, halo.stats(), kIters);
      if (comm.rank() == 0) {
        note_world(row, world, kIters);
        note_overlap(row, halo.stats());
      }
    });
  }
  state.counters["bytes/iter"] = row.bytes_per_iter;
  state.counters["colls/iter"] = row.collectives_per_iter;
  state.counters["inflight_max"] =
      static_cast<double>(row.max_inflight_bytes);
  record_row(row);
}
BENCHMARK(BM_HaloPrefetchOverlap)
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({4, 1 << 14})
    ->Args({8, 0})
    ->Args({16, 0});

/// Flat vs hierarchical routing of the label-propagation exchange on
/// a 4-ranks-per-node topology, at the rank counts where per-message
/// overhead starts to dominate (16/32/64). Both policies run the same
/// workload; the check script requires the hierarchical rows to move
/// strictly fewer inter-node messages than their flat twins. The
/// graph is smaller than BM_ExchangeUpdatesBounded's so the 64-rank
/// rows keep the CI gate fast.
void BM_ShardedUpdates(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const int rpn = static_cast<int>(state.range(1));
  const auto bound = static_cast<count_t>(state.range(2));
  const bool hier = state.range(3) != 0;
  constexpr int kIters = 4;
  const graph::EdgeList el = gen::erdos_renyi(6'000, 12, 3);
  CommRow row{hier ? "sharded_updates_hier" : "sharded_updates_flat",
              nranks, bound};
  for (auto _ : state) {
    sim::run_world(
        nranks,
        [&](sim::Comm& comm) {
          const auto g = graph::build_dist_graph(
              comm, el, graph::VertexDist::random(el.n, nranks, 3));
          core::UpdateExchanger exchanger(bound);
          if (hier)
            exchanger.set_shard_policy(
                xtra::comm::ShardPolicy::kHierarchical);
          std::vector<part_t> parts(g.n_total(), 0);
          std::vector<lid_t> queue(g.n_local());
          for (lid_t v = 0; v < g.n_local(); ++v) queue[v] = v;
          comm.barrier();
          comm.reset_stats();
          for (int it = 0; it < kIters; ++it) {
            for (lid_t v = 0; v < g.n_local(); ++v)
              parts[v] =
                  static_cast<part_t>((v + static_cast<lid_t>(it)) % 8);
            exchanger.run(comm, g, parts, queue);
          }
          const sim::CommStats world = comm.world_stats();
          note_topology(row, comm, exchanger.stats(), kIters);
          if (comm.rank() == 0) {
            note_world(row, world, kIters);
            note_overlap(row, exchanger.stats());
          }
        },
        rpn);
  }
  state.counters["bytes/iter"] = row.bytes_per_iter;
  state.counters["inter_msgs/iter"] = row.inter_node_msgs_per_iter;
  state.counters["inter_bytes/iter"] = row.inter_node_bytes_per_iter;
  record_row(row);
}
BENCHMARK(BM_ShardedUpdates)
    ->Args({16, 4, 1 << 16, 0})
    ->Args({16, 4, 1 << 16, 1})
    ->Args({32, 4, 1 << 16, 0})
    ->Args({32, 4, 1 << 16, 1})
    ->Args({64, 4, 1 << 16, 0})
    ->Args({64, 4, 1 << 16, 1});

/// Cross-superstep coalescing: many supersteps of tiny per-destination
/// runs, shipped per round (uncoalesced) vs batched by a
/// CoalescingExchanger until a byte threshold. Collectives per round
/// drop by the batching factor; total payload bytes are identical.
void BM_CoalescedRounds(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const bool coalesce = state.range(1) != 0;
  constexpr int kRounds = 16;
  constexpr count_t kPerDest = 2;  // tiny runs: overhead-dominated
  const int rpn = 4;
  CommRow row{coalesce ? "coalesced_rounds" : "uncoalesced_rounds",
              nranks, 0};
  for (auto _ : state) {
    sim::run_world(
        nranks,
        [&](sim::Comm& comm) {
          const std::vector<count_t> counts(
              static_cast<std::size_t>(nranks), kPerDest);
          std::vector<std::uint64_t> send(
              static_cast<std::size_t>(nranks) * kPerDest,
              static_cast<std::uint64_t>(comm.rank()));
          comm.barrier();
          comm.reset_stats();
          xtra::comm::Exchanger plain;
          // Flush roughly every 4 rounds.
          xtra::comm::CoalescingExchanger co(4 * kPerDest * nranks *
                                             sizeof(std::uint64_t));
          for (int r = 0; r < kRounds; ++r) {
            if (coalesce)
              (void)co.enqueue(comm, send, counts);
            else
              (void)plain.exchange(comm, send, counts);
          }
          if (coalesce) (void)co.flush<std::uint64_t>(comm);
          const sim::CommStats world = comm.world_stats();
          note_topology(row, comm,
                        coalesce ? co.stats() : plain.stats(), kRounds);
          if (comm.rank() == 0) {
            note_world(row, world, kRounds);
            note_overlap(row, coalesce ? co.stats() : plain.stats());
          }
        },
        rpn);
  }
  state.counters["colls/iter"] = row.collectives_per_iter;
  state.counters["flushes"] = static_cast<double>(row.coalesced_flushes);
  record_row(row);
}
BENCHMARK(BM_CoalescedRounds)->Args({16, 0})->Args({16, 1});

/// The cross-superstep SuperstepPipeline against the same workload as
/// BM_HaloPrefetchOverlap: depth 0 (drain-in-step) must match the
/// blocking rows on bytes and collectives exactly; depths 1 and 2
/// carry each refresh across one / two superstep boundaries, so the
/// engine's pipeline_carried / drained_incrementally ledger lights up
/// while the wire totals stay flat (the pipeline changes *when*
/// arrivals land, not what travels). What does move is exposure: each
/// extra superstep a refresh stays in flight earns overlap credit
/// against the modeled transfer, and the check script requires the d2
/// rows to expose strictly less wire time per iteration than d1.
void BM_HaloPipelineDepth(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const auto bound = static_cast<count_t>(state.range(1));
  const int depth = static_cast<int>(state.range(2));
  constexpr int kIters = 10;
  const graph::EdgeList el = gen::erdos_renyi(20'000, 16, 3);
  CommRow row{"halo_pipeline_d" + std::to_string(depth), nranks, bound};
  // Deterministic stand-in for per-superstep compute, long enough that
  // every carried refresh earns a measurable overlap credit — the
  // depth contract then rides a multi-millisecond margin instead of
  // scheduler noise.
  const auto compute_spin = [] {
    const Timer t;
    while (t.seconds() < 2e-3) {
    }
  };
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      graph::HaloPlan halo(comm, g);
      halo.set_max_send_bytes(bound);
      halo.reset_stats();
      graph::SuperstepPipeline<double> pipe(halo, depth);
      std::vector<double> vals(g.n_total(), 1.0);
      comm.barrier();
      comm.reset_stats();
      for (int i = 0; i < kIters; ++i)
        pipe.superstep(comm, vals, [&](lid_t v) { vals[v] += 1.0; },
                       compute_spin);
      pipe.flush(comm, vals);
      const sim::CommStats world = comm.world_stats();
      note_topology(row, comm, halo.stats(), kIters);
      if (comm.rank() == 0) {
        note_world(row, world, kIters);
        note_overlap(row, halo.stats());
      }
    });
  }
  state.counters["bytes/iter"] = row.bytes_per_iter;
  state.counters["colls/iter"] = row.collectives_per_iter;
  state.counters["carried"] = static_cast<double>(row.pipeline_carried);
  record_row(row);
}
BENCHMARK(BM_HaloPipelineDepth)
    ->Args({4, 0, 0})
    ->Args({4, 0, 1})
    ->Args({4, 1 << 14, 0})
    ->Args({4, 1 << 14, 1})
    ->Args({8, 0, 1})
    // Depth 2: two refreshes in flight (the multi-channel substrate).
    // Each d2 row must expose strictly less wire time than its d1 twin.
    ->Args({4, 0, 2})
    ->Args({4, 1 << 14, 2})
    ->Args({8, 0, 2});

/// Pipelined vs blocking analytics end to end: PageRank and k-core on
/// the SuperstepPipeline at depth 0, 1, and 2. Collectives and bytes
/// per superstep must stay flat across depths — regressions here mean
/// the pipeline started paying for its overlap — and the depth-2
/// PageRank row must expose strictly less wire time per superstep than
/// the depth-1 row (two supersteps of kernel compute hide more of each
/// modeled transfer than one).
void BM_AnalyticsPipelined(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  const bool kcore = state.range(2) != 0;
  const graph::EdgeList el = gen::erdos_renyi(8'000, 12, 5);
  std::string name = kcore ? "kcore" : "pagerank";
  name += depth == 0 ? "_blocking" : "_pipelined";
  if (depth > 1) name += "_d" + std::to_string(depth);
  CommRow row{name, nranks, 0};
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      comm.barrier();
      comm.reset_stats();
      const analytics::RunInfo info =
          kcore ? analytics::kcore_approx(comm, g, 8, depth).info
                : analytics::pagerank(comm, g, 10, 0.85, depth).info;
      const sim::CommStats world = comm.world_stats();
      if (comm.rank() == 0) {
        const auto iters = static_cast<double>(info.supersteps);
        note_world(row, world, iters);
      }
    });
  }
  state.counters["bytes/iter"] = row.bytes_per_iter;
  state.counters["colls/iter"] = row.collectives_per_iter;
  record_row(row);
}
BENCHMARK(BM_AnalyticsPipelined)
    ->Args({8, 0, 0})
    ->Args({8, 1, 0})
    ->Args({8, 0, 1})
    ->Args({8, 1, 1})
    ->Args({8, 2, 0})
    ->Args({8, 2, 1});

/// Community-LP with the per-sweep full ghost refresh vs the
/// CoalescingExchanger path (changed labels batched, flushed every 4
/// sweeps). The check script requires the coalesced row to issue
/// strictly fewer collectives per superstep than its uncoalesced twin
/// — batching per-destination runs across supersteps is the point.
void BM_CommLpCoalesced(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const int coalesce_every = static_cast<int>(state.range(1));
  const graph::EdgeList el = gen::erdos_renyi(8'000, 12, 7);
  CommRow row{coalesce_every > 0 ? "commlp_coalesced"
                                 : "commlp_uncoalesced",
              nranks, 0};
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      comm.barrier();
      comm.reset_stats();
      const analytics::RunInfo info =
          analytics::label_propagation(comm, g, 10,
                                       xtra::comm::ShardPolicy::kFlat,
                                       coalesce_every)
              .info;
      const sim::CommStats world = comm.world_stats();
      if (comm.rank() == 0) {
        const auto iters = static_cast<double>(info.supersteps);
        note_world(row, world, iters);
      }
    });
  }
  state.counters["colls/iter"] = row.collectives_per_iter;
  record_row(row);
}
BENCHMARK(BM_CommLpCoalesced)->Args({8, 0})->Args({8, 4});

/// Community-LP on the cross-superstep pipeline at depth 1 vs 2
/// (stale-ghost-tolerant kernel, fixed superstep budget). Same wire
/// volume either way; the check script requires the d2 row to expose
/// strictly less modeled wire time per superstep than d1 — the
/// payoff of holding two label refreshes in flight.
void BM_CommLpPipelined(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  const graph::EdgeList el = gen::erdos_renyi(8'000, 12, 7);
  CommRow row{"commlp_pipelined_d" + std::to_string(depth), nranks, 0};
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      comm.barrier();
      comm.reset_stats();
      analytics::CommLpProgram p;
      engine::Config cfg;
      cfg.max_supersteps = 10;
      cfg.pipeline_depth = depth;
      const engine::Stats st = engine::run(comm, g, p, cfg);
      const sim::CommStats world = comm.world_stats();
      if (comm.rank() == 0)
        note_world(row, world, static_cast<double>(st.supersteps));
    });
  }
  state.counters["bytes/iter"] = row.bytes_per_iter;
  state.counters["exposed/iter"] = row.exposed_wire_seconds_per_iter;
  record_row(row);
}
BENCHMARK(BM_CommLpPipelined)->Args({8, 1})->Args({8, 2});

/// Engine-vs-wrapper twins: PageRank and community-LP executed
/// directly through engine::run (explicit program + Config) against
/// the wrapper-driven rows above (pagerank_blocking /
/// commlp_uncoalesced). The check script enforces the absolute
/// contract that the direct rows move no more bytes and collectives
/// per superstep than the wrapper rows — the wrappers must stay a
/// zero-cost veneer over the engine. (The engine itself is pinned
/// against the pre-engine hand-rolled kernels by the frozen baseline
/// numbers those kernels recorded.)
void BM_EngineTwin(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const bool commlp = state.range(1) != 0;
  const bool onesided = state.range(2) != 0;
  const graph::EdgeList el = gen::erdos_renyi(8'000, 12, commlp ? 7 : 5);
  std::string name = commlp ? "commlp_engine" : "pagerank_engine";
  if (onesided) name += "_onesided";
  CommRow row{name, nranks, 0};
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      comm.barrier();
      comm.reset_stats();
      engine::Config cfg;
      if (onesided) cfg.backend = comm::Backend::kOneSided;
      engine::Stats st;
      if (commlp) {
        analytics::CommLpProgram p;
        cfg.max_supersteps = 10;
        st = engine::run(comm, g, p, cfg);
      } else {
        analytics::PageRankProgram p;
        cfg.max_supersteps = 10;
        st = engine::run(comm, g, p, cfg);
      }
      const sim::CommStats world = comm.world_stats();
      if (comm.rank() == 0) {
        const auto iters = static_cast<double>(st.supersteps);
        note_world(row, world, iters);
      }
    });
  }
  state.counters["bytes/iter"] = row.bytes_per_iter;
  state.counters["colls/iter"] = row.collectives_per_iter;
  record_row(row);
}
BENCHMARK(BM_EngineTwin)
    ->Args({8, 0, 0})
    ->Args({8, 1, 0})
    // Pull-mode twins: the check script requires bytes/iter not to
    // exceed the two-sided rows' — one-sided re-routes the same
    // payload through window gets, it must not inflate it.
    ->Args({8, 0, 1})
    ->Args({8, 1, 1});

/// PageRank with the adjacency behind the out-of-core segment cache
/// (mmap spill backing), at a 25% and a 100% frame budget, each with a
/// prefetch-off (_nopf) twin. Wire bytes and collectives must match
/// the in-core engine row exactly — seg fetches are backing traffic,
/// not exchange traffic — while the seg ledger rows feed two gates:
/// seg_fetch_bytes rides the baseline tolerance compare, and every
/// prefetch-on row must report strictly lower seg_stall_seconds than
/// its _nopf twin (the plan converts demand stalls into overlap).
void BM_PageRankSegcache(benchmark::State& state) {
  const int nranks = 8;
  const int pct = static_cast<int>(state.range(0));
  const bool prefetch = state.range(1) != 0;
  const graph::EdgeList el = gen::erdos_renyi(8'000, 12, 5);
  std::string name = "pagerank_segcache_q" + std::to_string(pct);
  if (!prefetch) name += "_nopf";
  CommRow row{name, nranks, 0};
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      graph::DistGraph g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      graph::SegCacheOptions opt;
      opt.segment_bytes = 1 << 9;  // enough frames even at q25
      opt.budget_bytes =
          g.m_local() * static_cast<count_t>(sizeof(lid_t)) * pct / 100;
      opt.prefetch = prefetch;
      g.enable_out_of_core(comm, opt);
      comm.barrier();
      comm.reset_stats();
      analytics::PageRankProgram p;
      engine::Config cfg;
      cfg.max_supersteps = 10;
      const engine::Stats st = engine::run(comm, g, p, cfg);
      const sim::CommStats world = comm.world_stats();
      std::vector<count_t> seg{st.exchange.seg_hits,
                               st.exchange.seg_misses,
                               st.exchange.seg_evictions,
                               st.exchange.seg_prefetch_hits,
                               st.exchange.seg_fetch_bytes};
      comm.allreduce_sum(seg);
      const double stall =
          comm.allreduce_sum(st.exchange.seg_stall_seconds);
      g.disable_out_of_core(comm);
      if (comm.rank() == 0) {
        note_world(row, world, static_cast<double>(st.supersteps));
        row.seg_hits = seg[0];
        row.seg_misses = seg[1];
        row.seg_evictions = seg[2];
        row.seg_prefetch_hits = seg[3];
        row.seg_fetch_bytes = seg[4];
        row.seg_stall_seconds = stall;
      }
    });
  }
  state.counters["bytes/iter"] = row.bytes_per_iter;
  state.counters["seg_fetch"] = static_cast<double>(row.seg_fetch_bytes);
  state.counters["seg_stall"] = row.seg_stall_seconds;
  state.counters["hit_rate"] =
      static_cast<double>(row.seg_hits) /
      static_cast<double>(std::max<count_t>(1, row.seg_hits + row.seg_misses));
  record_row(row);
}
BENCHMARK(BM_PageRankSegcache)
    ->Args({25, 1})
    ->Args({25, 0})
    ->Args({100, 1})
    ->Args({100, 0});

/// The delta-capped SSSP frontier program: notification volume per
/// superstep at two bucket widths (a tight delta runs more, smaller
/// supersteps over the same relaxation set; total bytes respond to
/// the cap, not just the graph).
void BM_SsspFrontier(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const auto delta = static_cast<count_t>(state.range(1));
  const graph::EdgeList el = gen::erdos_renyi(8'000, 12, 5);
  // Delta rides the row *name* (max_send_bytes stays the exchange
  // bound, 0 = unbounded here) so the baseline key keeps its meaning.
  CommRow row{delta < (1 << 20) ? "sssp_d" + std::to_string(delta)
                                : "sssp_dinf",
              nranks, 0};
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      comm.barrier();
      comm.reset_stats();
      const analytics::RunInfo info =
          analytics::sssp(comm, g, /*root=*/0, delta).info;
      const sim::CommStats world = comm.world_stats();
      if (comm.rank() == 0) {
        const auto iters = static_cast<double>(info.supersteps);
        note_world(row, world, iters);
      }
    });
  }
  state.counters["bytes/iter"] = row.bytes_per_iter;
  state.counters["colls/iter"] = row.collectives_per_iter;
  record_row(row);
}
BENCHMARK(BM_SsspFrontier)->Args({8, 8})->Args({8, 1 << 20});

/// The query-based triangle counter: one superstep, all traffic in
/// the query_reply round trip (the max_send_bytes knob rides the
/// engine Config into the aux exchanger — the bounded row must move
/// the same bytes across more collectives).
void BM_TriangleQuery(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const auto bound = static_cast<count_t>(state.range(1));
  const graph::EdgeList el = gen::erdos_renyi(4'000, 10, 9);
  CommRow row{"triangles", nranks, bound};
  for (auto _ : state) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, nranks, 3));
      comm.barrier();
      comm.reset_stats();
      engine::Config cfg;
      cfg.max_exchange_bytes = bound;
      const analytics::RunInfo info =
          analytics::triangle_count(comm, g, /*sample_cap=*/64, 1, cfg)
              .info;
      (void)info;
      const sim::CommStats world = comm.world_stats();
      if (comm.rank() == 0) note_world(row, world, 1.0);
    });
  }
  state.counters["bytes/iter"] = row.bytes_per_iter;
  state.counters["colls/iter"] = row.collectives_per_iter;
  record_row(row);
}
BENCHMARK(BM_TriangleQuery)->Args({8, 0})->Args({8, 1 << 16});

/// MPI+X rows: the engine workloads and the full partitioner at
/// 4 ranks x {1, 4, 8} intra-rank threads. The thread width is a pure
/// throughput knob — the check script requires every _tN row's wire
/// metrics (bytes, collectives, topology split) to match its _t1 twin
/// exactly; any drift means a thread raced the wire accounting.
void BM_ThreadedEngine(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const int workload = static_cast<int>(state.range(2));
  constexpr const char* kNames[] = {"pagerank_threads", "commlp_threads",
                                    "sssp_threads", "partition_threads"};
  const graph::EdgeList el = gen::erdos_renyi(8'000, 12, 5);
  CommRow row{std::string(kNames[workload]) + "_t" + std::to_string(threads),
              nranks, 0};
  for (auto _ : state) {
    sim::run_world(
        nranks,
        [&](sim::Comm& comm) {
          const auto g = graph::build_dist_graph(
              comm, el, graph::VertexDist::random(el.n, nranks, 3));
          comm.barrier();
          comm.reset_stats();
          double iters = 1.0;
          if (workload == 3) {
            core::Params params;
            params.nparts = nranks;
            params.num_threads = threads;
            const core::PartitionResult r = core::partition(comm, g, params);
            benchmark::DoNotOptimize(r.parts.data());
          } else {
            engine::Config cfg;
            cfg.num_threads = threads;
            engine::Stats st;
            if (workload == 0) {
              analytics::PageRankProgram p;
              cfg.max_supersteps = 10;
              st = engine::run(comm, g, p, cfg);
            } else if (workload == 1) {
              analytics::CommLpProgram p;
              cfg.max_supersteps = 10;
              st = engine::run(comm, g, p, cfg);
            } else {
              analytics::DeltaSsspProgram p;
              p.root = 0;
              p.delta = 8;
              st = engine::run(comm, g, p, cfg);
            }
            iters = static_cast<double>(st.supersteps);
          }
          const sim::CommStats world = comm.world_stats();
          if (comm.rank() == 0) note_world(row, world, iters);
        },
        /*ranks_per_node=*/2);
  }
  state.counters["bytes/iter"] = row.bytes_per_iter;
  state.counters["colls/iter"] = row.collectives_per_iter;
  record_row(row);
}
BENCHMARK(BM_ThreadedEngine)
    ->Args({4, 1, 0})
    ->Args({4, 4, 0})
    ->Args({4, 8, 0})
    ->Args({4, 1, 1})
    ->Args({4, 4, 1})
    ->Args({4, 8, 1})
    ->Args({4, 1, 2})
    ->Args({4, 4, 2})
    ->Args({4, 8, 2})
    ->Args({4, 1, 3})
    ->Args({4, 4, 3})
    ->Args({4, 8, 3});

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Machine-readable comm-volume report (one object per swept config)
  // for cross-PR regression tracking.
  std::printf("\nCOMM_STATS_JSON [\n");
  bool first = true;
  for (const auto& [key, r] : comm_rows()) {
    std::printf(
        "%s  {\"bench\": \"%s\", \"nranks\": %d, \"max_send_bytes\": %lld, "
        "\"bytes_per_iter\": %.1f, \"collectives_per_iter\": %.2f, "
        "\"phases_per_exchange\": %.2f, "
        "\"inter_node_bytes_per_iter\": %.1f, "
        "\"intra_node_bytes_per_iter\": %.1f, "
        "\"inter_node_msgs_per_iter\": %.2f, "
        "\"coalesced_flushes\": %lld, \"overlapped_frac\": %.2f, "
        "\"start_seconds\": %.4f, \"finish_seconds\": %.4f, "
        "\"max_inflight_bytes\": %lld, "
        "\"drained_incrementally\": %lld, \"pipeline_carried\": %lld, "
        "\"max_pipeline_depth\": %lld, "
        "\"exposed_wire_seconds_per_iter\": %.4f, "
        "\"one_sided_bytes_per_iter\": %.1f, "
        "\"seg_hits\": %lld, \"seg_misses\": %lld, "
        "\"seg_evictions\": %lld, \"seg_prefetch_hits\": %lld, "
        "\"seg_fetch_bytes\": %lld, \"seg_stall_seconds\": %.4f}",
        first ? "" : ",\n", r.bench.c_str(), r.nranks,
        static_cast<long long>(r.max_send_bytes), r.bytes_per_iter,
        r.collectives_per_iter, r.phases_per_iter,
        r.inter_node_bytes_per_iter, r.intra_node_bytes_per_iter,
        r.inter_node_msgs_per_iter,
        static_cast<long long>(r.coalesced_flushes), r.overlapped_frac,
        r.start_seconds, r.finish_seconds,
        static_cast<long long>(r.max_inflight_bytes),
        static_cast<long long>(r.drained_incrementally),
        static_cast<long long>(r.pipeline_carried),
        static_cast<long long>(r.max_pipeline_depth),
        r.exposed_wire_seconds_per_iter, r.one_sided_bytes_per_iter,
        static_cast<long long>(r.seg_hits),
        static_cast<long long>(r.seg_misses),
        static_cast<long long>(r.seg_evictions),
        static_cast<long long>(r.seg_prefetch_hits),
        static_cast<long long>(r.seg_fetch_bytes), r.seg_stall_seconds);
    first = false;
  }
  std::printf("\n]\n");
  return 0;
}
