#!/usr/bin/env python3
"""Comm-volume regression gate.

Runs bench_micro_exchange, parses its COMM_STATS_JSON block, and diffs
it against the checked-in baseline (bench/baselines/comm_stats.json).
A row regresses when bytes_per_iter, collectives_per_iter, or
inter_node_bytes_per_iter grows more than --tolerance (default 10%)
over the baseline; a baseline row missing from the current run is also
a failure (a silently dropped sweep is how regressions hide). Timing
fields are informational and never compared. New rows are reported and
otherwise ignored — add them to the baseline with --update (rows are
written sorted by (bench, nranks, max_send_bytes) so refreshes diff
cleanly).

The hierarchical exchange additionally carries an absolute contract:
for every (nranks >= 16) sharded_updates pair, the hierarchical row
must move strictly fewer inter-node messages per iteration than its
flat twin — that coalescing is the point of the two-level routing.

The coalesced community-LP path carries a second absolute contract:
every commlp_coalesced row must issue strictly fewer collectives per
superstep than its commlp_uncoalesced twin — batching per-destination
label updates across supersteps exists to amortize per-superstep
collective overhead, and a row that stops doing so is a regression
even when it stays inside the baseline tolerance. The pipelined
analytics rows keep bytes and collectives per superstep flat across
depths — the pipeline changes when arrivals land, not what travels —
and additionally carry a pipeline-depth contract: every depth-2 row
(halo_pipeline_d2, pagerank_pipelined_d2, commlp_pipelined_d2) must
report strictly less exposed_wire_seconds_per_iter than its depth-1
twin, because two supersteps of compute hide more of each modeled
transfer than one. Exposure is never part of the baseline tolerance
compare — its overlap credit is wall clock, so only the within-run
depth ordering is gated, not its absolute value.

The one-sided rows (*_onesided twins of halo_exchange and the engine
rows) carry another absolute contract: pull-mode must move no more
wire bytes per iteration than the two-sided twin, and must actually
bill one-sided traffic (a zero one_sided_bytes_per_iter means the
backend knob silently fell back to push mode).

The unified engine carries a third absolute contract: the
pagerank_engine / commlp_engine rows (kernels executed directly via
engine::run with an explicit Config) must move no more bytes or
collectives per superstep than the pagerank_blocking /
commlp_uncoalesced rows, which run the same workload through the
legacy-named analytics:: wrappers. Both paths execute the engine
today, so this pins the *wrapper layer* against diverging from a
direct engine::run (a wrapper that grows extra collectives or
mis-maps a knob fails here); the guard against the engine itself
regressing relative to the pre-engine hand-rolled kernels is the
frozen baseline numbers, which were recorded from those kernels and
verified drift-free at the migration.

The MPI+X rows carry a fourth absolute contract: every *_tN row
(N > 1 intra-rank threads) must match its *_t1 twin EXACTLY on every
wire metric — bytes, collectives, and the topology split. The thread
width is a pure throughput knob by design (DESIGN.md §6); any drift
means a worker thread raced the wire accounting, and no baseline
tolerance excuses it.

The out-of-core rows (pagerank_segcache_q25 / _q100 and their _nopf
twins) carry a fifth absolute contract: every prefetch-on row must
report strictly lower seg_stall_seconds than its prefetch-off twin and
must land at least one prefetch hit — the superstep-driven plan exists
to convert demand stalls into overlap, and both runs see the same
deterministic latency model, so the ordering is exact, not
statistical. seg_fetch_bytes additionally rides the baseline tolerance
compare: a cache that starts refetching segments it should have held
shows up as fetch-volume growth even when the wire stays clean.

With --compare-bench, a second bench binary (in CI: the same tree
built with -DXTRA_VERIFY_COMM=ON) is swept and every gated wire metric
must match the primary run's rows EXACTLY, key by key. The verifier is
observability-only: its extra barriers are unbilled and its checksums
never touch payloads, so any drift in bytes/messages/collectives
between the two builds means a verifier hook leaked into the wire
accounting. Timing metrics are exempt (the verifier legitimately costs
wall clock).

With --serving-bench, the serving bench's SERVE_STATS_JSON block rides
the same machinery (same scraper, same tolerance compare) against
bench/baselines/serve_stats.json, keyed by (bench, nranks,
slot_budget), plus two absolute contracts. Packing: every serve_mix
row must spend strictly fewer collectives per query than its
serve_mix_perquery twin (slot budget 1) at the same rank count — one
shared ledger allreduce per packed superstep is why the batched
frontier exists — while moving the same payload within a small slack
(the ledger vector itself is budget-sized, so its allreduce bytes
shift slightly with packing). Determinism: the serve_mix_onesided and
serve_mix_t8 twins must reproduce serve_mix's whole latency ledger
(p50/p95/p99, qps, supersteps/query, occupancy, virtual seconds)
EXACTLY — the wire backend and the thread width are pure throughput
knobs under the virtual clock. Wire metrics are per-backend and
exempt from the determinism parity. --serving-only skips the comm
sweep for a serving-gate-only CI job.

Usage:
  python3 bench/check_comm_baseline.py --bench build/bench_micro_exchange
  python3 bench/check_comm_baseline.py --bench ... --update   # refresh
  python3 bench/check_comm_baseline.py --bench ... \\
      --compare-bench build-verify/bench_micro_exchange
  python3 bench/check_comm_baseline.py --serving-only \\
      --serving-bench build/bench_serving
"""
import argparse
import json
import pathlib
import re
import subprocess
import sys

BASELINE = pathlib.Path(__file__).parent / "baselines" / "comm_stats.json"
COMPARED = ("bytes_per_iter", "collectives_per_iter",
            "inter_node_bytes_per_iter", "seg_fetch_bytes")
HIER_PAIRS = ("sharded_updates_hier", "sharded_updates_flat")
HIER_MIN_RANKS = 16
COALESCE_PAIRS = ("commlp_coalesced", "commlp_uncoalesced")
# Engine rows (direct engine::run) vs the legacy-named wrapper rows
# running the same workload: pins the wrapper layer to a direct
# engine::run (see the docstring). Keyed engine-row -> twin-row bench
# name; nranks/max_send_bytes must match.
ENGINE_TWINS = {"pagerank_engine": "pagerank_blocking",
                "commlp_engine": "commlp_uncoalesced"}
ENGINE_SLACK = 1.001  # strict equality modulo float formatting
# MPI+X rows: "<workload>_threads_tN". N > 1 rows must equal the _t1
# twin exactly on every wire metric (threads change timing only).
THREAD_ROW = re.compile(r"^(.+_threads)_t(\d+)$")
THREAD_METRICS = ("bytes_per_iter", "collectives_per_iter",
                  "inter_node_bytes_per_iter",
                  "intra_node_bytes_per_iter",
                  "inter_node_msgs_per_iter")
# Pipeline-depth rows: a depth-2 row keeps two refreshes in flight, so
# it must expose strictly less modeled wire time per iteration than its
# depth-1 twin (same traffic, more of it hidden behind compute). Keyed
# deep-row -> shallow-row bench name; nranks/max_send_bytes must match.
DEPTH_PAIRS = (("halo_pipeline_d2", "halo_pipeline_d1"),
               ("pagerank_pipelined_d2", "pagerank_pipelined"),
               ("commlp_pipelined_d2", "commlp_pipelined_d1"))
EXPOSED = "exposed_wire_seconds_per_iter"
# One-sided rows: "<bench>_onesided" pulls the same payload from
# exposure windows instead of pushing it through alltoallv. It must
# not move more wire bytes per iteration than its two-sided twin.
ONESIDED_ROW = re.compile(r"^(.+)_onesided$")
ONESIDED_SLACK = 1.001  # equality modulo float formatting
# Out-of-core rows: "<bench>_nopf" is the prefetch-off twin of an
# otherwise identical segcache row. Prefetch must strictly reduce the
# modeled demand stall (deterministic latency model — no noise floor).
NOPF_ROW = re.compile(r"^(.+_segcache_q\d+)_nopf$")
SEG_STALL = "seg_stall_seconds"
# Deterministic wire counters that --compare-bench pins to exact
# equality between the verifier-on and verifier-off builds. Timing and
# exposure fields are excluded: the verifier may cost wall clock, never
# wire traffic.
PARITY_METRICS = ("bytes_per_iter", "collectives_per_iter",
                  "inter_node_bytes_per_iter",
                  "intra_node_bytes_per_iter",
                  "inter_node_msgs_per_iter",
                  "one_sided_bytes_per_iter",
                  "seg_fetch_bytes")
# --- Serving gates (SERVE_STATS_JSON from bench_serving) ------------
SERVE_BASELINE = pathlib.Path(__file__).parent / "baselines" \
    / "serve_stats.json"
SERVE_COMPARED = ("p99_ms", "collectives_per_query", "bytes_per_query")
# The per-source twin of the batched serve_mix row (slot budget 1).
SERVE_PAIRS = ("serve_mix", "serve_mix_perquery")
# The batched row repacks WHEN ledger collectives happen, and the
# ledger vector itself scales with the slot budget, so payload parity
# holds only within a small slack (measured drift ~1.3%).
SERVE_BYTES_SLACK = 1.05
# serve_mix twins that must reproduce the exact same latency ledger:
# backend and thread width are throughput knobs under the virtual
# clock (DESIGN.md §10). Wire metrics are per-backend and exempt.
SERVE_DETERMINISM_TWINS = ("serve_mix_onesided", "serve_mix_t8")
SERVE_DETERMINISM_METRICS = ("p50_ms", "p95_ms", "p99_ms",
                             "queries_per_sec", "slot_occupancy",
                             "supersteps_per_query", "virtual_seconds")


def run_bench(bench, min_time):
    # Newer google-benchmark releases require a unit suffix on
    # --benchmark_min_time ("0.01s"); older ones reject it. Try the
    # given spelling first, then the other form. Every failed attempt
    # is kept and replayed to stderr on exit — the first attempt's
    # output usually carries the real diagnostic, and the retry must
    # not swallow it.
    variants = [min_time]
    variants.append(min_time[:-1] if min_time.endswith("s")
                    else min_time + "s")
    attempts = []
    for i, mt in enumerate(variants):
        cmd = [bench, f"--benchmark_min_time={mt}"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode == 0:
            return proc.stdout
        attempts.append((cmd, proc.returncode,
                         proc.stdout + proc.stderr))
        # Only retry the other spelling for a flag-parse rejection; a
        # real bench failure should surface immediately, not after a
        # second full sweep.
        if i + 1 < len(variants) and "min_time" in attempts[-1][2]:
            continue
        break
    for cmd, code, blob in attempts:
        sys.stderr.write(f"--- {' '.join(cmd)} (exit {code}) ---\n")
        sys.stderr.write(blob if blob.endswith("\n") or not blob
                         else blob + "\n")
    first_cmd, first_code, _ = attempts[0]
    sys.exit(f"bench failed on all {len(attempts)} attempt(s); first: "
             f"'{' '.join(first_cmd)}' exited with {first_code} "
             f"(full output of every attempt above)")


def run_serving(bench):
    # bench_serving is a plain binary (no google-benchmark harness):
    # everything it reports is virtual-clock, so there is no min-time
    # to sweep.
    proc = subprocess.run([bench], capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(f"serving bench '{bench}' exited with {proc.returncode}")
    return proc.stdout


def parse_rows(stdout, marker="COMM_STATS_JSON"):
    """The one stats scraper: find `marker`, JSON-decode the list that
    follows it. Both COMM_STATS_JSON and SERVE_STATS_JSON ride it."""
    at = stdout.find(marker)
    if at < 0:
        sys.exit(f"no {marker} block in bench output")
    return json.loads(stdout[at + len(marker):])


def key_of(row):
    return (row["bench"], row["nranks"], row["max_send_bytes"])


def serve_key_of(row):
    return (row["bench"], row["nranks"], row["slot_budget"])


def check_hier_contract(current):
    """Hierarchical rows must beat their flat twins on inter-node
    messages at every swept rank count >= HIER_MIN_RANKS."""
    failures = []
    hier_name, flat_name = HIER_PAIRS
    pairs = 0
    for key, hier in current.items():
        if key[0] != hier_name or key[1] < HIER_MIN_RANKS:
            continue
        flat = current.get((flat_name, key[1], key[2]))
        if flat is None:
            failures.append(f"{key}: no flat twin row to compare against")
            continue
        pairs += 1
        h, f = (r.get("inter_node_msgs_per_iter", 0.0)
                for r in (hier, flat))
        if not h < f:
            failures.append(
                f"{key}: inter_node_msgs_per_iter {h:.1f} not strictly "
                f"below flat twin's {f:.1f}")
    if pairs == 0:
        failures.append(
            f"no ({hier_name}, {flat_name}) pairs at nranks >= "
            f"{HIER_MIN_RANKS} in the current run")
    return failures


def check_coalesce_contract(current):
    """Coalesced commLP rows must beat their uncoalesced twins on
    collectives per superstep, strictly."""
    failures = []
    co_name, unco_name = COALESCE_PAIRS
    pairs = 0
    for key, co in current.items():
        if key[0] != co_name:
            continue
        unco = current.get((unco_name, key[1], key[2]))
        if unco is None:
            failures.append(f"{key}: no uncoalesced twin row to compare "
                            f"against")
            continue
        pairs += 1
        c, u = (r.get("collectives_per_iter", 0.0) for r in (co, unco))
        if not c < u:
            failures.append(
                f"{key}: collectives_per_iter {c:.2f} not strictly below "
                f"uncoalesced twin's {u:.2f}")
    if pairs == 0:
        failures.append(
            f"no ({co_name}, {unco_name}) pairs in the current run")
    return failures


def check_engine_contract(current):
    """Direct engine::run rows may move no more bytes/collectives per
    superstep than the wrapper-driven twins on the same workload (the
    wrapper layer must stay a zero-cost veneer over the engine)."""
    failures = []
    pairs = 0
    for key, row in current.items():
        twin_name = ENGINE_TWINS.get(key[0])
        if twin_name is None:
            continue
        twin = current.get((twin_name, key[1], key[2]))
        if twin is None:
            failures.append(f"{key}: no {twin_name} twin row to compare "
                            f"against")
            continue
        pairs += 1
        for metric in ("bytes_per_iter", "collectives_per_iter"):
            e, t = (r.get(metric, 0.0) for r in (row, twin))
            if e > t * ENGINE_SLACK:
                failures.append(
                    f"{key}: {metric} {e:.2f} exceeds legacy twin "
                    f"{twin_name}'s {t:.2f}")
    if pairs == 0:
        failures.append("no engine-twin pairs in the current run")
    return failures


def check_thread_contract(current):
    """*_tN rows (N > 1) must match their *_t1 twin exactly on every
    wire metric: intra-rank threads may change timing, nothing else."""
    failures = []
    pairs = 0
    for key, row in current.items():
        m = THREAD_ROW.match(key[0])
        if m is None or m.group(2) == "1":
            continue
        twin = current.get((m.group(1) + "_t1", key[1], key[2]))
        if twin is None:
            failures.append(f"{key}: no _t1 twin row to compare against")
            continue
        pairs += 1
        for metric in THREAD_METRICS:
            a = row.get(metric, 0.0)
            b = twin.get(metric, 0.0)
            # Exact modulo the %.1f/%.2f formatting of the JSON block.
            if abs(a - b) > 1e-6 * max(1.0, abs(b)):
                failures.append(
                    f"{key}: {metric} {a} drifted from _t1 twin's {b} "
                    f"(thread count must not touch the wire)")
    if pairs == 0:
        failures.append("no *_tN thread-twin pairs in the current run")
    return failures


def check_depth_contract(current):
    """Depth-2 pipeline rows must expose strictly less modeled wire
    time per iteration than their depth-1 twins: deeper overlap is the
    point of the multi-channel substrate, and exposure is the metric
    that sees it (bytes and collectives stay flat by design)."""
    failures = []
    pairs = 0
    for deep_name, shallow_name in DEPTH_PAIRS:
        for key, deep in current.items():
            if key[0] != deep_name:
                continue
            shallow = current.get((shallow_name, key[1], key[2]))
            if shallow is None:
                failures.append(
                    f"{key}: no {shallow_name} twin row to compare "
                    f"against")
                continue
            pairs += 1
            d, s = deep.get(EXPOSED), shallow.get(EXPOSED)
            if d is None or s is None:
                failures.append(f"{key}: {EXPOSED} missing from the "
                                f"depth pair")
            elif not d < s:
                failures.append(
                    f"{key}: {EXPOSED} {d:.4f} not strictly below "
                    f"{shallow_name} twin's {s:.4f} (a deeper pipeline "
                    f"must hide more of the same traffic)")
    if pairs == 0:
        failures.append("no pipeline depth-pair rows in the current run")
    return failures


def check_onesided_contract(current):
    """*_onesided rows must move no more wire bytes per iteration than
    their two-sided twins — pull-mode re-routes the payload through
    window gets, it must not inflate it."""
    failures = []
    pairs = 0
    for key, row in current.items():
        m = ONESIDED_ROW.match(key[0])
        if m is None:
            continue
        twin = current.get((m.group(1), key[1], key[2]))
        if twin is None:
            failures.append(f"{key}: no two-sided twin row to compare "
                            f"against")
            continue
        pairs += 1
        o = row.get("bytes_per_iter", 0.0)
        t = twin.get("bytes_per_iter", 0.0)
        if o > t * ONESIDED_SLACK:
            failures.append(
                f"{key}: bytes_per_iter {o:.1f} exceeds two-sided "
                f"twin's {t:.1f}")
        if row.get("one_sided_bytes_per_iter", 0.0) <= 0.0:
            failures.append(
                f"{key}: one_sided_bytes_per_iter is zero — the row "
                f"did not actually ride the one-sided backend")
    if pairs == 0:
        failures.append("no one-sided twin pairs in the current run")
    return failures


def check_segcache_contract(current):
    """Prefetch-on segcache rows must stall strictly less than their
    _nopf twins, and must actually land prefetch hits (a zero means
    the plan never engaged and the row degenerated into its twin)."""
    failures = []
    pairs = 0
    for key, nopf in current.items():
        m = NOPF_ROW.match(key[0])
        if m is None:
            continue
        on = current.get((m.group(1), key[1], key[2]))
        if on is None:
            failures.append(f"{key}: no prefetch-on twin row to compare "
                            f"against")
            continue
        pairs += 1
        s_on, s_off = on.get(SEG_STALL), nopf.get(SEG_STALL)
        if s_on is None or s_off is None:
            failures.append(f"{key}: {SEG_STALL} missing from the "
                            f"prefetch pair")
        elif not s_on < s_off:
            failures.append(
                f"{key}: prefetch-on {SEG_STALL} {s_on:.4f} not strictly "
                f"below prefetch-off twin's {s_off:.4f} (the plan must "
                f"convert demand stalls into overlap)")
        if on is not None and on.get("seg_prefetch_hits", 0) <= 0:
            failures.append(
                f"{(m.group(1), key[1], key[2])}: seg_prefetch_hits is "
                f"zero — the prefetch plan never landed")
    if pairs == 0:
        failures.append("no segcache prefetch-twin pairs in the current "
                        "run")
    return failures


def check_verifier_parity(current, other):
    """Every gated wire metric must be identical, row by row, between
    the primary (verifier-off) and comparison (verifier-on) sweeps."""
    failures = []
    for key in sorted(set(current) | set(other)):
        a, b = current.get(key), other.get(key)
        if a is None or b is None:
            failures.append(
                f"{key}: present only in the "
                f"{'comparison' if a is None else 'primary'} run — the two "
                f"builds must sweep identical rows")
            continue
        for metric in PARITY_METRICS:
            x = a.get(metric, 0.0)
            y = b.get(metric, 0.0)
            # Exact modulo the %.1f/%.2f formatting of the JSON block.
            if abs(x - y) > 1e-6 * max(1.0, abs(x)):
                failures.append(
                    f"{key}: {metric} {y} (verifier build) != {x} — the "
                    f"verifier must be observability-only on the wire")
    if not failures and not current:
        failures.append("verifier parity: no rows to compare")
    return failures


def check_multisource_contract(current):
    """Batched serve_mix rows must spend strictly fewer collectives
    per query than their per-source twins at every swept rank count,
    at (near-)equal payload bytes — packing amortizes the superstep
    collectives, it must not smuggle extra payload."""
    failures = []
    batched_name, perquery_name = SERVE_PAIRS
    pairs = 0
    for key, batched in current.items():
        if key[0] != batched_name:
            continue
        twin = next((r for k, r in current.items()
                     if k[0] == perquery_name and k[1] == key[1]), None)
        if twin is None:
            failures.append(f"{key}: no {perquery_name} twin row to "
                            f"compare against")
            continue
        pairs += 1
        b, p = (r.get("collectives_per_query", 0.0)
                for r in (batched, twin))
        if not b < p:
            failures.append(
                f"{key}: collectives_per_query {b:.3f} not strictly "
                f"below per-source twin's {p:.3f}")
        bb, pb = (r.get("bytes_per_query", 0.0) for r in (batched, twin))
        if bb > pb * SERVE_BYTES_SLACK or pb > bb * SERVE_BYTES_SLACK:
            failures.append(
                f"{key}: bytes_per_query {bb:.1f} vs per-source twin's "
                f"{pb:.1f} — packing must not change what travels "
                f"(slack {SERVE_BYTES_SLACK})")
    if pairs == 0:
        failures.append(
            f"no ({batched_name}, {perquery_name}) pairs in the current "
            f"serving run")
    return failures


def check_serve_determinism(current):
    """The one-sided and 8-thread twins must reproduce serve_mix's
    latency ledger exactly: same seed + same trace => byte-identical
    per-query latencies on either backend at any thread width."""
    failures = []
    pairs = 0
    for key, row in current.items():
        if key[0] not in SERVE_DETERMINISM_TWINS:
            continue
        base = next((r for k, r in current.items()
                     if k[0] == SERVE_PAIRS[0] and k[1] == key[1]), None)
        if base is None:
            failures.append(f"{key}: no serve_mix row to compare against")
            continue
        pairs += 1
        for metric in SERVE_DETERMINISM_METRICS:
            a = row.get(metric, 0.0)
            b = base.get(metric, 0.0)
            # Exact modulo the fixed-point formatting of the block.
            if abs(a - b) > 1e-9 * max(1.0, abs(b)):
                failures.append(
                    f"{key}: {metric} {a} drifted from serve_mix's {b} "
                    f"(backend/threads must not touch the virtual clock)")
    if pairs == 0:
        failures.append("no serve determinism twins in the current "
                        "serving run")
    return failures


def serving_section(args):
    """Sweep bench_serving, gate its SERVE_STATS_JSON block. Returns
    the failure list, or None when --update rewrote the baseline."""
    rows = sorted(parse_rows(run_serving(args.serving_bench),
                             marker="SERVE_STATS_JSON"),
                  key=serve_key_of)
    current = {serve_key_of(r): r for r in rows}

    if args.dump:
        dump = pathlib.Path(args.dump + ".serving")
        dump.parent.mkdir(parents=True, exist_ok=True)
        dump.write_text(json.dumps(rows, indent=2) + "\n")
        print(f"dumped {len(rows)} serving rows to {dump}")

    if args.update:
        SERVE_BASELINE.parent.mkdir(parents=True, exist_ok=True)
        SERVE_BASELINE.write_text(json.dumps(rows, indent=2) + "\n")
        print(f"wrote {len(rows)} rows to {SERVE_BASELINE}")
        return None

    failures = []
    baseline = {serve_key_of(r): r
                for r in json.loads(SERVE_BASELINE.read_text())}
    for key, base in sorted(baseline.items()):
        got = current.get(key)
        if got is None:
            failures.append(f"{key}: serving row missing from current run")
            continue
        for metric in SERVE_COMPARED:
            allowed = base[metric] * (1.0 + args.tolerance)
            if got.get(metric, 0.0) > allowed:
                failures.append(
                    f"{key}: {metric} {got[metric]:.3f} > baseline "
                    f"{base[metric]:.3f} (+{args.tolerance:.0%} allowed)")
    for key in sorted(set(current) - set(baseline)):
        print(f"note: new serving row not in baseline: {key}")

    failures += check_multisource_contract(current)
    failures += check_serve_determinism(current)
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", default="build/bench_micro_exchange",
                    help="path to the bench_micro_exchange binary")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional growth per compared metric")
    ap.add_argument("--min-time", default="0.01s",
                    help="--benchmark_min_time passed to the bench "
                         "(unit-suffixed; the suffixless spelling is "
                         "retried automatically for older releases)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the current run")
    ap.add_argument("--compare-bench", metavar="PATH",
                    help="second bench binary (verifier-enabled build); "
                         "its gated wire metrics must equal the primary "
                         "run's exactly")
    ap.add_argument("--dump", metavar="PATH",
                    help="write the run's COMM_STATS_JSON rows to PATH "
                         "(CI uploads this as an artifact on gate "
                         "failure); a serving sweep dumps to "
                         "PATH.serving")
    ap.add_argument("--serving-bench", metavar="PATH",
                    help="bench_serving binary; gates its "
                         "SERVE_STATS_JSON block against "
                         "baselines/serve_stats.json plus the "
                         "multi-source and determinism contracts")
    ap.add_argument("--serving-only", action="store_true",
                    help="skip the comm sweep; requires --serving-bench")
    args = ap.parse_args()

    if args.serving_only:
        if not args.serving_bench:
            ap.error("--serving-only requires --serving-bench")
        failures = serving_section(args)
        if failures is None:  # --update rewrote the baseline
            return
        if failures:
            print(f"\nserving gate FAILED ({len(failures)} regressions):")
            for f in failures:
                print(f"  {f}")
            sys.exit(1)
        print("serving gate passed: baseline within tolerance; "
              "multi-source packing and latency-determinism contracts "
              "held")
        return

    rows = sorted(parse_rows(run_bench(args.bench, args.min_time)),
                  key=key_of)
    current = {key_of(r): r for r in rows}

    if args.dump:
        dump = pathlib.Path(args.dump)
        dump.parent.mkdir(parents=True, exist_ok=True)
        dump.write_text(json.dumps(rows, indent=2) + "\n")
        print(f"dumped {len(rows)} rows to {dump}")

    if args.update:
        BASELINE.parent.mkdir(parents=True, exist_ok=True)
        BASELINE.write_text(json.dumps(rows, indent=2) + "\n")
        print(f"wrote {len(rows)} rows to {BASELINE}")
        if args.serving_bench:
            serving_section(args)
        return

    baseline = {key_of(r): r for r in json.loads(BASELINE.read_text())}
    failures = []
    for key, base in sorted(baseline.items()):
        got = current.get(key)
        if got is None:
            failures.append(f"{key}: row missing from current run")
            continue
        for metric in COMPARED:
            if metric not in base:
                continue  # pre-ledger baseline row: nothing to compare
            allowed = base[metric] * (1.0 + args.tolerance)
            if got.get(metric, 0.0) > allowed:
                failures.append(
                    f"{key}: {metric} {got[metric]:.1f} > baseline "
                    f"{base[metric]:.1f} (+{args.tolerance:.0%} allowed)")
    for key in sorted(set(current) - set(baseline)):
        print(f"note: new row not in baseline: {key}")

    failures += check_hier_contract(current)
    failures += check_coalesce_contract(current)
    failures += check_engine_contract(current)
    failures += check_thread_contract(current)
    failures += check_depth_contract(current)
    failures += check_onesided_contract(current)
    failures += check_segcache_contract(current)

    serving = ""
    if args.serving_bench:
        failures += serving_section(args) or []
        serving = ", and the serving gates held"

    parity = ""
    if args.compare_bench:
        other_rows = parse_rows(run_bench(args.compare_bench,
                                          args.min_time))
        other = {key_of(r): r for r in other_rows}
        failures += check_verifier_parity(current, other)
        parity = (f", and the verifier build matched all {len(current)} "
                  f"rows exactly on the wire")

    if failures:
        print(f"\ncomm baseline check FAILED ({len(failures)} regressions):")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print(f"comm baseline check passed: {len(baseline)} rows within "
          f"{args.tolerance:.0%}; hierarchical inter-node, coalesced "
          f"commLP, engine-twin, thread-twin, pipeline-depth, "
          f"one-sided, and segcache-prefetch contracts held" + serving
          + parity)


if __name__ == "__main__":
    main()
