#!/usr/bin/env python3
"""Comm-volume regression gate.

Runs bench_micro_exchange, parses its COMM_STATS_JSON block, and diffs
it against the checked-in baseline (bench/baselines/comm_stats.json).
A row regresses when bytes_per_iter or collectives_per_iter grows more
than --tolerance (default 10%) over the baseline; a baseline row
missing from the current run is also a failure (a silently dropped
sweep is how regressions hide). Timing fields are informational and
never compared. New rows are reported and otherwise ignored — add them
to the baseline with --update.

Usage:
  python3 bench/check_comm_baseline.py --bench build/bench_micro_exchange
  python3 bench/check_comm_baseline.py --bench ... --update   # refresh
"""
import argparse
import json
import pathlib
import subprocess
import sys

BASELINE = pathlib.Path(__file__).parent / "baselines" / "comm_stats.json"
COMPARED = ("bytes_per_iter", "collectives_per_iter")


def run_bench(bench, min_time):
    cmd = [bench, f"--benchmark_min_time={min_time}"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(f"bench exited with {proc.returncode}: {' '.join(cmd)}")
    return proc.stdout


def parse_rows(stdout):
    marker = "COMM_STATS_JSON"
    at = stdout.find(marker)
    if at < 0:
        sys.exit("no COMM_STATS_JSON block in bench output")
    return json.loads(stdout[at + len(marker):])


def key_of(row):
    return (row["bench"], row["nranks"], row["max_send_bytes"])


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", default="build/bench_micro_exchange",
                    help="path to the bench_micro_exchange binary")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional growth per compared metric")
    ap.add_argument("--min-time", default="0.01",
                    help="--benchmark_min_time passed to the bench")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the current run")
    args = ap.parse_args()

    rows = parse_rows(run_bench(args.bench, args.min_time))
    current = {key_of(r): r for r in rows}

    if args.update:
        BASELINE.parent.mkdir(parents=True, exist_ok=True)
        BASELINE.write_text(json.dumps(rows, indent=2) + "\n")
        print(f"wrote {len(rows)} rows to {BASELINE}")
        return

    baseline = {key_of(r): r for r in json.loads(BASELINE.read_text())}
    failures = []
    for key, base in sorted(baseline.items()):
        got = current.get(key)
        if got is None:
            failures.append(f"{key}: row missing from current run")
            continue
        for metric in COMPARED:
            allowed = base[metric] * (1.0 + args.tolerance)
            if got[metric] > allowed:
                failures.append(
                    f"{key}: {metric} {got[metric]:.1f} > baseline "
                    f"{base[metric]:.1f} (+{args.tolerance:.0%} allowed)")
    for key in sorted(set(current) - set(baseline)):
        print(f"note: new row not in baseline: {key}")

    if failures:
        print(f"\ncomm baseline check FAILED ({len(failures)} regressions):")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print(f"comm baseline check passed: {len(baseline)} rows within "
          f"{args.tolerance:.0%}")


if __name__ == "__main__":
    main()
