// Figure 3: XtraPuLP relative speedup on six representative graphs,
// computing 16 parts as rank count grows.
//
// Paper: 1..16 nodes of Cluster-1, speedups between ~2x and ~14x at 16
// nodes depending on graph structure. Here: 1..8 simulated ranks (one
// core underneath, so "speedup" reflects algorithmic communication/
// work balance rather than hardware). Expected shape: meshes show the
// best scaling (low cut after init => little exchange), social
// networks the worst.
#include "bench/bench_common.hpp"
#include "gen/suite.hpp"

using namespace xtra;

int main() {
  const double scale = gen::env_scale();
  const part_t nparts = 16;
  const char* graphs[] = {"lj",        "orkut",   "friendster",
                          "wdc12-pay", "rmat_14", "nlpkkt_s"};

  std::printf("Fig 3: relative comm volume & time vs single rank, %d parts\n",
              nparts);
  bench::Table table({{"graph", 13},
                      {"ranks", 7},
                      {"time(s)", 10},
                      {"work-imb", 10},
                      {"comm", 10}});
  for (const char* name : graphs) {
    const graph::EdgeList el = gen::make_suite_graph(name, scale);
    for (const int nranks : {1, 2, 4, 8}) {
      core::Params params;
      params.nparts = nparts;
      const bench::RunResult r = bench::run_xtrapulp(el, nranks, params);
      table.cell(name);
      table.cell(static_cast<count_t>(nranks));
      table.cell(r.seconds);
      table.cell(r.work_balance, "%.2f");
      table.cell(bench::fmt_bytes(r.comm_bytes));
    }
  }
  std::printf(
      "\nSingle-core substrate: wall time cannot drop with rank count;\n"
      "'work-imb' near 1.0 is what yields the paper's Fig 3 speedups on\n"
      "real nodes (see EXPERIMENTS.md).\n");
  return 0;
}
