// Ablations of the design choices DESIGN.md §5 calls out:
//  (a) initialization strategy (BFS-growing vs random vs block) —
//      the paper's "novel initialization" claim (§III-B, wdc-pay
//      observation in §V-B);
//  (b) degree-weighted vs unweighted balance counts (Alg 4);
//  (c) random-among-assigned vs max-count label choice at init;
//  (d) the dynamic multiplier: default (X=1,Y=0.25) vs disabled
//      throttling (X=Y=0 -> no growth estimate, the oscillation the
//      paper built mult to prevent).
#include "bench/bench_common.hpp"
#include "gen/suite.hpp"

using namespace xtra;

namespace {

void run_case(bench::Table& table, const char* graph, const char* label,
              const graph::EdgeList& el, const core::Params& params) {
  const bench::RunResult r = bench::run_xtrapulp(el, 4, params);
  table.cell(graph);
  table.cell(label);
  table.cell(r.quality.edge_cut_ratio);
  table.cell(r.quality.scaled_max_cut);
  table.cell(r.quality.vertex_imbalance);
  table.cell(r.quality.edge_imbalance);
  table.cell(r.seconds, "%.2f");
}

}  // namespace

int main() {
  const double scale = gen::env_scale() * 0.5;
  const part_t nparts = 16;

  std::printf("Ablations (4 ranks, %d parts)\n", nparts);
  bench::Table table({{"graph", 12},
                      {"variant", 22},
                      {"cut", 9},
                      {"maxcut", 9},
                      {"vimb", 8},
                      {"eimb", 8},
                      {"time", 8}});
  for (const char* name : {"lj", "wdc12-pay", "rmat_14", "nlpkkt_s"}) {
    const graph::EdgeList el = gen::make_suite_graph(name, scale);
    core::Params base;
    base.nparts = nparts;

    run_case(table, name, "default(bfs-init)", el, base);

    core::Params p = base;
    p.init = core::InitStrategy::kRandom;
    run_case(table, name, "init=random", el, p);

    p = base;
    p.init = core::InitStrategy::kBlock;
    run_case(table, name, "init=block", el, p);

    p = base;
    p.init_random_among_assigned = false;
    run_case(table, name, "init-label=maxcount", el, p);

    p = base;
    p.degree_weighted_balance = false;
    run_case(table, name, "balance=unweighted", el, p);

    p = base;
    p.mult_x = 0.0;
    p.mult_y = 0.0;
    run_case(table, name, "mult=off(X=Y=0)", el, p);
  }
  std::printf(
      "\nExpected: bfs-init beats random/block cut on web graphs; the\n"
      "degree weighting helps social/rmat cut; X=Y=0 shows the unthrottled\n"
      "imbalance oscillation the multiplier exists to prevent (Fig 7's\n"
      "dark corner).\n");
  return 0;
}
