# Empty dependencies file for test_references.
# This may be replaced when dependencies are built.
