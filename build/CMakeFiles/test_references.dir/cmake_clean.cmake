file(REMOVE_RECURSE
  "CMakeFiles/test_references.dir/tests/test_references.cpp.o"
  "CMakeFiles/test_references.dir/tests/test_references.cpp.o.d"
  "test_references"
  "test_references.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_references.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
