file(REMOVE_RECURSE
  "libxtra.a"
)
