# Empty dependencies file for xtra.
# This may be replaced when dependencies are built.
