
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/commlp.cpp" "CMakeFiles/xtra.dir/src/analytics/commlp.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/analytics/commlp.cpp.o.d"
  "/root/repo/src/analytics/components.cpp" "CMakeFiles/xtra.dir/src/analytics/components.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/analytics/components.cpp.o.d"
  "/root/repo/src/analytics/harmonic.cpp" "CMakeFiles/xtra.dir/src/analytics/harmonic.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/analytics/harmonic.cpp.o.d"
  "/root/repo/src/analytics/kcore.cpp" "CMakeFiles/xtra.dir/src/analytics/kcore.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/analytics/kcore.cpp.o.d"
  "/root/repo/src/analytics/pagerank.cpp" "CMakeFiles/xtra.dir/src/analytics/pagerank.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/analytics/pagerank.cpp.o.d"
  "/root/repo/src/analytics/scc.cpp" "CMakeFiles/xtra.dir/src/analytics/scc.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/analytics/scc.cpp.o.d"
  "/root/repo/src/baseline/coarsen.cpp" "CMakeFiles/xtra.dir/src/baseline/coarsen.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/baseline/coarsen.cpp.o.d"
  "/root/repo/src/baseline/fm_refine.cpp" "CMakeFiles/xtra.dir/src/baseline/fm_refine.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/baseline/fm_refine.cpp.o.d"
  "/root/repo/src/baseline/matching.cpp" "CMakeFiles/xtra.dir/src/baseline/matching.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/baseline/matching.cpp.o.d"
  "/root/repo/src/baseline/multilevel.cpp" "CMakeFiles/xtra.dir/src/baseline/multilevel.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/baseline/multilevel.cpp.o.d"
  "/root/repo/src/baseline/pulp.cpp" "CMakeFiles/xtra.dir/src/baseline/pulp.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/baseline/pulp.cpp.o.d"
  "/root/repo/src/baseline/sclp.cpp" "CMakeFiles/xtra.dir/src/baseline/sclp.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/baseline/sclp.cpp.o.d"
  "/root/repo/src/baseline/serial_graph.cpp" "CMakeFiles/xtra.dir/src/baseline/serial_graph.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/baseline/serial_graph.cpp.o.d"
  "/root/repo/src/baseline/trivial.cpp" "CMakeFiles/xtra.dir/src/baseline/trivial.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/baseline/trivial.cpp.o.d"
  "/root/repo/src/comm/exchanger.cpp" "CMakeFiles/xtra.dir/src/comm/exchanger.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/comm/exchanger.cpp.o.d"
  "/root/repo/src/core/edge_phases.cpp" "CMakeFiles/xtra.dir/src/core/edge_phases.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/core/edge_phases.cpp.o.d"
  "/root/repo/src/core/exchange.cpp" "CMakeFiles/xtra.dir/src/core/exchange.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/core/exchange.cpp.o.d"
  "/root/repo/src/core/init.cpp" "CMakeFiles/xtra.dir/src/core/init.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/core/init.cpp.o.d"
  "/root/repo/src/core/state.cpp" "CMakeFiles/xtra.dir/src/core/state.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/core/state.cpp.o.d"
  "/root/repo/src/core/vert_phases.cpp" "CMakeFiles/xtra.dir/src/core/vert_phases.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/core/vert_phases.cpp.o.d"
  "/root/repo/src/core/xtrapulp.cpp" "CMakeFiles/xtra.dir/src/core/xtrapulp.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/core/xtrapulp.cpp.o.d"
  "/root/repo/src/gen/mesh.cpp" "CMakeFiles/xtra.dir/src/gen/mesh.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/gen/mesh.cpp.o.d"
  "/root/repo/src/gen/random_graphs.cpp" "CMakeFiles/xtra.dir/src/gen/random_graphs.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/gen/random_graphs.cpp.o.d"
  "/root/repo/src/gen/rmat.cpp" "CMakeFiles/xtra.dir/src/gen/rmat.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/gen/rmat.cpp.o.d"
  "/root/repo/src/gen/smallworld.cpp" "CMakeFiles/xtra.dir/src/gen/smallworld.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/gen/smallworld.cpp.o.d"
  "/root/repo/src/gen/suite.cpp" "CMakeFiles/xtra.dir/src/gen/suite.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/gen/suite.cpp.o.d"
  "/root/repo/src/graph/bfs.cpp" "CMakeFiles/xtra.dir/src/graph/bfs.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/graph/bfs.cpp.o.d"
  "/root/repo/src/graph/dist.cpp" "CMakeFiles/xtra.dir/src/graph/dist.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/graph/dist.cpp.o.d"
  "/root/repo/src/graph/dist_graph.cpp" "CMakeFiles/xtra.dir/src/graph/dist_graph.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/graph/dist_graph.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "CMakeFiles/xtra.dir/src/graph/edge_list.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/graph/edge_list.cpp.o.d"
  "/root/repo/src/graph/halo.cpp" "CMakeFiles/xtra.dir/src/graph/halo.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/graph/halo.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "CMakeFiles/xtra.dir/src/graph/io.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/graph/io.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "CMakeFiles/xtra.dir/src/graph/stats.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/graph/stats.cpp.o.d"
  "/root/repo/src/metrics/quality.cpp" "CMakeFiles/xtra.dir/src/metrics/quality.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/metrics/quality.cpp.o.d"
  "/root/repo/src/mpisim/world.cpp" "CMakeFiles/xtra.dir/src/mpisim/world.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/mpisim/world.cpp.o.d"
  "/root/repo/src/spmv/spmv.cpp" "CMakeFiles/xtra.dir/src/spmv/spmv.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/spmv/spmv.cpp.o.d"
  "/root/repo/src/util/log.cpp" "CMakeFiles/xtra.dir/src/util/log.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/xtra.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/xtra.dir/src/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
