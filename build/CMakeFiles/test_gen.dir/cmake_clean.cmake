file(REMOVE_RECURSE
  "CMakeFiles/test_gen.dir/tests/test_gen.cpp.o"
  "CMakeFiles/test_gen.dir/tests/test_gen.cpp.o.d"
  "test_gen"
  "test_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
