file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_single_objective.dir/bench/bench_fig6_single_objective.cpp.o"
  "CMakeFiles/bench_fig6_single_objective.dir/bench/bench_fig6_single_objective.cpp.o.d"
  "bench_fig6_single_objective"
  "bench_fig6_single_objective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_single_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
