# Empty dependencies file for bench_fig6_single_objective.
# This may be replaced when dependencies are built.
