# Empty dependencies file for example_mesh_spmv.
# This may be replaced when dependencies are built.
