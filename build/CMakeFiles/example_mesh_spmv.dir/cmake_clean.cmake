file(REMOVE_RECURSE
  "CMakeFiles/example_mesh_spmv.dir/examples/mesh_spmv.cpp.o"
  "CMakeFiles/example_mesh_spmv.dir/examples/mesh_spmv.cpp.o.d"
  "example_mesh_spmv"
  "example_mesh_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mesh_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
