# Empty dependencies file for bench_fig7_xy_sweep.
# This may be replaced when dependencies are built.
