file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_xy_sweep.dir/bench/bench_fig7_xy_sweep.cpp.o"
  "CMakeFiles/bench_fig7_xy_sweep.dir/bench/bench_fig7_xy_sweep.cpp.o.d"
  "bench_fig7_xy_sweep"
  "bench_fig7_xy_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_xy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
