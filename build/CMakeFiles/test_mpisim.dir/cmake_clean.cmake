file(REMOVE_RECURSE
  "CMakeFiles/test_mpisim.dir/tests/test_mpisim.cpp.o"
  "CMakeFiles/test_mpisim.dir/tests/test_mpisim.cpp.o.d"
  "test_mpisim"
  "test_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
