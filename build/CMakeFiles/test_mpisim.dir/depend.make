# Empty dependencies file for test_mpisim.
# This may be replaced when dependencies are built.
