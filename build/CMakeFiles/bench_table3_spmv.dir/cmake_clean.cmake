file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_spmv.dir/bench/bench_table3_spmv.cpp.o"
  "CMakeFiles/bench_table3_spmv.dir/bench/bench_table3_spmv.cpp.o.d"
  "bench_table3_spmv"
  "bench_table3_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
