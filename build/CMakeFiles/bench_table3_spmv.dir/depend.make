# Empty dependencies file for bench_table3_spmv.
# This may be replaced when dependencies are built.
