# Empty dependencies file for bench_trillion_scaled.
# This may be replaced when dependencies are built.
