file(REMOVE_RECURSE
  "CMakeFiles/bench_trillion_scaled.dir/bench/bench_trillion_scaled.cpp.o"
  "CMakeFiles/bench_trillion_scaled.dir/bench/bench_trillion_scaled.cpp.o.d"
  "bench_trillion_scaled"
  "bench_trillion_scaled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trillion_scaled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
