# Empty dependencies file for bench_fig8_analytics.
# This may be replaced when dependencies are built.
