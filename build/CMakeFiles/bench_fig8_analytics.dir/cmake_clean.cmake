file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_analytics.dir/bench/bench_fig8_analytics.cpp.o"
  "CMakeFiles/bench_fig8_analytics.dir/bench/bench_fig8_analytics.cpp.o.d"
  "bench_fig8_analytics"
  "bench_fig8_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
