file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_strong_scaling.dir/bench/bench_fig1_strong_scaling.cpp.o"
  "CMakeFiles/bench_fig1_strong_scaling.dir/bench/bench_fig1_strong_scaling.cpp.o.d"
  "bench_fig1_strong_scaling"
  "bench_fig1_strong_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
