# Empty dependencies file for test_comm.
# This may be replaced when dependencies are built.
