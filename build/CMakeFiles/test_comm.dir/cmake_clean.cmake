file(REMOVE_RECURSE
  "CMakeFiles/test_comm.dir/tests/test_comm.cpp.o"
  "CMakeFiles/test_comm.dir/tests/test_comm.cpp.o.d"
  "test_comm"
  "test_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
