# Empty dependencies file for bench_table2_comparison.
# This may be replaced when dependencies are built.
