file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_comparison.dir/bench/bench_table2_comparison.cpp.o"
  "CMakeFiles/bench_table2_comparison.dir/bench/bench_table2_comparison.cpp.o.d"
  "bench_table2_comparison"
  "bench_table2_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
