file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_weak_scaling.dir/bench/bench_fig2_weak_scaling.cpp.o"
  "CMakeFiles/bench_fig2_weak_scaling.dir/bench/bench_fig2_weak_scaling.cpp.o.d"
  "bench_fig2_weak_scaling"
  "bench_fig2_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
