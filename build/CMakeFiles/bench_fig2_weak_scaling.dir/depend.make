# Empty dependencies file for bench_fig2_weak_scaling.
# This may be replaced when dependencies are built.
