file(REMOVE_RECURSE
  "CMakeFiles/test_phases.dir/tests/test_phases.cpp.o"
  "CMakeFiles/test_phases.dir/tests/test_phases.cpp.o.d"
  "test_phases"
  "test_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
