# Empty dependencies file for test_phases.
# This may be replaced when dependencies are built.
