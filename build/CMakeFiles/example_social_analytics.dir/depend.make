# Empty dependencies file for example_social_analytics.
# This may be replaced when dependencies are built.
