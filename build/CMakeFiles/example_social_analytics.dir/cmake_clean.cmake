file(REMOVE_RECURSE
  "CMakeFiles/example_social_analytics.dir/examples/social_analytics.cpp.o"
  "CMakeFiles/example_social_analytics.dir/examples/social_analytics.cpp.o.d"
  "example_social_analytics"
  "example_social_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
