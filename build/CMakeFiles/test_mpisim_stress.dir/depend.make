# Empty dependencies file for test_mpisim_stress.
# This may be replaced when dependencies are built.
