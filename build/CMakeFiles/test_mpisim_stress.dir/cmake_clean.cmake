file(REMOVE_RECURSE
  "CMakeFiles/test_mpisim_stress.dir/tests/test_mpisim_stress.cpp.o"
  "CMakeFiles/test_mpisim_stress.dir/tests/test_mpisim_stress.cpp.o.d"
  "test_mpisim_stress"
  "test_mpisim_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpisim_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
