file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_graphs.dir/bench/bench_table1_graphs.cpp.o"
  "CMakeFiles/bench_table1_graphs.dir/bench/bench_table1_graphs.cpp.o.d"
  "bench_table1_graphs"
  "bench_table1_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
