# Empty dependencies file for bench_table1_graphs.
# This may be replaced when dependencies are built.
