file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_scale_quality.dir/bench/bench_fig5_scale_quality.cpp.o"
  "CMakeFiles/bench_fig5_scale_quality.dir/bench/bench_fig5_scale_quality.cpp.o.d"
  "bench_fig5_scale_quality"
  "bench_fig5_scale_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_scale_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
