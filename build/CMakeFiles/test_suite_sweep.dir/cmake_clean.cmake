file(REMOVE_RECURSE
  "CMakeFiles/test_suite_sweep.dir/tests/test_suite_sweep.cpp.o"
  "CMakeFiles/test_suite_sweep.dir/tests/test_suite_sweep.cpp.o.d"
  "test_suite_sweep"
  "test_suite_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
