# Empty dependencies file for test_suite_sweep.
# This may be replaced when dependencies are built.
