# Empty dependencies file for example_partition_tool.
# This may be replaced when dependencies are built.
