file(REMOVE_RECURSE
  "CMakeFiles/example_partition_tool.dir/examples/partition_tool.cpp.o"
  "CMakeFiles/example_partition_tool.dir/examples/partition_tool.cpp.o.d"
  "example_partition_tool"
  "example_partition_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_partition_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
