file(REMOVE_RECURSE
  "CMakeFiles/test_misc.dir/tests/test_misc.cpp.o"
  "CMakeFiles/test_misc.dir/tests/test_misc.cpp.o.d"
  "test_misc"
  "test_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
