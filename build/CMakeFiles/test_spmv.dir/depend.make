# Empty dependencies file for test_spmv.
# This may be replaced when dependencies are built.
