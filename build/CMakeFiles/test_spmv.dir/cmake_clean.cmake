file(REMOVE_RECURSE
  "CMakeFiles/test_spmv.dir/tests/test_spmv.cpp.o"
  "CMakeFiles/test_spmv.dir/tests/test_spmv.cpp.o.d"
  "test_spmv"
  "test_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
