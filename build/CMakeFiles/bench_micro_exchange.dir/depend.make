# Empty dependencies file for bench_micro_exchange.
# This may be replaced when dependencies are built.
