file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_exchange.dir/bench/bench_micro_exchange.cpp.o"
  "CMakeFiles/bench_micro_exchange.dir/bench/bench_micro_exchange.cpp.o.d"
  "bench_micro_exchange"
  "bench_micro_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
