file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_quality.dir/bench/bench_fig4_quality.cpp.o"
  "CMakeFiles/bench_fig4_quality.dir/bench/bench_fig4_quality.cpp.o.d"
  "bench_fig4_quality"
  "bench_fig4_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
