# Empty dependencies file for bench_fig4_quality.
# This may be replaced when dependencies are built.
