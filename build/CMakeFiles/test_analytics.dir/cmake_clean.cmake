file(REMOVE_RECURSE
  "CMakeFiles/test_analytics.dir/tests/test_analytics.cpp.o"
  "CMakeFiles/test_analytics.dir/tests/test_analytics.cpp.o.d"
  "test_analytics"
  "test_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
