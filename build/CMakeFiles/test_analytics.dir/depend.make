# Empty dependencies file for test_analytics.
# This may be replaced when dependencies are built.
