# Empty dependencies file for example_webcrawl_scc.
# This may be replaced when dependencies are built.
