file(REMOVE_RECURSE
  "CMakeFiles/example_webcrawl_scc.dir/examples/webcrawl_scc.cpp.o"
  "CMakeFiles/example_webcrawl_scc.dir/examples/webcrawl_scc.cpp.o.d"
  "example_webcrawl_scc"
  "example_webcrawl_scc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_webcrawl_scc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
