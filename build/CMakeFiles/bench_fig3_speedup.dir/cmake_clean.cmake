file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_speedup.dir/bench/bench_fig3_speedup.cpp.o"
  "CMakeFiles/bench_fig3_speedup.dir/bench/bench_fig3_speedup.cpp.o.d"
  "bench_fig3_speedup"
  "bench_fig3_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
