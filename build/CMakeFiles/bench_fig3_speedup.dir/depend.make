# Empty dependencies file for bench_fig3_speedup.
# This may be replaced when dependencies are built.
