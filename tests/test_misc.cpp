// Assorted edge-case tests: collision-heavy hash maps, exhaustive
// distribution properties, disconnected-graph diameter estimation,
// metrics with empty parts, and exchange-protocol corner cases.
#include <gtest/gtest.h>

#include "core/exchange.hpp"
#include "gen/generators.hpp"
#include "graph/bfs.hpp"
#include "graph/dist_graph.hpp"
#include "graph/halo.hpp"
#include "metrics/quality.hpp"
#include "mpisim/comm.hpp"
#include "util/flat_map.hpp"

namespace xtra {
namespace {

using graph::EdgeList;
using graph::VertexDist;

TEST(FlatMapCollisions, KeysForcedIntoSameBucketStillResolve) {
  // Keys chosen so splitmix64(key) collides in the low bits often
  // enough to exercise long probe chains: use a small map kept at high
  // load by interleaving lookups.
  GidToLidMap m;
  constexpr std::uint64_t kStride = 1ull << 32;  // vary only high bits
  for (std::uint64_t i = 0; i < 5000; ++i)
    ASSERT_TRUE(m.insert(i * kStride, i));
  for (std::uint64_t i = 0; i < 5000; ++i)
    ASSERT_EQ(m.find(i * kStride), i);
  for (std::uint64_t i = 0; i < 5000; ++i)
    ASSERT_EQ(m.find(i * kStride + 1), kInvalidLid);
}

TEST(VertexDistExhaustive, BlockRangePartitionsEveryN) {
  for (gid_t n : {1u, 2u, 5u, 16u, 17u, 100u}) {
    for (int p : {1, 2, 3, 7, 16}) {
      const VertexDist d = VertexDist::block(n, p);
      gid_t covered = 0;
      for (int r = 0; r < p; ++r) {
        const auto [lo, hi] = d.block_range(r);
        EXPECT_EQ(lo, covered);
        covered = hi;
        for (gid_t v = lo; v < hi && v < n; ++v) EXPECT_EQ(d.owner(v), r);
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(DiameterEstimate, DisconnectedGraphTerminates) {
  EdgeList el;
  el.n = 20;
  // Two paths: 0..9 and 10..19 (each diameter 9), no connection.
  for (gid_t v = 0; v + 1 < 10; ++v) el.edges.push_back({v, v + 1});
  for (gid_t v = 10; v + 1 < 20; ++v) el.edges.push_back({v, v + 1});
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::block(el.n, 2));
    // Root in the first component: estimator must terminate and report
    // that component's diameter.
    const count_t d = graph::estimate_diameter(comm, g, 6, 0);
    EXPECT_EQ(d, 9);
  });
}

TEST(DiameterEstimate, IsolatedRootReportsZero) {
  EdgeList el;
  el.n = 5;
  el.edges = {{1, 2}, {2, 3}};
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::block(el.n, 2));
    EXPECT_EQ(graph::estimate_diameter(comm, g, 3, /*first_root=*/0), 0);
  });
}

TEST(Metrics, EmptyPartsStillScoreConsistently) {
  EdgeList el;
  el.n = 6;
  el.edges = {{0, 1}, {2, 3}, {4, 5}};
  // Only parts 0 and 3 of 4 used.
  const std::vector<part_t> parts{0, 0, 3, 3, 0, 3};
  const auto q = metrics::evaluate(el, parts, 4);
  EXPECT_EQ(q.cut, 1);  // edge 4-5 spans parts 0 and 3
  // Max part holds 3 of 6 vertices; average per part is 1.5.
  EXPECT_NEAR(q.vertex_imbalance, 2.0, 1e-12);
}

TEST(Exchange, DoubleQueuedVertexIsIdempotent) {
  EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {1, 2}, {2, 3}};
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::block(el.n, 2));
    std::vector<part_t> parts(g.n_total(), 0);
    std::vector<lid_t> queue;
    for (lid_t v = 0; v < g.n_local(); ++v) {
      parts[v] = static_cast<part_t>(g.gid_of(v));
      queue.push_back(v);
      queue.push_back(v);  // duplicates must not corrupt ghosts
    }
    core::exchange_updates(comm, g, parts, queue);
    for (lid_t v = g.n_local(); v < g.n_total(); ++v)
      EXPECT_EQ(parts[v], static_cast<part_t>(g.gid_of(v)));
  });
}

TEST(Halo, RepeatedExchangesTrackChangingValues) {
  const EdgeList el = gen::erdos_renyi(400, 6, 8);
  sim::run_world(3, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::random(el.n, 3, 4));
    graph::HaloPlan halo(comm, g);
    std::vector<count_t> vals(g.n_total(), 0);
    for (count_t round = 1; round <= 5; ++round) {
      for (lid_t v = 0; v < g.n_local(); ++v)
        vals[v] = static_cast<count_t>(g.gid_of(v)) * round;
      halo.exchange(comm, vals);
      for (lid_t v = g.n_local(); v < g.n_total(); ++v)
        ASSERT_EQ(vals[v], static_cast<count_t>(g.gid_of(v)) * round);
    }
  });
}

TEST(Halo, DirectedGraphCoversInAndOutGhosts) {
  EdgeList el;
  el.n = 4;
  el.directed = true;
  el.edges = {{0, 3}, {3, 1}};  // rank 0 owns {0,1}, rank 1 owns {2,3}
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::block(el.n, 2));
    graph::HaloPlan halo(comm, g);
    std::vector<gid_t> vals(g.n_total(), 999);
    for (lid_t v = 0; v < g.n_local(); ++v) vals[v] = g.gid_of(v);
    halo.exchange(comm, vals);
    // Every ghost (from either direction) must now hold its gid.
    for (lid_t v = g.n_local(); v < g.n_total(); ++v)
      EXPECT_EQ(vals[v], g.gid_of(v));
  });
}

TEST(Bfs, ReverseBfsFollowsInEdges) {
  EdgeList el;
  el.n = 4;
  el.directed = true;
  el.edges = {{0, 1}, {1, 2}, {2, 3}};
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::block(el.n, 2));
    std::vector<count_t> levels;
    const count_t ecc =
        bfs_levels(comm, g, 3, levels, /*use_in_edges=*/true);
    EXPECT_EQ(ecc, 3);
    for (lid_t v = 0; v < g.n_local(); ++v)
      EXPECT_EQ(levels[v], static_cast<count_t>(3 - g.gid_of(v)));
  });
}

}  // namespace
}  // namespace xtra
