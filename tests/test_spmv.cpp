// Tests for the distributed SpMV: numerical agreement with a serial
// reference under every layout, and the Table III communication
// property (2D + good 1D map => less traffic).
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/partitioners.hpp"
#include "baseline/serial_graph.hpp"
#include "gen/generators.hpp"
#include "mpisim/comm.hpp"
#include "spmv/spmv.hpp"

namespace xtra::spmv {
namespace {

using graph::EdgeList;

/// Serial power iteration on (A = adjacency + I); returns the final
/// infinity norm, matching SpmvStats::checksum.
double serial_checksum(const EdgeList& el, int iters) {
  const baseline::SerialGraph g = baseline::build_serial_graph(el);
  std::vector<double> x(g.n, 1.0), y(g.n, 0.0);
  double norm = 1.0;
  for (int it = 0; it < iters; ++it) {
    for (gid_t v = 0; v < g.n; ++v) {
      double sum = x[v];  // unit diagonal
      for (const gid_t u : g.neighbors(v)) sum += x[u];
      y[v] = sum;
    }
    norm = 0.0;
    for (const double v : y) norm = std::max(norm, std::abs(v));
    for (gid_t v = 0; v < g.n; ++v) x[v] = y[v] / norm;
  }
  return norm;
}

class SpmvRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, SpmvRanks, ::testing::Values(1, 2, 4, 6),
                         [](const auto& inf) {
                           return "nranks_" + std::to_string(inf.param);
                         });

TEST_P(SpmvRanks, OneDMatchesSerialReference) {
  const int nranks = GetParam();
  const EdgeList el = gen::erdos_renyi(400, 8, 5);
  const double expect = serial_checksum(el, 8);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto parts = baseline::random_partition(el.n, nranks, 3);
    DistSpmv spmv(comm, el, owners_from_parts(parts), Layout::kOneD);
    const SpmvStats stats = spmv.run(comm, 8);
    EXPECT_NEAR(stats.checksum, expect, expect * 1e-9);
  });
}

TEST_P(SpmvRanks, TwoDMatchesSerialReference) {
  const int nranks = GetParam();
  const EdgeList el = gen::community_graph(600, 8, 0.6, 2.3, 5);
  const double expect = serial_checksum(el, 8);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto parts = baseline::vertex_block_partition(el.n, nranks);
    DistSpmv spmv(comm, el, owners_from_parts(parts), Layout::kTwoD);
    const SpmvStats stats = spmv.run(comm, 8);
    EXPECT_NEAR(stats.checksum, expect, expect * 1e-9);
  });
}

TEST_P(SpmvRanks, NnzConservedAcrossLayouts) {
  const int nranks = GetParam();
  const EdgeList el = gen::erdos_renyi(300, 6, 9);
  graph::EdgeList canon = el;
  graph::canonicalize(canon);
  const count_t expect_nnz =
      2 * canon.edge_count() + static_cast<count_t>(el.n);
  for (const Layout layout : {Layout::kOneD, Layout::kTwoD}) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto parts = baseline::random_partition(el.n, nranks, 7);
      DistSpmv spmv(comm, el, owners_from_parts(parts), layout);
      const SpmvStats stats = spmv.run(comm, 1);
      EXPECT_EQ(comm.allreduce_sum(stats.local_nnz), expect_nnz);
    });
  }
}

TEST(Spmv, GridIsSquarest) {
  sim::run_world(4, [&](sim::Comm& comm) {
    const EdgeList el = gen::erdos_renyi(100, 4, 1);
    const auto parts = baseline::random_partition(el.n, 4, 1);
    DistSpmv spmv(comm, el, owners_from_parts(parts), Layout::kTwoD);
    EXPECT_EQ(spmv.grid_rows(), 2);
    EXPECT_EQ(spmv.grid_cols(), 2);
  });
  sim::run_world(6, [&](sim::Comm& comm) {
    const EdgeList el = gen::erdos_renyi(100, 4, 1);
    const auto parts = baseline::random_partition(el.n, 6, 1);
    DistSpmv spmv(comm, el, owners_from_parts(parts), Layout::kTwoD);
    EXPECT_EQ(spmv.grid_rows(), 2);
    EXPECT_EQ(spmv.grid_cols(), 3);
  });
}

TEST(Spmv, SingleRankHasNoTraffic) {
  const EdgeList el = gen::erdos_renyi(200, 6, 2);
  sim::run_world(1, [&](sim::Comm& comm) {
    DistSpmv spmv(comm, el, std::vector<int>(el.n, 0), Layout::kOneD);
    const SpmvStats stats = spmv.run(comm, 4);
    EXPECT_EQ(stats.comm_bytes, 0);
  });
}

TEST(Spmv, GoodPartitionReducesOneDTraffic) {
  // Mesh: block partition (contiguous strips) has tiny halo; random
  // has a huge one — Table III's 1D-Block vs 1D-Rand on nlpkkt240.
  const EdgeList el = gen::mesh2d(50, 50);
  count_t block_bytes = 0, rand_bytes = 0;
  sim::run_world(4, [&](sim::Comm& comm) {
    DistSpmv a(comm, el,
               owners_from_parts(baseline::vertex_block_partition(el.n, 4)),
               Layout::kOneD);
    const count_t ba = comm.allreduce_sum(a.run(comm, 4).comm_bytes);
    DistSpmv b(comm, el,
               owners_from_parts(baseline::random_partition(el.n, 4, 3)),
               Layout::kOneD);
    const count_t bb = comm.allreduce_sum(b.run(comm, 4).comm_bytes);
    if (comm.rank() == 0) {
      block_bytes = ba;
      rand_bytes = bb;
    }
  });
  EXPECT_LT(block_bytes, rand_bytes / 4);
}

TEST(Spmv, TwoDReducesTrafficOnSkewedGraph) {
  // The Table III headline: on a power-law graph with a random 1D
  // map, the 2D fold bounds per-rank communication.
  const EdgeList el =
      graph::symmetrized(gen::webcrawl(3000, 16, 7));
  count_t oned = 0, twod = 0;
  sim::run_world(4, [&](sim::Comm& comm) {
    const auto parts = baseline::random_partition(el.n, 4, 9);
    DistSpmv a(comm, el, owners_from_parts(parts), Layout::kOneD);
    const count_t ba = comm.allreduce_sum(a.run(comm, 4).comm_bytes);
    DistSpmv b(comm, el, owners_from_parts(parts), Layout::kTwoD);
    const count_t bb = comm.allreduce_sum(b.run(comm, 4).comm_bytes);
    if (comm.rank() == 0) {
      oned = ba;
      twod = bb;
    }
  });
  EXPECT_LT(twod, oned);
}

TEST(Spmv, ImportsShrinkWithLocality) {
  const EdgeList el = gen::mesh2d(40, 40);
  sim::run_world(4, [&](sim::Comm& comm) {
    DistSpmv block(comm, el,
                   owners_from_parts(baseline::vertex_block_partition(el.n, 4)),
                   Layout::kOneD);
    DistSpmv rand(comm, el,
                  owners_from_parts(baseline::random_partition(el.n, 4, 5)),
                  Layout::kOneD);
    const count_t bi = comm.allreduce_sum(block.run(comm, 1).x_imports);
    const count_t ri = comm.allreduce_sum(rand.run(comm, 1).x_imports);
    EXPECT_LT(bi, ri);
  });
}

}  // namespace
}  // namespace xtra::spmv
