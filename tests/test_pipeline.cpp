// Tests for the cross-superstep pipelined execution engine: the
// Exchanger's incremental drain (drain_one / try_finish must be
// bit-identical to the one-shot finish for any bound and either shard
// policy), the HaloPlan's incremental prefetch drain, the
// SuperstepPipeline (depth 0 bit-identical to the blocking superstep;
// depth 1 carries refreshes across supersteps and flushes to the
// owners' last-shipped values), and the analytics that ride it:
// PageRank and k-core at pipeline_depth 0 must match their blocking
// references exactly, at depth 1 they must converge to the same
// answer; commLP with coalesce_every == 1 must match the uncoalesced
// path bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <string_view>
#include <vector>

#include "analytics/analytics.hpp"
#include "comm/exchanger.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "graph/halo.hpp"
#include "mpisim/comm.hpp"
#include "util/parallel.hpp"

namespace xtra {
namespace {

using comm::Exchanger;

/// CI matrix hook: XTRA_TEST_BACKEND=onesided re-drives the
/// result-correctness pipeline tests over the pull-mode transport.
/// The exact-billing drain tests below never read this — their phase
/// arithmetic is a per-backend contract.
comm::Backend env_backend() {
  const char* v = std::getenv("XTRA_TEST_BACKEND");
  return v && std::string_view(v) == "onesided" ? comm::Backend::kOneSided
                                                : comm::Backend::kTwoSided;
}

/// Deterministic per-(source, dest) record counts with some zero runs.
count_t ragged_count(int src, int dst, int salt) {
  const unsigned h = static_cast<unsigned>(src * 7919 + dst * 104729 +
                                           salt * 1299721);
  return static_cast<count_t>((h >> 3) % 5);  // 0..4 records
}

/// Ragged (source, dest, index)-tagged payload for rank `me`.
void ragged_payload(int me, int nranks, int salt,
                    std::vector<count_t>& counts,
                    std::vector<std::uint64_t>& send) {
  counts.assign(static_cast<std::size_t>(nranks), 0);
  send.clear();
  for (int d = 0; d < nranks; ++d) {
    counts[static_cast<std::size_t>(d)] = ragged_count(me, d, salt);
    for (count_t i = 0; i < counts[static_cast<std::size_t>(d)]; ++i)
      send.push_back(static_cast<std::uint64_t>(me) * 1'000'000 +
                     static_cast<std::uint64_t>(d) * 1'000 +
                     static_cast<std::uint64_t>(i));
  }
}

// ---------------------------------------------------------------------------
// Exchanger::drain_one / try_finish

struct DrainCase {
  int nranks;
  int ranks_per_node;
  comm::ShardPolicy policy;
};

class DrainWorlds : public ::testing::TestWithParam<DrainCase> {};

INSTANTIATE_TEST_SUITE_P(
    Topologies, DrainWorlds,
    ::testing::Values(DrainCase{4, 1, comm::ShardPolicy::kFlat},
                      DrainCase{8, 1, comm::ShardPolicy::kFlat},
                      DrainCase{8, 4, comm::ShardPolicy::kHierarchical},
                      DrainCase{16, 4, comm::ShardPolicy::kHierarchical}),
    [](const auto& inf) {
      return std::string(inf.param.policy == comm::ShardPolicy::kFlat
                             ? "flat"
                             : "hier") +
             "_ranks_" + std::to_string(inf.param.nranks) + "_rpn_" +
             std::to_string(inf.param.ranks_per_node);
    });

TEST_P(DrainWorlds, DrainOneUntilDoneBitIdenticalToFinish) {
  const auto [nranks, rpn, policy] = GetParam();
  // Bounds: sub-record, one record, odd 3-record chunks, and
  // effectively unbounded — phase counts from many to one.
  for (const count_t bound : {count_t(0), count_t(1), count_t(8),
                              count_t(24), count_t(1) << 20}) {
    sim::run_world(
        nranks,
        [&, nranks = nranks, policy = policy](sim::Comm& comm) {
          std::vector<count_t> counts;
          std::vector<std::uint64_t> send;
          ragged_payload(comm.rank(), nranks,
                         static_cast<int>(bound % 97), counts, send);
          std::vector<count_t> expect_rcounts;
          const std::vector<std::uint64_t> expect =
              comm.alltoallv(send, counts, &expect_rcounts);
          const count_t expect_total = std::accumulate(
              expect_rcounts.begin(), expect_rcounts.end(), count_t(0));

          Exchanger ex(bound, policy);
          ex.start(comm, send, counts);
          // The handle owns a snapshot: the caller's buffer dies the
          // moment start() returns, and blocking collectives may
          // interleave between drain steps.
          std::fill(send.begin(), send.end(), 0xDEADBEEFu);
          send.clear();
          send.shrink_to_fit();

          // Reassemble the result purely from the consumer callback;
          // segments must tile [0, expect_total) exactly once.
          std::vector<std::uint64_t> assembled(
              static_cast<std::size_t>(expect_total), 0);
          std::vector<int> covered(static_cast<std::size_t>(expect_total),
                                   0);
          count_t drains = 0;
          bool more = true;
          while (more) {
            more = ex.drain_one<std::uint64_t>(
                comm, [&](int source, count_t dst_offset,
                          std::span<const std::uint64_t> recs) {
                  EXPECT_GE(source, 0);
                  EXPECT_LT(source, nranks);
                  for (std::size_t j = 0; j < recs.size(); ++j) {
                    const auto at =
                        static_cast<std::size_t>(dst_offset) + j;
                    ASSERT_LT(at, assembled.size());
                    assembled[at] = recs[j];
                    ++covered[at];
                  }
                });
            ++drains;
            (void)comm.allreduce_sum<count_t>(1);  // interleaved collective
          }
          EXPECT_FALSE(ex.in_flight());
          EXPECT_EQ(assembled, expect) << "bound=" << bound;
          for (const int c : covered) EXPECT_EQ(c, 1);
          EXPECT_EQ(ex.stats().exchanges, 1);
          EXPECT_EQ(ex.stats().drained_incrementally, 1);

          // The drain count is the globally agreed phase plan (the
          // hierarchical protocol drains in one step).
          if (policy == comm::ShardPolicy::kFlat)
            EXPECT_EQ(drains, std::max<count_t>(ex.stats().phases, 1));
          else
            EXPECT_EQ(drains, 1);

          // One-shot finish on a fresh engine: same wire accounting.
          Exchanger oneshot(bound, policy);
          std::vector<count_t> counts2;
          std::vector<std::uint64_t> send2;
          ragged_payload(comm.rank(), nranks,
                         static_cast<int>(bound % 97), counts2, send2);
          oneshot.start(comm, send2, counts2);
          std::vector<count_t> rcounts;
          const auto got = oneshot.finish<std::uint64_t>(comm, &rcounts);
          EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()),
                    expect);
          EXPECT_EQ(rcounts, expect_rcounts);
          EXPECT_EQ(oneshot.stats().phases, ex.stats().phases);
          EXPECT_EQ(oneshot.stats().bytes_sent, ex.stats().bytes_sent);
          EXPECT_EQ(oneshot.stats().drained_incrementally, 0);
        },
        rpn);
  }
}

TEST_P(DrainWorlds, TryFinishPollsToCompletion) {
  const auto [nranks, rpn, policy] = GetParam();
  for (const count_t bound : {count_t(0), count_t(8), count_t(64)}) {
    sim::run_world(
        nranks,
        [&, nranks = nranks, policy = policy](sim::Comm& comm) {
          std::vector<count_t> counts;
          std::vector<std::uint64_t> send;
          ragged_payload(comm.rank(), nranks, 13, counts, send);
          std::vector<count_t> expect_rcounts;
          const std::vector<std::uint64_t> expect =
              comm.alltoallv(send, counts, &expect_rcounts);

          Exchanger ex(bound, policy);
          const count_t plan_before = ex.phases_remaining();
          EXPECT_EQ(plan_before, 0);  // idle
          ex.start(comm, send, counts);
          count_t polls = 0;
          std::vector<count_t> rcounts;
          std::optional<std::span<const std::uint64_t>> got;
          while (!got.has_value()) {
            // phases_remaining is rank-uniform and counts the polls
            // left; it must tick down by exactly one per call.
            const count_t left = ex.phases_remaining();
            EXPECT_GT(left, 0);
            got = ex.try_finish<std::uint64_t>(comm, &rcounts);
            EXPECT_EQ(ex.phases_remaining(), left - 1);
            ++polls;
          }
          EXPECT_EQ(std::vector<std::uint64_t>(got->begin(), got->end()),
                    expect);
          EXPECT_EQ(rcounts, expect_rcounts);
          EXPECT_FALSE(ex.in_flight());
          EXPECT_EQ(ex.stats().drained_incrementally, 1);
          if (policy == comm::ShardPolicy::kFlat && bound == 0) {
            EXPECT_EQ(polls, 1);
          }
        },
        rpn);
  }
}

TEST(DrainOne, AllEmptyExchangeDrainsInOneLocalStep) {
  sim::run_world(4, [](sim::Comm& comm) {
    Exchanger ex(64);
    const std::vector<count_t> zero(4, 0);
    ex.start(comm, static_cast<const std::uint64_t*>(nullptr), zero);
    EXPECT_EQ(ex.phases_remaining(), 1);
    int segs = 0;
    const bool more = ex.drain_one<std::uint64_t>(
        comm,
        [&](int, count_t, std::span<const std::uint64_t>) { ++segs; });
    EXPECT_FALSE(more);
    EXPECT_EQ(segs, 0);
    EXPECT_FALSE(ex.in_flight());
    EXPECT_EQ(ex.stats().phases, 0);
  });
}

// ---------------------------------------------------------------------------
// HaloPlan incremental drain + SuperstepPipeline

TEST(HaloPipeline, IncrementalDrainMatchesFinishPrefetch) {
  const graph::EdgeList el = gen::erdos_renyi(500, 8, 11);
  for (const count_t bound : {count_t(0), count_t(8), count_t(64)}) {
    sim::run_world(3, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, 3, 5));
      graph::HaloPlan blocking(comm, g, comm::ShardPolicy::kFlat,
                               env_backend());
      graph::HaloPlan incremental(comm, g, comm::ShardPolicy::kFlat,
                                  env_backend());
      blocking.set_max_send_bytes(bound);
      incremental.set_max_send_bytes(bound);

      std::vector<gid_t> expect(g.n_total()), vals(g.n_total());
      for (lid_t v = 0; v < g.n_total(); ++v)
        expect[v] = vals[v] = g.gid_of(v);
      for (int iter = 1; iter <= 3; ++iter) {
        for (lid_t v = 0; v < g.n_local(); ++v) {
          expect[v] = expect[v] * 7 + static_cast<gid_t>(iter);
          vals[v] = vals[v] * 7 + static_cast<gid_t>(iter);
        }
        blocking.exchange(comm, expect);

        incremental.prefetch_next(comm, vals);
        const count_t plan = incremental.prefetch_phases_left();
        count_t drains = 0;
        while (incremental.drain_prefetch_one(comm, vals)) ++drains;
        ++drains;
        EXPECT_EQ(drains, plan);
        ASSERT_EQ(vals, expect) << "bound=" << bound << " iter=" << iter;
      }
    });
  }
}

/// Reference superstep: update every owned vertex, then a blocking
/// ghost refresh — what every pipelined variant must reproduce.
template <typename T, typename Fn>
void blocking_superstep(sim::Comm& comm, graph::HaloPlan& halo,
                        const graph::DistGraph& g, std::vector<T>& vals,
                        Fn&& update) {
  for (lid_t v = 0; v < g.n_local(); ++v) update(v);
  halo.exchange(comm, vals);
}

TEST(HaloPipeline, Depth0BitIdenticalToBlockingSuperstep) {
  const graph::EdgeList el = gen::erdos_renyi(400, 8, 29);
  for (const comm::ShardPolicy policy :
       {comm::ShardPolicy::kFlat, comm::ShardPolicy::kHierarchical}) {
    for (const count_t bound : {count_t(0), count_t(8), count_t(1) << 14}) {
      sim::run_world(
          6,
          [&](sim::Comm& comm) {
            const auto g = graph::build_dist_graph(
                comm, el, graph::VertexDist::random(el.n, 6, 5));
            graph::HaloPlan ref_halo(comm, g, policy, env_backend());
            graph::HaloPlan pipe_halo(comm, g, policy, env_backend());
            ref_halo.set_max_send_bytes(bound);
            pipe_halo.set_max_send_bytes(bound);
            graph::SuperstepPipeline<gid_t> pipe(pipe_halo, 0);

            std::vector<gid_t> expect(g.n_total()), vals(g.n_total());
            for (lid_t v = 0; v < g.n_total(); ++v)
              expect[v] = vals[v] = g.gid_of(v);
            for (int iter = 1; iter <= 3; ++iter) {
              blocking_superstep(comm, ref_halo, g, expect, [&](lid_t v) {
                expect[v] = expect[v] * 5 + static_cast<gid_t>(iter);
              });
              pipe.superstep(
                  comm, vals,
                  [&](lid_t v) {
                    vals[v] = vals[v] * 5 + static_cast<gid_t>(iter);
                  },
                  [&] { (void)comm.allreduce_sum<count_t>(1); });
              EXPECT_FALSE(pipe.in_flight());
              ASSERT_EQ(vals, expect) << "bound=" << bound;
            }
            pipe.flush(comm, vals);  // no-op at depth 0
            ASSERT_EQ(vals, expect);
          },
          3);
    }
  }
}

TEST(HaloPipeline, Depth1CarriesRefreshAndFlushesToOwnersValues) {
  const graph::EdgeList el = gen::erdos_renyi(400, 8, 31);
  for (const count_t bound : {count_t(0), count_t(8), count_t(256)}) {
    sim::run_world(4, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, 4, 5));
      graph::HaloPlan halo(comm, g, comm::ShardPolicy::kFlat,
                           env_backend());
      halo.set_max_send_bytes(bound);
      halo.reset_stats();
      graph::SuperstepPipeline<gid_t> pipe(halo, 1);
      EXPECT_EQ(pipe.depth(), 1);

      // update writes iteration-tagged values into owned entries only.
      std::vector<gid_t> vals(g.n_total(), 0);
      constexpr int kIters = 5;
      for (int iter = 1; iter <= kIters; ++iter) {
        pipe.superstep(
            comm, vals,
            [&](lid_t v) {
              vals[v] = g.gid_of(v) * 100 + static_cast<gid_t>(iter);
            },
            [] {});
        // The refresh stays in flight across the superstep boundary...
        EXPECT_TRUE(pipe.in_flight());
        // ...and mid-stream every ghost holds some previous
        // superstep's value (never this one's, never garbage).
        for (lid_t v = g.n_local(); v < g.n_total(); ++v) {
          const gid_t age = vals[v] == 0 ? 0 : vals[v] % 100;
          EXPECT_LT(age, static_cast<gid_t>(iter) + 1);
        }
      }
      pipe.flush(comm, vals);
      EXPECT_FALSE(pipe.in_flight());
      // After the flush, ghosts hold the owners' last-shipped (final)
      // values.
      for (lid_t v = 0; v < g.n_total(); ++v)
        EXPECT_EQ(vals[v], g.gid_of(v) * 100 + kIters);
      // The ledger saw the carries: one per superstep after the first.
      EXPECT_EQ(halo.stats().pipeline_carried, kIters - 1);
      EXPECT_EQ(halo.stats().max_pipeline_depth, 1);
      EXPECT_GT(halo.stats().drained_incrementally, 0);
    });
  }
}

TEST(HaloPipeline, Depth2KeepsTwoRefreshesInFlightAndFlushes) {
  const graph::EdgeList el = gen::erdos_renyi(400, 8, 31);
  for (const count_t bound : {count_t(0), count_t(8), count_t(256)}) {
    sim::run_world(4, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, 4, 5));
      graph::HaloPlan halo(comm, g, comm::ShardPolicy::kFlat,
                           env_backend());
      halo.set_max_send_bytes(bound);
      halo.reset_stats();
      graph::SuperstepPipeline<gid_t> pipe(halo, 2);
      EXPECT_EQ(pipe.depth(), 2);
      EXPECT_EQ(halo.pipeline_lanes(), 2);

      // update writes iteration-tagged values into owned entries only.
      std::vector<gid_t> vals(g.n_total(), 0);
      constexpr int kIters = 5;
      for (int iter = 1; iter <= kIters; ++iter) {
        pipe.superstep(
            comm, vals,
            [&](lid_t v) {
              vals[v] = g.gid_of(v) * 100 + static_cast<gid_t>(iter);
            },
            [] {});
        // Steady state holds two refreshes on the wire at once — the
        // point of the multi-channel substrate...
        EXPECT_EQ(halo.prefetches_in_flight(), std::min(iter, 2));
        // ...and mid-stream ghosts hold values at most two supersteps
        // old (never this superstep's, never garbage).
        for (lid_t v = g.n_local(); v < g.n_total(); ++v) {
          const gid_t age = vals[v] == 0 ? 0 : vals[v] % 100;
          EXPECT_LT(age, static_cast<gid_t>(iter) + 1);
          EXPECT_GE(age, std::max(0, iter - 2));
        }
      }
      pipe.flush(comm, vals);
      EXPECT_FALSE(pipe.in_flight());
      for (lid_t v = 0; v < g.n_total(); ++v)
        EXPECT_EQ(vals[v], g.gid_of(v) * 100 + kIters);
      // Every refresh but the last crossed at least one superstep
      // boundary, and the deepest carry spanned two.
      EXPECT_EQ(halo.stats().pipeline_carried, kIters - 1);
      EXPECT_EQ(halo.stats().max_pipeline_depth, 2);
      EXPECT_GT(halo.stats().drained_incrementally, 0);
    });
  }
}

TEST(HaloPipeline, Depth2OneSidedBitIdenticalToTwoSided) {
  const graph::EdgeList el = gen::erdos_renyi(400, 8, 43);
  sim::run_world(4, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, 4, 5));
    constexpr int kIters = 4;
    auto run = [&](comm::Backend backend) {
      graph::HaloPlan halo(comm, g, comm::ShardPolicy::kFlat, backend);
      graph::SuperstepPipeline<gid_t> pipe(halo, 2);
      std::vector<std::vector<gid_t>> trace;
      std::vector<gid_t> vals(g.n_total());
      for (lid_t v = 0; v < g.n_total(); ++v) vals[v] = g.gid_of(v);
      for (int iter = 1; iter <= kIters; ++iter) {
        pipe.superstep(
            comm, vals,
            [&](lid_t v) {
              vals[v] = vals[v] * 5 + static_cast<gid_t>(iter);
            },
            [] {});
        trace.push_back(vals);
      }
      pipe.flush(comm, vals);
      trace.push_back(vals);
      return trace;
    };
    const auto pushed = run(comm::Backend::kTwoSided);
    const auto pulled = run(comm::Backend::kOneSided);
    ASSERT_EQ(pulled, pushed);
  });
}

// MPI+X: the parallel drive (chunked sweeps at depth 0, lid-range
// drain groups at depth >= 1) must land every superstep in the same
// state as the serial grouping, with the same wire bytes. This is also
// the case the CI ThreadSanitizer job hammers at threads = 8.
TEST(HaloPipeline, ParallelSuperstepBitIdenticalAtEveryDepth) {
  const graph::EdgeList el = gen::erdos_renyi(400, 8, 37);
  for (const int depth : {0, 1, 2}) {
    sim::run_world(4, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, 4, 5));
      constexpr int kIters = 4;
      // Two sequential pipelines: serial records its trajectory, the
      // parallel replay must reproduce it superstep by superstep
      // (at depth d the carried refreshes ride d tagged channels).
      std::vector<std::vector<gid_t>> trace;
      count_t ref_bytes = 0;
      {
        graph::HaloPlan halo(comm, g, comm::ShardPolicy::kFlat,
                             env_backend());
        graph::SuperstepPipeline<gid_t> pipe(halo, depth);
        std::vector<gid_t> vals(g.n_total());
        for (lid_t v = 0; v < g.n_total(); ++v) vals[v] = g.gid_of(v);
        for (int iter = 1; iter <= kIters; ++iter) {
          pipe.superstep(
              comm, vals,
              [&](lid_t v) {
                vals[v] = vals[v] * 5 + static_cast<gid_t>(iter);
              },
              [] {});
          trace.push_back(vals);
        }
        pipe.flush(comm, vals);
        trace.push_back(vals);
        ref_bytes = halo.stats().bytes_sent;
      }
      {
        graph::HaloPlan halo(comm, g, comm::ShardPolicy::kFlat,
                             env_backend());
        graph::SuperstepPipeline<gid_t> pipe(halo, depth);
        std::vector<gid_t> vals(g.n_total());
        for (lid_t v = 0; v < g.n_total(); ++v) vals[v] = g.gid_of(v);
        par::ThreadScope threads(8);  // oversubscribes this container
        for (int iter = 1; iter <= kIters; ++iter) {
          pipe.superstep(
              comm, vals,
              [&](lid_t v) {
                vals[v] = vals[v] * 5 + static_cast<gid_t>(iter);
              },
              [] {}, /*parallel=*/true);
          ASSERT_EQ(vals, trace[static_cast<std::size_t>(iter - 1)])
              << "depth=" << depth << " iter=" << iter;
        }
        pipe.flush(comm, vals);
        ASSERT_EQ(vals, trace.back()) << "depth=" << depth;
        EXPECT_EQ(halo.stats().bytes_sent, ref_bytes) << "depth=" << depth;
      }
    });
  }
}

TEST(HaloPipeline, DepthClampsToSubstrateLimit) {
  const graph::EdgeList el = gen::erdos_renyi(200, 6, 3);
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::block(el.n, 2));
    graph::HaloPlan halo(comm, g);
    graph::SuperstepPipeline<gid_t> deep(halo, 7);
    EXPECT_EQ(deep.depth(), graph::kMaxPipelineDepth);  // window budget
    EXPECT_EQ(halo.pipeline_lanes(), graph::kMaxPipelineDepth);
    graph::SuperstepPipeline<gid_t> neg(halo, -2);
    EXPECT_EQ(neg.depth(), 0);
  });
}

/// ASan/UBSan stress: many pipelined supersteps over a multi-phase
/// bound, with the produce values recomputed from scratch each round
/// and an interleaved collective — the in-flight scratch, incremental
/// scatter, and carried staging are exactly where lifetime bugs hide.
TEST(HaloPipeline, Depth1StressManySuperstepsSmallPhases) {
  const graph::EdgeList el = gen::erdos_renyi(600, 10, 41);
  sim::run_world(4, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, 4, 7));
    graph::HaloPlan halo(comm, g, comm::ShardPolicy::kFlat, env_backend());
    halo.set_max_send_bytes(sizeof(gid_t));  // one record per phase
    graph::SuperstepPipeline<gid_t> pipe(halo, 1);
    std::vector<gid_t> vals(g.n_total(), 1);
    for (int iter = 1; iter <= 12; ++iter) {
      pipe.superstep(
          comm, vals,
          [&](lid_t v) { vals[v] = (vals[v] * 31 + 7) % 1'000'003; },
          [&] { (void)comm.allreduce_max<count_t>(iter); });
    }
    pipe.flush(comm, vals);
    // Every ghost equals its owner's final value.
    std::vector<gid_t> check(vals);
    halo.exchange(comm, check);
    EXPECT_EQ(check, vals);
  });
}

// ---------------------------------------------------------------------------
// Analytics on the pipeline

TEST(PipelinedAnalytics, PageRankDepth0BitIdenticalToBlockingReference) {
  const graph::EdgeList el = gen::community_graph(1000, 8, 0.6, 2.3, 3);
  sim::run_world(4, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, 4, 5));
    constexpr int kIters = 15;
    constexpr double kDamping = 0.85;

    // Blocking reference: the pre-pipeline formulation (contrib +
    // dangling in one pass, blocking halo refresh, allreduce, update).
    std::vector<double> ref_rank(g.n_total(),
                                 1.0 / static_cast<double>(g.n_global()));
    {
      graph::HaloPlan halo(comm, g);
      const double n = static_cast<double>(g.n_global());
      std::vector<double> contrib(g.n_total(), 0.0);
      for (int iter = 0; iter < kIters; ++iter) {
        double dangling = 0.0;
        for (lid_t v = 0; v < g.n_local(); ++v) {
          const count_t d = g.degree(v);
          if (d == 0) {
            dangling += ref_rank[v];
            contrib[v] = 0.0;
          } else {
            contrib[v] = ref_rank[v] / static_cast<double>(d);
          }
        }
        halo.exchange(comm, contrib);
        dangling = comm.allreduce_sum(dangling);
        for (lid_t v = 0; v < g.n_local(); ++v) {
          double sum = 0.0;
          for (const lid_t u : g.neighbors(v)) sum += contrib[u];
          ref_rank[v] =
              (1.0 - kDamping) / n + kDamping * (sum + dangling / n);
        }
      }
      halo.exchange(comm, ref_rank);
    }

    const auto pr = analytics::pagerank(comm, g, kIters, kDamping,
                                        /*pipeline_depth=*/0);
    ASSERT_EQ(pr.rank.size(), ref_rank.size());
    for (lid_t v = 0; v < g.n_total(); ++v)
      EXPECT_EQ(pr.rank[v], ref_rank[v]) << "lid " << v;  // bit-identical
    EXPECT_EQ(pr.info.supersteps, kIters);
  });
}

TEST(PipelinedAnalytics, PageRankDepth1ConvergesToSameRanks) {
  const graph::EdgeList el = gen::community_graph(800, 8, 0.6, 2.3, 7);
  sim::run_world(4, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, 4, 3));
    // Residual-driven runs: both depths iterate until the update is
    // far below the comparison tolerance, so the one-superstep ghost
    // lag must wash out. The delayed iteration contracts at roughly
    // sqrt(damping) per superstep (vs damping for depth 0), so it
    // needs more supersteps to hit the same residual — the cap is
    // sized for that.
    const auto d0 = analytics::pagerank(comm, g, 400, 0.85, 0, 1e-10);
    const auto d1 = analytics::pagerank(comm, g, 400, 0.85, 1, 1e-10);
    EXPECT_NEAR(d0.sum, 1.0, 1e-8);
    EXPECT_NEAR(d1.sum, 1.0, 1e-8);
    for (lid_t v = 0; v < g.n_total(); ++v)
      EXPECT_NEAR(d1.rank[v], d0.rank[v], 1e-7) << "lid " << v;
    // The residual stop engaged on both (the cap did not bind), and
    // the stale path paid extra supersteps for its overlap.
    EXPECT_LT(d0.info.supersteps, 400);
    EXPECT_LT(d1.info.supersteps, 400);
    EXPECT_GE(d1.info.supersteps, d0.info.supersteps);
  });
}

TEST(PipelinedAnalytics, KcoreDepth0BitIdenticalToBlockingReference) {
  const graph::EdgeList el = gen::community_graph(800, 8, 0.6, 2.3, 5);
  sim::run_world(4, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, 4, 5));
    constexpr int kRounds = 12;

    // Blocking reference: the synchronous (Jacobi) h-index sweep with
    // a full blocking ghost refresh per round.
    std::vector<count_t> ref(g.n_total());
    {
      graph::HaloPlan halo(comm, g);
      for (lid_t v = 0; v < g.n_total(); ++v) ref[v] = g.degree(v);
      std::vector<count_t> prev(ref), nbr;
      for (int round = 0; round < kRounds; ++round) {
        bool changed = false;
        for (lid_t v = 0; v < g.n_local(); ++v) {
          nbr.clear();
          for (const lid_t u : g.neighbors(v)) nbr.push_back(prev[u]);
          std::sort(nbr.begin(), nbr.end(), std::greater<count_t>());
          count_t h = 0;
          for (std::size_t i = 0; i < nbr.size(); ++i) {
            if (nbr[i] >= static_cast<count_t>(i + 1))
              h = static_cast<count_t>(i + 1);
            else
              break;
          }
          h = std::min<count_t>(h, g.degree(v));
          if (h < ref[v]) {
            ref[v] = h;
            changed = true;
          }
        }
        halo.exchange(comm, ref);
        prev = ref;
        if (!comm.allreduce_or(changed)) break;
      }
    }

    const auto kc = analytics::kcore_approx(comm, g, kRounds,
                                            /*pipeline_depth=*/0);
    ASSERT_EQ(kc.core.size(), ref.size());
    for (lid_t v = 0; v < g.n_total(); ++v)
      EXPECT_EQ(kc.core[v], ref[v]) << "lid " << v;
  });
}

TEST(PipelinedAnalytics, KcoreDepth1ReachesSameCoreness) {
  const graph::EdgeList el = gen::community_graph(800, 8, 0.6, 2.3, 9);
  sim::run_world(4, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, 4, 5));
    // Generous round caps: both runs converge (the depth-1 peel may
    // take a few extra rounds), and the fixpoint — the exact coreness
    // — is unique.
    const auto d0 = analytics::kcore_approx(comm, g, 200, 0);
    const auto d1 = analytics::kcore_approx(comm, g, 200, 1);
    EXPECT_EQ(d1.max_core, d0.max_core);
    for (lid_t v = 0; v < g.n_total(); ++v)
      EXPECT_EQ(d1.core[v], d0.core[v]) << "lid " << v;
  });
}

TEST(PipelinedAnalytics, CommLpCoalesceEveryOneBitIdenticalToUncoalesced) {
  const graph::EdgeList el = gen::community_graph(600, 8, 0.7, 2.3, 13);
  sim::run_world(4, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, 4, 5));
    // coalesce_every == 1 delivers every changed label every sweep —
    // exactly the full refresh (unchanged ghosts already agree), so
    // the runs must match bit for bit, supersteps included.
    const auto plain = analytics::label_propagation(
        comm, g, 8, comm::ShardPolicy::kFlat, 0);
    const auto co = analytics::label_propagation(
        comm, g, 8, comm::ShardPolicy::kFlat, 1);
    EXPECT_EQ(co.label, plain.label);
    EXPECT_EQ(co.num_communities, plain.num_communities);
    EXPECT_EQ(co.info.supersteps, plain.info.supersteps);
  });
}

TEST(PipelinedAnalytics, CommLpCoalescedRecoversPlantedCommunities) {
  // Two 20-cliques and a single bridge: the planted structure must
  // survive label staleness of up to coalesce_every - 1 sweeps.
  graph::EdgeList el;
  el.n = 40;
  for (gid_t base : {gid_t{0}, gid_t{20}})
    for (gid_t a = base; a < base + 20; ++a)
      for (gid_t b = a + 1; b < base + 20; ++b) el.edges.push_back({a, b});
  el.edges.push_back({5, 25});
  for (const int every : {2, 4}) {
    sim::run_world(4, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, 4, 4));
      const auto r = analytics::label_propagation(
          comm, g, 20, comm::ShardPolicy::kFlat, every);
      EXPECT_EQ(r.num_communities, 2) << "every=" << every;
      for (lid_t v = 0; v < g.n_local(); ++v)
        EXPECT_EQ(r.label[v], g.gid_of(v) < 20 ? 0u : 20u)
            << "every=" << every;
    });
  }
}

TEST(PipelinedAnalytics, CommLpCoalescedGhostsConsistentOnExit) {
  // Exit by sweep budget mid-batch: the trailing flush must still
  // deliver everything, leaving every ghost equal to its owner.
  const graph::EdgeList el = gen::erdos_renyi(500, 8, 17);
  sim::run_world(4, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, 4, 5));
    const auto r = analytics::label_propagation(
        comm, g, 5, comm::ShardPolicy::kFlat, 3);
    std::vector<gid_t> check(r.label);
    graph::HaloPlan halo(comm, g);
    halo.exchange(comm, check);
    EXPECT_EQ(check, r.label);
  });
}

}  // namespace
}  // namespace xtra
