// Tests for the serving subsystem (src/serve/): deterministic load
// generation, per-kind scheduler correctness against single-rank
// serial references, the latency determinism contract across the
// transport matrix ({flat, hier} x {two-sided, one-sided} x threads
// {1, 8}), and the scheduler edge cases the ISSUE names — zero
// in-flight wire silence, mid-superstep arrival, slot exhaustion +
// backfill ordering, and ghost sources.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "serve/loadgen.hpp"
#include "serve/scheduler.hpp"

namespace xtra::serve {
namespace {

using graph::DistGraph;
using graph::EdgeList;
using graph::VertexDist;

constexpr count_t kUnreached = std::numeric_limits<count_t>::max();
constexpr std::uint64_t kDistSalt = 17;

EdgeList test_graph() { return gen::erdos_renyi(600, 6, 11); }

LoadGenConfig test_trace() {
  LoadGenConfig lg;
  lg.num_queries = 24;
  lg.rate_qps = 40.0;
  lg.seed = 5;
  lg.khop_depth = 2;
  lg.ppr_depth = 3;
  return lg;
}

/// One Scheduler::run under run_world plus the comm deltas the edge
/// case tests assert on. Rank 0 writes the capture: every rank
/// computes identical results by contract, but concurrent identical
/// writes would still race.
struct ServeOut {
  std::vector<QueryResult> results;
  ServeStats stats;
  count_t collectives = 0;  ///< per-rank delta (rank-uniform)
  count_t bytes = 0;        ///< world payload-byte delta
};

ServeOut run_serve(int nranks, const EdgeList& el, const ServeConfig& cfg,
                   const std::vector<Query>& queries) {
  ServeOut out;
  sim::run_world(
      nranks,
      [&](sim::Comm& comm) {
        const DistGraph g = build_dist_graph(
            comm, el, VertexDist::random(el.n, nranks, kDistSalt));
        comm.barrier();
        const count_t coll0 = comm.stats().collectives;
        const count_t bytes0 = comm.stats().bytes_sent;
        Scheduler sched(cfg);
        std::vector<QueryResult> results = sched.run(comm, g, queries);
        const count_t coll = comm.stats().collectives - coll0;
        const count_t bytes =
            comm.allreduce_sum(comm.stats().bytes_sent - bytes0);
        if (comm.rank() == 0) {
          out.results = std::move(results);
          out.stats = sched.stats();
          out.collectives = coll;
          out.bytes = bytes;
        }
      },
      /*ranks_per_node=*/nranks > 1 ? 2 : 1);
  return out;
}

/// Serial single-rank references: BFS levels by gid and the source
/// degree, for every distinct query source.
struct Reference {
  std::map<gid_t, std::vector<count_t>> levels;
  std::map<gid_t, count_t> degree;
};

Reference reference_for(const EdgeList& el, const std::vector<Query>& queries) {
  Reference ref;
  sim::run_world(1, [&](sim::Comm& comm) {
    const DistGraph g = build_dist_graph(comm, el, VertexDist::block(el.n, 1));
    for (const Query& q : queries) {
      if (ref.levels.count(q.source) != 0) continue;
      const lid_t root = g.lid_of(q.source);
      ASSERT_NE(root, kInvalidLid);
      ref.degree[q.source] = g.degree(root);
      std::vector<count_t>& lv = ref.levels[q.source];
      lv.assign(static_cast<std::size_t>(el.n), kUnreached);
      lv[g.gid_of(root)] = 0;
      std::queue<lid_t> fifo;
      fifo.push(root);
      while (!fifo.empty()) {
        const lid_t v = fifo.front();
        fifo.pop();
        const count_t d = lv[g.gid_of(v)] + 1;
        for (const lid_t u : g.arcs(v)) {
          count_t& du = lv[g.gid_of(u)];
          if (du != kUnreached) continue;
          du = d;
          fifo.push(u);
        }
      }
    }
  });
  return ref;
}

/// Fold a reference level vector into the expected result fields with
/// the scheduler's exact arithmetic (same operation order => the
/// doubles compare bitwise equal).
void expect_matches(const Query& q, const Reference& ref, double ppr_alpha,
                    const QueryResult& r) {
  EXPECT_EQ(r.kind, q.kind);
  const std::vector<count_t>& lv = ref.levels.at(q.source);
  const auto count_at = [&](count_t level) {
    count_t c = 0;
    for (const count_t d : lv)
      if (d == level) ++c;
    return c;
  };
  switch (q.kind) {
    case QueryKind::kPointLookup:
      EXPECT_EQ(r.value, ref.degree.at(q.source));
      EXPECT_EQ(r.supersteps, 1);
      break;
    case QueryKind::kBfs:
    case QueryKind::kKHop: {
      const count_t cap =
          q.kind == QueryKind::kBfs ? kUnreached : q.depth;
      count_t reach = 0;
      for (const count_t d : lv)
        if (d != kUnreached && d <= cap) ++reach;
      EXPECT_EQ(r.value, reach);
      break;
    }
    case QueryKind::kPpr: {
      double weight = ppr_alpha;
      double score = ppr_alpha;
      count_t reach = 1;
      count_t frontier = 1;
      for (count_t l = 1; frontier > 0 && l <= q.depth; ++l) {
        const count_t marks = count_at(l);
        reach += marks;
        weight *= 1.0 - ppr_alpha;
        score += weight * static_cast<double>(marks);
        frontier = marks;
      }
      EXPECT_EQ(r.value, reach);
      EXPECT_EQ(r.score, score);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// LoadGen

TEST(ServeLoadGen, DeterministicOrderedAndMixed) {
  LoadGenConfig lg;
  lg.num_queries = 64;
  lg.rate_qps = 25.0;
  lg.seed = 3;
  const std::vector<Query> a = LoadGen::generate(lg, 1000);
  const std::vector<Query> b = LoadGen::generate(lg, 1000);
  ASSERT_EQ(a.size(), 64u);
  ASSERT_EQ(b.size(), 64u);
  std::set<QueryKind> kinds;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].depth, b[i].depth);
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_LT(a[i].source, 1000u);
    EXPECT_GT(a[i].arrival_seconds, 0.0);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
    }
    kinds.insert(a[i].kind);
  }
  // 64 draws over a uniform 4-way mix: every kind shows up.
  EXPECT_EQ(kinds.size(), 4u);
  // A different seed moves the trace.
  lg.seed = 4;
  const std::vector<Query> c = LoadGen::generate(lg, 1000);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.size(); ++i)
    any_diff = any_diff || c[i].arrival_seconds != a[i].arrival_seconds ||
               c[i].source != a[i].source;
  EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------------------
// Scheduler correctness

class ServeRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, ServeRanks, ::testing::Values(1, 2, 4),
                         [](const auto& inf) {
                           return "nranks_" + std::to_string(inf.param);
                         });

TEST_P(ServeRanks, AllKindsMatchSerialReference) {
  const int nranks = GetParam();
  const EdgeList el = test_graph();
  const std::vector<Query> queries = LoadGen::generate(test_trace(), el.n);
  const Reference ref = reference_for(el, queries);
  ServeConfig cfg;
  cfg.slot_budget = 8;
  const ServeOut out = run_serve(nranks, el, cfg, queries);
  ASSERT_EQ(out.results.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    expect_matches(queries[i], ref, cfg.ppr_alpha, out.results[i]);
  EXPECT_EQ(out.stats.num_queries, static_cast<count_t>(queries.size()));
}

TEST(ServeScheduler, PackedBeatsPerQueryOnCollectivesSameAnswers) {
  const EdgeList el = test_graph();
  const std::vector<Query> queries = LoadGen::generate(test_trace(), el.n);
  ServeConfig packed;
  packed.slot_budget = 8;
  ServeConfig perquery;
  perquery.slot_budget = 1;
  const ServeOut a = run_serve(4, el, packed, queries);
  const ServeOut b = run_serve(4, el, perquery, queries);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].value, b.results[i].value);
    EXPECT_EQ(a.results[i].score, b.results[i].score);
  }
  // The packing contract: sharing supersteps must save collectives
  // (one ledger allreduce serves every in-flight slot).
  EXPECT_LT(a.collectives, b.collectives);
  EXPECT_LT(a.stats.supersteps, b.stats.supersteps);
}

// ---------------------------------------------------------------------------
// Determinism matrix (satellite: edge cases across the full matrix)

TEST(ServeScheduler, LatenciesBitIdenticalAcrossBackendsAndThreads) {
  const EdgeList el = test_graph();
  const std::vector<Query> queries = LoadGen::generate(test_trace(), el.n);
  for (const comm::ShardPolicy policy :
       {comm::ShardPolicy::kFlat, comm::ShardPolicy::kHierarchical}) {
    std::vector<QueryResult> base;
    for (const comm::Backend backend :
         {comm::Backend::kTwoSided, comm::Backend::kOneSided})
      for (const int threads : {1, 8}) {
        ServeConfig cfg;
        cfg.slot_budget = 4;
        cfg.engine.shard_policy = policy;
        cfg.engine.backend = backend;
        cfg.engine.num_threads = threads;
        const ServeOut out = run_serve(4, el, cfg, queries);
        ASSERT_EQ(out.results.size(), queries.size());
        if (base.empty()) {
          base = out.results;
          continue;
        }
        // Same shard policy: the full latency ledger is bitwise
        // identical — thread width and wire backend are pure
        // throughput knobs.
        for (std::size_t i = 0; i < base.size(); ++i) {
          EXPECT_EQ(out.results[i].value, base[i].value);
          EXPECT_EQ(out.results[i].score, base[i].score);
          EXPECT_EQ(out.results[i].supersteps, base[i].supersteps);
          EXPECT_EQ(out.results[i].start_seconds, base[i].start_seconds);
          EXPECT_EQ(out.results[i].finish_seconds, base[i].finish_seconds);
        }
      }
  }
}

// ---------------------------------------------------------------------------
// Edge cases

TEST(ServeScheduler, ZeroInflightIssuesNoCollectives) {
  const EdgeList el = test_graph();
  const ServeOut out = run_serve(2, el, ServeConfig{}, {});
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.stats.supersteps, 0);
  // No queries => not one collective and not one wire byte (the
  // capture snapshots its counters before its own byte-allreduce).
  EXPECT_EQ(out.collectives, 0);
  EXPECT_EQ(out.bytes, 0);
}

TEST(ServeScheduler, IdleGapIsAClockJumpNotAPollingLoop) {
  const EdgeList el = test_graph();
  Query q;
  q.kind = QueryKind::kBfs;
  q.source = 42;
  q.arrival_seconds = 0.0;
  const ServeOut now = run_serve(2, el, ServeConfig{}, {q});
  q.arrival_seconds = 123.0;
  const ServeOut late = run_serve(2, el, ServeConfig{}, {q});
  // Waiting 123 virtual seconds costs zero wire traffic and zero
  // supersteps: identical collectives, bytes, and latency.
  EXPECT_EQ(late.collectives, now.collectives);
  EXPECT_EQ(late.bytes, now.bytes);
  EXPECT_EQ(late.stats.supersteps, now.stats.supersteps);
  ASSERT_EQ(late.results.size(), 1u);
  EXPECT_EQ(late.results[0].start_seconds, 123.0);
  // Equal up to accumulation rounding on the shifted clock base (the
  // bitwise contract covers same-seed same-config runs, not
  // arrival-time shifts).
  EXPECT_NEAR(late.results[0].latency_seconds(),
              now.results[0].latency_seconds(), 1e-9);
}

TEST(ServeScheduler, MidSuperstepArrivalWaitsForTheBoundary) {
  const EdgeList el = test_graph();
  std::vector<Query> queries(2);
  queries[0].kind = QueryKind::kBfs;
  queries[0].source = 1;
  queries[0].arrival_seconds = 0.0;
  queries[1].kind = QueryKind::kBfs;
  queries[1].source = 2;
  queries[1].arrival_seconds = 1e-6;  // lands inside the first superstep
  const ServeOut out = run_serve(2, el, ServeConfig{}, queries);
  ASSERT_EQ(out.results.size(), 2u);
  EXPECT_EQ(out.results[0].start_seconds, 0.0);
  // Admission happens only at superstep boundaries, so the second
  // query waits out at least the first superstep's alpha.
  EXPECT_GT(out.results[1].start_seconds, queries[1].arrival_seconds);
  EXPECT_GE(out.results[1].start_seconds, kSuperstepAlphaSeconds);
}

TEST(ServeScheduler, SlotExhaustionBackfillsInArrivalOrder) {
  const EdgeList el = test_graph();
  std::vector<Query> queries(8);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i].kind = QueryKind::kBfs;
    queries[i].source = static_cast<gid_t>(7 * i + 3);
    queries[i].arrival_seconds = 0.0;
  }
  ServeConfig cfg;
  cfg.slot_budget = 2;
  const ServeOut out = run_serve(2, el, cfg, queries);
  ASSERT_EQ(out.results.size(), queries.size());
  std::set<double> finishes;
  for (const QueryResult& r : out.results) finishes.insert(r.finish_seconds);
  count_t immediate = 0;
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    const QueryResult& r = out.results[i];
    if (r.start_seconds == 0.0) ++immediate;
    // Arrival-order backfill: starts never decrease along the queue.
    if (i > 0) {
      EXPECT_GE(r.start_seconds, out.results[i - 1].start_seconds);
    }
    // A backfilled query starts exactly when a retirement freed its
    // slot — at some earlier query's finish boundary.
    if (r.start_seconds > 0.0) {
      EXPECT_EQ(finishes.count(r.start_seconds), 1u);
    }
  }
  // Slot exhaustion: only the first `slot_budget` queries start at 0.
  EXPECT_EQ(immediate, cfg.slot_budget);
  EXPECT_LE(out.stats.slot_occupancy, 1.0);
  EXPECT_GT(out.stats.slot_occupancy, 0.0);
}

TEST(ServeScheduler, GhostSourceResolvedByItsOwner) {
  const int nranks = 4;
  const EdgeList el = test_graph();
  const VertexDist dist = VertexDist::random(el.n, nranks, kDistSalt);
  // A cut edge (u, v) makes v a ghost on u's owner rank — the exact
  // shape that would double-seed if admission keyed on lid_of alone
  // instead of the owner check.
  gid_t ghost = el.n;
  for (const auto& [u, v] : el.edges)
    if (dist.owner(u) != dist.owner(v)) {
      ghost = v;
      break;
    }
  ASSERT_LT(ghost, el.n);
  Query q;
  q.kind = QueryKind::kBfs;
  q.source = ghost;
  const std::vector<Query> queries = {q};
  const Reference ref = reference_for(el, queries);
  const ServeOut out = run_serve(nranks, el, ServeConfig{}, queries);
  ASSERT_EQ(out.results.size(), 1u);
  expect_matches(q, ref, ServeConfig{}.ppr_alpha, out.results[0]);
}

// ---------------------------------------------------------------------------
// Stats ledger

TEST(ServeScheduler, StatsLedgerConsistent) {
  const EdgeList el = test_graph();
  const std::vector<Query> queries = LoadGen::generate(test_trace(), el.n);
  const ServeOut out = run_serve(2, el, ServeConfig{}, queries);
  const ServeStats& s = out.stats;
  EXPECT_LE(s.p50_latency, s.p95_latency);
  EXPECT_LE(s.p95_latency, s.p99_latency);
  EXPECT_GT(s.p50_latency, 0.0);
  EXPECT_GT(s.queries_per_sec, 0.0);
  EXPECT_GT(s.slot_occupancy, 0.0);
  EXPECT_LE(s.slot_occupancy, 1.0);
  count_t query_supersteps = 0;
  double max_finish = 0.0;
  for (const QueryResult& r : out.results) {
    EXPECT_GE(r.start_seconds, r.arrival_seconds);
    EXPECT_GT(r.finish_seconds, r.start_seconds);
    EXPECT_GE(r.supersteps, 1);
    query_supersteps += r.supersteps;
    max_finish = std::max(max_finish, r.finish_seconds);
  }
  EXPECT_EQ(s.virtual_seconds, max_finish);
  EXPECT_EQ(s.supersteps_per_query,
            static_cast<double>(query_supersteps) /
                static_cast<double>(queries.size()));
}

}  // namespace
}  // namespace xtra::serve
