// Tests for the baseline partitioners: serial graph substrate,
// trivial layouts, PuLP, the multilevel (ParMETIS stand-in), and SCLP
// (KaHIP stand-in).
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "baseline/coarsen.hpp"
#include "baseline/partitioners.hpp"
#include "gen/generators.hpp"
#include "metrics/quality.hpp"

namespace xtra::baseline {
namespace {

using graph::EdgeList;

EdgeList two_triangles_bridge() {
  EdgeList el;
  el.n = 6;
  el.edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}};
  return el;
}

// ---------------------------------------------------------------------------
// SerialGraph

TEST(SerialGraph, BuildSymmetrizesAndCounts) {
  const SerialGraph g = build_serial_graph(two_triangles_bridge());
  EXPECT_EQ(g.n, 6u);
  EXPECT_EQ(g.m, 7);
  EXPECT_EQ(g.adj.size(), 14u);
  EXPECT_EQ(g.total_vwgt, 6);
  EXPECT_EQ(g.degree(2), 3);
  EXPECT_EQ(g.degree(5), 2);
  std::set<gid_t> n2(g.neighbors(2).begin(), g.neighbors(2).end());
  EXPECT_EQ(n2, (std::set<gid_t>{0, 1, 3}));
}

TEST(SerialGraph, DuplicateEdgesDoNotDoubleWeight) {
  EdgeList el;
  el.n = 3;
  el.edges = {{0, 1}, {1, 0}, {0, 1}, {1, 2}};
  const SerialGraph g = build_serial_graph(el);
  EXPECT_EQ(g.m, 2);
  for (const count_t w : g.ewgt) EXPECT_EQ(w, 1);
}

TEST(SerialGraph, ContractMergesWeights) {
  // Contract the two triangles to two super-vertices.
  const SerialGraph g = build_serial_graph(two_triangles_bridge());
  const std::vector<gid_t> cmap{0, 0, 0, 1, 1, 1};
  const SerialGraph c = contract(g, cmap, 2);
  EXPECT_EQ(c.n, 2u);
  EXPECT_EQ(c.m, 1);          // only the bridge survives
  EXPECT_EQ(c.vwgt[0], 3);
  EXPECT_EQ(c.vwgt[1], 3);
  EXPECT_EQ(c.ewgt[0], 1);    // bridge weight
  EXPECT_EQ(c.total_vwgt, 6);
}

TEST(SerialGraph, ContractSumsParallelEdges) {
  EdgeList el;
  el.n = 4;
  el.edges = {{0, 2}, {1, 2}, {0, 3}, {1, 3}};
  const SerialGraph g = build_serial_graph(el);
  // Merge {0,1} and {2,3}: four parallel cross edges -> weight 4.
  const SerialGraph c = contract(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(c.n, 2u);
  EXPECT_EQ(c.ewgt[0], 4);
}

TEST(SerialGraph, WeightedCutMatchesHand) {
  const SerialGraph g = build_serial_graph(two_triangles_bridge());
  EXPECT_EQ(weighted_cut(g, {0, 0, 0, 1, 1, 1}), 1);
  // Alternating labels keep 0-2 and 3-5 internal; the other 5 edges cut.
  EXPECT_EQ(weighted_cut(g, {0, 1, 0, 1, 0, 1}), 5);
  EXPECT_EQ(weighted_cut(g, {0, 0, 0, 0, 0, 0}), 0);
}

// ---------------------------------------------------------------------------
// Trivial layouts

TEST(Trivial, RandomPartitionBalancedAndDeterministic) {
  const auto a = random_partition(50000, 8, 3);
  const auto b = random_partition(50000, 8, 3);
  EXPECT_EQ(a, b);
  std::vector<count_t> sizes(8, 0);
  for (const part_t p : a) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 8);
    ++sizes[static_cast<std::size_t>(p)];
  }
  for (const count_t s : sizes) EXPECT_NEAR(s, 50000 / 8, 50000 / 8 * 0.1);
}

TEST(Trivial, VertexBlockIsContiguousAndEven) {
  const auto parts = vertex_block_partition(10, 3);
  EXPECT_EQ(parts, (std::vector<part_t>{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}));
}

TEST(Trivial, EdgeBlockBalancesEndpoints) {
  // Star graph: vertex 0 has degree 9, others 1. Edge-block must put
  // the hub alone-ish; vertex-block would not.
  EdgeList el;
  el.n = 10;
  for (gid_t v = 1; v < 10; ++v) el.edges.push_back({0, v});
  const SerialGraph g = build_serial_graph(el);
  const auto parts = edge_block_partition(g, 2);
  std::vector<count_t> endpoints(2, 0);
  for (gid_t v = 0; v < g.n; ++v)
    endpoints[static_cast<std::size_t>(parts[v])] += g.degree(v);
  // 18 endpoints total; hub side should not exceed ~hub+slack.
  EXPECT_LE(endpoints[0], 12);
  EXPECT_GE(endpoints[1], 6);
  // Contiguity.
  for (gid_t v = 0; v + 1 < g.n; ++v) EXPECT_LE(parts[v], parts[v + 1]);
}

// ---------------------------------------------------------------------------
// Matching / coarsening

TEST(Matching, IsSymmetricAndValid) {
  const SerialGraph g =
      build_serial_graph(gen::erdos_renyi(500, 8, 3));
  const auto match = heavy_edge_matching(g, 7);
  for (gid_t v = 0; v < g.n; ++v) {
    ASSERT_LT(match[v], g.n);
    EXPECT_EQ(match[match[v]], v);  // symmetric (or self)
  }
  // A reasonable fraction of a connected ER graph must match.
  count_t matched = 0;
  for (gid_t v = 0; v < g.n; ++v)
    if (match[v] != v) ++matched;
  EXPECT_GT(matched, static_cast<count_t>(g.n / 2));
}

TEST(Matching, CmapHalvesMatchedPairs) {
  std::vector<gid_t> match{1, 0, 2, 4, 3};  // (0,1) matched, 2 solo, (3,4)
  std::vector<gid_t> cmap;
  const gid_t nc = matching_to_cmap(match, cmap);
  EXPECT_EQ(nc, 3u);
  EXPECT_EQ(cmap[0], cmap[1]);
  EXPECT_EQ(cmap[3], cmap[4]);
  EXPECT_NE(cmap[0], cmap[2]);
}

TEST(Coarsen, HierarchyShrinksAndPreservesWeight) {
  const SerialGraph g =
      build_serial_graph(gen::community_graph(4000, 10, 0.6, 2.3, 1));
  const auto levels = coarsen_by_matching(g, 200, 5);
  ASSERT_FALSE(levels.empty());
  gid_t prev_n = g.n;
  for (const auto& level : levels) {
    EXPECT_LT(level.graph.n, prev_n);
    EXPECT_EQ(level.graph.total_vwgt, g.total_vwgt);  // weight conserved
    prev_n = level.graph.n;
  }
  EXPECT_LE(levels.back().graph.n, 400u);  // close to target
}

TEST(Coarsen, SclpClusteringRespectsCap) {
  const SerialGraph g =
      build_serial_graph(gen::community_graph(3000, 10, 0.7, 2.3, 2));
  gid_t n_clusters = 0;
  const count_t cap = 100;
  const auto cmap = sclp_cluster(g, cap, 3, 3, n_clusters);
  ASSERT_GT(n_clusters, 0u);
  std::vector<count_t> weight(n_clusters, 0);
  for (gid_t v = 0; v < g.n; ++v) {
    ASSERT_LT(cmap[v], n_clusters);
    weight[cmap[v]] += g.vwgt[v];
  }
  for (const count_t w : weight) EXPECT_LE(w, cap);
  EXPECT_LT(n_clusters, g.n);  // actually clustered
}

// ---------------------------------------------------------------------------
// Bisection

TEST(Bisection, SplitsNearTargetAndFindsBridge) {
  const SerialGraph g = build_serial_graph(two_triangles_bridge());
  const auto bis = grow_bisection(g, 3, 0.10, 4, 8);
  const auto w = part_weights(g, bis, 2);
  EXPECT_EQ(w[0] + w[1], 6);
  EXPECT_GE(w[0], 2);
  EXPECT_LE(w[0], 4);
  EXPECT_LE(weighted_cut(g, bis), 3);
}

TEST(Bisection, HandlesDisconnectedGraphs) {
  EdgeList el;
  el.n = 8;
  el.edges = {{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  const SerialGraph g = build_serial_graph(el);
  const auto bis = grow_bisection(g, 4, 0.10, 1, 4);
  const auto w = part_weights(g, bis, 2);
  EXPECT_EQ(w[0] + w[1], 8);
  EXPECT_GT(w[0], 0);
  EXPECT_GT(w[1], 0);
}

// ---------------------------------------------------------------------------
// Full partitioners (property sweep across graphs and part counts)

struct Case {
  const char* gen;
  part_t nparts;
};

class Partitioners : public ::testing::TestWithParam<Case> {
 protected:
  static EdgeList make(const std::string& name) {
    if (name == "community") return gen::community_graph(3000, 10, 0.6, 2.3, 7);
    if (name == "mesh") return gen::mesh2d(55, 55);
    if (name == "rmat") return gen::rmat(11, 8, 7);
    return gen::erdos_renyi(2000, 8, 7);
  }
};

INSTANTIATE_TEST_SUITE_P(
    Cases, Partitioners,
    ::testing::Values(Case{"community", 2}, Case{"community", 8},
                      Case{"mesh", 4}, Case{"mesh", 16}, Case{"rmat", 4},
                      Case{"er", 8}),
    [](const auto& inf) {
      return std::string(inf.param.gen) + "_p" +
             std::to_string(inf.param.nparts);
    });

TEST_P(Partitioners, PulpIsValidAndBalanced) {
  const auto [name, nparts] = GetParam();
  const EdgeList el = make(name);
  const SerialGraph g = build_serial_graph(el);
  const auto parts = pulp_partition(g, nparts);
  const auto q = metrics::evaluate(el, parts, nparts);
  EXPECT_LE(q.vertex_imbalance, 1.12);
  EXPECT_LT(q.edge_cut_ratio, 1.0);
}

TEST_P(Partitioners, MultilevelIsValidAndBalanced) {
  const auto [name, nparts] = GetParam();
  const EdgeList el = make(name);
  const SerialGraph g = build_serial_graph(el);
  const auto parts = multilevel_partition(g, nparts);
  const auto q = metrics::evaluate(el, parts, nparts);
  EXPECT_LE(q.vertex_imbalance, 1.15);
  EXPECT_LT(q.edge_cut_ratio, 1.0);
}

TEST_P(Partitioners, SclpIsValidAndBalanced) {
  const auto [name, nparts] = GetParam();
  const EdgeList el = make(name);
  const SerialGraph g = build_serial_graph(el);
  const auto parts = sclp_partition(g, nparts);
  const auto q = metrics::evaluate(el, parts, nparts);
  EXPECT_LE(q.vertex_imbalance, 1.15);
  EXPECT_LT(q.edge_cut_ratio, 1.0);
}

TEST(Partitioners, AllBeatRandomOnMesh) {
  const EdgeList el = gen::mesh2d(60, 60);
  const SerialGraph g = build_serial_graph(el);
  const double random_cut =
      metrics::evaluate(el, random_partition(el.n, 8, 1), 8).edge_cut_ratio;
  for (const auto& parts :
       {pulp_partition(g, 8), multilevel_partition(g, 8),
        sclp_partition(g, 8)}) {
    EXPECT_LT(metrics::evaluate(el, parts, 8).edge_cut_ratio,
              random_cut / 2);
  }
}

TEST(Partitioners, MultilevelBestOnMesh) {
  // The paper's Table II / Fig 4 shape: multilevel (ParMETIS) wins on
  // regular meshes.
  const EdgeList el = gen::mesh2d(60, 60);
  const SerialGraph g = build_serial_graph(el);
  const double ml =
      metrics::evaluate(el, multilevel_partition(g, 8), 8).edge_cut_ratio;
  const double lp =
      metrics::evaluate(el, pulp_partition(g, 8), 8).edge_cut_ratio;
  EXPECT_LE(ml, lp * 1.35);  // ml at least competitive
}

TEST(Partitioners, MemoryEnvelopeThrows) {
  const SerialGraph g = build_serial_graph(gen::erdos_renyi(1000, 8, 1));
  EXPECT_THROW(multilevel_partition(g, 4, {}, /*memory_limit_edges=*/100),
               std::length_error);
}

TEST(Partitioners, SinglePartTrivial) {
  const SerialGraph g = build_serial_graph(two_triangles_bridge());
  for (const auto& parts :
       {pulp_partition(g, 1), multilevel_partition(g, 1), sclp_partition(g, 1)})
    for (const part_t p : parts) EXPECT_EQ(p, 0);
}

TEST(Partitioners, TwoTrianglesOptimal) {
  const EdgeList el = two_triangles_bridge();
  const SerialGraph g = build_serial_graph(el);
  EXPECT_LE(weighted_cut(g, multilevel_partition(g, 2)), 1);
  EXPECT_LE(weighted_cut(g, pulp_partition(g, 2)), 1);
}

}  // namespace
}  // namespace xtra::baseline
