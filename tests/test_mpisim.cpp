// Tests for the simulated message-passing runtime: collective
// semantics must match MPI so the partitioner's program structure
// transfers unchanged.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <numeric>
#include <stdexcept>

#include "mpisim/comm.hpp"

namespace xtra::sim {
namespace {

class WorldSizes : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Ranks, WorldSizes, ::testing::Values(1, 2, 3, 4, 8),
                         [](const auto& inf) {
                           return "nranks_" + std::to_string(inf.param);
                         });

TEST_P(WorldSizes, RunWorldRunsEveryRankExactlyOnce) {
  const int n = GetParam();
  std::vector<int> hits(static_cast<std::size_t>(n), 0);
  run_world(n, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), n);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), n);
    ++hits[static_cast<std::size_t>(comm.rank())];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST_P(WorldSizes, BarrierCompletes) {
  run_world(GetParam(), [](Comm& comm) {
    for (int i = 0; i < 10; ++i) comm.barrier();
  });
}

TEST(Topology, DefaultIsOneRankPerNode) {
  run_world(4, [](Comm& comm) {
    EXPECT_EQ(comm.ranks_per_node(), 1);
    EXPECT_EQ(comm.node_count(), comm.size());
    EXPECT_EQ(comm.my_node(), comm.rank());
    EXPECT_TRUE(comm.is_node_leader());
  });
}

TEST(Topology, GroupsConsecutiveRanksWithUnevenTail) {
  // 10 ranks, 4 per node: nodes {0..3}, {4..7}, {8,9} — the last node
  // is smaller, its leader is rank 8.
  run_world(
      10,
      [](Comm& comm) {
        EXPECT_EQ(comm.ranks_per_node(), 4);
        EXPECT_EQ(comm.node_count(), 3);
        EXPECT_EQ(comm.my_node(), comm.rank() / 4);
        EXPECT_EQ(comm.node_leader(comm.my_node()), (comm.rank() / 4) * 4);
        EXPECT_EQ(comm.is_node_leader(), comm.rank() % 4 == 0);
        EXPECT_EQ(comm.node_begin(2), 8);
        EXPECT_EQ(comm.node_end(2), 10);
        EXPECT_EQ(comm.node_end(0), 4);
      },
      4);
}

TEST(Topology, RanksPerNodeClampsToWorldSize) {
  run_world(
      3,
      [](Comm& comm) {
        EXPECT_EQ(comm.ranks_per_node(), 3);
        EXPECT_EQ(comm.node_count(), 1);
        EXPECT_EQ(comm.my_node(), 0);
        EXPECT_EQ(comm.is_node_leader(), comm.rank() == 0);
      },
      64);
}

TEST_P(WorldSizes, BcastDeliversRootData) {
  const int n = GetParam();
  run_world(n, [n](Comm& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<int> data;
      if (comm.rank() == root) data = {root, root + 1, root + 2};
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[0], root);
      EXPECT_EQ(data[2], root + 2);
    }
  });
}

TEST_P(WorldSizes, BcastValueScalar) {
  run_world(GetParam(), [](Comm& comm) {
    const gid_t v = comm.bcast_value<gid_t>(
        comm.rank() == 0 ? 777u : 0u, 0);
    EXPECT_EQ(v, 777u);
  });
}

TEST_P(WorldSizes, AllreduceSumVector) {
  const int n = GetParam();
  run_world(n, [n](Comm& comm) {
    std::vector<count_t> v{comm.rank(), 1, -comm.rank()};
    comm.allreduce_sum(v);
    EXPECT_EQ(v[0], static_cast<count_t>(n) * (n - 1) / 2);
    EXPECT_EQ(v[1], n);
    EXPECT_EQ(v[2], -static_cast<count_t>(n) * (n - 1) / 2);
  });
}

TEST_P(WorldSizes, AllreduceMinMaxScalar) {
  const int n = GetParam();
  run_world(n, [n](Comm& comm) {
    EXPECT_EQ(comm.allreduce_max(comm.rank()), n - 1);
    EXPECT_EQ(comm.allreduce_min(comm.rank()), 0);
    EXPECT_EQ(comm.allreduce_sum(1), n);
  });
}

TEST_P(WorldSizes, AllreduceAndOr) {
  const int n = GetParam();
  run_world(n, [n](Comm& comm) {
    EXPECT_TRUE(comm.allreduce_and(true));
    EXPECT_FALSE(comm.allreduce_or(false));
    // Only rank 0 true:
    const bool only0 = comm.rank() == 0;
    EXPECT_EQ(comm.allreduce_and(only0), n == 1);
    EXPECT_TRUE(comm.allreduce_or(only0));
  });
}

TEST_P(WorldSizes, AlltoallTransposes) {
  const int n = GetParam();
  run_world(n, [n](Comm& comm) {
    // send[r] = 100*me + r; received[r] must be 100*r + me.
    std::vector<int> send(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) send[r] = 100 * comm.rank() + r;
    const std::vector<int> recv = comm.alltoall(send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) EXPECT_EQ(recv[r], 100 * r + comm.rank());
  });
}

TEST_P(WorldSizes, AlltoallvVariableCounts) {
  const int n = GetParam();
  run_world(n, [n](Comm& comm) {
    // Rank s sends (s + d) copies of value s*1000+d to rank d.
    std::vector<count_t> counts(static_cast<std::size_t>(n));
    std::vector<int> send;
    for (int d = 0; d < n; ++d) {
      counts[d] = comm.rank() + d;
      for (count_t i = 0; i < counts[d]; ++i)
        send.push_back(comm.rank() * 1000 + d);
    }
    std::vector<count_t> rcounts;
    const std::vector<int> recv = comm.alltoallv(send, counts, &rcounts);
    ASSERT_EQ(rcounts.size(), static_cast<std::size_t>(n));
    std::size_t at = 0;
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(rcounts[s], s + comm.rank());
      for (count_t i = 0; i < rcounts[s]; ++i, ++at) {
        ASSERT_LT(at, recv.size());
        EXPECT_EQ(recv[at], s * 1000 + comm.rank());
      }
    }
    EXPECT_EQ(at, recv.size());
  });
}

TEST_P(WorldSizes, AlltoallvAllEmpty) {
  const int n = GetParam();
  run_world(n, [n](Comm& comm) {
    std::vector<count_t> counts(static_cast<std::size_t>(n), 0);
    const std::vector<double> recv =
        comm.alltoallv(std::vector<double>{}, counts);
    EXPECT_TRUE(recv.empty());
  });
}

TEST_P(WorldSizes, GathervConcatenatesInRankOrder) {
  const int n = GetParam();
  run_world(n, [n](Comm& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1),
                          comm.rank());
    const std::vector<int> all = comm.gatherv(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(n * (n + 1) / 2));
      std::size_t at = 0;
      for (int r = 0; r < n; ++r)
        for (int i = 0; i <= r; ++i) EXPECT_EQ(all[at++], r);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(WorldSizes, AllgathervEveryoneGetsEverything) {
  const int n = GetParam();
  run_world(n, [n](Comm& comm) {
    std::vector<gid_t> mine{static_cast<gid_t>(comm.rank())};
    const std::vector<gid_t> all = comm.allgatherv(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) EXPECT_EQ(all[r], static_cast<gid_t>(r));
  });
}

TEST_P(WorldSizes, CommStatsCountCollectivesAndBytes) {
  const int n = GetParam();
  run_world(n, [n](Comm& comm) {
    comm.reset_stats();
    comm.barrier();
    std::vector<count_t> counts(static_cast<std::size_t>(n), 1);
    std::vector<std::uint64_t> payload(static_cast<std::size_t>(n), 7);
    comm.alltoallv(payload, counts);
    EXPECT_EQ(comm.stats().collectives, 2);
    // One 8-byte element to each remote rank.
    EXPECT_EQ(comm.stats().bytes_sent,
              static_cast<count_t>((n - 1) * sizeof(std::uint64_t)));
    EXPECT_EQ(comm.stats().messages_sent, n - 1);
    EXPECT_GE(comm.stats().comm_seconds, 0.0);
  });
}

TEST_P(WorldSizes, GlobalBytesSumsRanks) {
  const int n = GetParam();
  run_world(n, [n](Comm& comm) {
    comm.reset_stats();
    comm.barrier();  // stats reset is local; barrier keeps ranks aligned
    std::vector<count_t> counts(static_cast<std::size_t>(n), 2);
    std::vector<std::uint32_t> payload(static_cast<std::size_t>(2 * n), 1);
    comm.alltoallv(payload, counts);
    const count_t expected_per_rank =
        static_cast<count_t>((n - 1) * 2 * sizeof(std::uint32_t));
    EXPECT_EQ(comm.global_bytes_sent(),
              expected_per_rank * static_cast<count_t>(n));
  });
}

TEST_P(WorldSizes, NonblockingAlltoallvMatchesBlocking) {
  const int n = GetParam();
  run_world(n, [&](Comm& comm) {
    // Ragged payload: rank r sends (r + d + 1) values to destination d.
    std::vector<count_t> counts(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> send;
    for (int d = 0; d < n; ++d) {
      counts[static_cast<std::size_t>(d)] =
          static_cast<count_t>(comm.rank() + d + 1);
      for (count_t i = 0; i < counts[static_cast<std::size_t>(d)]; ++i)
        send.push_back(static_cast<std::uint64_t>(comm.rank()) * 1'000 +
                       static_cast<std::uint64_t>(i));
    }
    std::vector<count_t> expect_rcounts;
    std::vector<std::byte> expect;
    const count_t expect_total = comm.alltoallv_bytes(
        send.data(), sizeof(std::uint64_t), counts, expect, &expect_rcounts);

    EXPECT_FALSE(comm.alltoallv_in_flight());
    const count_t announced = comm.alltoallv_bytes_start(
        send.data(), sizeof(std::uint64_t), counts);
    EXPECT_TRUE(comm.alltoallv_in_flight());
    EXPECT_EQ(announced, expect_total);
    // Blocking collectives may run while the exchange is in flight —
    // they use separate publication slots.
    EXPECT_EQ(comm.allreduce_sum<count_t>(1), static_cast<count_t>(n));
    (void)comm.alltoall(std::vector<count_t>(
        static_cast<std::size_t>(n), static_cast<count_t>(comm.rank())));
    std::vector<count_t> rcounts;
    std::vector<std::byte> recv;
    const count_t total = comm.alltoallv_bytes_finish(recv, &rcounts);
    EXPECT_FALSE(comm.alltoallv_in_flight());
    EXPECT_EQ(total, expect_total);
    EXPECT_EQ(rcounts, expect_rcounts);
    EXPECT_EQ(recv, expect);
  });
}

TEST_P(WorldSizes, NonblockingAlltoallvBillsLikeBlocking) {
  const int n = GetParam();
  run_world(n, [&](Comm& comm) {
    const std::vector<count_t> counts(static_cast<std::size_t>(n), 3);
    const std::vector<std::uint64_t> send(3 * static_cast<std::size_t>(n), 7);
    std::vector<std::byte> recv;

    comm.barrier();
    comm.reset_stats();
    (void)comm.alltoallv_bytes(send.data(), sizeof(std::uint64_t), counts,
                               recv);
    const CommStats blocking = comm.stats();

    comm.barrier();
    comm.reset_stats();
    (void)comm.alltoallv_bytes_start(send.data(), sizeof(std::uint64_t),
                                     counts);
    (void)comm.alltoallv_bytes_finish(recv);
    const CommStats split = comm.stats();

    // The start/finish pair is one logical collective with the same
    // wire traffic as the blocking call.
    EXPECT_EQ(split.bytes_sent, blocking.bytes_sent);
    EXPECT_EQ(split.messages_sent, blocking.messages_sent);
    EXPECT_EQ(split.collectives, blocking.collectives);
  });
}

TEST_P(WorldSizes, RunWorldCollectGathersReturnValues) {
  const int n = GetParam();
  const std::vector<int> results = run_world_collect<int>(
      n, [](Comm& comm) { return comm.rank() * 10; });
  ASSERT_EQ(results.size(), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) EXPECT_EQ(results[r], r * 10);
}

TEST_P(WorldSizes, ExceptionPropagatesWithoutDeadlock) {
  const int n = GetParam();
  EXPECT_THROW(
      run_world(n,
                [](Comm& comm) {
                  // Rank 0 dies before the barrier; the others must not
                  // hang and the error must surface to the caller.
                  if (comm.rank() == 0)
                    throw std::runtime_error("rank 0 failure");
                  comm.barrier();
                  std::vector<count_t> v{1};
                  comm.allreduce_sum(v);
                }),
      std::runtime_error);
}

TEST(WorldAborted, CascadeKeepsRootCauseMessage) {
  try {
    run_world(4, [](Comm& comm) {
      if (comm.rank() == 2) throw std::logic_error("root cause");
      for (int i = 0; i < 3; ++i) comm.barrier();
    });
    FAIL() << "expected exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "root cause");
  }
}

TEST(WorldEdge, SingleRankCollectivesAreIdentity) {
  run_world(1, [](Comm& comm) {
    std::vector<int> v{1, 2, 3};
    comm.allreduce_sum(v);
    EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
    const auto r = comm.alltoall(std::vector<int>{42});
    EXPECT_EQ(r, (std::vector<int>{42}));
    EXPECT_EQ(comm.stats().bytes_sent, 0);
  });
}

TEST(WorldEdge, ManySmallWorldsSequentially) {
  for (int i = 0; i < 50; ++i) {
    run_world(3, [](Comm& comm) {
      EXPECT_EQ(comm.allreduce_sum(1), 3);
    });
  }
}

TEST(WorldEdge, LargePayloadRoundtrip) {
  run_world(4, [](Comm& comm) {
    const int n = comm.size();
    std::vector<count_t> counts(static_cast<std::size_t>(n), 50000);
    std::vector<std::uint64_t> payload(static_cast<std::size_t>(50000 * n));
    std::iota(payload.begin(), payload.end(),
              static_cast<std::uint64_t>(comm.rank()) << 32);
    std::vector<count_t> rcounts;
    const auto recv = comm.alltoallv(payload, counts, &rcounts);
    ASSERT_EQ(recv.size(), payload.size());
    // Segment from rank s starts with s<<32 + s*50000... verify heads.
    std::size_t at = 0;
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(recv[at], (static_cast<std::uint64_t>(s) << 32) +
                              static_cast<std::uint64_t>(comm.rank()) * 50000);
      at += 50000;
    }
  });
}

// ---- Tagged nonblocking channels -----------------------------------

TEST_P(WorldSizes, ChannelsCarryConcurrentExchanges) {
  const int n = GetParam();
  run_world(n, [&](Comm& comm) {
    // Three exchanges in flight at once, each with a distinct payload
    // signature, with blocking collectives interleaved between the
    // starts and the finishes.
    constexpr int kChans = 3;
    std::vector<std::vector<std::uint64_t>> sends(kChans);
    std::vector<std::vector<count_t>> counts(
        kChans, std::vector<count_t>(static_cast<std::size_t>(n)));
    std::vector<std::vector<std::byte>> expect(kChans);
    std::vector<std::vector<count_t>> expect_rcounts(kChans);
    for (int c = 0; c < kChans; ++c) {
      for (int d = 0; d < n; ++d) {
        counts[c][static_cast<std::size_t>(d)] =
            static_cast<count_t>((comm.rank() + d + c) % 3 + 1);
        for (count_t i = 0; i < counts[c][static_cast<std::size_t>(d)]; ++i)
          sends[c].push_back(static_cast<std::uint64_t>(c) * 1'000'000 +
                             static_cast<std::uint64_t>(comm.rank()) * 1'000 +
                             static_cast<std::uint64_t>(i));
      }
      (void)comm.alltoallv_bytes(sends[c].data(), sizeof(std::uint64_t),
                                 counts[c], expect[c], &expect_rcounts[c]);
    }

    std::array<int, kChans> chan{};
    for (int c = 0; c < kChans; ++c) {
      chan[c] = comm.find_free_channel();
      EXPECT_EQ(chan[c], c);  // lowest-free, rank-uniform
      (void)comm.alltoallv_bytes_start(sends[c].data(),
                                       sizeof(std::uint64_t), counts[c],
                                       chan[c]);
      EXPECT_TRUE(comm.alltoallv_in_flight(chan[c]));
      EXPECT_EQ(comm.channels_in_flight(), c + 1);
      // Blocking collectives ride their own slots mid-flight.
      EXPECT_EQ(comm.allreduce_sum<count_t>(1), static_cast<count_t>(n));
    }

    // Finish out of start order: 1, 2, 0.
    for (const int c : {1, 2, 0}) {
      std::vector<std::byte> recv;
      std::vector<count_t> rcounts;
      (void)comm.alltoallv_bytes_finish(recv, &rcounts, chan[c]);
      EXPECT_FALSE(comm.alltoallv_in_flight(chan[c]));
      EXPECT_EQ(recv, expect[c]) << "channel " << c;
      EXPECT_EQ(rcounts, expect_rcounts[c]);
      comm.barrier();  // interleaved blocking collective between drains
    }
    EXPECT_EQ(comm.channels_in_flight(), 0);
    // A freed channel is immediately reusable, lowest first.
    EXPECT_EQ(comm.find_free_channel(), 0);
  });
}

TEST(Channels, ExhaustionAndBusyStartThrow) {
  run_world(2, [](Comm& comm) {
    const std::vector<count_t> counts(2, 1);
    const std::vector<std::uint64_t> send(2, 9);
    for (int c = 0; c < Comm::max_channels(); ++c)
      (void)comm.alltoallv_bytes_start(send.data(), sizeof(std::uint64_t),
                                       counts, c);
    EXPECT_EQ(comm.channels_in_flight(), Comm::max_channels());
    EXPECT_THROW((void)comm.find_free_channel(), std::runtime_error);
    EXPECT_THROW((void)comm.alltoallv_bytes_start(
                     send.data(), sizeof(std::uint64_t), counts, 0),
                 std::runtime_error);
    std::vector<std::byte> recv;
    for (int c = 0; c < Comm::max_channels(); ++c)
      (void)comm.alltoallv_bytes_finish(recv, nullptr, c);
    EXPECT_EQ(comm.channels_in_flight(), 0);
  });
}

// ---- One-sided windows ---------------------------------------------

TEST_P(WorldSizes, WindowPassiveGetReadsPeerMemory) {
  const int n = GetParam();
  run_world(n, [&](Comm& comm) {
    // Each rank exposes n slots; slot d holds rank*100 + d. Every rank
    // pulls its own slot from every peer — passively, no target-side
    // call between the expose and the unexpose.
    std::vector<std::uint64_t> mem(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d)
      mem[static_cast<std::size_t>(d)] =
          static_cast<std::uint64_t>(comm.rank()) * 100 +
          static_cast<std::uint64_t>(d);
    const int win = comm.find_free_window();
    EXPECT_EQ(win, 0);
    comm.win_expose(mem.data(), mem.size() * sizeof(std::uint64_t), nullptr,
                    win);
    EXPECT_TRUE(comm.win_exposed(win));
    for (int t = 0; t < n; ++t) {
      EXPECT_EQ(comm.win_bytes(t, win), mem.size() * sizeof(std::uint64_t));
      std::uint64_t got = 0;
      comm.win_get(win, t,
                   static_cast<std::size_t>(comm.rank()) *
                       sizeof(std::uint64_t),
                   sizeof(std::uint64_t), &got);
      EXPECT_EQ(got, static_cast<std::uint64_t>(t) * 100 +
                         static_cast<std::uint64_t>(comm.rank()));
    }
    comm.win_unexpose(win);
    EXPECT_FALSE(comm.win_exposed(win));
  });
}

TEST_P(WorldSizes, WindowFenceOrdersPutsBeforeReads) {
  const int n = GetParam();
  run_world(n, [&](Comm& comm) {
    // Epoch 1: rank r puts its rank id into slot r of every peer.
    // The fence separates the epochs, after which every slot is
    // readable locally — MPI_Win_fence semantics.
    std::vector<std::uint64_t> mem(static_cast<std::size_t>(n),
                                   ~std::uint64_t{0});
    comm.win_expose(mem.data(), mem.size() * sizeof(std::uint64_t));
    const std::uint64_t me = static_cast<std::uint64_t>(comm.rank());
    for (int t = 0; t < n; ++t)
      comm.win_put(0, t, static_cast<std::size_t>(comm.rank()) *
                             sizeof(std::uint64_t),
                   sizeof(std::uint64_t), &me);
    comm.win_fence(0);
    for (int s = 0; s < n; ++s)
      EXPECT_EQ(mem[static_cast<std::size_t>(s)],
                static_cast<std::uint64_t>(s));
    comm.win_unexpose(0);
  });
}

TEST(Windows, MetaTravelsWithTheExposure) {
  run_world(3, [](Comm& comm) {
    // Registration metadata (per-destination counts) rides the expose
    // for free — the rendezvous descriptor pattern.
    std::vector<count_t> meta{10 + comm.rank(), 20 + comm.rank(),
                              30 + comm.rank()};
    std::uint64_t payload = 0;
    comm.win_expose(&payload, sizeof(payload), meta.data());
    for (int t = 0; t < 3; ++t) {
      const count_t* m = comm.win_meta(t, 0);
      ASSERT_NE(m, nullptr);
      EXPECT_EQ(m[comm.rank()],
                static_cast<count_t>((comm.rank() + 1) * 10 + t));
    }
    comm.win_unexpose(0);
  });
}

TEST(Windows, BillingChargesOriginAndSelfIsFree) {
  run_world(4, [](Comm& comm) {
    std::vector<std::uint64_t> mem(4, 5);
    comm.barrier();
    comm.reset_stats();
    comm.win_expose(mem.data(), mem.size() * sizeof(std::uint64_t));
    std::uint64_t got = 0;
    for (int t = 0; t < 4; ++t)
      comm.win_get(0, t, 0, sizeof(std::uint64_t), &got);
    const std::uint64_t one = 1;
    comm.win_put(0, comm.rank(), 0, sizeof(std::uint64_t), &one);  // self
    comm.win_fence(0);
    comm.win_unexpose(0);
    const CommStats st = comm.stats();
    // 4 gets (one self) + 1 self put; only the 3 remote gets bill wire
    // bytes, and expose/fence/unexpose are 3 collectives.
    EXPECT_EQ(st.one_sided_gets, 4);
    EXPECT_EQ(st.one_sided_puts, 1);
    EXPECT_EQ(st.one_sided_bytes, 3 * sizeof(std::uint64_t));
    EXPECT_EQ(st.bytes_sent, 3 * sizeof(std::uint64_t));
    EXPECT_EQ(st.messages_sent, 3);
    EXPECT_EQ(st.collectives, 3);
  });
}

TEST(Windows, ExhaustionThrowsAndChannelsStayIndependent) {
  run_world(2, [](Comm& comm) {
    std::uint64_t x = 0;
    for (int w = 0; w < Comm::max_windows(); ++w)
      comm.win_expose(&x, sizeof(x), nullptr, w);
    EXPECT_THROW((void)comm.find_free_window(), std::runtime_error);
    // Windows and channels are separate namespaces: all windows busy,
    // every channel still free.
    EXPECT_EQ(comm.find_free_channel(), 0);
    for (int w = 0; w < Comm::max_windows(); ++w) comm.win_unexpose(w);
    EXPECT_EQ(comm.find_free_window(), 0);
  });
}

TEST(Windows, ZeroByteGetIsLegalAnywhereInBounds) {
  run_world(2, [](Comm& comm) {
    // A zero-length get is a no-op, legal at any offset <= extent —
    // including exactly at the end of the region — and bills an op but
    // no bytes (matching MPI's zero-count RMA semantics).
    std::vector<std::uint64_t> mem(4, 7);
    comm.barrier();
    comm.reset_stats();
    comm.win_expose(mem.data(), mem.size() * sizeof(std::uint64_t));
    const int peer = (comm.rank() + 1) % 2;
    comm.win_get(0, peer, 0, 0, nullptr);
    comm.win_get(0, peer, mem.size() * sizeof(std::uint64_t), 0, nullptr);
    comm.win_unexpose(0);
    EXPECT_EQ(comm.stats().one_sided_gets, 2);
    EXPECT_EQ(comm.stats().one_sided_bytes, 0);
    EXPECT_EQ(comm.stats().bytes_sent, 0);
  });
}

TEST(Windows, AccessesRacingTheFenceTargetDisjointBytes) {
  const int n = 4;
  run_world(n, [&](Comm& comm) {
    // Ranks reach the fence at different times, so one rank's put can
    // race another rank's pre-fence get — legal as long as the bytes
    // are disjoint. Layout: slots [0, n) are put targets (slot r is
    // written only by origin r), slots [n, 2n) are stable values that
    // peers get mid-epoch while the puts are still landing.
    std::vector<std::uint64_t> mem(static_cast<std::size_t>(2 * n), 0);
    for (int d = 0; d < n; ++d)
      mem[static_cast<std::size_t>(n + d)] =
          static_cast<std::uint64_t>(comm.rank()) * 1000 +
          static_cast<std::uint64_t>(d);
    comm.win_expose(mem.data(), mem.size() * sizeof(std::uint64_t));
    const std::uint64_t me = static_cast<std::uint64_t>(comm.rank());
    for (int t = 0; t < n; ++t) {
      comm.win_put(0, t,
                   static_cast<std::size_t>(comm.rank()) *
                       sizeof(std::uint64_t),
                   sizeof(std::uint64_t), &me);
      std::uint64_t got = 0;
      comm.win_get(0, t,
                   static_cast<std::size_t>(n + comm.rank()) *
                       sizeof(std::uint64_t),
                   sizeof(std::uint64_t), &got);
      EXPECT_EQ(got, static_cast<std::uint64_t>(t) * 1000 + me);
    }
    comm.win_fence(0);
    for (int s = 0; s < n; ++s)
      EXPECT_EQ(mem[static_cast<std::size_t>(s)],
                static_cast<std::uint64_t>(s));
    comm.win_unexpose(0);
  });
}

TEST(Windows, UnexposeWaitsForPeersStillAccessingTheEpoch) {
  run_world(3, [](Comm& comm) {
    // Rank 0 calls win_unexpose immediately; peers keep pulling from
    // rank 0's region right up to their own unexpose call. The
    // collective barrier inside unexpose must hold rank 0's region
    // valid until every peer's last pre-unexpose access completed.
    std::vector<std::uint64_t> mem(64);
    for (std::size_t i = 0; i < mem.size(); ++i)
      mem[i] = static_cast<std::uint64_t>(comm.rank()) * 1000 + i;
    comm.win_expose(mem.data(), mem.size() * sizeof(std::uint64_t));
    if (comm.rank() != 0) {
      for (std::size_t i = 0; i < mem.size(); ++i) {
        std::uint64_t got = 0;
        comm.win_get(0, 0, i * sizeof(std::uint64_t), sizeof(std::uint64_t),
                     &got);
        EXPECT_EQ(got, i);
      }
    }
    comm.win_unexpose(0);
    // The region is private again: the owner may rewrite it freely.
    mem[0] = ~std::uint64_t{0};
  });
}

}  // namespace
}  // namespace xtra::sim
