// Phase-level unit tests for the XtraPuLP balance/refinement stages:
// each phase is exercised in isolation with hand-seeded states so the
// invariants the driver relies on are pinned down individually.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/exchange.hpp"
#include "core/init.hpp"
#include "core/phases.hpp"
#include "core/state.hpp"
#include "core/xtrapulp.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "metrics/quality.hpp"
#include "mpisim/comm.hpp"

namespace xtra::core {
namespace {

using graph::DistGraph;
using graph::EdgeList;
using graph::VertexDist;

PhaseState make_state(sim::Comm& comm, const DistGraph& g,
                      const std::vector<part_t>& parts, part_t nparts,
                      const Params& params) {
  PhaseState st;
  st.nparts = nparts;
  st.nprocs = comm.size();
  st.x = params.mult_x;
  st.y = params.mult_y;
  st.i_tot = params.outer_iters * (params.bal_iters + params.ref_iters);
  st.imb_v = static_cast<count_t>(
      (1.0 + params.vert_imbalance) * static_cast<double>(g.n_global()) /
      static_cast<double>(nparts)) + 1;
  st.imb_e = static_cast<count_t>(
      (1.0 + params.edge_imbalance) * 2.0 *
      static_cast<double>(g.m_global()) / static_cast<double>(nparts)) + 1;
  st.size_v = compute_vertex_sizes(comm, g, parts, nparts);
  st.change_v.assign(static_cast<std::size_t>(nparts), 0);
  return st;
}

/// Deliberately skewed but consistent labeling: low gids get part 0.
std::vector<part_t> skewed_labels(const DistGraph& g, part_t nparts,
                                  double skew) {
  std::vector<part_t> parts(g.n_total());
  const auto n = static_cast<double>(g.n_global());
  for (lid_t v = 0; v < g.n_total(); ++v) {
    const double frac = static_cast<double>(g.gid_of(v)) / n;
    // skew in (0,1): that fraction of vertices lands in part 0.
    if (frac < skew) {
      parts[v] = 0;
    } else {
      parts[v] = 1 + static_cast<part_t>((frac - skew) / (1.0 - skew) *
                                         (nparts - 1));
      parts[v] = std::min<part_t>(parts[v], nparts - 1);
    }
  }
  return parts;
}

class PhaseRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, PhaseRanks, ::testing::Values(1, 2, 4),
                         [](const auto& inf) {
                           return "nranks_" + std::to_string(inf.param);
                         });

TEST_P(PhaseRanks, VertBalanceReducesImbalance) {
  const int nranks = GetParam();
  const EdgeList el = gen::erdos_renyi(4000, 10, 3);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 3));
    Params params;
    params.nparts = 8;
    auto parts = skewed_labels(g, 8, 0.6);  // 60% in part 0
    PhaseState st = make_state(comm, g, parts, 8, params);
    const double before =
        metrics::evaluate_dist(comm, g, parts, 8).vertex_imbalance;
    for (int outer = 0; outer < 3; ++outer) {
      vert_balance_phase(comm, g, parts, st, params);
      vert_refine_phase(comm, g, parts, st, params);
    }
    const double after =
        metrics::evaluate_dist(comm, g, parts, 8).vertex_imbalance;
    EXPECT_LT(after, before / 2);
    EXPECT_LE(after, 1.0 + params.vert_imbalance + 0.05);
    EXPECT_TRUE(check_partition_consistent(comm, g, parts, 8));
  });
}

TEST_P(PhaseRanks, VertBalanceTracksSizesExactly) {
  // After fold_changes, st.size_v must equal a from-scratch recount.
  const int nranks = GetParam();
  const EdgeList el = gen::community_graph(2000, 8, 0.6, 2.3, 5);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 5));
    Params params;
    params.nparts = 6;
    auto parts = init_random(comm, g, params);
    PhaseState st = make_state(comm, g, parts, 6, params);
    vert_balance_phase(comm, g, parts, st, params);
    EXPECT_EQ(st.size_v, compute_vertex_sizes(comm, g, parts, 6));
    vert_refine_phase(comm, g, parts, st, params);
    EXPECT_EQ(st.size_v, compute_vertex_sizes(comm, g, parts, 6));
  });
}

TEST_P(PhaseRanks, VertRefineReducesCutWithoutBreakingCap) {
  const int nranks = GetParam();
  const EdgeList el = gen::community_graph(3000, 10, 0.7, 2.3, 7);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 7));
    Params params;
    params.nparts = 4;
    auto parts = init_random(comm, g, params);
    PhaseState st = make_state(comm, g, parts, 4, params);
    const auto before = metrics::evaluate_dist(comm, g, parts, 4);
    const count_t cap_before =
        std::max(*std::max_element(st.size_v.begin(), st.size_v.end()),
                 st.imb_v);
    vert_refine_phase(comm, g, parts, st, params);
    const auto after = metrics::evaluate_dist(comm, g, parts, 4);
    EXPECT_LT(after.cut, before.cut);
    // No part may exceed the cap that held when refinement started.
    for (const count_t s : compute_vertex_sizes(comm, g, parts, 4))
      EXPECT_LE(s, cap_before);
  });
}

TEST_P(PhaseRanks, EdgeBalanceImprovesEdgeImbalance) {
  const int nranks = GetParam();
  // Star-heavy graph: hubs concentrate degree.
  const EdgeList el = gen::rmat(11, 8, 5);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 5));
    Params params;
    params.nparts = 4;
    // Vertex-balanced but edge-skewed start: random labels are vertex
    // balanced while hub placement skews degree sums.
    auto parts = init_random(comm, g, params);
    PhaseState st = make_state(comm, g, parts, 4, params);
    st.size_e = compute_edge_sizes(comm, g, parts, 4);
    st.size_c = compute_cut_sizes(comm, g, parts, 4);
    st.change_e.assign(4, 0);
    st.change_c.assign(4, 0);
    const double before =
        metrics::evaluate_dist(comm, g, parts, 4).edge_imbalance;
    for (int outer = 0; outer < 3; ++outer) {
      edge_balance_phase(comm, g, parts, st, params);
      edge_refine_phase(comm, g, parts, st, params);
    }
    const double after =
        metrics::evaluate_dist(comm, g, parts, 4).edge_imbalance;
    EXPECT_LE(after, std::max(before, 1.0 + params.edge_imbalance + 0.1));
    EXPECT_TRUE(check_partition_consistent(comm, g, parts, 4));
  });
}

TEST_P(PhaseRanks, EdgePhasesTrackAllThreeSizeVectors) {
  const int nranks = GetParam();
  const EdgeList el = gen::community_graph(2000, 8, 0.6, 2.3, 9);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 9));
    Params params;
    params.nparts = 5;
    auto parts = init_random(comm, g, params);
    PhaseState st = make_state(comm, g, parts, 5, params);
    st.size_e = compute_edge_sizes(comm, g, parts, 5);
    st.size_c = compute_cut_sizes(comm, g, parts, 5);
    st.change_e.assign(5, 0);
    st.change_c.assign(5, 0);
    edge_balance_phase(comm, g, parts, st, params);
    EXPECT_EQ(st.size_v, compute_vertex_sizes(comm, g, parts, 5));
    EXPECT_EQ(st.size_e, compute_edge_sizes(comm, g, parts, 5));
    EXPECT_EQ(st.size_c, compute_cut_sizes(comm, g, parts, 5));
    edge_refine_phase(comm, g, parts, st, params);
    EXPECT_EQ(st.size_v, compute_vertex_sizes(comm, g, parts, 5));
    EXPECT_EQ(st.size_e, compute_edge_sizes(comm, g, parts, 5));
    EXPECT_EQ(st.size_c, compute_cut_sizes(comm, g, parts, 5));
  });
}

TEST_P(PhaseRanks, NoPhaseEverEmptiesAPart) {
  const int nranks = GetParam();
  const EdgeList el = gen::rmat(10, 8, 13);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 13));
    Params params;
    params.nparts = 16;
    auto parts = init_bfs_growing(comm, g, params);
    PhaseState st = make_state(comm, g, parts, 16, params);
    for (int outer = 0; outer < 3; ++outer) {
      vert_balance_phase(comm, g, parts, st, params);
      for (const count_t s : st.size_v) EXPECT_GE(s, 1);
      vert_refine_phase(comm, g, parts, st, params);
      for (const count_t s : st.size_v) EXPECT_GE(s, 1);
    }
  });
}

// MPI+X thread determinism: the partitioner's scan/commit split
// (core/sweep.hpp) makes the thread width a pure throughput knob — the
// full driver must emit byte-identical labels and identical wire
// traffic at threads = 1, 2, 8 (8 oversubscribes this container).
TEST(PhaseThreads, PartitionBitIdenticalAcrossThreadCounts) {
  const EdgeList el = gen::community_graph(3000, 10, 0.7, 2.3, 7);
  std::vector<part_t> ref;
  count_t ref_bytes = 0;
  for (const int threads : {1, 2, 8}) {
    sim::run_world(4, [&](sim::Comm& comm) {
      const DistGraph g =
          build_dist_graph(comm, el, VertexDist::random(el.n, 4, 7));
      Params params;
      params.nparts = 8;
      params.edge_phases = true;
      params.num_threads = threads;
      const PartitionResult r = partition(comm, g, params);
      const std::vector<part_t> global =
          gather_global_parts(comm, g, r.parts);
      const count_t bytes = comm.allreduce_sum(r.comm_bytes);
      if (comm.rank() != 0) return;
      if (threads == 1) {
        ref = global;
        ref_bytes = bytes;
      } else {
        EXPECT_EQ(global, ref) << "threads=" << threads;
        EXPECT_EQ(bytes, ref_bytes) << "threads=" << threads;
      }
    });
  }
}

TEST(NeighborCountsScratch, AccumulatesAndResets) {
  NeighborCounts counts(8);
  counts.add(3, 2.0);
  counts.add(3, 1.0);
  counts.add(5, 4.0);
  EXPECT_DOUBLE_EQ(counts.get(3), 3.0);
  EXPECT_DOUBLE_EQ(counts.get(5), 4.0);
  EXPECT_DOUBLE_EQ(counts.get(0), 0.0);
  EXPECT_EQ(counts.touched().size(), 2u);
  counts.reset();
  EXPECT_DOUBLE_EQ(counts.get(3), 0.0);
  EXPECT_TRUE(counts.touched().empty());
  counts.add(1, 1.5);
  EXPECT_DOUBLE_EQ(counts.get(1), 1.5);
}

TEST(NeighborCountsScratch, ZeroWeightDoesNotTouch) {
  NeighborCounts counts(4);
  counts.add(2, 0.0);
  EXPECT_TRUE(counts.touched().empty());
}

TEST(CanLeave, WorstCaseBound) {
  PhaseState st;
  st.nprocs = 4;
  st.size_v = {10, 2};
  st.change_v = {0, 0};
  // Part 1 has 2 vertices: one departure per rank could empty it.
  EXPECT_TRUE(st.can_leave(0));
  EXPECT_FALSE(st.can_leave(1));
  // After this rank removed 2 from part 0 (worst case 8 globally),
  // one more departure would risk 10 - 4*3 < 1.
  st.change_v[0] = -2;
  EXPECT_FALSE(st.can_leave(0));
}

TEST(StrictEstimates, ScaleWithNprocs) {
  PhaseState st;
  st.nprocs = 8;
  st.x = 1.0;
  st.y = 0.25;
  st.i_tot = 10;
  st.iter_tot = 0;
  st.size_v = {100};
  st.change_v = {5};
  st.size_e = {1000};
  st.change_e = {-10};
  // Optimistic estimate uses mult = 8*0.25 = 2; strict uses nprocs.
  EXPECT_DOUBLE_EQ(st.est_v(0), 100 + 2.0 * 5);
  EXPECT_DOUBLE_EQ(st.est_v_strict(0), 100 + 8.0 * 5);
  EXPECT_DOUBLE_EQ(st.est_e(0), 1000 - 2.0 * 10);
  EXPECT_DOUBLE_EQ(st.est_e_strict(0), 1000 - 8.0 * 10);
}

}  // namespace
}  // namespace xtra::core
