// Tests for the graph generators: structural properties each class
// must exhibit for the paper's experiments to be meaningful.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "graph/bfs.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"

namespace xtra::gen {
namespace {

std::vector<count_t> degrees(const graph::EdgeList& el) {
  std::vector<count_t> deg(el.n, 0);
  for (const auto& e : el.edges) {
    ++deg[e.u];
    if (!el.directed) ++deg[e.v];
  }
  return deg;
}

count_t max_degree(const graph::EdgeList& el) {
  const auto deg = degrees(el);
  return *std::max_element(deg.begin(), deg.end());
}

bool ids_in_range(const graph::EdgeList& el) {
  return std::all_of(el.edges.begin(), el.edges.end(), [&](const auto& e) {
    return e.u < el.n && e.v < el.n;
  });
}

count_t serial_diameter_lb(const graph::EdgeList& el) {
  // Distributed estimator on one rank == serial estimator.
  count_t result = 0;
  sim::run_world(1, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::block(el.n, 1));
    result = graph::estimate_diameter(comm, g, 4);
  });
  return result;
}

TEST(Rmat, SizeAndRange) {
  const auto el = rmat(10, 8, 1);
  EXPECT_EQ(el.n, 1024u);
  EXPECT_FALSE(el.directed);
  EXPECT_TRUE(ids_in_range(el));
  // Duplicates removed, so edge count is below the nominal m but
  // within a sane band.
  EXPECT_GT(el.edge_count(), 1024 * 8 / 2 / 2);
  EXPECT_LE(el.edge_count(), 1024 * 8 / 2);
}

TEST(Rmat, IsDeterministicPerSeed) {
  EXPECT_EQ(rmat(8, 8, 5).edges, rmat(8, 8, 5).edges);
  EXPECT_NE(rmat(8, 8, 5).edges, rmat(8, 8, 6).edges);
}

TEST(Rmat, SkewedDegreesVsErdosRenyi) {
  const auto r = rmat(12, 16, 3);
  const auto er = erdos_renyi(1 << 12, 16, 3);
  // R-MAT hubs dwarf the ER maximum — the property behind the paper's
  // "RMAT is the hardest class" observations (Fig 2, §V-A2).
  EXPECT_GT(max_degree(r), 2 * max_degree(er));
}

TEST(ErdosRenyi, SizeAndNoSelfLoops) {
  const auto el = erdos_renyi(5000, 10, 7);
  EXPECT_EQ(el.n, 5000u);
  EXPECT_TRUE(ids_in_range(el));
  for (const auto& e : el.edges) EXPECT_NE(e.u, e.v);
  const double davg = 2.0 * static_cast<double>(el.edge_count()) / 5000.0;
  EXPECT_NEAR(davg, 10.0, 1.0);
}

TEST(ErdosRenyi, DegreeConcentration) {
  const auto el = erdos_renyi(1 << 13, 16, 9);
  EXPECT_LT(max_degree(el), 64);  // Poisson tail, no hubs
}

TEST(RandHd, AverageDegreeNearTarget) {
  const auto el = rand_hd(20000, 16, 3);
  const double davg = 2.0 * static_cast<double>(el.edge_count()) / 20000.0;
  EXPECT_GT(davg, 10.0);
  EXPECT_LE(davg, 16.5);
}

TEST(RandHd, EdgesAreLocalInIdSpace) {
  const count_t davg = 16;
  const auto el = rand_hd(10000, davg, 5);
  for (const auto& e : el.edges) {
    const auto dist = static_cast<count_t>(
        std::min(e.v - e.u, el.n - (e.v - e.u)));  // ring distance, u<v
    EXPECT_LT(dist, davg);
  }
}

TEST(RandHd, HighDiameterVsErdosRenyi) {
  const gid_t n = 4000;
  const count_t d_hd = serial_diameter_lb(rand_hd(n, 8, 1));
  const count_t d_er = serial_diameter_lb(erdos_renyi(n, 8, 1));
  // The whole point of RandHD (§IV): Θ(n/davg) diameter vs Θ(log n).
  EXPECT_GT(d_hd, 10 * d_er);
}

TEST(Mesh2d, StencilStructure) {
  const auto el = mesh2d(10, 7);
  EXPECT_EQ(el.n, 70u);
  // 5-point stencil: rows*(cols-1) + (rows-1)*cols edges.
  EXPECT_EQ(el.edge_count(), 10 * 6 + 9 * 7);
  EXPECT_LE(max_degree(el), 4);
}

TEST(Mesh3d, StencilStructure) {
  const auto el = mesh3d(5, 4, 3);
  EXPECT_EQ(el.n, 60u);
  EXPECT_EQ(el.edge_count(),
            5 * 4 * 2 + 5 * 3 * 3 + 4 * 3 * 4);  // z, y, x directions
  EXPECT_LE(max_degree(el), 6);
}

TEST(WattsStrogatz, RewiringShrinksDiameter) {
  const count_t d0 = serial_diameter_lb(watts_strogatz(2000, 4, 0.0, 1));
  const count_t d1 = serial_diameter_lb(watts_strogatz(2000, 4, 0.3, 1));
  EXPECT_GT(d0, 4 * d1);
}

TEST(CommunityGraph, SizeRangeDeterminism) {
  const auto a = community_graph(20000, 14, 0.55, 2.3, 8);
  EXPECT_EQ(a.n, 20000u);
  EXPECT_TRUE(ids_in_range(a));
  EXPECT_EQ(a.edges, community_graph(20000, 14, 0.55, 2.3, 8).edges);
  EXPECT_NE(a.edges, community_graph(20000, 14, 0.55, 2.3, 9).edges);
}

TEST(CommunityGraph, PowerLawTail) {
  const auto el = community_graph(30000, 14, 0.55, 2.1, 4);
  const auto deg = degrees(el);
  const double davg = 2.0 * static_cast<double>(el.edge_count()) /
                      static_cast<double>(el.n);
  EXPECT_GT(max_degree(el), static_cast<count_t>(20 * davg));
}

TEST(Webcrawl, DirectedWithHostLocality) {
  const auto el = webcrawl(20000, 16, 6);
  EXPECT_TRUE(el.directed);
  EXPECT_TRUE(ids_in_range(el));
  // Locality: most arcs land within a small id window (same or nearby
  // host in crawl order) — the property that gives block partitions of
  // WDC12 their low cut (Fig 5 discussion).
  count_t local = 0;
  for (const auto& e : el.edges) {
    const gid_t d = e.u > e.v ? e.u - e.v : e.v - e.u;
    if (d < el.n / 16) ++local;
  }
  EXPECT_GT(static_cast<double>(local) / static_cast<double>(el.edge_count()),
            0.45);
}

TEST(Webcrawl, HubsExist) {
  const auto el = webcrawl(30000, 16, 2);
  std::vector<count_t> indeg(el.n, 0);
  for (const auto& e : el.edges) ++indeg[e.v];
  const count_t max_in = *std::max_element(indeg.begin(), indeg.end());
  EXPECT_GT(max_in, 100);  // Zipf-popular pages
}

TEST(Suite, AllEntriesGenerate) {
  for (const auto& entry : suite()) {
    const auto el = make_suite_graph(entry.name, 0.05);
    EXPECT_GE(el.n, 256u) << entry.name;
    EXPECT_GT(el.edge_count(), 0) << entry.name;
    EXPECT_TRUE(ids_in_range(el)) << entry.name;
    EXPECT_FALSE(el.directed) << entry.name;  // suite is symmetrized
  }
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(make_suite_graph("no_such_graph"), std::out_of_range);
}

TEST(Suite, ClassFilterWorks) {
  const auto meshes = suite(GraphClass::kMesh);
  ASSERT_FALSE(meshes.empty());
  for (const auto& e : meshes) EXPECT_EQ(e.cls, GraphClass::kMesh);
  EXPECT_LT(meshes.size(), suite().size());
}

TEST(Suite, EnvScaleParses) {
  ::setenv("XTRA_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 2.5);
  ::setenv("XTRA_SCALE", "bogus", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
  ::unsetenv("XTRA_SCALE");
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
}

TEST(Suite, ScaleChangesSize) {
  const auto small = make_suite_graph("lj", 0.02);
  const auto large = make_suite_graph("lj", 0.1);
  EXPECT_LT(small.n, large.n);
}

}  // namespace
}  // namespace xtra::gen
