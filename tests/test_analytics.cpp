// Tests for the analytics suite: correctness against hand-computed or
// serial references, plus the partition-sensitivity property Fig 8
// depends on (better partition => less communication).
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/analytics.hpp"
#include "analytics/programs.hpp"
#include "core/xtrapulp.hpp"
#include "engine/engine.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "graph/halo.hpp"
#include "mpisim/comm.hpp"

namespace xtra::analytics {
namespace {

using graph::DistGraph;
using graph::EdgeList;
using graph::VertexDist;

class AnalyticsRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, AnalyticsRanks, ::testing::Values(1, 2, 4),
                         [](const auto& inf) {
                           return "nranks_" + std::to_string(inf.param);
                         });

// ---------------------------------------------------------------------------
// Halo exchange

TEST_P(AnalyticsRanks, HaloExchangeRefreshesEveryGhost) {
  const int nranks = GetParam();
  const EdgeList el = gen::erdos_renyi(300, 6, 2);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 3));
    graph::HaloPlan halo(comm, g);
    EXPECT_EQ(halo.ghost_count(), static_cast<count_t>(g.n_ghost()));
    std::vector<gid_t> vals(g.n_total(), 0);
    for (lid_t v = 0; v < g.n_local(); ++v) vals[v] = g.gid_of(v) * 7 + 1;
    halo.exchange(comm, vals);
    for (lid_t v = 0; v < g.n_total(); ++v)
      EXPECT_EQ(vals[v], g.gid_of(v) * 7 + 1);
  });
}

// ---------------------------------------------------------------------------
// PageRank

TEST_P(AnalyticsRanks, PageRankMassConservedAndConsistent) {
  const int nranks = GetParam();
  const EdgeList el = gen::community_graph(1000, 8, 0.6, 2.3, 3);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 5));
    const PageRankResult pr = pagerank(comm, g, 20);
    EXPECT_NEAR(pr.sum, 1.0, 1e-9);
    for (lid_t v = 0; v < g.n_local(); ++v) EXPECT_GT(pr.rank[v], 0.0);
    EXPECT_EQ(pr.info.supersteps, 20);
    EXPECT_GT(pr.info.seconds, 0.0);
  });
}

TEST(PageRank, StarHubDominates) {
  EdgeList el;
  el.n = 11;
  for (gid_t v = 1; v < 11; ++v) el.edges.push_back({0, v});
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::block(el.n, 2));
    const PageRankResult pr = pagerank(comm, g, 30);
    // The hub holds lid for gid 0 on rank 0.
    if (comm.rank() == 0) {
      const lid_t hub = g.lid_of(0);
      ASSERT_NE(hub, kInvalidLid);
      for (lid_t v = 0; v < g.n_local(); ++v) {
        if (v != hub) {
          EXPECT_GT(pr.rank[hub], 3.0 * pr.rank[v]);
        }
      }
    }
  });
}

TEST_P(AnalyticsRanks, PageRankRankCountInvariant) {
  // Same graph, same iteration count -> same global ranks regardless
  // of rank count (synchronous algorithm).
  const EdgeList el = gen::erdos_renyi(500, 8, 9);
  std::vector<double> ref;
  sim::run_world(1, [&](sim::Comm& comm) {
    const DistGraph g = build_dist_graph(comm, el, VertexDist::block(el.n, 1));
    const auto pr = pagerank(comm, g, 10);
    ref.assign(el.n, 0.0);
    for (lid_t v = 0; v < g.n_local(); ++v) ref[g.gid_of(v)] = pr.rank[v];
  });
  const int nranks = GetParam();
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 7));
    const auto pr = pagerank(comm, g, 10);
    for (lid_t v = 0; v < g.n_local(); ++v)
      EXPECT_NEAR(pr.rank[v], ref[g.gid_of(v)], 1e-12);
  });
}

// ---------------------------------------------------------------------------
// Connected components

TEST_P(AnalyticsRanks, WccFindsPlantedComponents) {
  const int nranks = GetParam();
  // Three cliques of sizes 10/20/30, no inter-edges.
  EdgeList el;
  el.n = 60;
  auto add_clique = [&el](gid_t lo, gid_t hi) {
    for (gid_t a = lo; a < hi; ++a)
      for (gid_t b = a + 1; b < hi; ++b) el.edges.push_back({a, b});
  };
  add_clique(0, 10);
  add_clique(10, 30);
  add_clique(30, 60);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 3));
    const ComponentsResult r = weakly_connected_components(comm, g);
    EXPECT_EQ(r.num_components, 3);
    EXPECT_EQ(r.largest_size, 30);
    // Component labels are the min gid of the component.
    for (lid_t v = 0; v < g.n_local(); ++v) {
      const gid_t gid = g.gid_of(v);
      const gid_t expect = gid < 10 ? 0 : (gid < 30 ? 10 : 30);
      EXPECT_EQ(r.component[v], expect);
    }
  });
}

TEST(Wcc, SingletonVerticesAreComponents) {
  EdgeList el;
  el.n = 5;
  el.edges = {{0, 1}};
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g = build_dist_graph(comm, el, VertexDist::block(el.n, 2));
    const ComponentsResult r = weakly_connected_components(comm, g);
    EXPECT_EQ(r.num_components, 4);  // {0,1}, {2}, {3}, {4}
    EXPECT_EQ(r.largest_size, 2);
  });
}

// ---------------------------------------------------------------------------
// Label propagation communities

TEST_P(AnalyticsRanks, LpRecoversCliqueCommunities) {
  const int nranks = GetParam();
  EdgeList el;
  el.n = 40;
  for (gid_t base : {gid_t{0}, gid_t{20}})
    for (gid_t a = base; a < base + 20; ++a)
      for (gid_t b = a + 1; b < base + 20; ++b) el.edges.push_back({a, b});
  el.edges.push_back({5, 25});  // single bridge
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 4));
    const CommunityResult r = label_propagation(comm, g, 10);
    EXPECT_EQ(r.num_communities, 2);
    for (lid_t v = 0; v < g.n_local(); ++v)
      EXPECT_EQ(r.label[v], g.gid_of(v) < 20 ? 0u : 20u);
  });
}

// ---------------------------------------------------------------------------
// k-core

TEST_P(AnalyticsRanks, KcoreExactOnCliquePlusPath) {
  const int nranks = GetParam();
  // K5 (coreness 4) with a path tail (coreness 1).
  EdgeList el;
  el.n = 9;
  for (gid_t a = 0; a < 5; ++a)
    for (gid_t b = a + 1; b < 5; ++b) el.edges.push_back({a, b});
  el.edges.push_back({4, 5});
  el.edges.push_back({5, 6});
  el.edges.push_back({6, 7});
  el.edges.push_back({7, 8});
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 8));
    const KCoreResult r = kcore_approx(comm, g, 30);
    EXPECT_EQ(r.max_core, 4);
    for (lid_t v = 0; v < g.n_local(); ++v) {
      const gid_t gid = g.gid_of(v);
      EXPECT_EQ(r.core[v], gid < 5 ? 4 : 1) << "gid " << gid;
    }
  });
}

TEST(Kcore, CycleIsTwoCore) {
  EdgeList el;
  el.n = 8;
  for (gid_t v = 0; v < 8; ++v) el.edges.push_back({v, (v + 1) % 8});
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g = build_dist_graph(comm, el, VertexDist::block(el.n, 2));
    const KCoreResult r = kcore_approx(comm, g, 20);
    EXPECT_EQ(r.max_core, 2);
  });
}

// ---------------------------------------------------------------------------
// Harmonic centrality

TEST_P(AnalyticsRanks, HarmonicCentralityOnStar) {
  const int nranks = GetParam();
  EdgeList el;
  el.n = 6;
  for (gid_t v = 1; v < 6; ++v) el.edges.push_back({0, v});
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::block(el.n, nranks));
    const HarmonicResult r = harmonic_centrality(comm, g, 4, 9);
    ASSERT_EQ(r.sources.size(), 4u);
    for (std::size_t i = 0; i < r.sources.size(); ++i) {
      // Star: center has HC 5; a leaf has 1 + 4*(1/2) = 3.
      const double expect = r.sources[i] == 0 ? 5.0 : 3.0;
      EXPECT_NEAR(r.centrality[i], expect, 1e-12);
    }
  });
}

// Pin the multi-source migration: harmonic_centrality retired its
// per-source BFS loop for one batched MultiBfsProgram run, and this
// regression replays the retired loop (one BfsProgram per source, a
// scalar allreduce per centrality) expecting bit-identical output —
// same lid-order partial sums, same rank-order allreduce fold.
TEST_P(AnalyticsRanks, HarmonicBitIdenticalToRetiredPerSourceLoop) {
  const int nranks = GetParam();
  const EdgeList el = gen::erdos_renyi(500, 6, 13);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 3));
    const engine::Config cfg;
    const HarmonicResult r = harmonic_centrality(comm, g, 6, 21, cfg);
    ASSERT_EQ(r.centrality.size(), 6u);
    count_t supersteps = 0;
    for (std::size_t i = 0; i < r.sources.size(); ++i) {
      BfsProgram bfs;
      bfs.root = r.sources[i];
      engine::run(comm, g, bfs, cfg);
      double local = 0.0;
      for (lid_t v = 0; v < g.n_local(); ++v)
        if (bfs.levels[v] > 0 && bfs.levels[v] != kInfDist)
          local += 1.0 / static_cast<double>(bfs.levels[v]);
      EXPECT_EQ(r.centrality[i], comm.allreduce_sum(local));
      supersteps += bfs.ecc;
    }
    EXPECT_EQ(r.info.supersteps, supersteps);
  });
}

// ---------------------------------------------------------------------------
// SCC

TEST_P(AnalyticsRanks, SccFindsDirectedCycleCore) {
  const int nranks = GetParam();
  // Directed: 0->1->2->3->0 cycle (SCC of 4), plus tail 3->4->5.
  EdgeList el;
  el.n = 6;
  el.directed = true;
  el.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4}, {4, 5}};
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 6));
    const SccResult r = largest_scc(comm, g);
    EXPECT_EQ(r.scc_size, 4);
    for (lid_t v = 0; v < g.n_local(); ++v)
      EXPECT_EQ(r.in_scc[v], g.gid_of(v) < 4 ? 1 : 0);
  });
}

TEST(Scc, DagHasOnlySingletons) {
  EdgeList el;
  el.n = 5;
  el.directed = true;
  el.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}};
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g = build_dist_graph(comm, el, VertexDist::block(el.n, 2));
    const SccResult r = largest_scc(comm, g);
    EXPECT_EQ(r.scc_size, 1);  // fully trimmed
  });
}

TEST(Scc, WebcrawlHasGiantScc) {
  const EdgeList el = gen::webcrawl(3000, 12, 3);
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, 2, 3));
    const SccResult r = largest_scc(comm, g);
    EXPECT_GT(r.scc_size, static_cast<count_t>(el.n) / 10);
  });
}

// ---------------------------------------------------------------------------
// Partition sensitivity: the Fig 8 property.

TEST(PartitionSensitivity, GoodPartitionReducesPageRankComm) {
  const EdgeList el = gen::community_graph(4000, 12, 0.7, 2.5, 11);
  count_t bytes_random = 0, bytes_partitioned = 0;
  sim::run_world(4, [&](sim::Comm& comm) {
    // Random layout.
    const DistGraph g_rand =
        build_dist_graph(comm, el, VertexDist::random(el.n, 4, 3));
    const auto pr1 = pagerank(comm, g_rand, 10);
    const count_t b1 = comm.allreduce_sum(pr1.info.comm_bytes);

    // XtraPuLP layout: partition into 4 parts, redistribute by part.
    core::Params params;
    params.nparts = 4;
    const auto res = core::partition(comm, g_rand, params);
    const auto global = core::gather_global_parts(comm, g_rand, res.parts);
    auto owners = std::make_shared<std::vector<int>>(global.begin(),
                                                     global.end());
    const DistGraph g_part = build_dist_graph(
        comm, el, VertexDist::explicit_map(el.n, 4, owners));
    const auto pr2 = pagerank(comm, g_part, 10);
    const count_t b2 = comm.allreduce_sum(pr2.info.comm_bytes);
    if (comm.rank() == 0) {
      bytes_random = b1;
      bytes_partitioned = b2;
    }
  });
  EXPECT_LT(bytes_partitioned, bytes_random);
}

}  // namespace
}  // namespace xtra::analytics
