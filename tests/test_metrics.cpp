// Tests for the quality metrics: hand-computed values, serial vs.
// distributed agreement, and the geometric-mean aggregation.
#include <gtest/gtest.h>

#include <array>

#include "core/xtrapulp.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "metrics/quality.hpp"
#include "mpisim/comm.hpp"

namespace xtra::metrics {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::VertexDist;

EdgeList square_with_diagonals() {
  // 4-cycle + both diagonals = K4.
  EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {1, 3}};
  return el;
}

TEST(Evaluate, HandComputedK4Split) {
  const EdgeList el = square_with_diagonals();
  // Parts {0,1} and {2,3}: internal edges 0-1 and 2-3; cut = 4.
  const std::vector<part_t> parts{0, 0, 1, 1};
  const QualityReport q = evaluate(el, parts, 2);
  EXPECT_EQ(q.edges, 6);
  EXPECT_EQ(q.cut, 4);
  EXPECT_NEAR(q.edge_cut_ratio, 4.0 / 6.0, 1e-12);
  EXPECT_EQ(q.max_part_cut, 4);
  EXPECT_NEAR(q.scaled_max_cut, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(q.vertex_imbalance, 1.0, 1e-12);  // perfectly balanced
  EXPECT_NEAR(q.edge_imbalance, 1.0, 1e-12);    // K4 is degree-regular
}

TEST(Evaluate, AllSamePartHasZeroCut) {
  const EdgeList el = square_with_diagonals();
  const std::vector<part_t> parts{0, 0, 0, 0};
  const QualityReport q = evaluate(el, parts, 1);
  EXPECT_EQ(q.cut, 0);
  EXPECT_EQ(q.edge_cut_ratio, 0.0);
  EXPECT_EQ(q.scaled_max_cut, 0.0);
  EXPECT_NEAR(q.vertex_imbalance, 1.0, 1e-12);
}

TEST(Evaluate, SingletonPartsCutEverything) {
  const EdgeList el = square_with_diagonals();
  const std::vector<part_t> parts{0, 1, 2, 3};
  const QualityReport q = evaluate(el, parts, 4);
  EXPECT_EQ(q.cut, 6);
  EXPECT_NEAR(q.edge_cut_ratio, 1.0, 1e-12);
  // Every vertex (degree 3) has all edges cut: max part cut = 3,
  // average edges per part = 1.5.
  EXPECT_EQ(q.max_part_cut, 3);
  EXPECT_NEAR(q.scaled_max_cut, 2.0, 1e-12);
}

TEST(Evaluate, ImbalanceDetected) {
  EdgeList el;
  el.n = 6;
  el.edges = {{0, 1}, {2, 3}, {4, 5}};
  const std::vector<part_t> parts{0, 0, 0, 0, 0, 1};
  const QualityReport q = evaluate(el, parts, 2);
  // Part 0 has 5 of 6 vertices; perfect split would be 3.
  EXPECT_NEAR(q.vertex_imbalance, 5.0 / 3.0, 1e-12);
  EXPECT_EQ(q.cut, 1);  // edge 4-5
}

TEST(Evaluate, IgnoresSelfLoops) {
  EdgeList el;
  el.n = 3;
  el.edges = {{0, 1}, {1, 1}, {1, 2}};
  const std::vector<part_t> parts{0, 0, 1};
  const QualityReport q = evaluate(el, parts, 2);
  EXPECT_EQ(q.edges, 2);
  EXPECT_EQ(q.cut, 1);
}

class MetricsRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, MetricsRanks, ::testing::Values(1, 2, 3, 4),
                         [](const auto& inf) {
                           return "nranks_" + std::to_string(inf.param);
                         });

TEST_P(MetricsRanks, DistributedMatchesSerialExactly) {
  const int nranks = GetParam();
  const EdgeList el = gen::community_graph(1200, 8, 0.6, 2.3, 31);
  // An arbitrary but deterministic labeling.
  std::vector<part_t> global(el.n);
  for (gid_t v = 0; v < el.n; ++v) global[v] = static_cast<part_t>(v % 5);
  const QualityReport serial = evaluate(el, global, 5);

  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::random(el.n, nranks, 3));
    std::vector<part_t> parts(g.n_total());
    for (lid_t v = 0; v < g.n_total(); ++v)
      parts[v] = static_cast<part_t>(g.gid_of(v) % 5);
    const QualityReport dist = evaluate_dist(comm, g, parts, 5);
    EXPECT_EQ(dist.cut, serial.cut);
    EXPECT_EQ(dist.max_part_cut, serial.max_part_cut);
    EXPECT_EQ(dist.edges, serial.edges);
    EXPECT_DOUBLE_EQ(dist.edge_cut_ratio, serial.edge_cut_ratio);
    EXPECT_DOUBLE_EQ(dist.scaled_max_cut, serial.scaled_max_cut);
    EXPECT_DOUBLE_EQ(dist.vertex_imbalance, serial.vertex_imbalance);
    EXPECT_DOUBLE_EQ(dist.edge_imbalance, serial.edge_imbalance);
  });
}

TEST_P(MetricsRanks, PartitionQualityAgreesAcrossEvaluators) {
  const int nranks = GetParam();
  const EdgeList el = gen::community_graph(1500, 10, 0.6, 2.3, 7);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::random(el.n, nranks, 3));
    core::Params params;
    params.nparts = 6;
    const auto r = core::partition(comm, g, params);
    const QualityReport dist = evaluate_dist(comm, g, r.parts, 6);
    const auto global = core::gather_global_parts(comm, g, r.parts);
    const QualityReport serial = evaluate(el, global, 6);
    EXPECT_EQ(dist.cut, serial.cut);
    EXPECT_EQ(dist.max_part_cut, serial.max_part_cut);
  });
}

TEST(GeometricMean, KnownValues) {
  const std::array<double, 2> v{1.0, 4.0};
  EXPECT_NEAR(geometric_mean(v), 2.0, 1e-12);
  const std::array<double, 3> w{2.0, 2.0, 2.0};
  EXPECT_NEAR(geometric_mean(w), 2.0, 1e-12);
  const std::array<double, 1> x{7.5};
  EXPECT_NEAR(geometric_mean(x), 7.5, 1e-12);
}

TEST(GeometricMean, OrderInvariant) {
  const std::array<double, 3> a{1.5, 3.0, 9.0};
  const std::array<double, 3> b{9.0, 1.5, 3.0};
  EXPECT_NEAR(geometric_mean(a), geometric_mean(b), 1e-12);
}

}  // namespace
}  // namespace xtra::metrics
