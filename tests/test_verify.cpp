// Deliberate-misuse tests for the comm-correctness verifier
// (src/verify/, DESIGN.md §8): each checker must fire with an
// attributed error — and must stay silent on correct programs.
//
// Every misuse here is a real protocol violation that, without the
// verifier, would deadlock, corrupt slot reads, or silently produce
// wrong answers; the tests therefore skip when XTRA_VERIFY_COMM is
// compiled out (running them would hang the binary). The always-on
// attribution paths (channel/window exhaustion and double-start
// diagnostics) run in every build mode.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/exchanger.hpp"
#include "mpisim/comm.hpp"
#include "util/parallel.hpp"
#include "verify/verify.hpp"

namespace xtra::sim {
namespace {

#define SKIP_WITHOUT_VERIFIER()                                       \
  if constexpr (!verify::kEnabled) {                                  \
    GTEST_SKIP() << "XTRA_VERIFY_COMM is compiled out in this build"; \
  }

/// Run a world expected to die with a ProtocolError; returns its
/// message (empty if nothing was thrown — callers EXPECT on content).
template <typename Fn>
std::string protocol_error_of(int nranks, Fn&& fn) {
  try {
    run_world(nranks, std::forward<Fn>(fn));
  } catch (const verify::ProtocolError& e) {
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected ProtocolError, got: " << e.what();
    return {};
  }
  ADD_FAILURE() << "expected ProtocolError, world completed cleanly";
  return {};
}

void expect_contains(const std::string& msg, const std::string& needle) {
  EXPECT_NE(msg.find(needle), std::string::npos)
      << "missing \"" << needle << "\" in:\n"
      << msg;
}

// --- Lockstep checker -------------------------------------------------

TEST(VerifyLockstep, DivergentCollectivesAbortWithPerRankDiff) {
  SKIP_WITHOUT_VERIFIER();
  // rank 0 enters a barrier while rank 1 enters an allreduce: without
  // the verifier rank 1 would deadlock on its second sync after rank 0
  // exits. The fingerprint check turns it into an attributed abort.
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.barrier();
    } else {
      (void)comm.allreduce_sum<int>(1);
    }
  });
  expect_contains(msg, "lockstep divergence");
  expect_contains(msg, "barrier");
  expect_contains(msg, "allreduce");
  expect_contains(msg, "recent collectives");
}

TEST(VerifyLockstep, ChannelMismatchedStartsDetected) {
  SKIP_WITHOUT_VERIFIER();
  // Channel ids are collective state: rank 0 starting on channel 0
  // while rank 1 starts on channel 1 would pair two half-exchanges
  // that can never complete consistently.
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    const std::vector<count_t> counts{1, 1};
    const std::vector<std::byte> payload(2 * sizeof(int));
    (void)comm.alltoallv_bytes_start(payload.data(), sizeof(int), counts,
                                     comm.rank() == 0 ? 0 : 1);
    std::vector<std::byte> recv;
    (void)comm.alltoallv_bytes_finish(recv, nullptr, comm.rank() == 0 ? 0 : 1);
  });
  expect_contains(msg, "lockstep divergence");
  expect_contains(msg, "alltoallv_bytes_start [channel 0]");
  expect_contains(msg, "alltoallv_bytes_start [channel 1]");
}

TEST(VerifyLockstep, RankExitingEarlyIsAttributed) {
  SKIP_WITHOUT_VERIFIER();
  // rank 0 returns while rank 1 still communicates: the end-of-world
  // fingerprint meets rank 1's barrier at the same sync point and the
  // divergence names both, instead of deadlocking the teardown.
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    if (comm.rank() == 1) comm.barrier();
  });
  expect_contains(msg, "lockstep divergence");
  expect_contains(msg, "end-of-world");
}

// --- Channel & window lifecycle checker -------------------------------

TEST(VerifyLifecycle, ChannelLeakAtTeardownNamesOpener) {
  SKIP_WITHOUT_VERIFIER();
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    const std::vector<count_t> counts{1, 1};
    static const std::vector<std::byte> payload(2 * sizeof(int));
    (void)comm.alltoallv_bytes_start(payload.data(), sizeof(int), counts, 0,
                                     "leaky-test-exchange");
    // No finish: the rank function returns with the channel in flight.
  });
  expect_contains(msg, "leaked at run_world teardown");
  expect_contains(msg, "channel 0 still in flight");
  expect_contains(msg, "leaky-test-exchange");
}

TEST(VerifyLifecycle, WindowLeakAtTeardownNamesExposer) {
  SKIP_WITHOUT_VERIFIER();
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    static std::vector<std::byte> region(64);
    comm.win_expose(region.data(), region.size(), nullptr, 0,
                    "leaky-test-window");
    // No unexpose.
  });
  expect_contains(msg, "leaked at run_world teardown");
  expect_contains(msg, "window 0 still exposed");
  expect_contains(msg, "leaky-test-window");
}

TEST(VerifyLifecycle, FinishWithoutStartThrows) {
  SKIP_WITHOUT_VERIFIER();
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    std::vector<std::byte> recv;
    (void)comm.alltoallv_bytes_finish(recv);
  });
  expect_contains(msg, "alltoallv_bytes_finish");
  expect_contains(msg, "no exchange in flight");
}

TEST(VerifyLifecycle, GetOutsideEpochThrows) {
  SKIP_WITHOUT_VERIFIER();
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    int x = 0;
    comm.win_get(0, (comm.rank() + 1) % comm.size(), 0, sizeof(int), &x);
  });
  expect_contains(msg, "win_get outside an exposure epoch");
}

TEST(VerifyLifecycle, SelfGetAfterUnexposeIsAttributed) {
  SKIP_WITHOUT_VERIFIER();
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    std::vector<int> region(4, comm.rank());
    comm.win_expose(region.data(), region.size() * sizeof(int), nullptr, 0,
                    "short-lived-window");
    comm.win_unexpose(0);
    int x = 0;
    comm.win_get(0, comm.rank(), 0, sizeof(int), &x);
  });
  expect_contains(msg, "win_get outside an exposure epoch");
  expect_contains(msg, "last exposed by 'short-lived-window'");
}

TEST(VerifyLifecycle, AccessPastExposedRegionThrows) {
  SKIP_WITHOUT_VERIFIER();
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    std::vector<std::byte> region(16);
    comm.win_expose(region.data(), region.size(), nullptr, 0, "small-window");
    int x = 0;
    comm.win_get(0, (comm.rank() + 1) % comm.size(), 14, sizeof(int), &x);
    comm.win_unexpose(0);
  });
  expect_contains(msg, "win_get past the exposed region");
  expect_contains(msg, "small-window");
}

// --- In-flight aliasing checker ---------------------------------------

TEST(VerifyAliasing, MutatedInFlightPayloadDetectedAtFinish) {
  SKIP_WITHOUT_VERIFIER();
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    const std::vector<count_t> counts{2, 2};
    std::vector<std::byte> payload(4 * sizeof(int));
    (void)comm.alltoallv_bytes_start(payload.data(), sizeof(int), counts, 0,
                                     "aliased-exchange");
    // The payload belongs to the wire until finish; rank 0 stomping it
    // mid-flight is the bug the checksum catches.
    if (comm.rank() == 0) std::memset(payload.data(), 0x5a, payload.size());
    std::vector<std::byte> recv;
    (void)comm.alltoallv_bytes_finish(recv);
  });
  expect_contains(msg, "in-flight send payload mutated");
  expect_contains(msg, "aliased-exchange");
}

TEST(VerifyAliasing, OwnerMutatingExposedBufferBetweenFencesDetected) {
  SKIP_WITHOUT_VERIFIER();
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    std::vector<int> region(8, comm.rank());
    comm.win_expose(region.data(), region.size() * sizeof(int), nullptr, 0,
                    "mutated-window");
    if (comm.rank() == 0) region[3] = 999;  // owner writes mid-epoch
    comm.win_fence(0);
    comm.win_unexpose(0);
  });
  expect_contains(msg, "exposed window buffer mutated by its owner");
  expect_contains(msg, "between fences");
  expect_contains(msg, "mutated-window");
}

TEST(VerifyAliasing, PeerPutsStandDownTheOwnerMutationCheck) {
  SKIP_WITHOUT_VERIFIER();
  // A put legitimately changes the owner's exposed bytes; the epoch
  // check must not misread that as an owner mutation.
  run_world(2, [](Comm& comm) {
    std::vector<int> region(8, comm.rank());
    comm.win_expose(region.data(), region.size() * sizeof(int), nullptr, 0,
                    "put-target");
    const int me = comm.rank();
    comm.win_put(0, (me + 1) % 2, 0, sizeof(int), &me);
    comm.win_fence(0);
    EXPECT_EQ(region[0], (me + 1) % 2);
    comm.win_unexpose(0);
  });
}

// --- Thread-context guard ---------------------------------------------

TEST(VerifyThreadGuard, CommInsideParallelRegionThrows) {
  SKIP_WITHOUT_VERIFIER();
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    par::for_chunks(1, [&](count_t, count_t, count_t) { comm.barrier(); });
  });
  expect_contains(msg, "sim::Comm::barrier");
  expect_contains(msg, "parallel region");
}

TEST(VerifyThreadGuard, CommInsideWidenedPoolRegionThrows) {
  SKIP_WITHOUT_VERIFIER();
  const std::string msg = protocol_error_of(2, [](Comm& comm) {
    par::ThreadScope threads(4);
    std::vector<count_t> counts(static_cast<std::size_t>(comm.size()), 0);
    par::for_chunks(8 * par::kChunkGrain, [&](count_t, count_t, count_t) {
      (void)comm.alltoallv(std::vector<int>{}, counts);
    });
  });
  expect_contains(msg, "sim::Comm::alltoallv");
  expect_contains(msg, "parallel region");
}

// --- Clean programs stay silent; verifier is observability-only -------

TEST(VerifyCleanRun, ExchangerMatrixRunsCleanUnderVerifier) {
  SKIP_WITHOUT_VERIFIER();
  // Phased two-sided, one-sided pull, and hierarchical routing all use
  // channels/windows heavily; a false positive here would break the
  // whole suite, so pin a clean multi-backend run explicitly.
  struct Case {
    comm::ShardPolicy policy;
    comm::Backend backend;
    count_t bound;
  };
  for (const Case& c :
       {Case{comm::ShardPolicy::kFlat, comm::Backend::kTwoSided, 64},
        Case{comm::ShardPolicy::kFlat, comm::Backend::kOneSided, 0},
        Case{comm::ShardPolicy::kHierarchical, comm::Backend::kTwoSided, 0}}) {
    run_world(
        4,
        [&](Comm& comm) {
          comm::Exchanger ex(c.bound, c.policy, c.backend);
          ex.set_label("clean-run-exchanger");
          const int n = comm.size();
          std::vector<count_t> counts(static_cast<std::size_t>(n));
          std::vector<std::uint64_t> send;
          for (int r = 0; r < n; ++r) {
            counts[static_cast<std::size_t>(r)] = comm.rank() + r + 1;
            for (count_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i)
              send.push_back(static_cast<std::uint64_t>(comm.rank()) * 1000 +
                             static_cast<std::uint64_t>(r));
          }
          // Blocking, then overlapped start/finish, twice each.
          for (int round = 0; round < 2; ++round) {
            std::vector<count_t> rcounts;
            const auto recv = ex.exchange(comm, send, counts, &rcounts);
            count_t expect_total = 0;
            for (int s = 0; s < n; ++s)
              expect_total += s + comm.rank() + 1;
            ASSERT_EQ(static_cast<count_t>(recv.size()), expect_total);
            ex.start(comm, send, counts);
            (void)ex.finish<std::uint64_t>(comm);
          }
        },
        /*ranks_per_node=*/2);
  }
}

TEST(VerifyCleanRun, VerifierBarriersAreUnbilled) {
  SKIP_WITHOUT_VERIFIER();
  // The verifier adds extra syncs inside finish and fence; the comm
  // ledger must not see them — one collective per call, exactly as in
  // a non-verify build (bench/check_comm_baseline.py --compare-bench
  // gates the same property end-to-end in CI).
  run_world(2, [](Comm& comm) {
    const std::vector<count_t> counts{1, 1};
    std::vector<std::byte> payload(2 * sizeof(int));
    std::vector<std::byte> recv;

    comm.barrier();
    count_t before = comm.stats().collectives;
    (void)comm.alltoallv_bytes_start(payload.data(), sizeof(int), counts, 0,
                                     "billing-probe");
    (void)comm.alltoallv_bytes_finish(recv);
    EXPECT_EQ(comm.stats().collectives, before + 1);  // start+finish = one

    std::vector<int> region(4, 0);
    before = comm.stats().collectives;
    comm.win_expose(region.data(), region.size() * sizeof(int), nullptr, 0,
                    "billing-probe-window");
    comm.win_fence(0);
    comm.win_unexpose(0);
    EXPECT_EQ(comm.stats().collectives, before + 3);
  });
}

// --- Always-on attribution (runs in every build mode) -----------------

TEST(ChannelAttribution, ExhaustionNamesEveryBusyChannelsOpener) {
  run_world(2, [](Comm& comm) {
    const std::vector<count_t> counts{1, 1};
    static const std::vector<std::byte> payload(2 * sizeof(int));
    std::vector<std::string> labels;
    for (int c = 0; c < kMaxChannels; ++c)
      labels.push_back("opener-" + std::to_string(c));
    for (int c = 0; c < kMaxChannels; ++c)
      (void)comm.alltoallv_bytes_start(payload.data(), sizeof(int), counts, c,
                                       labels[static_cast<std::size_t>(c)]
                                           .c_str());
    try {
      (void)comm.find_free_channel();
      ADD_FAILURE() << "expected channel exhaustion";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("all 8 nonblocking channels are in flight"),
                std::string::npos)
          << msg;
      for (int c = 0; c < kMaxChannels; ++c) {
        EXPECT_NE(msg.find("channel " + std::to_string(c) + ": 'opener-" +
                           std::to_string(c) + "'"),
                  std::string::npos)
            << msg;
      }
    }
    std::vector<std::byte> recv;
    for (int c = 0; c < kMaxChannels; ++c)
      (void)comm.alltoallv_bytes_finish(recv, nullptr, c);
  });
}

TEST(ChannelAttribution, DoubleStartNamesBothParties) {
  run_world(2, [](Comm& comm) {
    const std::vector<count_t> counts{1, 1};
    static const std::vector<std::byte> payload(2 * sizeof(int));
    (void)comm.alltoallv_bytes_start(payload.data(), sizeof(int), counts, 0,
                                     "first-opener");
    try {
      (void)comm.alltoallv_bytes_start(payload.data(), sizeof(int), counts, 0,
                                       "second-opener");
      ADD_FAILURE() << "expected double-start rejection";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("already has an exchange in flight"),
                std::string::npos)
          << msg;
      EXPECT_NE(msg.find("first-opener"), std::string::npos) << msg;
      EXPECT_NE(msg.find("second-opener"), std::string::npos) << msg;
    }
    std::vector<std::byte> recv;
    (void)comm.alltoallv_bytes_finish(recv);
  });
}

TEST(ChannelAttribution, WindowExhaustionNamesEveryExposer) {
  run_world(2, [](Comm& comm) {
    static std::vector<std::byte> region(64);
    std::vector<std::string> labels;
    for (int w = 0; w < kMaxWindows; ++w)
      labels.push_back("exposer-" + std::to_string(w));
    for (int w = 0; w < kMaxWindows; ++w)
      comm.win_expose(region.data(), region.size(), nullptr, w,
                      labels[static_cast<std::size_t>(w)].c_str());
    try {
      (void)comm.find_free_window();
      ADD_FAILURE() << "expected window exhaustion";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("all 4 one-sided windows are exposed"),
                std::string::npos)
          << msg;
      for (int w = 0; w < kMaxWindows; ++w) {
        EXPECT_NE(msg.find("window " + std::to_string(w) + ": 'exposer-" +
                           std::to_string(w) + "'"),
                  std::string::npos)
            << msg;
      }
    }
    for (int w = 0; w < kMaxWindows; ++w) comm.win_unexpose(w);
  });
}

}  // namespace
}  // namespace xtra::sim
