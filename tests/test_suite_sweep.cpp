// Property sweep over the full Table I graph suite: for every suite
// graph (small scale), the full pipeline must produce a valid,
// consistent, constraint-respecting partition, and coarsening /
// contraction identities must hold.
#include <gtest/gtest.h>

#include "baseline/partitioners.hpp"
#include "core/state.hpp"
#include "core/xtrapulp.hpp"
#include "gen/suite.hpp"
#include "graph/dist_graph.hpp"
#include "metrics/quality.hpp"
#include "mpisim/comm.hpp"

namespace xtra {
namespace {

class SuiteGraphs : public ::testing::TestWithParam<std::string> {};

std::vector<std::string> all_suite_names() {
  std::vector<std::string> names;
  for (const auto& e : gen::suite()) names.push_back(e.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Graphs, SuiteGraphs,
                         ::testing::ValuesIn(all_suite_names()),
                         [](const auto& inf) {
                           std::string s = inf.param;
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

TEST_P(SuiteGraphs, XtraPulpInvariantsHold) {
  const graph::EdgeList el = gen::make_suite_graph(GetParam(), 0.08);
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, 2, 3));
    core::Params params;
    params.nparts = 8;
    const auto r = core::partition(comm, g, params);
    EXPECT_TRUE(core::check_partition_consistent(comm, g, r.parts, 8));
    const auto q = metrics::evaluate_dist(comm, g, r.parts, 8);
    // Vertex constraint with slack for the distributed estimates.
    EXPECT_LE(q.vertex_imbalance, 1.0 + params.vert_imbalance + 0.15)
        << GetParam();
    EXPECT_LE(q.edge_cut_ratio, 1.0);
    const auto sizes = core::compute_vertex_sizes(comm, g, r.parts, 8);
    for (const count_t s : sizes) EXPECT_GE(s, 1);
  });
}

TEST_P(SuiteGraphs, SerialPartitionersAgreeOnStructure) {
  const graph::EdgeList el = gen::make_suite_graph(GetParam(), 0.05);
  const baseline::SerialGraph g = baseline::build_serial_graph(el);
  for (const auto& parts :
       {baseline::pulp_partition(g, 4), baseline::multilevel_partition(g, 4)}) {
    const auto q = metrics::evaluate(el, parts, 4);
    EXPECT_LE(q.vertex_imbalance, 1.16) << GetParam();
    // A structure-aware partitioner must beat random's (p-1)/p cut on
    // every suite graph at p=4 (random cuts ~75%).
    EXPECT_LT(q.edge_cut_ratio, 0.75) << GetParam();
  }
}

TEST_P(SuiteGraphs, ContractionPreservesCut) {
  // For any partition, contracting by the partition itself leaves the
  // inter-part weight equal to the original cut.
  const graph::EdgeList el = gen::make_suite_graph(GetParam(), 0.04);
  const baseline::SerialGraph g = baseline::build_serial_graph(el);
  const std::vector<part_t> parts = baseline::random_partition(el.n, 5, 9);
  std::vector<gid_t> cmap(parts.begin(), parts.end());
  const baseline::SerialGraph coarse = baseline::contract(g, cmap, 5);
  count_t coarse_total = 0;
  for (const count_t w : coarse.ewgt) coarse_total += w;
  EXPECT_EQ(coarse_total / 2, baseline::weighted_cut(g, parts));
  EXPECT_EQ(coarse.total_vwgt, g.total_vwgt);
}

TEST_P(SuiteGraphs, DistBuildMatchesSerialDegreeSum) {
  const graph::EdgeList el = gen::make_suite_graph(GetParam(), 0.04);
  const baseline::SerialGraph sg = baseline::build_serial_graph(el);
  sim::run_world(3, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, 3, 11));
    EXPECT_EQ(g.m_global(), sg.m);
    const count_t deg_sum = comm.allreduce_sum(g.local_degree_sum());
    EXPECT_EQ(deg_sum, 2 * sg.m);
  });
}

}  // namespace
}  // namespace xtra
