// Tests for the unified exchange subsystem (src/comm/): the DestBuckets
// bucketing engine, the (optionally memory-bounded, phased) Exchanger,
// the query/reply round trip, and the statistics plumbing. The phased
// exchange must be bit-identical to a single alltoallv for any
// max_send_bytes — that invariant is what lets every caller opt into
// bounded memory without changing semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"
#include "comm/query_reply.hpp"
#include "core/exchange.hpp"
#include "core/xtrapulp.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "graph/halo.hpp"
#include "mpisim/comm.hpp"

namespace xtra {
namespace {

using comm::DestBuckets;
using comm::Exchanger;

// ---------------------------------------------------------------------------
// DestBuckets

TEST(DestBuckets, GroupsRecordsByDestinationInOrder) {
  DestBuckets<int> b;
  b.begin(3);
  b.count(2);
  b.count(0);
  b.count(2);
  b.commit();
  b.push(2, 20);
  b.push(0, 1);
  b.push(2, 21);
  EXPECT_EQ(b.counts(), (std::vector<count_t>{1, 0, 2}));
  EXPECT_EQ(b.records(), (std::vector<int>{1, 20, 21}));
  EXPECT_EQ(b.total(), 3);
}

TEST(DestBuckets, StampDedupAdmitsOnePerDestinationPerKey) {
  DestBuckets<int> b;
  b.begin(2);
  // Key 0 touches dest 1 three times -> one record; key 1 touches it
  // again -> a second record (different key, not deduped).
  EXPECT_TRUE(b.count_once(1, 0));
  EXPECT_FALSE(b.count_once(1, 0));
  EXPECT_FALSE(b.count_once(1, 0));
  EXPECT_TRUE(b.count_once(1, 1));
  b.commit();
  EXPECT_TRUE(b.push_once(1, 0, 7));
  EXPECT_FALSE(b.push_once(1, 0, 8));
  EXPECT_FALSE(b.push_once(1, 0, 9));
  EXPECT_TRUE(b.push_once(1, 1, 10));
  EXPECT_EQ(b.counts(), (std::vector<count_t>{0, 2}));
  EXPECT_EQ(b.records(), (std::vector<int>{7, 10}));
}

TEST(DestBuckets, EmptyBuildYieldsEmptyBuffers) {
  DestBuckets<int> b;
  b.begin(4);
  b.commit();
  EXPECT_EQ(b.total(), 0);
  EXPECT_TRUE(b.records().empty());
  EXPECT_EQ(b.counts(), (std::vector<count_t>{0, 0, 0, 0}));
}

TEST(DestBuckets, ReuseShrinksWithoutStaleRecords) {
  DestBuckets<int> b;
  b.build(2, std::vector<int>{1, 2, 3, 4}, [](int) { return 0; },
          [](int v) { return v; });
  EXPECT_EQ(b.total(), 4);
  b.build(2, std::vector<int>{9}, [](int) { return 1; },
          [](int v) { return v; });
  EXPECT_EQ(b.total(), 1);
  EXPECT_EQ(b.records(), (std::vector<int>{9}));
  EXPECT_EQ(b.counts(), (std::vector<count_t>{0, 1}));
}

// ---------------------------------------------------------------------------
// Exchanger

/// Every rank sends `per_dest` distinct records to every rank (incl.
/// itself); value encodes (source, dest, index) so misrouted or
/// reordered records are detectable.
std::vector<std::uint64_t> staged_payload(int me, int nranks,
                                          count_t per_dest) {
  std::vector<std::uint64_t> send;
  for (int d = 0; d < nranks; ++d)
    for (count_t i = 0; i < per_dest; ++i)
      send.push_back(static_cast<std::uint64_t>(me) * 1'000'000 +
                     static_cast<std::uint64_t>(d) * 1'000 +
                     static_cast<std::uint64_t>(i));
  return send;
}

TEST(Exchanger, UnboundedMatchesRawAlltoallv) {
  const int nranks = 4;
  const count_t per_dest = 5;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto send = staged_payload(comm.rank(), nranks, per_dest);
    const std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                      per_dest);
    const std::vector<std::uint64_t> expect = comm.alltoallv(send, counts);
    Exchanger ex;
    std::vector<count_t> rcounts;
    const auto got = ex.exchange(comm, send, counts, &rcounts);
    EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()), expect);
    EXPECT_EQ(rcounts, counts);
    EXPECT_EQ(ex.stats().exchanges, 1);
    EXPECT_EQ(ex.stats().phases, 1);
  });
}

class PhasedBounds : public ::testing::TestWithParam<count_t> {};

// 1 record per phase, odd 3-record chunks, exact fit, overshoot.
INSTANTIATE_TEST_SUITE_P(
    MaxSendBytes, PhasedBounds,
    ::testing::Values(sizeof(std::uint64_t), 3 * sizeof(std::uint64_t),
                      4 * 7 * sizeof(std::uint64_t), count_t(1) << 20),
    [](const auto& info) { return "bytes_" + std::to_string(info.param); });

TEST_P(PhasedBounds, PhasedResultBitIdenticalToUnbounded) {
  const count_t bound = GetParam();
  const int nranks = 4;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    // Ragged counts: rank r sends (r + d) records to destination d, so
    // ranks disagree about how many phases they need locally.
    std::vector<count_t> counts(static_cast<std::size_t>(nranks));
    std::vector<std::uint64_t> send;
    for (int d = 0; d < nranks; ++d) {
      counts[static_cast<std::size_t>(d)] = comm.rank() + d;
      for (count_t i = 0; i < counts[static_cast<std::size_t>(d)]; ++i)
        send.push_back(static_cast<std::uint64_t>(comm.rank()) * 1'000'000 +
                       static_cast<std::uint64_t>(d) * 1'000 +
                       static_cast<std::uint64_t>(i));
    }
    std::vector<count_t> expect_rcounts;
    const std::vector<std::uint64_t> expect =
        comm.alltoallv(send, counts, &expect_rcounts);

    Exchanger ex(bound);
    std::vector<count_t> rcounts;
    const auto got = ex.exchange(comm, send, counts, &rcounts);
    EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()), expect);
    EXPECT_EQ(rcounts, expect_rcounts);
    // Phase arithmetic: the rank with the largest send total dictates
    // the global phase count.
    const count_t total =
        std::accumulate(counts.begin(), counts.end(), count_t(0));
    const count_t max_total = comm.allreduce_max(total);
    const count_t max_records =
        std::max<count_t>(1, bound / static_cast<count_t>(sizeof(std::uint64_t)));
    const count_t want_phases =
        std::max<count_t>(1, (max_total + max_records - 1) / max_records);
    EXPECT_EQ(ex.stats().phases, want_phases);
    EXPECT_EQ(ex.stats().exchanges, 1);
  });
}

TEST_P(PhasedBounds, StartFinishBitIdenticalToBlocking) {
  const count_t bound = GetParam();
  const int nranks = 4;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    // Same ragged payload as the blocking phased test: rank r sends
    // (r + d) records to destination d.
    std::vector<count_t> counts(static_cast<std::size_t>(nranks));
    std::vector<std::uint64_t> send;
    for (int d = 0; d < nranks; ++d) {
      counts[static_cast<std::size_t>(d)] = comm.rank() + d;
      for (count_t i = 0; i < counts[static_cast<std::size_t>(d)]; ++i)
        send.push_back(static_cast<std::uint64_t>(comm.rank()) * 1'000'000 +
                       static_cast<std::uint64_t>(d) * 1'000 +
                       static_cast<std::uint64_t>(i));
    }
    std::vector<count_t> expect_rcounts;
    const std::vector<std::uint64_t> expect =
        comm.alltoallv(send, counts, &expect_rcounts);

    Exchanger ex(bound);
    ex.start(comm, send, counts);
    EXPECT_TRUE(ex.in_flight());
    EXPECT_EQ(ex.pending().bytes_in_flight(),
              static_cast<count_t>(send.size() * sizeof(std::uint64_t)));
    // The handle owns a snapshot: the caller's buffer is dead the
    // moment start() returns...
    std::fill(send.begin(), send.end(), 0xDEADBEEFu);
    send.clear();
    send.shrink_to_fit();
    // ...and blocking collectives may run while the exchange (all of
    // its phases) is still draining.
    EXPECT_EQ(comm.allreduce_sum<count_t>(1),
              static_cast<count_t>(nranks));
    std::vector<count_t> rcounts;
    const auto got = ex.finish<std::uint64_t>(comm, &rcounts);
    EXPECT_FALSE(ex.in_flight());
    EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()), expect);
    EXPECT_EQ(rcounts, expect_rcounts);
    // Identical result for any bound, plus the overlap ledger.
    EXPECT_EQ(ex.stats().exchanges, 1);
    EXPECT_EQ(ex.stats().overlapped, 1);
    EXPECT_GT(ex.stats().start_seconds + ex.stats().finish_seconds, 0.0);
  });
}

TEST(Exchanger, SplitAndBlockingAgreeOnStatsAndBytes) {
  const int nranks = 4;
  const count_t per_dest = 6;
  const count_t bound = 2 * sizeof(std::uint64_t);  // forces phases
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto send = staged_payload(comm.rank(), nranks, per_dest);
    const std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                      per_dest);
    Exchanger blocking(bound);
    comm.barrier();
    comm.reset_stats();
    const auto a = blocking.exchange(comm, send, counts);
    const std::vector<std::uint64_t> expect(a.begin(), a.end());
    const count_t blocking_wire = comm.stats().bytes_sent;
    const count_t blocking_colls = comm.stats().collectives;

    Exchanger split(bound);
    comm.barrier();
    comm.reset_stats();
    split.start(comm, send, counts);
    const auto b = split.finish<std::uint64_t>(comm);
    EXPECT_EQ(std::vector<std::uint64_t>(b.begin(), b.end()), expect);
    // Same wire bytes, same number of collectives: overlap is free.
    EXPECT_EQ(comm.stats().bytes_sent, blocking_wire);
    EXPECT_EQ(comm.stats().collectives, blocking_colls);
    EXPECT_EQ(split.stats().phases, blocking.stats().phases);
    EXPECT_EQ(split.stats().bytes_sent, blocking.stats().bytes_sent);
  });
}

TEST(Exchanger, RepeatedExchangesReuseAndReport) {
  sim::run_world(3, [](sim::Comm& comm) {
    Exchanger ex(16);  // 2 records of 8 bytes per phase
    for (int round = 1; round <= 4; ++round) {
      std::vector<count_t> counts(3, round);
      std::vector<std::uint64_t> send(3 * static_cast<std::size_t>(round),
                                      static_cast<std::uint64_t>(round));
      const auto got = ex.exchange(comm, send, counts);
      ASSERT_EQ(got.size(), 3 * static_cast<std::size_t>(round));
      for (const std::uint64_t v : got)
        EXPECT_EQ(v, static_cast<std::uint64_t>(round));
    }
    EXPECT_EQ(ex.stats().exchanges, 4);
    EXPECT_GT(ex.stats().phases, 4);  // later rounds needed > 1 phase
  });
}

TEST(Exchanger, AllLocalTrafficIsWireFree) {
  sim::run_world(3, [](sim::Comm& comm) {
    DestBuckets<std::uint64_t> b;
    b.begin(comm.size());
    for (int i = 0; i < 5; ++i) b.count(comm.rank());
    b.commit();
    for (int i = 0; i < 5; ++i)
      b.push(comm.rank(), static_cast<std::uint64_t>(i));
    Exchanger ex;
    const count_t wire_before = comm.stats().bytes_sent;
    const auto got = ex.exchange(comm, b);
    ASSERT_EQ(got.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(got[i], i);
    // Self-destined data never touches the wire: neither the runtime
    // nor the Exchanger may bill it.
    EXPECT_EQ(comm.stats().bytes_sent, wire_before);
    EXPECT_EQ(ex.stats().bytes_sent, 0);
    EXPECT_EQ(ex.stats().records_sent, 5);
  });
}

TEST(Exchanger, ByteAccountingMatchesRuntimeStats) {
  const int nranks = 4;
  const count_t per_dest = 3;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto send = staged_payload(comm.rank(), nranks, per_dest);
    const std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                      per_dest);
    Exchanger ex;
    const count_t wire_before = comm.stats().bytes_sent;
    (void)ex.exchange(comm, send, counts);
    // Unbounded mode issues exactly one alltoallv and nothing else, so
    // the Exchanger's ledger must equal the runtime's wire delta:
    // (nranks - 1) peers x per_dest records x 8 bytes.
    const count_t want = (nranks - 1) * per_dest *
                         static_cast<count_t>(sizeof(std::uint64_t));
    EXPECT_EQ(ex.stats().bytes_sent, want);
    EXPECT_EQ(comm.stats().bytes_sent - wire_before, want);
  });
}

TEST(Comm, WorldStatsSumsEveryRank) {
  const int nranks = 4;
  std::vector<count_t> per_rank(static_cast<std::size_t>(nranks), 0);
  std::vector<count_t> aggregated(static_cast<std::size_t>(nranks), 0);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    // Rank r ships r records to every peer.
    const std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                      comm.rank());
    const std::vector<std::uint64_t> send(
        static_cast<std::size_t>(nranks) *
            static_cast<std::size_t>(comm.rank()),
        7);
    (void)comm.alltoallv(send, counts);
    per_rank[static_cast<std::size_t>(comm.rank())] = comm.stats().bytes_sent;
    const sim::CommStats world = comm.world_stats();
    aggregated[static_cast<std::size_t>(comm.rank())] = world.bytes_sent;
    EXPECT_GT(world.collectives, 0);
  });
  const count_t sum =
      std::accumulate(per_rank.begin(), per_rank.end(), count_t(0));
  for (const count_t a : aggregated) EXPECT_EQ(a, sum);
}

// ---------------------------------------------------------------------------
// Query/reply round trip

TEST(QueryReply, RepliesAlignWithQueries) {
  const int nranks = 3;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    // Ask every rank (incl. self) to square our rank-tagged values;
    // replies must come back in exactly the order we asked.
    DestBuckets<std::uint64_t> b;
    b.begin(nranks);
    for (int d = 0; d < nranks; ++d)
      for (int i = 0; i < 2; ++i) b.count(d);
    b.commit();
    std::vector<std::uint64_t> asked;
    for (int d = 0; d < nranks; ++d)
      for (int i = 0; i < 2; ++i) {
        const auto q = static_cast<std::uint64_t>(
            10 * (comm.rank() + 1) + d * 2 + i);
        b.push(d, q);
        asked.push_back(q);
      }
    Exchanger ex;
    const auto replies = comm::query_reply(
        comm, ex, b.records(), b.counts(),
        [](const std::uint64_t q) { return q * q; });
    ASSERT_EQ(replies.size(), asked.size());
    // records() is grouped by destination in push order — same order
    // the replies use.
    for (std::size_t i = 0; i < asked.size(); ++i)
      EXPECT_EQ(replies[i], b.records()[i] * b.records()[i]);
  });
}

// ---------------------------------------------------------------------------
// End-to-end: bounded exchange through the real callers

TEST(BoundedExchange, HaloRefreshIdenticalUnderAnyBound) {
  const graph::EdgeList el = gen::erdos_renyi(500, 8, 11);
  for (const count_t bound : {count_t(0), count_t(8), count_t(64),
                              count_t(1) << 20}) {
    sim::run_world(3, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, 3, 5));
      graph::HaloPlan halo(comm, g);
      halo.set_max_send_bytes(bound);
      std::vector<gid_t> vals(g.n_total(), 0);
      for (lid_t v = 0; v < g.n_local(); ++v) vals[v] = g.gid_of(v) * 3 + 1;
      halo.exchange(comm, vals);
      for (lid_t v = 0; v < g.n_total(); ++v)
        EXPECT_EQ(vals[v], g.gid_of(v) * 3 + 1);
    });
  }
}

TEST(BoundedExchange, HaloPrefetchInterleavedIdenticalUnderAnyBound) {
  // The overlapped prefetch pipeline — boundary compute, prefetch,
  // interior compute (mutating vals mid-flight), collectives in
  // between, finish — must leave vals exactly as the blocking
  // exchange would, for unbounded and multi-phase bounds alike.
  const graph::EdgeList el = gen::erdos_renyi(500, 8, 11);
  for (const count_t bound : {count_t(0), count_t(8), count_t(64),
                              count_t(1) << 20}) {
    sim::run_world(3, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, 3, 5));
      graph::HaloPlan blocking_halo(comm, g);
      graph::HaloPlan overlap_halo(comm, g);
      blocking_halo.set_max_send_bytes(bound);
      overlap_halo.set_max_send_bytes(bound);
      // Meter only the replayed exchanges, not the constructor's
      // (blocking) registration round.
      overlap_halo.reset_stats();

      std::vector<gid_t> expect(g.n_total());
      std::vector<gid_t> vals(g.n_total());
      for (lid_t v = 0; v < g.n_total(); ++v)
        expect[v] = vals[v] = g.gid_of(v);

      for (int iter = 1; iter <= 3; ++iter) {
        // Reference superstep: update every owned value, then refresh.
        for (lid_t v = 0; v < g.n_local(); ++v)
          expect[v] = expect[v] * 7 + static_cast<gid_t>(iter);
        blocking_halo.exchange(comm, expect);

        // Overlapped superstep: boundary first, ship, interior while
        // the wire drains (with an interleaved allreduce), finish.
        for (const lid_t v : overlap_halo.boundary_lids())
          vals[v] = vals[v] * 7 + static_cast<gid_t>(iter);
        overlap_halo.prefetch_next(comm, vals);
        EXPECT_TRUE(overlap_halo.prefetch_in_flight());
        for (lid_t v = 0; v < g.n_local(); ++v)
          if (!overlap_halo.is_boundary(v))
            vals[v] = vals[v] * 7 + static_cast<gid_t>(iter);
        (void)comm.allreduce_sum<count_t>(1);
        overlap_halo.finish_prefetch(comm, vals);
        EXPECT_FALSE(overlap_halo.prefetch_in_flight());

        ASSERT_EQ(vals, expect) << "bound=" << bound << " iter=" << iter;
      }
      EXPECT_EQ(overlap_halo.stats().overlapped,
                overlap_halo.stats().exchanges);
    });
  }
}

TEST(BoundedExchange, UpdateExchangerSplitMatchesRun) {
  // start(); <unrelated allreduce>; finish() must apply exactly the
  // ghost updates run() would, including when the queue is empty on
  // some ranks and the exchange is multi-phase.
  const graph::EdgeList el = gen::erdos_renyi(400, 10, 17);
  for (const count_t bound : {count_t(0), count_t(sizeof(core::PartUpdate)),
                              count_t(1) << 16}) {
    sim::run_world(3, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::block(el.n, 3));
      core::UpdateExchanger run_ex(bound);
      core::UpdateExchanger split_ex(bound);
      std::vector<part_t> run_parts(g.n_total(), 0);
      std::vector<part_t> split_parts(g.n_total(), 0);
      for (int it = 0; it < 3; ++it) {
        std::vector<lid_t> queue;
        // Rank 2 sits out every other iteration (still collective).
        if (!(comm.rank() == 2 && it % 2 == 1))
          for (lid_t v = 0; v < g.n_local(); v += 2) {
            run_parts[v] = split_parts[v] =
                static_cast<part_t>((v + static_cast<lid_t>(it)) % 5);
            queue.push_back(v);
          }
        run_ex.run(comm, g, run_parts, queue);

        split_ex.start(comm, g, split_parts, queue);
        (void)comm.allreduce_sum<count_t>(1);  // overlapped local work
        split_ex.finish(comm, g, split_parts);

        ASSERT_EQ(split_parts, run_parts) << "bound=" << bound
                                          << " iter=" << it;
      }
    });
  }
}

TEST(BoundedExchange, PartitionBitIdenticalUnderAnyBound) {
  const graph::EdgeList el = gen::erdos_renyi(300, 6, 23);
  core::Params params;
  params.nparts = 4;
  params.outer_iters = 1;

  auto run = [&](count_t bound) {
    params.max_exchange_bytes = bound;
    std::vector<part_t> global;
    sim::run_world(3, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::block(el.n, 3));
      const auto r = core::partition(comm, g, params);
      const auto gp = core::gather_global_parts(comm, g, r.parts);
      if (comm.rank() == 0) global = gp;
    });
    return global;
  };

  const std::vector<part_t> unbounded = run(0);
  ASSERT_EQ(unbounded.size(), el.n);
  // The paper's memory-bounded multi-phase communication must not
  // change the algorithm: one PartUpdate per phase, a modest budget,
  // and effectively-unbounded all agree bit-for-bit.
  EXPECT_EQ(run(sizeof(core::PartUpdate)), unbounded);
  EXPECT_EQ(run(256), unbounded);
  EXPECT_EQ(run(count_t(1) << 24), unbounded);
}

}  // namespace
}  // namespace xtra
