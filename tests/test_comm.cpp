// Tests for the unified exchange subsystem (src/comm/): the DestBuckets
// bucketing engine, the (optionally memory-bounded, phased) Exchanger,
// the query/reply round trip, and the statistics plumbing. The phased
// exchange must be bit-identical to a single alltoallv for any
// max_send_bytes — that invariant is what lets every caller opt into
// bounded memory without changing semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <string_view>
#include <vector>

#include "analytics/analytics.hpp"
#include "comm/coalescing.hpp"
#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"
#include "comm/query_reply.hpp"
#include "core/exchange.hpp"
#include "core/xtrapulp.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "graph/halo.hpp"
#include "mpisim/comm.hpp"
#include "spmv/spmv.hpp"

namespace xtra {
namespace {

using comm::DestBuckets;
using comm::Exchanger;

/// CI matrix hook: XTRA_TEST_BACKEND=onesided / XTRA_TEST_SHARD=hier
/// re-drive the end-to-end result-correctness tests through the
/// alternate transport. The exact-billing tests never read these.
comm::Backend env_backend() {
  const char* v = std::getenv("XTRA_TEST_BACKEND");
  return v && std::string_view(v) == "onesided" ? comm::Backend::kOneSided
                                                : comm::Backend::kTwoSided;
}

comm::ShardPolicy env_shard() {
  const char* v = std::getenv("XTRA_TEST_SHARD");
  return v && std::string_view(v) == "hier"
             ? comm::ShardPolicy::kHierarchical
             : comm::ShardPolicy::kFlat;
}

// ---------------------------------------------------------------------------
// DestBuckets

TEST(DestBuckets, GroupsRecordsByDestinationInOrder) {
  DestBuckets<int> b;
  b.begin(3);
  b.count(2);
  b.count(0);
  b.count(2);
  b.commit();
  b.push(2, 20);
  b.push(0, 1);
  b.push(2, 21);
  EXPECT_EQ(b.counts(), (std::vector<count_t>{1, 0, 2}));
  EXPECT_EQ(b.records(), (std::vector<int>{1, 20, 21}));
  EXPECT_EQ(b.total(), 3);
}

TEST(DestBuckets, StampDedupAdmitsOnePerDestinationPerKey) {
  DestBuckets<int> b;
  b.begin(2);
  // Key 0 touches dest 1 three times -> one record; key 1 touches it
  // again -> a second record (different key, not deduped).
  EXPECT_TRUE(b.count_once(1, 0));
  EXPECT_FALSE(b.count_once(1, 0));
  EXPECT_FALSE(b.count_once(1, 0));
  EXPECT_TRUE(b.count_once(1, 1));
  b.commit();
  EXPECT_TRUE(b.push_once(1, 0, 7));
  EXPECT_FALSE(b.push_once(1, 0, 8));
  EXPECT_FALSE(b.push_once(1, 0, 9));
  EXPECT_TRUE(b.push_once(1, 1, 10));
  EXPECT_EQ(b.counts(), (std::vector<count_t>{0, 2}));
  EXPECT_EQ(b.records(), (std::vector<int>{7, 10}));
}

TEST(DestBuckets, EmptyBuildYieldsEmptyBuffers) {
  DestBuckets<int> b;
  b.begin(4);
  b.commit();
  EXPECT_EQ(b.total(), 0);
  EXPECT_TRUE(b.records().empty());
  EXPECT_EQ(b.counts(), (std::vector<count_t>{0, 0, 0, 0}));
}

TEST(DestBuckets, ReuseShrinksWithoutStaleRecords) {
  DestBuckets<int> b;
  b.build(2, std::vector<int>{1, 2, 3, 4}, [](int) { return 0; },
          [](int v) { return v; });
  EXPECT_EQ(b.total(), 4);
  b.build(2, std::vector<int>{9}, [](int) { return 1; },
          [](int v) { return v; });
  EXPECT_EQ(b.total(), 1);
  EXPECT_EQ(b.records(), (std::vector<int>{9}));
  EXPECT_EQ(b.counts(), (std::vector<count_t>{0, 1}));
}

// ---------------------------------------------------------------------------
// Exchanger

/// Every rank sends `per_dest` distinct records to every rank (incl.
/// itself); value encodes (source, dest, index) so misrouted or
/// reordered records are detectable.
std::vector<std::uint64_t> staged_payload(int me, int nranks,
                                          count_t per_dest) {
  std::vector<std::uint64_t> send;
  for (int d = 0; d < nranks; ++d)
    for (count_t i = 0; i < per_dest; ++i)
      send.push_back(static_cast<std::uint64_t>(me) * 1'000'000 +
                     static_cast<std::uint64_t>(d) * 1'000 +
                     static_cast<std::uint64_t>(i));
  return send;
}

TEST(Exchanger, UnboundedMatchesRawAlltoallv) {
  const int nranks = 4;
  const count_t per_dest = 5;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto send = staged_payload(comm.rank(), nranks, per_dest);
    const std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                      per_dest);
    const std::vector<std::uint64_t> expect = comm.alltoallv(send, counts);
    Exchanger ex;
    std::vector<count_t> rcounts;
    const auto got = ex.exchange(comm, send, counts, &rcounts);
    EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()), expect);
    EXPECT_EQ(rcounts, counts);
    EXPECT_EQ(ex.stats().exchanges, 1);
    EXPECT_EQ(ex.stats().phases, 1);
  });
}

class PhasedBounds : public ::testing::TestWithParam<count_t> {};

// 1 record per phase, odd 3-record chunks, exact fit, overshoot.
INSTANTIATE_TEST_SUITE_P(
    MaxSendBytes, PhasedBounds,
    ::testing::Values(sizeof(std::uint64_t), 3 * sizeof(std::uint64_t),
                      4 * 7 * sizeof(std::uint64_t), count_t(1) << 20),
    [](const auto& inf) { return "bytes_" + std::to_string(inf.param); });

TEST_P(PhasedBounds, PhasedResultBitIdenticalToUnbounded) {
  const count_t bound = GetParam();
  const int nranks = 4;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    // Ragged counts: rank r sends (r + d) records to destination d, so
    // ranks disagree about how many phases they need locally.
    std::vector<count_t> counts(static_cast<std::size_t>(nranks));
    std::vector<std::uint64_t> send;
    for (int d = 0; d < nranks; ++d) {
      counts[static_cast<std::size_t>(d)] = comm.rank() + d;
      for (count_t i = 0; i < counts[static_cast<std::size_t>(d)]; ++i)
        send.push_back(static_cast<std::uint64_t>(comm.rank()) * 1'000'000 +
                       static_cast<std::uint64_t>(d) * 1'000 +
                       static_cast<std::uint64_t>(i));
    }
    std::vector<count_t> expect_rcounts;
    const std::vector<std::uint64_t> expect =
        comm.alltoallv(send, counts, &expect_rcounts);

    Exchanger ex(bound);
    std::vector<count_t> rcounts;
    const auto got = ex.exchange(comm, send, counts, &rcounts);
    EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()), expect);
    EXPECT_EQ(rcounts, expect_rcounts);
    // Phase arithmetic: the rank with the largest send total dictates
    // the global phase count.
    const count_t total =
        std::accumulate(counts.begin(), counts.end(), count_t(0));
    const count_t max_total = comm.allreduce_max(total);
    const count_t max_records =
        std::max<count_t>(1, bound / static_cast<count_t>(sizeof(std::uint64_t)));
    const count_t want_phases =
        std::max<count_t>(1, (max_total + max_records - 1) / max_records);
    EXPECT_EQ(ex.stats().phases, want_phases);
    EXPECT_EQ(ex.stats().exchanges, 1);
  });
}

TEST_P(PhasedBounds, StartFinishBitIdenticalToBlocking) {
  const count_t bound = GetParam();
  const int nranks = 4;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    // Same ragged payload as the blocking phased test: rank r sends
    // (r + d) records to destination d.
    std::vector<count_t> counts(static_cast<std::size_t>(nranks));
    std::vector<std::uint64_t> send;
    for (int d = 0; d < nranks; ++d) {
      counts[static_cast<std::size_t>(d)] = comm.rank() + d;
      for (count_t i = 0; i < counts[static_cast<std::size_t>(d)]; ++i)
        send.push_back(static_cast<std::uint64_t>(comm.rank()) * 1'000'000 +
                       static_cast<std::uint64_t>(d) * 1'000 +
                       static_cast<std::uint64_t>(i));
    }
    std::vector<count_t> expect_rcounts;
    const std::vector<std::uint64_t> expect =
        comm.alltoallv(send, counts, &expect_rcounts);

    Exchanger ex(bound);
    ex.start(comm, send, counts);
    EXPECT_TRUE(ex.in_flight());
    EXPECT_EQ(ex.pending().bytes_in_flight(),
              static_cast<count_t>(send.size() * sizeof(std::uint64_t)));
    // The handle owns a snapshot: the caller's buffer is dead the
    // moment start() returns...
    std::fill(send.begin(), send.end(), 0xDEADBEEFu);
    send.clear();
    send.shrink_to_fit();
    // ...and blocking collectives may run while the exchange (all of
    // its phases) is still draining.
    EXPECT_EQ(comm.allreduce_sum<count_t>(1),
              static_cast<count_t>(nranks));
    std::vector<count_t> rcounts;
    const auto got = ex.finish<std::uint64_t>(comm, &rcounts);
    EXPECT_FALSE(ex.in_flight());
    EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()), expect);
    EXPECT_EQ(rcounts, expect_rcounts);
    // Identical result for any bound, plus the overlap ledger.
    EXPECT_EQ(ex.stats().exchanges, 1);
    EXPECT_EQ(ex.stats().overlapped, 1);
    EXPECT_GT(ex.stats().start_seconds + ex.stats().finish_seconds, 0.0);
  });
}

TEST(Exchanger, SplitAndBlockingAgreeOnStatsAndBytes) {
  const int nranks = 4;
  const count_t per_dest = 6;
  const count_t bound = 2 * sizeof(std::uint64_t);  // forces phases
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto send = staged_payload(comm.rank(), nranks, per_dest);
    const std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                      per_dest);
    Exchanger blocking(bound);
    comm.barrier();
    comm.reset_stats();
    const auto a = blocking.exchange(comm, send, counts);
    const std::vector<std::uint64_t> expect(a.begin(), a.end());
    const count_t blocking_wire = comm.stats().bytes_sent;
    const count_t blocking_colls = comm.stats().collectives;

    Exchanger split(bound);
    comm.barrier();
    comm.reset_stats();
    split.start(comm, send, counts);
    const auto b = split.finish<std::uint64_t>(comm);
    EXPECT_EQ(std::vector<std::uint64_t>(b.begin(), b.end()), expect);
    // Same wire bytes, same number of collectives: overlap is free.
    EXPECT_EQ(comm.stats().bytes_sent, blocking_wire);
    EXPECT_EQ(comm.stats().collectives, blocking_colls);
    EXPECT_EQ(split.stats().phases, blocking.stats().phases);
    EXPECT_EQ(split.stats().bytes_sent, blocking.stats().bytes_sent);
  });
}

TEST(Exchanger, RepeatedExchangesReuseAndReport) {
  sim::run_world(3, [](sim::Comm& comm) {
    Exchanger ex(16);  // 2 records of 8 bytes per phase
    for (int round = 1; round <= 4; ++round) {
      std::vector<count_t> counts(3, round);
      std::vector<std::uint64_t> send(3 * static_cast<std::size_t>(round),
                                      static_cast<std::uint64_t>(round));
      const auto got = ex.exchange(comm, send, counts);
      ASSERT_EQ(got.size(), 3 * static_cast<std::size_t>(round));
      for (const std::uint64_t v : got)
        EXPECT_EQ(v, static_cast<std::uint64_t>(round));
    }
    EXPECT_EQ(ex.stats().exchanges, 4);
    EXPECT_GT(ex.stats().phases, 4);  // later rounds needed > 1 phase
  });
}

TEST(Exchanger, AllLocalTrafficIsWireFree) {
  sim::run_world(3, [](sim::Comm& comm) {
    DestBuckets<std::uint64_t> b;
    b.begin(comm.size());
    for (int i = 0; i < 5; ++i) b.count(comm.rank());
    b.commit();
    for (int i = 0; i < 5; ++i)
      b.push(comm.rank(), static_cast<std::uint64_t>(i));
    Exchanger ex;
    const count_t wire_before = comm.stats().bytes_sent;
    const auto got = ex.exchange(comm, b);
    ASSERT_EQ(got.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(got[i], i);
    // Self-destined data never touches the wire: neither the runtime
    // nor the Exchanger may bill it.
    EXPECT_EQ(comm.stats().bytes_sent, wire_before);
    EXPECT_EQ(ex.stats().bytes_sent, 0);
    EXPECT_EQ(ex.stats().records_sent, 5);
  });
}

TEST(Exchanger, ByteAccountingMatchesRuntimeStats) {
  const int nranks = 4;
  const count_t per_dest = 3;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto send = staged_payload(comm.rank(), nranks, per_dest);
    const std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                      per_dest);
    Exchanger ex;
    const count_t wire_before = comm.stats().bytes_sent;
    (void)ex.exchange(comm, send, counts);
    // Unbounded mode issues exactly one alltoallv and nothing else, so
    // the Exchanger's ledger must equal the runtime's wire delta:
    // (nranks - 1) peers x per_dest records x 8 bytes.
    const count_t want = (nranks - 1) * per_dest *
                         static_cast<count_t>(sizeof(std::uint64_t));
    EXPECT_EQ(ex.stats().bytes_sent, want);
    EXPECT_EQ(comm.stats().bytes_sent - wire_before, want);
  });
}

TEST(Comm, WorldStatsSumsEveryRank) {
  const int nranks = 4;
  std::vector<count_t> per_rank(static_cast<std::size_t>(nranks), 0);
  std::vector<count_t> aggregated(static_cast<std::size_t>(nranks), 0);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    // Rank r ships r records to every peer.
    const std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                      comm.rank());
    const std::vector<std::uint64_t> send(
        static_cast<std::size_t>(nranks) *
            static_cast<std::size_t>(comm.rank()),
        7);
    (void)comm.alltoallv(send, counts);
    per_rank[static_cast<std::size_t>(comm.rank())] = comm.stats().bytes_sent;
    const sim::CommStats world = comm.world_stats();
    aggregated[static_cast<std::size_t>(comm.rank())] = world.bytes_sent;
    EXPECT_GT(world.collectives, 0);
  });
  const count_t sum =
      std::accumulate(per_rank.begin(), per_rank.end(), count_t(0));
  for (const count_t a : aggregated) EXPECT_EQ(a, sum);
}

// ---------------------------------------------------------------------------
// Exchange edge cases: sub-record bounds and all-empty rounds

TEST(Exchanger, SubRecordBoundClampsToOneRecordPerPhase) {
  // A max_send_bytes smaller than one record must clamp to exactly one
  // record per phase — progress every phase, never a degenerate plan.
  const int nranks = 3;
  const count_t per_dest = 2;
  for (const count_t bound : {count_t(1), count_t(3), count_t(7)}) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto send = staged_payload(comm.rank(), nranks, per_dest);
      const std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                        per_dest);
      const std::vector<std::uint64_t> expect = comm.alltoallv(send, counts);
      Exchanger ex(bound);
      const auto got = ex.exchange(comm, send, counts);
      EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()), expect);
      // One record per phase: the phase count equals the largest
      // per-rank record total.
      EXPECT_EQ(ex.stats().phases,
                static_cast<count_t>(nranks) * per_dest);
      EXPECT_EQ(ex.stats().exchanges, 1);
    });
  }
}

TEST(Exchanger, AllEmptyBoundedExchangeSkipsTheWire) {
  // When every rank stages zero records, the bounded path already pays
  // one allreduce to agree on phases — it must learn "nothing anywhere"
  // from it and skip the payload collectives entirely, with identical
  // accounting on the blocking and start/finish paths.
  const int nranks = 4;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const std::vector<count_t> counts(static_cast<std::size_t>(nranks), 0);
    const std::vector<std::uint64_t> send;

    Exchanger blocking(64);
    comm.barrier();
    comm.reset_stats();
    std::vector<count_t> rcounts;
    const auto got = blocking.exchange(comm, send, counts, &rcounts);
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(rcounts, counts);
    EXPECT_EQ(blocking.stats().exchanges, 1);
    EXPECT_EQ(blocking.stats().phases, 0);
    // Exactly the phase-agreement allreduce hit the substrate — no
    // alltoallv was posted.
    EXPECT_EQ(comm.stats().collectives, 1);
    EXPECT_EQ(comm.stats().bytes_sent,
              static_cast<count_t>(sizeof(count_t)));

    Exchanger split(64);
    split.start(comm, send, counts);
    (void)comm.allreduce_sum<count_t>(1);
    const auto got2 = split.finish<std::uint64_t>(comm, &rcounts);
    EXPECT_TRUE(got2.empty());
    EXPECT_EQ(rcounts, counts);
    EXPECT_EQ(split.stats().phases, blocking.stats().phases);
    EXPECT_EQ(split.stats().exchanges, blocking.stats().exchanges);

    // Unbounded mode has no collective to agree with, so it still
    // posts its single (empty) alltoallv — pin that contract too.
    Exchanger unbounded;
    (void)unbounded.exchange(comm, send, counts);
    EXPECT_EQ(unbounded.stats().phases, 1);
  });
}

TEST(Exchanger, EmptyRoundsInterleaveWithNonEmptyOnes) {
  // Ranks alternate between staging work and staging nothing; the
  // all-empty skip must only trigger when *every* rank is empty.
  const int nranks = 3;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    Exchanger ex(16);
    for (int round = 0; round < 4; ++round) {
      const bool all_empty = round == 2;
      std::vector<count_t> counts(static_cast<std::size_t>(nranks), 0);
      std::vector<std::uint64_t> send;
      if (!all_empty && comm.rank() != round % nranks) {
        for (int d = 0; d < nranks; ++d) {
          counts[static_cast<std::size_t>(d)] = 3;
          for (int i = 0; i < 3; ++i)
            send.push_back(static_cast<std::uint64_t>(100 * round + i));
        }
      }
      const std::vector<std::uint64_t> expect = comm.alltoallv(send, counts);
      const auto got = ex.exchange(comm, send, counts);
      ASSERT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()), expect)
          << "round=" << round;
    }
    EXPECT_EQ(ex.stats().exchanges, 4);
  });
}

// ---------------------------------------------------------------------------
// Hierarchical (node-aware) exchange

/// Deterministic per-(source, dest) record counts with some zero runs.
count_t ragged_count(int src, int dst, int salt) {
  const unsigned h = static_cast<unsigned>(src * 7919 + dst * 104729 +
                                           salt * 1299721);
  return static_cast<count_t>((h >> 3) % 5);  // 0..4 records
}

struct HierCase {
  int nranks;
  int ranks_per_node;
};

class HierWorlds : public ::testing::TestWithParam<HierCase> {};

INSTANTIATE_TEST_SUITE_P(
    Topologies, HierWorlds,
    ::testing::Values(HierCase{4, 1}, HierCase{4, 2}, HierCase{8, 3},
                      HierCase{8, 4}, HierCase{16, 4}, HierCase{16, 16}),
    [](const auto& inf) {
      return "ranks_" + std::to_string(inf.param.nranks) + "_rpn_" +
             std::to_string(inf.param.ranks_per_node);
    });

TEST_P(HierWorlds, HierarchicalBitIdenticalToFlatUnderAnyBound) {
  const auto [nranks, rpn] = GetParam();
  // Adversarial bounds: sub-record, one record, a bound that splits
  // inside the leaders' coalesced per-destination runs (3 records),
  // an odd mid-size, and effectively unbounded.
  for (const count_t bound :
       {count_t(0), count_t(1), count_t(8), count_t(24), count_t(40),
        count_t(1) << 20}) {
    sim::run_world(
        nranks,
        [&](sim::Comm& comm) {
          std::vector<count_t> counts(static_cast<std::size_t>(nranks));
          std::vector<std::uint64_t> send;
          for (int d = 0; d < nranks; ++d) {
            counts[static_cast<std::size_t>(d)] =
                ragged_count(comm.rank(), d, static_cast<int>(bound % 97));
            for (count_t i = 0; i < counts[static_cast<std::size_t>(d)]; ++i)
              send.push_back(static_cast<std::uint64_t>(comm.rank()) *
                                 1'000'000 +
                             static_cast<std::uint64_t>(d) * 1'000 +
                             static_cast<std::uint64_t>(i));
          }
          std::vector<count_t> expect_rcounts;
          const std::vector<std::uint64_t> expect =
              comm.alltoallv(send, counts, &expect_rcounts);

          Exchanger ex(bound, comm::ShardPolicy::kHierarchical);
          std::vector<count_t> rcounts;
          const auto got = ex.exchange(comm, send, counts, &rcounts);
          ASSERT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()),
                    expect)
              << "bound=" << bound;
          EXPECT_EQ(rcounts, expect_rcounts);
          EXPECT_EQ(ex.stats().exchanges, 1);
        },
        rpn);
  }
}

TEST_P(HierWorlds, HierarchicalStartFinishSurvivesBufferDestruction) {
  const auto [nranks, rpn] = GetParam();
  for (const count_t bound : {count_t(0), count_t(8), count_t(64)}) {
    sim::run_world(
        nranks,
        [&](sim::Comm& comm) {
          std::vector<count_t> counts(static_cast<std::size_t>(nranks));
          std::vector<std::uint64_t> send;
          for (int d = 0; d < nranks; ++d) {
            counts[static_cast<std::size_t>(d)] =
                ragged_count(comm.rank(), d, 7);
            for (count_t i = 0; i < counts[static_cast<std::size_t>(d)]; ++i)
              send.push_back(static_cast<std::uint64_t>(comm.rank()) *
                                 1'000'000 +
                             static_cast<std::uint64_t>(d) * 1'000 +
                             static_cast<std::uint64_t>(i));
          }
          std::vector<count_t> expect_rcounts;
          const std::vector<std::uint64_t> expect =
              comm.alltoallv(send, counts, &expect_rcounts);

          Exchanger ex(bound, comm::ShardPolicy::kHierarchical);
          ex.start(comm, send, counts);
          EXPECT_TRUE(ex.in_flight());
          // The hierarchical start copies the payload into its own
          // round-1 staging: the caller's buffer is dead immediately,
          // and blocking collectives may interleave mid-flight.
          std::fill(send.begin(), send.end(), 0xDEADBEEFu);
          send.clear();
          send.shrink_to_fit();
          EXPECT_EQ(comm.allreduce_sum<count_t>(1),
                    static_cast<count_t>(nranks));
          std::vector<count_t> rcounts;
          const auto got = ex.finish<std::uint64_t>(comm, &rcounts);
          EXPECT_FALSE(ex.in_flight());
          ASSERT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()),
                    expect)
              << "bound=" << bound;
          EXPECT_EQ(rcounts, expect_rcounts);
          EXPECT_EQ(ex.stats().overlapped, 1);
        },
        rpn);
  }
}

TEST(HierarchicalExchange, FewerInterNodeMessagesSameInterNodeBytes) {
  // 8 ranks in 2 nodes of 4, everyone sending to everyone: the flat
  // path ships one message per off-node peer per rank, the
  // hierarchical path exactly one leader-to-leader message per node
  // pair — same payload bytes crossing nodes, far fewer messages.
  const int nranks = 8;
  const count_t per_dest = 5;
  std::vector<count_t> flat_msgs(nranks), hier_msgs(nranks);
  std::vector<count_t> flat_inter(nranks), hier_inter(nranks);
  sim::run_world(
      nranks,
      [&](sim::Comm& comm) {
        const auto send = staged_payload(comm.rank(), nranks, per_dest);
        const std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                          per_dest);
        Exchanger flat(0, comm::ShardPolicy::kFlat);
        Exchanger hier(0, comm::ShardPolicy::kHierarchical);
        const auto a = flat.exchange(comm, send, counts);
        const std::vector<std::uint64_t> expect(a.begin(), a.end());
        const auto b = hier.exchange(comm, send, counts);
        EXPECT_EQ(std::vector<std::uint64_t>(b.begin(), b.end()), expect);

        const auto me = static_cast<std::size_t>(comm.rank());
        flat_msgs[me] = flat.stats().inter_node_msgs;
        hier_msgs[me] = hier.stats().inter_node_msgs;
        flat_inter[me] = flat.stats().inter_node_bytes;
        hier_inter[me] = hier.stats().inter_node_bytes;
        // Ledger sanity: inter + intra must cover all wire bytes.
        EXPECT_EQ(flat.stats().inter_node_bytes +
                      flat.stats().intra_node_bytes,
                  flat.stats().bytes_sent);
        EXPECT_EQ(hier.stats().inter_node_bytes +
                      hier.stats().intra_node_bytes,
                  hier.stats().bytes_sent);
      },
      4);
  const auto sum = [](const std::vector<count_t>& v) {
    return std::accumulate(v.begin(), v.end(), count_t(0));
  };
  // Every record crossing a node boundary crosses it exactly once on
  // either path; the hierarchical routing only merges the envelopes.
  EXPECT_EQ(sum(hier_inter), sum(flat_inter));
  // Flat: 8 ranks x 4 off-node peers; hierarchical: 2 leaders x 1.
  EXPECT_EQ(sum(flat_msgs), 32);
  EXPECT_EQ(sum(hier_msgs), 2);
}

TEST(HierarchicalExchange, AllEmptyAndSingleNodeDegenerate) {
  sim::run_world(
      6,
      [](sim::Comm& comm) {
        // All-empty: no wire rounds at all, on any policy.
        Exchanger hier(32, comm::ShardPolicy::kHierarchical);
        const std::vector<count_t> zero(6, 0);
        const std::vector<std::uint64_t> none;
        const auto got = hier.exchange(comm, none, zero);
        EXPECT_TRUE(got.empty());
        EXPECT_EQ(hier.stats().phases, 0);

        // Single node (all six ranks co-located): the leader rounds
        // vanish and nothing crosses a node boundary.
        const std::vector<count_t> counts(6, 2);
        const auto send = staged_payload(comm.rank(), 6, 2);
        const std::vector<std::uint64_t> expect =
            comm.alltoallv(send, counts);
        const auto got2 = hier.exchange(comm, send, counts);
        EXPECT_EQ(std::vector<std::uint64_t>(got2.begin(), got2.end()),
                  expect);
        EXPECT_EQ(hier.stats().inter_node_bytes, 0);
        EXPECT_EQ(hier.stats().inter_node_msgs, 0);
      },
      8);
}

// ---------------------------------------------------------------------------
// Cross-superstep coalescing

TEST(CoalescingExchanger, BatchesRoundsUntilThresholdThenFlushes) {
  const int nranks = 4;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    // One 8-byte record per destination per round = 32 pending bytes
    // per round; threshold 64 flushes on the second enqueue.
    comm::CoalescingExchanger co(64);
    const std::vector<count_t> counts(static_cast<std::size_t>(nranks), 1);
    auto round_payload = [&](int round) {
      std::vector<std::uint64_t> send;
      for (int d = 0; d < nranks; ++d)
        send.push_back(static_cast<std::uint64_t>(comm.rank()) * 1'000'000 +
                       static_cast<std::uint64_t>(d) * 1'000 +
                       static_cast<std::uint64_t>(round));
      return send;
    };

    const auto r1 = co.enqueue(comm, round_payload(1), counts);
    EXPECT_FALSE(r1.has_value());
    EXPECT_EQ(co.pending_rounds(), 1);
    EXPECT_EQ(co.pending_bytes(), 32);

    const auto r2 = co.enqueue(comm, round_payload(2), counts);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(co.pending_bytes(), 0);
    EXPECT_EQ(co.stats().coalesced_flushes, 1);
    // Arrivals are grouped by source; within a source, rounds appear
    // in enqueue order.
    ASSERT_EQ(r2->size(), static_cast<std::size_t>(2 * nranks));
    for (int s = 0; s < nranks; ++s)
      for (int round = 1; round <= 2; ++round)
        EXPECT_EQ((*r2)[static_cast<std::size_t>(s * 2 + round - 1)],
                  static_cast<std::uint64_t>(s) * 1'000'000 +
                      static_cast<std::uint64_t>(comm.rank()) * 1'000 +
                      static_cast<std::uint64_t>(round));

    // Explicit flush drains a partial batch (still collective).
    (void)co.enqueue(comm, round_payload(3), counts);
    std::vector<count_t> rcounts;
    const auto r3 = co.flush<std::uint64_t>(comm, &rcounts);
    ASSERT_EQ(r3.size(), static_cast<std::size_t>(nranks));
    EXPECT_EQ(rcounts,
              std::vector<count_t>(static_cast<std::size_t>(nranks), 1));
    EXPECT_EQ(co.stats().coalesced_flushes, 2);
    // The wire saw two exchanges for three logical rounds.
    EXPECT_EQ(co.stats().exchanges, 2);
  });
}

TEST(CoalescingExchanger, HierarchicalPolicyAppliesToFlushes) {
  sim::run_world(
      8,
      [](sim::Comm& comm) {
        comm::CoalescingExchanger co(0, 0,
                                     comm::ShardPolicy::kHierarchical);
        const std::vector<count_t> counts(8, 2);
        const auto send = staged_payload(comm.rank(), 8, 2);
        const std::vector<std::uint64_t> expect =
            comm.alltoallv(send, counts);
        EXPECT_FALSE(co.enqueue(comm, send, counts).has_value());
        const auto got = co.flush<std::uint64_t>(comm);
        EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()),
                  expect);
        // Two nodes of four: at most one leader-to-leader message.
        EXPECT_LE(co.stats().inter_node_msgs, 1);
      },
      4);
}

// ---------------------------------------------------------------------------
// Query/reply round trip

TEST(QueryReply, RepliesAlignWithQueries) {
  const int nranks = 3;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    // Ask every rank (incl. self) to square our rank-tagged values;
    // replies must come back in exactly the order we asked.
    DestBuckets<std::uint64_t> b;
    b.begin(nranks);
    for (int d = 0; d < nranks; ++d)
      for (int i = 0; i < 2; ++i) b.count(d);
    b.commit();
    std::vector<std::uint64_t> asked;
    for (int d = 0; d < nranks; ++d)
      for (int i = 0; i < 2; ++i) {
        const auto q = static_cast<std::uint64_t>(
            10 * (comm.rank() + 1) + d * 2 + i);
        b.push(d, q);
        asked.push_back(q);
      }
    Exchanger ex;
    const auto replies = comm::query_reply(
        comm, ex, b.records(), b.counts(),
        [](const std::uint64_t q) { return q * q; });
    ASSERT_EQ(replies.size(), asked.size());
    // records() is grouped by destination in push order — same order
    // the replies use.
    for (std::size_t i = 0; i < asked.size(); ++i)
      EXPECT_EQ(replies[i], b.records()[i] * b.records()[i]);
  });
}

// ---------------------------------------------------------------------------
// End-to-end: bounded exchange through the real callers

TEST(BoundedExchange, HaloRefreshIdenticalUnderAnyBound) {
  const graph::EdgeList el = gen::erdos_renyi(500, 8, 11);
  for (const count_t bound : {count_t(0), count_t(8), count_t(64),
                              count_t(1) << 20}) {
    sim::run_world(3, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, 3, 5));
      graph::HaloPlan halo(comm, g, env_shard(), env_backend());
      halo.set_max_send_bytes(bound);
      std::vector<gid_t> vals(g.n_total(), 0);
      for (lid_t v = 0; v < g.n_local(); ++v) vals[v] = g.gid_of(v) * 3 + 1;
      halo.exchange(comm, vals);
      for (lid_t v = 0; v < g.n_total(); ++v)
        EXPECT_EQ(vals[v], g.gid_of(v) * 3 + 1);
    });
  }
}

TEST(BoundedExchange, HaloPrefetchInterleavedIdenticalUnderAnyBound) {
  // The overlapped prefetch pipeline — boundary compute, prefetch,
  // interior compute (mutating vals mid-flight), collectives in
  // between, finish — must leave vals exactly as the blocking
  // exchange would, for unbounded and multi-phase bounds alike.
  const graph::EdgeList el = gen::erdos_renyi(500, 8, 11);
  for (const count_t bound : {count_t(0), count_t(8), count_t(64),
                              count_t(1) << 20}) {
    sim::run_world(3, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, 3, 5));
      graph::HaloPlan blocking_halo(comm, g, env_shard(), env_backend());
      graph::HaloPlan overlap_halo(comm, g, env_shard(), env_backend());
      blocking_halo.set_max_send_bytes(bound);
      overlap_halo.set_max_send_bytes(bound);
      // Meter only the replayed exchanges, not the constructor's
      // (blocking) registration round.
      overlap_halo.reset_stats();

      std::vector<gid_t> expect(g.n_total());
      std::vector<gid_t> vals(g.n_total());
      for (lid_t v = 0; v < g.n_total(); ++v)
        expect[v] = vals[v] = g.gid_of(v);

      for (int iter = 1; iter <= 3; ++iter) {
        // Reference superstep: update every owned value, then refresh.
        for (lid_t v = 0; v < g.n_local(); ++v)
          expect[v] = expect[v] * 7 + static_cast<gid_t>(iter);
        blocking_halo.exchange(comm, expect);

        // Overlapped superstep: boundary first, ship, interior while
        // the wire drains (with an interleaved allreduce), finish.
        for (const lid_t v : overlap_halo.boundary_lids())
          vals[v] = vals[v] * 7 + static_cast<gid_t>(iter);
        overlap_halo.prefetch_next(comm, vals);
        EXPECT_TRUE(overlap_halo.prefetch_in_flight());
        for (lid_t v = 0; v < g.n_local(); ++v)
          if (!overlap_halo.is_boundary(v))
            vals[v] = vals[v] * 7 + static_cast<gid_t>(iter);
        (void)comm.allreduce_sum<count_t>(1);
        overlap_halo.finish_prefetch(comm, vals);
        EXPECT_FALSE(overlap_halo.prefetch_in_flight());

        ASSERT_EQ(vals, expect) << "bound=" << bound << " iter=" << iter;
      }
      EXPECT_EQ(overlap_halo.stats().overlapped,
                overlap_halo.stats().exchanges);
    });
  }
}

TEST(BoundedExchange, UpdateExchangerSplitMatchesRun) {
  // start(); <unrelated allreduce>; finish() must apply exactly the
  // ghost updates run() would, including when the queue is empty on
  // some ranks and the exchange is multi-phase.
  const graph::EdgeList el = gen::erdos_renyi(400, 10, 17);
  for (const count_t bound : {count_t(0), count_t(sizeof(core::PartUpdate)),
                              count_t(1) << 16}) {
    sim::run_world(3, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::block(el.n, 3));
      core::UpdateExchanger run_ex(bound);
      core::UpdateExchanger split_ex(bound);
      run_ex.set_backend(env_backend());
      split_ex.set_backend(env_backend());
      std::vector<part_t> run_parts(g.n_total(), 0);
      std::vector<part_t> split_parts(g.n_total(), 0);
      for (int it = 0; it < 3; ++it) {
        std::vector<lid_t> queue;
        // Rank 2 sits out every other iteration (still collective).
        if (!(comm.rank() == 2 && it % 2 == 1))
          for (lid_t v = 0; v < g.n_local(); v += 2) {
            run_parts[v] = split_parts[v] =
                static_cast<part_t>((v + static_cast<lid_t>(it)) % 5);
            queue.push_back(v);
          }
        run_ex.run(comm, g, run_parts, queue);

        split_ex.start(comm, g, split_parts, queue);
        (void)comm.allreduce_sum<count_t>(1);  // overlapped local work
        split_ex.finish(comm, g, split_parts);

        ASSERT_EQ(split_parts, run_parts) << "bound=" << bound
                                          << " iter=" << it;
      }
    });
  }
}

TEST(HierarchicalCallers, HaloPrefetchIdenticalUnderHierRouting) {
  // The overlapped halo pipeline, rerouted hierarchically, must leave
  // vals exactly as the flat blocking exchange would — including
  // multi-phase bounds and mid-flight mutation of vals.
  const graph::EdgeList el = gen::erdos_renyi(400, 8, 29);
  for (const count_t bound : {count_t(0), count_t(8), count_t(1) << 14}) {
    sim::run_world(
        6,
        [&](sim::Comm& comm) {
          const auto g = graph::build_dist_graph(
              comm, el, graph::VertexDist::random(el.n, 6, 5));
          graph::HaloPlan flat_halo(comm, g);
          graph::HaloPlan hier_halo(comm, g,
                                    comm::ShardPolicy::kHierarchical);
          flat_halo.set_max_send_bytes(bound);
          hier_halo.set_max_send_bytes(bound);

          std::vector<gid_t> expect(g.n_total());
          std::vector<gid_t> vals(g.n_total());
          for (lid_t v = 0; v < g.n_total(); ++v)
            expect[v] = vals[v] = g.gid_of(v);
          for (int iter = 1; iter <= 3; ++iter) {
            for (lid_t v = 0; v < g.n_local(); ++v)
              expect[v] = expect[v] * 5 + static_cast<gid_t>(iter);
            flat_halo.exchange(comm, expect);

            for (const lid_t v : hier_halo.boundary_lids())
              vals[v] = vals[v] * 5 + static_cast<gid_t>(iter);
            hier_halo.prefetch_next(comm, vals);
            for (lid_t v = 0; v < g.n_local(); ++v)
              if (!hier_halo.is_boundary(v))
                vals[v] = vals[v] * 5 + static_cast<gid_t>(iter);
            (void)comm.allreduce_sum<count_t>(1);
            hier_halo.finish_prefetch(comm, vals);
            ASSERT_EQ(vals, expect) << "bound=" << bound
                                    << " iter=" << iter;
          }
        },
        3);
  }
}

TEST(HierarchicalCallers, UpdateExchangerIdenticalUnderHierRouting) {
  const graph::EdgeList el = gen::erdos_renyi(300, 10, 31);
  for (const count_t bound : {count_t(0), count_t(sizeof(core::PartUpdate)),
                              count_t(1) << 12}) {
    sim::run_world(
        6,
        [&](sim::Comm& comm) {
          const auto g = graph::build_dist_graph(
              comm, el, graph::VertexDist::block(el.n, 6));
          core::UpdateExchanger flat_ex(bound);
          core::UpdateExchanger hier_ex(bound);
          hier_ex.set_shard_policy(comm::ShardPolicy::kHierarchical);
          std::vector<part_t> flat_parts(g.n_total(), 0);
          std::vector<part_t> hier_parts(g.n_total(), 0);
          for (int it = 0; it < 3; ++it) {
            std::vector<lid_t> queue;
            if (!(comm.rank() % 2 == 0 && it == 1))
              for (lid_t v = 0; v < g.n_local(); v += 3) {
                flat_parts[v] = hier_parts[v] =
                    static_cast<part_t>((v + static_cast<lid_t>(it)) % 4);
                queue.push_back(v);
              }
            flat_ex.run(comm, g, flat_parts, queue);
            hier_ex.start(comm, g, hier_parts, queue);
            (void)comm.allreduce_sum<count_t>(1);
            hier_ex.finish(comm, g, hier_parts);
            ASSERT_EQ(hier_parts, flat_parts) << "bound=" << bound
                                              << " iter=" << it;
          }
        },
        2);
  }
}

TEST(HierarchicalCallers, AnalyticsAndSpmvIdenticalUnderHierRouting) {
  const graph::EdgeList el = gen::erdos_renyi(350, 7, 41);
  sim::run_world(
      6,
      [&](sim::Comm& comm) {
        const auto g = graph::build_dist_graph(
            comm, el, graph::VertexDist::block(el.n, 6));
        const auto wcc_flat = analytics::weakly_connected_components(
            comm, g, comm::ShardPolicy::kFlat);
        const auto wcc_hier = analytics::weakly_connected_components(
            comm, g, comm::ShardPolicy::kHierarchical);
        EXPECT_EQ(wcc_hier.component, wcc_flat.component);
        EXPECT_EQ(wcc_hier.num_components, wcc_flat.num_components);

        const auto lp_flat = analytics::label_propagation(
            comm, g, 4, comm::ShardPolicy::kFlat);
        const auto lp_hier = analytics::label_propagation(
            comm, g, 4, comm::ShardPolicy::kHierarchical);
        EXPECT_EQ(lp_hier.label, lp_flat.label);
        EXPECT_EQ(lp_hier.num_communities, lp_flat.num_communities);

        std::vector<int> owners(el.n);
        for (gid_t v = 0; v < el.n; ++v)
          owners[v] = static_cast<int>(v % 6);
        spmv::DistSpmv flat_spmv(comm, el, owners, spmv::Layout::kOneD);
        spmv::DistSpmv hier_spmv(comm, el, owners, spmv::Layout::kOneD,
                                 comm::ShardPolicy::kHierarchical);
        const auto sf = flat_spmv.run(comm, 5);
        const auto sh = hier_spmv.run(comm, 5);
        // Same arrival grouping and order => bit-identical doubles.
        EXPECT_EQ(sh.checksum, sf.checksum);
      },
      3);
}

TEST(HierarchicalCallers, PartitionBitIdenticalUnderShardPolicy) {
  const graph::EdgeList el = gen::erdos_renyi(300, 6, 23);
  core::Params params;
  params.nparts = 4;
  params.outer_iters = 1;

  auto run = [&](comm::ShardPolicy policy, count_t bound) {
    params.shard_policy = policy;
    params.max_exchange_bytes = bound;
    std::vector<part_t> global;
    sim::run_world(
        6,
        [&](sim::Comm& comm) {
          const auto g = graph::build_dist_graph(
              comm, el, graph::VertexDist::block(el.n, 6));
          const auto r = core::partition(comm, g, params);
          const auto gp = core::gather_global_parts(comm, g, r.parts);
          if (comm.rank() == 0) global = gp;
        },
        2);
    return global;
  };

  const std::vector<part_t> flat = run(comm::ShardPolicy::kFlat, 0);
  ASSERT_EQ(flat.size(), el.n);
  EXPECT_EQ(run(comm::ShardPolicy::kHierarchical, 0), flat);
  EXPECT_EQ(run(comm::ShardPolicy::kHierarchical, 256), flat);
  EXPECT_EQ(run(comm::ShardPolicy::kHierarchical,
                sizeof(core::PartUpdate)),
            flat);
}

TEST(BoundedExchange, PartitionBitIdenticalUnderAnyBound) {
  const graph::EdgeList el = gen::erdos_renyi(300, 6, 23);
  core::Params params;
  params.nparts = 4;
  params.outer_iters = 1;

  auto run = [&](count_t bound) {
    params.max_exchange_bytes = bound;
    std::vector<part_t> global;
    sim::run_world(3, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::block(el.n, 3));
      const auto r = core::partition(comm, g, params);
      const auto gp = core::gather_global_parts(comm, g, r.parts);
      if (comm.rank() == 0) global = gp;
    });
    return global;
  };

  const std::vector<part_t> unbounded = run(0);
  ASSERT_EQ(unbounded.size(), el.n);
  // The paper's memory-bounded multi-phase communication must not
  // change the algorithm: one PartUpdate per phase, a modest budget,
  // and effectively-unbounded all agree bit-for-bit.
  EXPECT_EQ(run(sizeof(core::PartUpdate)), unbounded);
  EXPECT_EQ(run(256), unbounded);
  EXPECT_EQ(run(count_t(1) << 24), unbounded);
}

// ---------------------------------------------------------------------------
// One-sided (pull-mode) backend

TEST(OneSidedExchange, BitIdenticalToTwoSidedAndSameWireBytes) {
  const int nranks = 4;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    // Ragged payload: rank r sends (r + d) records to destination d.
    std::vector<count_t> counts(static_cast<std::size_t>(nranks));
    std::vector<std::uint64_t> send;
    for (int d = 0; d < nranks; ++d) {
      counts[static_cast<std::size_t>(d)] = comm.rank() + d;
      for (count_t i = 0; i < counts[static_cast<std::size_t>(d)]; ++i)
        send.push_back(static_cast<std::uint64_t>(comm.rank()) * 1'000'000 +
                       static_cast<std::uint64_t>(d) * 1'000 +
                       static_cast<std::uint64_t>(i));
    }

    comm.barrier();
    comm.reset_stats();
    Exchanger push;
    std::vector<count_t> push_rcounts;
    const auto pushed = push.exchange(comm, send, counts, &push_rcounts);
    const std::vector<std::uint64_t> expect(pushed.begin(), pushed.end());
    const count_t push_wire = comm.stats().bytes_sent;

    comm.barrier();
    comm.reset_stats();
    Exchanger pull(0, comm::ShardPolicy::kFlat, comm::Backend::kOneSided);
    EXPECT_EQ(pull.backend(), comm::Backend::kOneSided);
    std::vector<count_t> pull_rcounts;
    const auto got = pull.exchange(comm, send, counts, &pull_rcounts);
    EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()), expect);
    EXPECT_EQ(pull_rcounts, push_rcounts);
    // Consumers fetch exactly the records the push would have
    // delivered, so the wire payload matches byte for byte; the
    // ledger shows how it traveled.
    EXPECT_EQ(comm.stats().bytes_sent, push_wire);
    EXPECT_EQ(pull.stats().bytes_sent, push.stats().bytes_sent);
    EXPECT_EQ(pull.stats().exchanges, 1);
    EXPECT_EQ(pull.stats().phases, 1);
    EXPECT_GT(pull.stats().one_sided_gets, 0);
    EXPECT_GT(comm.stats().one_sided_bytes, 0);
    EXPECT_EQ(push.stats().one_sided_gets, 0);
  });
}

TEST(OneSidedExchange, StartFinishOverlapsAndSurvivesBufferDeath) {
  const int nranks = 4;
  const count_t per_dest = 6;
  sim::run_world(nranks, [&](sim::Comm& comm) {
    auto send = staged_payload(comm.rank(), nranks, per_dest);
    const std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                      per_dest);
    const std::vector<std::uint64_t> expect = comm.alltoallv(send, counts);

    Exchanger ex(0, comm::ShardPolicy::kFlat, comm::Backend::kOneSided);
    ex.start(comm, send, counts);
    EXPECT_TRUE(ex.in_flight());
    EXPECT_EQ(ex.phases_remaining(), 1);
    // The snapshot backs the exposed window — the caller's buffer may
    // die, and blocking collectives may run, while peers still pull.
    std::fill(send.begin(), send.end(), 0xDEADBEEFu);
    send.clear();
    send.shrink_to_fit();
    EXPECT_EQ(comm.allreduce_sum<count_t>(1), static_cast<count_t>(nranks));
    const auto got = ex.finish<std::uint64_t>(comm);
    EXPECT_FALSE(ex.in_flight());
    EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()), expect);
    EXPECT_EQ(ex.stats().overlapped, 1);
  });
}

TEST(OneSidedExchange, HierarchicalRoutingBitIdentical) {
  // 8 ranks, 4 per node: every leg of the 3-round hier protocol runs
  // pull-mode, and the result must still match the flat push path.
  const int nranks = 8;
  const count_t per_dest = 5;
  sim::run_world(
      nranks,
      [&](sim::Comm& comm) {
        const auto send = staged_payload(comm.rank(), nranks, per_dest);
        const std::vector<count_t> counts(static_cast<std::size_t>(nranks),
                                          per_dest);
        const std::vector<std::uint64_t> expect = comm.alltoallv(send, counts);

        Exchanger ex(0, comm::ShardPolicy::kHierarchical,
                     comm::Backend::kOneSided);
        std::vector<count_t> rcounts;
        const auto got = ex.exchange(comm, send, counts, &rcounts);
        EXPECT_EQ(std::vector<std::uint64_t>(got.begin(), got.end()), expect);
        EXPECT_GT(ex.stats().one_sided_gets, 0);
        EXPECT_GT(ex.stats().one_sided_bytes, 0);
      },
      4);
}

TEST(OneSidedExchange, CoalescerAndQueryReplyRidePullMode) {
  sim::run_world(3, [](sim::Comm& comm) {
    // Coalesced rounds flush through the pull path...
    comm::CoalescingExchanger co(0, 0, comm::ShardPolicy::kFlat,
                                 comm::Backend::kOneSided);
    DestBuckets<std::uint64_t> b;
    b.build(comm.size(), std::vector<std::uint64_t>{1, 2, 3},
            [&](std::uint64_t v) {
              return static_cast<int>(v) % comm.size();
            },
            [&](std::uint64_t v) {
              return v * 10 + static_cast<std::uint64_t>(comm.rank());
            });
    EXPECT_FALSE(co.enqueue(comm, b).has_value());  // explicit-flush mode
    const auto got = co.flush<std::uint64_t>(comm);
    count_t mine = 0;
    for (std::uint64_t v = 1; v <= 3; ++v)
      if (static_cast<int>(v) % comm.size() == comm.rank())
        mine += comm.size();
    EXPECT_EQ(static_cast<count_t>(got.size()), mine);

    // ...and the query/reply round trip answers correctly end to end.
    Exchanger ex(0, comm::ShardPolicy::kFlat, comm::Backend::kOneSided);
    DestBuckets<std::uint64_t> q;
    q.build(comm.size(), std::vector<std::uint64_t>{0, 1, 2},
            [&](std::uint64_t v) { return static_cast<int>(v) % comm.size(); },
            [](std::uint64_t v) { return v; });
    const auto replies = comm::query_reply(
        comm, ex, q.records(), q.counts(),
        [&](const std::uint64_t& v) { return v * 100 + 7; });
    ASSERT_EQ(replies.size(), q.records().size());
    for (std::size_t i = 0; i < replies.size(); ++i)
      EXPECT_EQ(replies[i], q.records()[i] * 100 + 7);
  });
}

TEST(OneSidedExchange, AllEmptyExchangeStillCollective) {
  sim::run_world(3, [](sim::Comm& comm) {
    Exchanger ex(0, comm::ShardPolicy::kFlat, comm::Backend::kOneSided);
    const std::vector<count_t> counts(3, 0);
    const std::vector<std::uint64_t> send;
    std::vector<count_t> rcounts;
    const auto got = ex.exchange(comm, send, counts, &rcounts);
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(rcounts, counts);
    EXPECT_EQ(ex.stats().bytes_sent, 0);
    EXPECT_EQ(ex.stats().one_sided_bytes, 0);
  });
}

}  // namespace
}  // namespace xtra
