// Stress and interleaving tests for the simulated-MPI runtime: long
// collective sequences, mixed collective types back-to-back, repeated
// world construction, and type coverage — the failure modes of a
// barrier-slot protocol are ordering bugs, which only sustained
// sequences expose.
#include <gtest/gtest.h>

#include <numeric>

#include "mpisim/comm.hpp"
#include "util/rng.hpp"

namespace xtra::sim {
namespace {

TEST(Stress, LongMixedCollectiveSequence) {
  // 200 rounds of randomized collective types; every rank derives the
  // same schedule from the round number, as a real BSP program would.
  run_world(4, [](Comm& comm) {
    const int n = comm.size();
    for (int round = 0; round < 200; ++round) {
      switch (splitmix64(round) % 5) {
        case 0: {
          std::vector<count_t> v{comm.rank() + round};
          comm.allreduce_sum(v);
          ASSERT_EQ(v[0], n * (n - 1) / 2 + n * round);
          break;
        }
        case 1: {
          std::vector<int> data;
          const int root = round % n;
          if (comm.rank() == root) data = {round};
          comm.bcast(data, root);
          ASSERT_EQ(data[0], round);
          break;
        }
        case 2: {
          std::vector<count_t> counts(static_cast<std::size_t>(n), 1);
          std::vector<int> send(static_cast<std::size_t>(n),
                                comm.rank() * 1000 + round);
          const auto recv = comm.alltoallv(send, counts);
          for (int r = 0; r < n; ++r)
            ASSERT_EQ(recv[static_cast<std::size_t>(r)], r * 1000 + round);
          break;
        }
        case 3:
          comm.barrier();
          break;
        case 4: {
          const auto all = comm.allgatherv(
              std::vector<int>{comm.rank() + round});
          ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
          for (int r = 0; r < n; ++r) ASSERT_EQ(all[r], r + round);
          break;
        }
      }
    }
  });
}

TEST(Stress, AsymmetricAlltoallvPatterns) {
  // Rank r sends only to ranks > r (triangular pattern) — exercises
  // zero-count segments on both sides.
  run_world(5, [](Comm& comm) {
    const int n = comm.size();
    std::vector<count_t> counts(static_cast<std::size_t>(n), 0);
    std::vector<int> send;
    for (int d = comm.rank() + 1; d < n; ++d) {
      counts[static_cast<std::size_t>(d)] = comm.rank() + 1;
      for (int i = 0; i <= comm.rank(); ++i) send.push_back(d);
    }
    std::vector<count_t> rcounts;
    const auto recv = comm.alltoallv(send, counts, &rcounts);
    // Receives come from ranks < me, s+1 items each, all equal to me.
    std::size_t expected = 0;
    for (int s = 0; s < comm.rank(); ++s)
      expected += static_cast<std::size_t>(s) + 1;
    ASSERT_EQ(recv.size(), expected);
    for (const int v : recv) ASSERT_EQ(v, comm.rank());
    for (int s = 0; s < n; ++s)
      ASSERT_EQ(rcounts[static_cast<std::size_t>(s)],
                s < comm.rank() ? s + 1 : 0);
  });
}

TEST(Stress, ManyWorldsBackToBack) {
  for (int i = 0; i < 30; ++i) {
    for (const int n : {1, 2, 5}) {
      run_world(n, [i, n](Comm& comm) {
        ASSERT_EQ(comm.allreduce_sum(1), n);
        ASSERT_EQ(comm.allreduce_max(comm.rank() + i), n - 1 + i);
      });
    }
  }
}

TEST(Stress, WideWorld) {
  // More ranks than cores by far; the runtime must still make progress.
  run_world(16, [](Comm& comm) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_EQ(comm.allreduce_sum<count_t>(1), 16);
      comm.barrier();
    }
  });
}

struct Wide {
  double a;
  std::uint64_t b;
  std::uint32_t c;
  friend bool operator==(const Wide&, const Wide&) = default;
};

TEST(Types, NonTrivialElementSizes) {
  run_world(3, [](Comm& comm) {
    std::vector<count_t> counts(3, 1);
    std::vector<Wide> send(3, Wide{1.5, 7, static_cast<std::uint32_t>(
                                               comm.rank())});
    const auto recv = comm.alltoallv(send, counts);
    for (int r = 0; r < 3; ++r)
      ASSERT_EQ(recv[static_cast<std::size_t>(r)],
                (Wide{1.5, 7, static_cast<std::uint32_t>(r)}));
  });
}

TEST(Types, DoubleReductionPrecision) {
  run_world(4, [](Comm& comm) {
    std::vector<double> v{0.25, -0.5};
    comm.allreduce_sum(v);
    EXPECT_DOUBLE_EQ(v[0], 1.0);
    EXPECT_DOUBLE_EQ(v[1], -2.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_max(0.1 * (comm.rank() + 1)), 0.4);
  });
}

TEST(Stats, CommSecondsAccumulate) {
  run_world(2, [](Comm& comm) {
    comm.reset_stats();
    for (int i = 0; i < 50; ++i) comm.barrier();
    EXPECT_EQ(comm.stats().collectives, 50);
    EXPECT_GE(comm.stats().comm_seconds, 0.0);
  });
}

}  // namespace
}  // namespace xtra::sim
