// Tests for the unified vertex-program engine (src/engine/): the
// wrapper-vs-engine bit-identity matrix across the transport knobs
// ({flat, hierarchical} x {two-sided, one-sided} x {pipeline depth
// 0, 1, 2} x {coalesce 0, 1, 3}), the two engine-native workloads
// against serial oracles (delta-capped SSSP vs Dijkstra, approximate
// triangle count vs an exact serial count), and the Stats/Config
// plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "analytics/analytics.hpp"
#include "analytics/programs.hpp"
#include "engine/engine.hpp"
#include "gen/generators.hpp"
#include "graph/bfs.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"

namespace xtra::analytics {
namespace {

using graph::DistGraph;
using graph::EdgeList;
using graph::VertexDist;

/// Gather a per-vertex result into gid order on every rank's view.
template <typename T>
std::vector<T> by_gid(sim::Comm& comm, const DistGraph& g,
                      const std::vector<T>& vals) {
  std::vector<T> global(g.n_global(), T{});
  for (lid_t v = 0; v < g.n_local(); ++v) global[g.gid_of(v)] = vals[v];
  comm.allreduce_max(global);
  return global;
}

/// CI matrix hook: XTRA_TEST_BACKEND=onesided / XTRA_TEST_SHARD=hier
/// re-drive the result-correctness tests through the alternate
/// transport. Exact-billing assertions never read these — a billing
/// contract is per-backend by definition.
comm::Backend env_backend() {
  const char* v = std::getenv("XTRA_TEST_BACKEND");
  return v && std::string_view(v) == "onesided" ? comm::Backend::kOneSided
                                                : comm::Backend::kTwoSided;
}

comm::ShardPolicy env_shard() {
  const char* v = std::getenv("XTRA_TEST_SHARD");
  return v && std::string_view(v) == "hier"
             ? comm::ShardPolicy::kHierarchical
             : comm::ShardPolicy::kFlat;
}

engine::Config env_cfg() {
  engine::Config cfg;
  cfg.backend = env_backend();
  cfg.shard_policy = env_shard();
  return cfg;
}

/// CI matrix hook: XTRA_TEST_OOC={mmap,remote} re-drives every graph
/// in this suite with its adjacency behind a 4x-undersized segment
/// cache (DESIGN.md §9) — segments small enough that the quarter
/// budget still holds several frames, so eviction AND prefetch both
/// run under every kernel here. Results must be bit-identical; the
/// exact-billing assertions ignore the hook as usual (seg traffic
/// never enters the exchange wire ledger).
DistGraph build_graph(sim::Comm& comm, const EdgeList& el,
                      const VertexDist& dist) {
  DistGraph g = build_dist_graph(comm, el, dist);
  const char* v = std::getenv("XTRA_TEST_OOC");
  if (v == nullptr) return g;
  graph::SegCacheOptions opt;
  opt.backing = std::string_view(v) == "remote" ? graph::SegBacking::kRemote
                                                : graph::SegBacking::kMmap;
  opt.segment_bytes = 1 << 9;
  count_t entries = 0;
  for (lid_t l = 0; l < g.n_local(); ++l)
    entries += g.out_degree(l) + (g.directed() ? g.in_degree(l) : 0);
  opt.budget_bytes = std::max<count_t>(
      1, entries * static_cast<count_t>(sizeof(lid_t)) / 4);
  g.enable_out_of_core(comm, opt);
  return g;
}

/// The knob matrix of the ISSUE: every transport configuration the
/// engine must drive every kernel through. Pipeline depth and
/// coalescing are exclusive staleness regimes, so the matrix sweeps
/// depth {0, 1, 2} at coalesce 0 and coalesce {1, 3} at depth 0 —
/// each crossed with both routing policies and both wire backends.
std::vector<engine::Config> knob_matrix() {
  std::vector<engine::Config> cfgs;
  for (const comm::ShardPolicy policy :
       {comm::ShardPolicy::kFlat, comm::ShardPolicy::kHierarchical})
    for (const comm::Backend backend :
         {comm::Backend::kTwoSided, comm::Backend::kOneSided}) {
      for (const int depth : {0, 1, 2}) {
        engine::Config cfg;
        cfg.shard_policy = policy;
        cfg.backend = backend;
        cfg.pipeline_depth = depth;
        cfgs.push_back(cfg);
      }
      for (const int coalesce : {1, 3}) {
        engine::Config cfg;
        cfg.shard_policy = policy;
        cfg.backend = backend;
        cfg.coalesce_every = coalesce;
        cfgs.push_back(cfg);
      }
    }
  return cfgs;
}

std::string cfg_name(const engine::Config& cfg) {
  return std::string(cfg.shard_policy == comm::ShardPolicy::kFlat
                         ? "flat"
                         : "hier") +
         (cfg.backend == comm::Backend::kOneSided ? "/1s" : "/2s") +
         "/d" + std::to_string(cfg.pipeline_depth) + "/c" +
         std::to_string(cfg.coalesce_every);
}

// ---------------------------------------------------------------------------
// Wrapper-vs-engine bit-identity across the knob matrix. WCC and
// k-core contract to unique fixpoints (min label, exact coreness), so
// every cell must reproduce the default-knob wrapper bit for bit.

TEST(EngineMatrix, WccBitIdenticalAcrossAllKnobs) {
  const EdgeList el = gen::community_graph(2'000, 10, 0.7, 2.3, 5);
  std::vector<gid_t> ref;
  count_t ref_num = 0, ref_largest = 0;
  sim::run_world(4, [&](sim::Comm& comm) {
    const DistGraph g =
        build_graph(comm, el, VertexDist::random(el.n, 4, 3));
    const ComponentsResult r = weakly_connected_components(comm, g);
    const auto global = by_gid(comm, g, r.component);
    if (comm.rank() == 0) {
      ref = global;
      ref_num = r.num_components;
      ref_largest = r.largest_size;
    }
  });
  for (const engine::Config& cfg : knob_matrix()) {
    sim::run_world(
        4,
        [&](sim::Comm& comm) {
          const DistGraph g =
              build_graph(comm, el, VertexDist::random(el.n, 4, 3));
          WccProgram p;
          engine::run(comm, g, p, cfg);
          const auto global = by_gid(comm, g, p.component);
          if (comm.rank() == 0) {
            EXPECT_EQ(global, ref) << cfg_name(cfg);
            EXPECT_EQ(p.num_components, ref_num) << cfg_name(cfg);
            EXPECT_EQ(p.largest_size, ref_largest) << cfg_name(cfg);
          }
        },
        /*ranks_per_node=*/2);
  }
}

TEST(EngineMatrix, KCoreBitIdenticalAcrossAllKnobs) {
  const EdgeList el = gen::erdos_renyi(1'500, 10, 7);
  std::vector<count_t> ref;
  sim::run_world(4, [&](sim::Comm& comm) {
    const DistGraph g =
        build_graph(comm, el, VertexDist::random(el.n, 4, 5));
    const KCoreResult r = kcore_approx(comm, g, 40);
    const auto global = by_gid(comm, g, r.core);
    if (comm.rank() == 0) ref = global;
  });
  for (const engine::Config& cfg : knob_matrix()) {
    sim::run_world(
        4,
        [&](sim::Comm& comm) {
          const DistGraph g =
              build_graph(comm, el, VertexDist::random(el.n, 4, 5));
          KCoreProgram p;
          engine::Config run_cfg = cfg;
          run_cfg.max_supersteps = 40;
          engine::run(comm, g, p, run_cfg);
          const auto global = by_gid(comm, g, p.core);
          if (comm.rank() == 0) {
            EXPECT_EQ(global, ref) << cfg_name(cfg);
          }
        },
        /*ranks_per_node=*/2);
  }
}

// Community LP's majority vote is trajectory-dependent: only the
// staleness-free cells (depth 0, coalesce <= 1) are bit-identical to
// the wrapper; the stale cells must still converge to a valid
// labeling on a planted-community graph.
TEST(EngineMatrix, CommLpDepth0AndCoalesce1BitIdentical) {
  EdgeList el;
  el.n = 40;
  for (gid_t base : {gid_t{0}, gid_t{20}})
    for (gid_t a = base; a < base + 20; ++a)
      for (gid_t b = a + 1; b < base + 20; ++b) el.edges.push_back({a, b});
  el.edges.push_back({5, 25});  // single bridge
  std::vector<gid_t> ref;
  sim::run_world(4, [&](sim::Comm& comm) {
    const DistGraph g =
        build_graph(comm, el, VertexDist::random(el.n, 4, 4));
    const CommunityResult r = label_propagation(comm, g, 10);
    const auto global = by_gid(comm, g, r.label);
    if (comm.rank() == 0) ref = global;
  });
  for (const engine::Config& cfg : knob_matrix()) {
    sim::run_world(
        4,
        [&](sim::Comm& comm) {
          const DistGraph g =
              build_graph(comm, el, VertexDist::random(el.n, 4, 4));
          CommLpProgram p;
          engine::Config run_cfg = cfg;
          run_cfg.max_supersteps = 10;
          engine::run(comm, g, p, run_cfg);
          const bool exact =
              cfg.pipeline_depth == 0 && cfg.coalesce_every <= 1;
          const auto global = by_gid(comm, g, p.label);
          if (comm.rank() == 0 && exact) {
            EXPECT_EQ(global, ref) << cfg_name(cfg);
          }
          // Stale or not, the planted communities must be recovered.
          EXPECT_EQ(p.num_communities, 2) << cfg_name(cfg);
          for (lid_t v = 0; v < g.n_local(); ++v)
            EXPECT_EQ(p.label[v], g.gid_of(v) < 20 ? 0u : 20u)
                << cfg_name(cfg);
        },
        /*ranks_per_node=*/2);
  }
}

// PageRank is fixed-iteration: the transport knobs that preserve the
// read schedule (policy, chunk size, depth 0) are bit-identical; a
// depth-1 run reads one-superstep-stale ghost contributions but must
// still conserve mass.
TEST(EngineMatrix, PageRankPolicyAndChunkBitIdentical) {
  const EdgeList el = gen::erdos_renyi(1'000, 8, 11);
  std::vector<double> ref;
  sim::run_world(4, [&](sim::Comm& comm) {
    const DistGraph g =
        build_graph(comm, el, VertexDist::random(el.n, 4, 3));
    const PageRankResult r = pagerank(comm, g, 12);
    std::vector<double> global(g.n_global(), 0.0);
    for (lid_t v = 0; v < g.n_local(); ++v)
      global[g.gid_of(v)] = r.rank[v];
    comm.allreduce_max(global);
    if (comm.rank() == 0) ref = global;
  });
  for (const comm::ShardPolicy policy :
       {comm::ShardPolicy::kFlat, comm::ShardPolicy::kHierarchical})
    for (const count_t chunk : {count_t{0}, count_t{1} << 10}) {
      sim::run_world(
          4,
          [&](sim::Comm& comm) {
            const DistGraph g = build_graph(
                comm, el, VertexDist::random(el.n, 4, 3));
            PageRankProgram p;
            engine::Config cfg;
            cfg.max_supersteps = 12;
            cfg.shard_policy = policy;
            cfg.max_exchange_bytes = chunk;
            engine::run(comm, g, p, cfg);
            std::vector<double> global(g.n_global(), 0.0);
            for (lid_t v = 0; v < g.n_local(); ++v)
              global[g.gid_of(v)] = p.rank[v];
            comm.allreduce_max(global);
            if (comm.rank() == 0) {
              EXPECT_EQ(global, ref);
            }
            EXPECT_NEAR(p.sum, 1.0, 1e-9);
          },
          /*ranks_per_node=*/2);
    }
  // Depth 1: stale-but-contracting — run to residual convergence,
  // where the one-superstep ghost lag has washed out and mass is
  // conserved (mid-run iterates are not mass-conserving by design).
  sim::run_world(4, [&](sim::Comm& comm) {
    const DistGraph g =
        build_graph(comm, el, VertexDist::random(el.n, 4, 3));
    PageRankProgram p;
    engine::Config cfg;
    cfg.max_supersteps = 400;
    cfg.pipeline_depth = 1;
    cfg.tol = 1e-10;
    const engine::Stats st = engine::run(comm, g, p, cfg);
    EXPECT_NEAR(p.sum, 1.0, 1e-8);
    EXPECT_LT(st.supersteps, 400);  // the residual stop engaged
  });
}

// The harmonic/SCC knob-plumbing gap: the Config overloads must
// produce identical results under hierarchical routing.
TEST(EngineMatrix, HarmonicAndSccIdenticalUnderHierarchicalRouting) {
  const EdgeList directed = gen::webcrawl(2'000, 10, 3);
  for (const comm::ShardPolicy policy :
       {comm::ShardPolicy::kFlat, comm::ShardPolicy::kHierarchical}) {
    sim::run_world(
        4,
        [&](sim::Comm& comm) {
          const DistGraph g = build_graph(
              comm, directed, VertexDist::random(directed.n, 4, 3));
          engine::Config cfg;
          cfg.shard_policy = policy;
          const HarmonicResult flat_h = harmonic_centrality(comm, g, 4, 9);
          const HarmonicResult h =
              harmonic_centrality(comm, g, 4, 9, cfg);
          EXPECT_EQ(h.centrality, flat_h.centrality);
          const SccResult flat_s = largest_scc(comm, g);
          const SccResult s = largest_scc(comm, g, cfg);
          EXPECT_EQ(s.scc_size, flat_s.scc_size);
          EXPECT_EQ(s.in_scc, flat_s.in_scc);
        },
        /*ranks_per_node=*/2);
  }
}

// ---------------------------------------------------------------------------
// The engine's BFS program against the graph-layer primitive.

TEST(EngineFrontier, BfsProgramMatchesBfsLevels) {
  const EdgeList el = gen::erdos_renyi(800, 6, 3);
  sim::run_world(4, [&](sim::Comm& comm) {
    const DistGraph g =
        build_graph(comm, el, VertexDist::random(el.n, 4, 3));
    std::vector<count_t> levels;
    const count_t ecc = graph::bfs_levels(comm, g, 1, levels);
    BfsProgram p;
    p.root = 1;
    engine::run(comm, g, p, env_cfg());
    EXPECT_EQ(p.ecc, ecc);
    for (lid_t v = 0; v < g.n_total(); ++v) {
      const count_t expect =
          levels[v] == graph::kUnreached ? kInfDist : levels[v];
      EXPECT_EQ(p.levels[v], expect);
    }
  });
}

// The batched multi-source stepper against N single-source runs: the
// per-slot level planes and eccentricities must be bit-identical, and
// the packed sweep must spend strictly fewer collectives (one
// emptiness vote + one exchange per packed level, shared by every
// source — the amortization the serving scheduler is built on).
TEST(EngineFrontier, MultiBfsMatchesPerSourceBfsWithFewerCollectives) {
  const EdgeList el = gen::erdos_renyi(800, 6, 3);
  const std::vector<gid_t> roots = {1, 97, 401, 640};
  sim::run_world(4, [&](sim::Comm& comm) {
    const DistGraph g = build_graph(comm, el, VertexDist::random(el.n, 4, 3));
    const count_t coll0 = comm.stats().collectives;
    MultiBfsProgram multi;
    multi.roots = roots;
    engine::run(comm, g, multi, env_cfg());
    const count_t multi_coll = comm.stats().collectives - coll0;
    ASSERT_EQ(multi.ecc.size(), roots.size());
    count_t single_coll = 0;
    for (std::size_t s = 0; s < roots.size(); ++s) {
      const count_t c0 = comm.stats().collectives;
      BfsProgram p;
      p.root = roots[s];
      engine::run(comm, g, p, env_cfg());
      single_coll += comm.stats().collectives - c0;
      EXPECT_EQ(multi.ecc[s], p.ecc);
      for (lid_t v = 0; v < g.n_total(); ++v)
        EXPECT_EQ(
            multi.levels[s * static_cast<std::size_t>(multi.stride) + v],
            p.levels[v]);
    }
    EXPECT_LT(multi_coll, single_coll);
  });
}

// ---------------------------------------------------------------------------
// Delta-capped SSSP against a serial Dijkstra oracle.

std::vector<count_t> dijkstra(const EdgeList& el, gid_t root,
                              std::uint64_t weight_seed,
                              count_t max_weight) {
  std::vector<std::vector<gid_t>> adj(el.n);
  for (const auto& e : el.edges) {
    if (e.u == e.v) continue;
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<count_t> dist(el.n, kInfDist);
  using Item = std::pair<count_t, gid_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[root] = 0;
  pq.push({0, root});
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (const gid_t u : adj[v]) {
      const count_t nd = d + edge_weight(v, u, weight_seed, max_weight);
      if (nd < dist[u]) {
        dist[u] = nd;
        pq.push({nd, u});
      }
    }
  }
  return dist;
}

class SsspRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, SsspRanks, ::testing::Values(1, 2, 4),
                         [](const auto& inf) {
                           return "nranks_" + std::to_string(inf.param);
                         });

TEST_P(SsspRanks, MatchesSerialDijkstraAcrossDeltas) {
  const int nranks = GetParam();
  const EdgeList el = gen::erdos_renyi(600, 5, 13);
  const gid_t root = 3;
  const std::uint64_t seed = 17;
  const count_t max_weight = 16;
  const std::vector<count_t> oracle = dijkstra(el, root, seed, max_weight);
  for (const count_t delta : {count_t{1}, count_t{8}, count_t{1 << 20}}) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const DistGraph g =
          build_graph(comm, el, VertexDist::random(el.n, nranks, 3));
      const SsspResult r = sssp(comm, g, root, delta, max_weight, seed);
      for (lid_t v = 0; v < g.n_local(); ++v)
        EXPECT_EQ(r.dist[v], oracle[g.gid_of(v)])
            << "gid " << g.gid_of(v) << " delta " << delta;
      EXPECT_GT(r.info.supersteps, 0);
    });
  }
}

TEST(Sssp, PathGraphExactDistances) {
  // 0-1-2-3-4 path: distances are the prefix sums of the edge weights.
  EdgeList el;
  el.n = 5;
  for (gid_t v = 0; v + 1 < 5; ++v) el.edges.push_back({v, v + 1});
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g = build_graph(comm, el, VertexDist::block(el.n, 2));
    const SsspResult r = sssp(comm, g, 0, /*delta=*/4);
    count_t expect = 0;
    for (gid_t v = 0; v < 5; ++v) {
      if (v > 0) expect += edge_weight(v - 1, v, 1, 16);
      const lid_t l = g.lid_of(v);
      if (l != kInvalidLid && g.is_owned(l)) {
        EXPECT_EQ(r.dist[l], expect);
      }
    }
    EXPECT_EQ(r.reached, 5);
  });
}

// A tighter delta only reorders the relaxations — results must be
// placement- and delta-invariant (asserted against the oracle above),
// and unreachable vertices stay at kInfDist.
TEST(Sssp, DisconnectedVerticesStayUnreached) {
  EdgeList el;
  el.n = 6;
  el.edges = {{0, 1}, {1, 2}};  // 3, 4, 5 isolated
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g = build_graph(comm, el, VertexDist::block(el.n, 2));
    const SsspResult r = sssp(comm, g, 0);
    EXPECT_EQ(r.reached, 3);
    for (lid_t v = 0; v < g.n_local(); ++v)
      if (g.gid_of(v) >= 3) {
        EXPECT_EQ(r.dist[v], kInfDist);
      }
  });
}

// ---------------------------------------------------------------------------
// Approximate triangle count against an exact serial count.

count_t serial_triangles(const EdgeList& el) {
  std::vector<std::vector<gid_t>> adj(el.n);
  for (const auto& e : el.edges) {
    if (e.u == e.v) continue;
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  count_t total = 0;
  for (gid_t v = 0; v < el.n; ++v)
    for (const gid_t a : adj[v])
      for (const gid_t b : adj[v]) {
        if (a >= b) continue;
        if (std::binary_search(adj[a].begin(), adj[a].end(), b)) ++total;
      }
  return total / 3;
}

class TriangleRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, TriangleRanks, ::testing::Values(1, 2, 4),
                         [](const auto& inf) {
                           return "nranks_" + std::to_string(inf.param);
                         });

TEST_P(TriangleRanks, ExactWhenUnderSampleCap) {
  const int nranks = GetParam();
  const EdgeList el = gen::community_graph(500, 8, 0.6, 2.3, 3);
  const count_t exact = serial_triangles(el);
  ASSERT_GT(exact, 0);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_graph(comm, el, VertexDist::random(el.n, nranks, 5));
    // Cap far above any wedge count: every query is staged, so the
    // estimate is the exact count.
    const TriangleResult r = triangle_count(comm, g, 1 << 20);
    EXPECT_EQ(r.sampled_centers, 0);
    EXPECT_DOUBLE_EQ(r.triangles, static_cast<double>(exact));
  });
}

TEST(Triangles, SampledEstimateTracksExactCount) {
  const EdgeList el = gen::community_graph(800, 12, 0.6, 2.3, 9);
  const count_t exact = serial_triangles(el);
  ASSERT_GT(exact, 0);
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g =
        build_graph(comm, el, VertexDist::random(el.n, 2, 3));
    const TriangleResult r = triangle_count(comm, g, /*sample_cap=*/64);
    EXPECT_GT(r.sampled_centers, 0);
    const double rel = r.triangles / static_cast<double>(exact);
    EXPECT_GT(rel, 0.5);
    EXPECT_LT(rel, 1.5);
  });
}

TEST(Triangles, TriangleFreeGraphCountsZero) {
  // Even cycle: no triangles.
  EdgeList el;
  el.n = 8;
  for (gid_t v = 0; v < 8; ++v) el.edges.push_back({v, (v + 1) % 8});
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g = build_graph(comm, el, VertexDist::block(el.n, 2));
    const TriangleResult r = triangle_count(comm, g);
    EXPECT_DOUBLE_EQ(r.triangles, 0.0);
  });
}

// ---------------------------------------------------------------------------
// Stats and Config plumbing.

TEST(EngineStats, LedgerAndJsonExport) {
  const EdgeList el = gen::erdos_renyi(500, 6, 3);
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g = build_graph(comm, el, VertexDist::block(el.n, 2));
    WccProgram p;
    const engine::Stats st = engine::run(comm, g, p, env_cfg());
    EXPECT_GT(st.supersteps, 0);
    EXPECT_GT(st.seconds, 0.0);
    EXPECT_GT(st.exchange.exchanges, 0);
    if (comm.size() > 1) {
      EXPECT_GT(st.comm_bytes, 0);
    }
    const std::string json = st.to_json();
    for (const char* key :
         {"\"seconds\"", "\"comm_bytes\"", "\"supersteps\"",
          "\"bytes_sent\"", "\"pipeline_carried\"", "\"seg_hits\"",
          "\"seg_misses\"", "\"seg_evictions\"", "\"seg_prefetch_hits\"",
          "\"seg_fetch_bytes\"", "\"seg_stall_seconds\""})
      EXPECT_NE(json.find(key), std::string::npos) << key;
  });
}

TEST(EngineConfig, FromParamsMapsEveryKnob) {
  core::Params params;
  params.shard_policy = comm::ShardPolicy::kHierarchical;
  params.backend = comm::Backend::kOneSided;
  params.max_exchange_bytes = 1 << 14;
  params.pipeline_depth = 2;
  params.coalesce_every = 3;
  params.cache_budget_bytes = 1 << 16;
  const engine::Config cfg = engine::Config::from_params(params);
  EXPECT_EQ(cfg.shard_policy, comm::ShardPolicy::kHierarchical);
  EXPECT_EQ(cfg.backend, comm::Backend::kOneSided);
  EXPECT_EQ(cfg.max_exchange_bytes, 1 << 14);
  EXPECT_EQ(cfg.pipeline_depth, 2);
  EXPECT_EQ(cfg.coalesce_every, 3);
  EXPECT_EQ(cfg.cache_budget_bytes, 1 << 16);
  EXPECT_EQ(cfg.tol, 0.0);
  EXPECT_EQ(cfg.max_supersteps, engine::Config::kUnbounded);
}

// Legacy zero-iteration contract: a cap of 0 runs no supersteps and
// returns the seed state (wrappers clamp negatives the same way).
TEST(EngineConfig, ZeroSuperstepCapRunsNone) {
  const EdgeList el = gen::erdos_renyi(200, 4, 3);
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g = build_graph(comm, el, VertexDist::block(el.n, 2));
    const PageRankResult pr = pagerank(comm, g, 0);
    EXPECT_EQ(pr.info.supersteps, 0);
    EXPECT_NEAR(pr.sum, 1.0, 1e-12);  // uniform seed ranks, mass intact
    const KCoreResult kc = kcore_approx(comm, g, -1);
    EXPECT_EQ(kc.info.supersteps, 0);
    for (lid_t v = 0; v < g.n_local(); ++v)
      EXPECT_EQ(kc.core[v], g.degree(v));  // degree upper bound untouched
  });
}

// ---------------------------------------------------------------------------
// MPI+X thread determinism. The intra-rank thread width is a pure
// throughput knob: every transport cell must produce byte-identical
// per-vertex results AND an identical wire ledger at threads = 1, 2, 8
// (8 exceeds this container's cores, so oversubscription is covered).

/// Every deterministic counter of the run's wire accounting (times
/// excluded), plus the superstep count.
std::vector<count_t> wire_ledger(const engine::Stats& st) {
  const comm::ExchangeStats& ex = st.exchange;
  return {st.comm_bytes,          st.supersteps,
          ex.exchanges,           ex.phases,
          ex.records_sent,        ex.bytes_sent,
          ex.inter_node_bytes,    ex.intra_node_bytes,
          ex.inter_node_msgs,     ex.coalesced_flushes,
          ex.overlapped,          ex.max_inflight_bytes,
          ex.drained_incrementally, ex.pipeline_carried,
          ex.max_pipeline_depth,    ex.one_sided_gets,
          ex.one_sided_bytes};
}

TEST(EngineThreads, PageRankBitIdenticalAcrossThreadCountsAndKnobs) {
  const EdgeList el = gen::erdos_renyi(1'000, 8, 11);
  for (const engine::Config& base : knob_matrix()) {
    // Coalescing needs a change-converging program; CommLP covers
    // those cells below.
    if (base.coalesce_every != 0) continue;
    std::vector<double> ref;
    std::vector<count_t> ref_wire;
    for (const int threads : {1, 2, 8}) {
      sim::run_world(
          4,
          [&](sim::Comm& comm) {
            const DistGraph g =
                build_graph(comm, el, VertexDist::random(el.n, 4, 3));
            PageRankProgram p;
            engine::Config cfg = base;
            cfg.max_supersteps = 12;
            cfg.num_threads = threads;
            const engine::Stats st = engine::run(comm, g, p, cfg);
            EXPECT_EQ(st.num_threads, threads) << cfg_name(base);
            const auto global = by_gid(comm, g, p.rank);
            auto wire = wire_ledger(st);
            comm.allreduce_max(wire);  // any rank drift fails the compare
            if (comm.rank() != 0) return;
            if (threads == 1) {
              ref = global;
              ref_wire = wire;
            } else {
              EXPECT_EQ(global, ref)
                  << cfg_name(base) << " threads=" << threads;
              EXPECT_EQ(wire, ref_wire)
                  << cfg_name(base) << " threads=" << threads;
            }
          },
          /*ranks_per_node=*/2);
    }
  }
}

TEST(EngineThreads, CommLpBitIdenticalAcrossThreadCountsAndKnobs) {
  const EdgeList el = gen::community_graph(1'000, 10, 0.7, 2.3, 5);
  for (const engine::Config& base : knob_matrix()) {
    std::vector<gid_t> ref;
    std::vector<count_t> ref_wire;
    for (const int threads : {1, 2, 8}) {
      sim::run_world(
          4,
          [&](sim::Comm& comm) {
            const DistGraph g =
                build_graph(comm, el, VertexDist::random(el.n, 4, 4));
            CommLpProgram p;
            engine::Config cfg = base;
            cfg.max_supersteps = 10;
            cfg.num_threads = threads;
            const engine::Stats st = engine::run(comm, g, p, cfg);
            const auto global = by_gid(comm, g, p.label);
            auto wire = wire_ledger(st);
            comm.allreduce_max(wire);
            if (comm.rank() != 0) return;
            if (threads == 1) {
              ref = global;
              ref_wire = wire;
            } else {
              EXPECT_EQ(global, ref)
                  << cfg_name(base) << " threads=" << threads;
              EXPECT_EQ(wire, ref_wire)
                  << cfg_name(base) << " threads=" << threads;
            }
          },
          /*ranks_per_node=*/2);
    }
  }
}

// The frontier engine's two-phase scan: SSSP results and wire ledger
// must not notice the thread width either.
TEST(EngineThreads, SsspBitIdenticalAcrossThreadCounts) {
  const EdgeList el = gen::erdos_renyi(800, 6, 13);
  std::vector<count_t> ref;
  std::vector<count_t> ref_wire;
  for (const int threads : {1, 2, 8}) {
    sim::run_world(4, [&](sim::Comm& comm) {
      const DistGraph g =
          build_graph(comm, el, VertexDist::random(el.n, 4, 3));
      DeltaSsspProgram p;
      p.root = 3;
      p.delta = 8;
      engine::Config cfg = env_cfg();
      cfg.num_threads = threads;
      const engine::Stats st = engine::run(comm, g, p, cfg);
      const auto global = by_gid(comm, g, p.dist);
      auto wire = wire_ledger(st);
      comm.allreduce_max(wire);
      if (comm.rank() != 0) return;
      if (threads == 1) {
        ref = global;
        ref_wire = wire;
      } else {
        EXPECT_EQ(global, ref) << "threads=" << threads;
        EXPECT_EQ(wire, ref_wire) << "threads=" << threads;
      }
    });
  }
}

// Triangle count stages its queries through the sharded emission layer
// (comm/sharded_buckets.hpp): the estimate and the query traffic must
// be slot-exact at any width.
TEST(EngineThreads, TriangleCountBitIdenticalAcrossThreadCounts) {
  const EdgeList el = gen::community_graph(800, 12, 0.6, 2.3, 9);
  double ref_triangles = 0.0;
  count_t ref_sampled = 0;
  std::vector<count_t> ref_wire;
  for (const int threads : {1, 2, 8}) {
    sim::run_world(2, [&](sim::Comm& comm) {
      const DistGraph g =
          build_graph(comm, el, VertexDist::random(el.n, 2, 3));
      TriangleCountProgram p;
      p.sample_cap = 64;
      engine::Config cfg = env_cfg();
      cfg.max_supersteps = 1;  // single staging superstep, as the wrapper
      cfg.num_threads = threads;
      const engine::Stats st = engine::run(comm, g, p, cfg);
      auto wire = wire_ledger(st);
      comm.allreduce_max(wire);
      if (comm.rank() != 0) return;
      if (threads == 1) {
        ref_triangles = p.triangles;
        ref_sampled = p.sampled_centers;
        ref_wire = wire;
      } else {
        EXPECT_EQ(p.triangles, ref_triangles) << "threads=" << threads;
        EXPECT_EQ(p.sampled_centers, ref_sampled) << "threads=" << threads;
        EXPECT_EQ(wire, ref_wire) << "threads=" << threads;
      }
    });
  }
}

// The engine's pipeline ledger lights up when a dense program runs at
// depth 1 (the WCC/commLP pipeline support the engine added).
TEST(EngineStats, PipelineCarryRecordedAtDepth1) {
  const EdgeList el = gen::erdos_renyi(800, 8, 5);
  sim::run_world(4, [&](sim::Comm& comm) {
    const DistGraph g =
        build_graph(comm, el, VertexDist::random(el.n, 4, 3));
    WccProgram p;
    engine::Config cfg = env_cfg();
    cfg.pipeline_depth = 1;
    const engine::Stats st = engine::run(comm, g, p, cfg);
    if (comm.size() > 1) {
      EXPECT_GT(st.exchange.pipeline_carried, 0);
    }
  });
}

// ISSUE acceptance: at pipeline_depth = 2 the ledger must observe two
// refreshes genuinely in flight (max_pipeline_depth == 2), under both
// backends. One-sided runs must also bill their pulls.
TEST(EngineStats, MaxPipelineDepthObservedAtDepth2) {
  const EdgeList el = gen::erdos_renyi(800, 8, 5);
  for (const comm::Backend backend :
       {comm::Backend::kTwoSided, comm::Backend::kOneSided}) {
    sim::run_world(
        4,
        [&](sim::Comm& comm) {
          const DistGraph g =
              build_graph(comm, el, VertexDist::random(el.n, 4, 3));
          WccProgram p;
          engine::Config cfg;
          cfg.pipeline_depth = 2;
          cfg.backend = backend;
          const engine::Stats st = engine::run(comm, g, p, cfg);
          EXPECT_GT(st.exchange.pipeline_carried, 0);
          EXPECT_EQ(st.exchange.max_pipeline_depth, 2);
          if (backend == comm::Backend::kOneSided) {
            EXPECT_GT(st.exchange.one_sided_gets, 0);
            EXPECT_GT(st.exchange.one_sided_bytes, 0);
          } else {
            EXPECT_EQ(st.exchange.one_sided_gets, 0);
          }
          const std::string json = st.to_json();
          EXPECT_NE(json.find("\"one_sided_gets\""), std::string::npos);
          EXPECT_NE(json.find("\"one_sided_bytes\""), std::string::npos);
        },
        /*ranks_per_node=*/2);
  }
}

}  // namespace
}  // namespace xtra::analytics
