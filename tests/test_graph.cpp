// Tests for the distributed graph layer: distributions, CSR build,
// ghosts, degrees, BFS, stats, and file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

#include "graph/bfs.hpp"
#include "graph/dist.hpp"
#include "graph/dist_graph.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "mpisim/comm.hpp"

namespace xtra::graph {
namespace {

/// Small fixed graph used throughout: a 6-cycle with one chord.
EdgeList six_cycle_with_chord() {
  EdgeList el;
  el.n = 6;
  el.directed = false;
  el.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}};
  return el;
}

EdgeList path_graph(gid_t n) {
  EdgeList el;
  el.n = n;
  el.directed = false;
  for (gid_t v = 0; v + 1 < n; ++v) el.edges.push_back({v, v + 1});
  return el;
}

// ---------------------------------------------------------------------------
// VertexDist

TEST(VertexDist, BlockCoversAllVerticesOnce) {
  for (int nranks : {1, 2, 3, 5, 7}) {
    const gid_t n = 23;
    const VertexDist d = VertexDist::block(n, nranks);
    std::vector<int> counts(static_cast<std::size_t>(nranks), 0);
    for (gid_t v = 0; v < n; ++v) {
      const int o = d.owner(v);
      ASSERT_GE(o, 0);
      ASSERT_LT(o, nranks);
      ++counts[static_cast<std::size_t>(o)];
    }
    // Block distribution: sizes differ by at most one and are
    // non-increasing in rank.
    for (int r = 0; r + 1 < nranks; ++r) {
      EXPECT_GE(counts[r], counts[r + 1]);
      EXPECT_LE(counts[r] - counts[r + 1], 1);
    }
  }
}

TEST(VertexDist, BlockIsContiguousAndMatchesRange) {
  const gid_t n = 17;
  const int nranks = 4;
  const VertexDist d = VertexDist::block(n, nranks);
  for (int r = 0; r < nranks; ++r) {
    const auto [lo, hi] = d.block_range(r);
    for (gid_t v = lo; v < hi; ++v) EXPECT_EQ(d.owner(v), r);
  }
  EXPECT_EQ(d.block_range(0).first, 0u);
  EXPECT_EQ(d.block_range(nranks - 1).second, n);
}

TEST(VertexDist, RandomIsDeterministicAndBalanced) {
  const gid_t n = 100000;
  const VertexDist d1 = VertexDist::random(n, 8, 3);
  const VertexDist d2 = VertexDist::random(n, 8, 3);
  std::vector<count_t> counts(8, 0);
  for (gid_t v = 0; v < n; ++v) {
    ASSERT_EQ(d1.owner(v), d2.owner(v));
    ++counts[static_cast<std::size_t>(d1.owner(v))];
  }
  for (const count_t c : counts) {
    EXPECT_GT(c, n / 8 * 0.95);
    EXPECT_LT(c, n / 8 * 1.05);
  }
}

TEST(VertexDist, ExplicitMapReturnsGivenOwners) {
  auto owners = std::make_shared<std::vector<int>>(
      std::vector<int>{2, 0, 1, 1, 2});
  const VertexDist d = VertexDist::explicit_map(5, 3, owners);
  EXPECT_EQ(d.owner(0), 2);
  EXPECT_EQ(d.owner(1), 0);
  EXPECT_EQ(d.owner(3), 1);
  EXPECT_EQ(d.owner(4), 2);
}

// ---------------------------------------------------------------------------
// EdgeList helpers

TEST(EdgeList, CanonicalizeDropsLoopsAndDupes) {
  EdgeList el;
  el.n = 4;
  el.edges = {{1, 0}, {0, 1}, {2, 2}, {3, 1}, {1, 3}};
  canonicalize(el);
  EXPECT_EQ(el.edges, (std::vector<Edge>{{0, 1}, {1, 3}}));
}

TEST(EdgeList, SymmetrizedMergesDirections) {
  EdgeList el;
  el.n = 3;
  el.directed = true;
  el.edges = {{0, 1}, {1, 0}, {2, 1}, {2, 2}};
  const EdgeList u = symmetrized(el);
  EXPECT_FALSE(u.directed);
  EXPECT_EQ(u.edges, (std::vector<Edge>{{0, 1}, {1, 2}}));
}

// ---------------------------------------------------------------------------
// DistGraph build

class DistGraphRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, DistGraphRanks, ::testing::Values(1, 2, 3, 4),
                         [](const auto& inf) {
                           return "nranks_" + std::to_string(inf.param);
                         });

TEST_P(DistGraphRanks, ShapeAndDegreesMatchSerial) {
  const int nranks = GetParam();
  const EdgeList el = six_cycle_with_chord();
  // Serial reference degrees.
  std::vector<count_t> ref_deg(el.n, 0);
  for (const Edge& e : el.edges) {
    ++ref_deg[e.u];
    ++ref_deg[e.v];
  }
  for (const auto kind : {VertexDist::Kind::kBlock, VertexDist::Kind::kRandom}) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const VertexDist dist = kind == VertexDist::Kind::kBlock
                                  ? VertexDist::block(el.n, nranks)
                                  : VertexDist::random(el.n, nranks);
      const DistGraph g = build_dist_graph(comm, el, dist);
      EXPECT_EQ(g.n_global(), el.n);
      EXPECT_EQ(g.m_global(), static_cast<count_t>(el.edges.size()));
      const count_t n_local_sum = comm.allreduce_sum(
          static_cast<count_t>(g.n_local()));
      EXPECT_EQ(n_local_sum, static_cast<count_t>(el.n));
      for (lid_t v = 0; v < g.n_local(); ++v) {
        EXPECT_EQ(g.degree(v), ref_deg[g.gid_of(v)]);
        EXPECT_EQ(g.out_degree(v), ref_deg[g.gid_of(v)]);
      }
      // Ghost degrees must equal the owner's.
      for (lid_t v = g.n_local(); v < g.n_total(); ++v)
        EXPECT_EQ(g.degree(v), ref_deg[g.gid_of(v)]);
    });
  }
}

TEST_P(DistGraphRanks, AdjacencyMatchesSerialNeighborSets) {
  const int nranks = GetParam();
  const EdgeList el = six_cycle_with_chord();
  std::map<gid_t, std::set<gid_t>> ref;
  for (const Edge& e : el.edges) {
    ref[e.u].insert(e.v);
    ref[e.v].insert(e.u);
  }
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 5));
    for (lid_t v = 0; v < g.n_local(); ++v) {
      std::set<gid_t> got;
      for (const lid_t u : g.neighbors(v)) got.insert(g.gid_of(u));
      EXPECT_EQ(got, ref[g.gid_of(v)]) << "vertex " << g.gid_of(v);
    }
  });
}

TEST_P(DistGraphRanks, GhostsAreExactlyRemoteNeighbors) {
  const int nranks = GetParam();
  const EdgeList el = six_cycle_with_chord();
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::block(el.n, nranks));
    std::set<gid_t> expected_ghosts;
    for (lid_t v = 0; v < g.n_local(); ++v)
      for (const lid_t u : g.neighbors(v))
        if (!g.is_owned(u)) expected_ghosts.insert(g.gid_of(u));
    std::set<gid_t> actual_ghosts;
    for (lid_t v = g.n_local(); v < g.n_total(); ++v) {
      actual_ghosts.insert(g.gid_of(v));
      EXPECT_NE(g.owner_of(v), comm.rank());
    }
    EXPECT_EQ(actual_ghosts, expected_ghosts);
  });
}

TEST_P(DistGraphRanks, LidGidRoundTrip) {
  const int nranks = GetParam();
  const EdgeList el = six_cycle_with_chord();
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 9));
    for (lid_t v = 0; v < g.n_total(); ++v)
      EXPECT_EQ(g.lid_of(g.gid_of(v)), v);
    // A gid not present locally must be reported absent; find one.
    for (gid_t missing = 0; missing < el.n; ++missing) {
      bool present = false;
      for (lid_t v = 0; v < g.n_total(); ++v)
        if (g.gid_of(v) == missing) present = true;
      if (!present) {
        EXPECT_EQ(g.lid_of(missing), kInvalidLid);
      }
    }
  });
}

TEST_P(DistGraphRanks, SelfLoopsDropped) {
  const int nranks = GetParam();
  EdgeList el;
  el.n = 4;
  el.edges = {{0, 0}, {0, 1}, {1, 1}, {2, 3}};
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::block(el.n, nranks));
    EXPECT_EQ(g.m_global(), 2);
  });
}

TEST_P(DistGraphRanks, DirectedBuildSeparatesInAndOut) {
  const int nranks = GetParam();
  EdgeList el;
  el.n = 4;
  el.directed = true;
  el.edges = {{0, 1}, {1, 2}, {2, 0}, {3, 0}};
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::block(el.n, nranks));
    EXPECT_TRUE(g.directed());
    EXPECT_EQ(g.m_global(), 4);
    for (lid_t v = 0; v < g.n_local(); ++v) {
      const gid_t gid = g.gid_of(v);
      std::set<gid_t> outs, ins;
      for (const lid_t u : g.neighbors(v)) outs.insert(g.gid_of(u));
      for (const lid_t u : g.in_neighbors(v)) ins.insert(g.gid_of(u));
      if (gid == 0) {
        EXPECT_EQ(outs, (std::set<gid_t>{1}));
        EXPECT_EQ(ins, (std::set<gid_t>{2, 3}));
        EXPECT_EQ(g.degree(v), 3);
      }
      if (gid == 3) {
        EXPECT_EQ(outs, (std::set<gid_t>{0}));
        EXPECT_TRUE(ins.empty());
      }
    }
  });
}

TEST(DistGraphEdge, MoreRanksThanVertices) {
  EdgeList el;
  el.n = 2;
  el.edges = {{0, 1}};
  sim::run_world(4, [&](sim::Comm& comm) {
    const DistGraph g = build_dist_graph(comm, el, VertexDist::block(2, 4));
    EXPECT_EQ(comm.allreduce_sum(static_cast<count_t>(g.n_local())), 2);
    EXPECT_EQ(g.m_global(), 1);
  });
}

TEST(DistGraphEdge, EmptyGraphNoEdges) {
  EdgeList el;
  el.n = 5;
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g = build_dist_graph(comm, el, VertexDist::block(5, 2));
    EXPECT_EQ(g.m_global(), 0);
    EXPECT_EQ(g.n_ghost(), 0u);
  });
}

// ---------------------------------------------------------------------------
// BFS and stats

TEST_P(DistGraphRanks, BfsLevelsOnPathGraph) {
  const int nranks = GetParam();
  const EdgeList el = path_graph(12);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 2));
    std::vector<count_t> levels;
    const count_t ecc = bfs_levels(comm, g, 0, levels);
    EXPECT_EQ(ecc, 11);
    for (lid_t v = 0; v < g.n_local(); ++v)
      EXPECT_EQ(levels[v], static_cast<count_t>(g.gid_of(v)));
  });
}

TEST_P(DistGraphRanks, BfsUnreachableStaysUnreached) {
  const int nranks = GetParam();
  EdgeList el;
  el.n = 5;
  el.edges = {{0, 1}, {1, 2}};  // 3, 4 disconnected
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::block(el.n, nranks));
    std::vector<count_t> levels;
    const count_t ecc = bfs_levels(comm, g, 0, levels);
    EXPECT_EQ(ecc, 2);
    for (lid_t v = 0; v < g.n_local(); ++v) {
      if (g.gid_of(v) >= 3) {
        EXPECT_EQ(levels[v], kUnreached);
      }
    }
  });
}

TEST_P(DistGraphRanks, DiameterOfPathIsExact) {
  const int nranks = GetParam();
  const EdgeList el = path_graph(20);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::block(el.n, nranks));
    // Iterated BFS converges to the true diameter on a path.
    EXPECT_EQ(estimate_diameter(comm, g, 4, 10), 19);
  });
}

TEST_P(DistGraphRanks, StatsMatchHandComputed) {
  const int nranks = GetParam();
  const EdgeList el = six_cycle_with_chord();
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 4));
    const GraphStats s = compute_stats(comm, g, 5);
    EXPECT_EQ(s.n, 6u);
    EXPECT_EQ(s.m, 7);
    EXPECT_EQ(s.max_degree, 3);  // vertices 0 and 3 have the chord
    EXPECT_NEAR(s.avg_degree, 14.0 / 6.0, 1e-12);
    EXPECT_GE(s.approx_diameter, 2);
    EXPECT_LE(s.approx_diameter, 3);
  });
}

// ---------------------------------------------------------------------------
// I/O

TEST(GraphIo, TextRoundTrip) {
  EdgeList el = six_cycle_with_chord();
  const std::string path = ::testing::TempDir() + "/xtra_el.txt";
  write_edge_list_text(path, el);
  const EdgeList back = read_edge_list_text(path);
  EXPECT_EQ(back.n, el.n);
  EXPECT_EQ(back.directed, el.directed);
  EXPECT_EQ(back.edges, el.edges);
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRoundTrip) {
  EdgeList el = six_cycle_with_chord();
  el.directed = true;
  const std::string path = ::testing::TempDir() + "/xtra_el.bin";
  write_edge_list_binary(path, el);
  const EdgeList back = read_edge_list_binary(path);
  EXPECT_EQ(back.n, el.n);
  EXPECT_TRUE(back.directed);
  EXPECT_EQ(back.edges, el.edges);
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_text("/nonexistent/xtra.txt"),
               std::runtime_error);
  EXPECT_THROW(read_edge_list_binary("/nonexistent/xtra.bin"),
               std::runtime_error);
}

TEST(GraphIo, CorruptHeaderThrows) {
  const std::string path = ::testing::TempDir() + "/xtra_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("garbage header\n", f);
  std::fclose(f);
  EXPECT_THROW(read_edge_list_text(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GraphIo, OutOfRangeVertexThrows) {
  const std::string path = ::testing::TempDir() + "/xtra_oor.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("n 3 undirected\n0 7\n", f);
  std::fclose(f);
  EXPECT_THROW(read_edge_list_text(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xtra::graph
