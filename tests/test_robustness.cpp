// Robustness and degenerate-input tests across the stack: extreme
// graphs (empty, star, complete, single vertex), boundary part counts,
// I/O fuzzing, and idempotence properties.
#include <gtest/gtest.h>

#include <cstdio>

#include "analytics/analytics.hpp"
#include "baseline/partitioners.hpp"
#include "core/xtrapulp.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "graph/io.hpp"
#include "metrics/quality.hpp"
#include "mpisim/comm.hpp"
#include "spmv/spmv.hpp"

namespace xtra {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::VertexDist;

EdgeList star(gid_t n) {
  EdgeList el;
  el.n = n;
  for (gid_t v = 1; v < n; ++v) el.edges.push_back({0, v});
  return el;
}

EdgeList complete(gid_t n) {
  EdgeList el;
  el.n = n;
  for (gid_t a = 0; a < n; ++a)
    for (gid_t b = a + 1; b < n; ++b) el.edges.push_back({a, b});
  return el;
}

// ---------------------------------------------------------------------------
// Partitioner on degenerate graphs

TEST(Degenerate, EdgelessGraphPartitions) {
  EdgeList el;
  el.n = 100;
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::block(el.n, 2));
    core::Params params;
    params.nparts = 4;
    const auto r = core::partition(comm, g, params);
    EXPECT_TRUE(core::check_partition_consistent(comm, g, r.parts, 4));
    const auto q = metrics::evaluate_dist(comm, g, r.parts, 4);
    EXPECT_EQ(q.cut, 0);
    EXPECT_LE(q.vertex_imbalance, 1.2);
  });
}

TEST(Degenerate, StarGraphKeepsHubConstraintsSane) {
  const EdgeList el = star(200);
  sim::run_world(3, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::random(el.n, 3, 5));
    core::Params params;
    params.nparts = 4;
    const auto r = core::partition(comm, g, params);
    EXPECT_TRUE(core::check_partition_consistent(comm, g, r.parts, 4));
    const auto q = metrics::evaluate_dist(comm, g, r.parts, 4);
    // Leaves see only the hub's part, so balance relies entirely on
    // the stall-escape path; allow extra slack on this degenerate
    // topology (no partition of a star is good anyway).
    EXPECT_LE(q.vertex_imbalance, 1.35);
  });
}

TEST(Degenerate, CompleteGraphAnyPartitionCutsEverything) {
  const EdgeList el = complete(24);
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::block(el.n, 2));
    core::Params params;
    params.nparts = 4;
    const auto r = core::partition(comm, g, params);
    const auto q = metrics::evaluate_dist(comm, g, r.parts, 4);
    // K24 into 4 balanced parts: internal = 4 * C(6,2) = 60 of 276.
    EXPECT_NEAR(q.edge_cut_ratio, 216.0 / 276.0, 0.08);
    EXPECT_LE(q.vertex_imbalance, 1.35);  // 7/6 with rounding
  });
}

TEST(Degenerate, NPartsEqualsN) {
  const EdgeList el = complete(8);
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::block(el.n, 2));
    core::Params params;
    params.nparts = 8;
    const auto r = core::partition(comm, g, params);
    EXPECT_TRUE(core::check_partition_consistent(comm, g, r.parts, 8));
  });
}

TEST(Degenerate, SingleVertexGraph) {
  EdgeList el;
  el.n = 1;
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(comm, el, VertexDist::block(1, 2));
    core::Params params;
    params.nparts = 1;
    const auto r = core::partition(comm, g, params);
    EXPECT_TRUE(core::check_partition_consistent(comm, g, r.parts, 1));
  });
}

TEST(Degenerate, SerialPartitionersOnStarAndComplete) {
  for (const EdgeList& el : {star(100), complete(20)}) {
    const baseline::SerialGraph g = baseline::build_serial_graph(el);
    for (const auto& parts :
         {baseline::pulp_partition(g, 4), baseline::multilevel_partition(g, 4),
          baseline::sclp_partition(g, 4)}) {
      const auto q = metrics::evaluate(el, parts, 4);
      EXPECT_LE(q.vertex_imbalance, 1.35);
    }
  }
}

// ---------------------------------------------------------------------------
// Analytics on degenerate graphs

TEST(DegenerateAnalytics, EdgelessGraph) {
  EdgeList el;
  el.n = 40;
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::block(el.n, 2));
    const auto pr = analytics::pagerank(comm, g, 5);
    EXPECT_NEAR(pr.sum, 1.0, 1e-9);  // dangling mass redistributed
    const auto cc = analytics::weakly_connected_components(comm, g);
    EXPECT_EQ(cc.num_components, 40);
    EXPECT_EQ(cc.largest_size, 1);
    const auto kc = analytics::kcore_approx(comm, g, 5);
    EXPECT_EQ(kc.max_core, 0);
    const auto scc = analytics::largest_scc(comm, g);
    EXPECT_LE(scc.scc_size, 1);
  });
}

TEST(DegenerateAnalytics, SelfLoopOnlyGraphActsEdgeless) {
  EdgeList el;
  el.n = 10;
  el.edges = {{3, 3}, {7, 7}};
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::block(el.n, 2));
    EXPECT_EQ(g.m_global(), 0);
    const auto cc = analytics::weakly_connected_components(comm, g);
    EXPECT_EQ(cc.num_components, 10);
  });
}

// ---------------------------------------------------------------------------
// I/O fuzzing

TEST(IoFuzz, TruncatedBinaryThrows) {
  const std::string path = ::testing::TempDir() + "/xtra_trunc.bin";
  EdgeList el = star(10);
  graph::write_edge_list_binary(path, el);
  // Truncate mid-payload.
  std::FILE* f = std::fopen(path.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(0, truncate(path.c_str(), size - 8));
  EXPECT_THROW(graph::read_edge_list_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IoFuzz, WrongMagicThrows) {
  const std::string path = ::testing::TempDir() + "/xtra_magic.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTMAGIC________________", f);
  std::fclose(f);
  EXPECT_THROW(graph::read_edge_list_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IoFuzz, BinaryOutOfRangeVertexThrows) {
  const std::string path = ::testing::TempDir() + "/xtra_oor.bin";
  EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}};
  graph::write_edge_list_binary(path, el);
  // Patch the edge target to an out-of-range id.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -8, SEEK_END);
  const std::uint64_t bogus = 99;
  std::fwrite(&bogus, sizeof(bogus), 1, f);
  std::fclose(f);
  EXPECT_THROW(graph::read_edge_list_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IoFuzz, EmptyEdgeListRoundTrips) {
  const std::string path = ::testing::TempDir() + "/xtra_empty.bin";
  EdgeList el;
  el.n = 7;
  graph::write_edge_list_binary(path, el);
  const EdgeList back = graph::read_edge_list_binary(path);
  EXPECT_EQ(back.n, 7u);
  EXPECT_TRUE(back.edges.empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Idempotence / determinism properties

TEST(Idempotence, SpmvRunTwiceSameChecksum) {
  const EdgeList el = gen::erdos_renyi(300, 6, 4);
  sim::run_world(2, [&](sim::Comm& comm) {
    const auto owners = spmv::owners_from_parts(
        baseline::random_partition(el.n, 2, 1));
    spmv::DistSpmv mv(comm, el, owners, spmv::Layout::kTwoD);
    const auto a = mv.run(comm, 5);
    const auto b = mv.run(comm, 5);
    EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.comm_bytes, b.comm_bytes);
  });
}

TEST(Idempotence, AnalyticsDeterministicAcrossRuns) {
  const EdgeList el = gen::community_graph(800, 8, 0.6, 2.3, 6);
  count_t first = -1;
  for (int run = 0; run < 2; ++run) {
    sim::run_world(3, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, VertexDist::random(el.n, 3, 2));
      const auto lp = analytics::label_propagation(comm, g, 8);
      if (comm.rank() == 0) {
        if (first < 0)
          first = lp.num_communities;
        else
          EXPECT_EQ(lp.num_communities, first);
      }
    });
  }
}

TEST(Idempotence, BaselinePartitionersDeterministic) {
  const EdgeList el = gen::rmat(10, 8, 3);
  const baseline::SerialGraph g = baseline::build_serial_graph(el);
  EXPECT_EQ(baseline::pulp_partition(g, 4), baseline::pulp_partition(g, 4));
  EXPECT_EQ(baseline::multilevel_partition(g, 4),
            baseline::multilevel_partition(g, 4));
  EXPECT_EQ(baseline::sclp_partition(g, 4), baseline::sclp_partition(g, 4));
}

}  // namespace
}  // namespace xtra
