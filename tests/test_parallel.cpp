// Unit tests for the deterministic chunked parallel-for layer: chunk
// layout invariance, chunk-ordered reduction, exception propagation,
// nested-call rejection, and per-rank pools under the simulated world.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "mpisim/comm.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace xtra {
namespace {

TEST(Parallel, ChunkLayoutIsThreadInvariant) {
  const count_t n = 10 * par::kChunkGrain + 137;
  std::vector<std::pair<count_t, count_t>> ref;
  for (const int t : {1, 2, 8}) {
    par::ThreadScope scope(t);
    std::vector<std::pair<count_t, count_t>> bounds(
        static_cast<std::size_t>(par::chunk_count(n)));
    par::for_chunks(n, [&](count_t c, count_t lo, count_t hi) {
      bounds[static_cast<std::size_t>(c)] = {lo, hi};
    });
    if (t == 1) {
      ref = bounds;
      // Chunks tile [0, n) in order with the fixed grain.
      count_t at = 0;
      for (const auto& [lo, hi] : bounds) {
        EXPECT_EQ(lo, at);
        EXPECT_GT(hi, lo);
        EXPECT_LE(hi - lo, par::kChunkGrain);
        at = hi;
      }
      EXPECT_EQ(at, n);
    } else {
      EXPECT_EQ(bounds, ref) << "thread count changed the chunk layout";
    }
  }
}

TEST(Parallel, PerChunkWritesAreDeterministic) {
  const count_t n = 5 * par::kChunkGrain + 77;
  std::vector<std::uint64_t> ref;
  for (const int t : {1, 2, 8}) {
    par::ThreadScope scope(t);
    std::vector<std::uint64_t> out(static_cast<std::size_t>(n), 0);
    par::for_chunks(n, [&](count_t c, count_t lo, count_t hi) {
      for (count_t i = lo; i < hi; ++i)
        out[static_cast<std::size_t>(i)] =
            splitmix64(static_cast<std::uint64_t>(i) ^
                       static_cast<std::uint64_t>(c));
    });
    if (t == 1)
      ref = out;
    else
      EXPECT_EQ(out, ref);
  }
}

TEST(Parallel, OrderedSumIsBitIdenticalAcrossThreadCounts) {
  const count_t n = 7 * par::kChunkGrain + 311;
  std::vector<double> vals(static_cast<std::size_t>(n));
  Rng rng(42);
  for (auto& v : vals) v = rng.next_double() * 2.0 - 1.0;

  double ref = 0.0;
  for (const int t : {1, 2, 8}) {
    par::ThreadScope scope(t);
    const double sum =
        par::ordered_sum(n, [&](count_t, count_t lo, count_t hi) {
          double s = 0.0;
          for (count_t i = lo; i < hi; ++i)
            s += vals[static_cast<std::size_t>(i)];
          return s;
        });
    if (t == 1) {
      ref = sum;
    } else {
      // Bit identity, not approximate equality: the chunk-ordered
      // reduction must not depend on who executed which chunk.
      EXPECT_EQ(sum, ref);
    }
  }
}

TEST(Parallel, ExceptionsPropagateToTheCaller) {
  for (const int t : {1, 8}) {
    par::ThreadScope scope(t);
    EXPECT_THROW(
        par::for_chunks(20 * par::kChunkGrain,
                        [&](count_t c, count_t, count_t) {
                          if (c == 13) throw std::runtime_error("chunk 13");
                        }),
        std::runtime_error);
    // The pool must be usable again after a failed region.
    std::atomic<count_t> ran{0};
    par::for_chunks(4 * par::kChunkGrain, [&](count_t, count_t, count_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 4);
  }
}

TEST(Parallel, NestedCallsAreRejected) {
  for (const int t : {1, 8}) {
    par::ThreadScope scope(t);
    EXPECT_THROW(par::for_chunks(8 * par::kChunkGrain,
                                 [&](count_t, count_t, count_t) {
                                   par::for_chunks(
                                       par::kChunkGrain,
                                       [](count_t, count_t, count_t) {});
                                 }),
                 std::logic_error);
  }
  EXPECT_FALSE(par::in_parallel_region());
}

TEST(Parallel, SlotsStayWithinTheConfiguredWidth) {
  par::ThreadScope scope(8);
  const count_t n = 64 * par::kChunkGrain;
  std::vector<int> slot_of_chunk(static_cast<std::size_t>(par::chunk_count(n)),
                                 -1);
  par::for_chunks(n, [&](count_t c, count_t, count_t) {
    slot_of_chunk[static_cast<std::size_t>(c)] = par::current_slot();
  });
  for (const int s : slot_of_chunk) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 8);
  }
  EXPECT_EQ(par::current_slot(), 0);
}

TEST(Parallel, ThreadScopeRestoresOnExit) {
  EXPECT_EQ(par::num_threads(), 1);
  {
    par::ThreadScope outer(4);
    EXPECT_EQ(par::num_threads(), 4);
    {
      par::ThreadScope inner(2);
      EXPECT_EQ(par::num_threads(), 2);
    }
    EXPECT_EQ(par::num_threads(), 4);
  }
  EXPECT_EQ(par::num_threads(), 1);
}

TEST(Parallel, EachSimulatedRankGetsItsOwnPool) {
  // Every rank runs a threaded region concurrently; per-rank results
  // must be independent and deterministic.
  sim::run_world(4, [](sim::Comm& comm) {
    par::ThreadScope scope(4);
    const count_t n = 6 * par::kChunkGrain + comm.rank();
    const double sum =
        par::ordered_sum(n, [&](count_t, count_t lo, count_t hi) {
          double s = 0.0;
          for (count_t i = lo; i < hi; ++i)
            s += std::sqrt(static_cast<double>(i + 1));
          return s;
        });
    par::ThreadScope serial(1);
    const double again =
        par::ordered_sum(n, [&](count_t, count_t lo, count_t hi) {
          double s = 0.0;
          for (count_t i = lo; i < hi; ++i)
            s += std::sqrt(static_cast<double>(i + 1));
          return s;
        });
    if (sum != again) throw std::runtime_error("rank-local nondeterminism");
    (void)comm.allreduce_sum(sum);  // collectives still rank-granular
  });
}

}  // namespace
}  // namespace xtra
