// Unit tests for the utility layer: RNG, hash map, prefix sums, log.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/flat_map.hpp"
#include "util/log.hpp"
#include "util/prefix_sum.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace xtra {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(7, 0), b(7, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> hist(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++hist[rng.next_below(kBuckets)];
  for (const int h : hist) {
    EXPECT_GT(h, kDraws / kBuckets * 0.9);
    EXPECT_LT(h, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.next_bool(0.3)) ++heads;
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(Splitmix, IsAPermutationStep) {
  // Distinct inputs must map to distinct outputs on a sample.
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10000; ++i) outs.insert(splitmix64(i));
  EXPECT_EQ(outs.size(), 10000u);
}

TEST(HashToBucket, InRangeAndBalanced) {
  constexpr std::uint64_t kBuckets = 8;
  std::vector<int> hist(kBuckets, 0);
  for (std::uint64_t k = 0; k < 80000; ++k) {
    const std::uint64_t b = hash_to_bucket(k, 17, kBuckets);
    ASSERT_LT(b, kBuckets);
    ++hist[b];
  }
  for (const int h : hist) {
    EXPECT_GT(h, 80000 / kBuckets * 0.9);
    EXPECT_LT(h, 80000 / kBuckets * 1.1);
  }
}

TEST(HashToBucket, SaltChangesAssignment) {
  int diff = 0;
  for (std::uint64_t k = 0; k < 1000; ++k)
    if (hash_to_bucket(k, 1, 16) != hash_to_bucket(k, 2, 16)) ++diff;
  EXPECT_GT(diff, 800);
}

TEST(FlatMap, InsertAndFind) {
  GidToLidMap m;
  EXPECT_TRUE(m.insert(42, 0));
  EXPECT_TRUE(m.insert(7, 1));
  EXPECT_EQ(m.find(42), 0u);
  EXPECT_EQ(m.find(7), 1u);
  EXPECT_EQ(m.find(8), kInvalidLid);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, DuplicateInsertRejected) {
  GidToLidMap m;
  EXPECT_TRUE(m.insert(5, 1));
  EXPECT_FALSE(m.insert(5, 2));
  EXPECT_EQ(m.find(5), 1u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, GrowsThroughRehash) {
  GidToLidMap m;
  constexpr std::uint64_t kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(m.insert(i * 2654435761ull, i));
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i)
    ASSERT_EQ(m.find(i * 2654435761ull), i);
  EXPECT_EQ(m.find(1), kInvalidLid);
}

TEST(FlatMap, ReserveAvoidsLaterGrowth) {
  GidToLidMap m;
  m.reserve(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_TRUE(m.insert(i, i));
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(m.find(i), i);
}

TEST(FlatMap, ClearEmpties) {
  GidToLidMap m;
  for (std::uint64_t i = 0; i < 100; ++i) m.insert(i, i);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), kInvalidLid);
  EXPECT_TRUE(m.insert(5, 9));
  EXPECT_EQ(m.find(5), 9u);
}

TEST(FlatMap, ZeroKeyWorks) {
  GidToLidMap m;
  EXPECT_TRUE(m.insert(0, 3));
  EXPECT_EQ(m.find(0), 3u);
}

TEST(PrefixSum, ExclusiveBasic) {
  std::vector<count_t> counts{3, 0, 2, 5};
  const auto offsets = exclusive_prefix_sum(counts);
  EXPECT_EQ(offsets, (std::vector<count_t>{0, 3, 3, 5, 10}));
}

TEST(PrefixSum, EmptyInput) {
  std::vector<count_t> counts;
  const auto offsets = exclusive_prefix_sum(counts);
  ASSERT_EQ(offsets.size(), 1u);
  EXPECT_EQ(offsets[0], 0);
}

TEST(PrefixSum, InplaceScanReturnsTotal) {
  std::vector<count_t> v{1, 2, 3};
  const count_t total = exclusive_scan_inplace(v);
  EXPECT_EQ(total, 6);
  EXPECT_EQ(v, (std::vector<count_t>{0, 1, 3}));
}

TEST(Timer, MeasuresNonNegativeMonotonicTime) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Log, ThresholdFilters) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  // Below threshold: must be a no-op (nothing observable to assert
  // beyond "does not crash").
  XTRA_LOG_INFO("dropped ", 42);
  set_log_threshold(before);
}

}  // namespace
}  // namespace xtra
