// Cross-validation of the distributed analytics against independent
// serial reference implementations (union-find, peeling, Tarjan-style
// SCC via Kosaraju, dijkstra-free BFS harmonic sums). The references
// are written from first principles so an error in the distributed
// code cannot be mirrored here.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <queue>
#include <set>

#include "analytics/analytics.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"

namespace xtra::analytics {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::VertexDist;

// ---------------------------------------------------------------------------
// Serial references

struct UnionFind {
  std::vector<gid_t> parent;
  explicit UnionFind(gid_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), gid_t{0});
  }
  gid_t find(gid_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(gid_t a, gid_t b) { parent[find(a)] = find(b); }
};

/// Exact coreness by iterative peeling.
std::vector<count_t> serial_coreness(const EdgeList& el) {
  std::vector<std::set<gid_t>> adj(el.n);
  for (const Edge& e : el.edges) {
    if (e.u == e.v) continue;
    adj[e.u].insert(e.v);
    adj[e.v].insert(e.u);
  }
  std::vector<count_t> core(el.n, 0);
  std::vector<bool> removed(el.n, false);
  for (count_t k = 0;; ++k) {
    bool all_removed = true;
    bool changed = true;
    while (changed) {
      changed = false;
      for (gid_t v = 0; v < el.n; ++v) {
        if (removed[v]) continue;
        if (static_cast<count_t>(adj[v].size()) <= k) {
          core[v] = k;
          removed[v] = true;
          changed = true;
          for (const gid_t u : adj[v]) adj[u].erase(v);
          adj[v].clear();
        }
      }
    }
    for (gid_t v = 0; v < el.n; ++v)
      if (!removed[v]) all_removed = false;
    if (all_removed) break;
  }
  return core;
}

/// Largest SCC size via Kosaraju's algorithm.
count_t serial_largest_scc(const EdgeList& el) {
  std::vector<std::vector<gid_t>> out(el.n), in(el.n);
  for (const Edge& e : el.edges) {
    if (e.u == e.v) continue;
    out[e.u].push_back(e.v);
    in[e.v].push_back(e.u);
  }
  std::vector<bool> seen(el.n, false);
  std::vector<gid_t> order;
  order.reserve(el.n);
  // Iterative post-order DFS on the forward graph.
  for (gid_t s = 0; s < el.n; ++s) {
    if (seen[s]) continue;
    std::vector<std::pair<gid_t, std::size_t>> stack{{s, 0}};
    seen[s] = true;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i < out[v].size()) {
        const gid_t u = out[v][i++];
        if (!seen[u]) {
          seen[u] = true;
          stack.push_back({u, 0});
        }
      } else {
        order.push_back(v);
        stack.pop_back();
      }
    }
  }
  // Reverse pass in decreasing post-order.
  std::vector<bool> assigned(el.n, false);
  count_t largest = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (assigned[*it]) continue;
    count_t size = 0;
    std::vector<gid_t> stack{*it};
    assigned[*it] = true;
    while (!stack.empty()) {
      const gid_t v = stack.back();
      stack.pop_back();
      ++size;
      for (const gid_t u : in[v])
        if (!assigned[u]) {
          assigned[u] = true;
          stack.push_back(u);
        }
    }
    largest = std::max(largest, size);
  }
  return largest;
}

/// Harmonic centrality of one source by plain BFS.
double serial_harmonic(const EdgeList& el, gid_t source) {
  std::vector<std::vector<gid_t>> adj(el.n);
  for (const Edge& e : el.edges) {
    if (e.u == e.v) continue;
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<count_t> dist(el.n, -1);
  std::queue<gid_t> q;
  q.push(source);
  dist[source] = 0;
  double hc = 0.0;
  while (!q.empty()) {
    const gid_t v = q.front();
    q.pop();
    if (dist[v] > 0) hc += 1.0 / static_cast<double>(dist[v]);
    for (const gid_t u : adj[v])
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
  }
  return hc;
}

// ---------------------------------------------------------------------------
// Cross-validation

class RefRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, RefRanks, ::testing::Values(1, 3),
                         [](const auto& inf) {
                           return "nranks_" + std::to_string(inf.param);
                         });

TEST_P(RefRanks, WccMatchesUnionFind) {
  const int nranks = GetParam();
  // Sparse ER below the connectivity threshold: many components.
  const EdgeList el = gen::erdos_renyi(2000, 2, 7);
  UnionFind uf(el.n);
  for (const Edge& e : el.edges) uf.unite(e.u, e.v);
  std::map<gid_t, count_t> sizes;
  for (gid_t v = 0; v < el.n; ++v) ++sizes[uf.find(v)];
  count_t ref_largest = 0;
  for (const auto& [root, size] : sizes)
    ref_largest = std::max(ref_largest, size);

  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::random(el.n, nranks, 3));
    const ComponentsResult r = weakly_connected_components(comm, g);
    EXPECT_EQ(r.num_components, static_cast<count_t>(sizes.size()));
    EXPECT_EQ(r.largest_size, ref_largest);
  });
}

TEST_P(RefRanks, KcoreMatchesPeeling) {
  const int nranks = GetParam();
  const EdgeList el = gen::community_graph(800, 8, 0.6, 2.3, 5);
  const std::vector<count_t> ref = serial_coreness(el);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::random(el.n, nranks, 5));
    // Enough rounds for full h-index convergence.
    const KCoreResult r = kcore_approx(comm, g, 200);
    for (lid_t v = 0; v < g.n_local(); ++v)
      EXPECT_EQ(r.core[v], ref[g.gid_of(v)]) << "gid " << g.gid_of(v);
  });
}

TEST_P(RefRanks, SccMatchesKosaraju) {
  const int nranks = GetParam();
  // Directed random graph dense enough for a giant SCC.
  EdgeList el;
  el.n = 600;
  el.directed = true;
  Rng rng(17);
  for (int e = 0; e < 2400; ++e)
    el.edges.push_back({rng.next_below(el.n), rng.next_below(el.n)});
  const count_t ref = serial_largest_scc(el);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::random(el.n, nranks, 9));
    const SccResult r = largest_scc(comm, g);
    // The distributed extractor targets the pivot's SCC; with a giant
    // SCC the max-degree pivot lies inside it.
    EXPECT_EQ(r.scc_size, ref);
  });
}

TEST_P(RefRanks, HarmonicMatchesBfsReference) {
  const int nranks = GetParam();
  const EdgeList el = gen::watts_strogatz(500, 6, 0.1, 3);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::block(el.n, nranks));
    const HarmonicResult r = harmonic_centrality(comm, g, 5, 21);
    for (std::size_t i = 0; i < r.sources.size(); ++i)
      EXPECT_NEAR(r.centrality[i], serial_harmonic(el, r.sources[i]), 1e-9);
  });
}

TEST_P(RefRanks, PageRankSumsToOneOnDisconnectedGraph) {
  // Dangling mass handling: isolated vertices + components.
  const int nranks = GetParam();
  EdgeList el;
  el.n = 50;
  el.edges = {{0, 1}, {1, 2}, {10, 11}};  // mostly isolated vertices
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, VertexDist::block(el.n, nranks));
    const PageRankResult pr = pagerank(comm, g, 30);
    EXPECT_NEAR(pr.sum, 1.0, 1e-9);
  });
}

TEST(SerialReferenceSanity, CorenessOfK4PlusTail) {
  EdgeList el;
  el.n = 6;
  el.edges = {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}};
  const auto core = serial_coreness(el);
  EXPECT_EQ(core, (std::vector<count_t>{3, 3, 3, 3, 1, 1}));
}

TEST(SerialReferenceSanity, KosarajuOnCycleWithTail) {
  EdgeList el;
  el.n = 5;
  el.directed = true;
  el.edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}};
  EXPECT_EQ(serial_largest_scc(el), 3);
}

}  // namespace
}  // namespace xtra::analytics
