// Tests for the XtraPuLP core: exchange protocol, initialization,
// balance/refinement phases, and the full partition pipeline's
// invariants (validity, ghost consistency, balance constraints,
// quality vs. random).
#include <gtest/gtest.h>

#include <numeric>

#include "core/exchange.hpp"
#include "core/init.hpp"
#include "core/state.hpp"
#include "core/xtrapulp.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "metrics/quality.hpp"
#include "mpisim/comm.hpp"

namespace xtra::core {
namespace {

using graph::DistGraph;
using graph::EdgeList;
using graph::VertexDist;

EdgeList two_triangles_bridge() {
  // 0-1-2 triangle, 3-4-5 triangle, bridge 2-3: the canonical
  // two-community graph. A good 2-way partition cuts exactly 1 edge.
  EdgeList el;
  el.n = 6;
  el.edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}};
  return el;
}

class CoreRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, CoreRanks, ::testing::Values(1, 2, 3, 4),
                         [](const auto& inf) {
                           return "nranks_" + std::to_string(inf.param);
                         });

// ---------------------------------------------------------------------------
// ExchangeUpdates (Algorithm 3)

TEST_P(CoreRanks, ExchangeUpdatesSyncsGhosts) {
  const int nranks = GetParam();
  const EdgeList el = two_triangles_bridge();
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 1));
    // Every owner labels its vertices with their gid; after one
    // exchange of all owned vertices every ghost label must match.
    std::vector<part_t> parts(g.n_total(), kNoPart);
    std::vector<lid_t> queue;
    for (lid_t v = 0; v < g.n_local(); ++v) {
      parts[v] = static_cast<part_t>(g.gid_of(v));
      queue.push_back(v);
    }
    exchange_updates(comm, g, parts, queue);
    for (lid_t v = g.n_local(); v < g.n_total(); ++v)
      EXPECT_EQ(parts[v], static_cast<part_t>(g.gid_of(v)));
  });
}

TEST_P(CoreRanks, ExchangeWithEmptyQueueIsANoOp) {
  const int nranks = GetParam();
  const EdgeList el = two_triangles_bridge();
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::block(el.n, nranks));
    std::vector<part_t> parts(g.n_total(), 3);
    exchange_updates(comm, g, parts, {});
    for (const part_t p : parts) EXPECT_EQ(p, 3);
  });
}

TEST_P(CoreRanks, ExchangeSendsOnlyChangedVertices) {
  const int nranks = GetParam();
  const EdgeList el = two_triangles_bridge();
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::block(el.n, nranks));
    std::vector<part_t> parts(g.n_total(), 0);
    // Change only vertex 2 (owned by exactly one rank).
    std::vector<lid_t> queue;
    const lid_t l2 = g.lid_of(2);
    if (l2 != kInvalidLid && g.is_owned(l2)) {
      parts[l2] = 1;
      queue.push_back(l2);
    }
    exchange_updates(comm, g, parts, queue);
    // Vertex 2's ghost copies see 1; everything else stays 0.
    for (lid_t v = g.n_local(); v < g.n_total(); ++v)
      EXPECT_EQ(parts[v], g.gid_of(v) == 2 ? 1 : 0);
  });
}

// ---------------------------------------------------------------------------
// Initialization (Algorithm 2)

TEST_P(CoreRanks, BfsInitAssignsEveryVertexAValidConsistentPart) {
  const int nranks = GetParam();
  const EdgeList el = gen::community_graph(2000, 8, 0.6, 2.3, 3);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 7));
    Params params;
    params.nparts = 5;
    const auto parts = init_bfs_growing(comm, g, params);
    EXPECT_TRUE(check_partition_consistent(comm, g, parts, params.nparts));
  });
}

TEST_P(CoreRanks, BfsInitCoversAllPartsOnConnectedGraph) {
  const int nranks = GetParam();
  const EdgeList el = gen::mesh2d(30, 30);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::block(el.n, nranks));
    Params params;
    params.nparts = 4;
    const auto parts = init_bfs_growing(comm, g, params);
    std::vector<count_t> sizes =
        compute_vertex_sizes(comm, g, parts, params.nparts);
    for (const count_t s : sizes) EXPECT_GT(s, 0);
  });
}

TEST_P(CoreRanks, RandomInitIsDistributionIndependent) {
  const int nranks = GetParam();
  const EdgeList el = two_triangles_bridge();
  // The same (gid, seed) must map to the same part regardless of rank
  // count or distribution — random init hashes the gid.
  std::vector<part_t> ref;
  sim::run_world(1, [&](sim::Comm& comm) {
    const DistGraph g = build_dist_graph(comm, el, VertexDist::block(el.n, 1));
    Params params;
    params.nparts = 3;
    ref = gather_global_parts(comm, g, init_random(comm, g, params));
  });
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 3));
    Params params;
    params.nparts = 3;
    const auto parts = init_random(comm, g, params);
    const auto global = gather_global_parts(comm, g, parts);
    EXPECT_EQ(global, ref);
  });
}

TEST_P(CoreRanks, BlockInitMakesContiguousParts) {
  const int nranks = GetParam();
  const EdgeList el = gen::mesh2d(16, 16);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::block(el.n, nranks));
    Params params;
    params.nparts = 4;
    const auto parts = init_block(comm, g, params);
    const auto global = gather_global_parts(comm, g, parts);
    // Non-decreasing part label over gids, all parts non-empty.
    for (gid_t v = 0; v + 1 < el.n; ++v) EXPECT_LE(global[v], global[v + 1]);
    EXPECT_EQ(global.front(), 0);
    EXPECT_EQ(global.back(), 3);
  });
}

// ---------------------------------------------------------------------------
// PhaseState helpers

TEST(PhaseState, MultiplierRampsFromYToX) {
  PhaseState st;
  st.nprocs = 8;
  st.x = 1.0;
  st.y = 0.25;
  st.i_tot = 10;
  st.iter_tot = 0;
  EXPECT_DOUBLE_EQ(st.mult(), 8 * 0.25);
  st.iter_tot = 10;
  EXPECT_DOUBLE_EQ(st.mult(), 8 * 1.0);
  st.iter_tot = 5;
  EXPECT_DOUBLE_EQ(st.mult(), 8 * 0.625);
}

TEST_P(CoreRanks, SizeComputationsMatchSerialCounts) {
  const int nranks = GetParam();
  const EdgeList el = two_triangles_bridge();
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 11));
    // Partition: {0,1,2} -> 0, {3,4,5} -> 1 (cut = bridge only).
    std::vector<part_t> parts(g.n_total());
    for (lid_t v = 0; v < g.n_total(); ++v)
      parts[v] = g.gid_of(v) <= 2 ? 0 : 1;
    const auto sv = compute_vertex_sizes(comm, g, parts, 2);
    EXPECT_EQ(sv, (std::vector<count_t>{3, 3}));
    const auto se = compute_edge_sizes(comm, g, parts, 2);
    EXPECT_EQ(se, (std::vector<count_t>{7, 7}));  // degree sums
    const auto sc = compute_cut_sizes(comm, g, parts, 2);
    EXPECT_EQ(sc, (std::vector<count_t>{1, 1}));  // one bridge, both sides
  });
}

TEST_P(CoreRanks, FoldChangesAggregatesAndResets) {
  const int nranks = GetParam();
  sim::run_world(nranks, [&](sim::Comm& comm) {
    PhaseState st;
    st.size_v = {10, 20};
    st.change_v = {1, -1};
    fold_changes(comm, st);
    EXPECT_EQ(st.size_v[0], 10 + nranks);
    EXPECT_EQ(st.size_v[1], 20 - nranks);
    EXPECT_EQ(st.change_v, (std::vector<count_t>{0, 0}));
  });
}

// ---------------------------------------------------------------------------
// Full pipeline

TEST_P(CoreRanks, PartitionIsValidConsistentAndBalanced) {
  const int nranks = GetParam();
  const EdgeList el = gen::community_graph(3000, 10, 0.55, 2.3, 5);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 13));
    Params params;
    params.nparts = 8;
    const PartitionResult r = partition(comm, g, params);
    EXPECT_TRUE(check_partition_consistent(comm, g, r.parts, params.nparts));
    const auto q = metrics::evaluate_dist(comm, g, r.parts, params.nparts);
    // Vertex balance within the 10% constraint (+ small slack for the
    // distributed estimate).
    EXPECT_LE(q.vertex_imbalance, 1.0 + params.vert_imbalance + 0.05);
    EXPECT_GT(q.edge_cut_ratio, 0.0);
    EXPECT_LT(q.edge_cut_ratio, 1.0);
  });
}

TEST_P(CoreRanks, PartitionBeatsRandomOnCommunityGraph) {
  const int nranks = GetParam();
  const EdgeList el = gen::community_graph(4000, 12, 0.7, 2.5, 9);
  sim::run_world(nranks, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, nranks, 17));
    Params params;
    params.nparts = 4;
    const PartitionResult r = partition(comm, g, params);
    const auto q = metrics::evaluate_dist(comm, g, r.parts, params.nparts);
    // Random 4-way partitioning cuts ~75% of edges; label propagation
    // on a strong community graph must do far better.
    EXPECT_LT(q.edge_cut_ratio, 0.5);
  });
}

TEST_P(CoreRanks, ResultIndependentOfVertexDistributionKind) {
  // Quality may differ across distributions but validity and balance
  // must hold for both.
  const int nranks = GetParam();
  const EdgeList el = gen::mesh2d(40, 40);
  for (const bool random_dist : {false, true}) {
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const VertexDist dist = random_dist
                                  ? VertexDist::random(el.n, nranks, 23)
                                  : VertexDist::block(el.n, nranks);
      const DistGraph g = build_dist_graph(comm, el, dist);
      Params params;
      params.nparts = 6;
      const PartitionResult r = partition(comm, g, params);
      EXPECT_TRUE(
          check_partition_consistent(comm, g, r.parts, params.nparts));
      const auto q = metrics::evaluate_dist(comm, g, r.parts, params.nparts);
      EXPECT_LE(q.vertex_imbalance, 1.2);
    });
  }
}

TEST(Partition, SingleRankSinglePartIsTrivial) {
  const EdgeList el = two_triangles_bridge();
  sim::run_world(1, [&](sim::Comm& comm) {
    const DistGraph g = build_dist_graph(comm, el, VertexDist::block(el.n, 1));
    Params params;
    params.nparts = 1;
    const PartitionResult r = partition(comm, g, params);
    for (const part_t p : r.parts) EXPECT_EQ(p, 0);
    const auto q = metrics::evaluate_dist(comm, g, r.parts, 1);
    EXPECT_EQ(q.cut, 0);
  });
}

TEST(Partition, EdgePhasesCanBeDisabled) {
  const EdgeList el = gen::community_graph(1500, 8, 0.6, 2.3, 2);
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, 2, 5));
    Params params;
    params.nparts = 4;
    params.edge_phases = false;
    const PartitionResult r = partition(comm, g, params);
    EXPECT_TRUE(check_partition_consistent(comm, g, r.parts, params.nparts));
    EXPECT_EQ(r.edge_stage_seconds, 0.0);
    EXPECT_GT(r.vert_stage_seconds, 0.0);
  });
}

TEST(Partition, AlternativeInitsWork) {
  const EdgeList el = gen::community_graph(1500, 8, 0.6, 2.3, 2);
  for (const InitStrategy init :
       {InitStrategy::kRandom, InitStrategy::kBlock}) {
    sim::run_world(2, [&](sim::Comm& comm) {
      const DistGraph g =
          build_dist_graph(comm, el, VertexDist::random(el.n, 2, 5));
      Params params;
      params.nparts = 4;
      params.init = init;
      const PartitionResult r = partition(comm, g, params);
      EXPECT_TRUE(
          check_partition_consistent(comm, g, r.parts, params.nparts));
    });
  }
}

TEST(Partition, AblationFlagsWork) {
  const EdgeList el = gen::community_graph(1500, 8, 0.6, 2.3, 2);
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, 2, 5));
    Params params;
    params.nparts = 4;
    params.degree_weighted_balance = false;
    params.init_random_among_assigned = false;
    const PartitionResult r = partition(comm, g, params);
    EXPECT_TRUE(check_partition_consistent(comm, g, r.parts, params.nparts));
  });
}

TEST(Partition, InvalidParamsThrow) {
  const EdgeList el = two_triangles_bridge();
  sim::run_world(1, [&](sim::Comm& comm) {
    const DistGraph g = build_dist_graph(comm, el, VertexDist::block(el.n, 1));
    Params params;
    params.nparts = 0;
    EXPECT_THROW(partition(comm, g, params), std::invalid_argument);
    params.nparts = 100;  // > n
    EXPECT_THROW(partition(comm, g, params), std::invalid_argument);
    params.nparts = 2;
    params.vert_imbalance = -0.5;
    EXPECT_THROW(partition(comm, g, params), std::invalid_argument);
    params.vert_imbalance = 0.1;
    params.outer_iters = 0;
    EXPECT_THROW(partition(comm, g, params), std::invalid_argument);
  });
}

TEST(Partition, DeterministicForFixedSeedAndRanks) {
  const EdgeList el = gen::community_graph(2000, 8, 0.6, 2.3, 4);
  std::vector<part_t> first, second;
  for (int trial = 0; trial < 2; ++trial) {
    sim::run_world(3, [&](sim::Comm& comm) {
      const DistGraph g =
          build_dist_graph(comm, el, VertexDist::random(el.n, 3, 2));
      Params params;
      params.nparts = 5;
      params.seed = 77;
      const PartitionResult r = partition(comm, g, params);
      const auto global = gather_global_parts(comm, g, r.parts);
      if (comm.rank() == 0) (trial == 0 ? first : second) = global;
    });
  }
  EXPECT_EQ(first, second);
}

TEST(Partition, TwoTrianglesFindsTheBridgeCut) {
  const EdgeList el = two_triangles_bridge();
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::block(el.n, 2));
    Params params;
    params.nparts = 2;
    params.seed = 3;
    const PartitionResult r = partition(comm, g, params);
    const auto q = metrics::evaluate_dist(comm, g, r.parts, 2);
    EXPECT_EQ(q.cut, 1);  // optimal: cut exactly the bridge
  });
}

TEST(Partition, ReportsTimingsAndCommBytes) {
  const EdgeList el = gen::community_graph(1500, 8, 0.6, 2.3, 2);
  sim::run_world(2, [&](sim::Comm& comm) {
    const DistGraph g =
        build_dist_graph(comm, el, VertexDist::random(el.n, 2, 5));
    Params params;
    params.nparts = 4;
    const PartitionResult r = partition(comm, g, params);
    EXPECT_GT(r.total_seconds, 0.0);
    EXPECT_GE(r.total_seconds,
              r.init_seconds + r.vert_stage_seconds + r.edge_stage_seconds -
                  1e-6);
    EXPECT_GT(r.comm_bytes, 0);
  });
}

// Property sweep: many (nparts, seed) combinations keep the invariants.
struct SweepCase {
  int nranks;
  part_t nparts;
  std::uint64_t seed;
};

class PartitionSweep : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, PartitionSweep,
    ::testing::Values(SweepCase{1, 2, 1}, SweepCase{2, 2, 2},
                      SweepCase{2, 7, 3}, SweepCase{3, 16, 4},
                      SweepCase{4, 3, 5}, SweepCase{4, 32, 6}),
    [](const auto& inf) {
      return "r" + std::to_string(inf.param.nranks) + "_p" +
             std::to_string(inf.param.nparts) + "_s" +
             std::to_string(inf.param.seed);
    });

TEST_P(PartitionSweep, InvariantsHold) {
  const auto c = GetParam();
  const EdgeList el = gen::community_graph(2500, 10, 0.6, 2.3, c.seed);
  sim::run_world(c.nranks, [&](sim::Comm& comm) {
    const DistGraph g = build_dist_graph(
        comm, el, VertexDist::random(el.n, c.nranks, c.seed));
    Params params;
    params.nparts = c.nparts;
    params.seed = c.seed;
    const PartitionResult r = partition(comm, g, params);
    EXPECT_TRUE(check_partition_consistent(comm, g, r.parts, c.nparts));
    const auto q = metrics::evaluate_dist(comm, g, r.parts, c.nparts);
    EXPECT_LE(q.vertex_imbalance, 1.0 + params.vert_imbalance + 0.10);
    EXPECT_GE(q.edge_cut_ratio, 0.0);
    EXPECT_LE(q.edge_cut_ratio, 1.0);
    EXPECT_LE(q.cut, q.edges);
    // Every part non-empty (p << n here).
    const auto sizes = compute_vertex_sizes(comm, g, r.parts, c.nparts);
    for (const count_t s : sizes) EXPECT_GT(s, 0);
  });
}

}  // namespace
}  // namespace xtra::core
