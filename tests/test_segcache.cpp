// Out-of-core segment cache (graph::SegmentCache, DESIGN.md §9):
// frame-pool mechanics at the unit level (undersized budgets, pinned
// borrows, zero-degree ranges, prefetch stall accounting), the
// DistGraph arcs()/in_arcs() surface against the in-core arrays for
// both backings, and the ISSUE acceptance matrix — Partition +
// PageRank + WCC bit-identical with an equal exchange wire ledger
// between in-core and a 4x-undersized cache, across the engine's
// transport knob matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "analytics/analytics.hpp"
#include "analytics/programs.hpp"
#include "core/xtrapulp.hpp"
#include "engine/engine.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "graph/segcache.hpp"
#include "mpisim/comm.hpp"

namespace xtra::graph {
namespace {

using analytics::CommLpProgram;
using analytics::PageRankProgram;
using analytics::WccProgram;

/// Per-rank adjacency working set in bytes (out + in regions), i.e.
/// exactly what enable_out_of_core moves into the backing.
count_t working_set_bytes(const DistGraph& g) {
  count_t entries = g.m_local();
  for (lid_t v = 0; v < g.n_local(); ++v)
    if (g.directed()) entries += g.in_degree(v);
  return entries * static_cast<count_t>(sizeof(lid_t));
}

std::vector<lid_t> to_vec(const NeighborRef& r) {
  return {r.begin(), r.end()};
}

/// Gather a per-vertex result into gid order on every rank's view.
template <typename T>
std::vector<T> by_gid(sim::Comm& comm, const DistGraph& g,
                      const std::vector<T>& vals) {
  std::vector<T> global(g.n_global(), T{});
  for (lid_t v = 0; v < g.n_local(); ++v) global[g.gid_of(v)] = vals[v];
  comm.allreduce_max(global);
  return global;
}

/// Every deterministic counter of the run's wire accounting. The
/// segment-cache ledger is deliberately excluded: OOC runs must leave
/// these exact fields untouched (seg fetch traffic is not exchange
/// traffic).
std::vector<count_t> wire_ledger(const engine::Stats& st) {
  const comm::ExchangeStats& ex = st.exchange;
  return {st.supersteps,          ex.exchanges,
          ex.phases,              ex.records_sent,
          ex.bytes_sent,          ex.inter_node_bytes,
          ex.intra_node_bytes,    ex.inter_node_msgs,
          ex.coalesced_flushes,   ex.overlapped,
          ex.max_inflight_bytes,  ex.drained_incrementally,
          ex.pipeline_carried,    ex.max_pipeline_depth,
          ex.one_sided_gets,      ex.one_sided_bytes};
}

// ---------------------------------------------------------------------------
// SegmentCache unit mechanics (kMmap; no world interaction needed
// beyond the run_world harness).

std::vector<lid_t> iota_entries(count_t n) {
  std::vector<lid_t> e(static_cast<std::size_t>(n));
  std::iota(e.begin(), e.end(), lid_t{1000});
  return e;
}

TEST(SegCache, BudgetSmallerThanOneSegmentStillServes) {
  sim::run_world(1, [&](sim::Comm& comm) {
    const count_t n = 1000;
    const std::vector<lid_t> src = iota_entries(n);
    SegCacheOptions opt;
    opt.segment_bytes = 1 << 12;  // 512 entries/segment
    opt.budget_bytes = 8;         // far below one segment
    SegmentCache cache(comm, std::vector<lid_t>(src), opt);
    EXPECT_EQ(cache.num_frames(), 1);
    EXPECT_EQ(cache.num_segments(), 2);
    // Single-segment, spanning, and whole-store borrows all come back
    // byte-exact through the one frame.
    for (const auto& [b, e] : {std::pair<count_t, count_t>{0, 10},
                              {500, 520},  // spans the segment boundary
                              {0, n},
                              {n - 3, n}}) {
      const NeighborRef r = cache.borrow(b, e);
      ASSERT_EQ(r.size(), static_cast<std::size_t>(e - b));
      for (count_t i = b; i < e; ++i)
        EXPECT_EQ(r[static_cast<std::size_t>(i - b)],
                  src[static_cast<std::size_t>(i)]);
    }
    EXPECT_GT(cache.stats().seg_misses, 0);
    EXPECT_EQ(cache.pinned_frames(), 0);  // all refs released
  });
}

TEST(SegCache, ZeroLengthBorrowTouchesNothing) {
  sim::run_world(1, [&](sim::Comm& comm) {
    SegCacheOptions opt;
    opt.budget_bytes = 1 << 20;
    SegmentCache cache(comm, iota_entries(100), opt);
    const SegCacheStats before = cache.stats();
    const NeighborRef r = cache.borrow(42, 42);
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(cache.stats().seg_hits, before.seg_hits);
    EXPECT_EQ(cache.stats().seg_misses, before.seg_misses);
    EXPECT_EQ(cache.stats().seg_fetch_bytes, before.seg_fetch_bytes);
  });
}

TEST(SegCache, BorrowedFrameIsNeverEvicted) {
  sim::run_world(1, [&](sim::Comm& comm) {
    const count_t n = 1024;  // two 512-entry segments
    const std::vector<lid_t> src = iota_entries(n);
    SegCacheOptions opt;
    opt.segment_bytes = 1 << 12;
    opt.budget_bytes = 1 << 12;  // exactly one frame
    opt.prefetch = false;
    SegmentCache cache(comm, std::vector<lid_t>(src), opt);
    ASSERT_EQ(cache.num_frames(), 1);

    // Pin segment 0 with a live borrow, then demand segment 1: the
    // cache must bounce (serve a copy) rather than evict the pinned
    // frame under the first ref's feet.
    const NeighborRef pinned = cache.borrow(0, 8);
    EXPECT_EQ(cache.pinned_frames(), 1);
    const count_t evictions_before = cache.stats().seg_evictions;
    const NeighborRef bounced = cache.borrow(512, 520);
    EXPECT_EQ(cache.stats().seg_evictions, evictions_before);
    EXPECT_TRUE(cache.resident(0));
    EXPECT_FALSE(cache.resident(1));
    // Both views stay correct.
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(pinned[i], src[i]);
      EXPECT_EQ(bounced[i], src[512 + i]);
    }
  });
}

TEST(SegCache, PlannedPrefetchConvertsStallIntoOverlap) {
  sim::run_world(1, [&](sim::Comm& comm) {
    const count_t n = 8 * 512;  // 8 segments
    double stall[2] = {0.0, 0.0};
    count_t prefetch_hits[2] = {0, 0};
    for (const bool prefetch : {false, true}) {
      SegCacheOptions opt;
      opt.segment_bytes = 1 << 12;
      opt.budget_bytes = 4 << 12;  // 4 frames: half the working set
      opt.prefetch = prefetch;
      SegmentCache cache(comm, iota_entries(n), opt);
      std::vector<count_t> plan(8);
      std::iota(plan.begin(), plan.end(), count_t{0});
      cache.set_plan(plan);
      for (count_t s = 0; s < 8; ++s) {
        const NeighborRef r = cache.borrow(s * 512, (s + 1) * 512);
        EXPECT_EQ(r.size(), 512u);
      }
      stall[prefetch] = cache.stats().seg_stall_seconds;
      prefetch_hits[prefetch] = cache.stats().seg_prefetch_hits;
      // Every entry crossed the backing at least once either way.
      EXPECT_GE(cache.stats().seg_fetch_bytes,
                n * static_cast<count_t>(sizeof(lid_t)));
    }
    EXPECT_EQ(prefetch_hits[0], 0);
    EXPECT_GT(prefetch_hits[1], 0);
    // The contract CI gates on: a landed plan strictly reduces the
    // modeled demand stall.
    EXPECT_LT(stall[1], stall[0]);
  });
}

TEST(SegCache, RemoteBackingRoundTripsAndClosesCleanly) {
  // 4 ranks, rank 0 hosts everyone's segments; each rank's slice must
  // come back byte-exact and the fetch-lane window must be unexposed
  // before the world ends (the comm verifier audits the lifecycle).
  sim::run_world(
      4,
      [&](sim::Comm& comm) {
        const count_t n = 300 + 100 * comm.rank();
        std::vector<lid_t> src(static_cast<std::size_t>(n));
        std::iota(src.begin(), src.end(),
                  static_cast<lid_t>(10000 * (comm.rank() + 1)));
        SegCacheOptions opt;
        opt.backing = SegBacking::kRemote;
        opt.host_rank = 0;
        opt.segment_bytes = 256;  // 32 entries: plenty of segments
        opt.budget_bytes = 512;   // 2 frames
        SegmentCache cache(comm, std::vector<lid_t>(src), opt);
        for (const auto& [b, e] : {std::pair<count_t, count_t>{0, 5},
                                  {40, 100},
                                  {n - 7, n}}) {
          const NeighborRef r = cache.borrow(b, e);
          ASSERT_EQ(r.size(), static_cast<std::size_t>(e - b));
          for (count_t i = b; i < e; ++i)
            EXPECT_EQ(r[static_cast<std::size_t>(i - b)],
                      src[static_cast<std::size_t>(i)]);
        }
        EXPECT_GT(cache.stats().seg_fetch_bytes, 0);
        cache.close(comm);
      },
      /*ranks_per_node=*/2);
}

// ---------------------------------------------------------------------------
// DistGraph surface: arcs()/in_arcs() against the in-core arrays.

TEST(SegCacheGraph, ArcsMatchInCoreAdjacencyBothBackings) {
  const EdgeList el = gen::community_graph(600, 8, 0.7, 2.3, 5);
  for (const SegBacking backing : {SegBacking::kMmap, SegBacking::kRemote}) {
    sim::run_world(
        4,
        [&](sim::Comm& comm) {
          DistGraph g = build_dist_graph(
              comm, el, VertexDist::random(el.n, 4, 3));
          std::vector<std::vector<lid_t>> expect(g.n_local());
          for (lid_t v = 0; v < g.n_local(); ++v) {
            const auto s = g.neighbors(v);
            expect[v] = {s.begin(), s.end()};
          }
          SegCacheOptions opt;
          opt.backing = backing;
          opt.segment_bytes = 1 << 9;
          opt.budget_bytes = working_set_bytes(g) / 4;
          g.enable_out_of_core(comm, opt);
          EXPECT_TRUE(g.out_of_core());
          for (lid_t v = 0; v < g.n_local(); ++v)
            EXPECT_EQ(to_vec(g.arcs(v)), expect[v]) << "lid " << v;
          EXPECT_GT(g.segcache_stats().seg_misses, 0);
          g.disable_out_of_core(comm);
          EXPECT_FALSE(g.out_of_core());
          // In-core arrays restored bit-exact.
          for (lid_t v = 0; v < g.n_local(); ++v) {
            const auto s = g.neighbors(v);
            EXPECT_EQ(std::vector<lid_t>(s.begin(), s.end()), expect[v]);
          }
        },
        /*ranks_per_node=*/2);
  }
}

TEST(SegCacheGraph, DirectedInArcsMatchAndZeroDegreeSafe) {
  // Webcrawl graphs are directed and leave plenty of vertices with
  // zero in- or out-degree, so the [adj | in_adj] concatenation's
  // segment boundaries get exercised by empty ranges on both sides.
  const EdgeList el = gen::webcrawl(800, 6, 7);
  sim::run_world(4, [&](sim::Comm& comm) {
    DistGraph g = build_dist_graph(
        comm, el, VertexDist::random(el.n, 4, 3));
    ASSERT_TRUE(g.directed());
    std::vector<std::vector<lid_t>> out(g.n_local()), in(g.n_local());
    count_t zero_deg = 0;
    for (lid_t v = 0; v < g.n_local(); ++v) {
      const auto so = g.neighbors(v);
      const auto si = g.in_neighbors(v);
      out[v] = {so.begin(), so.end()};
      in[v] = {si.begin(), si.end()};
      if (out[v].empty() || in[v].empty()) ++zero_deg;
    }
    EXPECT_GT(comm.allreduce_sum(zero_deg), 0);
    SegCacheOptions opt;
    opt.segment_bytes = 1 << 8;  // tiny segments: many boundaries
    opt.budget_bytes = working_set_bytes(g) / 4;
    g.enable_out_of_core(comm, opt);
    const SegCacheStats before = g.segcache_stats();
    for (lid_t v = 0; v < g.n_local(); ++v)
      if (out[v].empty()) {
        EXPECT_TRUE(g.arcs(v).empty());
      }
    // Zero-degree borrows are free: no fetches, no hits, no misses.
    EXPECT_EQ(g.segcache_stats().seg_fetch_bytes, before.seg_fetch_bytes);
    EXPECT_EQ(g.segcache_stats().seg_hits, before.seg_hits);
    for (lid_t v = 0; v < g.n_local(); ++v) {
      EXPECT_EQ(to_vec(g.arcs(v)), out[v]) << "out lid " << v;
      EXPECT_EQ(to_vec(g.in_arcs(v)), in[v]) << "in lid " << v;
    }
    g.disable_out_of_core(comm);
  });
}

// ---------------------------------------------------------------------------
// ISSUE acceptance: the analytics knob matrix, bit-identical between
// in-core and a 4x-undersized cache, with the exchange wire ledger
// untouched. WCC contracts to a unique fixpoint, so every transport
// cell must reproduce the in-core run bit for bit — and since seg
// fetches are not exchange traffic, each cell's wire ledger must be
// byte-equal too.

std::vector<engine::Config> knob_matrix() {
  std::vector<engine::Config> cfgs;
  for (const comm::ShardPolicy policy :
       {comm::ShardPolicy::kFlat, comm::ShardPolicy::kHierarchical})
    for (const comm::Backend backend :
         {comm::Backend::kTwoSided, comm::Backend::kOneSided}) {
      for (const int depth : {0, 1, 2}) {
        engine::Config cfg;
        cfg.shard_policy = policy;
        cfg.backend = backend;
        cfg.pipeline_depth = depth;
        cfgs.push_back(cfg);
      }
      for (const int coalesce : {1, 3}) {
        engine::Config cfg;
        cfg.shard_policy = policy;
        cfg.backend = backend;
        cfg.coalesce_every = coalesce;
        cfgs.push_back(cfg);
      }
    }
  return cfgs;
}

std::string cfg_name(const engine::Config& cfg) {
  return std::string(cfg.shard_policy == comm::ShardPolicy::kFlat ? "flat"
                                                                  : "hier") +
         (cfg.backend == comm::Backend::kOneSided ? "/1s" : "/2s") + "/d" +
         std::to_string(cfg.pipeline_depth) + "/c" +
         std::to_string(cfg.coalesce_every);
}

TEST(SegCacheMatrix, WccBitIdenticalAndWireLedgerEqualUnderPressure) {
  const EdgeList el = gen::community_graph(1'000, 10, 0.7, 2.3, 5);
  for (const SegBacking backing : {SegBacking::kMmap, SegBacking::kRemote}) {
    for (const engine::Config& cfg : knob_matrix()) {
      std::vector<gid_t> ref;
      std::vector<count_t> ref_wire;
      for (const bool ooc : {false, true}) {
        sim::run_world(
            4,
            [&](sim::Comm& comm) {
              DistGraph g = build_dist_graph(
                  comm, el, VertexDist::random(el.n, 4, 3));
              if (ooc) {
                SegCacheOptions opt;
                opt.backing = backing;
                opt.budget_bytes = working_set_bytes(g) / 4;
                g.enable_out_of_core(comm, opt);
              }
              WccProgram p;
              const engine::Stats st = engine::run(comm, g, p, cfg);
              const auto global = by_gid(comm, g, p.component);
              auto wire = wire_ledger(st);
              comm.allreduce_max(wire);
              if (ooc) {
                EXPECT_GT(st.exchange.seg_misses, 0) << cfg_name(cfg);
                g.disable_out_of_core(comm);
              } else {
                EXPECT_EQ(st.exchange.seg_misses, 0);
                EXPECT_EQ(st.exchange.seg_fetch_bytes, 0);
              }
              if (comm.rank() != 0) return;
              if (!ooc) {
                ref = global;
                ref_wire = wire;
              } else {
                EXPECT_EQ(global, ref)
                    << cfg_name(cfg) << (backing == SegBacking::kMmap
                                             ? " mmap"
                                             : " remote");
                EXPECT_EQ(wire, ref_wire)
                    << cfg_name(cfg) << (backing == SegBacking::kMmap
                                             ? " mmap"
                                             : " remote");
              }
            },
            /*ranks_per_node=*/2);
      }
    }
  }
}

// Partition + PageRank + WCC on one graph whose adjacency is >= 4x
// the cache budget: results bit-identical, engine wire ledger equal,
// and (mmap only — remote fetches are themselves wire traffic) the
// substrate byte total equal too.
TEST(SegCacheAcceptance, PartitionPageRankWccBitIdenticalBothBackings) {
  const EdgeList el = gen::community_graph(1'200, 12, 0.7, 2.3, 7);
  struct Reference {
    std::vector<part_t> parts;
    std::vector<double> rank;
    std::vector<gid_t> comp;
    std::vector<count_t> pr_wire, wcc_wire;
    count_t comm_bytes = -1;
  } ref;
  const auto run = [&](SegBacking backing, bool ooc) {
    sim::run_world(
        4,
        [&](sim::Comm& comm) {
          DistGraph g = build_dist_graph(
              comm, el, VertexDist::random(el.n, 4, 3));
          const count_t working = working_set_bytes(g);
          if (ooc) {
            SegCacheOptions opt;
            opt.backing = backing;
            opt.budget_bytes = working / 4;
            g.enable_out_of_core(comm, opt);
            ASSERT_GE(working,
                      4 * g.segcache()->num_frames() *
                          g.segcache()->entries_per_segment() *
                          static_cast<count_t>(sizeof(lid_t)));
          }
          const count_t bytes0 = comm.stats().bytes_sent;
          core::Params params;
          params.nparts = 8;
          const core::PartitionResult pr =
              core::partition(comm, g, params);
          PageRankProgram prog;
          engine::Config cfg;
          cfg.max_supersteps = 12;
          const engine::Stats pr_st = engine::run(comm, g, prog, cfg);
          WccProgram wcc;
          const engine::Stats wcc_st = engine::run(comm, g, wcc, cfg);
          // World total, not rank 0's: the host rank's own fetch-lane
          // pulls are self-target and therefore free.
          const count_t total_bytes =
              comm.allreduce_sum(comm.stats().bytes_sent - bytes0);

          const auto parts = by_gid(comm, g, pr.parts);
          const auto rank = by_gid(comm, g, prog.rank);
          const auto comp = by_gid(comm, g, wcc.component);
          auto pr_wire = wire_ledger(pr_st);
          auto wcc_wire = wire_ledger(wcc_st);
          comm.allreduce_max(pr_wire);
          comm.allreduce_max(wcc_wire);
          if (ooc) {
            EXPECT_GT(pr_st.exchange.seg_misses, 0);
            g.disable_out_of_core(comm);
          }
          if (comm.rank() != 0) return;
          if (!ooc) {
            ref.parts = parts;
            ref.rank = rank;
            ref.comp = comp;
            ref.pr_wire = pr_wire;
            ref.wcc_wire = wcc_wire;
            ref.comm_bytes = total_bytes;
            return;
          }
          const char* tag =
              backing == SegBacking::kMmap ? "mmap" : "remote";
          EXPECT_EQ(parts, ref.parts) << tag;
          EXPECT_EQ(rank, ref.rank) << tag;
          EXPECT_EQ(comp, ref.comp) << tag;
          EXPECT_EQ(pr_wire, ref.pr_wire) << tag;
          EXPECT_EQ(wcc_wire, ref.wcc_wire) << tag;
          if (backing == SegBacking::kMmap) {
            // Spill fetches never touch the substrate: the run's
            // total wire bytes are exactly the in-core run's.
            EXPECT_EQ(total_bytes, ref.comm_bytes);
          } else {
            EXPECT_GT(total_bytes, ref.comm_bytes);
          }
        },
        /*ranks_per_node=*/2);
  };
  run(SegBacking::kMmap, /*ooc=*/false);  // reference
  run(SegBacking::kMmap, /*ooc=*/true);
  run(SegBacking::kRemote, /*ooc=*/true);
}

// Frontier engine under pressure: the per-level plan is rebuilt from
// the frontier scan order; results and notify traffic must match the
// in-core run.
TEST(SegCacheFrontier, BfsBitIdenticalUnderPressure) {
  const EdgeList el = gen::erdos_renyi(800, 6, 3);
  std::vector<count_t> ref;
  std::vector<count_t> ref_wire;
  for (const bool ooc : {false, true}) {
    sim::run_world(4, [&](sim::Comm& comm) {
      DistGraph g = build_dist_graph(
          comm, el, VertexDist::random(el.n, 4, 3));
      if (ooc) {
        SegCacheOptions opt;
        opt.segment_bytes = 1 << 9;
        opt.budget_bytes = working_set_bytes(g) / 4;
        g.enable_out_of_core(comm, opt);
      }
      analytics::BfsProgram p;
      p.root = 1;
      const engine::Stats st = engine::run(comm, g, p, engine::Config{});
      auto levels = p.levels;
      levels.resize(g.n_local());  // owned only: ghosts differ by rank
      const auto global = by_gid(comm, g, levels);
      auto wire = wire_ledger(st);
      comm.allreduce_max(wire);
      if (ooc) g.disable_out_of_core(comm);
      if (comm.rank() != 0) return;
      if (!ooc) {
        ref = global;
        ref_wire = wire;
      } else {
        EXPECT_EQ(global, ref);
        EXPECT_EQ(wire, ref_wire);
      }
    });
  }
}

// Engine-level prefetch contract: same graph, same budget, same
// kernel — the prefetch-on run must land plan hits and stall strictly
// less than its prefetch-off twin (the invariant the comm baseline
// gate enforces on the bench rows).
TEST(SegCacheStats, EnginePrefetchStrictlyReducesStall) {
  const EdgeList el = gen::community_graph(1'000, 10, 0.7, 2.3, 5);
  double stall[2] = {0.0, 0.0};
  count_t hits[2] = {0, 0};
  for (const bool prefetch : {false, true}) {
    sim::run_world(
        4,
        [&](sim::Comm& comm) {
          DistGraph g = build_dist_graph(
              comm, el, VertexDist::random(el.n, 4, 3));
          SegCacheOptions opt;
          // Small segments so a quarter budget still holds several
          // frames — prefetch needs spare frames to run ahead into.
          opt.segment_bytes = 1 << 9;
          opt.budget_bytes = working_set_bytes(g) / 4;
          opt.prefetch = prefetch;
          g.enable_out_of_core(comm, opt);
          PageRankProgram p;
          engine::Config cfg;
          cfg.max_supersteps = 8;
          const engine::Stats st = engine::run(comm, g, p, cfg);
          double total_stall =
              comm.allreduce_sum(st.exchange.seg_stall_seconds);
          count_t total_hits =
              comm.allreduce_sum(st.exchange.seg_prefetch_hits);
          g.disable_out_of_core(comm);
          if (comm.rank() == 0) {
            stall[prefetch] = total_stall;
            hits[prefetch] = total_hits;
          }
        },
        /*ranks_per_node=*/2);
  }
  EXPECT_EQ(hits[0], 0);
  EXPECT_GT(hits[1], 0);
  EXPECT_LT(stall[1], stall[0]);
}

// The ledger reaches Stats::to_json with live values.
TEST(SegCacheStats, LedgerExportedInJson) {
  const EdgeList el = gen::erdos_renyi(500, 6, 3);
  sim::run_world(2, [&](sim::Comm& comm) {
    DistGraph g = build_dist_graph(
        comm, el, VertexDist::block(el.n, 2));
    SegCacheOptions opt;
    opt.budget_bytes = working_set_bytes(g) / 4;
    g.enable_out_of_core(comm, opt);
    WccProgram p;
    const engine::Stats st = engine::run(comm, g, p, engine::Config{});
    g.disable_out_of_core(comm);
    EXPECT_GT(st.exchange.seg_misses, 0);
    EXPECT_GT(st.exchange.seg_fetch_bytes, 0);
    EXPECT_GT(st.exchange.seg_stall_seconds, 0.0);
    const std::string json = st.to_json();
    EXPECT_EQ(json.find("\"seg_misses\": 0,"), std::string::npos);
    EXPECT_NE(json.find("\"seg_stall_seconds\""), std::string::npos);
  });
}

}  // namespace
}  // namespace xtra::graph
