// Frontier vertex-program driver: the one level-synchronous loop
// behind BFS-style traversals (harmonic centrality's sampled BFS,
// SCC's masked forward/backward reachability, delta-capped SSSP).
//
// A frontier program owns a frontier of active owned vertices; each
// superstep the engine expands it one level through
// graph::FrontierStepper — ghost relaxations staged and shipped as
// `Notify` records while the owned relaxations run mid-flight — and
// the program's hooks define what "relax" means. Every transport knob
// in engine::Config (shard policy, chunk size) applies to the
// notification exchange with no per-kernel plumbing.
//
// Program shape (see analytics/programs.hpp for the concrete three):
//
//   struct P {
//     using Notify = ...;            // trivially copyable wire record
//     void init(Ctx&);               // seed data + ctx.frontier
//     graph::NeighborRef nbrs(Ctx&, lid_t v);  // via g.arcs()/in_arcs()
//     bool improves(Ctx&, lid_t v, lid_t u);   // read-only edge test
//     bool relax(Ctx&, lid_t v, lid_t u);      // apply; true = improved
//     Notify make_notify(Ctx&, lid_t ghost);   // post-scan wire record
//     lid_t receive(Ctx&, const Notify&);      // on owner; kInvalidLid
//     void post_level(Ctx&);         // optional: runs after each level
//                                    //   (may rewrite ctx.next — the
//                                    //   delta-cap hook); collective-
//                                    //   safe (called on every rank)
//     void finish(Ctx&);             // optional epilogue
//   };
//
// The loop terminates when every rank's frontier is empty (one
// allreduce per level, exactly the PR-4 BFS contract) or at
// cfg.max_supersteps. During a level's hooks ctx.superstep is the
// level being expanded (root = level 0); it increments before
// post_level, so post_level sees the number of completed levels.
#pragma once

#include <utility>
#include <vector>

#include "engine/config.hpp"
#include "engine/stats.hpp"
#include "graph/dist_graph.hpp"
#include "graph/frontier.hpp"
#include "mpisim/comm.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace xtra::engine {

/// Everything a frontier program's hooks see. The engine swaps
/// `frontier` and `next` after post_level; programs seed `frontier`
/// in init() and may rewrite `next` in post_level() (defer vertices,
/// refill from a program-owned pool).
template <typename P>
struct FrontierContext {
  FrontierContext(sim::Comm& comm_, const graph::DistGraph& g_,
                  const Config& cfg_)
      : comm(comm_), g(g_), cfg(cfg_) {}

  sim::Comm& comm;
  const graph::DistGraph& g;
  const Config& cfg;

  std::vector<lid_t> frontier;
  std::vector<lid_t> next;
  count_t superstep = 0;  ///< levels completed; current level in hooks
};

/// Collective: execute a frontier vertex program until the frontier
/// empties on every rank (or the superstep cap) under cfg's transport
/// knobs. Result state lives in the program object; the return value
/// is the unified measurement.
template <typename P>
Stats run_frontier(sim::Comm& comm, const graph::DistGraph& g, P& p,
                   const Config& cfg) {
  Stats stats;
  // Ambient thread width for the stepper's parallel expansion scan.
  par::ThreadScope threads(cfg.num_threads);
  stats.num_threads = par::num_threads();
  const count_t start_bytes = comm.stats().bytes_sent;
  Timer timer;

  const graph::SegCacheStats seg_start = g.segcache_stats();
  FrontierContext<P> ctx{comm, g, cfg};
  graph::FrontierStepper<typename P::Notify> stepper(cfg.max_exchange_bytes,
                                                     cfg.shard_policy,
                                                     cfg.backend);
  p.init(ctx);

  std::vector<count_t> plan;  // out-of-core: per-level prefetch order
  const count_t limit = detail::superstep_limit(cfg);
  while (ctx.superstep < limit && comm.allreduce_or(!ctx.frontier.empty())) {
    if (g.out_of_core()) {
      // The stepper scans exactly the frontier, in order — that IS
      // the prefetch plan for this level.
      plan.clear();
      for (const lid_t v : ctx.frontier) g.append_arc_segments(v, plan);
      g.set_prefetch_plan(plan);
    }
    stepper.step(
        comm, g, ctx.frontier, ctx.next,
        [&](lid_t v) { return p.nbrs(ctx, v); },
        [&](lid_t v, lid_t u) { return p.improves(ctx, v, u); },
        [&](lid_t v, lid_t u) { return p.relax(ctx, v, u); },
        [&](lid_t l) { return p.make_notify(ctx, l); },
        [&](const typename P::Notify& n) { return p.receive(ctx, n); });
    ++ctx.superstep;
    if constexpr (requires { p.post_level(ctx); }) p.post_level(ctx);
    std::swap(ctx.frontier, ctx.next);
  }

  if constexpr (requires { p.finish(ctx); }) p.finish(ctx);

  stats.supersteps = ctx.superstep;
  merge(stats.exchange, stepper.exchanger().stats());
  detail::fold_segcache_delta(stats.exchange, seg_start, g.segcache_stats());
  stats.seconds = timer.seconds();
  stats.comm_bytes = comm.stats().bytes_sent - start_bytes;
  return stats;
}

/// Everything a multi-source frontier program's hooks see. Frontier
/// entries are (slot, owned lid) pairs; init() sets num_slots and
/// seeds one entry per slot whose source this rank owns. The engine
/// swaps `frontier` and `next` after post_level, exactly the
/// single-source loop.
template <typename P>
struct MultiFrontierContext {
  MultiFrontierContext(sim::Comm& comm_, const graph::DistGraph& g_,
                       const Config& cfg_)
      : comm(comm_), g(g_), cfg(cfg_) {}

  sim::Comm& comm;
  const graph::DistGraph& g;
  const Config& cfg;

  std::vector<graph::SlotVertex> frontier;
  std::vector<graph::SlotVertex> next;
  count_t num_slots = 0;  ///< slot ids are [0, num_slots); set by init()
  count_t superstep = 0;  ///< levels completed; current level in hooks
};

/// Collective: execute a batched multi-source frontier program — N
/// sources advance one level per superstep through a single
/// graph::MultiSourceStepper sweep and a single exchange — until every
/// slot's frontier empties on every rank (one termination allreduce
/// per level TOTAL, not per source; that amortization is the mode's
/// reason to exist). Per-slot results are bit-identical to N separate
/// run_frontier executions because slots never interact.
template <typename P>
Stats run_multi_frontier(sim::Comm& comm, const graph::DistGraph& g, P& p,
                         const Config& cfg) {
  Stats stats;
  par::ThreadScope threads(cfg.num_threads);
  stats.num_threads = par::num_threads();
  const count_t start_bytes = comm.stats().bytes_sent;
  Timer timer;

  const graph::SegCacheStats seg_start = g.segcache_stats();
  MultiFrontierContext<P> ctx{comm, g, cfg};
  graph::MultiSourceStepper<typename P::Notify> stepper(
      cfg.max_exchange_bytes, cfg.shard_policy, cfg.backend);
  p.init(ctx);

  std::vector<count_t> plan;           // out-of-core prefetch order
  std::vector<std::uint8_t> planned;   // dedup: slots share vertices
  const count_t limit = detail::superstep_limit(cfg);
  while (ctx.superstep < limit && comm.allreduce_or(!ctx.frontier.empty())) {
    if (g.out_of_core()) {
      // The sweep visits each distinct frontier vertex's segments once
      // per level no matter how many slots activate it — plan the
      // first occurrence only, in frontier order.
      plan.clear();
      planned.assign(static_cast<std::size_t>(g.n_local()), 0);
      for (const graph::SlotVertex& e : ctx.frontier)
        if (!planned[e.v]) {
          planned[e.v] = 1;
          g.append_arc_segments(e.v, plan);
        }
      g.set_prefetch_plan(plan);
    }
    stepper.step(
        comm, g, ctx.num_slots, ctx.frontier, ctx.next,
        [&](count_t s, lid_t v) { return p.nbrs(ctx, s, v); },
        [&](count_t s, lid_t v, lid_t u) { return p.improves(ctx, s, v, u); },
        [&](count_t s, lid_t v, lid_t u) { return p.relax(ctx, s, v, u); },
        [&](count_t s, lid_t l) { return p.make_notify(ctx, s, l); },
        [&](count_t s, const typename P::Notify& n) {
          return p.receive(ctx, s, n);
        });
    ++ctx.superstep;
    if constexpr (requires { p.post_level(ctx); }) p.post_level(ctx);
    std::swap(ctx.frontier, ctx.next);
  }

  if constexpr (requires { p.finish(ctx); }) p.finish(ctx);

  stats.supersteps = ctx.superstep;
  merge(stats.exchange, stepper.exchanger().stats());
  detail::fold_segcache_delta(stats.exchange, seg_start, g.segcache_stats());
  stats.seconds = timer.seconds();
  stats.comm_bytes = comm.stats().bytes_sent - start_bytes;
  return stats;
}

}  // namespace xtra::engine
