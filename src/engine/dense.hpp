// Dense vertex-program driver: the one superstep loop behind
// PageRank, WCC, community-LP, k-core, SCC's trim stage, and the
// query-style triangle counter.
//
// A dense program publishes one Value per vertex in ctx.values
// (size n_total); the engine owns everything the kernels used to
// hand-roll — the HaloPlan, the SuperstepPipeline, the coalesced
// sparse-update path, the convergence collectives, and the
// stale-ghost quiesce — so every transport knob in engine::Config
// applies to every program with no per-kernel plumbing.
//
// Program shape (see analytics/programs.hpp for the concrete eight):
//
//   struct P {
//     using Value = ...;                   // trivially copyable
//     // traits (all optional, shown with defaults):
//     static constexpr bool kUsesPrev = false;         // ctx.prev kept
//     static constexpr bool kConvergeOnChange = true;  // stop rule
//     static constexpr bool kExchangesValues = true;   // halo refresh
//     void init(Ctx&);                 // size/seed ctx.values
//     void update(Ctx&, lid_t v);      // compute values[v], owned v
//     void pre_superstep(Ctx&);        // optional, before the ship
//     void mid(Ctx&);                  // optional, rides the wire
//     void apply(Ctx&);                // optional, after the refresh
//     void finish(Ctx&);               // optional epilogue; may move
//   };                                 //   ctx.values out
//
// Superstep protocol (kExchangesValues, coalesce_every == 0):
//   pre_superstep -> update(v) boundary-first, values shipped through
//   the SuperstepPipeline (mid() runs against the in-flight wire;
//   interior updates overlap it) -> apply() -> convergence check.
// At pipeline depth >= 1 the refresh is carried into the next
// superstep per the SuperstepPipeline staleness contract; update(v)
// may then read ghosts up to one superstep stale, so only
// stale-tolerant programs (monotone or majority-style updates) may
// run at depth >= 1.
//
// Convergence:
//  * kConvergeOnChange (WCC/LP/KC/trim): stop when no rank's update
//    set ctx.changed — with an in-flight refresh (depth >= 1) or
//    pending coalesced rounds, the engine first flushes and re-checks
//    whether any ghost moved (the k-core quiesce, generalized).
//  * fixed-iteration (PageRank): run cfg.max_supersteps supersteps;
//    cfg.tol > 0 adds a residual allreduce and stops early when the
//    program-accumulated ctx.residual drops to tol.
//
// Coalesced mode (cfg.coalesce_every > 0, change-converging programs
// only): instead of a full halo refresh per superstep, the engine
// ships one {gid, Value} record per (destination, boundary vertex)
// slot whose value moved since it was last shipped, batched across
// supersteps in a comm::CoalescingExchanger (explicit-flush mode, so
// enqueue is purely local) and flushed on the superstep-indexed
// schedule plus at convergence — the commLP PR-4 path, generalized to
// any Value.
#pragma once

#include <array>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "comm/coalescing.hpp"
#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"
#include "engine/config.hpp"
#include "engine/stats.hpp"
#include "graph/dist_graph.hpp"
#include "graph/halo.hpp"
#include "mpisim/comm.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace xtra::engine {

namespace detail {

template <typename P>
constexpr bool uses_prev() {
  if constexpr (requires { P::kUsesPrev; })
    return P::kUsesPrev;
  else
    return false;
}

template <typename P>
constexpr bool converge_on_change() {
  if constexpr (requires { P::kConvergeOnChange; })
    return P::kConvergeOnChange;
  else
    return true;
}

template <typename P>
constexpr bool exchanges_values() {
  if constexpr (requires { P::kExchangesValues; })
    return P::kExchangesValues;
  else
    return true;
}

/// Programs whose update(ctx, v) is safe to run concurrently for
/// distinct v under cfg.num_threads > 1: update writes only v's own
/// slots (values[v], per-slot scratch via par::current_slot(),
/// ctx.note_changed()) and reads state no concurrent update writes
/// (ctx.prev, program-private snapshots, graph topology). Programs
/// with live cross-vertex reads (WCC's min-hook, SCC trim) must leave
/// this false — the engine then keeps their sweeps serial regardless
/// of cfg.num_threads.
template <typename P>
constexpr bool parallel_update() {
  if constexpr (requires { P::kParallelUpdate; })
    return P::kParallelUpdate;
  else
    return false;
}

}  // namespace detail

/// Sparse ghost update shipped by the coalesced refresh: the owner of
/// `gid` re-valued it. Receivers apply arrivals in order, so batched
/// rounds resolve to last-write-wins (the newest value).
template <typename V>
struct GhostUpdate {
  gid_t gid;
  V value;
};

/// Everything a dense program's hooks see. `values` is the published
/// per-vertex state (owned then ghosts); `prev` is the previous
/// superstep's snapshot when the program declares kUsesPrev (the read
/// side of synchronous updates). `changed`/`residual` are reset each
/// superstep; update()/apply() set them and the engine runs the
/// convergence collectives.
template <typename P>
struct DenseContext {
  using Value = typename P::Value;

  DenseContext(sim::Comm& comm_, const graph::DistGraph& g_,
               const Config& cfg_)
      : comm(comm_), g(g_), cfg(cfg_) {}

  sim::Comm& comm;
  const graph::DistGraph& g;
  const Config& cfg;

  std::vector<Value> values;
  std::vector<Value> prev;  ///< kUsesPrev programs only
  count_t superstep = 0;
  bool changed = false;
  double residual = 0.0;

  /// Race-free "something changed" signal for parallel update sweeps:
  /// each pool slot owns a padded flag; the engine folds them into
  /// `changed` after the sweep, in slot order. Serial hooks may keep
  /// setting ctx.changed directly — both routes feed the same
  /// convergence collective.
  void note_changed() {
    changed_slots_[static_cast<std::size_t>(
        par::current_slot())]  // lint-ok: per-slot scratch, folded in order
        .flag = 1;
  }
  void reset_changed() {
    changed = false;
    for (auto& s : changed_slots_) s.flag = 0;
  }
  void collect_changed() {
    for (const auto& s : changed_slots_)
      if (s.flag != 0) changed = true;
  }

  /// The run's halo plan (kExchangesValues programs only) — epilogue
  /// hooks may prefetch program-private vectors through it.
  graph::HaloPlan& halo() {
    XTRA_ASSERT_MSG(halo_ != nullptr,
                    "halo() requires a value-exchanging program");
    return *halo_;
  }

  /// Auxiliary wire engine configured with the run's knobs (shard
  /// policy + chunk size), lazily built — for census passes and
  /// query_reply round trips inside program hooks. Its ledger lands in
  /// the run's Stats.
  comm::Exchanger& aux() {
    if (!aux_) {
      aux_ = std::make_unique<comm::Exchanger>(cfg.max_exchange_bytes,
                                               cfg.shard_policy, cfg.backend);
    }
    return *aux_;
  }

  graph::HaloPlan* halo_ = nullptr;
  std::unique_ptr<comm::Exchanger> aux_;

  /// Chunked owned-vertex sweep for program hooks (apply/init loops):
  /// parallel on the rank's pool in-core, serial when the graph is
  /// out-of-core — segment borrows issue substrate calls (remote
  /// backing), which must stay on the rank thread. fn(v) must be safe
  /// for concurrent distinct v to use this (per-vertex writes only).
  template <typename Fn>
  void for_owned(Fn&& fn) const {
    if (!g.out_of_core()) {
      par::for_chunks(static_cast<count_t>(g.n_local()),
                      [&](count_t, count_t lo, count_t hi) {
                        for (count_t i = lo; i < hi; ++i)
                          fn(static_cast<lid_t>(i));
                      });
      return;
    }
    for (lid_t v = 0; v < g.n_local(); ++v) fn(v);
  }

  struct alignas(64) ChangedFlag {
    unsigned char flag = 0;
  };
  std::array<ChangedFlag, par::kMaxThreads> changed_slots_{};
};

namespace detail {

/// One full owned-vertex update sweep for the drivers without a halo
/// overlap structure (coalesced, local): chunked on the rank's pool
/// when the program declares kParallelUpdate, the plain lid loop
/// otherwise. Both orders are equivalent for parallel-safe programs
/// (per-vertex writes only), and at num_threads == 1 the chunked path
/// visits vertices in exactly the serial order.
template <typename P>
void update_sweep(const graph::DistGraph& g, P& p, DenseContext<P>& ctx) {
  if constexpr (parallel_update<P>()) {
    // Out-of-core sweeps stay serial even for parallel-safe programs:
    // segment borrows may issue substrate calls (remote backing), and
    // those must stay on the rank thread. Same visit order either way.
    if (!g.out_of_core()) {
      par::for_chunks(static_cast<count_t>(g.n_local()),
                      [&](count_t, count_t lo, count_t hi) {
                        for (count_t i = lo; i < hi; ++i)
                          p.update(ctx, static_cast<lid_t>(i));
                      });
      return;
    }
  }
  for (lid_t v = 0; v < g.n_local(); ++v) p.update(ctx, v);
}

/// Full-refresh superstep loop (the SuperstepPipeline path).
template <typename P>
void run_dense_pipelined(sim::Comm& comm, const graph::DistGraph& g, P& p,
                         const Config& cfg, DenseContext<P>& ctx) {
  using Value = typename P::Value;
  graph::HaloPlan& halo = *ctx.halo_;
  graph::SuperstepPipeline<Value> pipe(halo, cfg.pipeline_depth);

  // Start-of-superstep ghost snapshot for the stale-ghost quiesce of
  // programs without a prev array (ghosts only mutate inside a
  // superstep, so "end of previous" == "start of this one").
  std::vector<Value> ghost_seen;
  const bool need_ghost_seen =
      converge_on_change<P>() && !uses_prev<P>() && pipe.depth() > 0;
  const auto ghosts_moved = [&](const std::vector<Value>& seen,
                                std::size_t offset) {
    bool moved = false;
    for (lid_t v = g.n_local(); v < g.n_total(); ++v)
      if (ctx.values[v] != seen[static_cast<std::size_t>(v) - offset])
        moved = true;
    return moved;
  };
  if (need_ghost_seen)
    ghost_seen.assign(ctx.values.begin() + g.n_local(), ctx.values.end());

  const count_t limit = superstep_limit(cfg);
  for (count_t s = 0; s < limit; ++s) {
    if constexpr (requires { p.pre_superstep(ctx); }) p.pre_superstep(ctx);
    ctx.reset_changed();
    ctx.residual = 0.0;
    // Every superstep replays the boundary-first sweep, so the
    // prefetch plan rewinds with it (no-op in-core).
    g.restart_prefetch_plan();
    pipe.superstep(
        comm, ctx.values, [&](lid_t v) { p.update(ctx, v); },
        [&] {
          if constexpr (requires { p.mid(ctx); }) p.mid(ctx);
        },
        parallel_update<P>() && !g.out_of_core());
    if constexpr (requires { p.apply(ctx); }) p.apply(ctx);
    ctx.collect_changed();
    ++ctx.superstep;

    if constexpr (converge_on_change<P>()) {
      if (!comm.allreduce_or(ctx.changed)) {
        if (pipe.depth() == 0) break;
        // Stale-tolerant quiesce: deliver the in-flight refresh; if
        // any ghost moved since the superstep began, the fixpoint may
        // still be off somewhere.
        pipe.flush(comm, ctx.values);
        bool moved;
        if constexpr (uses_prev<P>()) {
          moved = ghosts_moved(ctx.prev, 0);
          ctx.prev = ctx.values;
        } else {
          moved = ghosts_moved(ghost_seen, static_cast<std::size_t>(
                                               g.n_local()));
          ghost_seen.assign(ctx.values.begin() + g.n_local(),
                            ctx.values.end());
        }
        if (!comm.allreduce_or(moved)) break;
        continue;
      }
      if constexpr (uses_prev<P>()) ctx.prev = ctx.values;
      if (need_ghost_seen)
        ghost_seen.assign(ctx.values.begin() + g.n_local(),
                          ctx.values.end());
    } else {
      if (cfg.tol > 0.0 && comm.allreduce_sum(ctx.residual) <= cfg.tol)
        break;
    }
  }
  // Ghosts converge to the owners' last-shipped values (no-op at
  // depth 0).
  pipe.flush(comm, ctx.values);
}

/// Coalesced sparse-refresh superstep loop (change-converging
/// programs): boundary values that moved since last shipped travel as
/// {gid, Value} records batched across supersteps.
template <typename P>
void run_dense_coalesced(sim::Comm& comm, const graph::DistGraph& g, P& p,
                         const Config& cfg, DenseContext<P>& ctx,
                         Stats& stats) {
  using Value = typename P::Value;
  using Update = GhostUpdate<Value>;
  static_assert(converge_on_change<P>(),
                "the coalesced refresh requires a change-converging "
                "program (deferred deliveries need a quiesce)");
  graph::HaloPlan& halo = *ctx.halo_;
  comm::CoalescingExchanger co(0, cfg.max_exchange_bytes, cfg.shard_policy,
                               cfg.backend);
  const std::vector<count_t>& scounts = halo.send_counts();
  const std::vector<lid_t>& slids = halo.send_lids();
  // Last value shipped per (destination, owned lid) slot. The
  // registration exchange ships no values, so the coalesced path
  // requires init() to seed ghost entries consistently with their
  // owners from locally known state (gids, degrees, constants) —
  // every program does, hence nothing is owed initially.
  std::vector<Value> shipped(slids.size());
  for (std::size_t i = 0; i < slids.size(); ++i)
    shipped[i] = ctx.values[slids[i]];
  comm::DestBuckets<Update> buckets;
  const auto deliver = [&](std::span<const Update> arrivals) {
    bool moved = false;
    for (const Update& u : arrivals) {
      const lid_t l = g.lid_of(u.gid);
      XTRA_ASSERT_MSG(l != kInvalidLid,
                      "coalesced update for an unknown ghost");
      if (ctx.values[l] != u.value) {
        ctx.values[l] = u.value;
        moved = true;
      }
    }
    return moved;
  };

  const count_t limit = superstep_limit(cfg);
  for (count_t s = 0; s < limit; ++s) {
    if constexpr (requires { p.pre_superstep(ctx); }) p.pre_superstep(ctx);
    ctx.reset_changed();
    ctx.residual = 0.0;
    g.restart_prefetch_plan();
    update_sweep(g, p, ctx);
    if constexpr (requires { p.apply(ctx); }) p.apply(ctx);
    ctx.collect_changed();
    // Stage one record per (destination, vertex) slot whose value
    // moved since it was last shipped.
    buckets.begin(comm.size());
    std::size_t slot = 0;
    for (int d = 0; d < comm.size(); ++d)
      for (count_t k = 0; k < scounts[static_cast<std::size_t>(d)];
           ++k, ++slot)
        if (ctx.values[slids[slot]] != shipped[slot]) buckets.count(d);
    buckets.commit();
    slot = 0;
    for (int d = 0; d < comm.size(); ++d)
      for (count_t k = 0; k < scounts[static_cast<std::size_t>(d)];
           ++k, ++slot) {
        const lid_t l = slids[slot];
        if (ctx.values[l] != shipped[slot]) {
          buckets.push(d, Update{g.gid_of(l), ctx.values[l]});
          shipped[slot] = ctx.values[l];
        }
      }
    (void)co.enqueue(comm, buckets);  // local: explicit-flush mode
    ++ctx.superstep;
    bool moved = false;
    if ((s + 1) % cfg.coalesce_every == 0)
      moved = deliver(co.flush<Update>(comm));
    if constexpr (uses_prev<P>()) ctx.prev = ctx.values;
    if (!comm.allreduce_or(ctx.changed)) {
      // Quiesce under staleness: deliver the stragglers; if any ghost
      // moved anywhere, the fixpoint may still be off somewhere.
      moved = deliver(co.flush<Update>(comm)) || moved;
      if constexpr (uses_prev<P>()) ctx.prev = ctx.values;
      if (!comm.allreduce_or(moved)) break;
    }
  }
  // Superstep budget exhausted mid-batch: deliver what is still
  // pending so ghosts match their owners' last state. pending_rounds
  // advances identically on every rank, so the branch is collective.
  if (co.pending_rounds() > 0) (void)deliver(co.flush<Update>(comm));
  merge(stats.exchange, co.stats());
}

/// Local-only superstep loop for programs that publish no per-vertex
/// values on the wire (kExchangesValues == false; e.g. the query-based
/// triangle counter, whose traffic rides ctx.aux()).
template <typename P>
void run_dense_local(sim::Comm& comm, const graph::DistGraph& g, P& p,
                     const Config& cfg, DenseContext<P>& ctx) {
  const count_t limit = superstep_limit(cfg);
  for (count_t s = 0; s < limit; ++s) {
    if constexpr (requires { p.pre_superstep(ctx); }) p.pre_superstep(ctx);
    ctx.reset_changed();
    ctx.residual = 0.0;
    g.restart_prefetch_plan();
    update_sweep(g, p, ctx);
    if constexpr (requires { p.apply(ctx); }) p.apply(ctx);
    ctx.collect_changed();
    ++ctx.superstep;
    if constexpr (converge_on_change<P>()) {
      if (!comm.allreduce_or(ctx.changed)) break;
    } else {
      if (cfg.tol > 0.0 && comm.allreduce_sum(ctx.residual) <= cfg.tol)
        break;
    }
  }
}

/// Prefetch plan for the dense drivers' sweep order: boundary lids in
/// the halo's ship order first, then the interior ascending — exactly
/// the order overlapped_superstep visits vertices. The plan is
/// advisory (bounded look-ahead), so programs that also walk in-arcs
/// or skip vertices degrade to the cache's sequential fallback rather
/// than derailing.
inline void install_dense_prefetch_plan(const graph::DistGraph& g,
                                        const graph::HaloPlan* halo) {
  if (!g.out_of_core()) return;
  std::vector<count_t> plan;
  if (halo != nullptr) {
    for (const lid_t v : halo->boundary_lids())
      g.append_arc_segments(v, plan);
    for (lid_t v = 0; v < g.n_local(); ++v)
      if (!halo->is_boundary(v)) g.append_arc_segments(v, plan);
  } else {
    for (lid_t v = 0; v < g.n_local(); ++v) g.append_arc_segments(v, plan);
  }
  g.set_prefetch_plan(std::move(plan));
}

}  // namespace detail

/// Collective: execute a dense vertex program to convergence (or the
/// superstep cap) under cfg's transport knobs. The program's result
/// state lives in the program object (finish() may move ctx.values
/// out); the return value is the unified measurement.
template <typename P>
Stats run_dense(sim::Comm& comm, const graph::DistGraph& g, P& p,
                const Config& cfg) {
  Stats stats;
  // Ambient thread width for every chunked sweep the run issues
  // (engine sweeps, program hooks via par::for_chunks/ordered_sum).
  par::ThreadScope threads(cfg.num_threads);
  stats.num_threads = par::num_threads();
  const count_t start_bytes = comm.stats().bytes_sent;
  const graph::SegCacheStats seg_start = g.segcache_stats();
  Timer timer;

  DenseContext<P> ctx{comm, g, cfg};
  std::unique_ptr<graph::HaloPlan> halo;
  if constexpr (detail::exchanges_values<P>()) {
    halo = std::make_unique<graph::HaloPlan>(comm, g, cfg.shard_policy,
                                             cfg.backend);
    halo->set_max_send_bytes(cfg.max_exchange_bytes);
    ctx.halo_ = halo.get();
  }
  detail::install_dense_prefetch_plan(g, halo.get());
  p.init(ctx);
  XTRA_ASSERT_MSG(ctx.values.size() ==
                      static_cast<std::size_t>(g.n_total()),
                  "init() must size ctx.values to n_total");
  if constexpr (detail::uses_prev<P>()) ctx.prev = ctx.values;
  XTRA_ASSERT_MSG(detail::converge_on_change<P>() ||
                      cfg.max_supersteps >= 0,
                  "fixed-iteration programs need cfg.max_supersteps");

  if constexpr (!detail::exchanges_values<P>()) {
    detail::run_dense_local(comm, g, p, cfg, ctx);
  } else if (cfg.coalesce_every > 0) {
    if constexpr (detail::converge_on_change<P>())
      detail::run_dense_coalesced(comm, g, p, cfg, ctx, stats);
    else
      XTRA_ASSERT_MSG(false,
                      "coalesce_every > 0 requires a change-converging "
                      "program");
  } else {
    detail::run_dense_pipelined(comm, g, p, cfg, ctx);
  }

  if constexpr (requires { p.finish(ctx); }) p.finish(ctx);

  stats.supersteps = ctx.superstep;
  if (halo) merge(stats.exchange, halo->stats());
  if (ctx.aux_) merge(stats.exchange, ctx.aux_->stats());
  detail::fold_segcache_delta(stats.exchange, seg_start, g.segcache_stats());
  stats.seconds = timer.seconds();
  stats.comm_bytes = comm.stats().bytes_sent - start_bytes;
  return stats;
}

}  // namespace xtra::engine
