// engine::Config — the one knob bag every vertex program runs under.
//
// PRs 2-4 grew the comm substrate a transport strategy at a time
// (memory-bounded phasing, hierarchical sharding, cross-superstep
// pipelining, coalescing), and each analytics kernel exposed whichever
// subset had been hand-plumbed into it. Config unifies the scattered
// knobs so every kernel executed by engine::run inherits every
// transport strategy; from_params() maps the partitioner-facing
// core::Params fields onto it so benches drive analytics and
// partitioning from one struct.
#pragma once

#include <limits>

#include "comm/backend.hpp"
#include "comm/shard_policy.hpp"
#include "core/params.hpp"
#include "util/types.hpp"

namespace xtra::engine {

struct Config {
  /// Routing of every exchange the engine issues (halo refreshes,
  /// frontier notifications, census/query traffic): flat alltoallv or
  /// the two-level node-aware path. Results are bit-identical either
  /// way. Same value required on every rank.
  comm::ShardPolicy shard_policy = comm::ShardPolicy::kFlat;

  /// Transport of every exchange the engine issues: two-sided matched
  /// sends (the default), or one-sided exposure windows the consumers
  /// pull from (the RMA/remote-fetch style). Results are bit-identical
  /// either way. Same value required on every rank.
  comm::Backend backend = comm::Backend::kTwoSided;

  /// Per-phase send-payload cap (chunk size) for the engine's
  /// exchanges, in bytes; 0 = unbounded single alltoallv. Results are
  /// bit-identical for any value. Same value on every rank.
  count_t max_exchange_bytes = 0;

  /// Supersteps a dense program's ghost refresh may stay in flight
  /// (graph::SuperstepPipeline). 0 drains in-step — bit-identical to
  /// the blocking exchange; d >= 1 keeps up to d refreshes in flight
  /// across superstep boundaries (clamped to graph::kMaxPipelineDepth),
  /// so updates may read ghosts up to d supersteps stale. Only
  /// meaningful for dense programs.
  int pipeline_depth = 0;

  /// > 0 switches a change-converging dense program's ghost refresh
  /// from a full per-superstep halo exchange to sparse changed-value
  /// updates batched in a comm::CoalescingExchanger and flushed every
  /// `coalesce_every` supersteps (and at convergence). Peers read
  /// values up to coalesce_every-1 supersteps stale between flushes;
  /// coalesce_every == 1 delivers every superstep and is bit-identical
  /// to the full refresh. Takes precedence over pipeline_depth.
  int coalesce_every = 0;

  /// Residual stop for fixed-iteration dense programs (PageRank):
  /// > 0 adds one allreduce per superstep and stops when the summed
  /// residual the program accumulates drops to tol; 0 keeps the
  /// fixed-iteration contract (and its collective count).
  double tol = 0.0;

  /// Intra-rank worker threads for the engine's chunked sweeps
  /// (boundary/interior update sweeps, the frontier expansion scan).
  /// Deterministic: {1, T} threads produce byte-identical results and
  /// identical ExchangeStats wire accounting for every T — threading
  /// never changes what goes on the wire, only who computes it.
  int num_threads = 1;

  /// Segment-cache budget in bytes when the graph runs out-of-core
  /// (graph::SegmentCache; 0 = in-core). Carried here so benches and
  /// tools size the cache from the same knob bag they size everything
  /// else from; the engine itself reads the graph's out_of_core()
  /// state (enabling is an explicit collective on the graph). Results
  /// are bit-identical for any budget.
  count_t cache_budget_bytes = 0;

  /// Superstep cap. kUnbounded (the default) runs change-converging
  /// programs to convergence; fixed-iteration programs must set a
  /// non-negative cap (0 runs no supersteps at all — init and finish
  /// only, the legacy zero-iteration contract).
  static constexpr count_t kUnbounded = -1;
  count_t max_supersteps = kUnbounded;

  /// Map the partitioner-facing knobs onto an engine config (tol and
  /// max_supersteps stay per-kernel — set them after).
  static Config from_params(const core::Params& p) {
    Config cfg;
    cfg.shard_policy = p.shard_policy;
    cfg.backend = p.backend;
    cfg.max_exchange_bytes = p.max_exchange_bytes;
    cfg.pipeline_depth = p.pipeline_depth;
    cfg.coalesce_every = p.coalesce_every;
    cfg.num_threads = p.num_threads;
    cfg.cache_budget_bytes = p.cache_budget_bytes;
    return cfg;
  }
};

namespace detail {

/// The loop bound cfg.max_supersteps encodes (negative = unbounded).
inline count_t superstep_limit(const Config& cfg) {
  return cfg.max_supersteps >= 0 ? cfg.max_supersteps
                                 : std::numeric_limits<count_t>::max();
}

}  // namespace detail

}  // namespace xtra::engine
