#include "engine/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace xtra::engine {

void merge(comm::ExchangeStats& into, const comm::ExchangeStats& from) {
  into.exchanges += from.exchanges;
  into.phases += from.phases;
  into.records_sent += from.records_sent;
  into.bytes_sent += from.bytes_sent;
  into.seconds += from.seconds;
  into.inter_node_bytes += from.inter_node_bytes;
  into.intra_node_bytes += from.intra_node_bytes;
  into.inter_node_msgs += from.inter_node_msgs;
  into.coalesced_flushes += from.coalesced_flushes;
  into.overlapped += from.overlapped;
  into.max_inflight_bytes =
      std::max(into.max_inflight_bytes, from.max_inflight_bytes);
  into.start_seconds += from.start_seconds;
  into.finish_seconds += from.finish_seconds;
  into.drained_incrementally += from.drained_incrementally;
  into.pipeline_carried += from.pipeline_carried;
  into.max_pipeline_depth =
      std::max(into.max_pipeline_depth, from.max_pipeline_depth);
}

std::string Stats::to_json() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"seconds\": %.6f, \"comm_bytes\": %lld, \"supersteps\": %lld, "
      "\"num_threads\": %d, "
      "\"exchanges\": %lld, \"phases\": %lld, \"records_sent\": %lld, "
      "\"bytes_sent\": %lld, \"inter_node_bytes\": %lld, "
      "\"intra_node_bytes\": %lld, \"inter_node_msgs\": %lld, "
      "\"coalesced_flushes\": %lld, \"overlapped\": %lld, "
      "\"max_inflight_bytes\": %lld, \"drained_incrementally\": %lld, "
      "\"pipeline_carried\": %lld, \"max_pipeline_depth\": %lld}",
      seconds, static_cast<long long>(comm_bytes),
      static_cast<long long>(supersteps), num_threads,
      static_cast<long long>(exchange.exchanges),
      static_cast<long long>(exchange.phases),
      static_cast<long long>(exchange.records_sent),
      static_cast<long long>(exchange.bytes_sent),
      static_cast<long long>(exchange.inter_node_bytes),
      static_cast<long long>(exchange.intra_node_bytes),
      static_cast<long long>(exchange.inter_node_msgs),
      static_cast<long long>(exchange.coalesced_flushes),
      static_cast<long long>(exchange.overlapped),
      static_cast<long long>(exchange.max_inflight_bytes),
      static_cast<long long>(exchange.drained_incrementally),
      static_cast<long long>(exchange.pipeline_carried),
      static_cast<long long>(exchange.max_pipeline_depth));
  return buf;
}

}  // namespace xtra::engine
