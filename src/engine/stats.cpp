#include "engine/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace xtra::engine {

void merge(comm::ExchangeStats& into, const comm::ExchangeStats& from) {
  into.merge_from(from);
}

std::string Stats::to_json() const {
  char buf[1152];
  std::snprintf(
      buf, sizeof(buf),
      "{\"seconds\": %.6f, \"comm_bytes\": %lld, \"supersteps\": %lld, "
      "\"num_threads\": %d, "
      "\"exchanges\": %lld, \"phases\": %lld, \"records_sent\": %lld, "
      "\"bytes_sent\": %lld, \"inter_node_bytes\": %lld, "
      "\"intra_node_bytes\": %lld, \"inter_node_msgs\": %lld, "
      "\"coalesced_flushes\": %lld, \"overlapped\": %lld, "
      "\"max_inflight_bytes\": %lld, \"drained_incrementally\": %lld, "
      "\"pipeline_carried\": %lld, \"max_pipeline_depth\": %lld, "
      "\"one_sided_gets\": %lld, \"one_sided_bytes\": %lld, "
      "\"seg_hits\": %lld, \"seg_misses\": %lld, \"seg_evictions\": %lld, "
      "\"seg_prefetch_hits\": %lld, \"seg_fetch_bytes\": %lld, "
      "\"seg_stall_seconds\": %.6f}",
      seconds, static_cast<long long>(comm_bytes),
      static_cast<long long>(supersteps), num_threads,
      static_cast<long long>(exchange.exchanges),
      static_cast<long long>(exchange.phases),
      static_cast<long long>(exchange.records_sent),
      static_cast<long long>(exchange.bytes_sent),
      static_cast<long long>(exchange.inter_node_bytes),
      static_cast<long long>(exchange.intra_node_bytes),
      static_cast<long long>(exchange.inter_node_msgs),
      static_cast<long long>(exchange.coalesced_flushes),
      static_cast<long long>(exchange.overlapped),
      static_cast<long long>(exchange.max_inflight_bytes),
      static_cast<long long>(exchange.drained_incrementally),
      static_cast<long long>(exchange.pipeline_carried),
      static_cast<long long>(exchange.max_pipeline_depth),
      static_cast<long long>(exchange.one_sided_gets),
      static_cast<long long>(exchange.one_sided_bytes),
      static_cast<long long>(exchange.seg_hits),
      static_cast<long long>(exchange.seg_misses),
      static_cast<long long>(exchange.seg_evictions),
      static_cast<long long>(exchange.seg_prefetch_hits),
      static_cast<long long>(exchange.seg_fetch_bytes),
      exchange.seg_stall_seconds);
  return buf;
}

}  // namespace xtra::engine
