// The unified vertex-program engine API — the only way analytics run.
//
// After PRs 2-4 each kernel in src/analytics/ hand-rolled its own
// superstep loop and exposed whichever transport knobs had been
// plumbed into it by hand. The engine inverts that: a kernel is a
// small *program* struct (its per-vertex update plus init/epilogue
// hooks), `engine::Config` is the one knob bag (shard policy, chunk
// size, pipeline depth, coalescing cadence, tolerance, superstep
// cap), and `engine::run(comm, g, program, cfg)` owns the superstep
// loop — so every comm optimization the substrate grows is inherited
// by every kernel at once, the way RFP's uniform interface hides the
// transport-mode choice from its callers.
//
// Two execution modes, dispatched on the program's shape:
//  * dense (typename P::Value): one published value per vertex,
//    refreshed through HaloPlan/SuperstepPipeline — or, at
//    cfg.coalesce_every > 0, as sparse changed-value records batched
//    in a CoalescingExchanger. See engine/dense.hpp.
//  * frontier (typename P::Notify): level-synchronous expansion of an
//    active set through graph::FrontierStepper, ghost relaxations
//    travelling as program-defined wire records. See
//    engine/frontier.hpp.
//
// Both return engine::Stats — RunInfo's triple merged with the
// aggregated ExchangeStats ledger of every wire engine the run owned,
// JSON-exportable. The concrete programs for the paper's six Fig-8
// workloads plus the two engine-native ones (delta-capped SSSP,
// query-based approximate triangle count) live in
// analytics/programs.hpp; the legacy analytics:: entry points are
// thin deprecated wrappers over them, bit-identical at default knobs.
#pragma once

#include <concepts>

#include "engine/config.hpp"
#include "engine/dense.hpp"
#include "engine/frontier.hpp"
#include "engine/stats.hpp"

namespace xtra::engine {

/// Dense mode: publishes one P::Value per vertex in ctx.values.
template <typename P>
concept DenseVertexProgram =
    requires(P p, DenseContext<P>& ctx, lid_t v) {
      typename P::Value;
      p.init(ctx);
      p.update(ctx, v);
    };

/// Frontier mode: expands an active set, shipping P::Notify records.
template <typename P>
concept FrontierVertexProgram =
    requires(P p, FrontierContext<P>& ctx, lid_t v,
             const typename P::Notify& n) {
      typename P::Notify;
      p.init(ctx);
      p.nbrs(ctx, v);
      { p.improves(ctx, v, v) } -> std::convertible_to<bool>;
      { p.relax(ctx, v, v) } -> std::convertible_to<bool>;
      { p.make_notify(ctx, v) } -> std::convertible_to<typename P::Notify>;
      { p.receive(ctx, n) } -> std::convertible_to<lid_t>;
    };

/// Batched multi-source frontier mode: N slot-tagged sources expand in
/// one sweep and one exchange per level. Hooks carry a leading slot
/// argument; frontier entries are (slot, lid) pairs.
template <typename P>
concept MultiSourceVertexProgram =
    requires(P p, MultiFrontierContext<P>& ctx, count_t s, lid_t v,
             const typename P::Notify& n) {
      typename P::Notify;
      p.init(ctx);
      p.nbrs(ctx, s, v);
      { p.improves(ctx, s, v, v) } -> std::convertible_to<bool>;
      { p.relax(ctx, s, v, v) } -> std::convertible_to<bool>;
      { p.make_notify(ctx, s, v) } -> std::convertible_to<typename P::Notify>;
      { p.receive(ctx, s, n) } -> std::convertible_to<lid_t>;
    };

/// Collective: execute a vertex program under cfg's transport knobs.
/// Result state lives in the program object; returns the unified
/// measurement.
template <DenseVertexProgram P>
Stats run(sim::Comm& comm, const graph::DistGraph& g, P& p,
          const Config& cfg = {}) {
  return run_dense(comm, g, p, cfg);
}

template <FrontierVertexProgram P>
Stats run(sim::Comm& comm, const graph::DistGraph& g, P& p,
          const Config& cfg = {}) {
  return run_frontier(comm, g, p, cfg);
}

template <MultiSourceVertexProgram P>
Stats run(sim::Comm& comm, const graph::DistGraph& g, P& p,
          const Config& cfg = {}) {
  return run_multi_frontier(comm, g, p, cfg);
}

}  // namespace xtra::engine
