// engine::Stats — the unified per-run measurement every vertex
// program returns: the analytics RunInfo triple (wall seconds, bytes
// this rank sent, supersteps) merged with the comm layer's
// ExchangeStats ledger aggregated over every engine the run owned
// (halo plan, frontier/census exchangers, coalescer). JSON-exportable
// for bench tooling.
#pragma once

#include <string>

#include "comm/exchanger.hpp"
#include "util/types.hpp"

namespace xtra::engine {

struct Stats {
  double seconds = 0.0;    ///< wall time inside engine::run on this rank
  count_t comm_bytes = 0;  ///< wire bytes this rank sent during the run
  count_t supersteps = 0;  ///< supersteps (dense) or levels (frontier)
  int num_threads = 1;     ///< intra-rank threads the run was configured with

  /// Aggregated wire ledger across every exchanger the run owned.
  comm::ExchangeStats exchange;

  /// One JSON object, keys stable for bench tooling (COMM_STATS_JSON
  /// consumers parse the same field names).
  std::string to_json() const;
};

/// Fold one engine's ledger into an aggregate: counters and times add,
/// peak fields take the max.
void merge(comm::ExchangeStats& into, const comm::ExchangeStats& from);

}  // namespace xtra::engine
