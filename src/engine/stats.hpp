// engine::Stats — the unified per-run measurement every vertex
// program returns: the analytics RunInfo triple (wall seconds, bytes
// this rank sent, supersteps) merged with the comm layer's
// ExchangeStats ledger aggregated over every engine the run owned
// (halo plan, frontier/census exchangers, coalescer). JSON-exportable
// for bench tooling.
#pragma once

#include <string>

#include "comm/exchanger.hpp"
#include "graph/segcache.hpp"
#include "util/types.hpp"

namespace xtra::engine {

struct Stats {
  double seconds = 0.0;    ///< wall time inside engine::run on this rank
  count_t comm_bytes = 0;  ///< wire bytes this rank sent during the run
  count_t supersteps = 0;  ///< supersteps (dense) or levels (frontier)
  int num_threads = 1;     ///< intra-rank threads the run was configured with

  /// Aggregated wire ledger across every exchanger the run owned.
  comm::ExchangeStats exchange;

  /// One JSON object, keys stable for bench tooling (COMM_STATS_JSON
  /// consumers parse the same field names).
  std::string to_json() const;
};

/// Fold one engine's ledger into an aggregate: counters and times add,
/// peak fields take the max.
void merge(comm::ExchangeStats& into, const comm::ExchangeStats& from);

namespace detail {

/// Fold a run's segment-cache activity (delta vs the start-of-run
/// snapshot) into the exchange ledger headed for Stats::to_json. Used
/// by both the dense and frontier drivers.
inline void fold_segcache_delta(comm::ExchangeStats& into,
                                const graph::SegCacheStats& start,
                                const graph::SegCacheStats& end) {
  into.seg_hits += end.seg_hits - start.seg_hits;
  into.seg_misses += end.seg_misses - start.seg_misses;
  into.seg_evictions += end.seg_evictions - start.seg_evictions;
  into.seg_prefetch_hits += end.seg_prefetch_hits - start.seg_prefetch_hits;
  into.seg_fetch_bytes += end.seg_fetch_bytes - start.seg_fetch_bytes;
  into.seg_stall_seconds += end.seg_stall_seconds - start.seg_stall_seconds;
}

}  // namespace detail

}  // namespace xtra::engine
