// Partition quality metrics (paper §V-B).
//
// Two architecture-independent quality metrics drive every comparison:
//   * edge cut ratio        |C(G,Pi)| / |E|
//   * scaled max cut ratio  max_k |C(G,pi_k)| / (|E|/p)
// plus the two balance constraints:
//   * vertex imbalance      max_k |V(pi_k)| / (|V|/p)
//   * edge imbalance        max_k deg(pi_k) / (2|E|/p)   (degree-sum
//     convention, matching the partitioner's Se tracking).
// Lower is better everywhere; imbalance 1.0 is perfect balance.
#pragma once

#include <span>
#include <vector>

#include "graph/dist_graph.hpp"
#include "graph/edge_list.hpp"
#include "mpisim/comm.hpp"

namespace xtra::metrics {

struct QualityReport {
  part_t nparts = 0;
  count_t edges = 0;
  count_t cut = 0;             ///< |C(G,Pi)|
  count_t max_part_cut = 0;    ///< max_k |C(G,pi_k)|
  double edge_cut_ratio = 0.0;
  double scaled_max_cut = 0.0;
  double vertex_imbalance = 0.0;
  double edge_imbalance = 0.0;
};

/// Serial evaluation over a canonicalized undirected edge list and a
/// global part vector indexed by gid.
QualityReport evaluate(const graph::EdgeList& el,
                       const std::vector<part_t>& parts, part_t nparts);

/// Distributed evaluation (collective); `parts` is the local view
/// (owned + ghosts) as returned by core::partition.
QualityReport evaluate_dist(sim::Comm& comm, const graph::DistGraph& g,
                            const std::vector<part_t>& parts, part_t nparts);

/// Geometric mean, used for the paper's "performance ratio" quality
/// aggregation (§V-B). Values must be positive.
double geometric_mean(std::span<const double> values);

}  // namespace xtra::metrics
