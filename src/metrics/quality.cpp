#include "metrics/quality.hpp"

#include <cmath>

#include "core/state.hpp"
#include "util/assert.hpp"

namespace xtra::metrics {

namespace {

QualityReport finalize(part_t nparts, gid_t n, count_t m,
                       const std::vector<count_t>& vert_sizes,
                       const std::vector<count_t>& edge_sizes,
                       const std::vector<count_t>& cut_sizes, count_t cut) {
  QualityReport r;
  r.nparts = nparts;
  r.edges = m;
  r.cut = cut;
  for (const count_t c : cut_sizes) r.max_part_cut = std::max(r.max_part_cut, c);
  const double p = static_cast<double>(nparts);
  if (m > 0) {
    r.edge_cut_ratio = static_cast<double>(cut) / static_cast<double>(m);
    r.scaled_max_cut =
        static_cast<double>(r.max_part_cut) / (static_cast<double>(m) / p);
  }
  count_t max_v = 0, max_e = 0;
  for (const count_t s : vert_sizes) max_v = std::max(max_v, s);
  for (const count_t s : edge_sizes) max_e = std::max(max_e, s);
  if (n > 0)
    r.vertex_imbalance =
        static_cast<double>(max_v) / (static_cast<double>(n) / p);
  if (m > 0)
    r.edge_imbalance =
        static_cast<double>(max_e) / (2.0 * static_cast<double>(m) / p);
  return r;
}

}  // namespace

QualityReport evaluate(const graph::EdgeList& el,
                       const std::vector<part_t>& parts, part_t nparts) {
  XTRA_ASSERT(parts.size() == el.n);
  XTRA_ASSERT_MSG(!el.directed, "evaluate() expects an undirected list");
  std::vector<count_t> vert_sizes(static_cast<std::size_t>(nparts), 0);
  std::vector<count_t> edge_sizes(static_cast<std::size_t>(nparts), 0);
  std::vector<count_t> cut_sizes(static_cast<std::size_t>(nparts), 0);
  count_t cut = 0;
  count_t m = 0;
  for (gid_t v = 0; v < el.n; ++v) {
    XTRA_ASSERT(parts[v] >= 0 && parts[v] < nparts);
    ++vert_sizes[static_cast<std::size_t>(parts[v])];
  }
  for (const graph::Edge& e : el.edges) {
    if (e.u == e.v) continue;
    ++m;
    const part_t pu = parts[e.u];
    const part_t pv = parts[e.v];
    ++edge_sizes[static_cast<std::size_t>(pu)];
    ++edge_sizes[static_cast<std::size_t>(pv)];
    if (pu != pv) {
      ++cut;
      ++cut_sizes[static_cast<std::size_t>(pu)];
      ++cut_sizes[static_cast<std::size_t>(pv)];
    }
  }
  return finalize(nparts, el.n, m, vert_sizes, edge_sizes, cut_sizes, cut);
}

QualityReport evaluate_dist(sim::Comm& comm, const graph::DistGraph& g,
                            const std::vector<part_t>& parts,
                            part_t nparts) {
  const std::vector<count_t> vert_sizes =
      core::compute_vertex_sizes(comm, g, parts, nparts);
  const std::vector<count_t> edge_sizes =
      core::compute_edge_sizes(comm, g, parts, nparts);
  const std::vector<count_t> cut_sizes =
      core::compute_cut_sizes(comm, g, parts, nparts);
  count_t local_cut_arcs = 0;
  for (lid_t v = 0; v < g.n_local(); ++v)
    for (const lid_t u : g.arcs(v))
      if (parts[u] != parts[v]) ++local_cut_arcs;
  // Each cut edge appears as one arc at each endpoint's owner.
  const count_t cut = comm.allreduce_sum(local_cut_arcs) / 2;
  return finalize(nparts, g.n_global(), g.m_global(), vert_sizes, edge_sizes,
                  cut_sizes, cut);
}

double geometric_mean(std::span<const double> values) {
  XTRA_ASSERT(!values.empty());
  double log_sum = 0.0;
  for (const double v : values) {
    XTRA_ASSERT_MSG(v > 0.0, "geometric mean needs positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace xtra::metrics
