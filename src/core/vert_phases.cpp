#include <algorithm>

#include "core/exchange.hpp"
#include "core/phases.hpp"
#include "core/sweep.hpp"
#include "util/assert.hpp"

namespace xtra::core {

namespace {

/// W_v(i) <- max(Imbv / est_size(i) - 1, 0): parts under the target get
/// positive pull proportional to how far under they are.
double balance_weight(double target, double est_size) {
  const double denom = std::max(est_size, 1.0);
  return std::max(target / denom - 1.0, 0.0);
}

}  // namespace

void vert_balance_phase(sim::Comm& comm, const graph::DistGraph& g,
                        std::vector<part_t>& parts, PhaseState& st,
                        const Params& params) {
  const part_t p = st.nparts;
  std::vector<double> weight(static_cast<std::size_t>(p), 0.0);
  NeighborCounts counts(p);
  PhaseScan scan;
  std::vector<lid_t> queue;

  for (int iter = 0; iter < params.bal_iters; ++iter) {
    const count_t max_v =
        std::max(*std::max_element(st.size_v.begin(), st.size_v.end()),
                 st.imb_v);
    for (part_t i = 0; i < p; ++i)
      weight[static_cast<std::size_t>(i)] =
          balance_weight(static_cast<double>(st.imb_v), st.est_v(i));

    // Parallel read-only pass against the sweep-start labels.
    // Algorithm 4 weights each neighbor by its degree: moving next to
    // heavy vertices is worth more cut reduction later.
    scan.scan(g, parts, p,
              params.degree_weighted_balance ? PhaseScan::Weight::kDegree
                                             : PhaseScan::Weight::kUnit);
    queue.clear();
    for (lid_t v = 0; v < g.n_local(); ++v) {
      const part_t x = parts[v];
      // Never empty a part: an empty part can no longer appear in any
      // neighborhood, so label propagation could never repopulate it
      // (the reference implementation has the same guard). The huge
      // W_v of a near-empty part re-grows it from its boundary.
      if (!st.can_leave(x))
        continue;
      scan.load(g, parts, v, counts);
      part_t best = x;
      double best_score = 0.0;
      for (const part_t i : counts.touched()) {
        // Parts already at the cap take no further vertices.
        if (st.est_v(i) + 1.0 > static_cast<double>(max_v)) continue;
        const double score =
            counts.get(i) * weight[static_cast<std::size_t>(i)];
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      if (best != x && best_score > 0.0) {
        --st.change_v[static_cast<std::size_t>(x)];
        ++st.change_v[static_cast<std::size_t>(best)];
        weight[static_cast<std::size_t>(x)] =
            balance_weight(static_cast<double>(st.imb_v), st.est_v(x));
        weight[static_cast<std::size_t>(best)] =
            balance_weight(static_cast<double>(st.imb_v), st.est_v(best));
        parts[v] = best;
        queue.push_back(v);
        scan.mark_moved(g, v);
      }
    }
    // Stall escape (extension beyond the paper's pseudocode, mirroring
    // the reference implementation's part repair): when label
    // propagation made no move anywhere but the constraint is unmet,
    // the underweight parts must be *enclosed* — they share no boundary
    // with any overweight part, so neighborhood-driven moves can never
    // reach them. Teleport a bounded share of overweight-part vertices
    // into the lightest part; its exploding W_v then regrows it
    // through its new boundary.
    const count_t moved = comm.allreduce_sum(
        static_cast<count_t>(queue.size()));
    const count_t cur_max =
        *std::max_element(st.size_v.begin(), st.size_v.end());
    if (cur_max > st.imb_v && moved < cur_max - st.imb_v) {
      // Fill every underweight part, each rank contributing at most
      // its share of that part's headroom (no overshoot possible).
      lid_t cursor = 0;
      for (part_t target = 0; target < p; ++target) {
        count_t budget =
            (st.imb_v - st.size_v[static_cast<std::size_t>(target)]) /
            (2 * static_cast<count_t>(st.nprocs));
        for (; cursor < g.n_local() && budget > 0; ++cursor) {
          const part_t x = parts[cursor];
          if (x == target) continue;
          if (st.size_v[static_cast<std::size_t>(x)] <= st.imb_v) continue;
          if (!st.can_leave(x)) continue;
          --st.change_v[static_cast<std::size_t>(x)];
          ++st.change_v[static_cast<std::size_t>(target)];
          parts[cursor] = target;
          queue.push_back(cursor);
          --budget;
        }
      }
    }
    // Overlap: the update exchange is on the wire while fold_changes'
    // allreduce runs (it reads only the change counters, never ghost
    // labels); finish() then applies the arrivals.
    st.exchanger.start(comm, g, parts, queue);
    fold_changes(comm, st);
    st.exchanger.finish(comm, g, parts);
    ++st.iter_tot;
  }
}

void vert_refine_phase(sim::Comm& comm, const graph::DistGraph& g,
                       std::vector<part_t>& parts, PhaseState& st,
                       const Params& params) {
  const part_t p = st.nparts;
  NeighborCounts counts(p);
  PhaseScan scan;
  std::vector<lid_t> queue;

  for (int iter = 0; iter < params.ref_iters; ++iter) {
    const count_t max_v =
        std::max(*std::max_element(st.size_v.begin(), st.size_v.end()),
                 st.imb_v);
    scan.scan(g, parts, p, PhaseScan::Weight::kUnit);
    queue.clear();
    for (lid_t v = 0; v < g.n_local(); ++v) {
      const part_t x = parts[v];
      if (!st.can_leave(x))
        continue;  // never empty a part (see balance phase)
      scan.load(g, parts, v, counts);
      // Start from the current part: a move needs a strictly better
      // same-part neighbor count, which is exactly "fewer cut edges".
      part_t best = x;
      double best_score = counts.get(x);
      for (const part_t i : counts.touched()) {
        if (i == x) continue;
        // Strict gate: the size cap is a constraint here, not the
        // objective being balanced, so assume worst-case concurrent
        // growth (overshoot would ratchet the cap up permanently).
        if (st.est_v_strict(i) + static_cast<double>(st.nprocs) >
            static_cast<double>(max_v))
          continue;
        if (counts.get(i) > best_score) {
          best_score = counts.get(i);
          best = i;
        }
      }
      if (best != x) {
        --st.change_v[static_cast<std::size_t>(x)];
        ++st.change_v[static_cast<std::size_t>(best)];
        parts[v] = best;
        queue.push_back(v);
        scan.mark_moved(g, v);
      }
    }
    st.exchanger.start(comm, g, parts, queue);
    fold_changes(comm, st);  // overlaps the in-flight update exchange
    st.exchanger.finish(comm, g, parts);
    ++st.iter_tot;
  }
}

}  // namespace xtra::core
