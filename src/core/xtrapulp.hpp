// XtraPuLP — the paper's primary contribution (Algorithm 1 driver).
//
// Multi-constraint (vertex and edge balance), multi-objective (total
// cut and max per-part cut) distributed-memory label-propagation
// partitioner. Usage:
//
//   sim::run_world(nranks, [&](sim::Comm& comm) {
//     auto g = graph::build_dist_graph(comm, edges,
//                  graph::VertexDist::random(edges.n, comm.size()));
//     core::Params params;
//     params.nparts = 16;
//     core::PartitionResult r = core::partition(comm, g, params);
//     // r.parts[l] is the part of local vertex l
//   });
#pragma once

#include "core/params.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"

namespace xtra::core {

/// Run the full XtraPuLP pipeline (init, Iouter x (vertex balance +
/// refine), then Iouter x (edge balance + refine) unless disabled).
/// Collective; every rank receives its local view of the partition.
PartitionResult partition(sim::Comm& comm, const graph::DistGraph& g,
                          const Params& params);

/// Replicate the global part vector (indexed by gid) on every rank.
/// Collective. Intended for metrics and for feeding explicit
/// distributions; O(n_global) memory per rank.
std::vector<part_t> gather_global_parts(sim::Comm& comm,
                                        const graph::DistGraph& g,
                                        const std::vector<part_t>& parts);

/// Internal invariant check (used by tests): every owned label is in
/// range and every ghost label matches its owner's. Collective;
/// returns true on every rank iff consistent.
bool check_partition_consistent(sim::Comm& comm, const graph::DistGraph& g,
                                const std::vector<part_t>& parts,
                                part_t nparts);

}  // namespace xtra::core
