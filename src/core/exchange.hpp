// ExchangeUpdates — Algorithm 3, the partitioner's only point-to-point
// communication pattern.
//
// Each rank queues owned vertices whose part label changed this
// superstep. For every queued vertex we send (gid, new_part) to each
// *distinct* rank appearing in its neighborhood (a boolean toSend mask
// avoids redundant copies, per the paper), then apply the incoming
// records to our ghost labels. Two passes over the queue (count, fill)
// around prefix-summed offsets mirror Algorithm 3 exactly.
#pragma once

#include <vector>

#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "util/types.hpp"

namespace xtra::core {

/// One part-assignment update on the wire.
struct PartUpdate {
  gid_t gid;
  part_t part;
};

/// Collective. `queue` holds owned local ids whose entry in `parts`
/// changed; on return the ghost entries of `parts` reflect all peers'
/// updates. Safe to call with empty queues (still collective).
void exchange_updates(sim::Comm& comm, const graph::DistGraph& g,
                      std::vector<part_t>& parts,
                      const std::vector<lid_t>& queue);

}  // namespace xtra::core
