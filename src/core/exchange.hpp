// ExchangeUpdates — Algorithm 3, the partitioner's only point-to-point
// communication pattern.
//
// Each rank queues owned vertices whose part label changed this
// superstep. For every queued vertex we send (gid, new_part) to each
// *distinct* rank appearing in its neighborhood (the comm layer's
// stamp mask is the paper's toSend mask), then apply the incoming
// records to our ghost labels. The two passes over the queue around
// prefix-summed offsets mirror Algorithm 3 exactly — they live in
// comm::DestBuckets; the wire trip (optionally phased under a
// max_send_bytes budget, per the paper's memory-bounded multi-phase
// communication) lives in comm::Exchanger.
#pragma once

#include <vector>

#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "util/types.hpp"

namespace xtra::core {

/// One part-assignment update on the wire.
struct PartUpdate {
  gid_t gid;
  part_t part;
};

/// Persistent ExchangeUpdates engine: owns the bucketing scratch and
/// the (possibly phased) exchanger, so calling run() once per
/// label-propagation iteration reallocates nothing. PhaseState holds
/// one so every balance/refine iteration reuses the same buffers.
class UpdateExchanger {
 public:
  /// max_send_bytes == 0: unbounded single alltoallv per exchange.
  explicit UpdateExchanger(count_t max_send_bytes = 0)
      : ex_(max_send_bytes) {
    ex_.set_label("core::UpdateExchanger");
  }

  /// Collective. `queue` holds owned local ids whose entry in `parts`
  /// changed; on return the ghost entries of `parts` reflect all
  /// peers' updates. Safe to call with empty queues (still collective).
  /// A thin start()+finish() wrapper.
  void run(sim::Comm& comm, const graph::DistGraph& g,
           std::vector<part_t>& parts, const std::vector<lid_t>& queue);

  /// Collective halves of run(), for overlapping the wire with local
  /// work: start() buckets the queued updates and kicks off the
  /// transfer (parts and queue are released when it returns); local
  /// compute that does not read ghost labels — e.g. fold_changes'
  /// allreduce — may run before finish() applies the arrivals.
  void start(sim::Comm& comm, const graph::DistGraph& g,
             const std::vector<part_t>& parts,
             const std::vector<lid_t>& queue);
  void finish(sim::Comm& comm, const graph::DistGraph& g,
              std::vector<part_t>& parts);

  void set_max_send_bytes(count_t bytes) { ex_.set_max_send_bytes(bytes); }
  void set_shard_policy(comm::ShardPolicy policy) {
    ex_.set_shard_policy(policy);
  }
  void set_backend(comm::Backend backend) { ex_.set_backend(backend); }
  const comm::ExchangeStats& stats() const { return ex_.stats(); }
  void reset_stats() { ex_.reset_stats(); }

 private:
  comm::DestBuckets<PartUpdate> buckets_;
  comm::Exchanger ex_;
};

/// One-shot convenience wrapper (init paths, tests): builds a scratch
/// UpdateExchanger per call. Hot loops should hold a persistent one.
void exchange_updates(sim::Comm& comm, const graph::DistGraph& g,
                      std::vector<part_t>& parts,
                      const std::vector<lid_t>& queue);

}  // namespace xtra::core
