// Shared per-phase bookkeeping for the balance/refinement stages.
//
// The distributed algorithm never re-counts part sizes from scratch
// inside an iteration. Instead each rank tracks the *local* changes
// C*(i) it made this iteration, estimates global sizes as
// S*(i) + mult * C*(i) (the dynamic-multiplier scheme of §III-C), and
// folds the changes into S* with one Allreduce per iteration.
#pragma once

#include <vector>

#include "core/exchange.hpp"
#include "core/params.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "util/types.hpp"

namespace xtra::core {

struct PhaseState {
  part_t nparts = 0;
  int nprocs = 1;
  double x = 1.0;  ///< multiplier endpoint X (final iteration)
  double y = 0.25; ///< multiplier endpoint Y (first iteration)
  int iter_tot = 0;  ///< iterations done in the current outer-loop set
  int i_tot = 1;     ///< Itot = Iouter * (Ibal + Iref)

  count_t imb_v = 0;  ///< Imbv: target max vertices per part
  count_t imb_e = 0;  ///< Imbe: target max edge endpoints per part

  std::vector<count_t> size_v, size_e, size_c;      ///< Sv, Se, Sc
  std::vector<count_t> change_v, change_e, change_c;///< Cv, Ce, Cc (local)

  /// Persistent ExchangeUpdates engine: bucketing scratch and the
  /// (optionally memory-bounded) exchanger survive across every
  /// balance/refine iteration instead of being rebuilt per call.
  UpdateExchanger exchanger;

  /// mult <- nprocs * ((X - Y) * itertot/Itot + Y), §III-C.
  double mult() const {
    return nprocs * ((x - y) * (static_cast<double>(iter_tot) /
                                static_cast<double>(i_tot)) +
                     y);
  }

  /// Estimated global size of part i during the current iteration.
  double est_v(part_t i) const {
    return static_cast<double>(size_v[static_cast<std::size_t>(i)]) +
           mult() * static_cast<double>(change_v[static_cast<std::size_t>(i)]);
  }
  double est_e(part_t i) const {
    return static_cast<double>(size_e[static_cast<std::size_t>(i)]) +
           mult() * static_cast<double>(change_e[static_cast<std::size_t>(i)]);
  }
  double est_c(part_t i) const {
    return static_cast<double>(size_c[static_cast<std::size_t>(i)]) +
           mult() * static_cast<double>(change_c[static_cast<std::size_t>(i)]);
  }

  /// Worst-case global size of part i if every rank made the same
  /// changes this rank did. Used to gate *constraints* (as opposed to
  /// the objective being actively balanced): constraint overshoot is
  /// not self-correcting — no weighting function pulls it back — so an
  /// optimistic estimate would let the cap ratchet upward.
  double est_v_strict(part_t i) const {
    return static_cast<double>(size_v[static_cast<std::size_t>(i)]) +
           static_cast<double>(nprocs) *
               static_cast<double>(change_v[static_cast<std::size_t>(i)]);
  }
  double est_e_strict(part_t i) const {
    return static_cast<double>(size_e[static_cast<std::size_t>(i)]) +
           static_cast<double>(nprocs) *
               static_cast<double>(change_e[static_cast<std::size_t>(i)]);
  }

  /// Whether one more vertex may leave part x without risking an empty
  /// part. An empty part can never reappear in a neighborhood, so
  /// label propagation could not repopulate it. Ranks move vertices
  /// concurrently without communicating, so the bound is worst-case:
  /// even if every rank removed as many vertices as this one, at least
  /// one vertex must remain.
  bool can_leave(part_t p) const {
    const auto i = static_cast<std::size_t>(p);
    return size_v[i] + static_cast<count_t>(nprocs) * (change_v[i] - 1) >= 1;
  }
};

/// Count owned vertices per part and Allreduce (initial Sv). Collective.
std::vector<count_t> compute_vertex_sizes(sim::Comm& comm,
                                          const graph::DistGraph& g,
                                          const std::vector<part_t>& parts,
                                          part_t nparts);

/// Per-part degree sums (the Se convention: |E(pi)| is counted as edge
/// endpoints in pi; the sum over parts is 2|E| and the count updates
/// locally on a move, which is what makes distributed tracking cheap —
/// same convention as the PuLP/XtraPuLP reference code). Collective.
std::vector<count_t> compute_edge_sizes(sim::Comm& comm,
                                        const graph::DistGraph& g,
                                        const std::vector<part_t>& parts,
                                        part_t nparts);

/// Per-part cut sizes Sc: cut edges with an endpoint in the part (each
/// cut edge contributes once to each endpoint's part). Collective.
std::vector<count_t> compute_cut_sizes(sim::Comm& comm,
                                       const graph::DistGraph& g,
                                       const std::vector<part_t>& parts,
                                       part_t nparts);

/// Fold this iteration's local changes into the global sizes:
/// Allreduce(C*, SUM); S* += C*; C* = 0. Folds the vertex and edge
/// vectors (their deltas are exact); cut sizes need refresh_cut_sizes
/// (see state.cpp for why). Collective.
void fold_changes(sim::Comm& comm, PhaseState& st);

/// Recompute Sc exactly from the post-exchange labels and clear Cc.
/// Collective.
void refresh_cut_sizes(sim::Comm& comm, const graph::DistGraph& g,
                       const std::vector<part_t>& parts, PhaseState& st);

/// Scratch for the per-vertex neighbor-part counting loop: a dense
/// counts array plus the list of touched parts, reset in O(touched).
class NeighborCounts {
 public:
  explicit NeighborCounts(part_t nparts)
      : counts_(static_cast<std::size_t>(nparts), 0.0) {}

  void add(part_t p, double w) {
    auto i = static_cast<std::size_t>(p);
    if (counts_[i] == 0.0 && w != 0.0) touched_.push_back(p);
    counts_[i] += w;
  }

  double get(part_t p) const { return counts_[static_cast<std::size_t>(p)]; }
  const std::vector<part_t>& touched() const { return touched_; }

  void reset() {
    for (const part_t p : touched_) counts_[static_cast<std::size_t>(p)] = 0.0;
    touched_.clear();
  }

 private:
  std::vector<double> counts_;
  std::vector<part_t> touched_;
};

}  // namespace xtra::core
