// The four balance/refinement phases of Algorithm 1. All collective.
#pragma once

#include <vector>

#include "core/params.hpp"
#include "core/state.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"

namespace xtra::core {

/// Algorithm 4: label propagation with the W_v balance weighting and
/// degree-weighted neighbor counts; runs params.bal_iters iterations.
void vert_balance_phase(sim::Comm& comm, const graph::DistGraph& g,
                        std::vector<part_t>& parts, PhaseState& st,
                        const Params& params);

/// Algorithm 5: constrained label propagation (FM-style refinement)
/// that greedily reduces cut without growing any part past
/// max(max_i Sv(i), Imbv); runs params.ref_iters iterations.
void vert_refine_phase(sim::Comm& comm, const graph::DistGraph& g,
                       std::vector<part_t>& parts, PhaseState& st,
                       const Params& params);

/// §III-E edge balancing: weights (Re*We + Rc*Wc) drive edges per part
/// toward Imbe, then push down / balance the per-part cut. Tracks
/// (Sv,Se,Sc) and (Cv,Ce,Cc).
void edge_balance_phase(sim::Comm& comm, const graph::DistGraph& g,
                        std::vector<part_t>& parts, PhaseState& st,
                        const Params& params);

/// §III-E refinement: like vert_refine but no move may raise the
/// current global max vertex count, edge count, or cut of any part.
void edge_refine_phase(sim::Comm& comm, const graph::DistGraph& g,
                       std::vector<part_t>& parts, PhaseState& st,
                       const Params& params);

}  // namespace xtra::core
