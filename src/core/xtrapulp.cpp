#include "core/xtrapulp.hpp"

#include <cmath>
#include <stdexcept>

#include <algorithm>
#include <cstdint>

#include "comm/query_reply.hpp"
#include "core/exchange.hpp"
#include "core/init.hpp"
#include "core/phases.hpp"
#include "core/state.hpp"
#include "graph/halo.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace xtra::core {

namespace {

void validate(const graph::DistGraph& g, const Params& params) {
  if (params.nparts < 1)
    throw std::invalid_argument("nparts must be >= 1");
  if (static_cast<gid_t>(params.nparts) > g.n_global())
    throw std::invalid_argument("more parts than vertices");
  if (params.vert_imbalance < 0 || params.edge_imbalance < 0)
    throw std::invalid_argument("imbalance ratios must be non-negative");
  if (params.outer_iters < 1 || params.bal_iters < 0 || params.ref_iters < 0)
    throw std::invalid_argument("iteration counts out of range");
  if (params.mult_x < 0 || params.mult_y < 0)
    throw std::invalid_argument("multiplier endpoints must be >= 0");
}

}  // namespace

PartitionResult partition(sim::Comm& comm, const graph::DistGraph& g,
                          const Params& params) {
  validate(g, params);
  PartitionResult result;
  result.nparts = params.nparts;
  // Ambient thread width for the phases' parallel scan passes
  // (core/sweep.hpp). Results are byte-identical at any width.
  par::ThreadScope threads(params.num_threads);
  const count_t bytes_before = comm.stats().bytes_sent;
  Timer total;

  // --- Stage 0: initialization (Algorithm 2) ---
  Timer t_init;
  result.parts = initialize_parts(comm, g, params);
  result.init_seconds = t_init.seconds();

  PhaseState st;
  st.nparts = params.nparts;
  st.nprocs = comm.size();
  st.exchanger.set_max_send_bytes(params.max_exchange_bytes);
  st.exchanger.set_shard_policy(params.shard_policy);
  st.exchanger.set_backend(params.backend);
  st.x = params.mult_x;
  st.y = params.mult_y;
  st.i_tot = std::max(params.outer_iters *
                          (params.bal_iters + params.ref_iters),
                      1);
  st.imb_v = static_cast<count_t>(
      std::ceil((1.0 + params.vert_imbalance) *
                static_cast<double>(g.n_global()) /
                static_cast<double>(params.nparts)));
  // Edge target uses the degree-sum convention (sum over parts = 2m).
  st.imb_e = static_cast<count_t>(
      std::ceil((1.0 + params.edge_imbalance) * 2.0 *
                static_cast<double>(g.m_global()) /
                static_cast<double>(params.nparts)));

  // --- Stage 1: vertex balance + refinement (Algorithms 4 & 5) ---
  Timer t_vert;
  st.size_v = compute_vertex_sizes(comm, g, result.parts, params.nparts);
  st.change_v.assign(static_cast<std::size_t>(params.nparts), 0);
  st.iter_tot = 0;
  for (int outer = 0; outer < params.outer_iters; ++outer) {
    vert_balance_phase(comm, g, result.parts, st, params);
    vert_refine_phase(comm, g, result.parts, st, params);
  }
  result.vert_stage_seconds = t_vert.seconds();

  // --- Stage 2: edge balance + refinement (§III-E) ---
  if (params.edge_phases) {
    Timer t_edge;
    st.size_e = compute_edge_sizes(comm, g, result.parts, params.nparts);
    st.size_c = compute_cut_sizes(comm, g, result.parts, params.nparts);
    st.change_e.assign(static_cast<std::size_t>(params.nparts), 0);
    st.change_c.assign(static_cast<std::size_t>(params.nparts), 0);
    st.iter_tot = 0;  // Alg 1 resets Iter_tot before the second loop
    for (int outer = 0; outer < params.outer_iters; ++outer) {
      edge_balance_phase(comm, g, result.parts, st, params);
      edge_refine_phase(comm, g, result.parts, st, params);
    }
    result.edge_stage_seconds = t_edge.seconds();
  }

  result.total_seconds = total.seconds();
  result.comm_bytes = comm.stats().bytes_sent - bytes_before;
  return result;
}

std::vector<part_t> gather_global_parts(sim::Comm& comm,
                                        const graph::DistGraph& g,
                                        const std::vector<part_t>& parts) {
  struct Labeled {
    gid_t gid;
    part_t part;
  };
  std::vector<Labeled> local(g.n_local());
  for (lid_t v = 0; v < g.n_local(); ++v)
    local[v] = {g.gid_of(v), parts[v]};
  const std::vector<Labeled> all = comm.allgatherv(local);
  XTRA_ASSERT(all.size() == g.n_global());
  std::vector<part_t> global(g.n_global(), kNoPart);
  for (const Labeled& rec : all) {
    XTRA_ASSERT(global[rec.gid] == kNoPart);
    global[rec.gid] = rec.part;
  }
  return global;
}

bool check_partition_consistent(sim::Comm& comm, const graph::DistGraph& g,
                                const std::vector<part_t>& parts,
                                part_t nparts) {
  bool ok = parts.size() == g.n_total();
  if (ok) {
    for (lid_t v = 0; v < g.n_total(); ++v)
      if (parts[v] < 0 || parts[v] >= nparts) ok = false;
  }
  // Routing pre-check: every ghost gid must resolve to an owned vertex
  // on its claimed owner. The HaloPlan constructor asserts this (a
  // well-formed DistGraph guarantees it), so a *checker* must test it
  // gracefully first — via the comm layer's query/reply round trip —
  // and return false instead of tripping the assert on a corrupt graph.
  comm::DestBuckets<gid_t> ghosts;
  ghosts.begin(comm.size());
  for (lid_t v = g.n_local(); v < g.n_total(); ++v)
    ghosts.count(g.owner_of(v));
  ghosts.commit();
  for (lid_t v = g.n_local(); v < g.n_total(); ++v)
    ghosts.push(g.owner_of(v), g.gid_of(v));
  comm::Exchanger ex;
  const std::span<const std::uint8_t> resolved = comm::query_reply(
      comm, ex, ghosts.records(), ghosts.counts(), [&g](const gid_t q) {
        const lid_t l = g.lid_of(q);
        return static_cast<std::uint8_t>(l != kInvalidLid && g.is_owned(l));
      });
  bool routing_ok = true;
  for (const std::uint8_t r : resolved)
    if (!r) routing_ok = false;
  // Collective agreement keeps the call pattern aligned: either every
  // rank builds the halo plan below, or none does.
  if (!comm.allreduce_and(routing_ok)) return false;

  // Ghost consistency via the halo plan: refresh a copy of the labels
  // from their owners and compare against what we hold. This re-ships
  // the ghost set a second time on purpose — the checker validates the
  // *production* HaloPlan path (registration ordering included), not
  // just the label values. Plan build and exchange run unconditionally
  // so the collective pattern stays aligned across ranks even when a
  // local check already failed.
  graph::HaloPlan halo(comm, g);
  std::vector<part_t> refreshed(g.n_total(), kNoPart);
  if (ok) std::copy(parts.begin(), parts.end(), refreshed.begin());
  halo.exchange(comm, refreshed);
  if (ok) {
    for (lid_t v = g.n_local(); v < g.n_total(); ++v)
      if (refreshed[v] != parts[v]) ok = false;
  }
  return comm.allreduce_and(ok);
}

}  // namespace xtra::core
