#include "core/state.hpp"

#include "util/assert.hpp"

namespace xtra::core {

std::vector<count_t> compute_vertex_sizes(sim::Comm& comm,
                                          const graph::DistGraph& g,
                                          const std::vector<part_t>& parts,
                                          part_t nparts) {
  std::vector<count_t> sizes(static_cast<std::size_t>(nparts), 0);
  for (lid_t v = 0; v < g.n_local(); ++v) {
    XTRA_DEBUG_ASSERT(parts[v] >= 0 && parts[v] < nparts);
    ++sizes[static_cast<std::size_t>(parts[v])];
  }
  comm.allreduce_sum(sizes);
  return sizes;
}

std::vector<count_t> compute_edge_sizes(sim::Comm& comm,
                                        const graph::DistGraph& g,
                                        const std::vector<part_t>& parts,
                                        part_t nparts) {
  std::vector<count_t> sizes(static_cast<std::size_t>(nparts), 0);
  for (lid_t v = 0; v < g.n_local(); ++v)
    sizes[static_cast<std::size_t>(parts[v])] += g.degree(v);
  comm.allreduce_sum(sizes);
  return sizes;
}

std::vector<count_t> compute_cut_sizes(sim::Comm& comm,
                                       const graph::DistGraph& g,
                                       const std::vector<part_t>& parts,
                                       part_t nparts) {
  std::vector<count_t> sizes(static_cast<std::size_t>(nparts), 0);
  for (lid_t v = 0; v < g.n_local(); ++v) {
    const part_t pv = parts[v];
    for (const lid_t u : g.arcs(v))
      if (parts[u] != pv) ++sizes[static_cast<std::size_t>(pv)];
  }
  comm.allreduce_sum(sizes);
  return sizes;
}

void fold_changes(sim::Comm& comm, PhaseState& st) {
  auto fold = [&comm](std::vector<count_t>& sizes,
                      std::vector<count_t>& changes) {
    if (changes.empty()) return;
    comm.allreduce_sum(changes);
    for (std::size_t i = 0; i < sizes.size(); ++i) sizes[i] += changes[i];
    std::fill(changes.begin(), changes.end(), 0);
  };
  fold(st.size_v, st.change_v);
  fold(st.size_e, st.change_e);
  // Cut sizes are NOT folded: a vertex move's cut delta depends on its
  // neighbors' labels, which other ranks may change in the same
  // iteration, so summed deltas drift from the truth (unlike Cv/Ce,
  // which depend only on the moved vertex). The edge phases recompute
  // Sc exactly after each ghost exchange instead.
}

void refresh_cut_sizes(sim::Comm& comm, const graph::DistGraph& g,
                       const std::vector<part_t>& parts, PhaseState& st) {
  st.size_c = compute_cut_sizes(comm, g, parts, st.nparts);
  std::fill(st.change_c.begin(), st.change_c.end(), 0);
}

}  // namespace xtra::core
