// Part-label initialization strategies (paper §III-B, Algorithm 2).
#pragma once

#include <vector>

#include "core/params.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"

namespace xtra::core {

/// Algorithm 2: rank 0 picks `nparts` unique random roots; labels grow
/// outward BFS-like, each unassigned vertex adopting a *random* part
/// among those present in its neighborhood; leftovers (disconnected
/// from every root) get random labels. Collective; returns labels for
/// owned + ghost vertices, globally consistent.
std::vector<part_t> init_bfs_growing(sim::Comm& comm,
                                     const graph::DistGraph& g,
                                     const Params& params);

/// Uniform random labels (a baseline init and a quality ablation).
std::vector<part_t> init_random(sim::Comm& comm, const graph::DistGraph& g,
                                const Params& params);

/// Contiguous gid blocks -> parts. With a block vertex distribution
/// this is the "VertexBlock" layout of Fig 8.
std::vector<part_t> init_block(sim::Comm& comm, const graph::DistGraph& g,
                               const Params& params);

/// Dispatch on params.init.
std::vector<part_t> initialize_parts(sim::Comm& comm,
                                     const graph::DistGraph& g,
                                     const Params& params);

}  // namespace xtra::core
