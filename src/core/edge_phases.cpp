#include <algorithm>

#include "core/exchange.hpp"
#include "core/phases.hpp"
#include "core/sweep.hpp"
#include "util/assert.hpp"

namespace xtra::core {

namespace {

double ratio_weight(double target, double est_size) {
  const double denom = std::max(est_size, 1.0);
  return std::max(target / denom - 1.0, 0.0);
}

/// Apply the cut-size deltas of moving v from x to w: for each incident
/// edge (v,u), the edge's cut state may flip, which changes the
/// per-part incident-cut counts of x, w, and parts(u).  (Sc(i) counts
/// cut edges with an endpoint in part i; see DESIGN.md.)
void apply_cut_deltas(const graph::DistGraph& g,
                      const std::vector<part_t>& parts, lid_t v, part_t x,
                      part_t w, std::vector<count_t>& change_c) {
  for (const lid_t u : g.arcs(v)) {
    const part_t pu = parts[u];
    if (pu != x) {  // was cut: remove from both sides
      --change_c[static_cast<std::size_t>(x)];
      --change_c[static_cast<std::size_t>(pu)];
    }
    if (pu != w) {  // is cut now: add to both sides
      ++change_c[static_cast<std::size_t>(w)];
      ++change_c[static_cast<std::size_t>(pu)];
    }
  }
}

}  // namespace

void edge_balance_phase(sim::Comm& comm, const graph::DistGraph& g,
                        std::vector<part_t>& parts, PhaseState& st,
                        const Params& params) {
  const part_t p = st.nparts;
  std::vector<double> weight_e(static_cast<std::size_t>(p), 0.0);
  std::vector<double> weight_c(static_cast<std::size_t>(p), 0.0);
  NeighborCounts counts(p);
  PhaseScan scan;
  std::vector<lid_t> queue;

  // R_e/R_c schedule (§III-E): while the edge-balance constraint is
  // unmet, R_e grows linearly and R_c stays fixed; once met, R_e
  // freezes and R_c grows, shifting the objective to minimizing and
  // balancing the per-part cut.
  double r_e = 1.0;
  double r_c = 1.0;
  bool edge_balance_met = false;

  for (int iter = 0; iter < params.bal_iters; ++iter) {
    const count_t cur_max_e =
        *std::max_element(st.size_e.begin(), st.size_e.end());
    const count_t max_e = std::max(cur_max_e, st.imb_e);
    const count_t max_v =
        std::max(*std::max_element(st.size_v.begin(), st.size_v.end()),
                 st.imb_v);
    const count_t max_c =
        std::max<count_t>(*std::max_element(st.size_c.begin(), st.size_c.end()),
                          1);
    if (!edge_balance_met && cur_max_e <= st.imb_e) edge_balance_met = true;
    if (edge_balance_met) {
      r_c += 1.0;
    } else {
      r_e += 1.0;
    }

    for (part_t i = 0; i < p; ++i) {
      weight_e[static_cast<std::size_t>(i)] =
          ratio_weight(static_cast<double>(st.imb_e), st.est_e(i));
      weight_c[static_cast<std::size_t>(i)] =
          ratio_weight(static_cast<double>(max_c), st.est_c(i));
    }

    scan.scan(g, parts, p, PhaseScan::Weight::kDegree);
    queue.clear();
    for (lid_t v = 0; v < g.n_local(); ++v) {
      const part_t x = parts[v];
      if (!st.can_leave(x))
        continue;  // never empty a part (see vert_phases.cpp)
      const count_t dv = g.degree(v);
      scan.load(g, parts, v, counts);

      part_t best = x;
      double best_score = 0.0;
      for (const part_t i : counts.touched()) {
        if (i == x) continue;
        // The vertex cap is a pure constraint here -> strict gate
        // (overshoot would ratchet the cap up permanently); edges are
        // the objective being balanced -> the paper's optimistic
        // mult-based estimate (overshoot self-corrects through W_e).
        if (st.est_v_strict(i) + static_cast<double>(st.nprocs) >
            static_cast<double>(max_v))
          continue;
        if (st.est_e(i) + static_cast<double>(dv) >
            static_cast<double>(max_e))
          continue;
        const double score =
            counts.get(i) * (r_e * weight_e[static_cast<std::size_t>(i)] +
                             r_c * weight_c[static_cast<std::size_t>(i)]);
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      if (best != x && best_score > 0.0) {
        --st.change_v[static_cast<std::size_t>(x)];
        ++st.change_v[static_cast<std::size_t>(best)];
        st.change_e[static_cast<std::size_t>(x)] -= dv;
        st.change_e[static_cast<std::size_t>(best)] += dv;
        apply_cut_deltas(g, parts, v, x, best, st.change_c);
        parts[v] = best;
        queue.push_back(v);
        scan.mark_moved(g, v);
        weight_e[static_cast<std::size_t>(x)] =
            ratio_weight(static_cast<double>(st.imb_e), st.est_e(x));
        weight_e[static_cast<std::size_t>(best)] =
            ratio_weight(static_cast<double>(st.imb_e), st.est_e(best));
        weight_c[static_cast<std::size_t>(x)] =
            ratio_weight(static_cast<double>(max_c), st.est_c(x));
        weight_c[static_cast<std::size_t>(best)] =
            ratio_weight(static_cast<double>(max_c), st.est_c(best));
      }
    }
    st.exchanger.start(comm, g, parts, queue);
    fold_changes(comm, st);  // overlaps the in-flight update exchange
    // refresh_cut_sizes reads ghost labels, so the exchange must be
    // drained first.
    st.exchanger.finish(comm, g, parts);
    refresh_cut_sizes(comm, g, parts, st);
    ++st.iter_tot;
  }
}

void edge_refine_phase(sim::Comm& comm, const graph::DistGraph& g,
                       std::vector<part_t>& parts, PhaseState& st,
                       const Params& params) {
  const part_t p = st.nparts;
  NeighborCounts counts(p);
  PhaseScan scan;
  std::vector<lid_t> queue;

  for (int iter = 0; iter < params.ref_iters; ++iter) {
    const count_t max_v =
        std::max(*std::max_element(st.size_v.begin(), st.size_v.end()),
                 st.imb_v);
    const count_t max_e =
        std::max(*std::max_element(st.size_e.begin(), st.size_e.end()),
                 st.imb_e);
    const count_t max_c =
        *std::max_element(st.size_c.begin(), st.size_c.end());

    scan.scan(g, parts, p, PhaseScan::Weight::kUnit);
    queue.clear();
    for (lid_t v = 0; v < g.n_local(); ++v) {
      const part_t x = parts[v];
      if (!st.can_leave(x))
        continue;  // never empty a part (see vert_phases.cpp)
      const count_t dv = g.degree(v);
      scan.load(g, parts, v, counts);

      part_t best = x;
      double best_score = counts.get(x);
      for (const part_t i : counts.touched()) {
        if (i == x) continue;
        if (counts.get(i) <= best_score) continue;
        // No move may raise the global max in vertices, edges, or cut
        // (§III-E refinement restriction). Vertices and edges are both
        // constraints during refinement -> strict gates.
        if (st.est_v_strict(i) + static_cast<double>(st.nprocs) >
            static_cast<double>(max_v))
          continue;
        if (st.est_e_strict(i) +
                static_cast<double>(st.nprocs) * static_cast<double>(dv) >
            static_cast<double>(max_e))
          continue;
        // v's edges to parts other than i become i-incident cut.
        const double cut_gain = static_cast<double>(dv) - counts.get(i);
        if (st.est_c(i) + cut_gain > static_cast<double>(max_c)) continue;
        best_score = counts.get(i);
        best = i;
      }
      if (best != x) {
        --st.change_v[static_cast<std::size_t>(x)];
        ++st.change_v[static_cast<std::size_t>(best)];
        st.change_e[static_cast<std::size_t>(x)] -= dv;
        st.change_e[static_cast<std::size_t>(best)] += dv;
        apply_cut_deltas(g, parts, v, x, best, st.change_c);
        parts[v] = best;
        queue.push_back(v);
        scan.mark_moved(g, v);
      }
    }
    st.exchanger.start(comm, g, parts, queue);
    fold_changes(comm, st);  // overlaps the in-flight update exchange
    // refresh_cut_sizes reads ghost labels, so the exchange must be
    // drained first.
    st.exchanger.finish(comm, g, parts);
    refresh_cut_sizes(comm, g, parts, st);
    ++st.iter_tot;
  }
}

}  // namespace xtra::core
