// Public configuration and result types of the XtraPuLP partitioner.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/backend.hpp"
#include "comm/shard_policy.hpp"
#include "util/types.hpp"

namespace xtra::core {

/// How part labels are seeded before the balance/refine stages.
enum class InitStrategy {
  kBfsGrowing,  ///< Algorithm 2: roots + BFS-like growth (paper default)
  kRandom,      ///< uniform random labels
  kBlock,       ///< contiguous gid blocks (used by Fig 8's analytics runs)
};

/// Partitioner parameters. Defaults are the paper's (Alg 1 and §III-C:
/// Iouter=3, Ibal=5, Iref=10, X=1.0, Y=0.25, 10% imbalance).
struct Params {
  part_t nparts = 2;
  double vert_imbalance = 0.10;  ///< Ratv of Eq (1)
  double edge_imbalance = 0.10;  ///< Rate of Eq (2)

  int outer_iters = 3;  ///< Iouter
  int bal_iters = 5;    ///< Ibal
  int ref_iters = 10;   ///< Iref

  /// Dynamic multiplier endpoints (§III-C): mult ramps linearly from
  /// nprocs*Y at iteration 0 to nprocs*X at iteration Itot.
  double mult_x = 1.0;
  double mult_y = 0.25;

  InitStrategy init = InitStrategy::kBfsGrowing;

  /// Run the second outer loop (edge balance + refinement). Disabled
  /// for the single-objective/single-constraint comparison of Fig 6.
  bool edge_phases = true;

  /// Ablation: weight balance-phase counts by neighbor degree (Alg 4's
  /// "counts(parts(u)) + degree(u)"); plain label counts otherwise.
  bool degree_weighted_balance = true;

  /// Ablation: at init, pick uniformly among the parts seen in the
  /// neighborhood (paper's choice) instead of the max-count label.
  bool init_random_among_assigned = true;

  /// Per-phase send-buffer cap for the ghost-update exchange, in bytes
  /// (0 = unbounded single Alltoallv). A positive value reproduces the
  /// paper's memory-bounded multi-phase communication; results are
  /// bit-identical for any value.
  count_t max_exchange_bytes = 0;

  /// Routing of the ghost-update exchange: flat alltoallv, or the
  /// two-level node-aware path (node-local gather, coalesced
  /// leader-to-leader alltoallv, node-local scatter). Results are
  /// bit-identical; hierarchical trades extra node-local hops for
  /// fewer inter-node messages. Same value required on every rank.
  comm::ShardPolicy shard_policy = comm::ShardPolicy::kFlat;

  /// Transport of the ghost-update exchange: two-sided matched sends
  /// (the default), or one-sided exposure windows the consumers pull
  /// from (the RMA/remote-fetch style). Results are bit-identical;
  /// same value required on every rank.
  comm::Backend backend = comm::Backend::kTwoSided;

  /// Supersteps a pipelined ghost refresh may stay in flight in the
  /// kernels built on graph::SuperstepPipeline (the analytics runs the
  /// benches drive alongside partitioning). 0 drains within the
  /// superstep — bit-identical to the blocking path; d >= 1 carries up
  /// to d refreshes across superstep boundaries for
  /// stale-ghost-tolerant kernels (PageRank, k-core), clamped to
  /// graph::kMaxPipelineDepth.
  int pipeline_depth = 0;

  /// Coalescing cadence for the engine-run analytics' sparse ghost
  /// refresh (engine::Config::coalesce_every): > 0 batches changed
  /// per-vertex values across that many supersteps in a
  /// comm::CoalescingExchanger before flushing. 0 keeps the full
  /// per-superstep halo refresh; 1 flushes every superstep
  /// (bit-identical to 0).
  int coalesce_every = 0;

  /// Intra-rank worker threads (the "+X" of MPI+X) for the chunked
  /// deterministic sweeps: the partitioner's vert/edge phases and the
  /// engine-run analytics. Results are byte-identical for any value
  /// (see util/parallel.hpp for the determinism contract); clamped to
  /// [1, par::kMaxThreads]. Same value required on every rank only for
  /// like-for-like timing — correctness never depends on it.
  int num_threads = 1;

  /// Out-of-core segment-cache budget in bytes for graphs whose
  /// adjacency has been moved behind graph::SegmentCache
  /// (DistGraph::enable_out_of_core). 0 = in-core (no cache). The
  /// budget is advisory plumbing for benches/tools — enabling the
  /// cache is an explicit collective on the graph, not something the
  /// partitioner does behind the caller's back; results are
  /// bit-identical for any budget.
  count_t cache_budget_bytes = 0;

  std::uint64_t seed = 1;
};

/// Partitioning outcome on one rank. `parts` covers owned vertices then
/// ghosts (ghost labels are consistent with their owners on return).
struct PartitionResult {
  std::vector<part_t> parts;
  part_t nparts = 0;

  double total_seconds = 0.0;
  double init_seconds = 0.0;
  double vert_stage_seconds = 0.0;
  double edge_stage_seconds = 0.0;
  count_t comm_bytes = 0;  ///< bytes this rank sent during partitioning
};

}  // namespace xtra::core
