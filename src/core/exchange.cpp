#include "core/exchange.hpp"

#include "util/assert.hpp"
#include "util/prefix_sum.hpp"

namespace xtra::core {

void exchange_updates(sim::Comm& comm, const graph::DistGraph& g,
                      std::vector<part_t>& parts,
                      const std::vector<lid_t>& queue) {
  const int nranks = comm.size();
  const int me = comm.rank();

  // Pass 1 (Alg 3): count records per destination. The `stamp` array is
  // the toSend mask, reused across vertices by stamping with the queue
  // index instead of clearing.
  std::vector<count_t> send_counts(static_cast<std::size_t>(nranks), 0);
  std::vector<std::size_t> stamp(static_cast<std::size_t>(nranks),
                                 ~std::size_t(0));
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const lid_t v = queue[qi];
    XTRA_DEBUG_ASSERT(g.is_owned(v));
    for (const lid_t u : g.neighbors(v)) {
      const int task = g.owner_of(u);
      if (task == me) continue;
      if (stamp[static_cast<std::size_t>(task)] != qi) {
        stamp[static_cast<std::size_t>(task)] = qi;
        ++send_counts[static_cast<std::size_t>(task)];
      }
    }
  }

  // Pass 2: fill the send buffer at prefix-summed offsets.
  std::vector<count_t> offsets = exclusive_prefix_sum(send_counts);
  std::vector<PartUpdate> send_buffer(
      static_cast<std::size_t>(offsets.back()));
  std::vector<count_t> cursor(offsets.begin(), offsets.end() - 1);
  std::fill(stamp.begin(), stamp.end(), ~std::size_t(0));
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const lid_t v = queue[qi];
    const gid_t gid = g.gid_of(v);
    const part_t part = parts[v];
    for (const lid_t u : g.neighbors(v)) {
      const int task = g.owner_of(u);
      if (task == me) continue;
      if (stamp[static_cast<std::size_t>(task)] != qi) {
        stamp[static_cast<std::size_t>(task)] = qi;
        send_buffer[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(task)]++)] = {gid, part};
      }
    }
  }

  const std::vector<PartUpdate> recv = comm.alltoallv(send_buffer, send_counts);

  // Apply to ghosts. A received gid must be a ghost here: the sender
  // saw one of our owned vertices in its neighborhood, so we see theirs.
  for (const PartUpdate& rec : recv) {
    const lid_t l = g.lid_of(rec.gid);
    XTRA_ASSERT_MSG(l != kInvalidLid && !g.is_owned(l),
                    "part update for a vertex that is not a local ghost");
    parts[l] = rec.part;
  }
}

}  // namespace xtra::core
