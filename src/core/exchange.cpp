#include "core/exchange.hpp"

#include "util/assert.hpp"

namespace xtra::core {

void UpdateExchanger::run(sim::Comm& comm, const graph::DistGraph& g,
                          std::vector<part_t>& parts,
                          const std::vector<lid_t>& queue) {
  start(comm, g, parts, queue);
  finish(comm, g, parts);
}

void UpdateExchanger::start(sim::Comm& comm, const graph::DistGraph& g,
                            const std::vector<part_t>& parts,
                            const std::vector<lid_t>& queue) {
  const int me = comm.rank();

  // Pass 1 (Alg 3): count records per destination, at most one per
  // (queued vertex, destination) — the stamp key is the queue index.
  buckets_.begin(comm.size());
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const lid_t v = queue[qi];
    XTRA_DEBUG_ASSERT(g.is_owned(v));
    for (const lid_t u : g.arcs(v)) {
      const int task = g.owner_of(u);
      if (task == me) continue;
      buckets_.count_once(task, qi);
    }
  }
  buckets_.commit();

  // Pass 2: fill the send buffer at prefix-summed offsets.
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const lid_t v = queue[qi];
    const gid_t gid = g.gid_of(v);
    const part_t part = parts[v];
    for (const lid_t u : g.arcs(v)) {
      const int task = g.owner_of(u);
      if (task == me) continue;
      buckets_.push_once(task, qi, {gid, part});
    }
  }

  // buckets_ is not touched again until the next start()'s begin(),
  // safely after the finish — slice it in place, no payload copy.
  ex_.start_inplace(comm, buckets_);
}

void UpdateExchanger::finish(sim::Comm& comm, const graph::DistGraph& g,
                             std::vector<part_t>& parts) {
  const std::span<const PartUpdate> recv = ex_.finish<PartUpdate>(comm);

  // Apply to ghosts. A received gid must be a ghost here: the sender
  // saw one of our owned vertices in its neighborhood, so we see theirs.
  for (const PartUpdate& rec : recv) {
    const lid_t l = g.lid_of(rec.gid);
    XTRA_ASSERT_MSG(l != kInvalidLid && !g.is_owned(l),
                    "part update for a vertex that is not a local ghost");
    parts[l] = rec.part;
  }
}

void exchange_updates(sim::Comm& comm, const graph::DistGraph& g,
                      std::vector<part_t>& parts,
                      const std::vector<lid_t>& queue) {
  UpdateExchanger scratch;
  scratch.run(comm, g, parts, queue);
}

}  // namespace xtra::core
