// PhaseScan — the scan/commit split that threads the partitioner's
// balance/refine sweeps without changing a single move decision.
//
// Every phase iterates owned vertices, counts the neighborhood's part
// labels, and moves the vertex where the phase's scoring says. The
// counting is the O(m) bulk of the iteration; the decision logic is
// cheap but order-sensitive (each move updates the change ledgers and
// weights the very next vertex reads). So the sweep splits:
//
//  * scan(): parallel, read-only. Every owned vertex's neighbor-part
//    counts are computed against the sweep-start labels on the rank's
//    thread pool (util/parallel.hpp) and cached as (part, weight)
//    entries in first-touch order, chunk by chunk. No writer exists
//    during the scan — ghost labels only change at the end-of-sweep
//    exchange, owned labels only in the commit — so the reads race
//    with nothing.
//  * commit (in the phase, serial): the ORIGINAL per-vertex selection
//    runs unchanged over materialized counts — replayed from the
//    cache when the vertex is clean, recounted live when an earlier
//    commit this sweep moved one of its counted neighbors (the phase
//    calls mark_moved() after each move). A clean vertex's cached
//    counts equal a live recount by construction, so the committed
//    trajectory is byte-identical to the historical serial sweep at
//    every thread count, including one.
//
// Why the dirty set is exact: vertex w's counts read parts[u] for
// u in neighbors(w), so w goes stale exactly when some moved v has
// w in in_neighbors(v) (== neighbors(v) for undirected graphs).
#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "core/state.hpp"
#include "graph/dist_graph.hpp"
#include "util/parallel.hpp"

namespace xtra::core {

class PhaseScan {
 public:
  using Entry = std::pair<part_t, double>;

  /// Neighbor weighting of the counts: Alg 4's degree weighting for
  /// the balance phases, plain label counts for refinement.
  enum class Weight { kUnit, kDegree };

  /// Parallel read-only pass: cache every owned vertex's neighbor-part
  /// counts against the current (sweep-start) labels and clear the
  /// dirty set. Not collective — purely rank-local.
  void scan(const graph::DistGraph& g, const std::vector<part_t>& parts,
            part_t nparts, Weight weight) {
    const auto n = static_cast<count_t>(g.n_local());
    const count_t nchunks = par::chunk_count(n);
    if (static_cast<count_t>(chunk_entries_.size()) < nchunks)
      chunk_entries_.resize(static_cast<std::size_t>(nchunks));
    loc_.resize(static_cast<std::size_t>(n));
    dirty_.assign(static_cast<std::size_t>(n), 0);
    if (nparts_ != nparts) {
      slots_.clear();
      nparts_ = nparts;
    }
    while (static_cast<int>(slots_.size()) < par::num_threads())
      slots_.emplace_back(nparts);
    weight_ = weight;
    const auto scan_chunk = [&](count_t c, count_t lo, count_t hi) {
      NeighborCounts& counts = slots_[static_cast<std::size_t>(
          par::current_slot())];  // lint-ok: per-slot scratch
      auto& out = chunk_entries_[static_cast<std::size_t>(c)];
      out.clear();
      for (count_t i = lo; i < hi; ++i) {
        const lid_t v = static_cast<lid_t>(i);
        counts.reset();
        count_neighbors(g, parts, v, counts);
        const auto off = static_cast<count_t>(out.size());
        for (const part_t pt : counts.touched())
          out.push_back({pt, counts.get(pt)});
        loc_[static_cast<std::size_t>(v)] = {
            off, static_cast<count_t>(out.size()) - off};
      }
    };
    if (g.out_of_core()) {
      // Segment borrows may issue substrate calls (remote backing),
      // which must stay on the rank thread — replay the exact chunk
      // decomposition serially so the cached layout is unchanged.
      for (count_t c = 0; c < nchunks; ++c)
        scan_chunk(c, c * par::kChunkGrain,
                   std::min(n, (c + 1) * par::kChunkGrain));
    } else {
      par::for_chunks(n, scan_chunk);
    }
  }

  /// Materialize v's neighbor-part counts for the commit pass: replay
  /// the cache when v is clean, recount live (exactly the historical
  /// loop) when an earlier commit this sweep dirtied it. Either way
  /// `counts` ends bit-identical to a live recount, including the
  /// touched order (first nonzero add wins, and a clean vertex's
  /// neighbor labels have not moved since the scan).
  void load(const graph::DistGraph& g, const std::vector<part_t>& parts,
            lid_t v, NeighborCounts& counts) const {
    counts.reset();
    if (dirty_[static_cast<std::size_t>(v)]) {
      count_neighbors(g, parts, v, counts);
      return;
    }
    for (const Entry& e : entries(v)) counts.add(e.first, e.second);
  }

  /// Record that v moved: every owned vertex whose counts include v
  /// must recount live from here on.
  void mark_moved(const graph::DistGraph& g, lid_t v) {
    for (const lid_t u : g.in_arcs(v))
      if (g.is_owned(u)) dirty_[static_cast<std::size_t>(u)] = 1;
  }

  bool dirty(lid_t v) const {
    return dirty_[static_cast<std::size_t>(v)] != 0;
  }

  /// Cached (part, weight) entries of v in first-touch order (valid
  /// while v is clean).
  std::span<const Entry> entries(lid_t v) const {
    const auto [off, len] = loc_[static_cast<std::size_t>(v)];
    const auto c =
        static_cast<std::size_t>(static_cast<count_t>(v) / par::kChunkGrain);
    return {chunk_entries_[c].data() + off, static_cast<std::size_t>(len)};
  }

 private:
  void count_neighbors(const graph::DistGraph& g,
                       const std::vector<part_t>& parts, lid_t v,
                       NeighborCounts& counts) const {
    if (weight_ == Weight::kDegree) {
      for (const lid_t u : g.arcs(v))
        counts.add(parts[u], static_cast<double>(g.degree(u)));
    } else {
      for (const lid_t u : g.arcs(v)) counts.add(parts[u], 1.0);
    }
  }

  Weight weight_ = Weight::kUnit;
  part_t nparts_ = -1;
  std::vector<NeighborCounts> slots_;  ///< per pool slot count scratch
  /// Cached entries, per scan chunk (chunk c covers lids
  /// [c*kChunkGrain, ...)); loc_[v] is (offset, length) into v's chunk.
  std::vector<std::vector<Entry>> chunk_entries_;
  std::vector<std::pair<count_t, count_t>> loc_;
  std::vector<std::uint8_t> dirty_;
};

}  // namespace xtra::core
