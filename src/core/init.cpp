#include "core/init.hpp"

#include <algorithm>

#include "core/exchange.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace xtra::core {

namespace {

/// Label every ghost from its owner (queue all owned vertices once).
void sync_all_ghosts(sim::Comm& comm, const graph::DistGraph& g,
                     std::vector<part_t>& parts) {
  std::vector<lid_t> all(g.n_local());
  for (lid_t v = 0; v < g.n_local(); ++v) all[v] = v;
  exchange_updates(comm, g, parts, all);
}

}  // namespace

std::vector<part_t> init_bfs_growing(sim::Comm& comm,
                                     const graph::DistGraph& g,
                                     const Params& params) {
  const part_t p = params.nparts;
  std::vector<part_t> parts(g.n_total(), kNoPart);

  // Master task picks p unique random roots and broadcasts them.
  std::vector<gid_t> roots;
  if (comm.rank() == 0) {
    Rng rng(params.seed, 0x1007);
    roots.reserve(static_cast<std::size_t>(p));
    // p << n in every sane configuration, so rejection sampling is fine.
    while (roots.size() < static_cast<std::size_t>(p)) {
      const gid_t r = rng.next_below(g.n_global());
      if (std::find(roots.begin(), roots.end(), r) == roots.end())
        roots.push_back(r);
    }
  }
  comm.bcast(roots);

  // Seed roots. (Algorithm 2 as printed never communicates the root
  // assignments themselves; we queue them into the first exchange so
  // cross-rank neighbors of a root can adopt its label — what the
  // reference implementation does.)
  std::vector<lid_t> queue;
  for (part_t i = 0; i < p; ++i) {
    if (g.owner_of_gid(roots[static_cast<std::size_t>(i)]) == comm.rank()) {
      const lid_t l = g.lid_of(roots[static_cast<std::size_t>(i)]);
      XTRA_ASSERT(l != kInvalidLid);
      if (parts[l] == kNoPart) {  // duplicate-root guard (p unique anyway)
        parts[l] = i;
        queue.push_back(l);
      }
    }
  }
  // Growth loops every superstep; keep one exchanger so its buffers
  // are reused across iterations (and honor the configured cap).
  UpdateExchanger exchanger(params.max_exchange_bytes);
  exchanger.set_backend(params.backend);
  exchanger.run(comm, g, parts, queue);

  Rng rng(params.seed, 0xB0075 + static_cast<std::uint64_t>(comm.rank()));
  std::vector<part_t> seen;  // distinct assigned parts in the neighborhood
  std::vector<count_t> seen_count(static_cast<std::size_t>(p), 0);

  count_t global_updates = 1;
  while (global_updates > 0) {
    count_t updates = 0;
    queue.clear();
    for (lid_t v = 0; v < g.n_local(); ++v) {
      if (parts[v] != kNoPart) continue;
      seen.clear();
      for (const lid_t u : g.arcs(v)) {
        const part_t pu = parts[u];
        if (pu == kNoPart) continue;
        if (seen_count[static_cast<std::size_t>(pu)] == 0) seen.push_back(pu);
        ++seen_count[static_cast<std::size_t>(pu)];
      }
      if (seen.empty()) continue;
      part_t w;
      if (params.init_random_among_assigned) {
        // Random among the parts present — "tends to result in slightly
        // more balanced partitions" (§III-B).
        w = seen[rng.next_below(seen.size())];
      } else {
        // Ablation: classic label propagation max-count choice.
        w = seen[0];
        for (const part_t cand : seen)
          if (seen_count[static_cast<std::size_t>(cand)] >
              seen_count[static_cast<std::size_t>(w)])
            w = cand;
      }
      for (const part_t cand : seen)
        seen_count[static_cast<std::size_t>(cand)] = 0;
      parts[v] = w;
      queue.push_back(v);
      ++updates;
    }
    exchanger.run(comm, g, parts, queue);
    global_updates = comm.allreduce_sum(updates);
  }

  // Anything still unassigned is unreachable from every root.
  queue.clear();
  for (lid_t v = 0; v < g.n_local(); ++v) {
    if (parts[v] == kNoPart) {
      parts[v] = static_cast<part_t>(rng.next_below(static_cast<std::uint64_t>(p)));
      queue.push_back(v);
    }
  }
  exchanger.run(comm, g, parts, queue);
  return parts;
}

std::vector<part_t> init_random(sim::Comm& comm, const graph::DistGraph& g,
                                const Params& params) {
  std::vector<part_t> parts(g.n_total(), kNoPart);
  // Hash the gid so the assignment is distribution-independent and any
  // rank could recompute it; ghosts are synced for uniformity.
  for (lid_t v = 0; v < g.n_local(); ++v)
    parts[v] = static_cast<part_t>(hash_to_bucket(
        g.gid_of(v), params.seed ^ 0xAB5, static_cast<std::uint64_t>(params.nparts)));
  sync_all_ghosts(comm, g, parts);
  return parts;
}

std::vector<part_t> init_block(sim::Comm& comm, const graph::DistGraph& g,
                               const Params& params) {
  std::vector<part_t> parts(g.n_total(), kNoPart);
  const auto n = static_cast<double>(g.n_global());
  for (lid_t v = 0; v < g.n_local(); ++v) {
    const auto frac = static_cast<double>(g.gid_of(v)) / n;
    parts[v] = std::min<part_t>(static_cast<part_t>(frac * params.nparts),
                                params.nparts - 1);
  }
  sync_all_ghosts(comm, g, parts);
  return parts;
}

std::vector<part_t> initialize_parts(sim::Comm& comm,
                                     const graph::DistGraph& g,
                                     const Params& params) {
  switch (params.init) {
    case InitStrategy::kBfsGrowing: return init_bfs_growing(comm, g, params);
    case InitStrategy::kRandom: return init_random(comm, g, params);
    case InitStrategy::kBlock: return init_block(comm, g, params);
  }
  XTRA_ASSERT_MSG(false, "unknown init strategy");
  return {};
}

}  // namespace xtra::core
