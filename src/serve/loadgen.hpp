// serve::LoadGen — deterministic open-loop query trace generation.
//
// Poisson arrivals (exponential inter-arrival gaps at rate_qps) and a
// configurable kind mix, all drawn from the seeded Rng so every rank
// computes the IDENTICAL trace locally: the trace is shared state the
// scheduler's rank-uniform admission decisions key on, and it must
// cost zero communication. Arrival times are virtual seconds
// (serve/clock.hpp); nothing here reads a wall clock (lint rule F).
#pragma once

#include <vector>

#include "serve/query.hpp"
#include "util/types.hpp"

namespace xtra::serve {

struct LoadGenConfig {
  count_t num_queries = 64;
  double rate_qps = 25.0;   ///< Poisson arrival rate, queries per
                            ///< virtual second
  std::uint64_t seed = 1;   ///< trace stream; same seed => same trace
  // Kind mix weights (any non-negative scale; normalized internally).
  double weight_lookup = 1.0;
  double weight_khop = 1.0;
  double weight_bfs = 1.0;
  double weight_ppr = 1.0;
  count_t khop_depth = 3;  ///< level cap stamped on kKHop queries
  count_t ppr_depth = 4;   ///< truncation depth stamped on kPpr queries
};

class LoadGen {
 public:
  /// Deterministic trace of cfg.num_queries queries with
  /// non-decreasing arrival_seconds and sources uniform in
  /// [0, n_global). Pure function of (cfg, n_global) — call it on
  /// every rank and hand the result to serve::Scheduler::run.
  static std::vector<Query> generate(const LoadGenConfig& cfg,
                                     gid_t n_global);
};

}  // namespace xtra::serve
