#include "serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/frontier.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace xtra::serve {

namespace {

constexpr count_t kNoQuery = -1;
constexpr count_t kUncapped = std::numeric_limits<count_t>::max();

/// Per-slot in-flight state. Everything here is rank-uniform except
/// the level plane it indexes in the scheduler's `levels` array.
struct Slot {
  count_t query = kNoQuery;  ///< index into the query list
  count_t cap = kUncapped;   ///< retire when this many levels ran
  count_t level = 0;         ///< completed expansion levels
  count_t supersteps = 0;    ///< ledger supersteps occupied
  count_t reached = 0;       ///< global marks so far (source included)
  count_t frontier = 0;      ///< global frontier size entering the step
  double score = 0.0;        ///< truncated-RWR mass (kPpr)
  double weight = 0.0;       ///< next level's RWR factor alpha*(1-a)^l
  bool active() const { return query != kNoQuery; }
};

/// Nearest-rank percentile of an ascending latency list.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n));
  idx = idx > 0 ? idx - 1 : 0;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

std::vector<QueryResult> Scheduler::run(sim::Comm& comm,
                                        const graph::DistGraph& g,
                                        const std::vector<Query>& queries) {
  par::ThreadScope threads(cfg_.engine.num_threads);
  const count_t budget = cfg_.slot_budget;
  XTRA_ASSERT(budget > 0);
  const count_t n = static_cast<count_t>(queries.size());
  for (count_t i = 1; i < n; ++i)
    XTRA_ASSERT(queries[static_cast<std::size_t>(i)].arrival_seconds >=
                queries[static_cast<std::size_t>(i - 1)].arrival_seconds);

  std::vector<QueryResult> results(queries.size());
  stats_ = ServeStats{};
  stats_.num_queries = n;
  if (n == 0) return results;

  graph::MultiSourceStepper<gid_t> stepper(cfg_.engine.max_exchange_bytes,
                                           cfg_.engine.shard_policy,
                                           cfg_.engine.backend);
  const lid_t stride = g.n_total();
  // Slot-major level planes, reset per admission (slot reuse).
  std::vector<count_t> levels(
      static_cast<std::size_t>(budget) * static_cast<std::size_t>(stride),
      kUncapped);
  const auto level_cell = [stride](count_t slot, lid_t l) {
    return static_cast<std::size_t>(slot) * stride +
           static_cast<std::size_t>(l);
  };

  std::vector<Slot> slots(static_cast<std::size_t>(budget));
  std::vector<graph::SlotVertex> frontier, next;
  // Owner-local point-lookup payloads, folded into the next ledger.
  std::vector<count_t> aux(static_cast<std::size_t>(budget), 0);
  // Ledger layout: [0, budget) new global marks per slot,
  // [budget, 2*budget) lookup payloads, then the sweep's edge count
  // and the exchange's payload bytes. One allreduce per superstep
  // carries every rank-uniform decision input.
  std::vector<count_t> ledger;
  const std::size_t ix_edges = static_cast<std::size_t>(2 * budget);
  const std::size_t ix_bytes = ix_edges + 1;

  VirtualClock clock;
  count_t next_query = 0;   // admission cursor (arrival order)
  count_t completed = 0;
  count_t active = 0;
  count_t busy_slotsteps = 0;
  count_t bytes_seen = stepper.exchanger().stats().bytes_sent;

  const auto admit = [&](count_t qi, count_t s) {
    const Query& q = queries[static_cast<std::size_t>(qi)];
    XTRA_ASSERT(q.source < g.n_global());
    Slot& sl = slots[static_cast<std::size_t>(s)];
    sl = Slot{};
    sl.query = qi;
    QueryResult& r = results[static_cast<std::size_t>(qi)];
    r.kind = q.kind;
    r.arrival_seconds = q.arrival_seconds;
    r.start_seconds = clock.now();
    switch (q.kind) {
      case QueryKind::kPointLookup:
        sl.cap = 0;
        break;
      case QueryKind::kKHop:
        sl.cap = q.depth;
        break;
      case QueryKind::kBfs:
        sl.cap = kUncapped;
        break;
      case QueryKind::kPpr:
        sl.cap = q.depth;
        sl.weight = cfg_.ppr_alpha;
        sl.score = cfg_.ppr_alpha;  // level-0 term: the source itself
        break;
    }
    if (q.kind == QueryKind::kPointLookup) {
      // Never touches the frontier: the owner folds the degree into
      // the next ledger superstep and the slot retires with it.
      if (g.owner_of_gid(q.source) == comm.rank()) {
        const lid_t l = g.lid_of(q.source);
        XTRA_ASSERT(l != kInvalidLid);
        aux[static_cast<std::size_t>(s)] = g.degree(l);
      }
      return;
    }
    // Seed the traversal. Every rank knows the source exists, so the
    // slot's global frontier size (1) and reached count (1) need no
    // collective. A cap of 0 retires at the next ledger superstep
    // with just the source counted.
    std::fill(levels.begin() + static_cast<std::ptrdiff_t>(level_cell(s, 0)),
              levels.begin() +
                  static_cast<std::ptrdiff_t>(level_cell(s, 0) + stride),
              kUncapped);
    sl.reached = 1;
    if (sl.cap > 0) {
      sl.frontier = 1;
      if (g.owner_of_gid(q.source) == comm.rank()) {
        const lid_t l = g.lid_of(q.source);
        XTRA_ASSERT(l != kInvalidLid);
        levels[level_cell(s, l)] = 0;
        frontier.push_back({s, l});
      }
    }
  };

  while (completed < n) {
    // Idle: with zero in-flight queries nothing is on the wire — jump
    // the clock to the next arrival (pure local arithmetic; every
    // rank reads the same trace).
    if (active == 0) {
      XTRA_ASSERT(next_query < n);
      clock.advance_to(
          queries[static_cast<std::size_t>(next_query)].arrival_seconds);
    }
    // Admission + backfill: due queries fill free slots in arrival
    // order, lowest slot id first. Queries arriving mid-superstep
    // wait for this boundary — the clock only moves in superstep
    // grains while slots are busy.
    for (count_t s = 0; s < budget && next_query < n; ++s) {
      if (slots[static_cast<std::size_t>(s)].active()) continue;
      if (queries[static_cast<std::size_t>(next_query)].arrival_seconds >
          clock.now())
        break;
      admit(next_query++, s);
      ++active;
    }
    XTRA_ASSERT(active > 0);

    // One packed superstep. The sweep + exchange run only when some
    // slot actually has a frontier (rank-uniform knowledge: global
    // frontier sizes come from the previous ledger); a ledger-only
    // superstep still bills alpha and delivers lookup payloads.
    count_t total_frontier = 0;
    for (const Slot& sl : slots)
      if (sl.active()) total_frontier += sl.frontier;
    count_t edges = 0;
    if (total_frontier > 0) {
      stepper.step(
          comm, g, budget, frontier, next,
          [&](count_t /*slot*/, lid_t v) { return g.arcs(v); },
          [&](count_t slot, lid_t /*v*/, lid_t u) {
            return levels[level_cell(slot, u)] == kUncapped;
          },
          [&](count_t slot, lid_t /*v*/, lid_t u) {
            count_t& lv = levels[level_cell(slot, u)];
            if (lv != kUncapped) return false;
            lv = slots[static_cast<std::size_t>(slot)].level + 1;
            return true;
          },
          [&](count_t /*slot*/, lid_t l) { return g.gid_of(l); },
          [&](count_t slot, const gid_t& gid) {
            const lid_t l = g.lid_of(gid);
            XTRA_ASSERT(l != kInvalidLid && g.is_owned(l));
            count_t& lv = levels[level_cell(slot, l)];
            if (lv != kUncapped) return kInvalidLid;
            lv = slots[static_cast<std::size_t>(slot)].level + 1;
            return l;
          });
      edges = stepper.scanned_edges();
    } else {
      next.clear();
    }

    ledger.assign(ix_bytes + 1, 0);
    for (const graph::SlotVertex& e : next)
      ++ledger[static_cast<std::size_t>(e.slot)];
    for (count_t s = 0; s < budget; ++s) {
      ledger[static_cast<std::size_t>(budget + s)] =
          aux[static_cast<std::size_t>(s)];
      aux[static_cast<std::size_t>(s)] = 0;
    }
    ledger[ix_edges] = edges;
    const count_t bytes_now = stepper.exchanger().stats().bytes_sent;
    ledger[ix_bytes] = bytes_now - bytes_seen;
    bytes_seen = bytes_now;
    comm.allreduce_sum(ledger);

    clock.advance_superstep(ledger[ix_bytes], ledger[ix_edges]);
    ++stats_.supersteps;
    busy_slotsteps += active;

    // Retirement + accounting, all from the allreduced ledger.
    for (count_t s = 0; s < budget; ++s) {
      Slot& sl = slots[static_cast<std::size_t>(s)];
      if (!sl.active()) continue;
      ++sl.supersteps;
      const Query& q = queries[static_cast<std::size_t>(sl.query)];
      bool done = false;
      count_t value = 0;
      if (q.kind == QueryKind::kPointLookup) {
        value = ledger[static_cast<std::size_t>(budget + s)];
        done = true;
      } else {
        const count_t marks = ledger[static_cast<std::size_t>(s)];
        if (sl.frontier > 0) {
          ++sl.level;
          sl.reached += marks;
          if (q.kind == QueryKind::kPpr) {
            sl.weight *= 1.0 - cfg_.ppr_alpha;
            sl.score += sl.weight * static_cast<double>(marks);
          }
          sl.frontier = marks;
        }
        done = sl.frontier == 0 || sl.level >= sl.cap;
        value = sl.reached;
      }
      if (!done) continue;
      QueryResult& r = results[static_cast<std::size_t>(sl.query)];
      r.value = value;
      r.score = sl.score;
      r.supersteps = sl.supersteps;
      r.finish_seconds = clock.now();
      sl.query = kNoQuery;
      --active;
      ++completed;
    }

    // Drop retired slots' tail entries and roll the frontier.
    frontier.clear();
    for (const graph::SlotVertex& e : next)
      if (slots[static_cast<std::size_t>(e.slot)].active())
        frontier.push_back(e);
  }

  // Latency ledger, identical on every rank.
  std::vector<double> latencies;
  latencies.reserve(results.size());
  count_t query_supersteps = 0;
  for (const QueryResult& r : results) {
    latencies.push_back(r.latency_seconds());
    query_supersteps += r.supersteps;
  }
  std::sort(latencies.begin(), latencies.end());
  stats_.virtual_seconds = clock.now();
  stats_.p50_latency = percentile(latencies, 0.50);
  stats_.p95_latency = percentile(latencies, 0.95);
  stats_.p99_latency = percentile(latencies, 0.99);
  stats_.queries_per_sec =
      clock.now() > 0.0 ? static_cast<double>(n) / clock.now() : 0.0;
  stats_.slot_occupancy =
      stats_.supersteps > 0
          ? static_cast<double>(busy_slotsteps) /
                static_cast<double>(stats_.supersteps * budget)
          : 0.0;
  stats_.supersteps_per_query =
      static_cast<double>(query_supersteps) / static_cast<double>(n);
  return results;
}

}  // namespace xtra::serve
