// The serving subsystem's virtual clock (DESIGN.md §10).
//
// Latency under simulated MPI cannot come from wall time — wall time
// varies with thread width, sanitizers, and host load, and the serve
// determinism contract promises byte-identical per-query latencies
// for the same seed + config. So the scheduler advances a virtual
// clock from rank-uniform inputs only: the substrate's alpha-beta
// wire model (sim::kModelAlphaSeconds / kModelBytesPerSecond, the
// same constants behind CommStats::exposed_seconds) applied to the
// world's exchanged payload bytes, plus a per-edge compute charge for
// the superstep's adjacency sweep. Both inputs arrive through the
// scheduler's per-superstep ledger allreduce, so every rank's clock
// reads identically at every instant a decision is made.
//
// lint rule F enforces the other half of the contract: nothing in
// src/serve/ may read a wall clock or a thread id.
#pragma once

#include "mpisim/comm.hpp"
#include "util/types.hpp"

namespace xtra::serve {

/// Modeled compute cost of visiting one adjacency entry during a
/// packed superstep sweep (10M edges/s — the same order as the wire
/// model's 1MB/s beta, so neither term degenerates to noise).
inline constexpr double kComputeSecondsPerEdge = 1e-7;

/// Fixed per-superstep overhead: the latency term of the alpha-beta
/// model, charged once per packed superstep no matter how many slots
/// share it — sharing this alpha is precisely what superstep packing
/// amortizes.
inline constexpr double kSuperstepAlphaSeconds = sim::kModelAlphaSeconds;

class VirtualClock {
 public:
  double now() const { return now_; }

  /// Bill one packed superstep: alpha + world wire bytes / beta +
  /// world adjacency entries * per-edge charge. Inputs must be
  /// rank-uniform (allreduced) — the clock IS the schedule.
  void advance_superstep(count_t world_wire_bytes, count_t world_edges) {
    now_ += kSuperstepAlphaSeconds +
            static_cast<double>(world_wire_bytes) / sim::kModelBytesPerSecond +
            static_cast<double>(world_edges) * kComputeSecondsPerEdge;
  }

  /// Idle jump to the next open-loop arrival (never backwards).
  void advance_to(double t) {
    if (t > now_) now_ = t;
  }

 private:
  double now_ = 0.0;
};

}  // namespace xtra::serve
