// The serve subsystem's query model (DESIGN.md §10).
//
// A query is one tenant request against the partitioned graph. Every
// kind rides the same machinery — a slot of the batched multi-source
// frontier (graph::MultiSourceStepper) driven superstep by superstep
// by serve::Scheduler — differing only in its level cap and in how
// the per-level global mark counts fold into a result:
//
//   kPointLookup  degree of the source vertex; occupies its slot for
//                 one ledger superstep and never touches the frontier.
//   kKHop         |{v : dist(source, v) <= depth}| — BFS capped at
//                 `depth` levels.
//   kBfs          full reachability: reached count + eccentricity
//                 supersteps (depth ignored; the frontier runs dry).
//   kPpr          truncated random-walk-with-restart mass: marks at
//                 level l weigh alpha * (1-alpha)^l, summed to `depth`
//                 levels — a deterministic personalized-PageRank proxy
//                 computable from the same per-level global counts.
//
// Every time in this header is VIRTUAL seconds — the scheduler's
// deterministic clock (serve/clock.hpp), never wall clock. Same seed
// + same config => byte-identical per-query latencies at any thread
// width and on either wire backend.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace xtra::serve {

enum class QueryKind : std::uint8_t { kPointLookup, kKHop, kBfs, kPpr };

struct Query {
  QueryKind kind = QueryKind::kBfs;
  gid_t source = 0;  ///< must be < n_global (every gid has an owner)
  /// Level cap for kKHop / kPpr (0 = the source alone); ignored by
  /// kPointLookup and kBfs.
  count_t depth = 0;
  double arrival_seconds = 0.0;  ///< open-loop virtual arrival time
};

/// Rank-uniform outcome of one query: every rank computes the
/// identical result because everything below derives from the shared
/// per-superstep ledger allreduce.
struct QueryResult {
  QueryKind kind = QueryKind::kBfs;
  count_t value = 0;   ///< lookup: degree; khop/bfs/ppr: reached count
  double score = 0.0;  ///< kPpr only: truncated RWR mass
  count_t supersteps = 0;  ///< supersteps the query occupied a slot
  double arrival_seconds = 0.0;
  double start_seconds = 0.0;   ///< admission into a slot
  double finish_seconds = 0.0;  ///< retirement (end of last superstep)
  double latency_seconds() const { return finish_seconds - arrival_seconds; }
};

}  // namespace xtra::serve
