#include "serve/loadgen.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace xtra::serve {

std::vector<Query> LoadGen::generate(const LoadGenConfig& cfg,
                                     gid_t n_global) {
  XTRA_ASSERT(n_global > 0);
  XTRA_ASSERT(cfg.rate_qps > 0.0);
  const double wsum = cfg.weight_lookup + cfg.weight_khop + cfg.weight_bfs +
                      cfg.weight_ppr;
  XTRA_ASSERT(wsum > 0.0);

  // One fixed stream (not per rank): the trace is shared state.
  Rng rng(cfg.seed, 0x10adULL);
  std::vector<Query> queries;
  queries.reserve(static_cast<std::size_t>(cfg.num_queries));
  double t = 0.0;
  for (count_t i = 0; i < cfg.num_queries; ++i) {
    // Exponential gap: -ln(1 - u) / rate, u in [0, 1) so the log
    // argument stays in (0, 1].
    t += -std::log1p(-rng.next_double()) / cfg.rate_qps;
    Query q;
    q.arrival_seconds = t;
    const double pick = rng.next_double() * wsum;
    if (pick < cfg.weight_lookup) {
      q.kind = QueryKind::kPointLookup;
    } else if (pick < cfg.weight_lookup + cfg.weight_khop) {
      q.kind = QueryKind::kKHop;
      q.depth = cfg.khop_depth;
    } else if (pick < cfg.weight_lookup + cfg.weight_khop + cfg.weight_bfs) {
      q.kind = QueryKind::kBfs;
    } else {
      q.kind = QueryKind::kPpr;
      q.depth = cfg.ppr_depth;
    }
    q.source = rng.next_below(n_global);
    queries.push_back(q);
  }
  return queries;
}

}  // namespace xtra::serve
