// serve::Scheduler — the multi-tenant superstep-packing query engine
// (DESIGN.md §10).
//
// The scheduler turns the batch engine into a serving system: an
// admission queue of open-loop queries (serve::Query, arrival-ordered)
// is packed into shared supersteps of ONE graph::MultiSourceStepper,
// up to `slot_budget` concurrent slots. Each packed superstep is one
// adjacency sweep + one exchange for every in-flight traversal, then
// one ledger allreduce that carries, for every slot, the number of
// vertices newly marked this level (plus the point-lookup degree
// payload, the sweep's edge count, and the exchange's payload bytes).
// From that single collective every rank uniformly:
//   * advances the virtual clock (serve/clock.hpp),
//   * retires slots whose frontier ran dry or whose level cap was
//     reached — mid-run, freeing the slot immediately,
//   * backfills freed slots from the queue in arrival order, and
//   * folds per-level counts into results (reached counts, RWR mass).
//
// Determinism contract: every decision above is a pure function of
// the shared query list and allreduced counters, so all ranks run the
// identical collective sequence (the verifier's lockstep checker
// stays green) and per-query latencies are byte-identical at any
// thread width and on either wire backend. With zero in-flight
// queries the scheduler issues NO collectives at all — idle gaps are
// a clock jump to the next arrival, not a polling loop.
#pragma once

#include <vector>

#include "engine/config.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "serve/clock.hpp"
#include "serve/query.hpp"

namespace xtra::serve {

struct ServeConfig {
  /// Transport knobs for the packed frontier exchange (shard policy,
  /// backend, max_exchange_bytes, num_threads). Pipeline/coalesce
  /// fields are dense-mode knobs and ignored here.
  engine::Config engine;
  /// Concurrent query slots: the packing width of a superstep. 1
  /// degenerates into per-query serial execution (the bench twin the
  /// CI contract compares against).
  count_t slot_budget = 8;
  /// Restart probability of the truncated-RWR PPR scoring.
  double ppr_alpha = 0.15;
};

/// Aggregate latency ledger of one Scheduler::run (virtual seconds).
struct ServeStats {
  count_t num_queries = 0;
  count_t supersteps = 0;        ///< packed supersteps executed
  double virtual_seconds = 0.0;  ///< clock at the last retirement
  double p50_latency = 0.0;
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  double queries_per_sec = 0.0;
  /// Busy slot-supersteps / (supersteps * slot_budget): how full the
  /// packing kept the budget.
  double slot_occupancy = 0.0;
  double supersteps_per_query = 0.0;
};

class Scheduler {
 public:
  explicit Scheduler(const ServeConfig& cfg) : cfg_(cfg) {}

  /// Collective: serve every query, returning per-query results in
  /// input order. `queries` must be arrival-ordered (LoadGen traces
  /// are) and identical on every rank. Every rank returns identical
  /// results and stats.
  std::vector<QueryResult> run(sim::Comm& comm, const graph::DistGraph& g,
                               const std::vector<Query>& queries);

  /// Ledger of the last run().
  const ServeStats& stats() const { return stats_; }

 private:
  ServeConfig cfg_;
  ServeStats stats_;
};

}  // namespace xtra::serve
