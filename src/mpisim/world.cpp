#include <exception>
#include <mutex>
#include <thread>

#include "mpisim/comm.hpp"

namespace xtra::sim {

void run_world(int nranks, const std::function<void(Comm&)>& fn,
               int ranks_per_node) {
  XTRA_ASSERT_MSG(nranks >= 1, "world needs at least one rank");

  detail::WorldState world(nranks, ranks_per_node);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto rank_main = [&](int rank) {
    Comm comm(&world, rank);
    try {
      fn(comm);
      // Leak + final-lockstep checks (no-op unless XTRA_VERIFY_COMM):
      // inside the try so an attributed ProtocolError unwinds the
      // world exactly like a failure in fn itself.
      comm.verify_end_of_world();
    } catch (const WorldAborted&) {
      // Cascade from a peer's failure: the root cause was already
      // recorded (abandon() publishes the failed flag only after the
      // originating rank stored its exception), so just exit cleanly.
      world.abandon();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      world.abandon();
    }
  };

  if (nranks == 1) {
    rank_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) threads.emplace_back(rank_main, r);
    for (auto& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace xtra::sim
