// Simulated message-passing runtime (the "MPI" substrate).
//
// The paper runs XtraPuLP as MPI+OpenMP on up to 8192 nodes of Blue
// Waters. This environment has no MPI and a single core, so — per the
// documented substitution in DESIGN.md — we provide an in-process
// runtime with the same semantics: each *rank* is a std::thread with
// private data, and ranks may exchange data only through the
// collectives below. Because XtraPuLP is bulk-synchronous (local
// compute + Alltoallv + Allreduce per iteration), running the identical
// program over this runtime exercises the same distribution logic,
// ghost-update protocol, and oscillation behaviour as real MPI; only
// absolute wall-clock changes.
//
// Provided collectives (blocking, matching MPI semantics):
//   barrier, bcast, allreduce(sum/max/min), alltoall, alltoallv,
//   gatherv, allgatherv, scan-free reductions of scalars;
// plus a nonblocking alltoallv pair (alltoallv_bytes_start/finish,
// the MPI_Ialltoallv/MPI_Wait shape) so callers can overlap local
// compute with an in-flight exchange. Blocking collectives may run
// between the two halves; at most one exchange is in flight per rank.
//
// Every collective accounts the bytes a real MPI rank would put on the
// wire (self-destined data is free), so benches can report
// communication volume — the architecture-independent component of the
// paper's timing results.
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <vector>

#include "util/assert.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace xtra::sim {

/// Thrown on ranks that reach a collective after another rank failed;
/// unwinds the whole world cleanly instead of deadlocking.
struct WorldAborted : std::runtime_error {
  WorldAborted() : std::runtime_error("mpisim world aborted by peer rank") {}
};

/// Per-rank communication statistics.
struct CommStats {
  count_t bytes_sent = 0;      ///< payload bytes leaving this rank
  count_t messages_sent = 0;   ///< point-to-point segments with data
  count_t collectives = 0;     ///< collective invocations
  double comm_seconds = 0.0;   ///< wall time inside collectives
};

namespace detail {

/// Shared state for one world of ranks. Internal to the runtime.
class WorldState {
 public:
  explicit WorldState(int nranks, int ranks_per_node = 1)
      : nranks_(nranks),
        ranks_per_node_(std::clamp(ranks_per_node, 1, nranks)),
        barrier_(nranks),
        slots_(static_cast<std::size_t>(nranks)),
        aux_slots_(static_cast<std::size_t>(nranks)),
        size_slots_(static_cast<std::size_t>(nranks), 0),
        async_slots_(static_cast<std::size_t>(nranks)),
        async_aux_slots_(static_cast<std::size_t>(nranks)),
        stats_(static_cast<std::size_t>(nranks)) {}

  int nranks() const { return nranks_; }
  int ranks_per_node() const { return ranks_per_node_; }

  /// Barrier that converts a peer failure into WorldAborted.
  void sync() {
    barrier_.arrive_and_wait();
    if (failed_.load(std::memory_order_acquire)) throw WorldAborted{};
  }

  /// Called exactly once by a rank that is exiting with an exception:
  /// marks the world failed and permanently removes the rank from the
  /// barrier so surviving ranks cannot deadlock.
  void abandon() {
    failed_.store(true, std::memory_order_release);
    barrier_.arrive_and_drop();
  }

  const void*& slot(int rank) { return slots_[static_cast<std::size_t>(rank)]; }
  const void*& aux_slot(int rank) {
    return aux_slots_[static_cast<std::size_t>(rank)];
  }
  std::size_t& size_slot(int rank) {
    return size_slots_[static_cast<std::size_t>(rank)];
  }
  const void*& async_slot(int rank) {
    return async_slots_[static_cast<std::size_t>(rank)];
  }
  const void*& async_aux_slot(int rank) {
    return async_aux_slots_[static_cast<std::size_t>(rank)];
  }
  CommStats& stats(int rank) { return stats_[static_cast<std::size_t>(rank)]; }

 private:
  int nranks_;
  int ranks_per_node_;
  std::barrier<> barrier_;
  std::atomic<bool> failed_{false};
  // Publication slots: each rank writes only its own entry between the
  // two barriers of a collective, so no locking is needed.
  std::vector<const void*> slots_;
  std::vector<const void*> aux_slots_;
  std::vector<std::size_t> size_slots_;
  // Dedicated slots for the one in-flight nonblocking alltoallv per
  // rank: a pending alltoallv_bytes_start stays published across any
  // interleaved blocking collectives (which use the slots above).
  std::vector<const void*> async_slots_;
  std::vector<const void*> async_aux_slots_;
  std::vector<CommStats> stats_;
};

}  // namespace detail

/// Handle through which one rank participates in its world. Move-only
/// view; cheap to pass by reference into algorithm code.
class Comm {
 public:
  Comm(detail::WorldState* world, int rank) : world_(world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->nranks(); }
  bool is_root() const { return rank_ == 0; }

  // --- Node topology view --------------------------------------------
  // Ranks are grouped into "nodes" of ranks_per_node consecutive ranks
  // (the last node may be smaller); run_world picks the grouping. A
  // node's leader is its lowest rank. The hierarchical exchange routes
  // inter-node traffic through leaders; everything else ignores the
  // grouping (the default is one rank per node).
  int ranks_per_node() const { return world_->ranks_per_node(); }
  int node_of(int rank) const { return rank / ranks_per_node(); }
  int my_node() const { return node_of(rank_); }
  int node_count() const {
    return (size() + ranks_per_node() - 1) / ranks_per_node();
  }
  /// Lowest rank of `node` — its leader.
  int node_leader(int node) const { return node * ranks_per_node(); }
  bool is_node_leader() const { return rank_ % ranks_per_node() == 0; }
  /// Half-open rank range [begin, end) of `node`.
  int node_begin(int node) const { return node * ranks_per_node(); }
  int node_end(int node) const {
    return std::min(size(), (node + 1) * ranks_per_node());
  }

  /// Block until every rank in the world reaches the barrier.
  void barrier() {
    Timer t;
    world_->sync();
    note(0, 0, t);
  }

  /// Broadcast `data` from `root` to all ranks (resizing receivers).
  template <typename T>
  void bcast(std::vector<T>& data, int root = 0) {
    Timer t;
    if (rank_ == root) {
      world_->slot(root) = data.data();
      world_->size_slot(root) = data.size();
    }
    world_->sync();
    if (rank_ != root) {
      data.resize(world_->size_slot(root));
      std::memcpy(data.data(), world_->slot(root), data.size() * sizeof(T));
    }
    world_->sync();
    note(rank_ == root ? static_cast<count_t>(data.size() * sizeof(T)) *
                             (size() - 1)
                       : 0,
         rank_ == root ? size() - 1 : 0, t);
  }

  /// Broadcast a single trivially-copyable value from root.
  template <typename T>
  T bcast_value(T value, int root = 0) {
    std::vector<T> v{value};
    bcast(v, root);
    return v[0];
  }

  /// Element-wise in-place allreduce over equal-length vectors.
  /// `op` must be associative and commutative, e.g. std::plus<>{}.
  template <typename T, typename Op>
  void allreduce(std::vector<T>& data, Op op) {
    Timer t;
    world_->slot(rank_) = data.data();
    world_->size_slot(rank_) = data.size();
    world_->sync();
    std::vector<T> acc(data.size());
    for (int r = 0; r < size(); ++r) {
      XTRA_ASSERT_MSG(world_->size_slot(r) == data.size(),
                      "allreduce length mismatch across ranks");
      const T* src = static_cast<const T*>(world_->slot(r));
      if (r == 0) {
        std::copy(src, src + data.size(), acc.begin());
      } else {
        for (std::size_t i = 0; i < data.size(); ++i)
          acc[i] = op(acc[i], src[i]);
      }
    }
    world_->sync();
    data = std::move(acc);
    // Ring-allreduce cost model: every rank sends its payload once
    // (nothing goes on the wire in a single-rank world).
    note(size() > 1 ? static_cast<count_t>(data.size() * sizeof(T)) : 0,
         size() > 1 ? 1 : 0, t);
  }

  template <typename T>
  void allreduce_sum(std::vector<T>& data) {
    allreduce(data, std::plus<T>{});
  }
  template <typename T>
  void allreduce_max(std::vector<T>& data) {
    allreduce(data, [](T a, T b) { return a > b ? a : b; });
  }
  template <typename T>
  void allreduce_min(std::vector<T>& data) {
    allreduce(data, [](T a, T b) { return a < b ? a : b; });
  }

  template <typename T>
  T allreduce_sum(T value) {
    std::vector<T> v{value};
    allreduce_sum(v);
    return v[0];
  }
  template <typename T>
  T allreduce_max(T value) {
    std::vector<T> v{value};
    allreduce_max(v);
    return v[0];
  }
  template <typename T>
  T allreduce_min(T value) {
    std::vector<T> v{value};
    allreduce_min(v);
    return v[0];
  }

  /// Logical AND/OR reductions for convergence tests.
  bool allreduce_and(bool value) {
    return allreduce_min<std::uint8_t>(value ? 1 : 0) != 0;
  }
  bool allreduce_or(bool value) {
    return allreduce_max<std::uint8_t>(value ? 1 : 0) != 0;
  }

  /// MPI_Alltoall with exactly one element per destination rank.
  /// send.size() == size(); result[r] is what rank r sent to us.
  template <typename T>
  std::vector<T> alltoall(const std::vector<T>& send) {
    XTRA_ASSERT(send.size() == static_cast<std::size_t>(size()));
    Timer t;
    world_->slot(rank_) = send.data();
    world_->sync();
    std::vector<T> recv(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r)
      recv[static_cast<std::size_t>(r)] =
          static_cast<const T*>(world_->slot(r))[rank_];
    world_->sync();
    note(static_cast<count_t>((size() - 1) * sizeof(T)), size() - 1, t);
    return recv;
  }

  /// MPI_Alltoallv. sendcounts[r] elements destined for rank r are laid
  /// out contiguously in `send` (offsets are the prefix sums of
  /// sendcounts). Returns the concatenated segments received from ranks
  /// 0..size()-1; if `recvcounts_out` is non-null it receives the
  /// per-source counts.
  template <typename T>
  std::vector<T> alltoallv(const std::vector<T>& send,
                           const std::vector<count_t>& sendcounts,
                           std::vector<count_t>* recvcounts_out = nullptr) {
    XTRA_ASSERT(sendcounts.size() == static_cast<std::size_t>(size()));
    Timer t;
    std::vector<count_t> sendoffsets(sendcounts.size() + 1, 0);
    for (std::size_t i = 0; i < sendcounts.size(); ++i)
      sendoffsets[i + 1] = sendoffsets[i] + sendcounts[i];
    XTRA_ASSERT_MSG(
        static_cast<std::size_t>(sendoffsets.back()) == send.size(),
        "alltoallv sendcounts must sum to send buffer length");

    world_->slot(rank_) = send.data();
    world_->aux_slot(rank_) = sendcounts.data();
    world_->sync();

    std::vector<count_t> recvcounts(static_cast<std::size_t>(size()));
    count_t total = 0;
    for (int r = 0; r < size(); ++r) {
      const auto* counts = static_cast<const count_t*>(world_->aux_slot(r));
      recvcounts[static_cast<std::size_t>(r)] = counts[rank_];
      total += counts[rank_];
    }
    std::vector<T> recv(static_cast<std::size_t>(total));
    count_t out = 0;
    for (int r = 0; r < size(); ++r) {
      const auto* counts = static_cast<const count_t*>(world_->aux_slot(r));
      count_t offset = 0;
      for (int q = 0; q < rank_; ++q) offset += counts[q];
      const T* src = static_cast<const T*>(world_->slot(r)) + offset;
      std::copy(src, src + counts[rank_], recv.begin() + out);
      out += counts[rank_];
    }
    world_->sync();

    count_t bytes = 0;
    count_t msgs = 0;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      if (sendcounts[static_cast<std::size_t>(r)] > 0) {
        bytes += sendcounts[static_cast<std::size_t>(r)] *
                 static_cast<count_t>(sizeof(T));
        ++msgs;
      }
    }
    note(bytes, msgs, t);
    if (recvcounts_out) *recvcounts_out = std::move(recvcounts);
    return recv;
  }

  /// Untyped MPI_Alltoallv over elements of `elem_size` bytes — the
  /// primitive the comm layer's Exchanger builds on. Semantics match
  /// the typed overload above, but the receive buffer is a reusable
  /// byte vector (resized, so steady-state callers keep its capacity).
  /// Returns the number of elements received.
  count_t alltoallv_bytes(const void* send, std::size_t elem_size,
                          const std::vector<count_t>& sendcounts,
                          std::vector<std::byte>& recv,
                          std::vector<count_t>* recvcounts_out = nullptr) {
    XTRA_ASSERT(sendcounts.size() == static_cast<std::size_t>(size()));
    Timer t;
#ifndef NDEBUG
    count_t send_total = 0;
    for (const count_t c : sendcounts) send_total += c;
    XTRA_ASSERT_MSG(send_total == 0 || send != nullptr,
                    "alltoallv_bytes needs a send buffer when counts > 0");
#endif
    world_->slot(rank_) = send;
    world_->aux_slot(rank_) = sendcounts.data();
    world_->sync();

    std::vector<count_t> recvcounts(static_cast<std::size_t>(size()));
    count_t total = 0;
    for (int r = 0; r < size(); ++r) {
      const auto* counts = static_cast<const count_t*>(world_->aux_slot(r));
      recvcounts[static_cast<std::size_t>(r)] = counts[rank_];
      total += counts[rank_];
    }
    recv.resize(static_cast<std::size_t>(total) * elem_size);
    std::size_t out = 0;
    for (int r = 0; r < size(); ++r) {
      const auto* counts = static_cast<const count_t*>(world_->aux_slot(r));
      if (counts[rank_] == 0) continue;
      count_t offset = 0;
      for (int q = 0; q < rank_; ++q) offset += counts[q];
      const auto* src = static_cast<const std::byte*>(world_->slot(r)) +
                        static_cast<std::size_t>(offset) * elem_size;
      const std::size_t len =
          static_cast<std::size_t>(counts[rank_]) * elem_size;
      std::memcpy(recv.data() + out, src, len);
      out += len;
    }
    world_->sync();

    count_t bytes = 0;
    count_t msgs = 0;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      if (sendcounts[static_cast<std::size_t>(r)] > 0) {
        bytes += sendcounts[static_cast<std::size_t>(r)] *
                 static_cast<count_t>(elem_size);
        ++msgs;
      }
    }
    note(bytes, msgs, t);
    if (recvcounts_out) *recvcounts_out = std::move(recvcounts);
    return total;
  }

  /// Nonblocking half of alltoallv_bytes (MPI_Ialltoallv post). Publishes
  /// this rank's send buffer and per-destination counts, then returns the
  /// number of elements that will arrive. `send` must stay valid and
  /// unmodified until alltoallv_bytes_finish returns (the counts are
  /// copied internally and need not). At most one exchange may be in
  /// flight per rank, but any blocking collectives may run between start
  /// and finish — they use separate publication slots. Collective: every
  /// rank must interleave starts, finishes, and other collectives in the
  /// same order.
  count_t alltoallv_bytes_start(const void* send, std::size_t elem_size,
                                const std::vector<count_t>& sendcounts) {
    XTRA_ASSERT_MSG(!async_active_,
                    "only one nonblocking alltoallv may be in flight");
    XTRA_ASSERT(sendcounts.size() == static_cast<std::size_t>(size()));
    Timer t;
#ifndef NDEBUG
    count_t send_total = 0;
    for (const count_t c : sendcounts) send_total += c;
    XTRA_ASSERT_MSG(send_total == 0 || send != nullptr,
                    "alltoallv_bytes_start needs a send buffer when counts > 0");
#endif
    // Counts are published from rank-owned storage so the caller's
    // vector is free to be reused while the exchange is in flight.
    async_counts_ = sendcounts;
    async_elem_ = elem_size;
    world_->async_slot(rank_) = send;
    world_->async_aux_slot(rank_) = async_counts_.data();
    world_->sync();
    // Every rank has published; peers keep their slots untouched until
    // the finish barrier, so arrival counts are already knowable here.
    async_recvcounts_.resize(static_cast<std::size_t>(size()));
    async_total_ = 0;
    for (int r = 0; r < size(); ++r) {
      const auto* counts =
          static_cast<const count_t*>(world_->async_aux_slot(r));
      async_recvcounts_[static_cast<std::size_t>(r)] = counts[rank_];
      async_total_ += counts[rank_];
    }
    async_active_ = true;
    async_seconds_ = t.seconds();
    return async_total_;
  }

  /// Blocking half (MPI_Wait): drains the pending exchange into `recv`
  /// and releases the published buffers. Accounts the pair as a single
  /// collective. Returns the number of elements received.
  count_t alltoallv_bytes_finish(std::vector<std::byte>& recv,
                                 std::vector<count_t>* recvcounts_out =
                                     nullptr) {
    XTRA_ASSERT_MSG(async_active_,
                    "alltoallv_bytes_finish without a pending start");
    Timer t;
    recv.resize(static_cast<std::size_t>(async_total_) * async_elem_);
    std::size_t out = 0;
    for (int r = 0; r < size(); ++r) {
      const auto* counts =
          static_cast<const count_t*>(world_->async_aux_slot(r));
      if (counts[rank_] == 0) continue;
      count_t offset = 0;
      for (int q = 0; q < rank_; ++q) offset += counts[q];
      const auto* src = static_cast<const std::byte*>(world_->async_slot(r)) +
                        static_cast<std::size_t>(offset) * async_elem_;
      const std::size_t len =
          static_cast<std::size_t>(counts[rank_]) * async_elem_;
      std::memcpy(recv.data() + out, src, len);
      out += len;
    }
    world_->sync();

    count_t bytes = 0;
    count_t msgs = 0;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      if (async_counts_[static_cast<std::size_t>(r)] > 0) {
        bytes += async_counts_[static_cast<std::size_t>(r)] *
                 static_cast<count_t>(async_elem_);
        ++msgs;
      }
    }
    note_seconds(bytes, msgs, async_seconds_ + t.seconds());
    async_active_ = false;
    if (recvcounts_out) *recvcounts_out = async_recvcounts_;
    return async_total_;
  }

  /// Whether this rank has a started-but-unfinished alltoallv.
  bool alltoallv_in_flight() const { return async_active_; }

  /// Gather variable-length contributions to `root` (others get {}).
  template <typename T>
  std::vector<T> gatherv(const std::vector<T>& send, int root = 0) {
    Timer t;
    world_->slot(rank_) = send.data();
    world_->size_slot(rank_) = send.size();
    world_->sync();
    std::vector<T> recv;
    if (rank_ == root) {
      std::size_t total = 0;
      for (int r = 0; r < size(); ++r) total += world_->size_slot(r);
      recv.reserve(total);
      for (int r = 0; r < size(); ++r) {
        const T* src = static_cast<const T*>(world_->slot(r));
        recv.insert(recv.end(), src, src + world_->size_slot(r));
      }
    }
    world_->sync();
    note(rank_ == root ? 0
                       : static_cast<count_t>(send.size() * sizeof(T)),
         rank_ == root ? 0 : 1, t);
    return recv;
  }

  /// Allgatherv: every rank receives the concatenation of all
  /// contributions in rank order.
  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& send) {
    Timer t;
    world_->slot(rank_) = send.data();
    world_->size_slot(rank_) = send.size();
    world_->sync();
    std::size_t total = 0;
    for (int r = 0; r < size(); ++r) total += world_->size_slot(r);
    std::vector<T> recv;
    recv.reserve(total);
    for (int r = 0; r < size(); ++r) {
      const T* src = static_cast<const T*>(world_->slot(r));
      recv.insert(recv.end(), src, src + world_->size_slot(r));
    }
    world_->sync();
    note(static_cast<count_t>(send.size() * sizeof(T)) * (size() - 1),
         size() - 1, t);
    return recv;
  }

  /// This rank's communication statistics (valid any time).
  const CommStats& stats() const { return world_->stats(rank_); }
  /// Reset this rank's statistics (callers should barrier around this).
  void reset_stats() { world_->stats(rank_) = CommStats{}; }

  /// Sum of bytes_sent across all ranks; collective (must be called by
  /// every rank).
  count_t global_bytes_sent() {
    return allreduce_sum<count_t>(stats().bytes_sent);
  }

  /// Field-wise sum of every rank's statistics, snapshotted before the
  /// reduction (the reductions this call performs are not included).
  /// Collective; the benches' one-stop aggregate.
  CommStats world_stats() {
    const CommStats mine = stats();
    std::vector<count_t> c{mine.bytes_sent, mine.messages_sent,
                           mine.collectives};
    allreduce_sum(c);
    CommStats out;
    out.bytes_sent = c[0];
    out.messages_sent = c[1];
    out.collectives = c[2];
    out.comm_seconds = allreduce_sum(mine.comm_seconds);
    return out;
  }

 private:
  void note(count_t bytes, count_t msgs, const Timer& t) {
    note_seconds(bytes, msgs, t.seconds());
  }

  void note_seconds(count_t bytes, count_t msgs, double seconds) {
    CommStats& s = world_->stats(rank_);
    s.bytes_sent += bytes;
    s.messages_sent += msgs;
    s.collectives += 1;
    s.comm_seconds += seconds;
  }

  detail::WorldState* world_;
  int rank_;

  // Pending nonblocking-alltoallv state (one in flight per rank).
  bool async_active_ = false;
  std::size_t async_elem_ = 0;
  count_t async_total_ = 0;
  double async_seconds_ = 0.0;
  std::vector<count_t> async_counts_;      ///< published to peers
  std::vector<count_t> async_recvcounts_;  ///< per-source arrivals
};

/// Launch `nranks` rank threads, each running fn(comm). Blocks until
/// all ranks finish; rethrows the first rank exception (after cleanly
/// unwinding the rest of the world). `ranks_per_node` groups
/// consecutive ranks into simulated nodes for the hierarchical
/// exchange (1 = every rank its own node, the flat default).
void run_world(int nranks, const std::function<void(Comm&)>& fn,
               int ranks_per_node = 1);

/// run_world, collecting fn's per-rank return values in rank order.
template <typename T>
std::vector<T> run_world_collect(int nranks,
                                 const std::function<T(Comm&)>& fn) {
  std::vector<T> results(static_cast<std::size_t>(nranks));
  run_world(nranks, [&](Comm& comm) {
    results[static_cast<std::size_t>(comm.rank())] = fn(comm);
  });
  return results;
}

}  // namespace xtra::sim
