// Simulated message-passing runtime (the "MPI" substrate).
//
// The paper runs XtraPuLP as MPI+OpenMP on up to 8192 nodes of Blue
// Waters. This environment has no MPI and a single core, so — per the
// documented substitution in DESIGN.md — we provide an in-process
// runtime with the same semantics: each *rank* is a std::thread with
// private data, and ranks may exchange data only through the
// collectives below. Because XtraPuLP is bulk-synchronous (local
// compute + Alltoallv + Allreduce per iteration), running the identical
// program over this runtime exercises the same distribution logic,
// ghost-update protocol, and oscillation behaviour as real MPI; only
// absolute wall-clock changes.
//
// Provided collectives (blocking, matching MPI semantics):
//   barrier, bcast, allreduce(sum/max/min), alltoall, alltoallv,
//   gatherv, allgatherv, scan-free reductions of scalars;
// plus a nonblocking alltoallv pair (alltoallv_bytes_start/finish,
// the MPI_Ialltoallv/MPI_Wait shape) so callers can overlap local
// compute with an in-flight exchange. Each rank owns kMaxChannels
// tagged channels (the MPI tag/request analog): up to kMaxChannels
// exchanges may be in flight per rank concurrently, one per channel,
// and blocking collectives may run between any start and its finish —
// they use separate publication slots. Channel ids are collective
// state: every rank must start/finish a matching exchange on the same
// channel, and interleave starts, finishes, and other collectives in
// the same order (find_free_channel() is deterministic for exactly
// this reason).
//
// A second, one-sided surface emulates RDMA verbs: win_expose posts a
// region of rank memory for passive-target win_get/win_put by peers,
// win_fence separates access epochs, win_unexpose closes the window.
// Puts and gets are NOT collectives — they bill per-op to the origin
// rank, the target does not participate.
//
// Every collective accounts the bytes a real MPI rank would put on the
// wire (self-destined data is free), so benches can report
// communication volume — the architecture-independent component of the
// paper's timing results. Payload-bearing calls additionally bill
// `exposed_seconds`: an alpha-beta *modeled* transfer time, minus (for
// the split nonblocking pair) the wall time the caller spent elsewhere
// between start and finish. It answers "how much modeled wire time was
// NOT hidden behind compute" — the metric the pipeline-depth CI
// contract gates — without ever sleeping. Control collectives
// (allreduce/bcast/gather/counts) are exposure-free by convention.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"
#include "verify/verify.hpp"

namespace xtra::sim {

/// Thrown on ranks that reach a collective after another rank failed;
/// unwinds the whole world cleanly instead of deadlocking.
struct WorldAborted : std::runtime_error {
  WorldAborted() : std::runtime_error("mpisim world aborted by peer rank") {}
};

/// Per-rank communication statistics.
struct CommStats {
  count_t bytes_sent = 0;      ///< payload bytes leaving this rank
  count_t messages_sent = 0;   ///< point-to-point segments with data
  count_t collectives = 0;     ///< collective invocations
  double comm_seconds = 0.0;   ///< wall time inside collectives
  /// Modeled wire time not hidden behind compute (alpha-beta model;
  /// see the header comment). Deterministically zero-noise it is not —
  /// the overlap credit is wall clock — but it is monotone in overlap,
  /// which is all the depth contract needs.
  double exposed_seconds = 0.0;
  count_t one_sided_gets = 0;   ///< win_get ops issued by this rank
  count_t one_sided_puts = 0;   ///< win_put ops issued by this rank
  count_t one_sided_bytes = 0;  ///< get/put payload bytes (self free)
};

/// Tagged in-flight channels per rank: up to this many nonblocking
/// alltoallvs may be pending concurrently on one rank.
inline constexpr int kMaxChannels = 8;
/// Concurrent one-sided exposure windows per rank.
inline constexpr int kMaxWindows = 4;

// The verifier sits below this header and mirrors the slot counts.
static_assert(verify::kChannelSlots == kMaxChannels);
static_assert(verify::kWindowSlots == kMaxWindows);

/// Alpha-beta wire model behind CommStats::exposed_seconds. The modeled
/// link is deliberately slow (1 MB/s, 2 ms startup) so that on the
/// micro-bench graphs modeled wire time dwarfs per-superstep compute:
/// exposure then degrades gracefully with overlap instead of
/// saturating at zero, which is what lets the CI depth contract
/// (d2 strictly below d1) hold robustly. Nothing ever sleeps on this
/// model; it is bookkeeping only.
inline constexpr double kModelAlphaSeconds = 2e-3;
inline constexpr double kModelBytesPerSecond = 1e6;
inline constexpr double modeled_wire_seconds(count_t wire_bytes) {
  return wire_bytes == 0
             ? 0.0
             : kModelAlphaSeconds +
                   static_cast<double>(wire_bytes) / kModelBytesPerSecond;
}

namespace detail {

/// Shared state for one world of ranks. Internal to the runtime.
class WorldState {
 public:
  explicit WorldState(int nranks, int ranks_per_node = 1)
      : nranks_(nranks),
        ranks_per_node_(std::clamp(ranks_per_node, 1, nranks)),
        barrier_(nranks),
        slots_(static_cast<std::size_t>(nranks)),
        aux_slots_(static_cast<std::size_t>(nranks)),
        size_slots_(static_cast<std::size_t>(nranks), 0),
        async_slots_(static_cast<std::size_t>(nranks) * kMaxChannels),
        async_aux_slots_(static_cast<std::size_t>(nranks) * kMaxChannels),
        win_slots_(static_cast<std::size_t>(nranks) * kMaxWindows),
        stats_(static_cast<std::size_t>(nranks)),
        // Inert (zero-rank) when the verifier is compiled out — the
        // hooks that would key into it fold away too.
        ledger_(verify::kEnabled ? nranks : 0) {}

  int nranks() const { return nranks_; }
  int ranks_per_node() const { return ranks_per_node_; }

  /// Barrier that converts a peer failure into WorldAborted.
  void sync() {
    barrier_.arrive_and_wait();
    if (failed_.load(std::memory_order_acquire)) throw WorldAborted{};
  }

  /// Called exactly once by a rank that is exiting with an exception:
  /// marks the world failed and permanently removes the rank from the
  /// barrier so surviving ranks cannot deadlock.
  void abandon() {
    failed_.store(true, std::memory_order_release);
    barrier_.arrive_and_drop();
  }

  const void*& slot(int rank) { return slots_[static_cast<std::size_t>(rank)]; }
  const void*& aux_slot(int rank) {
    return aux_slots_[static_cast<std::size_t>(rank)];
  }
  std::size_t& size_slot(int rank) {
    return size_slots_[static_cast<std::size_t>(rank)];
  }
  const void*& async_slot(int rank, int channel) {
    return async_slots_[static_cast<std::size_t>(channel) *
                            static_cast<std::size_t>(nranks_) +
                        static_cast<std::size_t>(rank)];
  }
  const void*& async_aux_slot(int rank, int channel) {
    return async_aux_slots_[static_cast<std::size_t>(channel) *
                                static_cast<std::size_t>(nranks_) +
                            static_cast<std::size_t>(rank)];
  }

  /// One-sided exposure slot: base/extent of the region `rank` has
  /// posted on window `win`, plus an optional free-of-charge metadata
  /// pointer (typically per-destination counts — the registration-time
  /// descriptor a real RDMA rendezvous would carry).
  struct WinSlot {
    std::byte* base = nullptr;
    std::size_t bytes = 0;
    const count_t* meta = nullptr;
  };
  WinSlot& win_slot(int rank, int win) {
    return win_slots_[static_cast<std::size_t>(win) *
                          static_cast<std::size_t>(nranks_) +
                      static_cast<std::size_t>(rank)];
  }

  CommStats& stats(int rank) { return stats_[static_cast<std::size_t>(rank)]; }

  verify::WorldLedger& ledger() { return ledger_; }

 private:
  int nranks_;
  int ranks_per_node_;
  std::barrier<> barrier_;
  std::atomic<bool> failed_{false};
  // Publication slots: each rank writes only its own entry between the
  // two barriers of a collective, so no locking is needed.
  std::vector<const void*> slots_;
  std::vector<const void*> aux_slots_;
  std::vector<std::size_t> size_slots_;
  // Dedicated per-(channel, rank) slots for in-flight nonblocking
  // alltoallvs: a pending alltoallv_bytes_start stays published across
  // any interleaved blocking collectives (which use the slots above)
  // and across starts/finishes on other channels.
  std::vector<const void*> async_slots_;
  std::vector<const void*> async_aux_slots_;
  // Per-(window, rank) one-sided exposure slots.
  std::vector<WinSlot> win_slots_;
  std::vector<CommStats> stats_;
  verify::WorldLedger ledger_;
};

}  // namespace detail

/// Handle through which one rank participates in its world. Move-only
/// view; cheap to pass by reference into algorithm code.
class Comm {
 public:
  Comm(detail::WorldState* world, int rank) : world_(world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->nranks(); }
  bool is_root() const { return rank_ == 0; }

  // --- Node topology view --------------------------------------------
  // Ranks are grouped into "nodes" of ranks_per_node consecutive ranks
  // (the last node may be smaller); run_world picks the grouping. A
  // node's leader is its lowest rank. The hierarchical exchange routes
  // inter-node traffic through leaders; everything else ignores the
  // grouping (the default is one rank per node).
  int ranks_per_node() const { return world_->ranks_per_node(); }
  int node_of(int rank) const { return rank / ranks_per_node(); }
  int my_node() const { return node_of(rank_); }
  int node_count() const {
    return (size() + ranks_per_node() - 1) / ranks_per_node();
  }
  /// Lowest rank of `node` — its leader.
  int node_leader(int node) const { return node * ranks_per_node(); }
  bool is_node_leader() const { return rank_ % ranks_per_node() == 0; }
  /// Half-open rank range [begin, end) of `node`.
  int node_begin(int node) const { return node * ranks_per_node(); }
  int node_end(int node) const {
    return std::min(size(), (node + 1) * ranks_per_node());
  }

  /// Block until every rank in the world reaches the barrier.
  void barrier() {
    vguard("barrier");
    Timer t;
    vsync(verify::Op::kBarrier, -1, 0, 0);
    note(0, 0, t);
  }

  /// Broadcast `data` from `root` to all ranks (resizing receivers).
  template <typename T>
  void bcast(std::vector<T>& data, int root = 0) {
    vguard("bcast");
    Timer t;
    if (rank_ == root) {
      world_->slot(root) = data.data();
      world_->size_slot(root) = data.size();
    }
    // The payload length is root-determined (receivers resize), so it
    // is a local diagnostic, not part of the uniform fingerprint.
    vsync(verify::Op::kBcast, root, sizeof(T), data.size());
    if (rank_ != root) {
      data.resize(world_->size_slot(root));
      std::memcpy(data.data(), world_->slot(root), data.size() * sizeof(T));
    }
    world_->sync();
    note(rank_ == root ? static_cast<count_t>(data.size() * sizeof(T)) *
                             (size() - 1)
                       : 0,
         rank_ == root ? size() - 1 : 0, t);
  }

  /// Broadcast a single trivially-copyable value from root.
  template <typename T>
  T bcast_value(T value, int root = 0) {
    std::vector<T> v{value};
    bcast(v, root);
    return v[0];
  }

  /// Element-wise in-place allreduce over equal-length vectors.
  /// `op` must be associative and commutative, e.g. std::plus<>{}.
  template <typename T, typename Op>
  void allreduce(std::vector<T>& data, Op op) {
    vguard("allreduce");
    Timer t;
    world_->slot(rank_) = data.data();
    world_->size_slot(rank_) = data.size();
    vsync(verify::Op::kAllreduce, -1,
          verify::hash_mix(sizeof(T), data.size()), 0);
    std::vector<T> acc(data.size());
    for (int r = 0; r < size(); ++r) {
      XTRA_ASSERT_MSG(world_->size_slot(r) == data.size(),
                      "allreduce length mismatch across ranks");
      const T* src = static_cast<const T*>(world_->slot(r));
      if (r == 0) {
        std::copy(src, src + data.size(), acc.begin());
      } else {
        for (std::size_t i = 0; i < data.size(); ++i)
          acc[i] = op(acc[i], src[i]);
      }
    }
    world_->sync();
    data = std::move(acc);
    // Ring-allreduce cost model: every rank sends its payload once
    // (nothing goes on the wire in a single-rank world).
    note(size() > 1 ? static_cast<count_t>(data.size() * sizeof(T)) : 0,
         size() > 1 ? 1 : 0, t);
  }

  template <typename T>
  void allreduce_sum(std::vector<T>& data) {
    allreduce(data, std::plus<T>{});
  }
  template <typename T>
  void allreduce_max(std::vector<T>& data) {
    allreduce(data, [](T a, T b) { return a > b ? a : b; });
  }
  template <typename T>
  void allreduce_min(std::vector<T>& data) {
    allreduce(data, [](T a, T b) { return a < b ? a : b; });
  }

  template <typename T>
  T allreduce_sum(T value) {
    std::vector<T> v{value};
    allreduce_sum(v);
    return v[0];
  }
  template <typename T>
  T allreduce_max(T value) {
    std::vector<T> v{value};
    allreduce_max(v);
    return v[0];
  }
  template <typename T>
  T allreduce_min(T value) {
    std::vector<T> v{value};
    allreduce_min(v);
    return v[0];
  }

  /// Logical AND/OR reductions for convergence tests.
  bool allreduce_and(bool value) {
    return allreduce_min<std::uint8_t>(value ? 1 : 0) != 0;
  }
  bool allreduce_or(bool value) {
    return allreduce_max<std::uint8_t>(value ? 1 : 0) != 0;
  }

  /// MPI_Alltoall with exactly one element per destination rank.
  /// send.size() == size(); result[r] is what rank r sent to us.
  template <typename T>
  std::vector<T> alltoall(const std::vector<T>& send) {
    vguard("alltoall");
    XTRA_ASSERT(send.size() == static_cast<std::size_t>(size()));
    Timer t;
    world_->slot(rank_) = send.data();
    vsync(verify::Op::kAlltoall, -1, sizeof(T), 0);
    std::vector<T> recv(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r)
      recv[static_cast<std::size_t>(r)] =
          static_cast<const T*>(world_->slot(r))[rank_];
    world_->sync();
    note(static_cast<count_t>((size() - 1) * sizeof(T)), size() - 1, t);
    note_blocking_exposure(static_cast<count_t>((size() - 1) * sizeof(T)));
    return recv;
  }

  /// MPI_Alltoallv. sendcounts[r] elements destined for rank r are laid
  /// out contiguously in `send` (offsets are the prefix sums of
  /// sendcounts). Returns the concatenated segments received from ranks
  /// 0..size()-1; if `recvcounts_out` is non-null it receives the
  /// per-source counts.
  template <typename T>
  std::vector<T> alltoallv(const std::vector<T>& send,
                           const std::vector<count_t>& sendcounts,
                           std::vector<count_t>* recvcounts_out = nullptr) {
    vguard("alltoallv");
    XTRA_ASSERT(sendcounts.size() == static_cast<std::size_t>(size()));
    Timer t;
    std::vector<count_t> sendoffsets(sendcounts.size() + 1, 0);
    for (std::size_t i = 0; i < sendcounts.size(); ++i)
      sendoffsets[i + 1] = sendoffsets[i] + sendcounts[i];
    XTRA_ASSERT_MSG(
        static_cast<std::size_t>(sendoffsets.back()) == send.size(),
        "alltoallv sendcounts must sum to send buffer length");

    world_->slot(rank_) = send.data();
    world_->aux_slot(rank_) = sendcounts.data();
    vsync(verify::Op::kAlltoallv, -1, sizeof(T), vhash_counts(sendcounts));

    std::vector<count_t> recvcounts(static_cast<std::size_t>(size()));
    count_t total = 0;
    for (int r = 0; r < size(); ++r) {
      const auto* counts = static_cast<const count_t*>(world_->aux_slot(r));
      recvcounts[static_cast<std::size_t>(r)] = counts[rank_];
      total += counts[rank_];
    }
    std::vector<T> recv(static_cast<std::size_t>(total));
    count_t out = 0;
    for (int r = 0; r < size(); ++r) {
      const auto* counts = static_cast<const count_t*>(world_->aux_slot(r));
      count_t offset = 0;
      for (int q = 0; q < rank_; ++q) offset += counts[q];
      const T* src = static_cast<const T*>(world_->slot(r)) + offset;
      std::copy(src, src + counts[rank_], recv.begin() + out);
      out += counts[rank_];
    }
    world_->sync();

    count_t bytes = 0;
    count_t msgs = 0;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      if (sendcounts[static_cast<std::size_t>(r)] > 0) {
        bytes += sendcounts[static_cast<std::size_t>(r)] *
                 static_cast<count_t>(sizeof(T));
        ++msgs;
      }
    }
    note(bytes, msgs, t);
    note_blocking_exposure(
        (total - recvcounts[static_cast<std::size_t>(rank_)]) *
        static_cast<count_t>(sizeof(T)));
    if (recvcounts_out) *recvcounts_out = std::move(recvcounts);
    return recv;
  }

  /// Untyped MPI_Alltoallv over elements of `elem_size` bytes — the
  /// primitive the comm layer's Exchanger builds on. Semantics match
  /// the typed overload above, but the receive buffer is a reusable
  /// byte vector (resized, so steady-state callers keep its capacity).
  /// Returns the number of elements received.
  count_t alltoallv_bytes(const void* send, std::size_t elem_size,
                          const std::vector<count_t>& sendcounts,
                          std::vector<std::byte>& recv,
                          std::vector<count_t>* recvcounts_out = nullptr) {
    vguard("alltoallv_bytes");
    XTRA_ASSERT(sendcounts.size() == static_cast<std::size_t>(size()));
    Timer t;
#ifndef NDEBUG
    count_t send_total = 0;
    for (const count_t c : sendcounts) send_total += c;
    XTRA_ASSERT_MSG(send_total == 0 || send != nullptr,
                    "alltoallv_bytes needs a send buffer when counts > 0");
#endif
    world_->slot(rank_) = send;
    world_->aux_slot(rank_) = sendcounts.data();
    vsync(verify::Op::kAlltoallvBytes, -1, elem_size,
          vhash_counts(sendcounts));

    std::vector<count_t> recvcounts(static_cast<std::size_t>(size()));
    count_t total = 0;
    for (int r = 0; r < size(); ++r) {
      const auto* counts = static_cast<const count_t*>(world_->aux_slot(r));
      recvcounts[static_cast<std::size_t>(r)] = counts[rank_];
      total += counts[rank_];
    }
    recv.resize(static_cast<std::size_t>(total) * elem_size);
    std::size_t out = 0;
    for (int r = 0; r < size(); ++r) {
      const auto* counts = static_cast<const count_t*>(world_->aux_slot(r));
      if (counts[rank_] == 0) continue;
      count_t offset = 0;
      for (int q = 0; q < rank_; ++q) offset += counts[q];
      const auto* src = static_cast<const std::byte*>(world_->slot(r)) +
                        static_cast<std::size_t>(offset) * elem_size;
      const std::size_t len =
          static_cast<std::size_t>(counts[rank_]) * elem_size;
      std::memcpy(recv.data() + out, src, len);
      out += len;
    }
    world_->sync();

    count_t bytes = 0;
    count_t msgs = 0;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      if (sendcounts[static_cast<std::size_t>(r)] > 0) {
        bytes += sendcounts[static_cast<std::size_t>(r)] *
                 static_cast<count_t>(elem_size);
        ++msgs;
      }
    }
    note(bytes, msgs, t);
    note_blocking_exposure(
        (total - recvcounts[static_cast<std::size_t>(rank_)]) *
        static_cast<count_t>(elem_size));
    if (recvcounts_out) *recvcounts_out = std::move(recvcounts);
    return total;
  }

  static constexpr int max_channels() { return kMaxChannels; }
  static constexpr int max_windows() { return kMaxWindows; }

  /// Lowest channel with no exchange in flight on this rank. Because
  /// channels are acquired and released only by collective calls, the
  /// in-flight set is identical on every rank and the scan is
  /// rank-uniform — callers may use the result as a collective channel
  /// id without agreeing on it explicitly. Throws std::runtime_error
  /// when all kMaxChannels channels are pending (channel exhaustion is
  /// a caller bug worth a catchable diagnostic, not an abort).
  int find_free_channel() const {
    for (int c = 0; c < kMaxChannels; ++c)
      if (!async_[static_cast<std::size_t>(c)].active) return c;
    // Exhaustion diagnostic names every busy channel's opener (the
    // label passed to alltoallv_bytes_start) and when it started, so
    // the leaked/forgotten finish is findable without a debugger.
    std::string msg = "mpisim: all " + std::to_string(kMaxChannels) +
                      " nonblocking channels are in flight on this rank "
                      "(rank " +
                      std::to_string(rank_) + "):";
    for (int c = 0; c < kMaxChannels; ++c) {
      const AsyncState& ch = async_[static_cast<std::size_t>(c)];
      count_t staged = 0;
      for (const count_t n : ch.counts) staged += n;
      msg += "\n  channel " + std::to_string(c) + ": '" +
             (ch.label ? ch.label : "(unlabeled)") +
             "' — started at this rank's collective #" +
             std::to_string(ch.opened_at) + ", " +
             std::to_string(staged * static_cast<count_t>(ch.elem)) +
             " bytes staged";
    }
    throw std::runtime_error(msg);
  }

  /// Nonblocking half of alltoallv_bytes (MPI_Ialltoallv post) on a
  /// tagged channel. Publishes this rank's send buffer and
  /// per-destination counts, then returns the number of elements that
  /// will arrive. `send` must stay valid and unmodified until the
  /// matching alltoallv_bytes_finish returns (the counts are copied
  /// internally and need not). Up to kMaxChannels exchanges may be in
  /// flight per rank, one per channel; blocking collectives may run
  /// between any start and its finish — they use separate publication
  /// slots. Collective: every rank must use the same channel for a
  /// matching exchange and interleave starts, finishes, and other
  /// collectives in the same order (finishes need not be in start
  /// order). Throws std::runtime_error if `channel` is already busy.
  count_t alltoallv_bytes_start(const void* send, std::size_t elem_size,
                                const std::vector<count_t>& sendcounts,
                                int channel = 0,
                                const char* label = nullptr) {
    vguard("alltoallv_bytes_start");
    XTRA_ASSERT(channel >= 0 && channel < kMaxChannels);
    AsyncState& ch = async_[static_cast<std::size_t>(channel)];
    if (ch.active)
      throw std::runtime_error(
          "mpisim: channel " + std::to_string(channel) +
          " already has an exchange in flight (" +
          std::string(ch.label ? ch.label : "(unlabeled)") +
          ", started at this rank's collective #" +
          std::to_string(ch.opened_at) + "); start by '" +
          (label ? label : "(unlabeled)") + "' rejected");
    XTRA_ASSERT(sendcounts.size() == static_cast<std::size_t>(size()));
    Timer t;
#ifndef NDEBUG
    count_t send_total = 0;
    for (const count_t c : sendcounts) send_total += c;
    XTRA_ASSERT_MSG(send_total == 0 || send != nullptr,
                    "alltoallv_bytes_start needs a send buffer when counts > 0");
#endif
    // Counts are published from rank-owned storage so the caller's
    // vector is free to be reused while the exchange is in flight.
    ch.counts = sendcounts;
    ch.elem = elem_size;
    ch.label = label;
    ch.opened_at = world_->stats(rank_).collectives;
    world_->async_slot(rank_, channel) = send;
    world_->async_aux_slot(rank_, channel) = ch.counts.data();
    if constexpr (verify::kEnabled) {
      // Checksum the published payload: it belongs to the wire until
      // finish. Staged extent = sum(counts) * elem.
      count_t staged = 0;
      for (const count_t c : sendcounts) staged += c;
      world_->ledger().channel_open(
          rank_, channel, label, send,
          static_cast<std::size_t>(staged) * elem_size);
    }
    vsync(verify::Op::kA2avStart, channel, elem_size,
          vhash_counts(sendcounts));
    // Every rank has published; peers keep their slots untouched until
    // the finish barrier, so arrival counts are already knowable here.
    ch.recvcounts.resize(static_cast<std::size_t>(size()));
    ch.total = 0;
    for (int r = 0; r < size(); ++r) {
      const auto* counts =
          static_cast<const count_t*>(world_->async_aux_slot(r, channel));
      ch.recvcounts[static_cast<std::size_t>(r)] = counts[rank_];
      ch.total += counts[rank_];
    }
    ch.active = true;
    ch.seconds = t.seconds();
    // Exposure clock starts now: what does not finish arriving (on the
    // modeled wire) before the finish call is exposed wait.
    const count_t wire_in =
        (ch.total - ch.recvcounts[static_cast<std::size_t>(rank_)]) *
        static_cast<count_t>(elem_size);
    ch.modeled = modeled_wire_seconds(wire_in);
    ch.overlap.reset();
    return ch.total;
  }

  /// Blocking half (MPI_Wait): drains the exchange pending on `channel`
  /// into `recv` and releases the published buffers. Accounts the pair
  /// as a single collective. Returns the number of elements received.
  count_t alltoallv_bytes_finish(std::vector<std::byte>& recv,
                                 std::vector<count_t>* recvcounts_out =
                                     nullptr,
                                 int channel = 0) {
    vguard("alltoallv_bytes_finish");
    XTRA_ASSERT(channel >= 0 && channel < kMaxChannels);
    AsyncState& ch = async_[static_cast<std::size_t>(channel)];
    if constexpr (verify::kEnabled) {
      if (!ch.active)
        throw verify::ProtocolError(
            "comm verifier: alltoallv_bytes_finish on channel " +
            std::to_string(channel) + " with no exchange in flight (rank " +
            std::to_string(rank_) +
            "; nothing was started, or it was already finished)");
    }
    XTRA_ASSERT_MSG(ch.active,
                    "alltoallv_bytes_finish without a pending start");
    Timer t;
    if constexpr (verify::kEnabled) {
      // Extra (unbilled) lockstep point: catches ranks finishing
      // different channels at the same step before slot reads tear.
      vsync(verify::Op::kA2avFinish, channel, ch.elem, 0);
      // The published payload must be byte-identical to what start
      // checksummed — it belonged to the wire the whole flight.
      world_->ledger().channel_verify(rank_, channel);
    }
    recv.resize(static_cast<std::size_t>(ch.total) * ch.elem);
    std::size_t out = 0;
    for (int r = 0; r < size(); ++r) {
      const auto* counts =
          static_cast<const count_t*>(world_->async_aux_slot(r, channel));
      if (counts[rank_] == 0) continue;
      count_t offset = 0;
      for (int q = 0; q < rank_; ++q) offset += counts[q];
      const auto* src =
          static_cast<const std::byte*>(world_->async_slot(r, channel)) +
          static_cast<std::size_t>(offset) * ch.elem;
      const std::size_t len =
          static_cast<std::size_t>(counts[rank_]) * ch.elem;
      std::memcpy(recv.data() + out, src, len);
      out += len;
    }
    world_->sync();

    count_t bytes = 0;
    count_t msgs = 0;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      if (ch.counts[static_cast<std::size_t>(r)] > 0) {
        bytes += ch.counts[static_cast<std::size_t>(r)] *
                 static_cast<count_t>(ch.elem);
        ++msgs;
      }
    }
    note_seconds(bytes, msgs, ch.seconds + t.seconds());
    world_->stats(rank_).exposed_seconds +=
        std::max(0.0, ch.modeled - ch.overlap.seconds());
    ch.active = false;
    ch.label = nullptr;
    if constexpr (verify::kEnabled) {
      world_->ledger().channel_close(rank_, channel);
    }
    if (recvcounts_out) *recvcounts_out = ch.recvcounts;
    return ch.total;
  }

  /// Whether this rank has a started-but-unfinished alltoallv on
  /// `channel`.
  bool alltoallv_in_flight(int channel = 0) const {
    XTRA_ASSERT(channel >= 0 && channel < kMaxChannels);
    return async_[static_cast<std::size_t>(channel)].active;
  }

  /// Number of channels with a pending exchange on this rank.
  int channels_in_flight() const {
    int n = 0;
    for (const AsyncState& ch : async_) n += ch.active ? 1 : 0;
    return n;
  }

  // --- One-sided windows (RDMA emulation) ----------------------------
  // Exposure epochs follow MPI_Win_fence semantics: win_expose opens an
  // epoch (collective), win_fence separates epochs (collective), and
  // win_unexpose closes the window (collective). Between fences, peers
  // may win_get/win_put the exposed region passively — the target rank
  // does not participate and per-op costs bill to the origin. The
  // origin must not read bytes a peer may concurrently put, and the
  // owner must not rewrite bytes a peer may concurrently get; the
  // fences are the synchronization points, exactly as on hardware.

  /// Lowest window not currently exposed by this rank; rank-uniform for
  /// the same reason as find_free_channel. Throws on exhaustion.
  int find_free_window() const {
    for (int w = 0; w < kMaxWindows; ++w)
      if (!win_active_[static_cast<std::size_t>(w)]) return w;
    std::string msg = "mpisim: all " + std::to_string(kMaxWindows) +
                      " one-sided windows are exposed on this rank (rank " +
                      std::to_string(rank_) + "):";
    for (int w = 0; w < kMaxWindows; ++w) {
      const char* label = win_label_[static_cast<std::size_t>(w)];
      msg += "\n  window " + std::to_string(w) + ": '" +
             (label ? label : "(unlabeled)") +
             "' — exposed at this rank's collective #" +
             std::to_string(win_opened_at_[static_cast<std::size_t>(w)]);
    }
    throw std::runtime_error(msg);
  }

  /// Collective: expose [base, base+bytes) for passive-target access on
  /// window `win` until win_unexpose. `meta`, if non-null, must stay
  /// valid for the window's lifetime; peers read it free of charge via
  /// win_meta (the descriptor a real rendezvous registration carries —
  /// the Exchanger publishes per-destination counts through it).
  void win_expose(void* base, std::size_t bytes,
                  const count_t* meta = nullptr, int win = 0,
                  const char* label = nullptr) {
    vguard("win_expose");
    XTRA_ASSERT(win >= 0 && win < kMaxWindows);
    if (win_active_[static_cast<std::size_t>(win)])
      throw std::runtime_error(
          "mpisim: window " + std::to_string(win) +
          " is already exposed ('" +
          (win_label_[static_cast<std::size_t>(win)]
               ? win_label_[static_cast<std::size_t>(win)]
               : "(unlabeled)") +
          "', exposed at this rank's collective #" +
          std::to_string(win_opened_at_[static_cast<std::size_t>(win)]) +
          "); expose by '" + (label ? label : "(unlabeled)") + "' rejected");
    XTRA_ASSERT_MSG(bytes == 0 || base != nullptr,
                    "win_expose needs a base pointer when bytes > 0");
    Timer t;
    auto& slot = world_->win_slot(rank_, win);
    slot.base = static_cast<std::byte*>(base);
    slot.bytes = bytes;
    slot.meta = meta;
    win_label_[static_cast<std::size_t>(win)] = label;
    win_opened_at_[static_cast<std::size_t>(win)] =
        world_->stats(rank_).collectives;
    if constexpr (verify::kEnabled) {
      // Guard armed before the barrier: peers cannot touch the region
      // until their own expose returns, i.e. after we pass it.
      world_->ledger().window_open(rank_, win, label, base, bytes);
    }
    vsync(verify::Op::kWinExpose, win, 0, bytes);
    win_active_[static_cast<std::size_t>(win)] = true;
    note(0, 0, t);
  }

  /// Whether this rank currently exposes window `win`.
  bool win_exposed(int win = 0) const {
    XTRA_ASSERT(win >= 0 && win < kMaxWindows);
    return win_active_[static_cast<std::size_t>(win)];
  }

  /// Extent of the region `target` exposes on `win`.
  std::size_t win_bytes(int target, int win = 0) const {
    XTRA_ASSERT(win_active_[static_cast<std::size_t>(win)]);
    return world_->win_slot(target, win).bytes;
  }

  /// Metadata pointer `target` registered with its exposure (may be
  /// null). Reading it is free — it is part of the registration.
  const count_t* win_meta(int target, int win = 0) const {
    XTRA_ASSERT(win_active_[static_cast<std::size_t>(win)]);
    return world_->win_slot(target, win).meta;
  }

  /// Passive-target read: copy `len` bytes at `offset` of `target`'s
  /// exposed region into `dst`. Not a collective; bills to this rank
  /// (self-target reads are free, as ever).
  void win_get(int win, int target, std::size_t offset, std::size_t len,
               void* dst) {
    vguard("win_get");
    if constexpr (verify::kEnabled)
      verify_win_access("win_get", win, target, offset, len);
    const auto& slot = checked_win_slot(target, win, offset, len);
    // Zero-length gets are legal at any in-bounds offset and may pass a
    // null dst; skip the copy so that stays UB-free.
    if (len > 0) std::memcpy(dst, slot.base + offset, len);
    note_one_sided(target, len, /*is_put=*/false);
  }

  /// Passive-target write: copy `len` bytes from `src` into `target`'s
  /// exposed region at `offset`. Not a collective; bills to this rank.
  void win_put(int win, int target, std::size_t offset, std::size_t len,
               const void* src) {
    vguard("win_put");
    if constexpr (verify::kEnabled) {
      verify_win_access("win_put", win, target, offset, len);
      // Counted before the copy lands so the target's mutation check
      // stands down for any epoch containing peer puts.
      world_->ledger().note_put(target, win);
    }
    const auto& slot = checked_win_slot(target, win, offset, len);
    if (len > 0) std::memcpy(slot.base + offset, src, len);
    note_one_sided(target, len, /*is_put=*/true);
  }

  /// Collective epoch separator: all puts/gets issued before the fence
  /// complete before any rank's post-fence accesses (barrier
  /// semantics = MPI_Win_fence).
  void win_fence(int win = 0) {
    vguard("win_fence");
    XTRA_ASSERT(win_active_[static_cast<std::size_t>(win)]);
    Timer t;
    vsync(verify::Op::kWinFence, win, 0, 0);
    if constexpr (verify::kEnabled) {
      // Between the two barriers no peer can be mid-put (they are all
      // fenced too), so the owner-mutation check and checksum re-arm
      // read a quiescent buffer; the second (unbilled) barrier keeps
      // next-epoch puts from racing the re-arm.
      world_->ledger().window_epoch_verify(rank_, win, /*closing=*/false);
      world_->sync();
    }
    note(0, 0, t);
  }

  /// Collective: close the exposure epoch and free the window slot.
  /// The barrier guarantees every peer's accesses completed before the
  /// region is invalidated, so the owner may free/reuse the memory on
  /// return.
  void win_unexpose(int win = 0) {
    vguard("win_unexpose");
    XTRA_ASSERT(win >= 0 && win < kMaxWindows);
    if constexpr (verify::kEnabled) {
      if (!win_active_[static_cast<std::size_t>(win)])
        throw verify::ProtocolError(
            "comm verifier: win_unexpose without a matching win_expose "
            "(rank " +
            std::to_string(rank_) + ", window " + std::to_string(win) + ": " +
            world_->ledger().window_attribution(rank_, win) + ")");
    }
    XTRA_ASSERT_MSG(win_active_[static_cast<std::size_t>(win)],
                    "win_unexpose without a matching win_expose");
    Timer t;
    vsync(verify::Op::kWinUnexpose, win, 0, 0);
    if constexpr (verify::kEnabled) {
      // All peer accesses completed at the barrier and no new epoch
      // can open on this window, so one barrier suffices here.
      world_->ledger().window_epoch_verify(rank_, win, /*closing=*/true);
      world_->ledger().window_close(rank_, win);
    }
    world_->win_slot(rank_, win) = detail::WorldState::WinSlot{};
    win_active_[static_cast<std::size_t>(win)] = false;
    win_label_[static_cast<std::size_t>(win)] = nullptr;
    note(0, 0, t);
  }

  /// Gather variable-length contributions to `root` (others get {}).
  template <typename T>
  std::vector<T> gatherv(const std::vector<T>& send, int root = 0) {
    vguard("gatherv");
    Timer t;
    world_->slot(rank_) = send.data();
    world_->size_slot(rank_) = send.size();
    vsync(verify::Op::kGatherv, root, sizeof(T), send.size());
    std::vector<T> recv;
    if (rank_ == root) {
      std::size_t total = 0;
      for (int r = 0; r < size(); ++r) total += world_->size_slot(r);
      recv.reserve(total);
      for (int r = 0; r < size(); ++r) {
        const T* src = static_cast<const T*>(world_->slot(r));
        recv.insert(recv.end(), src, src + world_->size_slot(r));
      }
    }
    world_->sync();
    note(rank_ == root ? 0
                       : static_cast<count_t>(send.size() * sizeof(T)),
         rank_ == root ? 0 : 1, t);
    return recv;
  }

  /// Allgatherv: every rank receives the concatenation of all
  /// contributions in rank order.
  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& send) {
    vguard("allgatherv");
    Timer t;
    world_->slot(rank_) = send.data();
    world_->size_slot(rank_) = send.size();
    vsync(verify::Op::kAllgatherv, -1, sizeof(T), send.size());
    std::size_t total = 0;
    for (int r = 0; r < size(); ++r) total += world_->size_slot(r);
    std::vector<T> recv;
    recv.reserve(total);
    for (int r = 0; r < size(); ++r) {
      const T* src = static_cast<const T*>(world_->slot(r));
      recv.insert(recv.end(), src, src + world_->size_slot(r));
    }
    world_->sync();
    note(static_cast<count_t>(send.size() * sizeof(T)) * (size() - 1),
         size() - 1, t);
    return recv;
  }

  /// This rank's communication statistics (valid any time).
  const CommStats& stats() const { return world_->stats(rank_); }
  /// Reset this rank's statistics (callers should barrier around this).
  void reset_stats() { world_->stats(rank_) = CommStats{}; }

  /// Sum of bytes_sent across all ranks; collective (must be called by
  /// every rank).
  count_t global_bytes_sent() {
    return allreduce_sum<count_t>(stats().bytes_sent);
  }

  /// Field-wise sum of every rank's statistics, snapshotted before the
  /// reduction (the reductions this call performs are not included).
  /// Collective; the benches' one-stop aggregate.
  CommStats world_stats() {
    const CommStats mine = stats();
    std::vector<count_t> c{mine.bytes_sent,     mine.messages_sent,
                           mine.collectives,    mine.one_sided_gets,
                           mine.one_sided_puts, mine.one_sided_bytes};
    allreduce_sum(c);
    std::vector<double> d{mine.comm_seconds, mine.exposed_seconds};
    allreduce_sum(d);
    CommStats out;
    out.bytes_sent = c[0];
    out.messages_sent = c[1];
    out.collectives = c[2];
    out.one_sided_gets = c[3];
    out.one_sided_puts = c[4];
    out.one_sided_bytes = c[5];
    out.comm_seconds = d[0];
    out.exposed_seconds = d[1];
    return out;
  }

  /// Teardown checks, called by run_world after the rank function
  /// returns (no-op when the verifier is compiled out): leaked
  /// channels/windows throw with the opener's attribution, then a
  /// final lockstep fingerprint converts "this rank exited while peers
  /// still communicate" into an attributed divergence error instead of
  /// a deadlock.
  void verify_end_of_world() {
    if constexpr (verify::kEnabled) {
      std::string leaks;
      for (int c = 0; c < kMaxChannels; ++c) {
        if (!async_[static_cast<std::size_t>(c)].active) continue;
        leaks += "\n  channel " + std::to_string(c) + " still in flight (" +
                 world_->ledger().channel_attribution(rank_, c) + ")";
      }
      for (int w = 0; w < kMaxWindows; ++w) {
        if (!win_active_[static_cast<std::size_t>(w)]) continue;
        leaks += "\n  window " + std::to_string(w) + " still exposed (" +
                 world_->ledger().window_attribution(rank_, w) + ")";
      }
      if (!leaks.empty())
        throw verify::ProtocolError(
            "comm verifier: comm resources leaked at run_world teardown on "
            "rank " +
            std::to_string(rank_) + ":" + leaks);
      vsync(verify::Op::kEndOfWorld, -1, 0, 0);
    }
  }

 private:
  // --- Verifier hooks (fold to nothing without XTRA_VERIFY_COMM) -----
  /// Entry assertion: collectives must run on the rank thread, never
  /// inside a par:: parallel region.
  static void vguard(const char* entry) {
    if constexpr (verify::kEnabled) verify::thread_guard(entry);
  }

  /// Lockstep-checked barrier, replacing a collective's first
  /// world_->sync(): record this rank's fingerprint, cross the
  /// barrier, cross-check every rank's fingerprint. `uniform` hashes
  /// only rank-uniform arguments; `local` is a per-rank diagnostic
  /// hash shown in divergence traces.
  void vsync(verify::Op op, int id, std::uint64_t uniform,
             std::uint64_t local) {
    if constexpr (verify::kEnabled) {
      world_->ledger().begin(rank_, op, id, uniform, local);
      world_->sync();
      world_->ledger().check(rank_);
    } else {
      world_->sync();
    }
  }

  /// Hash of a counts vector for trace diagnostics; free in
  /// non-verify builds.
  static std::uint64_t vhash_counts(const std::vector<count_t>& counts) {
    if constexpr (verify::kEnabled)
      return verify::fnv1a(counts.data(), counts.size() * sizeof(count_t));
    else
      return 0;
  }

  /// Epoch/bounds preconditions for win_get/win_put, as attributed
  /// ProtocolErrors (the XTRA_ASSERTs in checked_win_slot cover
  /// non-verify builds).
  void verify_win_access(const char* what, int win, int target,
                         std::size_t offset, std::size_t len) const {
    if (win < 0 || win >= kMaxWindows ||
        !win_active_[static_cast<std::size_t>(win)]) {
      const std::string attribution =
          (win >= 0 && win < kMaxWindows)
              ? world_->ledger().window_attribution(rank_, win)
              : std::string("no such window");
      throw verify::ProtocolError(
          std::string("comm verifier: ") + what +
          " outside an exposure epoch (rank " + std::to_string(rank_) +
          ", window " + std::to_string(win) + ": " + attribution + ")");
    }
    const auto& slot = world_->win_slot(target, win);
    if (offset + len > slot.bytes) {
      throw verify::ProtocolError(
          std::string("comm verifier: ") + what +
          " past the exposed region (rank " + std::to_string(rank_) +
          " accessing rank " + std::to_string(target) + ", window " +
          std::to_string(win) + ": offset " + std::to_string(offset) +
          " + len " + std::to_string(len) + " > " +
          std::to_string(slot.bytes) + " bytes exposed; " +
          world_->ledger().window_attribution(target, win) + ")");
    }
  }

  void note(count_t bytes, count_t msgs, const Timer& t) {
    note_seconds(bytes, msgs, t.seconds());
  }

  void note_seconds(count_t bytes, count_t msgs, double seconds) {
    CommStats& s = world_->stats(rank_);
    s.bytes_sent += bytes;
    s.messages_sent += msgs;
    s.collectives += 1;
    s.comm_seconds += seconds;
  }

  /// Blocking payload collectives expose their full modeled transfer —
  /// there is no compute to hide it behind.
  void note_blocking_exposure(count_t wire_in_bytes) {
    world_->stats(rank_).exposed_seconds +=
        modeled_wire_seconds(wire_in_bytes);
  }

  const detail::WorldState::WinSlot& checked_win_slot(int target, int win,
                                                      std::size_t offset,
                                                      std::size_t len) const {
    XTRA_ASSERT(win >= 0 && win < kMaxWindows);
    XTRA_ASSERT_MSG(win_active_[static_cast<std::size_t>(win)],
                    "one-sided access outside an exposure epoch");
    const auto& slot = world_->win_slot(target, win);
    XTRA_ASSERT_MSG(offset + len <= slot.bytes,
                    "one-sided access past the exposed region");
    return slot;
  }

  /// Per-op one-sided billing: gets/puts are point-to-point segments,
  /// not collectives; self-target traffic is free, and remote payload
  /// exposes its beta cost (the alpha is absorbed by the epoch's
  /// collective fences, as on a doorbell-batched RDMA engine).
  void note_one_sided(int target, std::size_t len, bool is_put) {
    CommStats& s = world_->stats(rank_);
    (is_put ? s.one_sided_puts : s.one_sided_gets) += 1;
    if (target == rank_ || len == 0) return;
    s.one_sided_bytes += static_cast<count_t>(len);
    s.bytes_sent += static_cast<count_t>(len);
    s.messages_sent += 1;
    s.exposed_seconds += static_cast<double>(len) / kModelBytesPerSecond;
  }

  detail::WorldState* world_;
  int rank_;

  // Pending nonblocking-alltoallv state, one slot per channel.
  struct AsyncState {
    bool active = false;
    std::size_t elem = 0;
    count_t total = 0;
    double seconds = 0.0;  ///< wall time spent inside the start call
    double modeled = 0.0;  ///< modeled transfer time of the arrivals
    Timer overlap;         ///< running since start returned
    std::vector<count_t> counts;      ///< published to peers
    std::vector<count_t> recvcounts;  ///< per-source arrivals
    /// Always-on attribution for exhaustion/double-start diagnostics:
    /// the opener's label and this rank's collective count at start.
    const char* label = nullptr;
    count_t opened_at = 0;
  };
  std::array<AsyncState, kMaxChannels> async_{};
  // Local mirror of this rank's exposed windows (rank-uniform, since
  // expose/unexpose are collective), with always-on attribution.
  std::array<bool, kMaxWindows> win_active_{};
  std::array<const char*, kMaxWindows> win_label_{};
  std::array<count_t, kMaxWindows> win_opened_at_{};
};

/// Launch `nranks` rank threads, each running fn(comm). Blocks until
/// all ranks finish; rethrows the first rank exception (after cleanly
/// unwinding the rest of the world). `ranks_per_node` groups
/// consecutive ranks into simulated nodes for the hierarchical
/// exchange (1 = every rank its own node, the flat default).
void run_world(int nranks, const std::function<void(Comm&)>& fn,
               int ranks_per_node = 1);

/// run_world, collecting fn's per-rank return values in rank order.
template <typename T>
std::vector<T> run_world_collect(int nranks,
                                 const std::function<T(Comm&)>& fn) {
  std::vector<T> results(static_cast<std::size_t>(nranks));
  run_world(nranks, [&](Comm& comm) {
    results[static_cast<std::size_t>(comm.rank())] = fn(comm);
  });
  return results;
}

}  // namespace xtra::sim
