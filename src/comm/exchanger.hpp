// Exchanger — persistent, memory-bounded wrapper over
// sim::Comm::alltoallv.
//
// The paper reaches trillion-edge scale because its ghost-update
// exchange is memory-bounded: send buffers are built once per phase,
// capped in size, and communicated in chunks rather than one unbounded
// Alltoallv. An Exchanger reproduces that contract: with
// max_send_bytes == 0 it issues a single alltoallv; with a positive
// bound it splits the (destination-grouped) send buffer into phases of
// at most max_send_bytes each — chunk boundaries fall inside
// per-destination runs, and the receive side reassembles arrivals by
// source rank, so the result is bit-identical to the single alltoallv
// for any bound.
//
// The exchange is split into explicit start()/finish() halves so a
// caller can kick off the wire transfer and run local compute before
// draining it. start() snapshots the caller's payload into the
// AsyncExchange handle (the caller's buffer is released the moment
// start() returns) and posts the first phase; finish() drains the
// in-flight phase, posts the next, and reassembles arrivals. The
// blocking exchange() is a thin start+finish wrapper (minus the
// payload snapshot — its caller's buffer is valid throughout), so both
// paths share one implementation and produce byte-identical results
// and identical wire accounting. Between start() and finish() any
// blocking collectives may run, but only one exchange may be in flight
// per rank (enforced by the substrate).
//
// The object owns all wire-side scratch (receive bytes, per-phase
// counts, reassembly cursors) and reuses it across calls, so a
// persistent Exchanger makes the per-iteration exchange of
// label-propagation allocation-free on the send path. It also
// aggregates ExchangeStats across calls for bench reporting.
//
// exchange()/start()/finish() are collective (bounded mode agrees on a
// global phase count with one allreduce); every rank must call them
// with the same max_send_bytes. Returned spans alias the receive
// scratch and are valid until the next exchange()/start() on the same
// object.
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "comm/dest_buckets.hpp"
#include "mpisim/comm.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace xtra::comm {

/// Aggregated accounting over every exchange() on one Exchanger.
struct ExchangeStats {
  count_t exchanges = 0;     ///< logical exchange() calls
  count_t phases = 0;        ///< alltoallv rounds issued (>= exchanges)
  count_t records_sent = 0;  ///< records staged, incl. self-destined
  count_t bytes_sent = 0;    ///< wire bytes (self-destined data is free)
  double seconds = 0.0;      ///< wall time inside exchange()/start()/finish()

  // Overlap accounting for the split start()/finish() path (blocking
  // exchange() calls never touch these).
  count_t overlapped = 0;           ///< exchanges driven via start()/finish()
  count_t max_inflight_bytes = 0;   ///< peak payload bytes held in flight
  double start_seconds = 0.0;       ///< wall time inside start()
  double finish_seconds = 0.0;      ///< wall time inside finish()
};

/// In-flight state of one started exchange. Owned by the Exchanger;
/// it holds the snapshot of the caller's send payload (`staging_`),
/// the per-destination layout, and the cursor of the phase currently
/// on the wire, so nothing the caller owns needs to survive between
/// start() and finish().
class AsyncExchange {
 public:
  bool active() const { return active_; }
  /// Payload bytes currently in flight (total staged send payload).
  count_t bytes_in_flight() const {
    return active_ ? total_ * static_cast<count_t>(elem_) : 0;
  }

 private:
  friend class Exchanger;

  std::vector<std::byte> staging_;   ///< owned payload snapshot (start())
  std::vector<count_t> counts_;      ///< per-destination element counts
  std::vector<count_t> offsets_;     ///< prefix sums of counts_
  const std::byte* wire_ = nullptr;  ///< payload the phases slice from
  std::size_t elem_ = 0;             ///< element size in bytes
  count_t total_ = 0;                ///< total elements staged
  count_t max_records_ = 0;          ///< per-phase record cap
  count_t nphases_ = 0;              ///< agreed global phase count
  count_t phase_ = 0;                ///< phase currently in flight
  bool active_ = false;
};

class Exchanger {
 public:
  /// max_send_bytes == 0 means unbounded (one alltoallv per exchange);
  /// a positive bound caps each phase's send payload (always admitting
  /// at least one record per phase). Same value required on all ranks.
  explicit Exchanger(count_t max_send_bytes = 0)
      : max_send_bytes_(max_send_bytes) {}

  count_t max_send_bytes() const { return max_send_bytes_; }
  void set_max_send_bytes(count_t bytes) { max_send_bytes_ = bytes; }

  /// Exchange `counts[r]` records per destination rank r, laid out
  /// contiguously in destination order starting at `send`. Returns the
  /// concatenated arrivals grouped by source rank (alltoallv
  /// semantics, regardless of phasing).
  template <typename T>
  std::span<const T> exchange(sim::Comm& comm, const T* send,
                              const std::vector<count_t>& counts,
                              std::vector<count_t>* recvcounts_out = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire records must be trivially copyable");
    // Blocking path: the caller's buffer outlives the call, so the
    // phases slice it directly — no payload snapshot.
    start_bytes(comm, reinterpret_cast<const std::byte*>(send), sizeof(T),
                counts, StartMode::kBlocking);
    finish_bytes(comm);
    if (recvcounts_out) *recvcounts_out = rcounts_;
    return {reinterpret_cast<const T*>(recv_bytes_.data()),
            static_cast<std::size_t>(recv_total_)};
  }

  template <typename T>
  std::span<const T> exchange(sim::Comm& comm, const std::vector<T>& send,
                              const std::vector<count_t>& counts,
                              std::vector<count_t>* recvcounts_out = nullptr) {
    return exchange(comm, send.data(), counts, recvcounts_out);
  }

  /// Exchange a DestBuckets' staged records.
  template <typename T>
  std::span<const T> exchange(sim::Comm& comm, const DestBuckets<T>& buckets,
                              std::vector<count_t>* recvcounts_out = nullptr) {
    return exchange(comm, buckets.records().data(), buckets.counts(),
                    recvcounts_out);
  }

  /// Collective: kick off an exchange and return immediately. The
  /// payload is snapshotted into the AsyncExchange handle, so `send`
  /// may be reused or destroyed as soon as this returns. Run local
  /// compute, then drain with finish<T>(). Only one exchange may be in
  /// flight per Exchanger (and per rank, substrate-wide).
  template <typename T>
  void start(sim::Comm& comm, const T* send,
             const std::vector<count_t>& counts) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire records must be trivially copyable");
    start_bytes(comm, reinterpret_cast<const std::byte*>(send), sizeof(T),
                counts, StartMode::kSnapshot);
  }

  template <typename T>
  void start(sim::Comm& comm, const std::vector<T>& send,
             const std::vector<count_t>& counts) {
    start(comm, send.data(), counts);
  }

  template <typename T>
  void start(sim::Comm& comm, const DestBuckets<T>& buckets) {
    start(comm, buckets.records().data(), buckets.counts());
  }

  /// start() without the payload snapshot, for callers whose send
  /// buffer provably stays valid and unmodified until finish<T>()
  /// returns (a persistent staging buffer or DestBuckets member).
  /// Saves a full-payload copy per exchange on hot per-superstep
  /// paths; when in doubt use start().
  template <typename T>
  void start_inplace(sim::Comm& comm, const T* send,
                     const std::vector<count_t>& counts) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire records must be trivially copyable");
    start_bytes(comm, reinterpret_cast<const std::byte*>(send), sizeof(T),
                counts, StartMode::kAlias);
  }

  template <typename T>
  void start_inplace(sim::Comm& comm, const DestBuckets<T>& buckets) {
    start_inplace(comm, buckets.records().data(), buckets.counts());
  }

  /// Collective: drain the in-flight exchange started with start<T>().
  /// T must match the started type. Returns the same grouped-by-source
  /// span the blocking exchange() would have.
  template <typename T>
  std::span<const T> finish(sim::Comm& comm,
                            std::vector<count_t>* recvcounts_out = nullptr) {
    XTRA_ASSERT_MSG(pending_.elem_ == sizeof(T),
                    "finish<T> must match the started element type");
    finish_bytes(comm);
    if (recvcounts_out) *recvcounts_out = rcounts_;
    return {reinterpret_cast<const T*>(recv_bytes_.data()),
            static_cast<std::size_t>(recv_total_)};
  }

  bool in_flight() const { return pending_.active(); }
  const AsyncExchange& pending() const { return pending_; }

  const ExchangeStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ExchangeStats{}; }

 private:
  /// How start_bytes treats the caller's payload: kBlocking and
  /// kAlias slice it in place (it must outlive the finish half —
  /// trivially true for the blocking wrapper); kSnapshot copies it
  /// into the AsyncExchange staging. kAlias and kSnapshot count as
  /// overlapped exchanges.
  enum class StartMode { kBlocking, kSnapshot, kAlias };

  /// Untyped first half: stages the payload, agrees on the phase
  /// count, and posts phase 0.
  void start_bytes(sim::Comm& comm, const std::byte* send, std::size_t elem,
                   const std::vector<count_t>& counts, StartMode mode);
  /// Untyped second half: drains phases (posting each successor),
  /// leaving the result in recv_bytes_/recv_total_/rcounts_.
  void finish_bytes(sim::Comm& comm);

  count_t max_send_bytes_ = 0;
  ExchangeStats stats_;
  AsyncExchange pending_;  ///< in-flight state between start and finish

  // Wire-side scratch, reused across calls.
  std::vector<std::byte> recv_bytes_;   ///< final grouped-by-source result
  count_t recv_total_ = 0;              ///< elements in recv_bytes_
  std::vector<count_t> rcounts_;        ///< per-source element counts
  std::vector<count_t> phase_counts_;   ///< per-dest counts, one phase
  std::vector<count_t> phase_rcounts_;  ///< per-source counts, one phase
  std::vector<std::byte> phase_bytes_;  ///< one phase's arrivals
  std::vector<count_t> cursor_;         ///< reassembly write positions
};

}  // namespace xtra::comm
