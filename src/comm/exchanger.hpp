// Exchanger — persistent, memory-bounded wrapper over
// sim::Comm::alltoallv.
//
// The paper reaches trillion-edge scale because its ghost-update
// exchange is memory-bounded: send buffers are built once per phase,
// capped in size, and communicated in chunks rather than one unbounded
// Alltoallv. An Exchanger reproduces that contract: with
// max_send_bytes == 0 it issues a single alltoallv; with a positive
// bound it splits the (destination-grouped) send buffer into phases of
// at most max_send_bytes each — chunk boundaries fall inside
// per-destination runs, and the receive side reassembles arrivals by
// source rank, so the result is bit-identical to the single alltoallv
// for any bound.
//
// The exchange is split into explicit start()/finish() halves so a
// caller can kick off the wire transfer and run local compute before
// draining it. start() snapshots the caller's payload into the
// AsyncExchange handle (the caller's buffer is released the moment
// start() returns) and posts the first phase; finish() drains the
// in-flight phase, posts the next, and reassembles arrivals. The
// blocking exchange() is a thin start+finish wrapper (minus the
// payload snapshot — its caller's buffer is valid throughout), so both
// paths share one implementation and produce byte-identical results
// and identical wire accounting. Between start() and finish() any
// blocking collectives may run, and other Exchangers may start, drain,
// and finish their own exchanges: each started exchange acquires its
// own substrate channel (up to sim::kMaxChannels in flight per rank).
//
// Two transport backends (comm/backend.hpp) produce bit-identical
// results: the default kTwoSided pushes payload through the
// substrate's nonblocking alltoallv; kOneSided exposes the
// destination-grouped payload in a one-sided window (counts travel as
// registration metadata) and consumers win_get their segments
// passively — the pull happens in the drain half, so start/compute/
// drain overlap works unchanged, and the whole pull completes in one
// drain step (like the hierarchical path). One-sided mode is
// receiver-paced, so max_send_bytes does not split it into wire
// phases.
//
// The finish half can also be driven incrementally: drain_one()
// completes one phase at a time and hands each phase's arrivals to a
// consumer callback as they land (try_finish() is the poll-style
// twin), so compute can consume arrivals mid-exchange instead of after
// the last phase — the hook the cross-superstep SuperstepPipeline in
// graph/halo.hpp builds on. finish() is a loop over the same drain
// step, so one-shot and incremental draining are bit-identical.
//
// The object owns all wire-side scratch (receive bytes, per-phase
// counts, reassembly cursors) and reuses it across calls, so a
// persistent Exchanger makes the per-iteration exchange of
// label-propagation allocation-free on the send path. It also
// aggregates ExchangeStats across calls for bench reporting.
//
// exchange()/start()/finish() are collective (bounded mode agrees on a
// global phase count with one allreduce); every rank must call them
// with the same max_send_bytes. Returned spans alias the receive
// scratch and are valid until the next exchange()/start() on the same
// object.
//
// With ShardPolicy::kHierarchical the exchange is routed over the
// node topology sim::Comm exposes: records for co-located
// destinations travel directly (node-local), and all inter-node
// records funnel through the node leaders — one coalesced
// leader-to-leader message per destination node per phase — before a
// node-local scatter delivers them. Results are bit-identical to the
// flat path for any max_send_bytes; the win is fewer (larger)
// inter-node messages, visible in ExchangeStats' inter_node_msgs /
// inter_node_bytes / intra_node_bytes ledger.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "comm/backend.hpp"
#include "comm/dest_buckets.hpp"
#include "comm/shard_policy.hpp"
#include "mpisim/comm.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace xtra::comm {

/// Aggregated accounting over every exchange() on one Exchanger.
struct ExchangeStats {
  count_t exchanges = 0;     ///< logical exchange() calls
  count_t phases = 0;        ///< alltoallv rounds issued
  count_t records_sent = 0;  ///< records staged, incl. self-destined
  count_t bytes_sent = 0;    ///< wire bytes (self-destined data is free)
  double seconds = 0.0;      ///< wall time inside exchange()/start()/finish()

  // Topology accounting: where the payload bytes landed relative to
  // the node grouping (sim::Comm::node_of). Message counts are per
  // phase per destination with data, matching the substrate's
  // messages_sent; the hierarchical policy exists to shrink
  // inter_node_msgs without changing results.
  count_t inter_node_bytes = 0;  ///< payload bytes crossing nodes
  count_t intra_node_bytes = 0;  ///< payload bytes between co-located ranks
  count_t inter_node_msgs = 0;   ///< point-to-point segments crossing nodes

  /// Cross-superstep flushes performed by a CoalescingExchanger that
  /// owns this engine (plain exchanges never touch it).
  count_t coalesced_flushes = 0;

  // Overlap accounting for the split start()/finish() path (blocking
  // exchange() calls never touch these).
  count_t overlapped = 0;           ///< exchanges driven via start()/finish()
  count_t max_inflight_bytes = 0;   ///< peak payload bytes held in flight
  double start_seconds = 0.0;       ///< wall time inside start()
  double finish_seconds = 0.0;      ///< wall time inside finish()

  // Incremental-drain / cross-superstep pipeline ledger. One-shot
  // finish() never touches these; drain_one()/try_finish() mark the
  // exchange incrementally drained, and a SuperstepPipeline that
  // carries a refresh across a superstep boundary records the carry
  // (and the deepest carry seen) via note_pipeline_carry().
  count_t drained_incrementally = 0;  ///< exchanges consumed phase by phase
  count_t pipeline_carried = 0;       ///< refreshes carried across supersteps
  count_t max_pipeline_depth = 0;     ///< deepest superstep carry observed

  // One-sided (Backend::kOneSided) per-op ledger: pulls this Exchanger
  // issued against peers' exposed windows, and the remote payload they
  // fetched (self-target pulls are free, matching the substrate).
  count_t one_sided_gets = 0;
  count_t one_sided_bytes = 0;

  // Out-of-core segment-cache ledger (graph::SegmentCache, DESIGN.md
  // §9). Exchangers themselves never touch these; the engine folds the
  // graph's per-run cache delta in here so the cache shows up next to
  // the wire accounting in COMM_STATS_JSON. seg_fetch_bytes counts
  // backing traffic (spill reads or fetch-lane win_gets) — it is
  // deliberately NOT part of bytes_sent, so the exchange wire ledger
  // stays bit-identical between in-core and out-of-core runs.
  count_t seg_hits = 0;
  count_t seg_misses = 0;
  count_t seg_evictions = 0;
  count_t seg_prefetch_hits = 0;
  count_t seg_fetch_bytes = 0;
  double seg_stall_seconds = 0.0;  ///< modeled demand-fetch latency

  /// Fold another ledger into this one: counters and times add, peak
  /// fields take the max. Used by HaloPlan's lane aggregation and the
  /// engine's per-run rollup.
  void merge_from(const ExchangeStats& from) {
    exchanges += from.exchanges;
    phases += from.phases;
    records_sent += from.records_sent;
    bytes_sent += from.bytes_sent;
    seconds += from.seconds;
    inter_node_bytes += from.inter_node_bytes;
    intra_node_bytes += from.intra_node_bytes;
    inter_node_msgs += from.inter_node_msgs;
    coalesced_flushes += from.coalesced_flushes;
    overlapped += from.overlapped;
    max_inflight_bytes = std::max(max_inflight_bytes, from.max_inflight_bytes);
    start_seconds += from.start_seconds;
    finish_seconds += from.finish_seconds;
    drained_incrementally += from.drained_incrementally;
    pipeline_carried += from.pipeline_carried;
    max_pipeline_depth = std::max(max_pipeline_depth, from.max_pipeline_depth);
    one_sided_gets += from.one_sided_gets;
    one_sided_bytes += from.one_sided_bytes;
    seg_hits += from.seg_hits;
    seg_misses += from.seg_misses;
    seg_evictions += from.seg_evictions;
    seg_prefetch_hits += from.seg_prefetch_hits;
    seg_fetch_bytes += from.seg_fetch_bytes;
    seg_stall_seconds += from.seg_stall_seconds;
  }
};

/// In-flight state of one started exchange. Owned by the Exchanger;
/// it holds the snapshot of the caller's send payload (`staging_`),
/// the per-destination layout, and the cursor of the phase currently
/// on the wire, so nothing the caller owns needs to survive between
/// start() and finish().
class AsyncExchange {
 public:
  bool active() const { return active_; }
  /// Payload bytes currently in flight (total staged send payload).
  count_t bytes_in_flight() const {
    return active_ ? total_ * static_cast<count_t>(elem_) : 0;
  }

 private:
  friend class Exchanger;

  std::vector<std::byte> staging_;   ///< owned payload snapshot (start())
  std::vector<count_t> counts_;      ///< per-destination element counts
  std::vector<count_t> offsets_;     ///< prefix sums of counts_
  const std::byte* wire_ = nullptr;  ///< payload the phases slice from
  std::size_t elem_ = 0;             ///< element size in bytes
  count_t total_ = 0;                ///< total elements staged
  count_t max_records_ = 0;          ///< per-phase record cap
  count_t nphases_ = 0;              ///< agreed global phase count
  count_t phase_ = 0;                ///< phase currently in flight
  int channel_ = 0;                  ///< substrate channel (two-sided)
  int win_ = 0;                      ///< substrate window (one-sided)
  bool active_ = false;
  bool counted_incremental_ = false;  ///< drained_incrementally billed
};

class Exchanger {
 public:
  /// max_send_bytes == 0 means unbounded (one alltoallv per exchange);
  /// a positive bound caps each phase's send payload (always admitting
  /// at least one record per phase — a bound smaller than one record
  /// clamps to sizeof(T), never to a zero-progress phase plan). Same
  /// value required on all ranks.
  explicit Exchanger(count_t max_send_bytes = 0,
                     ShardPolicy policy = ShardPolicy::kFlat,
                     Backend backend = Backend::kTwoSided);
  ~Exchanger();
  Exchanger(Exchanger&&) noexcept;
  Exchanger& operator=(Exchanger&&) noexcept;

  count_t max_send_bytes() const { return max_send_bytes_; }
  void set_max_send_bytes(count_t bytes) { max_send_bytes_ = bytes; }

  ShardPolicy shard_policy() const { return policy_; }
  /// Switch routing policy; results are bit-identical either way. Same
  /// value required on all ranks; may not change mid-flight.
  void set_shard_policy(ShardPolicy policy) {
    XTRA_ASSERT_MSG(!pending_.active(),
                    "cannot change shard policy mid-exchange");
    policy_ = policy;
  }

  /// Attribution tag passed to the substrate with every channel
  /// acquisition and window exposure this Exchanger performs; shows up
  /// in channel-exhaustion and verifier diagnostics. Must point at
  /// storage outliving the Exchanger (string literals, in practice).
  const char* label() const { return label_; }
  void set_label(const char* label) { label_ = label; }

  Backend backend() const { return backend_; }
  /// Switch transport backend; results are bit-identical either way.
  /// Same value required on all ranks; may not change mid-flight.
  void set_backend(Backend backend) {
    XTRA_ASSERT_MSG(!pending_.active(),
                    "cannot change transport backend mid-exchange");
    backend_ = backend;
  }

  /// Exchange `counts[r]` records per destination rank r, laid out
  /// contiguously in destination order starting at `send`. Returns the
  /// concatenated arrivals grouped by source rank (alltoallv
  /// semantics, regardless of phasing).
  template <typename T>
  std::span<const T> exchange(sim::Comm& comm, const T* send,
                              const std::vector<count_t>& counts,
                              std::vector<count_t>* recvcounts_out = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire records must be trivially copyable");
    // Blocking path: the caller's buffer outlives the call, so the
    // phases slice it directly — no payload snapshot.
    start_bytes(comm, reinterpret_cast<const std::byte*>(send), sizeof(T),
                counts, StartMode::kBlocking);
    finish_bytes(comm);
    if (recvcounts_out) *recvcounts_out = rcounts_;
    return {reinterpret_cast<const T*>(recv_bytes_.data()),
            static_cast<std::size_t>(recv_total_)};
  }

  template <typename T>
  std::span<const T> exchange(sim::Comm& comm, const std::vector<T>& send,
                              const std::vector<count_t>& counts,
                              std::vector<count_t>* recvcounts_out = nullptr) {
    return exchange(comm, send.data(), counts, recvcounts_out);
  }

  /// Exchange a DestBuckets' staged records.
  template <typename T>
  std::span<const T> exchange(sim::Comm& comm, const DestBuckets<T>& buckets,
                              std::vector<count_t>* recvcounts_out = nullptr) {
    return exchange(comm, buckets.records().data(), buckets.counts(),
                    recvcounts_out);
  }

  /// Collective: kick off an exchange and return immediately. The
  /// payload is snapshotted into the AsyncExchange handle, so `send`
  /// may be reused or destroyed as soon as this returns. Run local
  /// compute, then drain with finish<T>(). Only one exchange may be in
  /// flight per Exchanger (and per rank, substrate-wide).
  template <typename T>
  void start(sim::Comm& comm, const T* send,
             const std::vector<count_t>& counts) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire records must be trivially copyable");
    start_bytes(comm, reinterpret_cast<const std::byte*>(send), sizeof(T),
                counts, StartMode::kSnapshot);
  }

  template <typename T>
  void start(sim::Comm& comm, const std::vector<T>& send,
             const std::vector<count_t>& counts) {
    start(comm, send.data(), counts);
  }

  template <typename T>
  void start(sim::Comm& comm, const DestBuckets<T>& buckets) {
    start(comm, buckets.records().data(), buckets.counts());
  }

  /// start() without the payload snapshot, for callers whose send
  /// buffer provably stays valid and unmodified until finish<T>()
  /// returns (a persistent staging buffer or DestBuckets member).
  /// Saves a full-payload copy per exchange on hot per-superstep
  /// paths; when in doubt use start().
  template <typename T>
  void start_inplace(sim::Comm& comm, const T* send,
                     const std::vector<count_t>& counts) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire records must be trivially copyable");
    start_bytes(comm, reinterpret_cast<const std::byte*>(send), sizeof(T),
                counts, StartMode::kAlias);
  }

  template <typename T>
  void start_inplace(sim::Comm& comm, const DestBuckets<T>& buckets) {
    start_inplace(comm, buckets.records().data(), buckets.counts());
  }

  /// Collective: drain the in-flight exchange started with start<T>().
  /// T must match the started type. Returns the same grouped-by-source
  /// span the blocking exchange() would have.
  template <typename T>
  std::span<const T> finish(sim::Comm& comm,
                            std::vector<count_t>* recvcounts_out = nullptr) {
    XTRA_ASSERT_MSG(pending_.elem_ == sizeof(T),
                    "finish<T> must match the started element type");
    finish_bytes(comm);
    if (recvcounts_out) *recvcounts_out = rcounts_;
    return {reinterpret_cast<const T*>(recv_bytes_.data()),
            static_cast<std::size_t>(recv_total_)};
  }

  /// Collective: complete exactly one phase of the in-flight exchange
  /// and hand that phase's arrivals to `consume` as they land, posting
  /// the successor phase so it is on the wire while the caller keeps
  /// computing. `consume` is invoked once per source rank with data in
  /// the drained phase, as
  ///   consume(int source, count_t dst_offset, std::span<const T> recs)
  /// where dst_offset is the element offset of the segment in the
  /// final grouped-by-source result (the records are already installed
  /// there, so the span stays valid until the next exchange()/start()
  /// on this object). Returns true while phases remain in flight; the
  /// call that returns false leaves the full result exactly as
  /// finish<T>() would have. Draining the hierarchical path (and the
  /// unbounded single-phase plan) completes in one step — its arrivals
  /// only become final after the last reassembly round.
  template <typename T, typename Consume>
  bool drain_one(sim::Comm& comm, Consume&& consume) {
    XTRA_ASSERT_MSG(pending_.elem_ == sizeof(T),
                    "drain_one<T> must match the started element type");
    note_incremental();
    const bool more = drain_step_bytes(comm);
    const T* base = reinterpret_cast<const T*>(recv_bytes_.data());
    for (const PhaseSegment& s : drained_segs_)
      consume(s.source, s.dst_offset,
              std::span<const T>(base + s.dst_offset,
                                 static_cast<std::size_t>(s.count)));
    return more;
  }

  /// Collective: drain at most one phase; returns the full
  /// grouped-by-source result once the exchange has fully drained
  /// (exactly what finish<T>() returns), or nullopt while phases
  /// remain in flight. Poll-style twin of drain_one for callers that
  /// only need the completed result.
  template <typename T>
  std::optional<std::span<const T>> try_finish(
      sim::Comm& comm, std::vector<count_t>* recvcounts_out = nullptr) {
    XTRA_ASSERT_MSG(pending_.elem_ == sizeof(T),
                    "try_finish<T> must match the started element type");
    note_incremental();
    if (drain_step_bytes(comm)) return std::nullopt;
    if (recvcounts_out) *recvcounts_out = rcounts_;
    return std::span<const T>(
        reinterpret_cast<const T*>(recv_bytes_.data()),
        static_cast<std::size_t>(recv_total_));
  }

  /// Drain steps left in the in-flight exchange (0 when idle). The
  /// phase count is collectively agreed at start, so the value is
  /// rank-uniform — callers can size compute chunks to interleave with
  /// exactly this many drain_one calls.
  count_t phases_remaining() const {
    if (!pending_.active_) return 0;
    return std::max<count_t>(1, pending_.nphases_ - pending_.phase_);
  }

  /// Pipeline ledger hook (SuperstepPipeline): a started refresh was
  /// carried in flight across `depth` superstep boundaries before
  /// draining.
  void note_pipeline_carry(count_t depth) {
    ++stats_.pipeline_carried;
    stats_.max_pipeline_depth = std::max(stats_.max_pipeline_depth, depth);
  }

  bool in_flight() const { return pending_.active(); }
  const AsyncExchange& pending() const { return pending_; }

  const ExchangeStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ExchangeStats{}; }

 private:
  friend class CoalescingExchanger;

  /// How start_bytes treats the caller's payload: kBlocking and
  /// kAlias slice it in place (it must outlive the finish half —
  /// trivially true for the blocking wrapper); kSnapshot copies it
  /// into the AsyncExchange staging. kAlias and kSnapshot count as
  /// overlapped exchanges.
  enum class StartMode { kBlocking, kSnapshot, kAlias };

  struct Hier;  ///< hierarchical-routing state (sub-exchanges, layouts)

  /// One arrived segment of the most recently drained phase: `count`
  /// elements from `source`, installed at element offset `dst_offset`
  /// of the final grouped-by-source result.
  struct PhaseSegment {
    int source;
    count_t dst_offset;
    count_t count;
  };

  /// Untyped first half: stages the payload, agrees on the phase
  /// count, and posts phase 0.
  void start_bytes(sim::Comm& comm, const std::byte* send, std::size_t elem,
                   const std::vector<count_t>& counts, StartMode mode);
  /// Untyped second half: drains phases (posting each successor),
  /// leaving the result in recv_bytes_/recv_total_/rcounts_. A loop
  /// over drain_step_bytes, so the one-shot and incremental paths are
  /// one implementation.
  void finish_bytes(sim::Comm& comm);
  /// Untyped single drain step: completes one phase (or the whole
  /// hierarchical protocol), installs its arrivals in recv_bytes_,
  /// records the arrived segments in drained_segs_, and posts the next
  /// phase. Returns whether the exchange is still in flight.
  bool drain_step_bytes(sim::Comm& comm);
  /// Record the whole grouped-by-source result as drained segments
  /// (single-phase, hierarchical, and all-empty completions).
  void note_full_result_segments();
  /// Bill the in-flight exchange as incrementally drained (once).
  void note_incremental() {
    if (pending_.active_ && !pending_.counted_incremental_) {
      pending_.counted_incremental_ = true;
      ++stats_.drained_incrementally;
    }
  }

  // Hierarchical halves (policy == kHierarchical): three flat
  // sub-exchanges — intra-node gather, leader alltoallv, intra-node
  // scatter — reassembled into the same grouped-by-source result.
  // All payload modes behave alike here: the round-1 staging copy
  // releases the caller's buffer during start regardless. The rounds
  // inherit the parent's transport backend, so hierarchical routing
  // composes with one-sided pulls.
  void start_hier(sim::Comm& comm, const std::byte* send, std::size_t elem,
                  const std::vector<count_t>& counts, count_t total);
  void finish_hier(sim::Comm& comm);

  // One-sided halves (backend == kOneSided, flat routing): start
  // exposes the staged payload + counts metadata in a window; the
  // drain pulls every per-source segment with win_get and closes the
  // epoch. Single drain step, like the hierarchical path.
  void start_onesided(sim::Comm& comm, std::size_t elem);
  void finish_onesided(sim::Comm& comm);

  /// Topology ledger for one posted phase: splits the payload into
  /// inter-/intra-node bytes and counts inter-node segments.
  void account_phase(sim::Comm& comm, const std::vector<count_t>& counts,
                     std::size_t elem);

  count_t max_send_bytes_ = 0;
  ShardPolicy policy_ = ShardPolicy::kFlat;
  Backend backend_ = Backend::kTwoSided;
  const char* label_ = "comm::Exchanger";
  ExchangeStats stats_;
  AsyncExchange pending_;  ///< in-flight state between start and finish
  bool hier_inflight_ = false;  ///< pending exchange uses the hier path
  bool onesided_inflight_ = false;  ///< pending exchange is an exposed window

  // Wire-side scratch, reused across calls.
  std::vector<std::byte> recv_bytes_;   ///< final grouped-by-source result
  count_t recv_total_ = 0;              ///< elements in recv_bytes_
  std::vector<count_t> rcounts_;        ///< per-source element counts
  std::vector<count_t> phase_counts_;   ///< per-dest counts, one phase
  std::vector<count_t> phase_rcounts_;  ///< per-source counts, one phase
  std::vector<std::byte> phase_bytes_;  ///< one phase's arrivals
  std::vector<count_t> cursor_;         ///< reassembly write positions
  std::vector<PhaseSegment> drained_segs_;  ///< last drained phase's arrivals
  std::unique_ptr<Hier> hier_;          ///< lazily built on first hier use
};

}  // namespace xtra::comm
