// Exchanger — persistent, memory-bounded wrapper over
// sim::Comm::alltoallv.
//
// The paper reaches trillion-edge scale because its ghost-update
// exchange is memory-bounded: send buffers are built once per phase,
// capped in size, and communicated in chunks rather than one unbounded
// Alltoallv. An Exchanger reproduces that contract: with
// max_send_bytes == 0 it issues a single alltoallv; with a positive
// bound it splits the (destination-grouped) send buffer into phases of
// at most max_send_bytes each — chunk boundaries fall inside
// per-destination runs, and the receive side reassembles arrivals by
// source rank, so the result is bit-identical to the single alltoallv
// for any bound.
//
// The object owns all wire-side scratch (receive bytes, per-phase
// counts, reassembly cursors) and reuses it across calls, so a
// persistent Exchanger makes the per-iteration exchange of
// label-propagation allocation-free on the send path. It also
// aggregates ExchangeStats across calls for bench reporting.
//
// exchange() is collective (bounded mode agrees on a global phase
// count with one allreduce); every rank must call it with the same
// max_send_bytes. Returned spans alias the receive scratch and are
// valid until the next exchange() on the same object.
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "comm/dest_buckets.hpp"
#include "mpisim/comm.hpp"
#include "util/types.hpp"

namespace xtra::comm {

/// Aggregated accounting over every exchange() on one Exchanger.
struct ExchangeStats {
  count_t exchanges = 0;     ///< logical exchange() calls
  count_t phases = 0;        ///< alltoallv rounds issued (>= exchanges)
  count_t records_sent = 0;  ///< records staged, incl. self-destined
  count_t bytes_sent = 0;    ///< wire bytes (self-destined data is free)
  double seconds = 0.0;      ///< wall time inside exchange()
};

class Exchanger {
 public:
  /// max_send_bytes == 0 means unbounded (one alltoallv per exchange);
  /// a positive bound caps each phase's send payload (always admitting
  /// at least one record per phase). Same value required on all ranks.
  explicit Exchanger(count_t max_send_bytes = 0)
      : max_send_bytes_(max_send_bytes) {}

  count_t max_send_bytes() const { return max_send_bytes_; }
  void set_max_send_bytes(count_t bytes) { max_send_bytes_ = bytes; }

  /// Exchange `counts[r]` records per destination rank r, laid out
  /// contiguously in destination order starting at `send`. Returns the
  /// concatenated arrivals grouped by source rank (alltoallv
  /// semantics, regardless of phasing).
  template <typename T>
  std::span<const T> exchange(sim::Comm& comm, const T* send,
                              const std::vector<count_t>& counts,
                              std::vector<count_t>* recvcounts_out = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire records must be trivially copyable");
    exchange_bytes(comm, reinterpret_cast<const std::byte*>(send), sizeof(T),
                   counts);
    if (recvcounts_out) *recvcounts_out = rcounts_;
    return {reinterpret_cast<const T*>(recv_bytes_.data()),
            static_cast<std::size_t>(recv_total_)};
  }

  template <typename T>
  std::span<const T> exchange(sim::Comm& comm, const std::vector<T>& send,
                              const std::vector<count_t>& counts,
                              std::vector<count_t>* recvcounts_out = nullptr) {
    return exchange(comm, send.data(), counts, recvcounts_out);
  }

  /// Exchange a DestBuckets' staged records.
  template <typename T>
  std::span<const T> exchange(sim::Comm& comm, const DestBuckets<T>& buckets,
                              std::vector<count_t>* recvcounts_out = nullptr) {
    return exchange(comm, buckets.records().data(), buckets.counts(),
                    recvcounts_out);
  }

  const ExchangeStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ExchangeStats{}; }

 private:
  /// Untyped core: runs the (possibly phased) exchange, leaving the
  /// result in recv_bytes_/recv_total_/rcounts_.
  void exchange_bytes(sim::Comm& comm, const std::byte* send,
                      std::size_t elem, const std::vector<count_t>& counts);

  count_t max_send_bytes_ = 0;
  ExchangeStats stats_;

  // Wire-side scratch, reused across calls.
  std::vector<std::byte> recv_bytes_;   ///< final grouped-by-source result
  count_t recv_total_ = 0;              ///< elements in recv_bytes_
  std::vector<count_t> rcounts_;        ///< per-source element counts

  // Phased-mode scratch. The receive side never double-buffers: final
  // per-source totals are exchanged up front (one small alltoall) and
  // each phase's arrivals are scattered straight into recv_bytes_.
  std::vector<count_t> send_offsets_;   ///< prefix sums of send counts
  std::vector<count_t> phase_counts_;   ///< per-dest counts, one phase
  std::vector<count_t> phase_rcounts_;  ///< per-source counts, one phase
  std::vector<std::byte> phase_bytes_;  ///< one phase's arrivals
  std::vector<count_t> cursor_;         ///< reassembly write positions
};

}  // namespace xtra::comm
