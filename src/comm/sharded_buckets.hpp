// ShardedBuckets — chunk-sharded parallel emission in front of
// DestBuckets' serial two-pass protocol.
//
// DestBuckets assigns slots by traversal order, so the emission loop is
// order-sensitive and cannot be threaded directly. The shard layer
// splits it: emit() runs the (expensive) record production chunked on
// the ambient thread pool (util/parallel.hpp), each chunk appending to
// its own shard in emission order; place() then replays the shards in
// chunk-index order through count/commit/push on the rank thread.
// Because the chunks partition the index range in order, the replayed
// traversal IS the serial traversal — every record lands in the slot a
// serial emission would have given it, at any thread count.
//
// place() never touches the wire itself; hand the filled DestBuckets to
// an Exchanger/query_reply on the rank thread as usual.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "comm/dest_buckets.hpp"
#include "util/parallel.hpp"
#include "util/types.hpp"

namespace xtra::comm {

template <typename Item>
class ShardedBuckets {
 public:
  /// Parallel emission over [0, total): body(c, lo, hi, put) produces
  /// chunk c's records via put(dest, item), in the order the serial
  /// loop over [lo, hi) would have produced them.
  template <typename Body>
  void emit(count_t total, Body&& body) {
    const count_t nchunks = par::chunk_count(total);
    if (static_cast<count_t>(shards_.size()) < nchunks)
      shards_.resize(static_cast<std::size_t>(nchunks));
    n_shards_ = nchunks;
    par::for_chunks(total, [&](count_t c, count_t lo, count_t hi) {
      auto& shard = shards_[static_cast<std::size_t>(c)];
      shard.clear();
      body(c, lo, hi, [&shard](int dest, const Item& item) {
        shard.push_back({dest, item});
      });
    });
  }

  /// Records emitted by the last emit() (== the slot count place()
  /// will fill); callers size slot-aligned side arrays from this.
  count_t total() const {
    count_t n = 0;
    for (count_t c = 0; c < n_shards_; ++c)
      n += static_cast<count_t>(shards_[static_cast<std::size_t>(c)].size());
    return n;
  }

  /// Serial chunk-order merge into `out`: the full begin/count/commit/
  /// push protocol with make(item) -> wire record, calling
  /// on_place(slot, item) per record for slot-aligned side arrays.
  template <typename T, typename MakeFn, typename OnPlace>
  void place(DestBuckets<T>& out, int nranks, MakeFn&& make,
             OnPlace&& on_place) {
    out.begin(nranks);
    for (count_t c = 0; c < n_shards_; ++c)
      for (const Tagged& t : shards_[static_cast<std::size_t>(c)])
        out.count(t.dest);
    out.commit();
    for (count_t c = 0; c < n_shards_; ++c)
      for (const Tagged& t : shards_[static_cast<std::size_t>(c)]) {
        const count_t slot = out.push(t.dest, make(t.item));
        on_place(slot, t.item);
      }
  }

 private:
  struct Tagged {
    int dest;
    Item item;
  };

  std::vector<std::vector<Tagged>> shards_;  ///< per emission chunk
  count_t n_shards_ = 0;
};

}  // namespace xtra::comm
