// DestBuckets — the two-pass stamp/count/prefix-sum/fill bucketing
// engine behind every point-to-point exchange (Algorithm 3's send-side
// structure, generalized from the partitioner's ExchangeUpdates).
//
// Builds an alltoallv-ready send buffer: records destined for rank r
// laid out contiguously, in destination-rank order. All scratch —
// per-destination counts, prefix-summed offsets, fill cursors, the
// toSend stamp mask, and the record buffer itself — is owned by the
// object and reused across calls, so steady-state use (one exchange per
// label-propagation iteration) allocates nothing.
//
// Protocol per exchange:
//   begin(nranks);
//   pass 1: count(dest) / count_once(dest, key) per record;
//   commit();
//   pass 2 (same traversal order): push(dest, rec) / push_once(...);
// then hand records()/counts() to an Exchanger.
//
// count_once/push_once implement the paper's toSend mask: for a given
// key (e.g. the queue index of the vertex being broadcast) at most one
// record per destination is admitted; the mask is "cleared" in O(1) by
// stamping with the key instead of re-zeroing. Keys must be distinct
// per logical item and != ~std::size_t(0).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace xtra::comm {

template <typename T>
class DestBuckets {
 public:
  /// Start a new exchange: zero the counts, clear the stamp mask.
  void begin(int nranks) {
    counts_.assign(static_cast<std::size_t>(nranks), 0);
    stamp_.assign(static_cast<std::size_t>(nranks), kNoStamp);
  }

  void count(int dest) { ++counts_[static_cast<std::size_t>(dest)]; }

  /// Count at most once per (dest, key); returns whether it counted.
  bool count_once(int dest, std::size_t key) {
    const auto d = static_cast<std::size_t>(dest);
    if (stamp_[d] == key) return false;
    stamp_[d] = key;
    ++counts_[d];
    return true;
  }

  /// Finish the count pass: prefix-sum the offsets, size the record
  /// buffer, rewind the cursors and the stamp mask for the fill pass.
  void commit() {
    offsets_.resize(counts_.size() + 1);
    count_t running = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      offsets_[i] = running;
      running += counts_[i];
    }
    offsets_[counts_.size()] = running;
    cursor_.assign(offsets_.begin(), offsets_.end() - 1);
    std::fill(stamp_.begin(), stamp_.end(), kNoStamp);
    buf_.resize(static_cast<std::size_t>(running));
  }

  /// Place a record; returns the slot it landed in, so callers keeping
  /// side arrays (e.g. "which ghost lid issued this query") can index
  /// them by the same slot.
  count_t push(int dest, const T& rec) {
    const auto d = static_cast<std::size_t>(dest);
    const count_t slot = cursor_[d]++;
    XTRA_DEBUG_ASSERT(slot < offsets_[d + 1]);
    buf_[static_cast<std::size_t>(slot)] = rec;
    return slot;
  }

  /// Place at most once per (dest, key); must mirror the count pass.
  bool push_once(int dest, std::size_t key, const T& rec) {
    const auto d = static_cast<std::size_t>(dest);
    if (stamp_[d] == key) return false;
    stamp_[d] = key;
    push(dest, rec);
    return true;
  }

  /// The grouped send buffer (valid once every record is pushed).
  const std::vector<T>& records() const { return buf_; }
  /// Per-destination record counts (valid after commit()).
  const std::vector<count_t>& counts() const { return counts_; }
  count_t total() const { return offsets_.empty() ? 0 : offsets_.back(); }

  /// Convenience for the common one-record-per-item shape: two passes
  /// over `items` with dest_of(item) -> rank and make(item) -> record.
  template <typename Range, typename DestFn, typename MakeFn>
  void build(int nranks, const Range& items, DestFn&& dest_of,
             MakeFn&& make) {
    begin(nranks);
    for (const auto& item : items) count(dest_of(item));
    commit();
    for (const auto& item : items) push(dest_of(item), make(item));
  }

 private:
  static constexpr std::size_t kNoStamp = ~std::size_t(0);

  std::vector<count_t> counts_;   ///< records per destination
  std::vector<count_t> offsets_;  ///< exclusive prefix sums of counts
  std::vector<count_t> cursor_;   ///< next free slot per destination
  std::vector<std::size_t> stamp_;///< toSend mask, keyed not cleared
  std::vector<T> buf_;            ///< grouped records
};

}  // namespace xtra::comm
