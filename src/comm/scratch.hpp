// Type-erased reusable staging arena for templated exchange paths
// (e.g. HaloPlan::exchange<T> is instantiated with several T but each
// plan must own one persistent send buffer).
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

namespace xtra::comm {

/// Hands out a T-typed staging area backed by one byte vector, so
/// repeated requests of the same (or smaller) size never reallocate.
/// One live type at a time; contents are invalidated by the next as<>().
class ScratchBuffer {
 public:
  template <typename T>
  T* as(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "scratch staging requires trivially copyable records");
    bytes_.resize(n * sizeof(T));
    return reinterpret_cast<T*>(bytes_.data());
  }

 private:
  std::vector<std::byte> bytes_;
};

}  // namespace xtra::comm
