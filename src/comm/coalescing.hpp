// CoalescingExchanger — cross-superstep message coalescing.
//
// At high rank counts a superstep's per-destination runs can shrink to
// a handful of records, and the exchange cost becomes per-message
// overhead rather than bytes (the regime remote-fetch systems like RFP
// are built around). This wrapper batches staged runs *across
// supersteps*: enqueue() appends a round's records to per-destination
// pending buffers and the rounds only hit the wire when some rank's
// pending payload reaches the flush threshold (agreed collectively,
// one allreduce_or per enqueue, so every rank flushes the same round)
// or when the caller flushes explicitly (end of a sweep, convergence).
// In explicit-flush-only mode (flush_bytes == 0) the agreement
// collective is elided — every rank knows the answer — so enqueue is
// then purely local.
//
// Delivery contract: a flush returns the concatenated arrivals grouped
// by source rank; within one source, records appear in enqueue order
// (round by round, each round in its staged destination order). The
// wire trip itself goes through a normal Exchanger, so max_send_bytes
// phasing and the flat/hierarchical shard policy both apply, and
// results are independent of either. Callers own the deferred-delivery
// semantics — only updates whose consumers tolerate a bounded lag (or
// that are explicitly flushed before being read) should be enqueued.
#pragma once

#include <cstring>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "comm/exchanger.hpp"
#include "comm/shard_policy.hpp"
#include "mpisim/comm.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace xtra::comm {

class CoalescingExchanger {
 public:
  /// flush_bytes: pending-payload threshold (per rank) that triggers a
  /// collective flush; 0 means only explicit flush() ships anything.
  /// max_send_bytes / policy / backend configure the inner wire engine.
  explicit CoalescingExchanger(count_t flush_bytes,
                               count_t max_send_bytes = 0,
                               ShardPolicy policy = ShardPolicy::kFlat,
                               Backend backend = Backend::kTwoSided)
      : flush_bytes_(flush_bytes), ex_(max_send_bytes, policy, backend) {
    ex_.set_label("comm::CoalescingExchanger");
  }

  /// Collective: stage one round's records (counts[r] per destination,
  /// destination-grouped in `send`) and agree whether to flush. When
  /// any rank's pending payload has reached flush_bytes, every rank
  /// flushes and the arrivals are returned; otherwise nullopt (the
  /// records stay pending). One allreduce_or either way — except with
  /// flush_bytes == 0, where the agreement is elided and enqueue is
  /// purely local.
  template <typename T>
  std::optional<std::span<const T>> enqueue(
      sim::Comm& comm, const T* send, const std::vector<count_t>& counts,
      std::vector<count_t>* recvcounts_out = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire records must be trivially copyable");
    stage(comm, reinterpret_cast<const std::byte*>(send), sizeof(T), counts);
    // Explicit-flush-only mode skips the agreement collective: every
    // rank knows the answer (flush_bytes_ is rank-uniform).
    if (flush_bytes_ == 0) return std::nullopt;
    if (!comm.allreduce_or(pending_bytes_ >= flush_bytes_))
      return std::nullopt;
    return flush<T>(comm, recvcounts_out);
  }

  template <typename T>
  std::optional<std::span<const T>> enqueue(
      sim::Comm& comm, const std::vector<T>& send,
      const std::vector<count_t>& counts,
      std::vector<count_t>* recvcounts_out = nullptr) {
    return enqueue(comm, send.data(), counts, recvcounts_out);
  }

  template <typename T>
  std::optional<std::span<const T>> enqueue(
      sim::Comm& comm, const DestBuckets<T>& buckets,
      std::vector<count_t>* recvcounts_out = nullptr) {
    return enqueue(comm, buckets.records().data(), buckets.counts(),
                   recvcounts_out);
  }

  /// Collective: ship everything pending (possibly nothing — still
  /// collective) and return the arrivals grouped by source rank. The
  /// span aliases the inner Exchanger's scratch, valid until the next
  /// wire trip on this object.
  template <typename T>
  std::span<const T> flush(sim::Comm& comm,
                           std::vector<count_t>* recvcounts_out = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire records must be trivially copyable");
    XTRA_ASSERT_MSG(elem_ == 0 || elem_ == sizeof(T),
                    "flush<T> must match the enqueued element type");
    const int nranks = comm.size();
    staged_counts_.assign(static_cast<std::size_t>(nranks), 0);
    staging_.clear();
    if (pend_.size() == static_cast<std::size_t>(nranks)) {
      for (int d = 0; d < nranks; ++d) {
        auto& run = pend_[static_cast<std::size_t>(d)];
        staged_counts_[static_cast<std::size_t>(d)] =
            static_cast<count_t>(run.size() / sizeof(T));
        staging_.insert(staging_.end(), run.begin(), run.end());
        run.clear();
      }
    }
    pending_bytes_ = 0;
    pending_rounds_ = 0;
    const std::span<const T> got = ex_.exchange(
        comm, reinterpret_cast<const T*>(staging_.data()), staged_counts_,
        recvcounts_out);
    ++ex_.stats_.coalesced_flushes;
    return got;
  }

  count_t pending_bytes() const { return pending_bytes_; }
  count_t pending_rounds() const { return pending_rounds_; }

  void set_max_send_bytes(count_t bytes) { ex_.set_max_send_bytes(bytes); }
  void set_shard_policy(ShardPolicy policy) { ex_.set_shard_policy(policy); }
  void set_backend(Backend backend) { ex_.set_backend(backend); }
  const ExchangeStats& stats() const { return ex_.stats(); }
  void reset_stats() { ex_.reset_stats(); }

 private:
  void stage(sim::Comm& comm, const std::byte* send, std::size_t elem,
             const std::vector<count_t>& counts) {
    const int nranks = comm.size();
    XTRA_ASSERT(counts.size() == static_cast<std::size_t>(nranks));
    XTRA_ASSERT_MSG(elem_ == 0 || elem_ == elem,
                    "all coalesced rounds must use one record type");
    elem_ = elem;
    pend_.resize(static_cast<std::size_t>(nranks));
    std::size_t off = 0;
    for (int d = 0; d < nranks; ++d) {
      const std::size_t len =
          static_cast<std::size_t>(counts[static_cast<std::size_t>(d)]) *
          elem;
      if (len > 0) {
        auto& run = pend_[static_cast<std::size_t>(d)];
        run.insert(run.end(), send + off, send + off + len);
        off += len;
        pending_bytes_ += static_cast<count_t>(len);
      }
    }
    ++pending_rounds_;
  }

  count_t flush_bytes_ = 0;
  std::size_t elem_ = 0;
  count_t pending_bytes_ = 0;
  count_t pending_rounds_ = 0;
  std::vector<std::vector<std::byte>> pend_;  ///< per destination rank
  std::vector<std::byte> staging_;            ///< flush-time send buffer
  std::vector<count_t> staged_counts_;
  Exchanger ex_;  ///< wire engine (phasing + shard policy apply)
};

}  // namespace xtra::comm
