// comm::FetchLane — the dedicated one-sided lane the out-of-core
// segment cache pulls edge segments through (graph/segcache.hpp).
//
// The top window slot is reserved for the lane so the Exchanger's
// lowest-free window scan never collides with it: an engine run may
// keep pipeline refreshes in flight on windows [0, kMaxWindows-2]
// while segment fetches ride the reserved slot. The practical
// consequence is that a one-sided pipeline under an out-of-core
// remote backing has one fewer window to play with (effective depth
// <= kMaxWindows - 2); exceeding it fails loudly with the substrate's
// exhaustion diagnostics naming this lane's label.
//
// open() is collective: every rank contributes its segment blob, the
// designated memory rank hosts the rank-ordered concatenation in its
// exposed region (RFP's remote-fetching pull paradigm in miniature —
// consumers issue win_gets instead of the owner pushing), and every
// other rank exposes an empty region so the window's lifecycle stays
// symmetric under the comm verifier. The hosted region is read-only
// for the whole epoch, so no fences are needed and the verifier's
// owner-mutation checksum stays clean. get() is passive-target and
// non-collective — billed to the fetching rank; the memory rank's own
// fetches are self-local and free, exactly the asymmetry a far-memory
// deployment has.
#pragma once

#include <cstdint>
#include <vector>

#include "mpisim/comm.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace xtra::comm {

/// Window slot reserved for segment fetches. Exchanger and HaloPlan
/// allocate via find_free_window (lowest free first), so they only
/// reach this slot when every other window is already busy — and then
/// the exhaustion diagnostics name the lane that owns it.
inline constexpr int kSegmentFetchWindow = sim::kMaxWindows - 1;

class FetchLane {
 public:
  FetchLane() = default;
  FetchLane(const FetchLane&) = delete;
  FetchLane& operator=(const FetchLane&) = delete;

  /// Collective. Ship `blob_bytes` of `blob` to `host_rank`, which
  /// exposes the rank-ordered concatenation on the reserved window;
  /// every other rank exposes an empty region on the same slot.
  void open(sim::Comm& comm, const void* blob, std::size_t blob_bytes,
            int host_rank) {
    XTRA_ASSERT(!open_);
    XTRA_ASSERT(host_rank >= 0 && host_rank < comm.size());
    host_rank_ = host_rank;
    std::vector<std::uint8_t> mine(
        static_cast<const std::uint8_t*>(blob),
        static_cast<const std::uint8_t*>(blob) + blob_bytes);
    const std::vector<count_t> sizes = comm.allgatherv(
        std::vector<count_t>{static_cast<count_t>(blob_bytes)});
    my_base_ = 0;
    for (int r = 0; r < comm.rank(); ++r)
      my_base_ += static_cast<std::size_t>(sizes[static_cast<std::size_t>(r)]);
    hosted_ = comm.gatherv(mine, host_rank);
    if (comm.rank() != host_rank) {
      hosted_.clear();
      hosted_.shrink_to_fit();
    }
    comm.win_expose(hosted_.empty() ? nullptr : hosted_.data(),
                    hosted_.size(), nullptr, kSegmentFetchWindow,
                    "segcache fetch lane");
    open_ = true;
  }

  /// Pull [offset, offset+len) of THIS rank's blob from the memory
  /// rank into dst. Non-collective, passive-target.
  void get(sim::Comm& comm, std::size_t offset, std::size_t len,
           void* dst) const {
    XTRA_ASSERT(open_);
    comm.win_get(kSegmentFetchWindow, host_rank_, my_base_ + offset, len,
                 dst);
  }

  /// Collective. Ends the exposure epoch and frees the hosted copy.
  void close(sim::Comm& comm) {
    if (!open_) return;
    comm.win_unexpose(kSegmentFetchWindow);
    hosted_.clear();
    hosted_.shrink_to_fit();
    open_ = false;
  }

  bool is_open() const { return open_; }
  int host_rank() const { return host_rank_; }

  /// Bytes the memory rank holds for every rank (its own view; zero
  /// elsewhere). Introspection for tests.
  std::size_t hosted_bytes() const { return hosted_.size(); }

 private:
  bool open_ = false;
  int host_rank_ = 0;
  std::size_t my_base_ = 0;          ///< this rank's offset in the host blob
  std::vector<std::uint8_t> hosted_; ///< memory rank only
};

}  // namespace xtra::comm
