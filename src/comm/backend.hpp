// Transport backend selector for the comm layer.
//
// kTwoSided is the classic matched send/receive path: the Exchanger
// posts destination-grouped payload through the substrate's
// (nonblocking) alltoallv and receivers get pushed segments.
//
// kOneSided emulates RDMA verbs (RFP-style remote fetching): the
// producer exposes its destination-grouped payload — plus its
// per-destination counts as free registration metadata — in a
// sim::Comm window, and every consumer win_get()s its own segments
// from each peer's window, passively. Results are bit-identical to
// kTwoSided by construction (the same records move, grouped the same
// way); what changes is who pays: per-op get billing lands on the
// consumer, and the producer's only obligations are the exposure and
// the closing fence. The same value is required on all ranks and may
// not change while an exchange is in flight.
#pragma once

namespace xtra::comm {

enum class Backend {
  kTwoSided,  ///< matched push via (nonblocking) alltoallv
  kOneSided,  ///< exposed windows + consumer-side pulls
};

}  // namespace xtra::comm
