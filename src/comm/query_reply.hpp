// Owner-lookup round trip — the query/reply pattern behind ghost
// degree fetches and ghost-consistency checks: ship queries to each
// record's owner, answer each arrival, and return the replies to their
// askers in query order (alltoallv preserves order both ways, so the
// i-th reply answers the i-th query).
//
// The round trip inherits the Exchanger's transport backend: with
// Backend::kOneSided both legs run pull-mode — askers expose their
// queries for owners to fetch, owners expose the replies for askers to
// fetch back — so the consumer fetches boundary data from exposed
// windows end to end, and results stay bit-identical to the push path.
#pragma once

#include <span>
#include <type_traits>
#include <vector>

#include "comm/exchanger.hpp"
#include "mpisim/comm.hpp"
#include "util/types.hpp"

namespace xtra::comm {

/// Collective. `queries` must be grouped by destination per `qcounts`
/// (use DestBuckets). `answer(q)` runs on the owning rank and its
/// results travel back. The returned span aliases the Exchanger's
/// receive scratch — valid until its next exchange, aligned 1:1 with
/// `queries`.
template <typename Q, typename AnswerFn>
auto query_reply(sim::Comm& comm, Exchanger& ex, const std::vector<Q>& queries,
                 const std::vector<count_t>& qcounts, AnswerFn&& answer)
    -> std::span<const std::decay_t<std::invoke_result_t<AnswerFn&, const Q&>>> {
  using R = std::decay_t<std::invoke_result_t<AnswerFn&, const Q&>>;
  std::vector<count_t> rcounts;
  const std::span<const Q> incoming = ex.exchange(comm, queries, qcounts,
                                                  &rcounts);
  std::vector<R> replies(incoming.size());
  for (std::size_t i = 0; i < incoming.size(); ++i)
    replies[i] = answer(incoming[i]);
  return ex.exchange(comm, replies, rcounts);
}

}  // namespace xtra::comm
