// How an Exchanger routes records between ranks. Split out of
// exchanger.hpp so configuration surfaces (core::Params, the
// analytics entry points) can name the policy without pulling in the
// whole exchange machinery.
#pragma once

namespace xtra::comm {

enum class ShardPolicy {
  /// One alltoallv among all ranks per phase (the paper's baseline).
  kFlat,
  /// Two-level, topology-aware routing: node-local gather to the node
  /// leader, one coalesced leader-to-leader alltoallv per phase for
  /// all inter-node traffic, node-local scatter to the final
  /// destinations. Bit-identical results to kFlat for any
  /// max_send_bytes; fewer (larger) inter-node messages.
  kHierarchical,
};

}  // namespace xtra::comm
