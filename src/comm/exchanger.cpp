#include "comm/exchanger.hpp"

#include <algorithm>
#include <cstring>

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace xtra::comm {

namespace {

/// Per-destination counts of the record window [lo, hi) of a
/// destination-grouped send buffer. The buffer is grouped by
/// destination, so every window's per-destination runs are contiguous
/// and in destination order — each window is itself a valid alltoallv
/// send buffer.
void window_counts(const std::vector<count_t>& offsets, count_t lo,
                   count_t hi, std::vector<count_t>& out) {
  const std::size_t nranks = offsets.size() - 1;
  out.resize(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    const count_t a = std::max(lo, offsets[r]);
    const count_t b = std::min(hi, offsets[r + 1]);
    out[r] = std::max<count_t>(0, b - a);
  }
}

}  // namespace

/// State of one hierarchical exchange: three flat sub-exchanges (each
/// independently max_send_bytes-phased) plus the full counts matrix
/// and the per-round destination-grouped staging buffers. Owned lazily
/// by the Exchanger, reused across exchanges.
struct Exchanger::Hier {
  Exchanger gather;   ///< round 1: node-local direct + forward-to-leader
  Exchanger leaders;  ///< round 2: coalesced leader-to-leader alltoallv
  Exchanger scatter;  ///< round 3: leader to final destination

  std::vector<count_t> allcounts;  ///< P x P, row-major by source rank
  std::vector<std::byte> r1_send, r2_send, r3_send;
  std::vector<count_t> r1_counts, r2_counts, r3_counts;
  bool empty = false;       ///< globally zero records this exchange
  bool cross_node = false;  ///< some record crosses a node boundary

  /// Wire-ledger fields of the three sub-exchanges, summed; the parent
  /// rolls the per-exchange delta into its own ExchangeStats.
  struct Sums {
    count_t bytes = 0, phases = 0, inter_b = 0, intra_b = 0, inter_m = 0;
    count_t os_gets = 0, os_bytes = 0;
  };
  Sums sums() const {
    Sums s;
    for (const Exchanger* e : {&gather, &leaders, &scatter}) {
      s.bytes += e->stats_.bytes_sent;
      s.phases += e->stats_.phases;
      s.inter_b += e->stats_.inter_node_bytes;
      s.intra_b += e->stats_.intra_node_bytes;
      s.inter_m += e->stats_.inter_node_msgs;
      s.os_gets += e->stats_.one_sided_gets;
      s.os_bytes += e->stats_.one_sided_bytes;
    }
    return s;
  }
  Sums base;  ///< snapshot taken at start_hier
};

Exchanger::Exchanger(count_t max_send_bytes, ShardPolicy policy,
                     Backend backend)
    : max_send_bytes_(max_send_bytes), policy_(policy), backend_(backend) {}
Exchanger::~Exchanger() = default;
Exchanger::Exchanger(Exchanger&&) noexcept = default;
Exchanger& Exchanger::operator=(Exchanger&&) noexcept = default;

void Exchanger::account_phase(sim::Comm& comm,
                              const std::vector<count_t>& counts,
                              std::size_t elem) {
  const int me = comm.rank();
  const int mynode = comm.node_of(me);
  for (int r = 0; r < comm.size(); ++r) {
    const count_t c = counts[static_cast<std::size_t>(r)];
    if (r == me || c == 0) continue;
    const count_t b = c * static_cast<count_t>(elem);
    if (comm.node_of(r) == mynode) {
      stats_.intra_node_bytes += b;
    } else {
      stats_.inter_node_bytes += b;
      ++stats_.inter_node_msgs;
    }
  }
}

void Exchanger::start_bytes(sim::Comm& comm, const std::byte* send,
                            std::size_t elem,
                            const std::vector<count_t>& counts,
                            StartMode mode) {
  XTRA_ASSERT_MSG(!pending_.active_,
                  "Exchanger::start while an exchange is in flight");
  XTRA_ASSERT(counts.size() == static_cast<std::size_t>(comm.size()));

  // Per-exchange bookkeeping shared by both routing policies (the
  // wire-side ledgers differ: flat bills its payload here, the
  // hierarchical path rolls up its rounds' sub-exchange deltas).
  count_t total = 0;
  for (const count_t c : counts) total += c;
  ++stats_.exchanges;
  stats_.records_sent += total;
  pending_.counted_incremental_ = false;
  if (mode != StartMode::kBlocking) {
    ++stats_.overlapped;
    stats_.max_inflight_bytes =
        std::max(stats_.max_inflight_bytes,
                 total * static_cast<count_t>(elem));
  }

  if (policy_ == ShardPolicy::kHierarchical) {
    start_hier(comm, send, elem, counts, total);
    return;
  }
  Timer t;
  const int nranks = comm.size();
  const int me = comm.rank();

  // Stage the in-flight state. A snapshotting start() releases the
  // caller's buffer here; start_inplace() and the blocking exchange()
  // alias it instead (their buffers stay valid until the finish half).
  pending_.elem_ = elem;
  pending_.total_ = total;
  pending_.counts_ = counts;
  pending_.offsets_.resize(counts.size() + 1);
  count_t running = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    pending_.offsets_[i] = running;
    running += counts[i];
  }
  pending_.offsets_[counts.size()] = running;
  if (mode == StartMode::kSnapshot) {
    // Nothing staged locally means nothing to snapshot.
    pending_.staging_.resize(static_cast<std::size_t>(total) * elem);
    if (total > 0)
      std::memcpy(pending_.staging_.data(), send,
                  static_cast<std::size_t>(total) * elem);
    pending_.wire_ = pending_.staging_.data();
  } else {
    pending_.wire_ = send;
  }

  if (backend_ == Backend::kOneSided) {
    // Pull mode: no sender-side wire billing (consumers pay per get)
    // and no phase agreement (the pull is receiver-paced).
    start_onesided(comm, elem);
    const double sec1 = t.seconds();
    stats_.seconds += sec1;
    stats_.start_seconds += sec1;
    return;
  }

  for (int r = 0; r < nranks; ++r)
    if (r != me)
      stats_.bytes_sent +=
          counts[static_cast<std::size_t>(r)] * static_cast<count_t>(elem);

  // Agree on a global phase count. Unbounded mode skips the allreduce:
  // all ranks constructed with max_send_bytes == 0 know the answer.
  pending_.nphases_ = 1;
  pending_.max_records_ = std::max<count_t>(total, 1);
  if (max_send_bytes_ > 0) {
    // A bound smaller than one record clamps to exactly one record per
    // phase — every phase makes progress, never a zero-record plan.
    pending_.max_records_ =
        std::max<count_t>(1, max_send_bytes_ / static_cast<count_t>(elem));
    const count_t gmax_total = comm.allreduce_max(total);
    if (gmax_total == 0) {
      // All-empty exchange: every rank staged zero records, so skip
      // the wire entirely — zero phases, an empty grouped-by-source
      // result, and identical accounting on the blocking and
      // start/finish paths.
      pending_.nphases_ = 0;
      pending_.phase_ = 0;
      pending_.active_ = true;
      rcounts_.assign(static_cast<std::size_t>(nranks), 0);
      recv_total_ = 0;
      recv_bytes_.clear();
      const double sec0 = t.seconds();
      stats_.seconds += sec0;
      stats_.start_seconds += sec0;
      return;
    }
    pending_.nphases_ =
        (gmax_total + pending_.max_records_ - 1) / pending_.max_records_;
  }
  pending_.phase_ = 0;
  pending_.active_ = true;
  // Every started exchange rides its own substrate channel, so several
  // Exchangers (pipeline lanes, aux exchanges) may be in flight at
  // once. The scan is rank-uniform — collective ordering keeps the
  // in-flight channel sets identical on every rank.
  pending_.channel_ = comm.find_free_channel();

  if (pending_.nphases_ == 1) {
    // Single-phase: post the whole payload; arrival counts and the
    // receive buffer are handled by the finish half.
    account_phase(comm, pending_.counts_, elem);
    (void)comm.alltoallv_bytes_start(pending_.wire_, elem, pending_.counts_,
                                     pending_.channel_, label_);
  } else {
    // Phased mode: learn the final per-source totals up front (one
    // small alltoall), so every phase's arrivals land directly in
    // their final position — the receive side peaks at the payload
    // size, never double-buffers. Then post phase 0.
    rcounts_ = comm.alltoall(pending_.counts_);
    recv_total_ = 0;
    cursor_.resize(static_cast<std::size_t>(nranks));
    for (int s = 0; s < nranks; ++s) {
      cursor_[static_cast<std::size_t>(s)] = recv_total_;
      recv_total_ += rcounts_[static_cast<std::size_t>(s)];
    }
    recv_bytes_.resize(static_cast<std::size_t>(recv_total_) * elem);
    const count_t hi = std::min(pending_.max_records_, total);
    window_counts(pending_.offsets_, 0, hi, phase_counts_);
    account_phase(comm, phase_counts_, elem);
    (void)comm.alltoallv_bytes_start(pending_.wire_, elem, phase_counts_,
                                     pending_.channel_, label_);
  }
  const double sec = t.seconds();
  stats_.seconds += sec;
  stats_.start_seconds += sec;
}

void Exchanger::finish_bytes(sim::Comm& comm) {
  // One-shot finish = drain every remaining step. drain_step_bytes
  // performs exactly the per-phase work the monolithic loop used to,
  // so the two paths stay bit-identical by construction.
  while (drain_step_bytes(comm)) {
  }
}

void Exchanger::note_full_result_segments() {
  drained_segs_.clear();
  count_t off = 0;
  for (std::size_t s = 0; s < rcounts_.size(); ++s) {
    const count_t c = rcounts_[s];
    if (c > 0) drained_segs_.push_back({static_cast<int>(s), off, c});
    off += c;
  }
}

bool Exchanger::drain_step_bytes(sim::Comm& comm) {
  XTRA_ASSERT_MSG(pending_.active_,
                  "Exchanger::finish/drain without a started exchange");
  if (hier_inflight_) {
    // The hierarchical protocol's arrivals only become final after the
    // round-3 reassembly, so it drains in a single step.
    finish_hier(comm);
    note_full_result_segments();
    return false;
  }
  if (onesided_inflight_) {
    // One-sided: pull every segment and close the epoch — a single
    // drain step, like the hierarchical path.
    finish_onesided(comm);
    note_full_result_segments();
    return false;
  }
  Timer t;
  const int nranks = comm.size();
  const std::size_t elem = pending_.elem_;
  drained_segs_.clear();
  bool more = false;

  if (pending_.nphases_ == 0) {
    // All-empty exchange: nothing was posted; the (empty) result was
    // installed by the start half.
  } else if (pending_.nphases_ == 1) {
    recv_total_ =
        comm.alltoallv_bytes_finish(recv_bytes_, &rcounts_, pending_.channel_);
    ++stats_.phases;
    note_full_result_segments();
  } else {
    // Drain phase p, immediately post phase p+1 so it is in flight
    // while p's arrivals are scattered into their final positions.
    const count_t total = pending_.total_;
    (void)comm.alltoallv_bytes_finish(phase_bytes_, &phase_rcounts_,
                                      pending_.channel_);
    ++stats_.phases;
    ++pending_.phase_;
    if (pending_.phase_ < pending_.nphases_) {
      const count_t lo =
          std::min(pending_.phase_ * pending_.max_records_, total);
      const count_t hi = std::min(lo + pending_.max_records_, total);
      window_counts(pending_.offsets_, lo, hi, phase_counts_);
      account_phase(comm, phase_counts_, elem);
      // Successor phases reuse the exchange's channel — it freed the
      // instant the previous phase finished, within this same call.
      (void)comm.alltoallv_bytes_start(
          pending_.wire_ + static_cast<std::size_t>(lo) * elem, elem,
          phase_counts_, pending_.channel_, label_);
      more = true;
    }
    // Arrivals from source s across phases, concatenated in phase
    // order, are exactly s's single-alltoallv segment (each phase
    // window preserves the within-destination record order).
    std::size_t pos = 0;
    for (int s = 0; s < nranks; ++s) {
      const count_t c = phase_rcounts_[static_cast<std::size_t>(s)];
      if (c == 0) continue;
      const std::size_t len = static_cast<std::size_t>(c) * elem;
      std::memcpy(recv_bytes_.data() +
                      static_cast<std::size_t>(
                          cursor_[static_cast<std::size_t>(s)]) *
                          elem,
                  phase_bytes_.data() + pos, len);
      drained_segs_.push_back(
          {s, cursor_[static_cast<std::size_t>(s)], c});
      cursor_[static_cast<std::size_t>(s)] += c;
      pos += len;
    }
#ifndef NDEBUG
    if (!more)
      // Every cursor must have advanced to the next source's start.
      for (int s = 0; s + 1 < nranks; ++s)
        XTRA_DEBUG_ASSERT(cursor_[static_cast<std::size_t>(s)] ==
                          cursor_[static_cast<std::size_t>(s + 1)] -
                              rcounts_[static_cast<std::size_t>(s + 1)]);
#endif
  }
  if (!more) {
    pending_.active_ = false;
    pending_.wire_ = nullptr;
  }
  const double sec = t.seconds();
  stats_.seconds += sec;
  stats_.finish_seconds += sec;
  return more;
}

// ---------------------------------------------------------------------------
// One-sided transport: the start half exposes the staged
// destination-grouped payload in a substrate window, registering the
// per-destination counts as free metadata; the drain half pulls each
// per-source segment passively with win_get and closes the epoch.
// Bit-identity with the two-sided path is by construction — the same
// records are fetched from the same layout the push would have sent —
// and billing moves to the consumer: per-get wire bytes on the
// substrate side, the one_sided_* ledger here.

void Exchanger::start_onesided(sim::Comm& comm, std::size_t elem) {
  pending_.nphases_ = 1;  // the pull completes in one drain step
  pending_.phase_ = 0;
  pending_.max_records_ = std::max<count_t>(pending_.total_, 1);
  pending_.win_ = comm.find_free_window();
  pending_.active_ = true;
  onesided_inflight_ = true;
  // The exposure is read-only by protocol: peers pull with win_get and
  // never put, so exposing the (const) staged payload is sound.
  comm.win_expose(
      const_cast<std::byte*>(pending_.wire_),
      static_cast<std::size_t>(pending_.total_) * elem,
      pending_.counts_.data(), pending_.win_, label_);
}

void Exchanger::finish_onesided(sim::Comm& comm) {
  Timer t;
  const int P = comm.size();
  const int me = comm.rank();
  const std::size_t elem = pending_.elem_;
  const int win = pending_.win_;

  // Arrival counts come from every producer's registered metadata —
  // rank s's per-destination counts row — exactly what the two-sided
  // path learns from the substrate's count publication.
  rcounts_.resize(static_cast<std::size_t>(P));
  recv_total_ = 0;
  for (int s = 0; s < P; ++s) {
    const count_t c = comm.win_meta(s, win)[me];
    rcounts_[static_cast<std::size_t>(s)] = c;
    recv_total_ += c;
  }
  recv_bytes_.resize(static_cast<std::size_t>(recv_total_) * elem);
  std::size_t out = 0;
  for (int s = 0; s < P; ++s) {
    const count_t c = rcounts_[static_cast<std::size_t>(s)];
    if (c == 0) continue;
    // Our segment starts after every lower-ranked destination's run in
    // s's destination-grouped exposure.
    const count_t* meta = comm.win_meta(s, win);
    count_t offset = 0;
    for (int q = 0; q < me; ++q) offset += meta[q];
    const std::size_t len = static_cast<std::size_t>(c) * elem;
    comm.win_get(win, s, static_cast<std::size_t>(offset) * elem, len,
                 recv_bytes_.data() + out);
    ++stats_.one_sided_gets;
    if (s != me) {
      const count_t b = c * static_cast<count_t>(elem);
      stats_.one_sided_bytes += b;
      stats_.bytes_sent += b;  // consumer-side wire billing
    }
    out += len;
  }
  // Topology split from the consumer's perspective: a pulled segment
  // crosses nodes exactly when the pushed one would have.
  account_phase(comm, rcounts_, elem);
  ++stats_.phases;
  comm.win_unexpose(win);

  pending_.active_ = false;
  pending_.wire_ = nullptr;
  onesided_inflight_ = false;
  const double sec = t.seconds();
  stats_.seconds += sec;
  stats_.finish_seconds += sec;
}

// ---------------------------------------------------------------------------
// Hierarchical routing: node-local gather -> leader alltoallv ->
// node-local scatter. Every round is a destination-grouped buffer run
// through the flat (phased) machinery of a sub-exchanger, so the
// max_send_bytes contract holds per round; the reassembly below is a
// pure local permutation, which is what makes the result bit-identical
// to the flat path.

void Exchanger::start_hier(sim::Comm& comm, const std::byte* send,
                           std::size_t elem,
                           const std::vector<count_t>& counts,
                           count_t total) {
  Timer t;
  const int P = comm.size();
  if (!hier_) {
    hier_ = std::make_unique<Hier>();
    hier_->gather.label_ = "comm::Exchanger hier-gather";
    hier_->leaders.label_ = "comm::Exchanger hier-leaders";
    hier_->scatter.label_ = "comm::Exchanger hier-scatter";
  }
  Hier& h = *hier_;
  h.base = h.sums();

  // Everyone learns the full counts matrix, so every per-round layout
  // below is computable locally (row s = rank s's per-dest counts). A
  // real MPI build would use neighborhood collectives; here one
  // allgatherv keeps the protocol simple and deterministic.
  h.allcounts = comm.allgatherv(counts);

  pending_.elem_ = elem;
  pending_.total_ = total;
  pending_.nphases_ = 1;  // drains in one step (phases_remaining == 1)
  pending_.phase_ = 0;
  pending_.active_ = true;
  hier_inflight_ = true;

  count_t gtotal = 0;
  for (const count_t c : h.allcounts) gtotal += c;
  h.empty = gtotal == 0;
  if (h.empty) {
    // All-empty exchange: no wire rounds at all (same contract as the
    // flat bounded path) — install the empty result now.
    rcounts_.assign(static_cast<std::size_t>(P), 0);
    recv_total_ = 0;
    recv_bytes_.clear();
    const double sec0 = t.seconds();
    stats_.seconds += sec0;
    stats_.start_seconds += sec0;
    return;
  }
  h.cross_node = false;
  for (int s = 0; s < P && !h.cross_node; ++s)
    for (int d = 0; d < P; ++d)
      if (h.allcounts[static_cast<std::size_t>(s) * P + d] > 0 &&
          comm.node_of(s) != comm.node_of(d)) {
        h.cross_node = true;
        break;
      }

  // Round-1 staging (destination-grouped): each same-node destination
  // gets its direct run; the leader's segment additionally carries
  // every off-node run, ordered by final destination rank — the
  // receiving leader recovers the blocks from the counts matrix.
  const int mynode = comm.my_node();
  const int nb = comm.node_begin(mynode);
  const int ne = comm.node_end(mynode);
  const int L = comm.node_leader(mynode);

  std::vector<count_t> offs(static_cast<std::size_t>(P) + 1, 0);
  for (int d = 0; d < P; ++d)
    offs[static_cast<std::size_t>(d) + 1] =
        offs[static_cast<std::size_t>(d)] +
        counts[static_cast<std::size_t>(d)];

  h.r1_counts.assign(static_cast<std::size_t>(P), 0);
  count_t fwd_total = 0;
  for (int d = 0; d < P; ++d)
    if (comm.node_of(d) != mynode)
      fwd_total += counts[static_cast<std::size_t>(d)];
  for (int q = nb; q < ne; ++q)
    h.r1_counts[static_cast<std::size_t>(q)] =
        counts[static_cast<std::size_t>(q)];
  h.r1_counts[static_cast<std::size_t>(L)] += fwd_total;

  h.r1_send.resize(static_cast<std::size_t>(total) * elem);
  std::byte* out = h.r1_send.data();
  const auto append_run = [&](int d) {
    const std::size_t len =
        static_cast<std::size_t>(counts[static_cast<std::size_t>(d)]) * elem;
    if (len > 0) {
      std::memcpy(out, send + static_cast<std::size_t>(
                                  offs[static_cast<std::size_t>(d)]) *
                                  elem,
                  len);
      out += len;
    }
  };
  for (int q = nb; q < ne; ++q) {
    append_run(q);
    if (q == L)
      for (int d = 0; d < P; ++d)
        if (comm.node_of(d) != mynode) append_run(d);
  }

  h.gather.max_send_bytes_ = max_send_bytes_;
  h.gather.backend_ = backend_;
  h.gather.start_bytes(comm, h.r1_send.data(), elem, h.r1_counts,
                       StartMode::kAlias);
  const double sec = t.seconds();
  stats_.seconds += sec;
  stats_.start_seconds += sec;
}

void Exchanger::finish_hier(sim::Comm& comm) {
  Timer t;
  Hier& h = *hier_;
  const std::size_t elem = pending_.elem_;
  const int P = comm.size();
  const int me = comm.rank();
  const int mynode = comm.my_node();
  const int nb = comm.node_begin(mynode);
  const int ne = comm.node_end(mynode);
  const int L = comm.node_leader(mynode);
  const int nnodes = comm.node_count();
  const auto C = [&](int s, int d) -> count_t {
    return h.allcounts[static_cast<std::size_t>(s) * P + d];
  };

  if (!h.empty) {
    h.gather.finish_bytes(comm);
    // Element offset of each source's round-1 segment (grouped by
    // source; only same-node sources sent anything).
    std::vector<count_t> r1_off(static_cast<std::size_t>(P) + 1, 0);
    for (int s = 0; s < P; ++s)
      r1_off[static_cast<std::size_t>(s) + 1] =
          r1_off[static_cast<std::size_t>(s)] +
          h.gather.rcounts_[static_cast<std::size_t>(s)];

    if (h.cross_node) {
      // --- Round 2: leaders merge their node's forwarded records into
      // one message per destination node, ordered (final dest asc,
      // origin asc) so the receiving leader can carve blocks locally.
      h.r2_counts.assign(static_cast<std::size_t>(P), 0);
      if (me == L) {
        count_t r2_total = 0;
        for (int n = 0; n < nnodes; ++n) {
          if (n == mynode) continue;
          count_t c = 0;
          for (int d = comm.node_begin(n); d < comm.node_end(n); ++d)
            for (int s = nb; s < ne; ++s) c += C(s, d);
          h.r2_counts[static_cast<std::size_t>(comm.node_leader(n))] = c;
          r2_total += c;
        }
        h.r2_send.resize(static_cast<std::size_t>(r2_total) * elem);
        // Per-member cursor into the forwarded part of its round-1
        // segment (past the direct-to-leader run); the build consumes
        // blocks in ascending final-destination order, matching the
        // forwarded layout.
        std::vector<count_t> fwd_cursor(static_cast<std::size_t>(ne - nb));
        for (int s = nb; s < ne; ++s)
          fwd_cursor[static_cast<std::size_t>(s - nb)] =
              r1_off[static_cast<std::size_t>(s)] + C(s, L);
        std::byte* out = h.r2_send.data();
        for (int n = 0; n < nnodes; ++n) {
          if (n == mynode) continue;
          for (int d = comm.node_begin(n); d < comm.node_end(n); ++d)
            for (int s = nb; s < ne; ++s) {
              const count_t c = C(s, d);
              if (c == 0) continue;
              const std::size_t len = static_cast<std::size_t>(c) * elem;
              std::memcpy(
                  out,
                  h.gather.recv_bytes_.data() +
                      static_cast<std::size_t>(
                          fwd_cursor[static_cast<std::size_t>(s - nb)]) *
                          elem,
                  len);
              fwd_cursor[static_cast<std::size_t>(s - nb)] += c;
              out += len;
            }
        }
      } else {
        h.r2_send.clear();
      }
      h.leaders.max_send_bytes_ = max_send_bytes_;
      h.leaders.backend_ = backend_;
      h.leaders.start_bytes(comm, h.r2_send.data(), elem, h.r2_counts,
                            StartMode::kBlocking);
      h.leaders.finish_bytes(comm);

      // --- Round 3: each leader scatters the arrivals to the final
      // destinations in its node, ordered by origin rank ascending.
      h.r3_counts.assign(static_cast<std::size_t>(P), 0);
      if (me == L) {
        count_t r3_total = 0;
        for (int q = nb; q < ne; ++q) {
          count_t c = 0;
          for (int s = 0; s < P; ++s)
            if (comm.node_of(s) != mynode) c += C(s, q);
          h.r3_counts[static_cast<std::size_t>(q)] = c;
          r3_total += c;
        }
        h.r3_send.resize(static_cast<std::size_t>(r3_total) * elem);
        // Element offset of each source leader's round-2 segment, then
        // a per-source-node cursor: blocks are consumed in (final dest
        // asc, origin asc) order, exactly the segment layout.
        std::vector<count_t> r2_off(static_cast<std::size_t>(P) + 1, 0);
        for (int s = 0; s < P; ++s)
          r2_off[static_cast<std::size_t>(s) + 1] =
              r2_off[static_cast<std::size_t>(s)] +
              h.leaders.rcounts_[static_cast<std::size_t>(s)];
        std::vector<count_t> seg_cursor(static_cast<std::size_t>(nnodes), 0);
        for (int n = 0; n < nnodes; ++n)
          seg_cursor[static_cast<std::size_t>(n)] =
              r2_off[static_cast<std::size_t>(comm.node_leader(n))];
        std::byte* out = h.r3_send.data();
        for (int q = nb; q < ne; ++q)
          for (int n = 0; n < nnodes; ++n) {
            if (n == mynode) continue;
            for (int s = comm.node_begin(n); s < comm.node_end(n); ++s) {
              const count_t c = C(s, q);
              if (c == 0) continue;
              const std::size_t len = static_cast<std::size_t>(c) * elem;
              std::memcpy(out,
                          h.leaders.recv_bytes_.data() +
                              static_cast<std::size_t>(
                                  seg_cursor[static_cast<std::size_t>(n)]) *
                                  elem,
                          len);
              seg_cursor[static_cast<std::size_t>(n)] += c;
              out += len;
            }
          }
      } else {
        h.r3_send.clear();
      }
      h.scatter.max_send_bytes_ = max_send_bytes_;
      h.scatter.backend_ = backend_;
      h.scatter.start_bytes(comm, h.r3_send.data(), elem, h.r3_counts,
                            StartMode::kBlocking);
      h.scatter.finish_bytes(comm);
    }

    // --- Final reassembly, grouped by source rank: same-node sources
    // arrive directly in round 1 (the direct run leads each segment);
    // off-node sources arrive from the leader in round 3, already in
    // ascending origin order, so a sequential cursor suffices.
    rcounts_.resize(static_cast<std::size_t>(P));
    recv_total_ = 0;
    for (int s = 0; s < P; ++s) {
      rcounts_[static_cast<std::size_t>(s)] = C(s, me);
      recv_total_ += C(s, me);
    }
    recv_bytes_.resize(static_cast<std::size_t>(recv_total_) * elem);
    std::byte* out = recv_bytes_.data();
    std::size_t remote_pos = 0;
    for (int s = 0; s < P; ++s) {
      const count_t c = C(s, me);
      if (c == 0) continue;
      const std::size_t len = static_cast<std::size_t>(c) * elem;
      if (comm.node_of(s) == mynode) {
        std::memcpy(out,
                    h.gather.recv_bytes_.data() +
                        static_cast<std::size_t>(
                            r1_off[static_cast<std::size_t>(s)]) *
                            elem,
                    len);
      } else {
        std::memcpy(out, h.scatter.recv_bytes_.data() + remote_pos, len);
        remote_pos += len;
      }
      out += len;
    }
  }

  // Roll the rounds' wire ledger into this exchange's stats.
  const Hier::Sums now = h.sums();
  stats_.bytes_sent += now.bytes - h.base.bytes;
  stats_.phases += now.phases - h.base.phases;
  stats_.inter_node_bytes += now.inter_b - h.base.inter_b;
  stats_.intra_node_bytes += now.intra_b - h.base.intra_b;
  stats_.inter_node_msgs += now.inter_m - h.base.inter_m;
  stats_.one_sided_gets += now.os_gets - h.base.os_gets;
  stats_.one_sided_bytes += now.os_bytes - h.base.os_bytes;

  pending_.active_ = false;
  pending_.wire_ = nullptr;
  hier_inflight_ = false;
  const double sec = t.seconds();
  stats_.seconds += sec;
  stats_.finish_seconds += sec;
}

}  // namespace xtra::comm
