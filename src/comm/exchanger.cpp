#include "comm/exchanger.hpp"

#include <algorithm>
#include <cstring>

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace xtra::comm {

namespace {

/// Per-destination counts of the record window [lo, hi) of a
/// destination-grouped send buffer. The buffer is grouped by
/// destination, so every window's per-destination runs are contiguous
/// and in destination order — each window is itself a valid alltoallv
/// send buffer.
void window_counts(const std::vector<count_t>& offsets, count_t lo,
                   count_t hi, std::vector<count_t>& out) {
  const std::size_t nranks = offsets.size() - 1;
  out.resize(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    const count_t a = std::max(lo, offsets[r]);
    const count_t b = std::min(hi, offsets[r + 1]);
    out[r] = std::max<count_t>(0, b - a);
  }
}

}  // namespace

void Exchanger::start_bytes(sim::Comm& comm, const std::byte* send,
                            std::size_t elem,
                            const std::vector<count_t>& counts,
                            StartMode mode) {
  XTRA_ASSERT_MSG(!pending_.active_,
                  "Exchanger::start while an exchange is in flight");
  Timer t;
  const int nranks = comm.size();
  const int me = comm.rank();
  XTRA_ASSERT(counts.size() == static_cast<std::size_t>(nranks));

  count_t total = 0;
  for (const count_t c : counts) total += c;

  ++stats_.exchanges;
  stats_.records_sent += total;
  for (int r = 0; r < nranks; ++r)
    if (r != me)
      stats_.bytes_sent +=
          counts[static_cast<std::size_t>(r)] * static_cast<count_t>(elem);

  // Stage the in-flight state. A snapshotting start() releases the
  // caller's buffer here; start_inplace() and the blocking exchange()
  // alias it instead (their buffers stay valid until the finish half).
  pending_.elem_ = elem;
  pending_.total_ = total;
  pending_.counts_ = counts;
  pending_.offsets_.resize(counts.size() + 1);
  count_t running = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    pending_.offsets_[i] = running;
    running += counts[i];
  }
  pending_.offsets_[counts.size()] = running;
  if (mode == StartMode::kSnapshot) {
    pending_.staging_.resize(static_cast<std::size_t>(total) * elem);
    if (total > 0)
      std::memcpy(pending_.staging_.data(), send,
                  static_cast<std::size_t>(total) * elem);
    pending_.wire_ = pending_.staging_.data();
  } else {
    pending_.wire_ = send;
  }
  if (mode != StartMode::kBlocking) {
    ++stats_.overlapped;
    stats_.max_inflight_bytes =
        std::max(stats_.max_inflight_bytes,
                 total * static_cast<count_t>(elem));
  }

  // Agree on a global phase count. Unbounded mode skips the allreduce:
  // all ranks constructed with max_send_bytes == 0 know the answer.
  pending_.nphases_ = 1;
  pending_.max_records_ = std::max<count_t>(total, 1);
  if (max_send_bytes_ > 0) {
    pending_.max_records_ =
        std::max<count_t>(1, max_send_bytes_ / static_cast<count_t>(elem));
    const count_t local_phases =
        total == 0 ? 1 : (total + pending_.max_records_ - 1) /
                             pending_.max_records_;
    pending_.nphases_ = comm.allreduce_max(local_phases);
  }
  pending_.phase_ = 0;
  pending_.active_ = true;

  if (pending_.nphases_ == 1) {
    // Single-phase: post the whole payload; arrival counts and the
    // receive buffer are handled by the finish half.
    (void)comm.alltoallv_bytes_start(pending_.wire_, elem, pending_.counts_);
  } else {
    // Phased mode: learn the final per-source totals up front (one
    // small alltoall), so every phase's arrivals land directly in
    // their final position — the receive side peaks at the payload
    // size, never double-buffers. Then post phase 0.
    rcounts_ = comm.alltoall(pending_.counts_);
    recv_total_ = 0;
    cursor_.resize(static_cast<std::size_t>(nranks));
    for (int s = 0; s < nranks; ++s) {
      cursor_[static_cast<std::size_t>(s)] = recv_total_;
      recv_total_ += rcounts_[static_cast<std::size_t>(s)];
    }
    recv_bytes_.resize(static_cast<std::size_t>(recv_total_) * elem);
    const count_t hi = std::min(pending_.max_records_, total);
    window_counts(pending_.offsets_, 0, hi, phase_counts_);
    (void)comm.alltoallv_bytes_start(pending_.wire_, elem, phase_counts_);
  }
  const double sec = t.seconds();
  stats_.seconds += sec;
  stats_.start_seconds += sec;
}

void Exchanger::finish_bytes(sim::Comm& comm) {
  XTRA_ASSERT_MSG(pending_.active_,
                  "Exchanger::finish without a started exchange");
  Timer t;
  const int nranks = comm.size();
  const std::size_t elem = pending_.elem_;

  if (pending_.nphases_ == 1) {
    recv_total_ = comm.alltoallv_bytes_finish(recv_bytes_, &rcounts_);
    ++stats_.phases;
  } else {
    // Drain phase p, immediately post phase p+1 so it is in flight
    // while p's arrivals are scattered into their final positions.
    const count_t total = pending_.total_;
    while (pending_.phase_ < pending_.nphases_) {
      (void)comm.alltoallv_bytes_finish(phase_bytes_, &phase_rcounts_);
      ++stats_.phases;
      ++pending_.phase_;
      if (pending_.phase_ < pending_.nphases_) {
        const count_t lo =
            std::min(pending_.phase_ * pending_.max_records_, total);
        const count_t hi = std::min(lo + pending_.max_records_, total);
        window_counts(pending_.offsets_, lo, hi, phase_counts_);
        (void)comm.alltoallv_bytes_start(
            pending_.wire_ + static_cast<std::size_t>(lo) * elem, elem,
            phase_counts_);
      }
      // Arrivals from source s across phases, concatenated in phase
      // order, are exactly s's single-alltoallv segment (each phase
      // window preserves the within-destination record order).
      std::size_t pos = 0;
      for (int s = 0; s < nranks; ++s) {
        const count_t c = phase_rcounts_[static_cast<std::size_t>(s)];
        if (c == 0) continue;
        const std::size_t len = static_cast<std::size_t>(c) * elem;
        std::memcpy(recv_bytes_.data() +
                        static_cast<std::size_t>(
                            cursor_[static_cast<std::size_t>(s)]) *
                            elem,
                    phase_bytes_.data() + pos, len);
        cursor_[static_cast<std::size_t>(s)] += c;
        pos += len;
      }
    }
#ifndef NDEBUG
    // Every cursor must have advanced to the next source's start.
    for (int s = 0; s + 1 < nranks; ++s)
      XTRA_DEBUG_ASSERT(cursor_[static_cast<std::size_t>(s)] ==
                        cursor_[static_cast<std::size_t>(s + 1)] -
                            rcounts_[static_cast<std::size_t>(s + 1)]);
#endif
  }
  pending_.active_ = false;
  pending_.wire_ = nullptr;
  const double sec = t.seconds();
  stats_.seconds += sec;
  stats_.finish_seconds += sec;
}

}  // namespace xtra::comm
