#include "comm/exchanger.hpp"

#include <algorithm>
#include <cstring>

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace xtra::comm {

void Exchanger::exchange_bytes(sim::Comm& comm, const std::byte* send,
                               std::size_t elem,
                               const std::vector<count_t>& counts) {
  Timer t;
  const int nranks = comm.size();
  const int me = comm.rank();
  XTRA_ASSERT(counts.size() == static_cast<std::size_t>(nranks));

  count_t total = 0;
  for (const count_t c : counts) total += c;

  ++stats_.exchanges;
  stats_.records_sent += total;
  for (int r = 0; r < nranks; ++r)
    if (r != me)
      stats_.bytes_sent +=
          counts[static_cast<std::size_t>(r)] * static_cast<count_t>(elem);

  // Agree on a global phase count. Unbounded mode skips the allreduce:
  // all ranks constructed with max_send_bytes == 0 know the answer.
  count_t nphases = 1;
  count_t max_records = total;
  if (max_send_bytes_ > 0) {
    max_records =
        std::max<count_t>(1, max_send_bytes_ / static_cast<count_t>(elem));
    const count_t local_phases =
        total == 0 ? 1 : (total + max_records - 1) / max_records;
    nphases = comm.allreduce_max(local_phases);
  }

  if (nphases == 1) {
    recv_total_ = comm.alltoallv_bytes(send, elem, counts, recv_bytes_,
                                       &rcounts_);
    ++stats_.phases;
    stats_.seconds += t.seconds();
    return;
  }

  // Phased mode. The send buffer is grouped by destination, so slicing
  // it into [lo, hi) record windows keeps each window's per-destination
  // runs contiguous and in destination order — each slice is itself a
  // valid alltoallv send buffer.
  send_offsets_.resize(counts.size() + 1);
  count_t running = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    send_offsets_[i] = running;
    running += counts[i];
  }
  send_offsets_[counts.size()] = running;

  // Learn the final per-source totals up front (one small alltoall),
  // so every phase's arrivals land directly in their final position:
  // the receive side peaks at the payload size, never double-buffers.
  rcounts_ = comm.alltoall(counts);
  recv_total_ = 0;
  cursor_.resize(static_cast<std::size_t>(nranks));
  for (int s = 0; s < nranks; ++s) {
    cursor_[static_cast<std::size_t>(s)] = recv_total_;
    recv_total_ += rcounts_[static_cast<std::size_t>(s)];
  }
  recv_bytes_.resize(static_cast<std::size_t>(recv_total_) * elem);

  // Arrivals from source s across phases, concatenated in phase order,
  // are exactly s's single-alltoallv segment (each phase window
  // preserves the within-destination record order).
  phase_counts_.resize(static_cast<std::size_t>(nranks));
  for (count_t p = 0; p < nphases; ++p) {
    const count_t lo = std::min(p * max_records, total);
    const count_t hi = std::min(lo + max_records, total);
    for (int r = 0; r < nranks; ++r) {
      const count_t a = std::max(lo, send_offsets_[static_cast<std::size_t>(r)]);
      const count_t b =
          std::min(hi, send_offsets_[static_cast<std::size_t>(r) + 1]);
      phase_counts_[static_cast<std::size_t>(r)] = std::max<count_t>(0, b - a);
    }
    (void)comm.alltoallv_bytes(send + static_cast<std::size_t>(lo) * elem,
                               elem, phase_counts_, phase_bytes_,
                               &phase_rcounts_);
    std::size_t pos = 0;
    for (int s = 0; s < nranks; ++s) {
      const count_t c = phase_rcounts_[static_cast<std::size_t>(s)];
      if (c == 0) continue;
      const std::size_t len = static_cast<std::size_t>(c) * elem;
      std::memcpy(recv_bytes_.data() +
                      static_cast<std::size_t>(
                          cursor_[static_cast<std::size_t>(s)]) *
                          elem,
                  phase_bytes_.data() + pos, len);
      cursor_[static_cast<std::size_t>(s)] += c;
      pos += len;
    }
    ++stats_.phases;
  }
#ifndef NDEBUG
  // Every cursor must have advanced to the next source's start.
  for (int s = 0; s + 1 < nranks; ++s)
    XTRA_DEBUG_ASSERT(cursor_[static_cast<std::size_t>(s)] ==
                      cursor_[static_cast<std::size_t>(s + 1)] -
                          rcounts_[static_cast<std::size_t>(s + 1)]);
#endif
  stats_.seconds += t.seconds();
}

}  // namespace xtra::comm
