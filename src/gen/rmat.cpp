#include "gen/chunk_gen.hpp"
#include "gen/generators.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace xtra::gen {

EdgeList rmat(int scale, count_t avg_degree, std::uint64_t seed, double a,
              double b, double c) {
  XTRA_ASSERT(scale >= 1 && scale < 63);
  XTRA_ASSERT(a + b + c <= 1.0 + 1e-9);
  const gid_t n = gid_t(1) << scale;
  const count_t m = static_cast<count_t>(n) * avg_degree / 2;

  EdgeList el;
  el.n = n;
  el.directed = false;
  el.edges.reserve(static_cast<std::size_t>(m));

  // Chunked over the m edge draws, one stream per chunk (chunk_gen.hpp).
  detail::generate_chunked(
      el, m, [&](count_t ch, count_t lo, count_t hi, auto& out) {
        Rng rng = detail::chunk_rng(seed, 0xD3A7, ch);
        for (count_t e = lo; e < hi; ++e) {
          gid_t u = 0, v = 0;
          for (int level = 0; level < scale; ++level) {
            // Noise on the quadrant probabilities (+-10%) de-correlates
            // the recursion levels, the standard R-MAT smoothing.
            const double na = a * (0.9 + 0.2 * rng.next_double());
            const double nb = b * (0.9 + 0.2 * rng.next_double());
            const double nc = c * (0.9 + 0.2 * rng.next_double());
            const double nd =
                (1.0 - a - b - c) * (0.9 + 0.2 * rng.next_double());
            const double norm = na + nb + nc + nd;
            const double r = rng.next_double() * norm;
            u <<= 1;
            v <<= 1;
            if (r < na) {
              // upper-left: no bits set
            } else if (r < na + nb) {
              v |= 1;
            } else if (r < na + nb + nc) {
              u |= 1;
            } else {
              u |= 1;
              v |= 1;
            }
          }
          if (u == v) continue;
          out.push_back({u, v});
        }
      });
  graph::canonicalize(el);
  return el;
}

}  // namespace xtra::gen
