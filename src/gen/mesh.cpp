#include "gen/generators.hpp"
#include "util/assert.hpp"

namespace xtra::gen {

EdgeList mesh2d(gid_t rows, gid_t cols) {
  XTRA_ASSERT(rows >= 1 && cols >= 1);
  EdgeList el;
  el.n = rows * cols;
  el.directed = false;
  el.edges.reserve(static_cast<std::size_t>(2 * rows * cols));
  auto id = [cols](gid_t r, gid_t c) { return r * cols + c; };
  for (gid_t r = 0; r < rows; ++r) {
    for (gid_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) el.edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) el.edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return el;
}

EdgeList mesh3d(gid_t nx, gid_t ny, gid_t nz) {
  XTRA_ASSERT(nx >= 1 && ny >= 1 && nz >= 1);
  EdgeList el;
  el.n = nx * ny * nz;
  el.directed = false;
  el.edges.reserve(static_cast<std::size_t>(3 * el.n));
  auto id = [ny, nz](gid_t x, gid_t y, gid_t z) {
    return (x * ny + y) * nz + z;
  };
  for (gid_t x = 0; x < nx; ++x) {
    for (gid_t y = 0; y < ny; ++y) {
      for (gid_t z = 0; z < nz; ++z) {
        if (z + 1 < nz) el.edges.push_back({id(x, y, z), id(x, y, z + 1)});
        if (y + 1 < ny) el.edges.push_back({id(x, y, z), id(x, y + 1, z)});
        if (x + 1 < nx) el.edges.push_back({id(x, y, z), id(x + 1, y, z)});
      }
    }
  }
  return el;
}

}  // namespace xtra::gen
