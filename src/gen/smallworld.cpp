#include <algorithm>
#include <cmath>

#include "gen/chunk_gen.hpp"
#include "gen/generators.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace xtra::gen {

namespace {

/// Zipf-like degree sample: floor(xmin * u^(-1/(alpha-1))) capped.
count_t powerlaw_degree(Rng& rng, double xmin, double alpha, count_t cap) {
  const double u = std::max(rng.next_double(), 1e-12);
  const double x = xmin * std::pow(u, -1.0 / (alpha - 1.0));
  return std::min<count_t>(static_cast<count_t>(x), cap);
}

/// Pareto-sized contiguous groups covering [0, n). Returns group start
/// offsets (size k+1, last element n).
std::vector<gid_t> pareto_groups(gid_t n, gid_t min_size, double alpha,
                                 Rng& rng) {
  std::vector<gid_t> starts{0};
  gid_t at = 0;
  while (at < n) {
    const double u = std::max(rng.next_double(), 1e-12);
    auto size = static_cast<gid_t>(
        static_cast<double>(min_size) * std::pow(u, -1.0 / alpha));
    size = std::min(size, n - at);
    size = std::min(size, n / 8 + 1);  // no single group dominates
    at += std::max<gid_t>(size, 1);
    starts.push_back(std::min(at, n));
  }
  if (starts.back() != n) starts.push_back(n);
  return starts;
}

/// Index of the group containing v given sorted start offsets.
std::size_t group_of(const std::vector<gid_t>& starts, gid_t v) {
  auto it = std::upper_bound(starts.begin(), starts.end(), v);
  return static_cast<std::size_t>(it - starts.begin()) - 1;
}

}  // namespace

EdgeList watts_strogatz(gid_t n, count_t k, double beta, std::uint64_t seed) {
  XTRA_ASSERT(n >= 4 && k >= 2);
  EdgeList el;
  el.n = n;
  el.directed = false;
  el.edges.reserve(static_cast<std::size_t>(n * (k / 2)));
  // Chunked over vertices, one stream per chunk (chunk_gen.hpp).
  detail::generate_chunked(
      el, static_cast<count_t>(n),
      [&](count_t c, count_t lo, count_t hi, auto& out) {
        Rng rng = detail::chunk_rng(seed, 0x3757, c);
        for (count_t i = lo; i < hi; ++i) {
          const gid_t v = static_cast<gid_t>(i);
          for (count_t j = 1; j <= k / 2; ++j) {
            gid_t target = (v + static_cast<gid_t>(j)) % n;
            if (rng.next_bool(beta)) {
              target = rng.next_below(n);
              if (target == v) target = (v + 1) % n;
            }
            out.push_back({v, target});
          }
        }
      });
  graph::canonicalize(el);
  return el;
}

EdgeList community_graph(gid_t n, count_t avg_degree, double p_in,
                         double degree_alpha, std::uint64_t seed) {
  XTRA_ASSERT(n >= 16 && avg_degree >= 2);
  Rng rng(seed, 0xC0FFEE);
  // Communities of Pareto-distributed size, mean a few hundred.
  const std::vector<gid_t> starts = pareto_groups(n, 32, 1.5, rng);

  EdgeList el;
  el.n = n;
  el.directed = false;
  el.edges.reserve(static_cast<std::size_t>(n * avg_degree / 2));
  const count_t cap = static_cast<count_t>(std::sqrt(double(n))) * 8;
  for (gid_t v = 0; v < n; ++v) {
    const std::size_t c = group_of(starts, v);
    const gid_t c_lo = starts[c], c_hi = starts[c + 1];
    // Each undirected edge adds degree at both endpoints, so the
    // per-vertex stub budget targets avg_degree/2; the Pareto mean is
    // xmin*(alpha-1)/(alpha-2), solved here for xmin (heavier tails
    // are cap-dominated and need a smaller floor).
    const double xmin =
        std::max(static_cast<double>(avg_degree) /
                     (degree_alpha > 2.05 ? 6.5 : 15.0),
                 0.8);
    const count_t deg = powerlaw_degree(rng, xmin, degree_alpha, cap);
    for (count_t j = 0; j < deg; ++j) {
      gid_t target;
      if (c_hi - c_lo > 1 && rng.next_bool(p_in)) {
        target = c_lo + rng.next_below(c_hi - c_lo);
      } else {
        // Global edge with mild preferential attachment: low ids of a
        // random community are its "hubs" under the quadratic skew.
        const double u = rng.next_double();
        target = static_cast<gid_t>(u * u * static_cast<double>(n));
        target = std::min(target, n - 1);
      }
      if (target == v) continue;
      el.edges.push_back({v, target});
    }
  }
  graph::canonicalize(el);
  return el;
}

EdgeList webcrawl(gid_t n, count_t avg_degree, std::uint64_t seed,
                  double p_host, double p_near) {
  XTRA_ASSERT(n >= 64 && avg_degree >= 2);
  XTRA_ASSERT(p_host + p_near <= 1.0);
  Rng rng(seed, 0x3EB);
  // Hosts are contiguous in crawl (= vertex) order; Pareto sizes give a
  // few giant hosts, matching the WDC12 imbalance under block layout.
  const std::vector<gid_t> hosts = pareto_groups(n, 16, 1.2, rng);
  const auto n_hosts = static_cast<gid_t>(hosts.size() - 1);

  // Topical communities *across* hosts: real crawls cluster by topic,
  // not just by crawl order, so a good partitioner can beat the block
  // layout (the XtraPuLP-vs-block gap of Fig 5/8). Hosts of one topic
  // are scattered through the id space.
  const auto n_topics = std::max<gid_t>(16, n_hosts / 24);
  std::vector<std::vector<gid_t>> topic_hosts(n_topics);
  for (gid_t h = 0; h < n_hosts; ++h)
    topic_hosts[hash_to_bucket(h, seed ^ 0x70F1C, n_topics)].push_back(h);
  // Of the non-host, non-near probability mass, 3/4 goes to same-topic
  // hosts and 1/4 to global Zipf hubs.
  const double p_topic = (1.0 - p_host - p_near) * 0.75;

  EdgeList el;
  el.n = n;
  el.directed = true;
  el.edges.reserve(static_cast<std::size_t>(n * avg_degree));
  const count_t cap = static_cast<count_t>(std::sqrt(double(n))) * 16;
  for (gid_t v = 0; v < n; ++v) {
    const auto h = static_cast<gid_t>(group_of(hosts, v));
    const count_t deg = powerlaw_degree(
        rng, std::max(static_cast<double>(avg_degree) / 6.0, 0.8), 2.1, cap);
    for (count_t j = 0; j < deg; ++j) {
      gid_t target;
      const double roll = rng.next_double();
      if (roll < p_host && hosts[h + 1] - hosts[h] > 1) {
        // intra-host navigation link
        target = hosts[h] + rng.next_below(hosts[h + 1] - hosts[h]);
      } else if (roll < p_host + p_near && n_hosts > 1) {
        // link to a crawl-adjacent host (window of +-8 hosts)
        const std::uint64_t win = std::min<std::uint64_t>(17, n_hosts);
        auto th = static_cast<std::int64_t>(h) +
                  static_cast<std::int64_t>(rng.next_below(win)) -
                  static_cast<std::int64_t>(win / 2);
        th = ((th % static_cast<std::int64_t>(n_hosts)) +
              static_cast<std::int64_t>(n_hosts)) %
             static_cast<std::int64_t>(n_hosts);
        const auto t = static_cast<gid_t>(th);
        target = hosts[t] + rng.next_below(std::max<gid_t>(
                                hosts[t + 1] - hosts[t], 1));
      } else if (roll < p_host + p_near + p_topic &&
                 !topic_hosts[hash_to_bucket(h, seed ^ 0x70F1C, n_topics)]
                      .empty()) {
        // link to a page of another host with the same topic
        const auto& peers =
            topic_hosts[hash_to_bucket(h, seed ^ 0x70F1C, n_topics)];
        const gid_t t = peers[rng.next_below(peers.size())];
        target = hosts[t] +
                 rng.next_below(std::max<gid_t>(hosts[t + 1] - hosts[t], 1));
      } else {
        // long-range link to a globally popular page (Zipf hubs)
        const double u = rng.next_double();
        target = static_cast<gid_t>(u * u * u * static_cast<double>(n));
        target = std::min(target, n - 1);
      }
      if (target == v) continue;
      el.edges.push_back({v, target});
    }
  }
  // Keep duplicates out but preserve direction.
  std::sort(el.edges.begin(), el.edges.end());
  el.edges.erase(std::unique(el.edges.begin(), el.edges.end()),
                 el.edges.end());
  return el;
}

}  // namespace xtra::gen
