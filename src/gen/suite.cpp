#include "gen/suite.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "gen/generators.hpp"
#include "util/assert.hpp"

namespace xtra::gen {

namespace {

// Vertex counts are the paper's divided by ~1000 (Table I lists n in
// millions); average degrees are the paper's. This keeps each graph's
// relative size and density so cross-graph comparisons (Table II,
// Fig 4) retain their shape while a full suite sweep stays tractable
// on one core.
const std::vector<SuiteEntry> kSuite = {
    {"lj", GraphClass::kSocial, 54'000, 14},
    {"orkut", GraphClass::kSocial, 31'000, 38},
    {"friendster", GraphClass::kSocial, 120'000, 28},
    {"twitter", GraphClass::kSocial, 80'000, 38},
    {"wikilinks", GraphClass::kSocial, 26'000, 23},
    {"dbpedia", GraphClass::kSocial, 67'000, 4},
    {"indochina", GraphClass::kWeb, 30'000, 41},
    {"arabic", GraphClass::kWeb, 46'000, 49},
    {"uk-2002", GraphClass::kWeb, 18'000, 16},
    {"uk-2005", GraphClass::kWeb, 78'000, 40},
    {"wdc12-pay", GraphClass::kWeb, 78'000, 16},
    {"wdc12-host", GraphClass::kWeb, 120'000, 23},
    {"rmat_14", GraphClass::kRmat, 1 << 14, 16},
    {"rmat_16", GraphClass::kRmat, 1 << 16, 16},
    {"rmat_18", GraphClass::kRmat, 1 << 18, 16},
    {"InternalMesh1", GraphClass::kMesh, 17'000, 4},
    {"InternalMesh2", GraphClass::kMesh, 66'000, 4},
    {"nlpkkt_s", GraphClass::kMesh, 27'000, 6},
    {"nlpkkt_m", GraphClass::kMesh, 64'000, 6},
};

gid_t scaled(gid_t base, double scale) {
  const double v = static_cast<double>(base) * scale;
  return std::max<gid_t>(static_cast<gid_t>(v), 256);
}

}  // namespace

const std::vector<SuiteEntry>& suite() { return kSuite; }

std::vector<SuiteEntry> suite(GraphClass cls) {
  std::vector<SuiteEntry> out;
  for (const auto& e : kSuite)
    if (e.cls == cls) out.push_back(e);
  return out;
}

const char* to_string(GraphClass cls) {
  switch (cls) {
    case GraphClass::kSocial: return "social";
    case GraphClass::kWeb: return "web";
    case GraphClass::kRmat: return "rmat";
    case GraphClass::kMesh: return "mesh";
  }
  return "?";
}

double env_scale() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read-once startup probe
  const char* env = std::getenv("XTRA_SCALE");
  if (!env) return 1.0;
  const double s = std::atof(env);
  return s > 0 ? s : 1.0;
}

graph::EdgeList make_suite_graph(const std::string& name, double scale,
                                 std::uint64_t seed) {
  const SuiteEntry* entry = nullptr;
  for (const auto& e : kSuite)
    if (e.name == name) entry = &e;
  if (!entry) throw std::out_of_range("unknown suite graph: " + name);

  const gid_t n = scaled(entry->base_n, scale);
  switch (entry->cls) {
    case GraphClass::kSocial: {
      // twitter/dbpedia have extreme hub skew -> lower alpha.
      const double alpha =
          (name == "twitter" || name == "dbpedia") ? 1.9 : 2.3;
      return community_graph(n, entry->avg_degree, 0.55, alpha, seed);
    }
    case GraphClass::kWeb:
      return graph::symmetrized(webcrawl(n, entry->avg_degree, seed));
    case GraphClass::kRmat: {
      const int sc = static_cast<int>(std::lround(std::log2(double(n))));
      return rmat(sc, entry->avg_degree, seed);
    }
    case GraphClass::kMesh: {
      if (name.rfind("nlpkkt", 0) == 0) {
        const auto side = static_cast<gid_t>(std::cbrt(double(n)));
        return mesh3d(side, side, side);
      }
      const auto side = static_cast<gid_t>(std::sqrt(double(n)));
      return mesh2d(side, side);
    }
  }
  throw std::logic_error("unhandled graph class");
}

}  // namespace xtra::gen
