// Synthetic graph generators covering every graph class of Table I.
//
// All generators are deterministic in (parameters, seed). Sizes here
// are scaled down from the paper's (this substrate runs on one core);
// the *structural* properties the experiments depend on — degree
// skew, diameter, locality of a block ordering — are preserved. See
// DESIGN.md §2 for the substitution table.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace xtra::gen {

using graph::EdgeList;
using xtra::count_t;
using xtra::gid_t;

/// R-MAT recursive-quadrant generator [Chakrabarti et al. 2004], the
/// paper's RMAT class. n = 2^scale vertices, ~avg_degree*n/2 edges,
/// default Graph500 probabilities. Undirected, duplicates removed.
EdgeList rmat(int scale, count_t avg_degree, std::uint64_t seed,
              double a = 0.57, double b = 0.19, double c = 0.19);

/// Erdős–Rényi G(n, m) with m = n*avg_degree/2 uniform edges (RandER).
EdgeList erdos_renyi(gid_t n, count_t avg_degree, std::uint64_t seed);

/// The paper's high-diameter random graph (RandHD, §IV): vertex k gets
/// edges to vertices chosen uniformly from (k - avg_degree,
/// k + avg_degree), wrapping modulo n. Diameter Θ(n / avg_degree).
EdgeList rand_hd(gid_t n, count_t avg_degree, std::uint64_t seed);

/// Regular 2D grid, 5-point stencil (InternalMesh stand-in).
EdgeList mesh2d(gid_t rows, gid_t cols);

/// Regular 3D grid, 7-point stencil (nlpkkt stand-in: banded, low
/// constant degree, large diameter).
EdgeList mesh3d(gid_t nx, gid_t ny, gid_t nz);

/// Watts–Strogatz small-world ring lattice with rewiring.
EdgeList watts_strogatz(gid_t n, count_t k, double beta, std::uint64_t seed);

/// Community-structured power-law graph (online-social-network
/// stand-in: lj/orkut/friendster/twitter classes). Pareto community
/// sizes, Zipf degrees, `p_in` fraction of edges internal to the
/// community, remainder preferential-attachment-like. Undirected.
EdgeList community_graph(gid_t n, count_t avg_degree, double p_in,
                         double degree_alpha, std::uint64_t seed);

/// Web-crawl stand-in (WDC12 / uk-xxxx classes): vertices in crawl
/// order grouped into Pareto-sized hosts; most arcs stay within the
/// host or go to nearby hosts, a small fraction targets global hubs
/// with Zipf popularity. Directed; block partitions of the crawl order
/// get a low cut but poor balance — the WDC12 behaviour of Fig 5/8.
EdgeList webcrawl(gid_t n, count_t avg_degree, std::uint64_t seed,
                  double p_host = 0.50, double p_near = 0.10);

}  // namespace xtra::gen
