// The Table I test-graph suite, scaled for this substrate.
//
// Each paper graph is mapped to a generator with matching class and
// average degree; vertex counts are scaled down by a constant factor
// (the paper's inputs need a cluster). Scale can be raised with the
// XTRA_SCALE env var or the `scale` argument.
#pragma once

#include <string>
#include <vector>

#include "graph/edge_list.hpp"

namespace xtra::gen {

enum class GraphClass { kSocial, kWeb, kRmat, kMesh };

struct SuiteEntry {
  std::string name;        ///< paper's graph name
  GraphClass cls;
  gid_t base_n;            ///< vertices at scale 1.0
  count_t avg_degree;      ///< paper's davg
};

/// All suite graphs in Table I order (social, web, rmat, mesh).
const std::vector<SuiteEntry>& suite();

/// Entries restricted to one class.
std::vector<SuiteEntry> suite(GraphClass cls);

/// Generate the named suite graph at the given scale multiplier.
/// Throws std::out_of_range for unknown names.
graph::EdgeList make_suite_graph(const std::string& name, double scale = 1.0,
                                 std::uint64_t seed = 42);

/// Benchmark scale multiplier from the XTRA_SCALE env var (default 1).
double env_scale();

const char* to_string(GraphClass cls);

}  // namespace xtra::gen
