#include "gen/chunk_gen.hpp"
#include "gen/generators.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace xtra::gen {

EdgeList erdos_renyi(gid_t n, count_t avg_degree, std::uint64_t seed) {
  XTRA_ASSERT(n >= 2);
  const count_t m = static_cast<count_t>(n) * avg_degree / 2;
  EdgeList el;
  el.n = n;
  el.directed = false;
  el.edges.reserve(static_cast<std::size_t>(m));
  // Chunked over the m edge draws, one stream per chunk (chunk_gen.hpp).
  detail::generate_chunked(
      el, m, [&](count_t c, count_t lo, count_t hi, auto& out) {
        Rng rng = detail::chunk_rng(seed, 0xE12D, c);
        for (count_t e = lo; e < hi; ++e) {
          const gid_t u = rng.next_below(n);
          const gid_t v = rng.next_below(n);
          if (u == v) continue;
          out.push_back({u, v});
        }
      });
  graph::canonicalize(el);
  return el;
}

EdgeList rand_hd(gid_t n, count_t avg_degree, std::uint64_t seed) {
  XTRA_ASSERT(n >= 4 && avg_degree >= 2);
  EdgeList el;
  el.n = n;
  el.directed = false;
  // Paper §IV: "for a vertex with identifier k ... add davg edges
  // connecting it to vertices chosen uniform randomly from the interval
  // (k - davg, k + davg)". Adding davg/2 per vertex yields an average
  // degree of ~davg once both endpoints are counted; targets wrap
  // modulo n so the ring keeps its Θ(n/davg) diameter.
  const count_t per_vertex = std::max<count_t>(avg_degree / 2, 1);
  el.edges.reserve(static_cast<std::size_t>(n * per_vertex));
  const std::uint64_t window = 2 * static_cast<std::uint64_t>(avg_degree) - 1;
  // Chunked over vertices, one stream per chunk (chunk_gen.hpp).
  detail::generate_chunked(
      el, static_cast<count_t>(n),
      [&](count_t c, count_t lo, count_t hi, auto& out) {
        Rng rng = detail::chunk_rng(seed, 0x4A9D, c);
        for (count_t i = lo; i < hi; ++i) {
          const gid_t k = static_cast<gid_t>(i);
          for (count_t j = 0; j < per_vertex; ++j) {
            // Uniform offset in [-(davg-1), davg-1] \ {0}.
            std::int64_t off =
                static_cast<std::int64_t>(rng.next_below(window)) -
                (static_cast<std::int64_t>(avg_degree) - 1);
            if (off == 0) off = 1;
            const gid_t target =
                static_cast<gid_t>((static_cast<std::int64_t>(k) + off +
                                    static_cast<std::int64_t>(n)) %
                                   static_cast<std::int64_t>(n));
            out.push_back({k, target});
          }
        }
      });
  graph::canonicalize(el);
  return el;
}

}  // namespace xtra::gen
