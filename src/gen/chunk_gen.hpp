// Chunk-seeded parallel edge generation.
//
// A generator that walks one RNG stream serially cannot be threaded
// without changing the graph it produces, and seeding per *thread*
// would make the graph depend on the pool width — the exact
// reproducibility bug this layer exists to avoid. Instead each
// fixed-size work chunk (util/parallel.hpp grain) derives its own
// stream from the chunk INDEX, draws its edges independently, and the
// per-chunk edge vectors are spliced in chunk order. The resulting
// edge list is a pure function of (parameters, seed) at every thread
// count, including one.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace xtra::gen::detail {

/// Stream for chunk `c` of a generator whose serial stream id was
/// `stream`. Keyed by the chunk index, never by the worker thread.
inline Rng chunk_rng(std::uint64_t seed, std::uint64_t stream, count_t c) {
  return {seed, stream ^ splitmix64(static_cast<std::uint64_t>(c) + 1)};
}

/// Run `body(c, lo, hi, out)` over the chunks of [0, total) on the
/// ambient thread pool, then append every chunk's edges to `el` in
/// chunk-index order.
template <typename Body>
void generate_chunked(graph::EdgeList& el, count_t total, Body&& body) {
  const count_t nchunks = par::chunk_count(total);
  std::vector<std::vector<graph::Edge>> chunks(
      static_cast<std::size_t>(nchunks));
  par::for_chunks(total, [&](count_t c, count_t lo, count_t hi) {
    auto& out = chunks[static_cast<std::size_t>(c)];
    out.reserve(static_cast<std::size_t>(hi - lo));
    body(c, lo, hi, out);
  });
  for (const auto& ch : chunks)
    el.edges.insert(el.edges.end(), ch.begin(), ch.end());
}

}  // namespace xtra::gen::detail
