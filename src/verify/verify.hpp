// Communication-correctness verifier (the MUST-style checking layer).
//
// The substrate's correctness rules — rank-uniform collective order,
// same-channel-on-every-rank, epoch separation on one-sided windows,
// in-flight buffer immutability, no comm from worker threads — are
// protocol contracts: violating them produces hangs or silently wrong
// answers, never a crash at the faulty call site. This layer mechanizes
// those contracts. It is compiled in when XTRA_VERIFY_COMM is defined
// (CMake option of the same name; ON by default in Debug builds, always
// OFF in Release unless forced) and costs nothing when absent: every
// hook in sim::Comm folds to a no-op behind `if constexpr`.
//
// Checkers (DESIGN.md §8 has the rule → detector → error table):
//
//  * Lockstep: every collective call records a packed fingerprint
//    (op kind, channel/window/root id, a hash of the rank-uniform
//    arguments) into a per-world ledger slot immediately before its
//    first barrier; immediately after, every rank cross-checks all
//    slots. Divergence — two ranks entering *different* collectives at
//    the same barrier point — aborts the world with a per-rank
//    fingerprint table and this rank's recent call trace, instead of
//    deadlocking or corrupting slot reads. Per-rank-varying arguments
//    (send counts, payload sizes) are hashed into the trace for the
//    diagnostic but never cross-compared: they differ legitimately.
//  * Channel & window lifecycle: start/finish and expose/unexpose are
//    bracketed in per-rank guards carrying an attribution tag (caller
//    label + the rank's collective count at open). Double-start,
//    finish-without-start, access outside an exposure epoch, and
//    leaks at run_world teardown (channel still in flight, window
//    still exposed when the rank function returns) all throw with the
//    opener's attribution.
//  * In-flight aliasing: the published send payload is checksummed at
//    start and re-verified at finish; an exposed window region is
//    checksummed at expose and re-verified at each fence and at
//    unexpose (skipped for epochs in which peers legitimately
//    win_put). A mismatch means the caller mutated a buffer the wire
//    still owned.
//  * Thread context: every sim::Comm entry asserts the calling thread
//    is not inside a par::for_chunks region — pool workers (and chunk
//    bodies on the rank thread) must never touch comm (DESIGN.md §6).
//
// The verifier is observability-only with respect to the comm ledger:
// it adds no collectives, bytes, or messages to CommStats (its extra
// barriers are never note()d), so verifier-on and verifier-off runs
// produce identical gated wire metrics — bench/check_comm_baseline.py
// --compare-bench asserts exactly that in CI.
//
// Errors are thrown as verify::ProtocolError (a std::runtime_error),
// so a failing rank unwinds its world cleanly through the existing
// abandon() machinery and run_world rethrows the attributed error —
// tests assert on it directly (tests/test_verify.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace xtra::verify {

#if defined(XTRA_VERIFY_COMM) && XTRA_VERIFY_COMM
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Mirrors sim::kMaxChannels / sim::kMaxWindows (static_asserted in
/// mpisim/comm.hpp — verify.hpp sits below the substrate and cannot
/// include it).
inline constexpr int kChannelSlots = 8;
inline constexpr int kWindowSlots = 4;

/// Entries kept in each rank's recent-call ring for divergence reports.
inline constexpr int kTraceLen = 16;

/// A comm-protocol violation, attributed to the offending call. Thrown
/// on the rank that detects it; run_world unwinds the world and
/// rethrows.
struct ProtocolError : std::runtime_error {
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Collective kinds that carry a lockstep fingerprint.
enum class Op : std::uint8_t {
  kNone = 0,
  kBarrier,
  kBcast,
  kAllreduce,
  kAlltoall,
  kAlltoallv,
  kAlltoallvBytes,
  kA2avStart,
  kA2avFinish,
  kWinExpose,
  kWinFence,
  kWinUnexpose,
  kGatherv,
  kAllgatherv,
  kEndOfWorld,
};

const char* op_name(Op op);

/// FNV-1a over raw bytes — the payload/counts checksum.
std::uint64_t fnv1a(const void* data, std::size_t bytes);
/// Order-sensitive combine for small argument tuples.
inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Packed lockstep fingerprint: op(6 bits) | id+1 (10 bits) | a 48-bit
/// fold of the rank-uniform argument hash. Ids are channels, windows,
/// or bcast/gatherv roots; -1 (no id) packs to 0.
std::uint64_t pack_fingerprint(Op op, int id, std::uint64_t uniform);
Op fingerprint_op(std::uint64_t fp);
int fingerprint_id(std::uint64_t fp);

/// One entry of a rank's recent-call ring.
struct TraceEntry {
  Op op = Op::kNone;
  int id = -1;
  std::uint64_t uniform = 0;  ///< rank-uniform argument hash
  std::uint64_t local = 0;    ///< per-rank hash (counts/sizes), diagnostic only
  std::uint64_t seq = 0;      ///< this rank's collective ordinal
};

/// Per-world verifier state. Lives inside detail::WorldState; every
/// hook is keyed by rank. Each rank writes only its own slots; the
/// fingerprint slots are double-buffered atomics read cross-rank after
/// a barrier (the barrier is the happens-before edge), and the put
/// counters are atomics incremented by origin ranks mid-epoch.
class WorldLedger {
 public:
  explicit WorldLedger(int nranks);

  // --- Lockstep ------------------------------------------------------
  /// Record this rank's fingerprint for the collective it is about to
  /// sync on. Call immediately before the collective's first barrier.
  void begin(int rank, Op op, int id, std::uint64_t uniform,
             std::uint64_t local);
  /// Cross-check every rank's fingerprint for the barrier generation
  /// this rank just passed. Call immediately after the collective's
  /// first barrier. Throws ProtocolError on divergence.
  void check(int rank) const;

  // --- Channel guards (two-sided in-flight exchanges) ----------------
  void channel_open(int rank, int channel, const char* label,
                    const void* base, std::size_t bytes);
  /// Re-verify the published payload is byte-identical to what start
  /// checksummed. Throws ProtocolError naming the opener on mismatch.
  void channel_verify(int rank, int channel) const;
  void channel_close(int rank, int channel);

  // --- Window guards (one-sided exposure epochs) ---------------------
  void window_open(int rank, int win, const char* label, void* base,
                   std::size_t bytes);
  /// Verify the owner did not mutate its exposed region during the
  /// epoch that just ended (skipped when peers win_put into it), then
  /// re-arm the checksum for the next epoch. Call between the fence's
  /// two barriers (or after unexpose's barrier). `closing` adds the
  /// unexpose wording.
  void window_epoch_verify(int rank, int win, bool closing);
  void window_close(int rank, int win);
  /// Origin-side record of a win_put into (target, win)'s current
  /// epoch — the owner's mutation check stands down for that epoch.
  void note_put(int target, int win);

  /// Diagnostic description of an open channel/window guard ("label
  /// 'x', opened at this rank's collective #n"), or "idle".
  std::string channel_attribution(int rank, int channel) const;
  std::string window_attribution(int rank, int win) const;

  int nranks() const { return nranks_; }

 private:
  struct ChannelGuard {
    bool open = false;
    const char* label = nullptr;
    const std::byte* base = nullptr;
    std::size_t bytes = 0;
    std::uint64_t checksum = 0;
    std::uint64_t opened_seq = 0;
  };
  struct WindowGuard {
    bool open = false;
    const char* label = nullptr;
    const std::byte* base = nullptr;
    std::size_t bytes = 0;
    std::uint64_t checksum = 0;
    count_t puts_seen = 0;  ///< put-counter snapshot at epoch start
    std::uint64_t opened_seq = 0;
    std::uint64_t closed_seq = 0;  ///< attribution for use-after-close
  };
  struct RankState {
    /// Double-buffered packed fingerprints, indexed by (seq & 1): the
    /// writer's next begin targets the other slot, and a barrier
    /// always separates a slot's write from every cross-rank read, so
    /// reads are race-free in lockstep programs.
    std::array<std::atomic<std::uint64_t>, 2> fp{};
    std::uint64_t seq = 0;  ///< collectives begun by this rank
    std::array<TraceEntry, kTraceLen> trace{};
    std::array<ChannelGuard, kChannelSlots> channels{};
    std::array<WindowGuard, kWindowSlots> windows{};
  };

  std::string describe_divergence(int rank, std::uint64_t mine) const;
  std::string trace_tail(int rank, int max_entries) const;

  int nranks_ = 0;
  std::vector<RankState> ranks_;
  /// Per-(target, window) put counters for the current epoch; origin
  /// ranks increment, the owner snapshots at epoch boundaries.
  std::vector<std::atomic<count_t>> puts_;
};

/// Throws ProtocolError if the calling thread is inside a
/// par::for_chunks region: chunk bodies and pool workers must never
/// touch sim::Comm (the MPI+X contract, DESIGN.md §6).
void thread_guard(const char* entry);

}  // namespace xtra::verify
