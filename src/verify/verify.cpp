#include "verify/verify.hpp"

#include <algorithm>
#include <sstream>

#include "util/parallel.hpp"

namespace xtra::verify {

const char* op_name(Op op) {
  switch (op) {
    case Op::kNone: return "(none)";
    case Op::kBarrier: return "barrier";
    case Op::kBcast: return "bcast";
    case Op::kAllreduce: return "allreduce";
    case Op::kAlltoall: return "alltoall";
    case Op::kAlltoallv: return "alltoallv";
    case Op::kAlltoallvBytes: return "alltoallv_bytes";
    case Op::kA2avStart: return "alltoallv_bytes_start";
    case Op::kA2avFinish: return "alltoallv_bytes_finish";
    case Op::kWinExpose: return "win_expose";
    case Op::kWinFence: return "win_fence";
    case Op::kWinUnexpose: return "win_unexpose";
    case Op::kGatherv: return "gatherv";
    case Op::kAllgatherv: return "allgatherv";
    case Op::kEndOfWorld: return "end-of-world (rank fn returned)";
  }
  return "(unknown)";
}

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t pack_fingerprint(Op op, int id, std::uint64_t uniform) {
  // Fold the 64-bit uniform hash into 48 bits so op and id stay
  // directly decodable from the packed word.
  const std::uint64_t folded = (uniform ^ (uniform >> 48)) & 0xffffffffffffULL;
  const std::uint64_t id_bits =
      static_cast<std::uint64_t>(id + 1) & 0x3ffULL;  // -1 (no id) -> 0
  return (static_cast<std::uint64_t>(op) << 58) | (id_bits << 48) | folded;
}

Op fingerprint_op(std::uint64_t fp) {
  return static_cast<Op>((fp >> 58) & 0x3f);
}

int fingerprint_id(std::uint64_t fp) {
  return static_cast<int>((fp >> 48) & 0x3ff) - 1;
}

namespace {

/// "alltoallv_bytes_start" or "win_fence(win 2)" — decoded from a
/// packed fingerprint for divergence tables.
std::string describe_fp(std::uint64_t fp) {
  if (fp == 0) return "(no collective recorded)";
  const Op op = fingerprint_op(fp);
  const int id = fingerprint_id(fp);
  std::ostringstream os;
  os << op_name(op);
  if (id >= 0) {
    switch (op) {
      case Op::kA2avStart:
      case Op::kA2avFinish:
        os << " [channel " << id << "]";
        break;
      case Op::kWinExpose:
      case Op::kWinFence:
      case Op::kWinUnexpose:
        os << " [window " << id << "]";
        break;
      case Op::kBcast:
      case Op::kGatherv:
        os << " [root " << id << "]";
        break;
      default:
        os << " [id " << id << "]";
        break;
    }
  }
  return os.str();
}

}  // namespace

WorldLedger::WorldLedger(int nranks)
    : nranks_(nranks),
      ranks_(static_cast<std::size_t>(nranks)),
      puts_(static_cast<std::size_t>(nranks) * kWindowSlots) {}

void WorldLedger::begin(int rank, Op op, int id, std::uint64_t uniform,
                        std::uint64_t local) {
  RankState& me = ranks_[static_cast<std::size_t>(rank)];
  const std::uint64_t seq = ++me.seq;
  // The previous generation's slot stays readable until every peer has
  // passed the barrier that published it; a rank can be at most one
  // collective ahead of the slowest peer (its own next barrier blocks
  // on them), so two slots suffice.
  me.fp[seq & 1].store(pack_fingerprint(op, id, uniform),
                       std::memory_order_release);
  TraceEntry& t = me.trace[seq % kTraceLen];
  t.op = op;
  t.id = id;
  t.uniform = uniform;
  t.local = local;
  t.seq = seq;
}

void WorldLedger::check(int rank) const {
  const RankState& me = ranks_[static_cast<std::size_t>(rank)];
  const std::size_t slot = me.seq & 1;
  const std::uint64_t mine = me.fp[slot].load(std::memory_order_acquire);
  for (int r = 0; r < nranks_; ++r) {
    const std::uint64_t theirs =
        ranks_[static_cast<std::size_t>(r)].fp[slot].load(
            std::memory_order_acquire);
    if (theirs != mine) {
      throw ProtocolError(describe_divergence(rank, mine));
    }
  }
}

std::string WorldLedger::describe_divergence(int rank,
                                             std::uint64_t mine) const {
  const RankState& me = ranks_[static_cast<std::size_t>(rank)];
  const std::size_t slot = me.seq & 1;
  std::ostringstream os;
  os << "comm verifier: lockstep divergence — ranks entered different "
        "collectives at the same barrier point.\n"
     << "  rank " << rank << " (this rank) arrived at its collective #"
     << me.seq << ": " << describe_fp(mine) << "\n"
     << "  fingerprints of all ranks at this barrier point:\n";
  for (int r = 0; r < nranks_; ++r) {
    const std::uint64_t fp =
        ranks_[static_cast<std::size_t>(r)].fp[slot].load(
            std::memory_order_acquire);
    os << "    rank " << r << ": " << describe_fp(fp)
       << (fp == mine ? "" : "   <-- differs") << "\n";
  }
  os << "  recent collectives on rank " << rank << " (oldest first):\n"
     << trace_tail(rank, kTraceLen);
  return os.str();
}

std::string WorldLedger::trace_tail(int rank, int max_entries) const {
  const RankState& me = ranks_[static_cast<std::size_t>(rank)];
  std::ostringstream os;
  const std::uint64_t hi = me.seq;
  const std::uint64_t span =
      std::min<std::uint64_t>(hi, static_cast<std::uint64_t>(max_entries));
  for (std::uint64_t s = hi - span + 1; s <= hi && span > 0; ++s) {
    const TraceEntry& t = me.trace[s % kTraceLen];
    if (t.seq != s) continue;  // overwritten by wraparound
    os << "    #" << t.seq << " "
       << describe_fp(pack_fingerprint(t.op, t.id, t.uniform));
    os << "  (local-args hash " << std::hex << t.local << std::dec << ")\n";
  }
  return os.str();
}

void WorldLedger::channel_open(int rank, int channel, const char* label,
                               const void* base, std::size_t bytes) {
  ChannelGuard& g =
      ranks_[static_cast<std::size_t>(rank)].channels[static_cast<std::size_t>(
          channel)];
  // Double-start on a busy channel is caught by sim::Comm before this
  // hook; the guard here just (re)arms attribution + checksum.
  g.open = true;
  g.label = label;
  g.base = static_cast<const std::byte*>(base);
  g.bytes = bytes;
  g.checksum = fnv1a(base, bytes);
  g.opened_seq = ranks_[static_cast<std::size_t>(rank)].seq;
}

void WorldLedger::channel_verify(int rank, int channel) const {
  const ChannelGuard& g =
      ranks_[static_cast<std::size_t>(rank)].channels[static_cast<std::size_t>(
          channel)];
  if (!g.open) return;
  if (fnv1a(g.base, g.bytes) != g.checksum) {
    std::ostringstream os;
    os << "comm verifier: in-flight send payload mutated on rank " << rank
       << ", channel " << channel << " (" << channel_attribution(rank, channel)
       << ", " << g.bytes << " bytes published). The caller wrote into the "
       << "send buffer between alltoallv_bytes_start and finish/drain; "
       << "in-flight payloads are owned by the wire until finish returns.";
    throw ProtocolError(os.str());
  }
}

void WorldLedger::channel_close(int rank, int channel) {
  ChannelGuard& g =
      ranks_[static_cast<std::size_t>(rank)].channels[static_cast<std::size_t>(
          channel)];
  g.open = false;
}

void WorldLedger::window_open(int rank, int win, const char* label, void* base,
                              std::size_t bytes) {
  RankState& me = ranks_[static_cast<std::size_t>(rank)];
  WindowGuard& g = me.windows[static_cast<std::size_t>(win)];
  g.open = true;
  g.label = label;
  g.base = static_cast<const std::byte*>(base);
  g.bytes = bytes;
  g.checksum = fnv1a(base, bytes);
  g.puts_seen =
      puts_[static_cast<std::size_t>(rank) * kWindowSlots +
            static_cast<std::size_t>(win)]
          .load(std::memory_order_acquire);
  g.opened_seq = me.seq;
}

void WorldLedger::window_epoch_verify(int rank, int win, bool closing) {
  RankState& me = ranks_[static_cast<std::size_t>(rank)];
  WindowGuard& g = me.windows[static_cast<std::size_t>(win)];
  if (!g.open) return;
  const count_t puts_now =
      puts_[static_cast<std::size_t>(rank) * kWindowSlots +
            static_cast<std::size_t>(win)]
          .load(std::memory_order_acquire);
  // Peers wrote into the window this epoch — the owner's region
  // legitimately changed, so the mutation check stands down.
  if (puts_now == g.puts_seen && fnv1a(g.base, g.bytes) != g.checksum) {
    std::ostringstream os;
    os << "comm verifier: exposed window buffer mutated by its owner "
       << (closing ? "before win_unexpose" : "between fences") << " on rank "
       << rank << ", window " << win << " (" << window_attribution(rank, win)
       << ", " << g.bytes << " bytes exposed). An exposed region is readable "
       << "by every peer until the next fence; the owner must not write it "
       << "mid-epoch.";
    throw ProtocolError(os.str());
  }
  if (!closing) {
    g.checksum = fnv1a(g.base, g.bytes);
    g.puts_seen = puts_now;
  }
}

void WorldLedger::window_close(int rank, int win) {
  RankState& me = ranks_[static_cast<std::size_t>(rank)];
  WindowGuard& g = me.windows[static_cast<std::size_t>(win)];
  g.open = false;
  g.closed_seq = me.seq;
}

void WorldLedger::note_put(int target, int win) {
  puts_[static_cast<std::size_t>(target) * kWindowSlots +
        static_cast<std::size_t>(win)]
      .fetch_add(1, std::memory_order_acq_rel);
}

std::string WorldLedger::channel_attribution(int rank, int channel) const {
  const ChannelGuard& g =
      ranks_[static_cast<std::size_t>(rank)].channels[static_cast<std::size_t>(
          channel)];
  if (!g.open) return "idle";
  std::ostringstream os;
  os << "opened by '" << (g.label ? g.label : "(unlabeled)")
     << "' at this rank's collective #" << g.opened_seq;
  return os.str();
}

std::string WorldLedger::window_attribution(int rank, int win) const {
  const WindowGuard& g =
      ranks_[static_cast<std::size_t>(rank)].windows[static_cast<std::size_t>(
          win)];
  if (!g.open) {
    std::ostringstream os;
    os << "idle";
    if (g.label != nullptr) {
      os << " (last exposed by '" << g.label << "', unexposed at this rank's "
         << "collective #" << g.closed_seq << ")";
    }
    return os.str();
  }
  std::ostringstream os;
  os << "exposed by '" << (g.label ? g.label : "(unlabeled)")
     << "' at this rank's collective #" << g.opened_seq;
  return os.str();
}

void thread_guard(const char* entry) {
  if (par::in_parallel_region()) {
    std::ostringstream os;
    os << "comm verifier: sim::Comm::" << entry
       << " called from inside a par:: parallel region (worker slot "
       << par::current_slot()  // lint-ok: diagnostic, not an observable
       << "). Pool workers and for_chunks bodies must never touch comm "
       << "(MPI+X contract, DESIGN.md §6): hoist the call out of the "
       << "parallel region onto the rank thread.";
    throw ProtocolError(os.str());
  }
}

}  // namespace xtra::verify
