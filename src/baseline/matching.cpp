// Heavy-edge matching for multilevel coarsening (the classic
// METIS-style kernel).
#include <numeric>

#include "baseline/partitioners.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace xtra::baseline {

std::vector<gid_t> heavy_edge_matching(const SerialGraph& g,
                                       std::uint64_t seed) {
  std::vector<gid_t> match(g.n);
  std::iota(match.begin(), match.end(), gid_t{0});

  // Random visit order de-biases the matching.
  std::vector<gid_t> order(g.n);
  std::iota(order.begin(), order.end(), gid_t{0});
  Rng rng(seed, 0x4EA7);
  for (gid_t i = g.n; i > 1; --i) {
    const gid_t j = rng.next_below(i);
    std::swap(order[i - 1], order[j]);
  }

  for (const gid_t v : order) {
    if (match[v] != v) continue;  // already matched
    gid_t best = v;
    count_t best_w = -1;
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const gid_t u = nbrs[i];
      if (u == v || match[u] != u) continue;
      // Prefer the heaviest edge; break ties toward lighter vertices
      // so coarse vertex weights stay even.
      if (wgts[i] > best_w ||
          (wgts[i] == best_w && best != v && g.vwgt[u] < g.vwgt[best])) {
        best_w = wgts[i];
        best = u;
      }
    }
    if (best != v) {
      match[v] = best;
      match[best] = v;
    }
  }
  return match;
}

gid_t matching_to_cmap(const std::vector<gid_t>& match,
                       std::vector<gid_t>& cmap) {
  const gid_t n = static_cast<gid_t>(match.size());
  cmap.assign(n, kInvalidLid);
  gid_t next = 0;
  for (gid_t v = 0; v < n; ++v) {
    if (cmap[v] != kInvalidLid) continue;
    const gid_t u = match[v];
    XTRA_ASSERT_MSG(match[u] == v || u == v, "matching is not symmetric");
    cmap[v] = next;
    cmap[u] = next;  // u == v for unmatched vertices
    ++next;
  }
  return next;
}

}  // namespace xtra::baseline
