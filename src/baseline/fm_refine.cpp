// Bisection growing and FM-style refinement kernels for the multilevel
// baseline (Fiduccia–Mattheyses [15], simplified to greedy boundary
// passes — the paper itself calls XtraPuLP's refinement "a variant of
// FM-refinement").
#include <algorithm>
#include <queue>

#include "baseline/partitioners.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace xtra::baseline {

namespace {

/// Weighted edge mass from v into `side`.
count_t side_connectivity(const SerialGraph& g,
                          const std::vector<part_t>& parts, gid_t v,
                          part_t side) {
  count_t w = 0;
  const auto nbrs = g.neighbors(v);
  const auto wgts = g.edge_weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    if (parts[nbrs[i]] == side) w += wgts[i];
  return w;
}

/// One greedy FM pass over the bisection boundary. Moves any vertex
/// with positive gain (cut decrease) whose move keeps both sides above
/// floor and below cap. Returns moves made.
count_t fm_bisection_pass(const SerialGraph& g, std::vector<part_t>& parts,
                          count_t cap0, count_t cap1,
                          std::array<count_t, 2>& side_weight) {
  count_t moves = 0;
  for (gid_t v = 0; v < g.n; ++v) {
    const part_t x = parts[v];
    const part_t y = 1 - x;
    const count_t cap = (y == 0) ? cap0 : cap1;
    if (side_weight[static_cast<std::size_t>(y)] + g.vwgt[v] > cap) continue;
    if (side_weight[static_cast<std::size_t>(x)] - g.vwgt[v] < 1) continue;
    const count_t gain = side_connectivity(g, parts, v, y) -
                         side_connectivity(g, parts, v, x);
    if (gain > 0) {
      parts[v] = y;
      side_weight[static_cast<std::size_t>(x)] -= g.vwgt[v];
      side_weight[static_cast<std::size_t>(y)] += g.vwgt[v];
      ++moves;
    }
  }
  return moves;
}

}  // namespace

std::vector<part_t> grow_bisection(const SerialGraph& g, count_t target0,
                                   double imbalance, std::uint64_t seed,
                                   int fm_passes) {
  XTRA_ASSERT(g.n >= 2);
  std::vector<part_t> parts(g.n, 1);
  Rng rng(seed, 0xB15EC7);

  // BFS-grow side 0 from a random seed until it holds ~target0 weight,
  // restarting from new seeds if a component is exhausted (George &
  // Liu style graph growing, as cited in §III-B).
  count_t grown = 0;
  std::vector<gid_t> queue;
  std::size_t head = 0;
  std::vector<bool> seen(g.n, false);
  while (grown < target0) {
    if (head == queue.size()) {
      // Find an unseen seed (random probe, then linear fallback).
      gid_t s = rng.next_below(g.n);
      for (gid_t probe = 0; probe < g.n && seen[s]; ++probe)
        s = (s + 1) % g.n;
      if (seen[s]) break;
      seen[s] = true;
      queue.push_back(s);
    }
    const gid_t v = queue[head++];
    if (grown + g.vwgt[v] > target0 + (target0 * 5) / 100 && grown > 0)
      continue;  // skip oversize growth but keep draining the queue
    parts[v] = 0;
    grown += g.vwgt[v];
    for (const gid_t u : g.neighbors(v)) {
      if (!seen[u]) {
        seen[u] = true;
        queue.push_back(u);
      }
    }
  }

  std::array<count_t, 2> side_weight{0, 0};
  for (gid_t v = 0; v < g.n; ++v)
    side_weight[static_cast<std::size_t>(parts[v])] += g.vwgt[v];
  const count_t target1 = g.total_vwgt - target0;
  const auto cap0 = static_cast<count_t>(
      (1.0 + imbalance) * static_cast<double>(target0)) + 1;
  const auto cap1 = static_cast<count_t>(
      (1.0 + imbalance) * static_cast<double>(target1)) + 1;

  // Rebalance first if growing overshot (possible on disconnected or
  // hub-dominated graphs), preferring low-connectivity moves.
  for (int pass = 0; pass < 4 && (side_weight[0] > cap0 || side_weight[1] > cap1);
       ++pass) {
    const part_t from = side_weight[0] > cap0 ? 0 : 1;
    const part_t to = 1 - from;
    for (gid_t v = 0; v < g.n && side_weight[static_cast<std::size_t>(from)] >
                                     (from == 0 ? cap0 : cap1);
         ++v) {
      if (parts[v] != from) continue;
      parts[v] = to;
      side_weight[static_cast<std::size_t>(from)] -= g.vwgt[v];
      side_weight[static_cast<std::size_t>(to)] += g.vwgt[v];
    }
  }

  for (int pass = 0; pass < fm_passes; ++pass)
    if (fm_bisection_pass(g, parts, cap0, cap1, side_weight) == 0) break;
  return parts;
}

count_t kway_refine_pass(const SerialGraph& g, std::vector<part_t>& parts,
                         part_t nparts, const std::vector<count_t>& max_part,
                         std::vector<count_t>& weights) {
  count_t moves = 0;
  std::vector<count_t> counts(static_cast<std::size_t>(nparts), 0);
  std::vector<part_t> touched;
  for (gid_t v = 0; v < g.n; ++v) {
    const part_t x = parts[v];
    if (weights[static_cast<std::size_t>(x)] - g.vwgt[v] < 1) continue;
    touched.clear();
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const part_t pu = parts[nbrs[i]];
      if (counts[static_cast<std::size_t>(pu)] == 0) touched.push_back(pu);
      counts[static_cast<std::size_t>(pu)] += wgts[i];
    }
    part_t best = x;
    count_t best_score = counts[static_cast<std::size_t>(x)];
    for (const part_t i : touched) {
      if (i == x) continue;
      if (weights[static_cast<std::size_t>(i)] + g.vwgt[v] >
          max_part[static_cast<std::size_t>(i)])
        continue;
      if (counts[static_cast<std::size_t>(i)] > best_score) {
        best_score = counts[static_cast<std::size_t>(i)];
        best = i;
      }
    }
    for (const part_t i : touched) counts[static_cast<std::size_t>(i)] = 0;
    if (best != x) {
      weights[static_cast<std::size_t>(x)] -= g.vwgt[v];
      weights[static_cast<std::size_t>(best)] += g.vwgt[v];
      parts[v] = best;
      ++moves;
    }
  }
  return moves;
}

void kway_force_balance(const SerialGraph& g, std::vector<part_t>& parts,
                        part_t nparts, count_t cap,
                        std::vector<count_t>& weights) {
  const auto target = static_cast<count_t>(
      g.total_vwgt / static_cast<count_t>(nparts));
  std::vector<count_t> counts(static_cast<std::size_t>(nparts), 0);
  std::vector<part_t> touched;
  for (int pass = 0; pass < 16; ++pass) {
    bool any_over = false;
    count_t moves = 0;
    for (gid_t v = 0; v < g.n; ++v) {
      const part_t x = parts[v];
      if (weights[static_cast<std::size_t>(x)] <= cap) continue;
      any_over = true;
      if (weights[static_cast<std::size_t>(x)] - g.vwgt[v] < 1) continue;
      // Best-connected destination below target; teleport fallback.
      touched.clear();
      const auto nbrs = g.neighbors(v);
      const auto wgts = g.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const part_t pu = parts[nbrs[i]];
        if (counts[static_cast<std::size_t>(pu)] == 0) touched.push_back(pu);
        counts[static_cast<std::size_t>(pu)] += wgts[i];
      }
      part_t best = x;
      count_t best_score = -1;
      for (const part_t i : touched) {
        if (i == x) continue;
        if (weights[static_cast<std::size_t>(i)] + g.vwgt[v] > target)
          continue;
        if (counts[static_cast<std::size_t>(i)] > best_score) {
          best_score = counts[static_cast<std::size_t>(i)];
          best = i;
        }
      }
      for (const part_t i : touched) counts[static_cast<std::size_t>(i)] = 0;
      if (best == x) {
        // No admissible neighbor part: teleport to the lightest part.
        part_t lightest = 0;
        for (part_t i = 1; i < nparts; ++i)
          if (weights[static_cast<std::size_t>(i)] <
              weights[static_cast<std::size_t>(lightest)])
            lightest = i;
        if (lightest != x &&
            weights[static_cast<std::size_t>(lightest)] + g.vwgt[v] <= cap)
          best = lightest;
      }
      if (best != x) {
        weights[static_cast<std::size_t>(x)] -= g.vwgt[v];
        weights[static_cast<std::size_t>(best)] += g.vwgt[v];
        parts[v] = best;
        ++moves;
      }
    }
    if (!any_over || moves == 0) break;
  }
}

}  // namespace xtra::baseline
