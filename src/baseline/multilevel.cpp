// Multilevel k-way partitioner — the ParMETIS stand-in (DESIGN.md §2):
// heavy-edge-matching coarsening, BFS-growing recursive bisection at
// the coarsest level, greedy boundary refinement while uncoarsening.
#include <array>

#include "baseline/coarsen.hpp"
#include "baseline/partitioners.hpp"
#include "util/assert.hpp"

namespace xtra::baseline {

namespace {

/// Extract the subgraph induced by vertices with parts[v] == side.
/// Fills old-id list `to_old` (new id -> old id).
SerialGraph induced_subgraph(const SerialGraph& g,
                             const std::vector<part_t>& parts, part_t side,
                             std::vector<gid_t>& to_old) {
  std::vector<gid_t> to_new(g.n, kInvalidLid);
  to_old.clear();
  for (gid_t v = 0; v < g.n; ++v) {
    if (parts[v] == side) {
      to_new[v] = static_cast<gid_t>(to_old.size());
      to_old.push_back(v);
    }
  }
  SerialGraph s;
  s.n = static_cast<gid_t>(to_old.size());
  s.offsets.assign(s.n + 1, 0);
  s.vwgt.resize(s.n);
  count_t arcs = 0;
  for (gid_t nv = 0; nv < s.n; ++nv) {
    const gid_t v = to_old[nv];
    s.vwgt[nv] = g.vwgt[v];
    s.total_vwgt += g.vwgt[v];
    for (const gid_t u : g.neighbors(v))
      if (to_new[u] != kInvalidLid) ++arcs;
  }
  s.adj.resize(static_cast<std::size_t>(arcs));
  s.ewgt.resize(static_cast<std::size_t>(arcs));
  count_t at = 0;
  for (gid_t nv = 0; nv < s.n; ++nv) {
    const gid_t v = to_old[nv];
    s.offsets[nv] = at;
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (to_new[nbrs[i]] == kInvalidLid) continue;
      s.adj[static_cast<std::size_t>(at)] = to_new[nbrs[i]];
      s.ewgt[static_cast<std::size_t>(at)] = wgts[i];
      ++at;
    }
  }
  s.offsets[s.n] = at;
  s.m = at / 2;
  return s;
}

/// Recursive bisection producing labels [0, k) on g.
void recursive_bisect(const SerialGraph& g, part_t k, part_t label_offset,
                      const BaselineOptions& opts, std::uint64_t seed,
                      std::vector<part_t>& out,
                      const std::vector<gid_t>& to_global) {
  XTRA_ASSERT(k >= 1);
  if (k == 1 || g.n == 0) {
    for (gid_t v = 0; v < g.n; ++v) out[to_global[v]] = label_offset;
    return;
  }
  if (g.n == 1) {
    out[to_global[0]] = label_offset;
    return;
  }
  const part_t k0 = k / 2;
  const part_t k1 = k - k0;
  const count_t target0 =
      static_cast<count_t>(static_cast<double>(g.total_vwgt) *
                           static_cast<double>(k0) / static_cast<double>(k));
  const std::vector<part_t> bis =
      grow_bisection(g, target0, opts.imbalance, seed, opts.refine_passes);
  for (const part_t side : {part_t{0}, part_t{1}}) {
    std::vector<gid_t> to_old;
    const SerialGraph sub = induced_subgraph(g, bis, side, to_old);
    std::vector<gid_t> sub_to_global(sub.n);
    for (gid_t v = 0; v < sub.n; ++v)
      sub_to_global[v] = to_global[to_old[v]];
    recursive_bisect(sub, side == 0 ? k0 : k1,
                     side == 0 ? label_offset : label_offset + k0, opts,
                     seed * 2 + 1 + static_cast<std::uint64_t>(side), out,
                     sub_to_global);
  }
}

}  // namespace

std::vector<part_t> multilevel_partition(const SerialGraph& g, part_t nparts,
                                         const BaselineOptions& opts,
                                         count_t memory_limit_edges) {
  XTRA_ASSERT(nparts >= 1);
  if (g.m > memory_limit_edges)
    throw std::length_error(
        "multilevel partitioner: graph exceeds the configured memory "
        "envelope (models ParMETIS' out-of-memory failures, Table II)");
  if (nparts == 1 || g.n == 0) return std::vector<part_t>(g.n, 0);

  // 1. Coarsen.
  const gid_t target_n =
      std::max<gid_t>(128, static_cast<gid_t>(nparts) * 8);
  const std::vector<CoarseLevel> levels =
      coarsen_by_matching(g, target_n, opts.seed);
  const SerialGraph& coarsest = levels.empty() ? g : levels.back().graph;

  // 2. Initial partition via recursive bisection.
  std::vector<part_t> parts(coarsest.n, 0);
  std::vector<gid_t> identity(coarsest.n);
  for (gid_t v = 0; v < coarsest.n; ++v) identity[v] = v;
  recursive_bisect(coarsest, nparts, 0, opts, opts.seed ^ 0x1111, parts,
                   identity);

  // 3. Uncoarsen and refine.
  const auto cap = static_cast<count_t>(
      (1.0 + opts.imbalance) * static_cast<double>(g.total_vwgt) /
      static_cast<double>(nparts)) + 1;
  const std::vector<count_t> max_part(static_cast<std::size_t>(nparts), cap);
  for (std::size_t li = levels.size(); li-- > 0;) {
    // Project coarse labels to the finer level.
    const std::vector<gid_t>& cmap = levels[li].cmap;
    std::vector<part_t> fine(cmap.size());
    for (gid_t v = 0; v < static_cast<gid_t>(cmap.size()); ++v)
      fine[v] = parts[cmap[v]];
    parts = std::move(fine);
    const SerialGraph& fine_g = (li == 0) ? g : levels[li - 1].graph;
    std::vector<count_t> weights = part_weights(fine_g, parts, nparts);
    kway_force_balance(fine_g, parts, nparts, cap, weights);
    for (int pass = 0; pass < opts.refine_passes; ++pass)
      if (kway_refine_pass(fine_g, parts, nparts, max_part, weights) == 0)
        break;
  }
  if (levels.empty()) {
    std::vector<count_t> weights = part_weights(g, parts, nparts);
    kway_force_balance(g, parts, nparts, cap, weights);
    for (int pass = 0; pass < opts.refine_passes; ++pass)
      if (kway_refine_pass(g, parts, nparts, max_part, weights) == 0) break;
  }
  {
    // Final guarantee on the full graph (bisection slack can compound
    // across recursion levels).
    std::vector<count_t> weights = part_weights(g, parts, nparts);
    kway_force_balance(g, parts, nparts, cap, weights);
  }
  return parts;
}

}  // namespace xtra::baseline
