// Coarsening hierarchies shared by the multilevel and SCLP baselines.
#pragma once

#include <vector>

#include "baseline/serial_graph.hpp"

namespace xtra::baseline {

/// One coarsening step: the coarse graph plus the fine->coarse map.
struct CoarseLevel {
  SerialGraph graph;
  std::vector<gid_t> cmap;  ///< indexed by the *finer* level's vertices
};

/// Repeatedly coarsen by heavy-edge matching until at most `target_n`
/// vertices remain or shrinkage stalls (<5% reduction). Returns the
/// hierarchy coarsest-last; empty if g is already small enough.
std::vector<CoarseLevel> coarsen_by_matching(const SerialGraph& g,
                                             gid_t target_n,
                                             std::uint64_t seed);

/// Size-constrained label-propagation clustering (Meyerhenke et al.):
/// every vertex greedily joins the neighboring cluster with the
/// heaviest connection whose total weight stays <= cluster_cap.
/// Returns a compact cluster map and writes the cluster count.
std::vector<gid_t> sclp_cluster(const SerialGraph& g, count_t cluster_cap,
                                int sweeps, std::uint64_t seed,
                                gid_t& n_clusters);

/// Coarsen by repeated SCLP clustering (KaHIP-style), with the same
/// stopping rules as coarsen_by_matching.
std::vector<CoarseLevel> coarsen_by_sclp(const SerialGraph& g,
                                         gid_t target_n, count_t cluster_cap,
                                         std::uint64_t seed);

}  // namespace xtra::baseline
