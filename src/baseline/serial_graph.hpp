// Single-address-space weighted CSR graph, the substrate for the
// comparison partitioners (PuLP, the multilevel ParMETIS stand-in, and
// the SCLP KaHIP stand-in all operate on a gathered global graph —
// mirroring ParMETIS' per-task memory behaviour that the paper calls
// out as its scalability limit).
#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"

namespace xtra::baseline {

/// Symmetric CSR with vertex and edge weights (weights become
/// non-trivial on coarsened graphs).
struct SerialGraph {
  gid_t n = 0;
  count_t m = 0;  ///< undirected edge count (adj stores 2m entries)
  std::vector<count_t> offsets;  ///< size n+1
  std::vector<gid_t> adj;
  std::vector<count_t> ewgt;  ///< parallel to adj
  std::vector<count_t> vwgt;  ///< size n
  count_t total_vwgt = 0;

  count_t degree(gid_t v) const { return offsets[v + 1] - offsets[v]; }
  std::span<const gid_t> neighbors(gid_t v) const {
    return {adj.data() + offsets[v],
            static_cast<std::size_t>(offsets[v + 1] - offsets[v])};
  }
  std::span<const count_t> edge_weights(gid_t v) const {
    return {ewgt.data() + offsets[v],
            static_cast<std::size_t>(offsets[v + 1] - offsets[v])};
  }
  /// Sum of incident edge weights (counts both orientations once each).
  count_t weighted_degree(gid_t v) const;
};

/// Build a unit-weight SerialGraph from an edge list (symmetrizes;
/// drops self-loops; merges duplicate edges by summing weights).
SerialGraph build_serial_graph(const graph::EdgeList& el);

/// Contract by an arbitrary cluster map (values in [0, n_coarse)).
/// Vertex weights sum per cluster; parallel edges merge with summed
/// weights; intra-cluster edges vanish.
SerialGraph contract(const SerialGraph& g, const std::vector<gid_t>& cmap,
                     gid_t n_coarse);

/// Edge cut of a partition under edge weights.
count_t weighted_cut(const SerialGraph& g, const std::vector<part_t>& parts);

/// Per-part vertex-weight sums.
std::vector<count_t> part_weights(const SerialGraph& g,
                                  const std::vector<part_t>& parts,
                                  part_t nparts);

}  // namespace xtra::baseline
