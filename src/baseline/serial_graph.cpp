#include "baseline/serial_graph.hpp"

#include <algorithm>
#include <tuple>

#include "util/assert.hpp"
#include "util/prefix_sum.hpp"

namespace xtra::baseline {

namespace {

/// Build CSR from weighted arcs (both orientations present), merging
/// parallel arcs by weight summation.
SerialGraph from_arcs(gid_t n,
                      std::vector<std::tuple<gid_t, gid_t, count_t>>& arcs,
                      std::vector<count_t> vwgt) {
  std::sort(arcs.begin(), arcs.end());
  // Merge parallel arcs.
  std::size_t out = 0;
  for (std::size_t i = 0; i < arcs.size();) {
    std::size_t j = i + 1;
    count_t w = std::get<2>(arcs[i]);
    while (j < arcs.size() && std::get<0>(arcs[j]) == std::get<0>(arcs[i]) &&
           std::get<1>(arcs[j]) == std::get<1>(arcs[i])) {
      w += std::get<2>(arcs[j]);
      ++j;
    }
    arcs[out++] = {std::get<0>(arcs[i]), std::get<1>(arcs[i]), w};
    i = j;
  }
  arcs.resize(out);

  SerialGraph g;
  g.n = n;
  g.m = static_cast<count_t>(arcs.size()) / 2;
  g.offsets.assign(n + 1, 0);
  for (const auto& [u, v, w] : arcs) ++g.offsets[u + 1];
  for (gid_t v = 0; v < n; ++v) g.offsets[v + 1] += g.offsets[v];
  g.adj.resize(arcs.size());
  g.ewgt.resize(arcs.size());
  std::vector<count_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (const auto& [u, v, w] : arcs) {
    g.adj[static_cast<std::size_t>(cursor[u])] = v;
    g.ewgt[static_cast<std::size_t>(cursor[u])] = w;
    ++cursor[u];
  }
  if (vwgt.empty()) vwgt.assign(n, 1);
  g.vwgt = std::move(vwgt);
  g.total_vwgt = 0;
  for (const count_t w : g.vwgt) g.total_vwgt += w;
  return g;
}

}  // namespace

count_t SerialGraph::weighted_degree(gid_t v) const {
  count_t sum = 0;
  for (count_t i = offsets[v]; i < offsets[v + 1]; ++i)
    sum += ewgt[static_cast<std::size_t>(i)];
  return sum;
}

SerialGraph build_serial_graph(const graph::EdgeList& el) {
  std::vector<std::tuple<gid_t, gid_t, count_t>> arcs;
  arcs.reserve(el.edges.size() * 2);
  for (const graph::Edge& e : el.edges) {
    if (e.u == e.v) continue;
    arcs.emplace_back(e.u, e.v, 1);
    arcs.emplace_back(e.v, e.u, 1);
  }
  // Duplicate undirected edges would double both orientations, so
  // dedup arcs first (weight merging must not double-count an edge
  // listed twice in the input).
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  return from_arcs(el.n, arcs, {});
}

SerialGraph contract(const SerialGraph& g, const std::vector<gid_t>& cmap,
                     gid_t n_coarse) {
  XTRA_ASSERT(cmap.size() == g.n);
  std::vector<count_t> vwgt(n_coarse, 0);
  for (gid_t v = 0; v < g.n; ++v) {
    XTRA_ASSERT(cmap[v] < n_coarse);
    vwgt[cmap[v]] += g.vwgt[v];
  }
  std::vector<std::tuple<gid_t, gid_t, count_t>> arcs;
  arcs.reserve(g.adj.size());
  for (gid_t v = 0; v < g.n; ++v) {
    const gid_t cv = cmap[v];
    for (count_t i = g.offsets[v]; i < g.offsets[v + 1]; ++i) {
      const gid_t cu = cmap[g.adj[static_cast<std::size_t>(i)]];
      if (cu == cv) continue;  // interior edge disappears
      arcs.emplace_back(cv, cu, g.ewgt[static_cast<std::size_t>(i)]);
    }
  }
  return from_arcs(n_coarse, arcs, std::move(vwgt));
}

count_t weighted_cut(const SerialGraph& g, const std::vector<part_t>& parts) {
  XTRA_ASSERT(parts.size() == g.n);
  count_t cut2 = 0;  // both orientations counted
  for (gid_t v = 0; v < g.n; ++v)
    for (count_t i = g.offsets[v]; i < g.offsets[v + 1]; ++i)
      if (parts[g.adj[static_cast<std::size_t>(i)]] != parts[v])
        cut2 += g.ewgt[static_cast<std::size_t>(i)];
  return cut2 / 2;
}

std::vector<count_t> part_weights(const SerialGraph& g,
                                  const std::vector<part_t>& parts,
                                  part_t nparts) {
  std::vector<count_t> w(static_cast<std::size_t>(nparts), 0);
  for (gid_t v = 0; v < g.n; ++v) {
    XTRA_ASSERT(parts[v] >= 0 && parts[v] < nparts);
    w[static_cast<std::size_t>(parts[v])] += g.vwgt[v];
  }
  return w;
}

}  // namespace xtra::baseline
