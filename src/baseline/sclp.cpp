// Size-constrained label-propagation multilevel partitioner — the
// KaHIP / Meyerhenke-et-al. [24] stand-in for Fig 6: SCLP clustering
// coarsens aggressively (whole clusters contract at once, unlike
// pairwise matching), a multilevel partitioner runs at the coarsest
// level, and constrained LP refines during uncoarsening.
#include "baseline/coarsen.hpp"
#include "baseline/partitioners.hpp"
#include "util/assert.hpp"

namespace xtra::baseline {

namespace {

/// One full SCLP V-cycle (coarsen, partition, refine while uncoarsening).
std::vector<part_t> sclp_vcycle(const SerialGraph& g, part_t nparts,
                                const BaselineOptions& opts);

}  // namespace

std::vector<part_t> sclp_partition(const SerialGraph& g, part_t nparts,
                                   const BaselineOptions& opts) {
  XTRA_ASSERT(nparts >= 1);
  if (nparts == 1 || g.n == 0) return std::vector<part_t>(g.n, 0);
  // [24] pairs SCLP coarsening with the evolutionary KaFFPaE search;
  // model the search's population with independent V-cycles, keeping
  // the best cut. This is also what gives the KaHIP-class method its
  // Fig 6 profile: the best cut at by far the largest time.
  std::vector<part_t> best;
  count_t best_cut = -1;
  for (int trial = 0; trial < 4; ++trial) {
    BaselineOptions topts = opts;
    topts.seed = opts.seed + 0x51AB * static_cast<std::uint64_t>(trial);
    std::vector<part_t> cand = sclp_vcycle(g, nparts, topts);
    const count_t cut = weighted_cut(g, cand);
    if (best_cut < 0 || cut < best_cut) {
      best_cut = cut;
      best = std::move(cand);
    }
  }
  return best;
}

namespace {

std::vector<part_t> sclp_vcycle(const SerialGraph& g, part_t nparts,
                                const BaselineOptions& opts) {

  // Cluster cap: a fraction of the target block weight, so the coarse
  // graph still has enough vertices per part to partition well.
  const count_t cluster_cap = std::max<count_t>(
      g.total_vwgt / (static_cast<count_t>(nparts) * 4), 1);
  const gid_t target_n =
      std::max<gid_t>(128, static_cast<gid_t>(nparts) * 8);
  const std::vector<CoarseLevel> levels =
      coarsen_by_sclp(g, target_n, cluster_cap, opts.seed);
  const SerialGraph& coarsest = levels.empty() ? g : levels.back().graph;

  // Initial partition: [24] runs the evolutionary KaFFPaE at the
  // coarsest level; model its search by taking the best of several
  // independent multilevel partitions (this is also what makes the
  // KaHIP-class partitioner the slowest and best-cut method in Fig 6).
  std::vector<part_t> parts;
  count_t best_cut = -1;
  for (int trial = 0; trial < 8; ++trial) {
    BaselineOptions inner = opts;
    inner.seed = opts.seed ^ (0x4A19 + 0x9E37 * static_cast<std::uint64_t>(trial));
    std::vector<part_t> cand = multilevel_partition(coarsest, nparts, inner);
    const count_t cut = weighted_cut(coarsest, cand);
    if (best_cut < 0 || cut < best_cut) {
      best_cut = cut;
      parts = std::move(cand);
    }
  }

  // Uncoarsen with constrained LP sweeps (double passes: SCLP levels
  // are aggressive, so refinement has more to fix per level).
  const auto cap = static_cast<count_t>(
      (1.0 + opts.imbalance) * static_cast<double>(g.total_vwgt) /
      static_cast<double>(nparts)) + 1;
  const std::vector<count_t> max_part(static_cast<std::size_t>(nparts), cap);
  for (std::size_t li = levels.size(); li-- > 0;) {
    const std::vector<gid_t>& cmap = levels[li].cmap;
    std::vector<part_t> fine(cmap.size());
    for (gid_t v = 0; v < static_cast<gid_t>(cmap.size()); ++v)
      fine[v] = parts[cmap[v]];
    parts = std::move(fine);
    const SerialGraph& fine_g = (li == 0) ? g : levels[li - 1].graph;
    std::vector<count_t> weights = part_weights(fine_g, parts, nparts);
    kway_force_balance(fine_g, parts, nparts, cap, weights);
    for (int pass = 0; pass < 2 * opts.refine_passes; ++pass)
      if (kway_refine_pass(fine_g, parts, nparts, max_part, weights) == 0)
        break;
  }
  {
    std::vector<count_t> weights = part_weights(g, parts, nparts);
    kway_force_balance(g, parts, nparts, cap, weights);
  }
  return parts;
}

}  // namespace

}  // namespace xtra::baseline
