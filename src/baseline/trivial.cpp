#include "baseline/partitioners.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace xtra::baseline {

std::vector<part_t> random_partition(gid_t n, part_t nparts,
                                     std::uint64_t seed) {
  XTRA_ASSERT(nparts >= 1);
  std::vector<part_t> parts(n);
  for (gid_t v = 0; v < n; ++v)
    parts[v] = static_cast<part_t>(
        hash_to_bucket(v, seed, static_cast<std::uint64_t>(nparts)));
  return parts;
}

std::vector<part_t> vertex_block_partition(gid_t n, part_t nparts) {
  XTRA_ASSERT(nparts >= 1);
  std::vector<part_t> parts(n);
  for (gid_t v = 0; v < n; ++v) {
    const auto p = static_cast<part_t>(
        (static_cast<__uint128_t>(v) * static_cast<gid_t>(nparts)) / n);
    parts[v] = std::min<part_t>(p, nparts - 1);
  }
  return parts;
}

std::vector<part_t> edge_block_partition(const SerialGraph& g,
                                         part_t nparts) {
  XTRA_ASSERT(nparts >= 1);
  // Walk gids in order, cutting a new part whenever the running
  // endpoint count passes the next multiple of 2m/p.
  std::vector<part_t> parts(g.n, nparts - 1);
  const double per_part =
      2.0 * static_cast<double>(g.m) / static_cast<double>(nparts);
  double running = 0.0;
  part_t current = 0;
  for (gid_t v = 0; v < g.n; ++v) {
    if (current < nparts - 1 &&
        running >= per_part * static_cast<double>(current + 1))
      ++current;
    parts[v] = current;
    running += static_cast<double>(g.degree(v));
  }
  return parts;
}

}  // namespace xtra::baseline
