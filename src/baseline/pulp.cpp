// Shared-memory PuLP-MM [27] — the prior system XtraPuLP extends.
//
// Same three-stage scheme as the distributed partitioner (LP init,
// vertex balance+refine, edge balance+refine) but in one address
// space with *asynchronous in-place updates*: part sizes are exact at
// every move, so no dynamic multiplier is needed. The quality
// differences between this and core::partition are precisely the
// paper's PuLP-vs-XtraPuLP comparison (Fig 4).
//
// Loops are written serially; the paper's OpenMP threading changes
// wall-clock, not algorithm (this substrate has one core — DESIGN.md).
#include <algorithm>

#include "baseline/partitioners.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace xtra::baseline {

namespace {

constexpr int kOuterIters = 3;
constexpr int kBalIters = 5;
constexpr int kRefIters = 10;

double pull_weight(double target, count_t size) {
  return std::max(target / std::max<double>(static_cast<double>(size), 1.0) -
                      1.0,
                  0.0);
}

/// Unconstrained label propagation from random seeds (PuLP's cheap
/// initialization): every vertex adopts its neighborhood's
/// degree-weighted majority label for a few sweeps.
std::vector<part_t> lp_init(const SerialGraph& g, part_t nparts,
                            std::uint64_t seed) {
  std::vector<part_t> parts(g.n);
  for (gid_t v = 0; v < g.n; ++v)
    parts[v] = static_cast<part_t>(
        hash_to_bucket(v, seed ^ 0x9E1, static_cast<std::uint64_t>(nparts)));
  std::vector<double> counts(static_cast<std::size_t>(nparts), 0.0);
  std::vector<part_t> touched;
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (gid_t v = 0; v < g.n; ++v) {
      touched.clear();
      const auto nbrs = g.neighbors(v);
      const auto wgts = g.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const part_t pu = parts[nbrs[i]];
        if (counts[static_cast<std::size_t>(pu)] == 0.0)
          touched.push_back(pu);
        counts[static_cast<std::size_t>(pu)] +=
            static_cast<double>(wgts[i]);
      }
      part_t best = parts[v];
      double best_score = counts[static_cast<std::size_t>(best)];
      for (const part_t i : touched)
        if (counts[static_cast<std::size_t>(i)] > best_score) {
          best_score = counts[static_cast<std::size_t>(i)];
          best = i;
        }
      for (const part_t i : touched)
        counts[static_cast<std::size_t>(i)] = 0.0;
      parts[v] = best;
    }
  }
  return parts;
}

}  // namespace

std::vector<part_t> pulp_partition(const SerialGraph& g, part_t nparts,
                                   const BaselineOptions& opts) {
  XTRA_ASSERT(nparts >= 1);
  if (nparts == 1) return std::vector<part_t>(g.n, 0);
  std::vector<part_t> parts = lp_init(g, nparts, opts.seed);

  const auto imb_v = static_cast<count_t>(
      (1.0 + opts.imbalance) * static_cast<double>(g.total_vwgt) /
      static_cast<double>(nparts)) + 1;
  const auto imb_e = static_cast<count_t>(
      (1.0 + opts.imbalance) * 2.0 * static_cast<double>(g.m) /
      static_cast<double>(nparts)) + 1;

  std::vector<count_t> size_v = part_weights(g, parts, nparts);
  std::vector<double> counts(static_cast<std::size_t>(nparts), 0.0);
  std::vector<part_t> touched;

  // Weighted degrees are O(deg) to compute; hoist them out of the
  // neighbor loops (they are hit O(m) times per sweep).
  std::vector<double> wdeg(g.n);
  for (gid_t v = 0; v < g.n; ++v)
    wdeg[v] = static_cast<double>(g.weighted_degree(v));

  auto gather_counts = [&](gid_t v, bool degree_weighted) {
    touched.clear();
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const part_t pu = parts[nbrs[i]];
      if (counts[static_cast<std::size_t>(pu)] == 0.0) touched.push_back(pu);
      const double w = degree_weighted ? wdeg[nbrs[i]]
                                       : static_cast<double>(wgts[i]);
      counts[static_cast<std::size_t>(pu)] += w;
    }
  };
  auto clear_counts = [&] {
    for (const part_t i : touched) counts[static_cast<std::size_t>(i)] = 0.0;
  };

  // --- Stage 1: vertex balance + refinement ---
  for (int outer = 0; outer < kOuterIters; ++outer) {
    for (int iter = 0; iter < kBalIters; ++iter) {
      const count_t max_v =
          std::max(*std::max_element(size_v.begin(), size_v.end()), imb_v);
      for (gid_t v = 0; v < g.n; ++v) {
        const part_t x = parts[v];
        if (size_v[static_cast<std::size_t>(x)] - g.vwgt[v] < 1) continue;
        gather_counts(v, /*degree_weighted=*/true);
        part_t best = x;
        double best_score = 0.0;
        for (const part_t i : touched) {
          if (i == x) continue;
          if (size_v[static_cast<std::size_t>(i)] + g.vwgt[v] > max_v)
            continue;
          const double score =
              counts[static_cast<std::size_t>(i)] *
              pull_weight(static_cast<double>(imb_v),
                          size_v[static_cast<std::size_t>(i)]);
          if (score > best_score) {
            best_score = score;
            best = i;
          }
        }
        clear_counts();
        if (best != x && best_score > 0.0) {
          size_v[static_cast<std::size_t>(x)] -= g.vwgt[v];
          size_v[static_cast<std::size_t>(best)] += g.vwgt[v];
          parts[v] = best;
        }
      }
    }
    // LP-based balancing cannot reach an underweight part that shares
    // no boundary with any overweight part; force the constraint.
    kway_force_balance(g, parts, nparts, imb_v, size_v);
    for (int iter = 0; iter < kRefIters; ++iter) {
      const count_t max_v =
          std::max(*std::max_element(size_v.begin(), size_v.end()), imb_v);
      count_t moves = 0;
      for (gid_t v = 0; v < g.n; ++v) {
        const part_t x = parts[v];
        if (size_v[static_cast<std::size_t>(x)] - g.vwgt[v] < 1) continue;
        gather_counts(v, /*degree_weighted=*/false);
        part_t best = x;
        double best_score = counts[static_cast<std::size_t>(x)];
        for (const part_t i : touched) {
          if (i == x) continue;
          if (size_v[static_cast<std::size_t>(i)] + g.vwgt[v] > max_v)
            continue;
          if (counts[static_cast<std::size_t>(i)] > best_score) {
            best_score = counts[static_cast<std::size_t>(i)];
            best = i;
          }
        }
        clear_counts();
        if (best != x) {
          size_v[static_cast<std::size_t>(x)] -= g.vwgt[v];
          size_v[static_cast<std::size_t>(best)] += g.vwgt[v];
          parts[v] = best;
          ++moves;
        }
      }
      if (moves == 0) break;
    }
  }

  // --- Stage 2: edge balance + refinement ---
  std::vector<count_t> size_e(static_cast<std::size_t>(nparts), 0);
  for (gid_t v = 0; v < g.n; ++v)
    size_e[static_cast<std::size_t>(parts[v])] += g.degree(v);
  double r_e = 1.0, r_c = 1.0;
  for (int outer = 0; outer < kOuterIters; ++outer) {
    for (int iter = 0; iter < kBalIters; ++iter) {
      const count_t cur_max_e =
          *std::max_element(size_e.begin(), size_e.end());
      const count_t max_e = std::max(cur_max_e, imb_e);
      const count_t max_v =
          std::max(*std::max_element(size_v.begin(), size_v.end()), imb_v);
      if (cur_max_e <= imb_e) {
        r_c += 1.0;
      } else {
        r_e += 1.0;
      }
      for (gid_t v = 0; v < g.n; ++v) {
        const part_t x = parts[v];
        if (size_v[static_cast<std::size_t>(x)] - g.vwgt[v] < 1) continue;
        const count_t dv = g.degree(v);
        gather_counts(v, /*degree_weighted=*/true);
        part_t best = x;
        double best_score = 0.0;
        for (const part_t i : touched) {
          if (i == x) continue;
          if (size_v[static_cast<std::size_t>(i)] + g.vwgt[v] > max_v)
            continue;
          if (size_e[static_cast<std::size_t>(i)] + dv > max_e) continue;
          const double score =
              counts[static_cast<std::size_t>(i)] *
              (r_e * pull_weight(static_cast<double>(imb_e),
                                 size_e[static_cast<std::size_t>(i)]) +
               r_c);
          if (score > best_score) {
            best_score = score;
            best = i;
          }
        }
        clear_counts();
        if (best != x && best_score > 0.0) {
          size_v[static_cast<std::size_t>(x)] -= g.vwgt[v];
          size_v[static_cast<std::size_t>(best)] += g.vwgt[v];
          size_e[static_cast<std::size_t>(x)] -= dv;
          size_e[static_cast<std::size_t>(best)] += dv;
          parts[v] = best;
        }
      }
    }
    for (int iter = 0; iter < kRefIters; ++iter) {
      const count_t max_v =
          std::max(*std::max_element(size_v.begin(), size_v.end()), imb_v);
      const count_t max_e =
          std::max(*std::max_element(size_e.begin(), size_e.end()), imb_e);
      count_t moves = 0;
      for (gid_t v = 0; v < g.n; ++v) {
        const part_t x = parts[v];
        if (size_v[static_cast<std::size_t>(x)] - g.vwgt[v] < 1) continue;
        const count_t dv = g.degree(v);
        gather_counts(v, /*degree_weighted=*/false);
        part_t best = x;
        double best_score = counts[static_cast<std::size_t>(x)];
        for (const part_t i : touched) {
          if (i == x) continue;
          if (size_v[static_cast<std::size_t>(i)] + g.vwgt[v] > max_v)
            continue;
          if (size_e[static_cast<std::size_t>(i)] + dv > max_e) continue;
          if (counts[static_cast<std::size_t>(i)] > best_score) {
            best_score = counts[static_cast<std::size_t>(i)];
            best = i;
          }
        }
        clear_counts();
        if (best != x) {
          size_v[static_cast<std::size_t>(x)] -= g.vwgt[v];
          size_v[static_cast<std::size_t>(best)] += g.vwgt[v];
          size_e[static_cast<std::size_t>(x)] -= dv;
          size_e[static_cast<std::size_t>(best)] += dv;
          parts[v] = best;
          ++moves;
        }
      }
      if (moves == 0) break;
    }
  }
  // Edge-stage moves respect the vertex gate, but guarantee anyway.
  kway_force_balance(g, parts, nparts, imb_v, size_v);
  return parts;
}

}  // namespace xtra::baseline
