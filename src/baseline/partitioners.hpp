// Baseline partitioners used in the paper's comparisons.
//
//  * random / vertex-block / edge-block — the "simple balanced
//    assignment strategies" of Fig 8 and the large-scale quality
//    references of Fig 5;
//  * PuLP      — the authors' prior shared-memory partitioner [27]
//                (Table II, Fig 4, Fig 6);
//  * Multilevel — heavy-edge-matching + recursive bisection + FM,
//                the ParMETIS stand-in (Table II, Fig 4, Fig 6);
//  * SCLP      — size-constrained label-propagation multilevel
//                partitioner, the KaHIP/Meyerhenke-et-al. stand-in
//                (Fig 6).
// All run on a single address space and return a global part vector
// indexed by gid.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "baseline/serial_graph.hpp"
#include "graph/edge_list.hpp"
#include "util/types.hpp"

namespace xtra::baseline {

/// Uniform random vertex assignment.
std::vector<part_t> random_partition(gid_t n, part_t nparts,
                                     std::uint64_t seed);

/// Contiguous gid ranges with ~n/p vertices each ("VertexBlock").
std::vector<part_t> vertex_block_partition(gid_t n, part_t nparts);

/// Contiguous gid ranges holding ~2m/p edge endpoints each
/// ("EdgeBlock"): balances edges, ignores cut.
std::vector<part_t> edge_block_partition(const SerialGraph& g, part_t nparts);

/// Options shared by the serial comparison partitioners.
struct BaselineOptions {
  double imbalance = 0.10;   ///< allowed vertex(-weight) imbalance
  std::uint64_t seed = 1;
  int refine_passes = 10;    ///< per-level / per-stage refinement sweeps
};

/// PuLP-MM [27]: label-propagation init + degree-weighted balance +
/// refinement, asynchronous in-place updates (the shared-memory
/// algorithm XtraPuLP descends from).
std::vector<part_t> pulp_partition(const SerialGraph& g, part_t nparts,
                                   const BaselineOptions& opts = {});

/// Multilevel k-way partitioner (ParMETIS stand-in): heavy-edge
/// matching to ~max(128, 8k) vertices, greedy BFS-growing recursive
/// bisection, boundary FM refinement while uncoarsening.
/// Throws std::length_error for graphs above `memory_limit_edges` —
/// surfacing the out-of-memory failures ParMETIS shows in Table II.
std::vector<part_t> multilevel_partition(
    const SerialGraph& g, part_t nparts, const BaselineOptions& opts = {},
    count_t memory_limit_edges = count_t(1) << 62);

/// Size-constrained label propagation multilevel partitioner
/// (KaHIP-style, Meyerhenke et al. [24]): SCLP clustering to coarsen,
/// multilevel initial partition, constrained LP refinement per level.
std::vector<part_t> sclp_partition(const SerialGraph& g, part_t nparts,
                                   const BaselineOptions& opts = {});

// --- multilevel building blocks (exposed for unit testing) ---

/// Heavy-edge matching; returns match[v] = partner (or v if unmatched).
std::vector<gid_t> heavy_edge_matching(const SerialGraph& g,
                                       std::uint64_t seed);

/// Turn a matching into a cluster map; returns the coarse vertex count.
gid_t matching_to_cmap(const std::vector<gid_t>& match,
                       std::vector<gid_t>& cmap);

/// Greedy BFS-grown weighted bisection of g (parts 0/1), respecting
/// `target0` total weight for side 0, followed by FM passes.
std::vector<part_t> grow_bisection(const SerialGraph& g, count_t target0,
                                   double imbalance, std::uint64_t seed,
                                   int fm_passes);

/// Boundary FM-style k-way refinement pass; mutates parts in place and
/// returns the number of moves made.
count_t kway_refine_pass(const SerialGraph& g, std::vector<part_t>& parts,
                         part_t nparts, const std::vector<count_t>& max_part,
                         std::vector<count_t>& weights);

/// Guarantee the balance constraint: while any part exceeds `cap`,
/// move vertices out of it — preferring the best-connected admissible
/// destination, but falling back to the globally lightest part when the
/// overweight region has no boundary with any underweight part (label
/// propagation alone cannot fix that configuration).
void kway_force_balance(const SerialGraph& g, std::vector<part_t>& parts,
                        part_t nparts, count_t cap,
                        std::vector<count_t>& weights);

}  // namespace xtra::baseline
