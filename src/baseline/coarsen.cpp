#include "baseline/coarsen.hpp"

#include <numeric>

#include "baseline/partitioners.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace xtra::baseline {

std::vector<CoarseLevel> coarsen_by_matching(const SerialGraph& g,
                                             gid_t target_n,
                                             std::uint64_t seed) {
  std::vector<CoarseLevel> levels;
  const SerialGraph* cur = &g;
  std::uint64_t level_seed = seed;
  while (cur->n > target_n) {
    const std::vector<gid_t> match = heavy_edge_matching(*cur, level_seed++);
    std::vector<gid_t> cmap;
    const gid_t n_coarse = matching_to_cmap(match, cmap);
    if (n_coarse > cur->n * 95 / 100) break;  // shrinkage stalled
    CoarseLevel level;
    level.graph = contract(*cur, cmap, n_coarse);
    level.cmap = std::move(cmap);
    levels.push_back(std::move(level));
    cur = &levels.back().graph;
  }
  return levels;
}

std::vector<gid_t> sclp_cluster(const SerialGraph& g, count_t cluster_cap,
                                int sweeps, std::uint64_t seed,
                                gid_t& n_clusters) {
  std::vector<gid_t> cluster(g.n);
  std::iota(cluster.begin(), cluster.end(), gid_t{0});
  std::vector<count_t> cluster_weight(g.n);
  for (gid_t v = 0; v < g.n; ++v) cluster_weight[v] = g.vwgt[v];

  // Random visit order per sweep.
  std::vector<gid_t> order(g.n);
  std::iota(order.begin(), order.end(), gid_t{0});
  Rng rng(seed, 0x5C19);

  std::vector<count_t> counts(g.n, 0);
  std::vector<gid_t> touched;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (gid_t i = g.n; i > 1; --i) std::swap(order[i - 1], order[rng.next_below(i)]);
    count_t moves = 0;
    for (const gid_t v : order) {
      const gid_t cv = cluster[v];
      touched.clear();
      const auto nbrs = g.neighbors(v);
      const auto wgts = g.edge_weights(v);
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        const gid_t cu = cluster[nbrs[j]];
        if (counts[cu] == 0) touched.push_back(cu);
        counts[cu] += wgts[j];
      }
      gid_t best = cv;
      count_t best_score = counts[cv];
      for (const gid_t c : touched) {
        if (c == cv) continue;
        // Size constraint: joining must not blow the cluster cap.
        if (cluster_weight[c] + g.vwgt[v] > cluster_cap) continue;
        if (counts[c] > best_score) {
          best_score = counts[c];
          best = c;
        }
      }
      for (const gid_t c : touched) counts[c] = 0;
      if (best != cv) {
        cluster_weight[cv] -= g.vwgt[v];
        cluster_weight[best] += g.vwgt[v];
        cluster[v] = best;
        ++moves;
      }
    }
    if (moves == 0) break;
  }

  // Compact cluster ids.
  std::vector<gid_t> remap(g.n, kInvalidLid);
  gid_t next = 0;
  for (gid_t v = 0; v < g.n; ++v) {
    if (remap[cluster[v]] == kInvalidLid) remap[cluster[v]] = next++;
    cluster[v] = remap[cluster[v]];
  }
  n_clusters = next;
  return cluster;
}

std::vector<CoarseLevel> coarsen_by_sclp(const SerialGraph& g,
                                         gid_t target_n, count_t cluster_cap,
                                         std::uint64_t seed) {
  std::vector<CoarseLevel> levels;
  const SerialGraph* cur = &g;
  std::uint64_t level_seed = seed;
  while (cur->n > target_n) {
    gid_t n_clusters = 0;
    std::vector<gid_t> cmap =
        sclp_cluster(*cur, cluster_cap, /*sweeps=*/3, level_seed++, n_clusters);
    if (n_clusters > cur->n * 95 / 100) {
      // LP stalled (e.g. already cluster-free structure): fall back to
      // one matching level so coarsening still makes progress.
      const std::vector<gid_t> match = heavy_edge_matching(*cur, level_seed++);
      n_clusters = matching_to_cmap(match, cmap);
      if (n_clusters > cur->n * 95 / 100) break;
    }
    CoarseLevel level;
    level.graph = contract(*cur, cmap, n_clusters);
    level.cmap = std::move(cmap);
    levels.push_back(std::move(level));
    cur = &levels.back().graph;
  }
  return levels;
}

}  // namespace xtra::baseline
