#include "graph/halo.hpp"

#include "util/assert.hpp"

namespace xtra::graph {

HaloPlan::HaloPlan(sim::Comm& comm, const DistGraph& g) {
  const int nranks = comm.size();
  // Ghosts register with their owners: send each ghost gid to its
  // owner; arrival order on the owner defines the send order, and the
  // order we sent defines our receive order. alltoallv preserves both.
  std::vector<count_t> ghost_counts(static_cast<std::size_t>(nranks), 0);
  for (lid_t v = g.n_local(); v < g.n_total(); ++v)
    ++ghost_counts[static_cast<std::size_t>(g.owner_of(v))];
  std::vector<count_t> offsets = exclusive_prefix_sum(ghost_counts);
  std::vector<gid_t> ghost_gids(g.n_ghost());
  recv_lids_.resize(g.n_ghost());
  std::vector<count_t> cursor(offsets.begin(), offsets.end() - 1);
  for (lid_t v = g.n_local(); v < g.n_total(); ++v) {
    const int owner = g.owner_of(v);
    const count_t slot = cursor[static_cast<std::size_t>(owner)]++;
    ghost_gids[static_cast<std::size_t>(slot)] = g.gid_of(v);
    recv_lids_[static_cast<std::size_t>(slot)] = v;
  }
  const std::vector<gid_t> registrations =
      comm.alltoallv(ghost_gids, ghost_counts, &send_counts_);
  send_lids_.resize(registrations.size());
  for (std::size_t i = 0; i < registrations.size(); ++i) {
    const lid_t l = g.lid_of(registrations[i]);
    XTRA_ASSERT_MSG(l != kInvalidLid && g.is_owned(l),
                    "halo registration for a vertex not owned here");
    send_lids_[i] = l;
  }
}

}  // namespace xtra::graph
