#include "graph/halo.hpp"

#include <algorithm>

#include "comm/dest_buckets.hpp"
#include "util/assert.hpp"

namespace xtra::graph {

HaloPlan::HaloPlan(sim::Comm& comm, const DistGraph& g,
                   comm::ShardPolicy policy, comm::Backend backend) {
  policy_ = policy;
  backend_ = backend;
  add_lane();  // lane 0 — the ring grows on demand (set_pipeline_lanes)
  comm::Exchanger& ex = lanes_.front()->ex;
  // Ghosts register with their owners: send each ghost gid to its
  // owner; arrival order on the owner defines the send order, and the
  // order we sent defines our receive order. The exchange preserves
  // both.
  comm::DestBuckets<gid_t> buckets;
  buckets.begin(comm.size());
  for (lid_t v = g.n_local(); v < g.n_total(); ++v)
    buckets.count(g.owner_of(v));
  buckets.commit();
  recv_lids_.resize(g.n_ghost());
  for (lid_t v = g.n_local(); v < g.n_total(); ++v) {
    const count_t slot = buckets.push(g.owner_of(v), g.gid_of(v));
    recv_lids_[static_cast<std::size_t>(slot)] = v;
  }
  const std::span<const gid_t> registrations =
      ex.exchange(comm, buckets, &send_counts_);
  send_lids_.resize(registrations.size());
  for (std::size_t i = 0; i < registrations.size(); ++i) {
    const lid_t l = g.lid_of(registrations[i]);
    XTRA_ASSERT_MSG(l != kInvalidLid && g.is_owned(l),
                    "halo registration for a vertex not owned here");
    send_lids_[i] = l;
  }

  // Boundary classification for the overlapped path: an owned vertex
  // is boundary iff some peer holds it as a ghost (it appears in
  // send_lids_, possibly once per destination — dedup here).
  boundary_mask_.assign(static_cast<std::size_t>(g.n_local()), 0);
  for (const lid_t l : send_lids_)
    boundary_mask_[static_cast<std::size_t>(l)] = 1;
  boundary_lids_.clear();
  for (lid_t v = 0; v < g.n_local(); ++v)
    if (boundary_mask_[static_cast<std::size_t>(v)] != 0)
      boundary_lids_.push_back(v);
}

}  // namespace xtra::graph
