#include "graph/stats.hpp"

#include "graph/bfs.hpp"

namespace xtra::graph {

GraphStats compute_stats(sim::Comm& comm, const DistGraph& g,
                         int diameter_rounds) {
  GraphStats s;
  s.n = g.n_global();
  s.m = g.m_global();
  count_t local_max = 0;
  for (lid_t v = 0; v < g.n_local(); ++v)
    local_max = std::max(local_max, g.degree(v));
  s.max_degree = comm.allreduce_max(local_max);
  s.avg_degree =
      s.n == 0 ? 0.0
               : static_cast<double>(g.directed() ? s.m : 2 * s.m) /
                     static_cast<double>(s.n);
  if (diameter_rounds > 0)
    s.approx_diameter = estimate_diameter(comm, g, diameter_rounds);
  return s;
}

}  // namespace xtra::graph
