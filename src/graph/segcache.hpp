// graph::SegmentCache — fixed-size edge segments behind a bounded
// frame pool, the out-of-core path for DistGraph adjacency
// (DESIGN.md §9).
//
// The rank's concatenated adjacency entries ([adj_ | in_adj_], lid_t
// each) are cut into fixed-size segments and moved wholesale into a
// backing store at enable time: either an unlinked spill file mapped
// read-only (MmapBacking, via io::SpillFile) or a window exposed by a
// designated memory rank and fetched with win_get over the reserved
// fetch lane (RemoteBacking, via comm::FetchLane). A bounded pool of
// frames caches resident segments; borrow() hands out RAII
// NeighborRefs that pin their frame until destroyed, and a clock
// sweep over unpinned frames picks eviction victims. Prefetch follows
// a plan of upcoming segment ids the engine supplies from the access
// order it already knows (boundary-first dense sweeps, frontier scan
// order); prefetched bytes are billed to the ledger but not to the
// modeled stall clock, so a plan that lands converts demand stalls
// into overlap — the same trade PR 4's drain steps make for ghost
// refreshes.
//
// All borrow/prefetch bookkeeping is single-threaded by design: the
// remote backing issues substrate calls, and the comm verifier's
// thread guard (rightly) forbids those inside parallel regions, so
// every sweep that touches an out-of-core graph runs serial. The
// engine enforces that via DistGraph::out_of_core().
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "comm/fetch_lane.hpp"
#include "graph/io.hpp"
#include "mpisim/comm.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace xtra::graph {

enum class SegBacking {
  kMmap,    ///< segments in an unlinked local spill file
  kRemote,  ///< segments hosted by a memory rank, pulled via win_get
};

struct SegCacheOptions {
  count_t budget_bytes = 0;         ///< frame-pool budget (>= 1 frame always)
  count_t segment_bytes = 1 << 12;  ///< segment size; rounded to >= 1 entry
  SegBacking backing = SegBacking::kMmap;
  bool prefetch = true;
  int prefetch_depth = 4;  ///< frames to run ahead of the plan cursor
  int host_rank = 0;       ///< memory rank for kRemote
};

/// Deterministic cache ledger; folded into comm::ExchangeStats by the
/// engine so it reaches Stats::to_json / COMM_STATS_JSON.
struct SegCacheStats {
  count_t seg_hits = 0;
  count_t seg_misses = 0;
  count_t seg_evictions = 0;
  count_t seg_prefetch_hits = 0;
  count_t seg_fetch_bytes = 0;
  /// Modeled demand-fetch latency (alpha + bytes/beta per miss, the
  /// substrate's wire constants) — prefetched segments bill zero, so
  /// this is the overlap win, measured deterministically.
  double seg_stall_seconds = 0.0;
};

class SegmentCache {
 public:
  /// RAII view of one vertex's adjacency. Either points into a pinned
  /// frame (released on destruction) or owns a stitched/bounced copy
  /// when the range spans segments or no frame could be pinned.
  class Ref {
   public:
    Ref() = default;
    /// Wrap an in-core span — used by DistGraph when no cache is
    /// active, so call sites are uniform across both paths.
    explicit Ref(std::span<const lid_t> s)
        : data_(s.data()), size_(s.size()) {}
    Ref(Ref&& o) noexcept { move_from(o); }
    Ref& operator=(Ref&& o) noexcept {
      if (this != &o) {
        release();
        move_from(o);
      }
      return *this;
    }
    Ref(const Ref&) = delete;
    Ref& operator=(const Ref&) = delete;
    ~Ref() { release(); }

    const lid_t* data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const lid_t* begin() const { return data_; }
    const lid_t* end() const { return data_ + size_; }
    lid_t operator[](std::size_t i) const {
      XTRA_DEBUG_ASSERT(i < size_);
      return data_[i];
    }
    std::span<const lid_t> span() const { return {data_, size_}; }

   private:
    friend class SegmentCache;
    void release();
    void move_from(Ref& o) {
      data_ = o.data_;
      size_ = o.size_;
      cache_ = o.cache_;
      frame_ = o.frame_;
      owned_ = std::move(o.owned_);
      o.data_ = nullptr;
      o.size_ = 0;
      o.cache_ = nullptr;
      o.frame_ = -1;
    }

    const lid_t* data_ = nullptr;
    std::size_t size_ = 0;
    SegmentCache* cache_ = nullptr;  ///< set iff a frame is pinned
    int frame_ = -1;
    std::vector<lid_t> owned_;  ///< stitched / bounced copy
  };

  /// Collective when opt.backing == kRemote (opens the fetch lane).
  /// Consumes `entries` — they live in the backing afterwards.
  SegmentCache(sim::Comm& comm, std::vector<lid_t>&& entries,
               const SegCacheOptions& opt);
  ~SegmentCache();
  SegmentCache(const SegmentCache&) = delete;
  SegmentCache& operator=(const SegmentCache&) = delete;

  /// Borrow entry range [begin, end) of the concatenated adjacency.
  Ref borrow(count_t begin, count_t end);

  /// Install / restart the prefetch plan: segment ids in expected
  /// access order. The cursor tolerates skips (bounded look-ahead);
  /// off-plan accesses fall back to sequential next-segment prefetch.
  void set_plan(std::vector<count_t> plan);
  void restart_plan() { plan_cursor_ = 0; }

  /// Read the whole entry store back out (unbilled) — used by
  /// DistGraph::disable_out_of_core to return to in-core mode.
  std::vector<lid_t> read_all();

  /// Collective when the backing is remote (closes the fetch lane).
  /// The destructor closes a still-open lane itself, so destruction
  /// without close() is fine wherever ranks destroy symmetrically;
  /// call close() explicitly when the teardown point matters.
  void close(sim::Comm& comm);

  const SegCacheStats& stats() const { return stats_; }
  count_t num_segments() const { return nseg_; }
  count_t num_frames() const { return static_cast<count_t>(frames_.size()); }
  count_t entries_per_segment() const { return seg_entries_; }
  count_t total_entries() const { return total_entries_; }
  SegBacking backing() const { return opt_.backing; }
  bool resident(count_t seg) const {
    return frame_of_[static_cast<std::size_t>(seg)] >= 0;
  }
  int pinned_frames() const;
  /// Segment id holding entry index `e`.
  count_t segment_of(count_t e) const { return e / seg_entries_; }

 private:
  static constexpr count_t kNoSeg = -1;
  static constexpr int kPlanLookahead = 16;

  struct Frame {
    count_t seg = kNoSeg;
    int pins = 0;
    bool refbit = false;
    bool prefetched = false;  ///< fetched ahead, not yet touched
    std::vector<lid_t> data;
  };

  count_t seg_len(count_t seg) const;
  /// Raw backing read of entry range; bills fetch bytes, and the
  /// stall clock iff `demand`.
  void read_raw(count_t entry_begin, count_t n_entries, lid_t* dst,
                bool demand);
  int find_victim(bool for_prefetch);
  /// Pin `seg` into a frame (fetching on miss); -1 if every frame is
  /// pinned — the caller bounces instead of evicting a borrowed frame.
  int acquire(count_t seg);
  void unpin(int frame);
  void maybe_prefetch(count_t just_used);
  bool prefetch_one(count_t seg);

  SegCacheOptions opt_;
  sim::Comm* comm_ = nullptr;  ///< retained for remote fetches
  count_t total_entries_ = 0;
  count_t seg_entries_ = 0;
  count_t nseg_ = 0;
  std::vector<Frame> frames_;
  std::vector<int> frame_of_;  ///< seg -> frame, -1 if absent
  std::size_t clock_hand_ = 0;
  std::vector<count_t> plan_;
  std::size_t plan_cursor_ = 0;
  SegCacheStats stats_;

  std::unique_ptr<SpillFile> spill_;
  comm::FetchLane lane_;
};

/// Uniform adjacency view for both the in-core and out-of-core paths.
using NeighborRef = SegmentCache::Ref;

}  // namespace xtra::graph
