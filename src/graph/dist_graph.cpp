#include "graph/dist_graph.hpp"

#include <algorithm>
#include <utility>

#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"
#include "comm/query_reply.hpp"
#include "util/prefix_sum.hpp"

namespace xtra::graph {

namespace {

/// One directed arc in flight during the build exchange.
struct Arc {
  gid_t src;
  gid_t dst;
};

/// Bucket arcs by owner(src) and exchange them so that every arc lands
/// on the rank owning its source.
std::vector<Arc> exchange_arcs(sim::Comm& comm, comm::Exchanger& ex,
                               const VertexDist& dist,
                               const std::vector<Arc>& arcs) {
  comm::DestBuckets<Arc> buckets;
  buckets.build(
      comm.size(), arcs, [&dist](const Arc& a) { return dist.owner(a.src); },
      [](const Arc& a) { return a; });
  const std::span<const Arc> recv = ex.exchange(comm, buckets);
  return {recv.begin(), recv.end()};
}

/// CSR over owned vertices from arcs whose src is owned here. Ghost
/// discovery happens via `intern`, which maps a gid to a lid (creating
/// ghost lids on first sight).
template <typename InternFn>
void build_csr(const std::vector<Arc>& arcs, lid_t n_local,
               InternFn&& intern, std::vector<count_t>& offsets,
               std::vector<lid_t>& adj) {
  std::vector<count_t> deg(n_local, 0);
  for (const Arc& a : arcs) {
    const lid_t s = intern(a.src);
    XTRA_ASSERT_MSG(s < n_local, "arc delivered to non-owner rank");
    ++deg[s];
  }
  offsets = exclusive_prefix_sum(deg);
  adj.resize(arcs.size());
  std::vector<count_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Arc& a : arcs) {
    const lid_t s = intern(a.src);
    adj[static_cast<std::size_t>(cursor[s]++)] = intern(a.dst);
  }
}

}  // namespace

count_t DistGraph::local_degree_sum() const {
  count_t sum = 0;
  for (lid_t v = 0; v < n_local_; ++v) sum += degree_[v];
  return sum;
}

void DistGraph::enable_out_of_core(sim::Comm& comm,
                                   const SegCacheOptions& opt) {
  XTRA_ASSERT_MSG(!segcache_, "out-of-core mode already enabled");
  in_base_ = static_cast<count_t>(adj_.size());
  std::vector<lid_t> entries = std::move(adj_);
  entries.insert(entries.end(), in_adj_.begin(), in_adj_.end());
  adj_ = std::vector<lid_t>();
  in_adj_ = std::vector<lid_t>();
  segcache_ =
      std::make_unique<SegmentCache>(comm, std::move(entries), opt);
}

void DistGraph::disable_out_of_core(sim::Comm& comm) {
  if (!segcache_) return;
  std::vector<lid_t> entries = segcache_->read_all();
  segcache_->close(comm);
  segcache_.reset();
  adj_.assign(entries.begin(), entries.begin() + in_base_);
  in_adj_.assign(entries.begin() + in_base_, entries.end());
  in_base_ = 0;
}

void DistGraph::append_arc_segments(lid_t l,
                                    std::vector<count_t>& plan) const {
  if (!segcache_) return;
  if (offsets_[l] == offsets_[l + 1]) return;
  const count_t first = segcache_->segment_of(offsets_[l]);
  const count_t last = segcache_->segment_of(offsets_[l + 1] - 1);
  for (count_t s = first; s <= last; ++s)
    if (plan.empty() || plan.back() != s) plan.push_back(s);
}

void DistGraph::append_in_arc_segments(lid_t l,
                                       std::vector<count_t>& plan) const {
  if (!segcache_) return;
  if (!directed_) {
    append_arc_segments(l, plan);
    return;
  }
  if (in_offsets_[l] == in_offsets_[l + 1]) return;
  const count_t first = segcache_->segment_of(in_base_ + in_offsets_[l]);
  const count_t last =
      segcache_->segment_of(in_base_ + in_offsets_[l + 1] - 1);
  for (count_t s = first; s <= last; ++s)
    if (plan.empty() || plan.back() != s) plan.push_back(s);
}

DistGraph build_dist_graph(sim::Comm& comm, const EdgeList& el,
                           const VertexDist& dist) {
  XTRA_ASSERT(dist.nranks() == comm.size());
  const int rank = comm.rank();
  DistGraph g(dist, rank);
  g.directed_ = el.directed;

  // 1. Each rank ingests a contiguous slice of the global edge array,
  //    mimicking a parallel loader; the exchange below moves every arc
  //    to the rank owning its source vertex.
  const std::size_t m_in = el.edges.size();
  const std::size_t p = static_cast<std::size_t>(comm.size());
  const std::size_t lo = m_in * static_cast<std::size_t>(rank) / p;
  const std::size_t hi = m_in * (static_cast<std::size_t>(rank) + 1) / p;

  std::vector<Arc> out_arcs;
  out_arcs.reserve((hi - lo) * (el.directed ? 1 : 2));
  std::vector<Arc> in_arcs;  // directed graphs only
  if (el.directed) in_arcs.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    const Edge& e = el.edges[i];
    if (e.u == e.v) continue;  // self-loops carry no partitioning signal
    XTRA_ASSERT(e.u < el.n && e.v < el.n);
    if (el.directed) {
      out_arcs.push_back({e.u, e.v});
      in_arcs.push_back({e.v, e.u});
    } else {
      out_arcs.push_back({e.u, e.v});
      out_arcs.push_back({e.v, e.u});
    }
  }

  comm::Exchanger ex;  // one wire engine for the whole build
  std::vector<Arc> my_out = exchange_arcs(comm, ex, dist, out_arcs);
  std::vector<Arc> my_in;
  if (el.directed) my_in = exchange_arcs(comm, ex, dist, in_arcs);
  out_arcs.clear();
  out_arcs.shrink_to_fit();
  in_arcs.clear();
  in_arcs.shrink_to_fit();

  // 2. Enumerate owned vertices in gid order -> lids [0, n_local).
  for (gid_t v = 0; v < dist.n_global(); ++v) {
    if (dist.owner(v) == rank) {
      g.gid_to_lid_.insert(v, static_cast<lid_t>(g.lid_to_gid_.size()));
      g.lid_to_gid_.push_back(v);
    }
  }
  g.n_local_ = static_cast<lid_t>(g.lid_to_gid_.size());

  // 3. Build CSRs, interning ghosts on first sight.
  auto intern = [&g](gid_t gid) -> lid_t {
    lid_t l = g.gid_to_lid_.find(gid);
    if (l != kInvalidLid) return l;
    l = static_cast<lid_t>(g.lid_to_gid_.size());
    g.gid_to_lid_.insert(gid, l);
    g.lid_to_gid_.push_back(gid);
    return l;
  };
  build_csr(my_out, g.n_local_, intern, g.offsets_, g.adj_);
  if (el.directed) build_csr(my_in, g.n_local_, intern, g.in_offsets_, g.in_adj_);
  g.n_ghost_ = static_cast<lid_t>(g.lid_to_gid_.size()) - g.n_local_;

  // 4. Global edge/arc count.
  const count_t local_arcs = static_cast<count_t>(g.adj_.size());
  count_t total_arcs = comm.allreduce_sum(local_arcs);
  g.m_global_ = el.directed ? total_arcs : total_arcs / 2;

  // 5. Degrees: owned vertices know theirs locally; ghost degrees are
  //    fetched from their owners (one query + one response exchange).
  //    The vertex-balance phase needs degree(u) for ghost u.
  g.degree_.assign(g.n_total(), 0);
  for (lid_t v = 0; v < g.n_local_; ++v) {
    g.degree_[v] = g.out_degree(v);
    if (el.directed) g.degree_[v] += g.in_offsets_[v + 1] - g.in_offsets_[v];
  }

  // Ghost gids grouped by owner, remembering each query's ghost lid so
  // responses (which come back in identical order) can be scattered.
  comm::DestBuckets<gid_t> queries;
  queries.begin(comm.size());
  for (lid_t v = g.n_local_; v < g.n_total(); ++v)
    queries.count(dist.owner(g.lid_to_gid_[v]));
  queries.commit();
  std::vector<lid_t> query_lid(g.n_ghost_);
  for (lid_t v = g.n_local_; v < g.n_total(); ++v) {
    const count_t slot =
        queries.push(dist.owner(g.lid_to_gid_[v]), g.lid_to_gid_[v]);
    query_lid[static_cast<std::size_t>(slot)] = v;
  }
  const std::span<const count_t> responses = comm::query_reply(
      comm, ex, queries.records(), queries.counts(), [&g](const gid_t q) {
        const lid_t l = g.gid_to_lid_.find(q);
        XTRA_ASSERT_MSG(l != kInvalidLid && l < g.n_local_,
                        "degree query for vertex not owned here");
        return g.degree_[l];
      });
  XTRA_ASSERT(responses.size() == query_lid.size());
  for (std::size_t i = 0; i < responses.size(); ++i)
    g.degree_[query_lid[i]] = responses[i];

  return g;
}

}  // namespace xtra::graph
