#include "graph/io.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/assert.hpp"

namespace xtra::graph {

SpillFile::SpillFile() {
  const char* dir = std::getenv("TMPDIR");
  std::string tmpl = std::string(dir && *dir ? dir : "/tmp") +
                     "/xtra_spill_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  fd_ = ::mkstemp(buf.data());
  if (fd_ < 0) throw std::runtime_error("SpillFile: mkstemp failed");
  ::unlink(buf.data());
}

SpillFile::~SpillFile() {
  if (map_ != nullptr) ::munmap(const_cast<unsigned char*>(map_), size_);
  if (fd_ >= 0) ::close(fd_);
}

void SpillFile::append(const void* src, std::size_t len) {
  XTRA_ASSERT_MSG(map_ == nullptr, "SpillFile: append after finalize");
  const char* p = static_cast<const char*>(src);
  while (len > 0) {
    const ::ssize_t w = ::write(fd_, p, len);
    if (w < 0) throw std::runtime_error("SpillFile: write failed");
    p += w;
    len -= static_cast<std::size_t>(w);
    size_ += static_cast<std::size_t>(w);
  }
}

void SpillFile::finalize() {
  XTRA_ASSERT_MSG(map_ == nullptr, "SpillFile: double finalize");
  if (size_ == 0) return;  // nothing to map; read() of len 0 stays legal
  void* m = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd_, 0);
  if (m == MAP_FAILED) throw std::runtime_error("SpillFile: mmap failed");
  map_ = static_cast<const unsigned char*>(m);
}

void SpillFile::read(std::size_t offset, std::size_t len, void* dst) const {
  if (len == 0) return;
  XTRA_ASSERT_MSG(map_ != nullptr, "SpillFile: read before finalize");
  XTRA_ASSERT(offset + len <= size_);
  std::memcpy(dst, map_ + offset, len);
}

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open " + path);
  return f;
}

constexpr char kBinaryMagic[8] = {'X', 'T', 'R', 'A', 'E', 'L', '0', '1'};

}  // namespace

void write_edge_list_text(const std::string& path, const EdgeList& el) {
  FilePtr f = open_or_throw(path, "w");
  std::fprintf(f.get(), "n %llu %s\n",
               static_cast<unsigned long long>(el.n),
               el.directed ? "directed" : "undirected");
  for (const Edge& e : el.edges)
    std::fprintf(f.get(), "%llu %llu\n",
                 static_cast<unsigned long long>(e.u),
                 static_cast<unsigned long long>(e.v));
  if (std::ferror(f.get())) throw std::runtime_error("write failed: " + path);
}

EdgeList read_edge_list_text(const std::string& path) {
  FilePtr f = open_or_throw(path, "r");
  EdgeList el;
  unsigned long long n = 0;
  char kind[32] = {0};
  if (std::fscanf(f.get(), "n %llu %31s", &n, kind) != 2)
    throw std::runtime_error("bad edge-list header in " + path);
  el.n = n;
  if (!std::strcmp(kind, "directed")) {
    el.directed = true;
  } else if (!std::strcmp(kind, "undirected")) {
    el.directed = false;
  } else {
    throw std::runtime_error("bad directedness token in " + path);
  }
  unsigned long long u = 0, v = 0;
  while (std::fscanf(f.get(), "%llu %llu", &u, &v) == 2) {
    if (u >= el.n || v >= el.n)
      throw std::runtime_error("vertex id out of range in " + path);
    el.edges.push_back({u, v});
  }
  return el;
}

void write_edge_list_binary(const std::string& path, const EdgeList& el) {
  FilePtr f = open_or_throw(path, "wb");
  std::fwrite(kBinaryMagic, 1, sizeof(kBinaryMagic), f.get());
  const std::uint64_t header[3] = {el.n, el.directed ? 1ull : 0ull,
                                   el.edges.size()};
  std::fwrite(header, sizeof(std::uint64_t), 3, f.get());
  static_assert(sizeof(Edge) == 2 * sizeof(std::uint64_t));
  if (!el.edges.empty())
    std::fwrite(el.edges.data(), sizeof(Edge), el.edges.size(), f.get());
  if (std::ferror(f.get())) throw std::runtime_error("write failed: " + path);
}

EdgeList read_edge_list_binary(const std::string& path) {
  FilePtr f = open_or_throw(path, "rb");
  char magic[sizeof(kBinaryMagic)] = {0};
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0)
    throw std::runtime_error("bad binary edge-list magic in " + path);
  std::uint64_t header[3] = {0, 0, 0};
  if (std::fread(header, sizeof(std::uint64_t), 3, f.get()) != 3)
    throw std::runtime_error("truncated binary edge list " + path);
  EdgeList el;
  el.n = header[0];
  el.directed = header[1] != 0;
  el.edges.resize(header[2]);
  if (!el.edges.empty() &&
      std::fread(el.edges.data(), sizeof(Edge), el.edges.size(), f.get()) !=
          el.edges.size())
    throw std::runtime_error("truncated binary edge list " + path);
  for (const Edge& e : el.edges)
    if (e.u >= el.n || e.v >= el.n)
      throw std::runtime_error("vertex id out of range in " + path);
  return el;
}

}  // namespace xtra::graph
