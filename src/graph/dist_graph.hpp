// Distributed one-dimensional CSR graph with ghost vertices
// (paper §III-A "Graph Representation").
//
// Each rank owns a subset of vertices (per a VertexDist) and stores:
//   * a CSR over its owned vertices whose adjacency entries are local
//     ids — owned vertices occupy lids [0, n_local), ghosts (one-hop
//     neighbors owned elsewhere) occupy [n_local, n_local + n_ghost);
//   * lid -> gid translation in a flat array and gid -> lid in an
//     open-addressing hash map, exactly as the paper describes;
//   * the *global* degree of every owned and ghost vertex (ghost
//     degrees are fetched from their owners at build time; the vertex
//     balance phase weights neighbor counts by degree(u), so ghosts'
//     degrees must be known locally).
//
// For directed graphs an additional in-edge CSR is kept; the ghost set
// covers both directions. Undirected graphs are stored symmetrically
// (each edge appears in both endpoints' adjacency).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "graph/dist.hpp"
#include "graph/edge_list.hpp"
#include "graph/segcache.hpp"
#include "mpisim/comm.hpp"
#include "util/flat_map.hpp"
#include "util/types.hpp"

namespace xtra::graph {

class DistGraph {
 public:
  /// --- Global shape ---
  gid_t n_global() const { return dist_.n_global(); }
  /// Number of undirected edges (or arcs when directed()).
  count_t m_global() const { return m_global_; }
  bool directed() const { return directed_; }
  const VertexDist& dist() const { return dist_; }
  int rank() const { return rank_; }
  int nranks() const { return dist_.nranks(); }

  /// --- Local shape ---
  lid_t n_local() const { return n_local_; }
  lid_t n_ghost() const { return n_ghost_; }
  lid_t n_total() const { return n_local_ + n_ghost_; }
  /// Number of local adjacency entries (out-edges of owned vertices).
  count_t m_local() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  bool is_owned(lid_t l) const { return l < n_local_; }
  gid_t gid_of(lid_t l) const { return lid_to_gid_[l]; }
  /// Local id of a gid present on this rank, kInvalidLid otherwise.
  lid_t lid_of(gid_t g) const { return gid_to_lid_.find(g); }
  int owner_of_gid(gid_t g) const { return dist_.owner(g); }
  int owner_of(lid_t l) const {
    return l < n_local_ ? rank_ : dist_.owner(lid_to_gid_[l]);
  }

  /// Global degree of a local-or-ghost vertex.
  count_t degree(lid_t l) const { return degree_[l]; }
  /// Local out-degree of an owned vertex (== degree for undirected).
  count_t out_degree(lid_t l) const { return offsets_[l + 1] - offsets_[l]; }

  /// Out-neighborhood of an owned vertex, as local ids. In-core path
  /// only — out-of-core callers must go through arcs().
  std::span<const lid_t> neighbors(lid_t l) const {
    XTRA_DEBUG_ASSERT(l < n_local_);
    XTRA_DEBUG_ASSERT(!segcache_);
    return {adj_.data() + offsets_[l],
            static_cast<std::size_t>(offsets_[l + 1] - offsets_[l])};
  }

  /// In-neighborhood (directed graphs only; == neighbors otherwise).
  std::span<const lid_t> in_neighbors(lid_t l) const {
    XTRA_DEBUG_ASSERT(l < n_local_);
    XTRA_DEBUG_ASSERT(!segcache_);
    if (!directed_) return neighbors(l);
    return {in_adj_.data() + in_offsets_[l],
            static_cast<std::size_t>(in_offsets_[l + 1] - in_offsets_[l])};
  }

  /// Out-neighborhood through the uniform borrow API: a zero-copy
  /// span wrapper in-core, a pinned/stitched SegmentCache::Ref when
  /// out-of-core. Valid for range-for (`for (lid_t u : g.arcs(v))`).
  NeighborRef arcs(lid_t l) const {
    XTRA_DEBUG_ASSERT(l < n_local_);
    if (!segcache_)
      return NeighborRef(std::span<const lid_t>(
          adj_.data() + offsets_[l],
          static_cast<std::size_t>(offsets_[l + 1] - offsets_[l])));
    return segcache_->borrow(offsets_[l], offsets_[l + 1]);
  }

  /// In-neighborhood through the borrow API (== arcs undirected).
  NeighborRef in_arcs(lid_t l) const {
    XTRA_DEBUG_ASSERT(l < n_local_);
    if (!directed_) return arcs(l);
    if (!segcache_)
      return NeighborRef(std::span<const lid_t>(
          in_adj_.data() + in_offsets_[l],
          static_cast<std::size_t>(in_offsets_[l + 1] - in_offsets_[l])));
    return segcache_->borrow(in_base_ + in_offsets_[l],
                             in_base_ + in_offsets_[l + 1]);
  }

  count_t in_degree(lid_t l) const {
    if (!directed_) return out_degree(l);
    return in_offsets_[l + 1] - in_offsets_[l];
  }

  /// All gids this rank stores, owned first then ghosts.
  const std::vector<gid_t>& lid_to_gid() const { return lid_to_gid_; }

  /// Sum over owned vertices of degree (== 2*m_global for undirected
  /// graphs once allreduced).
  count_t local_degree_sum() const;

  /// --- Out-of-core mode (DESIGN.md §9) ---
  /// Move the adjacency arrays into a bounded SegmentCache. Collective
  /// when opt.backing == kRemote (opens the reserved fetch-lane
  /// window). While active, neighbors()/in_neighbors() are forbidden
  /// and every sweep must run serial (the engine keys off
  /// out_of_core()).
  void enable_out_of_core(sim::Comm& comm, const SegCacheOptions& opt);
  /// Restore the in-core arrays; collective for kRemote.
  void disable_out_of_core(sim::Comm& comm);
  bool out_of_core() const { return segcache_ != nullptr; }
  /// Cache ledger so far; all-zero when in-core.
  SegCacheStats segcache_stats() const {
    return segcache_ ? segcache_->stats() : SegCacheStats{};
  }
  const SegmentCache* segcache() const { return segcache_.get(); }

  /// Append vertex l's out-adjacency segment ids to `plan` (dedup vs
  /// the last entry); no-op in-core. Engine drivers build prefetch
  /// plans from the sweep order with these.
  void append_arc_segments(lid_t l, std::vector<count_t>& plan) const;
  void append_in_arc_segments(lid_t l, std::vector<count_t>& plan) const;
  void set_prefetch_plan(std::vector<count_t> plan) const {
    if (segcache_) segcache_->set_plan(std::move(plan));
  }
  void restart_prefetch_plan() const {
    if (segcache_) segcache_->restart_plan();
  }

 private:
  friend DistGraph build_dist_graph(sim::Comm&, const EdgeList&,
                                    const VertexDist&);
  DistGraph(const VertexDist& dist, int rank)
      : dist_(dist), rank_(rank) {}

  VertexDist dist_;
  int rank_;
  bool directed_ = false;
  count_t m_global_ = 0;

  lid_t n_local_ = 0;
  lid_t n_ghost_ = 0;
  std::vector<gid_t> lid_to_gid_;
  GidToLidMap gid_to_lid_;

  std::vector<count_t> offsets_;  // n_local + 1
  std::vector<lid_t> adj_;
  std::vector<count_t> in_offsets_;  // directed only
  std::vector<lid_t> in_adj_;

  std::vector<count_t> degree_;  // n_local + n_ghost, global degrees

  // Out-of-core state: when segcache_ is set, adj_/in_adj_ are empty
  // and live in the cache's backing as the concatenation
  // [adj_ | in_adj_]; in_base_ is the in-region's entry offset.
  // Mutable so the const engine/analytics surface can borrow and
  // steer prefetch; logically the graph is still read-only.
  mutable std::unique_ptr<SegmentCache> segcache_;
  count_t in_base_ = 0;
};

/// Build the distributed graph collectively. Every rank passes the same
/// EdgeList (each rank ingests its slice of the edge array; ownership
/// of endpoints then drives an all-to-all edge exchange, as a parallel
/// loader would). Self-loops are dropped; duplicate edges are kept.
DistGraph build_dist_graph(sim::Comm& comm, const EdgeList& el,
                           const VertexDist& dist);

}  // namespace xtra::graph
