// Edge-list file I/O (text and binary).
//
// Text format:  first line "n <num_vertices> directed|undirected",
// then one "u v" pair per line. Binary format: a fixed header followed
// by packed uint64 pairs — the loader a downstream user would feed
// SNAP/KONECT-converted data through.
#pragma once

#include <cstddef>
#include <string>

#include "graph/edge_list.hpp"

namespace xtra::graph {

/// Anonymous spill store for the out-of-core segment cache's mmap
/// backing: an unlinked temp file written once (append + finalize),
/// then mapped read-only so read() is a plain memcpy from the map.
/// Unlinking at creation means the kernel reclaims the bytes when the
/// fd closes — no cleanup path, no leftover files after a crash.
class SpillFile {
 public:
  SpillFile();
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Append `len` bytes; only valid before finalize().
  void append(const void* src, std::size_t len);

  /// Stop writing and map the file read-only.
  void finalize();

  /// Copy [offset, offset+len) into dst; only valid after finalize().
  void read(std::size_t offset, std::size_t len, void* dst) const;

  std::size_t size() const { return size_; }
  bool finalized() const { return map_ != nullptr || size_ == 0; }

 private:
  int fd_ = -1;
  std::size_t size_ = 0;
  const unsigned char* map_ = nullptr;
};

/// Write `el` as text; throws std::runtime_error on I/O failure.
void write_edge_list_text(const std::string& path, const EdgeList& el);

/// Read a text edge list; throws std::runtime_error on parse failure.
EdgeList read_edge_list_text(const std::string& path);

/// Write `el` in the packed binary format.
void write_edge_list_binary(const std::string& path, const EdgeList& el);

/// Read a packed binary edge list.
EdgeList read_edge_list_binary(const std::string& path);

}  // namespace xtra::graph
