// Edge-list file I/O (text and binary).
//
// Text format:  first line "n <num_vertices> directed|undirected",
// then one "u v" pair per line. Binary format: a fixed header followed
// by packed uint64 pairs — the loader a downstream user would feed
// SNAP/KONECT-converted data through.
#pragma once

#include <string>

#include "graph/edge_list.hpp"

namespace xtra::graph {

/// Write `el` as text; throws std::runtime_error on I/O failure.
void write_edge_list_text(const std::string& path, const EdgeList& el);

/// Read a text edge list; throws std::runtime_error on parse failure.
EdgeList read_edge_list_text(const std::string& path);

/// Write `el` in the packed binary format.
void write_edge_list_binary(const std::string& path, const EdgeList& el);

/// Read a packed binary edge list.
EdgeList read_edge_list_binary(const std::string& path);

}  // namespace xtra::graph
