// Global edge-list representation produced by generators and file I/O.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace xtra::graph {

/// One edge (or directed arc when EdgeList::directed).
struct Edge {
  gid_t u;
  gid_t v;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// A whole graph as a flat edge list. Undirected edges are stored once
/// (either orientation); the distributed build symmetrizes them.
struct EdgeList {
  gid_t n = 0;             ///< number of vertices (ids in [0, n))
  bool directed = false;   ///< arcs vs. undirected edges
  std::vector<Edge> edges;

  count_t edge_count() const { return static_cast<count_t>(edges.size()); }
};

/// Remove self loops and duplicate edges (treating {u,v} == {v,u} for
/// undirected lists). Sorts the edge vector as a side effect.
void canonicalize(EdgeList& el);

/// Return the undirected version of a directed edge list (dedups).
EdgeList symmetrized(const EdgeList& el);

}  // namespace xtra::graph
