#include "graph/edge_list.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace xtra::graph {

void canonicalize(EdgeList& el) {
  auto& e = el.edges;
  if (!el.directed) {
    for (Edge& x : e)
      if (x.u > x.v) std::swap(x.u, x.v);
  }
  std::erase_if(e, [](const Edge& x) { return x.u == x.v; });
  std::sort(e.begin(), e.end());
  e.erase(std::unique(e.begin(), e.end()), e.end());
}

EdgeList symmetrized(const EdgeList& el) {
  EdgeList out;
  out.n = el.n;
  out.directed = false;
  out.edges.reserve(el.edges.size());
  for (const Edge& x : el.edges) {
    if (x.u == x.v) continue;
    out.edges.push_back({std::min(x.u, x.v), std::max(x.u, x.v)});
  }
  std::sort(out.edges.begin(), out.edges.end());
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end()),
                  out.edges.end());
  return out;
}

}  // namespace xtra::graph
