// Global graph statistics for Table I (n, m, davg, dmax, diameter).
#pragma once

#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"

namespace xtra::graph {

struct GraphStats {
  gid_t n = 0;
  count_t m = 0;
  double avg_degree = 0.0;
  count_t max_degree = 0;
  count_t approx_diameter = 0;
};

/// Collective computation of the Table I statistics. Diameter uses
/// `diameter_rounds` iterated BFS sweeps (0 skips the estimate).
GraphStats compute_stats(sim::Comm& comm, const DistGraph& g,
                         int diameter_rounds = 10);

}  // namespace xtra::graph
