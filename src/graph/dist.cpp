#include "graph/dist.hpp"

// Header-only; this TU anchors the library target.
