// Reusable ghost-value exchange plan.
//
// The partitioner's ExchangeUpdates sends sparse per-vertex updates;
// the analytics and SpMV kernels instead refresh *every* ghost value
// each superstep (PageRank, WCC, k-core...). Building the
// sender/receiver lists once and replaying them each iteration is the
// standard halo pattern; the plan is the moral equivalent of an
// Epetra Import object.
//
// The plan owns its wire machinery: a ring of prefetch *lanes*, each a
// persistent staging buffer plus a comm::Exchanger (optionally
// memory-bounded via set_max_send_bytes, routed flat or hierarchically,
// pushed two-sided or pulled from one-sided windows per the Backend
// knob). One lane is enough for the blocking and single-overlap paths;
// set_pipeline_lanes() grows the ring so several refreshes can ride
// the substrate's tagged channels (or exposure windows) at once.
//
// Ways to refresh:
//  * exchange(comm, vals) — blocking, gather + wire + scatter.
//  * prefetch_next(comm, vals) / finish_prefetch(comm, vals) — the
//    overlapped pipeline. prefetch_next gathers the boundary values
//    (the only ones any peer sees) and starts the wire transfer on the
//    next free lane; the caller then runs local compute — typically
//    the interior vertices, which no peer reads — and finish_prefetch
//    scatters the *oldest* in-flight lane's arrivals into the ghost
//    entries (lanes complete in FIFO order). boundary_lids() /
//    is_boundary() give the compute-first set: update those, prefetch,
//    update the rest, finish. vals may be freely mutated between the
//    two calls (the lane's staging holds the gathered copy); only the
//    ghost entries are overwritten by finish_prefetch.
//    overlapped_superstep() packages the whole pipeline for the
//    common per-vertex-update kernels.
//  * SuperstepPipeline (below) goes further for kernels that tolerate
//    stale ghosts: it keeps up to depth refreshes in flight *across*
//    superstep boundaries and drains the oldest incrementally
//    (drain_prefetch_one) between the next superstep's compute chunks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "comm/backend.hpp"
#include "comm/exchanger.hpp"
#include "comm/scratch.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace xtra::graph {

class HaloPlan {
 public:
  /// Collective: ghosts register with their owners once. `policy`
  /// selects flat or hierarchical routing and `backend` push (matched
  /// alltoallv) or pull (one-sided windows) transport for the
  /// registration and every subsequent exchange (bit-identical results
  /// any way).
  HaloPlan(sim::Comm& comm, const DistGraph& g,
           comm::ShardPolicy policy = comm::ShardPolicy::kFlat,
           comm::Backend backend = comm::Backend::kTwoSided);

  /// Collective: copy vals[owned] into every ghost copy; vals must
  /// have size g.n_total() and element type T trivially copyable.
  template <typename T>
  void exchange(sim::Comm& comm, std::vector<T>& vals) {
    XTRA_ASSERT_MSG(inflight_ == 0,
                    "blocking exchange while prefetches are in flight");
    Lane& ln = *lanes_.front();
    const std::span<const T> recv =
        ln.ex.exchange(comm, gather(vals, ln.scratch), send_counts_);
    scatter(recv, vals);
  }

  /// Collective: kick off the next ghost refresh — gather the boundary
  /// values and start the wire transfer on the next free lane — then
  /// return so local compute can overlap the in-flight exchange. Any
  /// blocking collectives may run before finish_prefetch; starting
  /// more refreshes than there are lanes may not (grow the ring with
  /// set_pipeline_lanes first).
  template <typename T>
  void prefetch_next(sim::Comm& comm, const std::vector<T>& vals) {
    Lane& ln = *lanes_[head_];
    XTRA_ASSERT_MSG(!ln.ex.in_flight(),
                    "every prefetch lane is already in flight");
    // The lane's own staging holds the gathered copy and is not
    // touched again until its next gather (after the finish), so the
    // exchange can slice it in place — no second payload copy.
    ln.ex.start_inplace(comm, gather(vals, ln.scratch), send_counts_);
    head_ = (head_ + 1) % lanes_.size();
    ++inflight_;
  }

  /// Collective: drain the *oldest* in-flight prefetch and scatter its
  /// arrivals into vals' ghost entries (lanes finish in start order).
  template <typename T>
  void finish_prefetch(sim::Comm& comm, std::vector<T>& vals) {
    XTRA_ASSERT_MSG(inflight_ > 0, "finish_prefetch with nothing in flight");
    Lane& ln = *lanes_[tail_];
    scatter(ln.ex.finish<T>(comm), vals);
    tail_ = (tail_ + 1) % lanes_.size();
    --inflight_;
  }

  /// Collective: drain at most one phase of the oldest in-flight
  /// prefetch, scattering that phase's ghost arrivals into vals as
  /// they land (the incremental twin of finish_prefetch — the call
  /// that returns false leaves vals exactly as one finish_prefetch
  /// would, and the next call moves on to the next-oldest lane).
  /// Every rank must make the same number of calls;
  /// prefetch_phases_left() is rank-uniform and says how many complete
  /// the oldest lane's drain.
  template <typename T>
  bool drain_prefetch_one(sim::Comm& comm, std::vector<T>& vals) {
    if (inflight_ == 0) return false;
    Lane& ln = *lanes_[tail_];
    const bool more = ln.ex.drain_one<T>(
        comm, [&](int /*source*/, count_t dst_offset,
                  std::span<const T> recs) {
          for (std::size_t j = 0; j < recs.size(); ++j)
            vals[recv_lids_[static_cast<std::size_t>(dst_offset) + j]] =
                recs[j];
        });
    if (!more) {
      tail_ = (tail_ + 1) % lanes_.size();
      --inflight_;
    }
    return more;
  }

  /// Collective: drain every lane still in flight (no-op when idle).
  template <typename T>
  void flush_prefetch(sim::Comm& comm, std::vector<T>& vals) {
    while (inflight_ > 0) drain_prefetch_one(comm, vals);
  }

  /// Rank-uniform count of drain_prefetch_one calls left to complete
  /// the *oldest* in-flight prefetch (0 when idle).
  count_t prefetch_phases_left() const {
    return inflight_ > 0 ? lanes_[tail_]->ex.phases_remaining() : 0;
  }

  /// Pipeline ledger passthrough (see Exchanger::note_pipeline_carry).
  /// Booked on lane 0 — stats() aggregates across lanes anyway.
  void note_pipeline_carry(count_t depth) {
    lanes_.front()->ex.note_pipeline_carry(depth);
  }

  /// Collective: one overlapped superstep — update(v) over the
  /// boundary, ship those values, mid() against the in-flight wire
  /// (the slot for an overlapped collective), update(v) over the
  /// interior, scatter the arriving ghosts. The invariant (boundary
  /// before prefetch, interior before finish) lives here so kernels —
  /// and SuperstepPipeline's depth-0 path — don't open-code it.
  ///
  /// `parallel` runs both sweeps as chunked par::for_chunks regions on
  /// the rank's thread pool. The caller guarantees update(v) is safe
  /// for concurrent distinct v (writes only v's own slots — the
  /// engine's kParallelUpdate trait); the wire calls stay on the rank
  /// thread, so pool workers never touch collectives.
  template <typename T, typename Fn, typename Mid>
  void overlapped_superstep(sim::Comm& comm, std::vector<T>& vals,
                            Fn&& update, Mid&& mid, bool parallel = false) {
    if (parallel) {
      par::for_chunks(static_cast<count_t>(boundary_lids_.size()),
                      [&](count_t, count_t lo, count_t hi) {
                        for (count_t i = lo; i < hi; ++i)
                          update(boundary_lids_[static_cast<std::size_t>(i)]);
                      });
      prefetch_next(comm, vals);
      mid();
      par::for_chunks(static_cast<count_t>(boundary_mask_.size()),
                      [&](count_t, count_t lo, count_t hi) {
                        for (count_t i = lo; i < hi; ++i) {
                          const lid_t v = static_cast<lid_t>(i);
                          if (!is_boundary(v)) update(v);
                        }
                      });
      finish_prefetch(comm, vals);
      return;
    }
    for (const lid_t v : boundary_lids_) update(v);
    prefetch_next(comm, vals);
    mid();
    const auto n = static_cast<lid_t>(boundary_mask_.size());
    for (lid_t v = 0; v < n; ++v)
      if (!is_boundary(v)) update(v);  // overlaps the in-flight wire
    finish_prefetch(comm, vals);
  }

  template <typename T, typename Fn>
  void overlapped_superstep(sim::Comm& comm, std::vector<T>& vals,
                            Fn&& update) {
    overlapped_superstep(comm, vals, std::forward<Fn>(update), [] {});
  }

  bool prefetch_in_flight() const { return inflight_ > 0; }
  /// How many refreshes are on the wire right now (≤ pipeline_lanes()).
  int prefetches_in_flight() const { return inflight_; }

  /// Grow the prefetch ring so up to `lanes` refreshes can be in
  /// flight at once. Never shrinks (lanes carry stats); every rank
  /// must request the same size — lane scheduling is rank-uniform.
  void set_pipeline_lanes(int lanes) {
    XTRA_ASSERT_MSG(inflight_ == 0,
                    "cannot grow the lane ring while prefetches are in flight");
    while (static_cast<int>(lanes_.size()) < std::max(lanes, 1)) add_lane();
  }
  int pipeline_lanes() const { return static_cast<int>(lanes_.size()); }

  count_t ghost_count() const { return static_cast<count_t>(recv_lids_.size()); }

  /// Owned lids some peer holds as a ghost (deduped, ascending): the
  /// values prefetch_next ships. Compute these before prefetching and
  /// the interior — every owned lid with is_boundary() false — while
  /// the wire drains.
  const std::vector<lid_t>& boundary_lids() const { return boundary_lids_; }
  bool is_boundary(lid_t owned) const {
    return boundary_mask_[static_cast<std::size_t>(owned)] != 0;
  }
  /// Owned vertices on this rank (the domain of is_boundary()).
  lid_t n_local() const { return static_cast<lid_t>(boundary_mask_.size()); }

  /// The plan's send layout, grouped by destination rank: one slot per
  /// (destination, owned lid) pair, send_counts()[r] slots for rank r.
  /// This is the routing table sparse per-vertex update paths (e.g.
  /// commLP's coalesced label updates) reuse instead of rebuilding the
  /// ghost registration.
  const std::vector<count_t>& send_counts() const { return send_counts_; }
  const std::vector<lid_t>& send_lids() const { return send_lids_; }

  /// Cap the per-phase send payload of subsequent exchanges (0 =
  /// unbounded). Same value required on every rank; applies to every
  /// lane, current and future.
  void set_max_send_bytes(count_t bytes) {
    max_send_bytes_ = bytes;
    for (auto& ln : lanes_) ln->ex.set_max_send_bytes(bytes);
  }
  /// Route subsequent exchanges flat or hierarchically (same value on
  /// every rank; results are bit-identical either way).
  void set_shard_policy(comm::ShardPolicy policy) {
    policy_ = policy;
    for (auto& ln : lanes_) ln->ex.set_shard_policy(policy);
  }
  /// Push (two-sided) or pull (one-sided windows) transport for
  /// subsequent exchanges — same value on every rank, bit-identical
  /// results either way.
  void set_backend(comm::Backend backend) {
    backend_ = backend;
    for (auto& ln : lanes_) ln->ex.set_backend(backend);
  }
  comm::Backend backend() const { return backend_; }

  /// Aggregate ledger over every lane (by value — lanes are folded).
  comm::ExchangeStats stats() const {
    comm::ExchangeStats agg = lanes_.front()->ex.stats();
    for (std::size_t i = 1; i < lanes_.size(); ++i)
      agg.merge_from(lanes_[i]->ex.stats());
    return agg;
  }
  /// Drop accumulated stats (e.g. the constructor's registration
  /// exchange) so benches can meter only the replayed exchanges.
  void reset_stats() {
    for (auto& ln : lanes_) ln->ex.reset_stats();
  }

 private:
  /// One slot of the prefetch ring: an exchange engine plus the
  /// staging its in-flight payload aliases (start_inplace), which must
  /// survive for the whole flight — hence per-lane, not shared.
  struct Lane {
    comm::ScratchBuffer scratch;
    comm::Exchanger ex;
    Lane(count_t max_send_bytes, comm::ShardPolicy policy,
         comm::Backend backend)
        : ex(max_send_bytes, policy, backend) {}
  };

  void add_lane() {
    lanes_.push_back(
        std::make_unique<Lane>(max_send_bytes_, policy_, backend_));
    lanes_.back()->ex.set_label("graph::HaloPlan lane");
  }

  template <typename T>
  const T* gather(const std::vector<T>& vals, comm::ScratchBuffer& scratch) {
    T* send = scratch.as<T>(send_lids_.size());
    for (std::size_t i = 0; i < send_lids_.size(); ++i)
      send[i] = vals[send_lids_[i]];
    return send;
  }

  template <typename T>
  void scatter(std::span<const T> recv, std::vector<T>& vals) {
    XTRA_ASSERT(recv.size() == recv_lids_.size());
    for (std::size_t i = 0; i < recv_lids_.size(); ++i)
      vals[recv_lids_[i]] = recv[i];
  }

  std::vector<count_t> send_counts_;  ///< per destination rank
  std::vector<lid_t> send_lids_;      ///< owned lids, grouped by dest
  std::vector<lid_t> recv_lids_;      ///< ghost lids in arrival order
  std::vector<lid_t> boundary_lids_;  ///< send_lids_, deduped ascending
  std::vector<std::uint8_t> boundary_mask_;  ///< per owned lid

  // Wire configuration, mirrored here so lanes added later inherit it.
  count_t max_send_bytes_ = 0;
  comm::ShardPolicy policy_ = comm::ShardPolicy::kFlat;
  comm::Backend backend_ = comm::Backend::kTwoSided;

  // FIFO ring of prefetch lanes: prefetch_next starts head_, drains
  // complete at tail_ in start order. unique_ptr keeps lanes pinned
  // across ring growth (an in-flight Exchanger may never move).
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  int inflight_ = 0;
};

/// Ceiling on SuperstepPipeline depth. With the one-sided backend each
/// in-flight lane holds an exposure window for its whole flight, and a
/// drain transiently needs one more for the hierarchical rounds — so
/// depth is capped at sim::kMaxWindows - 1; the two-sided backend's
/// channel budget (sim::kMaxChannels) is looser.
inline constexpr int kMaxPipelineDepth = 3;

/// Cross-superstep pipelined ghost-refresh driver.
///
/// overlapped_superstep() stops overlapping at the superstep boundary:
/// the refresh shipped at superstep k is drained before k returns, so
/// superstep k+1 always reads fresh ghosts. For kernels whose
/// convergence test tolerates stale ghosts (PageRank's residual,
/// k-core's monotone level sets, commLP's majority vote), that final
/// drain is pure wait. A SuperstepPipeline with depth d >= 1 instead
/// keeps up to d refreshes in flight across superstep boundaries on
/// the HaloPlan's lane ring: superstep k ships its boundary values and
/// returns; only once d lanes are occupied does a superstep first
/// drain the *oldest* refresh — *incrementally*, one phase per
/// interior compute chunk, arrivals scattered into vals' ghost entries
/// as they land — before shipping its own.
///
/// Staleness contract: at depth d >= 1, a produce(v) call may read
/// ghost entries up to d supersteps old (and mid-superstep a mix of
/// ages, as drained phases land); owned entries are always current.
/// Only kernels whose update is tolerant of that lag may run at
/// depth >= 1. Depth requests clamp to [0, kMaxPipelineDepth] (the
/// ledger records the carry actually observed, not the request).
/// flush() drains everything still in flight, after which ghosts equal
/// the owners' last-shipped values.
///
/// Depth 0 is exactly overlapped_superstep() plus a mid() hook and is
/// bit-identical to the blocking exchange for any kernel (asserted in
/// tests/test_pipeline.cpp).
template <typename T>
class SuperstepPipeline {
 public:
  SuperstepPipeline(HaloPlan& halo, int depth)
      : halo_(halo), depth_(std::clamp(depth, 0, kMaxPipelineDepth)) {
    if (depth_ >= 1) halo_.set_pipeline_lanes(depth_);
  }

  /// Effective depth (requests clamp to [0, kMaxPipelineDepth]).
  int depth() const { return depth_; }
  bool in_flight() const { return halo_.prefetch_in_flight(); }

  /// Collective: one pipelined superstep. produce(v) computes vals[v]
  /// (or a derived update) for every owned v, boundary first; mid()
  /// runs while this superstep's refresh is on the wire (the slot for
  /// an overlapped allreduce). At depth 0 the refresh is drained
  /// before returning; at depth >= 1 it stays in flight and — once the
  /// ring holds depth() refreshes — the *oldest* one is drained
  /// incrementally between interior compute chunks.
  ///
  /// `parallel` runs the produce sweeps on the rank's thread pool
  /// (caller guarantees produce(v) is concurrency-safe for distinct
  /// v). At depth >= 1 the interior is then grouped by *lid range*
  /// instead of by interior count — the group boundaries must not
  /// depend on who computes what, and a lid-range split keeps each
  /// drain between two fixed chunked regions. Both groupings drain the
  /// same phases before the superstep returns, so end-of-superstep
  /// state is identical; only the mid-superstep arrival interleaving
  /// differs, which a parallel-safe produce (one that never reads
  /// ghost entries mid-sweep, or tolerates any staleness mix) cannot
  /// observe. The drain itself stays on the rank thread.
  template <typename Produce, typename Mid>
  void superstep(sim::Comm& comm, std::vector<T>& vals, Produce&& produce,
                 Mid&& mid, bool parallel = false) {
    const lid_t n_local = halo_.n_local();
    if (depth_ == 0) {
      halo_.overlapped_superstep(comm, vals, std::forward<Produce>(produce),
                                 std::forward<Mid>(mid), parallel);
      return;
    }

    // Depth >= 1. Boundary first (its ghost reads honor the staleness
    // contract); then, when the ring is full, interleave the interior
    // with the incremental drain of the oldest carried refresh. The
    // ring-full test and the drain-call count are both rank-uniform,
    // so every rank interleaves the same collectives.
    ++step_;
    if (parallel) {
      const auto& blids = halo_.boundary_lids();
      par::for_chunks(static_cast<count_t>(blids.size()),
                      [&](count_t, count_t lo, count_t hi) {
                        for (count_t i = lo; i < hi; ++i)
                          produce(blids[static_cast<std::size_t>(i)]);
                      });
      const bool full = halo_.prefetches_in_flight() >= depth_;
      const count_t steps = full ? halo_.prefetch_phases_left() : 0;
      if (steps > 0) halo_.note_pipeline_carry(step_ - started_.front());
      const count_t n = static_cast<count_t>(n_local);
      for (count_t s = 0; s <= steps; ++s) {
        // Group s of steps+1 even lid slices; slice bounds are local
        // but the drain-call count (`steps`) is globally agreed.
        const count_t glo = (s * n) / (steps + 1);
        const count_t ghi = ((s + 1) * n) / (steps + 1);
        par::for_chunks(ghi - glo, [&](count_t, count_t lo, count_t hi) {
          for (count_t i = glo + lo; i < glo + hi; ++i) {
            const lid_t v = static_cast<lid_t>(i);
            if (!halo_.is_boundary(v)) produce(v);
          }
        });
        if (s < steps) (void)halo_.drain_prefetch_one(comm, vals);
      }
      if (steps > 0) started_.pop_front();
      XTRA_ASSERT_MSG(halo_.prefetches_in_flight() < depth_,
                      "pipeline drain count disagreed with the phase plan");
      halo_.prefetch_next(comm, vals);  // carried into a later superstep
      started_.push_back(step_);
      mid();
      return;
    }
    for (const lid_t v : halo_.boundary_lids()) produce(v);
    const bool full = halo_.prefetches_in_flight() >= depth_;
    const count_t steps = full ? halo_.prefetch_phases_left() : 0;
    if (steps > 0) halo_.note_pipeline_carry(step_ - started_.front());
    const count_t n_interior =
        static_cast<count_t>(n_local) -
        static_cast<count_t>(halo_.boundary_lids().size());
    lid_t v = 0;
    count_t done = 0;
    for (count_t s = 0; s <= steps; ++s) {
      // Chunk s of steps+1 even slices; chunk sizes are local but the
      // drain-call count (`steps`) is globally agreed.
      const count_t target = ((s + 1) * n_interior) / (steps + 1);
      for (; done < target; ++v)
        if (!halo_.is_boundary(v)) {
          produce(v);
          ++done;
        }
      if (s < steps) (void)halo_.drain_prefetch_one(comm, vals);
    }
    if (steps > 0) started_.pop_front();
    XTRA_ASSERT_MSG(halo_.prefetches_in_flight() < depth_,
                    "pipeline drain count disagreed with the phase plan");
    halo_.prefetch_next(comm, vals);  // carried into a later superstep
    started_.push_back(step_);
    mid();
  }

  /// Collective: drain every in-flight refresh, oldest first, so
  /// vals' ghosts hold the owners' last-shipped values. Refreshes that
  /// already crossed a superstep boundary are booked in the carry
  /// ledger as they drain. No-op at depth 0 (and when nothing is in
  /// flight) — every rank must still call it at the same point.
  void flush(sim::Comm& comm, std::vector<T>& vals) {
    while (halo_.prefetch_in_flight()) {
      if (!started_.empty()) {
        const count_t carry = step_ - started_.front();
        if (carry > 0) halo_.note_pipeline_carry(carry);
        started_.pop_front();
      }
      while (halo_.drain_prefetch_one(comm, vals)) {
      }
    }
    started_.clear();
  }

 private:
  HaloPlan& halo_;
  int depth_;
  count_t step_ = 0;  ///< supersteps entered (for the carry ledger)
  std::deque<count_t> started_;  ///< start step of each in-flight lane
};

}  // namespace xtra::graph
