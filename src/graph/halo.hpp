// Reusable ghost-value exchange plan.
//
// The partitioner's ExchangeUpdates sends sparse per-vertex updates;
// the analytics and SpMV kernels instead refresh *every* ghost value
// each superstep (PageRank, WCC, k-core...). Building the
// sender/receiver lists once and replaying them each iteration is the
// standard halo pattern; the plan is the moral equivalent of an
// Epetra Import object.
//
// The plan owns its wire machinery: a persistent staging buffer for
// the gathered send values and a comm::Exchanger (optionally
// memory-bounded via set_max_send_bytes), so per-superstep exchanges
// reallocate nothing on the send path.
#pragma once

#include <span>
#include <vector>

#include "comm/exchanger.hpp"
#include "comm/scratch.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "util/assert.hpp"

namespace xtra::graph {

class HaloPlan {
 public:
  /// Collective: ghosts register with their owners once.
  HaloPlan(sim::Comm& comm, const DistGraph& g);

  /// Collective: copy vals[owned] into every ghost copy; vals must
  /// have size g.n_total() and element type T trivially copyable.
  template <typename T>
  void exchange(sim::Comm& comm, std::vector<T>& vals) {
    T* send = send_scratch_.as<T>(send_lids_.size());
    for (std::size_t i = 0; i < send_lids_.size(); ++i)
      send[i] = vals[send_lids_[i]];
    const std::span<const T> recv = ex_.exchange(comm, send, send_counts_);
    XTRA_ASSERT(recv.size() == recv_lids_.size());
    for (std::size_t i = 0; i < recv_lids_.size(); ++i)
      vals[recv_lids_[i]] = recv[i];
  }

  count_t ghost_count() const { return static_cast<count_t>(recv_lids_.size()); }

  /// Cap the per-phase send payload of subsequent exchanges (0 =
  /// unbounded). Same value required on every rank.
  void set_max_send_bytes(count_t bytes) { ex_.set_max_send_bytes(bytes); }
  const comm::ExchangeStats& stats() const { return ex_.stats(); }
  /// Drop accumulated stats (e.g. the constructor's registration
  /// exchange) so benches can meter only the replayed exchanges.
  void reset_stats() { ex_.reset_stats(); }

 private:
  std::vector<count_t> send_counts_;  ///< per destination rank
  std::vector<lid_t> send_lids_;      ///< owned lids, grouped by dest
  std::vector<lid_t> recv_lids_;      ///< ghost lids in arrival order
  comm::ScratchBuffer send_scratch_;  ///< reused staging for send values
  comm::Exchanger ex_;                ///< persistent wire machinery
};

}  // namespace xtra::graph
