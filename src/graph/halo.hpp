// Reusable ghost-value exchange plan.
//
// The partitioner's ExchangeUpdates sends sparse per-vertex updates;
// the analytics and SpMV kernels instead refresh *every* ghost value
// each superstep (PageRank, WCC, k-core...). Building the
// sender/receiver lists once and replaying them each iteration is the
// standard halo pattern; the plan is the moral equivalent of an
// Epetra Import object.
//
// The plan owns its wire machinery: a persistent staging buffer for
// the gathered send values and a comm::Exchanger (optionally
// memory-bounded via set_max_send_bytes), so per-superstep exchanges
// reallocate nothing on the send path.
//
// Two ways to refresh:
//  * exchange(comm, vals) — blocking, gather + wire + scatter.
//  * prefetch_next(comm, vals) / finish_prefetch(comm, vals) — the
//    overlapped pipeline. prefetch_next gathers the boundary values
//    (the only ones any peer sees) and starts the wire transfer;
//    the caller then runs local compute — typically the interior
//    vertices, which no peer reads — and finish_prefetch scatters the
//    arrivals into the ghost entries. boundary_lids()/is_boundary()
//    give the compute-first set: update those, prefetch, update the
//    rest, finish. vals may be freely mutated between the two calls
//    (the plan's staging holds the gathered copy); only the ghost
//    entries are overwritten by finish_prefetch.
//    overlapped_superstep() packages the whole pipeline for the
//    common per-vertex-update kernels.
//  * SuperstepPipeline (below) goes one step further for kernels that
//    tolerate stale ghosts: it carries a superstep's refresh in flight
//    *across* the superstep boundary and drains it incrementally
//    (drain_prefetch_one) between the next superstep's compute chunks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "comm/exchanger.hpp"
#include "comm/scratch.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace xtra::graph {

class HaloPlan {
 public:
  /// Collective: ghosts register with their owners once. `policy`
  /// selects flat or hierarchical routing for the registration and
  /// every subsequent exchange (bit-identical results either way).
  HaloPlan(sim::Comm& comm, const DistGraph& g,
           comm::ShardPolicy policy = comm::ShardPolicy::kFlat);

  /// Collective: copy vals[owned] into every ghost copy; vals must
  /// have size g.n_total() and element type T trivially copyable.
  template <typename T>
  void exchange(sim::Comm& comm, std::vector<T>& vals) {
    const std::span<const T> recv =
        ex_.exchange(comm, gather(vals), send_counts_);
    scatter(recv, vals);
  }

  /// Collective: kick off the next ghost refresh — gather the boundary
  /// values and start the wire transfer — then return so local compute
  /// can overlap the in-flight exchange. Any blocking collectives may
  /// run before finish_prefetch; starting a second exchange may not.
  template <typename T>
  void prefetch_next(sim::Comm& comm, const std::vector<T>& vals) {
    // The plan's own staging holds the gathered copy and is not
    // touched again until the next gather (after the finish), so the
    // exchange can slice it in place — no second payload copy.
    ex_.start_inplace(comm, gather(vals), send_counts_);
  }

  /// Collective: drain the prefetch started by prefetch_next<T> and
  /// scatter the arrivals into vals' ghost entries.
  template <typename T>
  void finish_prefetch(sim::Comm& comm, std::vector<T>& vals) {
    scatter(ex_.finish<T>(comm), vals);
  }

  /// Collective: drain at most one phase of the in-flight prefetch,
  /// scattering that phase's ghost arrivals into vals as they land
  /// (the incremental twin of finish_prefetch — the call that returns
  /// false leaves vals exactly as finish_prefetch would). Every rank
  /// must make the same number of calls; prefetch_phases_left() is
  /// rank-uniform and says how many complete the drain.
  template <typename T>
  bool drain_prefetch_one(sim::Comm& comm, std::vector<T>& vals) {
    return ex_.drain_one<T>(
        comm, [&](int /*source*/, count_t dst_offset,
                  std::span<const T> recs) {
          for (std::size_t j = 0; j < recs.size(); ++j)
            vals[recv_lids_[static_cast<std::size_t>(dst_offset) + j]] =
                recs[j];
        });
  }

  /// Collective: drain whatever is still in flight (no-op when idle).
  template <typename T>
  void flush_prefetch(sim::Comm& comm, std::vector<T>& vals) {
    while (ex_.in_flight()) drain_prefetch_one(comm, vals);
  }

  /// Rank-uniform count of drain_prefetch_one calls left to complete
  /// the in-flight prefetch (0 when idle).
  count_t prefetch_phases_left() const { return ex_.phases_remaining(); }

  /// Pipeline ledger passthrough (see Exchanger::note_pipeline_carry).
  void note_pipeline_carry(count_t depth) { ex_.note_pipeline_carry(depth); }

  /// Collective: one overlapped superstep — update(v) over the
  /// boundary, ship those values, mid() against the in-flight wire
  /// (the slot for an overlapped collective), update(v) over the
  /// interior, scatter the arriving ghosts. The invariant (boundary
  /// before prefetch, interior before finish) lives here so kernels —
  /// and SuperstepPipeline's depth-0 path — don't open-code it.
  ///
  /// `parallel` runs both sweeps as chunked par::for_chunks regions on
  /// the rank's thread pool. The caller guarantees update(v) is safe
  /// for concurrent distinct v (writes only v's own slots — the
  /// engine's kParallelUpdate trait); the wire calls stay on the rank
  /// thread, so pool workers never touch collectives.
  template <typename T, typename Fn, typename Mid>
  void overlapped_superstep(sim::Comm& comm, std::vector<T>& vals,
                            Fn&& update, Mid&& mid, bool parallel = false) {
    if (parallel) {
      par::for_chunks(static_cast<count_t>(boundary_lids_.size()),
                      [&](count_t, count_t lo, count_t hi) {
                        for (count_t i = lo; i < hi; ++i)
                          update(boundary_lids_[static_cast<std::size_t>(i)]);
                      });
      prefetch_next(comm, vals);
      mid();
      par::for_chunks(static_cast<count_t>(boundary_mask_.size()),
                      [&](count_t, count_t lo, count_t hi) {
                        for (count_t i = lo; i < hi; ++i) {
                          const lid_t v = static_cast<lid_t>(i);
                          if (!is_boundary(v)) update(v);
                        }
                      });
      finish_prefetch(comm, vals);
      return;
    }
    for (const lid_t v : boundary_lids_) update(v);
    prefetch_next(comm, vals);
    mid();
    const auto n = static_cast<lid_t>(boundary_mask_.size());
    for (lid_t v = 0; v < n; ++v)
      if (!is_boundary(v)) update(v);  // overlaps the in-flight wire
    finish_prefetch(comm, vals);
  }

  template <typename T, typename Fn>
  void overlapped_superstep(sim::Comm& comm, std::vector<T>& vals,
                            Fn&& update) {
    overlapped_superstep(comm, vals, std::forward<Fn>(update), [] {});
  }

  bool prefetch_in_flight() const { return ex_.in_flight(); }

  count_t ghost_count() const { return static_cast<count_t>(recv_lids_.size()); }

  /// Owned lids some peer holds as a ghost (deduped, ascending): the
  /// values prefetch_next ships. Compute these before prefetching and
  /// the interior — every owned lid with is_boundary() false — while
  /// the wire drains.
  const std::vector<lid_t>& boundary_lids() const { return boundary_lids_; }
  bool is_boundary(lid_t owned) const {
    return boundary_mask_[static_cast<std::size_t>(owned)] != 0;
  }
  /// Owned vertices on this rank (the domain of is_boundary()).
  lid_t n_local() const { return static_cast<lid_t>(boundary_mask_.size()); }

  /// The plan's send layout, grouped by destination rank: one slot per
  /// (destination, owned lid) pair, send_counts()[r] slots for rank r.
  /// This is the routing table sparse per-vertex update paths (e.g.
  /// commLP's coalesced label updates) reuse instead of rebuilding the
  /// ghost registration.
  const std::vector<count_t>& send_counts() const { return send_counts_; }
  const std::vector<lid_t>& send_lids() const { return send_lids_; }

  /// Cap the per-phase send payload of subsequent exchanges (0 =
  /// unbounded). Same value required on every rank.
  void set_max_send_bytes(count_t bytes) { ex_.set_max_send_bytes(bytes); }
  /// Route subsequent exchanges flat or hierarchically (same value on
  /// every rank; results are bit-identical either way).
  void set_shard_policy(comm::ShardPolicy policy) {
    ex_.set_shard_policy(policy);
  }
  const comm::ExchangeStats& stats() const { return ex_.stats(); }
  /// Drop accumulated stats (e.g. the constructor's registration
  /// exchange) so benches can meter only the replayed exchanges.
  void reset_stats() { ex_.reset_stats(); }

 private:
  template <typename T>
  const T* gather(const std::vector<T>& vals) {
    T* send = send_scratch_.as<T>(send_lids_.size());
    for (std::size_t i = 0; i < send_lids_.size(); ++i)
      send[i] = vals[send_lids_[i]];
    return send;
  }

  template <typename T>
  void scatter(std::span<const T> recv, std::vector<T>& vals) {
    XTRA_ASSERT(recv.size() == recv_lids_.size());
    for (std::size_t i = 0; i < recv_lids_.size(); ++i)
      vals[recv_lids_[i]] = recv[i];
  }

  std::vector<count_t> send_counts_;  ///< per destination rank
  std::vector<lid_t> send_lids_;      ///< owned lids, grouped by dest
  std::vector<lid_t> recv_lids_;      ///< ghost lids in arrival order
  std::vector<lid_t> boundary_lids_;  ///< send_lids_, deduped ascending
  std::vector<std::uint8_t> boundary_mask_;  ///< per owned lid
  comm::ScratchBuffer send_scratch_;  ///< reused staging for send values
  comm::Exchanger ex_;                ///< persistent wire machinery
};

/// Cross-superstep pipelined ghost-refresh driver.
///
/// overlapped_superstep() stops overlapping at the superstep boundary:
/// the refresh shipped at superstep k is drained before k returns, so
/// superstep k+1 always reads fresh ghosts. For kernels whose
/// convergence test tolerates stale ghosts (PageRank's residual,
/// k-core's monotone level sets, commLP's majority vote), that final
/// drain is pure wait. A SuperstepPipeline with depth >= 1 instead
/// leaves superstep k's refresh in flight into superstep k+1, where it
/// is drained *incrementally* — one phase per interior compute chunk,
/// arrivals scattered into vals' ghost entries as they land — before
/// superstep k+1 ships its own boundary values.
///
/// Staleness contract: at depth d >= 1, a produce(v) call may read
/// ghost entries up to d supersteps old (and mid-superstep a mix of
/// ages, as drained phases land); owned entries are always current.
/// Only kernels whose update is tolerant of that lag may run at
/// depth >= 1. The substrate admits one in-flight exchange per rank,
/// so depths beyond 1 clamp to 1 (the ledger records the clamp, not
/// the request). flush() drains anything still in flight, after which
/// ghosts equal the owners' last-shipped values.
///
/// Depth 0 is exactly overlapped_superstep() plus a mid() hook and is
/// bit-identical to the blocking exchange for any kernel (asserted in
/// tests/test_pipeline.cpp).
template <typename T>
class SuperstepPipeline {
 public:
  SuperstepPipeline(HaloPlan& halo, int depth)
      : halo_(halo), depth_(std::clamp(depth, 0, 1)) {}

  /// Effective depth (requests beyond the substrate's one-in-flight
  /// limit clamp to 1).
  int depth() const { return depth_; }
  bool in_flight() const { return halo_.prefetch_in_flight(); }

  /// Collective: one pipelined superstep. produce(v) computes vals[v]
  /// (or a derived update) for every owned v, boundary first; mid()
  /// runs while this superstep's refresh is on the wire (the slot for
  /// an overlapped allreduce). At depth 0 the refresh is drained
  /// before returning; at depth >= 1 it stays in flight and the
  /// *previous* superstep's refresh is drained incrementally between
  /// interior compute chunks.
  ///
  /// `parallel` runs the produce sweeps on the rank's thread pool
  /// (caller guarantees produce(v) is concurrency-safe for distinct
  /// v). At depth >= 1 the interior is then grouped by *lid range*
  /// instead of by interior count — the group boundaries must not
  /// depend on who computes what, and a lid-range split keeps each
  /// drain between two fixed chunked regions. Both groupings drain the
  /// same phases before the superstep returns, so end-of-superstep
  /// state is identical; only the mid-superstep arrival interleaving
  /// differs, which a parallel-safe produce (one that never reads
  /// ghost entries mid-sweep, or tolerates any staleness mix) cannot
  /// observe. The drain itself stays on the rank thread.
  template <typename Produce, typename Mid>
  void superstep(sim::Comm& comm, std::vector<T>& vals, Produce&& produce,
                 Mid&& mid, bool parallel = false) {
    const lid_t n_local = halo_.n_local();
    if (depth_ == 0) {
      halo_.overlapped_superstep(comm, vals, std::forward<Produce>(produce),
                                 std::forward<Mid>(mid), parallel);
      return;
    }

    // Depth >= 1. Boundary first (its ghost reads honor the staleness
    // contract); then interleave the interior with the incremental
    // drain of the refresh carried over from the previous superstep.
    if (parallel) {
      const auto& blids = halo_.boundary_lids();
      par::for_chunks(static_cast<count_t>(blids.size()),
                      [&](count_t, count_t lo, count_t hi) {
                        for (count_t i = lo; i < hi; ++i)
                          produce(blids[static_cast<std::size_t>(i)]);
                      });
      const count_t steps = halo_.prefetch_phases_left();  // rank-uniform
      if (steps > 0) halo_.note_pipeline_carry(1);
      const count_t n = static_cast<count_t>(n_local);
      for (count_t s = 0; s <= steps; ++s) {
        // Group s of steps+1 even lid slices; slice bounds are local
        // but the drain-call count (`steps`) is globally agreed, so
        // every rank interleaves the same collectives.
        const count_t glo = (s * n) / (steps + 1);
        const count_t ghi = ((s + 1) * n) / (steps + 1);
        par::for_chunks(ghi - glo, [&](count_t, count_t lo, count_t hi) {
          for (count_t i = glo + lo; i < glo + hi; ++i) {
            const lid_t v = static_cast<lid_t>(i);
            if (!halo_.is_boundary(v)) produce(v);
          }
        });
        if (s < steps) (void)halo_.drain_prefetch_one(comm, vals);
      }
      XTRA_ASSERT_MSG(!halo_.prefetch_in_flight(),
                      "pipeline drain count disagreed with the phase plan");
      halo_.prefetch_next(comm, vals);  // carried into the next superstep
      mid();
      return;
    }
    for (const lid_t v : halo_.boundary_lids()) produce(v);
    const count_t steps = halo_.prefetch_phases_left();  // rank-uniform
    if (steps > 0) halo_.note_pipeline_carry(1);
    const count_t n_interior =
        static_cast<count_t>(n_local) -
        static_cast<count_t>(halo_.boundary_lids().size());
    lid_t v = 0;
    count_t done = 0;
    for (count_t s = 0; s <= steps; ++s) {
      // Chunk s of steps+1 even slices; chunk sizes are local but the
      // drain-call count (`steps`) is globally agreed, so every rank
      // interleaves the same collectives.
      const count_t target = ((s + 1) * n_interior) / (steps + 1);
      for (; done < target; ++v)
        if (!halo_.is_boundary(v)) {
          produce(v);
          ++done;
        }
      if (s < steps) (void)halo_.drain_prefetch_one(comm, vals);
    }
    XTRA_ASSERT_MSG(!halo_.prefetch_in_flight(),
                    "pipeline drain count disagreed with the phase plan");
    halo_.prefetch_next(comm, vals);  // carried into the next superstep
    mid();
  }

  /// Collective: drain the in-flight refresh, if any, so vals' ghosts
  /// hold the owners' last-shipped values. No-op at depth 0 (and when
  /// nothing is in flight) — every rank must still call it at the same
  /// point.
  void flush(sim::Comm& comm, std::vector<T>& vals) {
    halo_.flush_prefetch(comm, vals);
  }

 private:
  HaloPlan& halo_;
  int depth_;
};

}  // namespace xtra::graph
