// Reusable ghost-value exchange plan.
//
// The partitioner's ExchangeUpdates sends sparse per-vertex updates;
// the analytics and SpMV kernels instead refresh *every* ghost value
// each superstep (PageRank, WCC, k-core...). Building the
// sender/receiver lists once and replaying them each iteration is the
// standard halo pattern; the plan is the moral equivalent of an
// Epetra Import object.
#pragma once

#include <vector>

#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "util/prefix_sum.hpp"

namespace xtra::graph {

class HaloPlan {
 public:
  /// Collective: ghosts register with their owners once.
  HaloPlan(sim::Comm& comm, const DistGraph& g);

  /// Collective: copy vals[owned] into every ghost copy; vals must
  /// have size g.n_total() and element type T trivially copyable.
  template <typename T>
  void exchange(sim::Comm& comm, std::vector<T>& vals) const {
    std::vector<T> send(send_lids_.size());
    for (std::size_t i = 0; i < send_lids_.size(); ++i)
      send[i] = vals[send_lids_[i]];
    const std::vector<T> recv = comm.alltoallv(send, send_counts_);
    for (std::size_t i = 0; i < recv_lids_.size(); ++i)
      vals[recv_lids_[i]] = recv[i];
  }

  count_t ghost_count() const { return static_cast<count_t>(recv_lids_.size()); }

 private:
  std::vector<count_t> send_counts_;  ///< per destination rank
  std::vector<lid_t> send_lids_;      ///< owned lids, grouped by dest
  std::vector<lid_t> recv_lids_;      ///< ghost lids in arrival order
};

}  // namespace xtra::graph
