// Reusable ghost-value exchange plan.
//
// The partitioner's ExchangeUpdates sends sparse per-vertex updates;
// the analytics and SpMV kernels instead refresh *every* ghost value
// each superstep (PageRank, WCC, k-core...). Building the
// sender/receiver lists once and replaying them each iteration is the
// standard halo pattern; the plan is the moral equivalent of an
// Epetra Import object.
//
// The plan owns its wire machinery: a persistent staging buffer for
// the gathered send values and a comm::Exchanger (optionally
// memory-bounded via set_max_send_bytes), so per-superstep exchanges
// reallocate nothing on the send path.
//
// Two ways to refresh:
//  * exchange(comm, vals) — blocking, gather + wire + scatter.
//  * prefetch_next(comm, vals) / finish_prefetch(comm, vals) — the
//    overlapped pipeline. prefetch_next gathers the boundary values
//    (the only ones any peer sees) and starts the wire transfer;
//    the caller then runs local compute — typically the interior
//    vertices, which no peer reads — and finish_prefetch scatters the
//    arrivals into the ghost entries. boundary_lids()/is_boundary()
//    give the compute-first set: update those, prefetch, update the
//    rest, finish. vals may be freely mutated between the two calls
//    (the plan's staging holds the gathered copy); only the ghost
//    entries are overwritten by finish_prefetch.
//    overlapped_superstep() packages the whole pipeline for the
//    common per-vertex-update kernels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comm/exchanger.hpp"
#include "comm/scratch.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "util/assert.hpp"

namespace xtra::graph {

class HaloPlan {
 public:
  /// Collective: ghosts register with their owners once. `policy`
  /// selects flat or hierarchical routing for the registration and
  /// every subsequent exchange (bit-identical results either way).
  HaloPlan(sim::Comm& comm, const DistGraph& g,
           comm::ShardPolicy policy = comm::ShardPolicy::kFlat);

  /// Collective: copy vals[owned] into every ghost copy; vals must
  /// have size g.n_total() and element type T trivially copyable.
  template <typename T>
  void exchange(sim::Comm& comm, std::vector<T>& vals) {
    const std::span<const T> recv =
        ex_.exchange(comm, gather(vals), send_counts_);
    scatter(recv, vals);
  }

  /// Collective: kick off the next ghost refresh — gather the boundary
  /// values and start the wire transfer — then return so local compute
  /// can overlap the in-flight exchange. Any blocking collectives may
  /// run before finish_prefetch; starting a second exchange may not.
  template <typename T>
  void prefetch_next(sim::Comm& comm, const std::vector<T>& vals) {
    // The plan's own staging holds the gathered copy and is not
    // touched again until the next gather (after the finish), so the
    // exchange can slice it in place — no second payload copy.
    ex_.start_inplace(comm, gather(vals), send_counts_);
  }

  /// Collective: drain the prefetch started by prefetch_next<T> and
  /// scatter the arrivals into vals' ghost entries.
  template <typename T>
  void finish_prefetch(sim::Comm& comm, std::vector<T>& vals) {
    scatter(ex_.finish<T>(comm), vals);
  }

  /// Collective: one overlapped superstep — update(v) over the
  /// boundary, ship those values, update(v) over the interior while
  /// the wire drains, scatter the arriving ghosts. The invariant
  /// (boundary before prefetch, interior before finish) lives here so
  /// kernels don't open-code it.
  template <typename T, typename Fn>
  void overlapped_superstep(sim::Comm& comm, std::vector<T>& vals,
                            Fn&& update) {
    for (const lid_t v : boundary_lids_) update(v);
    prefetch_next(comm, vals);
    const auto n_local = static_cast<lid_t>(boundary_mask_.size());
    for (lid_t v = 0; v < n_local; ++v)
      if (!is_boundary(v)) update(v);  // overlaps the in-flight wire
    finish_prefetch(comm, vals);
  }

  bool prefetch_in_flight() const { return ex_.in_flight(); }

  count_t ghost_count() const { return static_cast<count_t>(recv_lids_.size()); }

  /// Owned lids some peer holds as a ghost (deduped, ascending): the
  /// values prefetch_next ships. Compute these before prefetching and
  /// the interior — every owned lid with is_boundary() false — while
  /// the wire drains.
  const std::vector<lid_t>& boundary_lids() const { return boundary_lids_; }
  bool is_boundary(lid_t owned) const {
    return boundary_mask_[static_cast<std::size_t>(owned)] != 0;
  }

  /// Cap the per-phase send payload of subsequent exchanges (0 =
  /// unbounded). Same value required on every rank.
  void set_max_send_bytes(count_t bytes) { ex_.set_max_send_bytes(bytes); }
  /// Route subsequent exchanges flat or hierarchically (same value on
  /// every rank; results are bit-identical either way).
  void set_shard_policy(comm::ShardPolicy policy) {
    ex_.set_shard_policy(policy);
  }
  const comm::ExchangeStats& stats() const { return ex_.stats(); }
  /// Drop accumulated stats (e.g. the constructor's registration
  /// exchange) so benches can meter only the replayed exchanges.
  void reset_stats() { ex_.reset_stats(); }

 private:
  template <typename T>
  const T* gather(const std::vector<T>& vals) {
    T* send = send_scratch_.as<T>(send_lids_.size());
    for (std::size_t i = 0; i < send_lids_.size(); ++i)
      send[i] = vals[send_lids_[i]];
    return send;
  }

  template <typename T>
  void scatter(std::span<const T> recv, std::vector<T>& vals) {
    XTRA_ASSERT(recv.size() == recv_lids_.size());
    for (std::size_t i = 0; i < recv_lids_.size(); ++i)
      vals[recv_lids_[i]] = recv[i];
  }

  std::vector<count_t> send_counts_;  ///< per destination rank
  std::vector<lid_t> send_lids_;      ///< owned lids, grouped by dest
  std::vector<lid_t> recv_lids_;      ///< ghost lids in arrival order
  std::vector<lid_t> boundary_lids_;  ///< send_lids_, deduped ascending
  std::vector<std::uint8_t> boundary_mask_;  ///< per owned lid
  comm::ScratchBuffer send_scratch_;  ///< reused staging for send values
  comm::Exchanger ex_;                ///< persistent wire machinery
};

}  // namespace xtra::graph
